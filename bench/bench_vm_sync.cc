// E3 — cost of synchronizing the shared VM image (DESIGN.md §3).
//
// §7: "The overhead for synchronizing virtual memory is negligible except
// when detaching or shrinking regions." Reproduced as:
//   * page-fault throughput of a group member vs a plain process
//     (read-side shared lock on every fault — nearly free);
//   * sbrk GROW per call vs group size (update lock, no shootdown);
//   * sbrk SHRINK per call vs group size (update lock + synchronous
//     all-processor TLB flush + frame frees — the expensive one);
//   * mmap/munmap pair vs group size (attach cheap, detach shoots down).
#include "bench/bench_util.h"

namespace sg {
namespace {

// Keeps `members` extra group members alive (sleeping in pause(2), so they
// cost no CPU but their TLBs are shootdown targets) while `body` runs.
void WithMembers(Env& env, int members, const std::function<void(Env&)>& body) {
  std::vector<pid_t> pids;
  for (int i = 0; i < members; ++i) {
    const pid_t pid = env.Sproc(
        [](Env& c, long) {
          while (true) {
            c.Pause();
          }
        },
        PR_SALL);
    if (pid > 0) {
      pids.push_back(pid);
    }
  }
  body(env);
  for (pid_t pid : pids) {
    env.Kill(pid, kSigKill);
  }
  for (size_t i = 0; i < pids.size(); ++i) {
    env.WaitChild();
  }
}

void BM_FaultThroughput(benchmark::State& state) {
  const bool grouped = state.range(0) != 0;
  BootParams bp;
  bp.phys_mem_bytes = u64{512} << 20;
  Kernel k(bp);
  constexpr u64 kPages = 4096;
  u64 faults = 0;
  for (auto _ : state) {
    RunSim(k, [&](Env& env) {
      if (grouped) {
        env.Sproc([](Env&, long) {}, PR_SALL);  // form the group
        env.WaitChild();
      }
      const u64 f0 = env.proc().as.faults.load();
      const vaddr_t base = env.Mmap(kPages * kPageSize);
      for (u64 i = 0; i < kPages; ++i) {
        env.Store32(base + i * kPageSize, 1);  // first touch: demand-zero fault
      }
      faults += env.proc().as.faults.load() - f0;
      env.Munmap(base);
    });
  }
  state.SetItemsProcessed(static_cast<i64>(faults));
  state.counters["grouped"] = grouped ? 1 : 0;
}

BENCHMARK(BM_FaultThroughput)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_SbrkGrow(benchmark::State& state) {
  const int members = static_cast<int>(state.range(0));
  BootParams bp;
  bp.phys_mem_bytes = u64{512} << 20;
  Kernel k(bp);
  constexpr int kCalls = 256;
  for (auto _ : state) {
    RunSim(k, [&](Env& env) {
      WithMembers(env, members, [&](Env& e) {
        for (int i = 0; i < kCalls; ++i) {
          e.Sbrk(static_cast<i64>(kPageSize));
        }
        e.Sbrk(-static_cast<i64>(kCalls) * static_cast<i64>(kPageSize));
      });
    });
  }
  state.SetItemsProcessed(state.iterations() * kCalls);
  state.counters["members"] = members;
}

BENCHMARK(BM_SbrkGrow)->Arg(0)->Arg(1)->Arg(3)->Arg(7)->Unit(benchmark::kMicrosecond);

void BM_SbrkShrink(benchmark::State& state) {
  const int members = static_cast<int>(state.range(0));
  BootParams bp;
  bp.phys_mem_bytes = u64{512} << 20;
  Kernel k(bp);
  constexpr int kCalls = 256;
  u64 shootdowns = 0;
  for (auto _ : state) {
    RunSim(k, [&](Env& env) {
      WithMembers(env, members, [&](Env& e) {
        e.Sbrk(static_cast<i64>(kCalls) * static_cast<i64>(kPageSize));
        const vaddr_t brk = e.Sbrk(0);
        for (int i = 0; i < kCalls; ++i) {
          e.Store32(brk - static_cast<u64>(i + 1) * kPageSize, 1);  // make frames real
        }
        const u64 s0 = k.cpus().shootdowns();
        for (int i = 0; i < kCalls; ++i) {
          e.Sbrk(-static_cast<i64>(kPageSize));  // each one: flush + free
        }
        shootdowns += k.cpus().shootdowns() - s0;
      });
    });
  }
  state.SetItemsProcessed(state.iterations() * kCalls);
  state.counters["members"] = members;
  state.counters["shootdowns_per_call"] =
      static_cast<double>(shootdowns) / static_cast<double>(state.iterations() * kCalls);
}

BENCHMARK(BM_SbrkShrink)->Arg(0)->Arg(1)->Arg(3)->Arg(7)->Unit(benchmark::kMicrosecond);

void BM_MapUnmap(benchmark::State& state) {
  const int members = static_cast<int>(state.range(0));
  BootParams bp;
  bp.phys_mem_bytes = u64{512} << 20;
  Kernel k(bp);
  constexpr int kCalls = 128;
  for (auto _ : state) {
    RunSim(k, [&](Env& env) {
      WithMembers(env, members, [&](Env& e) {
        for (int i = 0; i < kCalls; ++i) {
          const vaddr_t a = e.Mmap(4 * kPageSize);
          e.Store32(a, 1);
          e.Munmap(a);  // detach: shootdown before the frames are freed
        }
      });
    });
  }
  state.SetItemsProcessed(state.iterations() * kCalls);
  state.counters["members"] = members;
}

BENCHMARK(BM_MapUnmap)->Arg(0)->Arg(3)->Arg(7)->Unit(benchmark::kMicrosecond);

// The pager under pressure: sequential sweeps over a working set larger
// than physical memory, with the pageout clock and major faults inside the
// fault path. Arg = working-set pages (memory holds 256 frames).
void BM_SwapThrash(benchmark::State& state) {
  const u64 pages = static_cast<u64>(state.range(0));
  BootParams bp;
  bp.phys_mem_bytes = 256 * kPageSize;
  bp.swap_pages = 8192;
  Kernel k(bp);
  for (auto _ : state) {
    RunSim(k, [&](Env& env) {
      const vaddr_t a = env.Mmap(pages * kPageSize);
      for (int sweep = 0; sweep < 2; ++sweep) {
        for (u64 i = 0; i < pages; ++i) {
          env.Store32(a + i * kPageSize, static_cast<u32>(i));
        }
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * static_cast<i64>(2 * pages));
  state.counters["swap_outs"] =
      k.swap() != nullptr ? static_cast<double>(k.swap()->outs()) : 0.0;
}

BENCHMARK(BM_SwapThrash)->Arg(128)->Arg(512)->Arg(1024)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sg
