// E3 — cost of synchronizing the shared VM image (DESIGN.md §3).
//
// §7: "The overhead for synchronizing virtual memory is negligible except
// when detaching or shrinking regions." Reproduced as:
//   * page-fault throughput of a group member vs a plain process
//     (read-side shared lock on every fault — nearly free);
//   * sbrk GROW per call vs group size (update lock, no shootdown);
//   * sbrk SHRINK per call vs group size (update lock + synchronous
//     all-processor TLB flush + frame frees — the expensive one);
//   * mmap/munmap pair vs group size (attach cheap, detach shoots down);
//   * (PR 7) fault throughput vs a concurrent VM-image WRITER mix — the
//     lockless fault path's reason to exist (DESIGN.md §4h).
#include "bench/bench_util.h"

#include "obs/stats.h"

namespace sg {
namespace {

// Keeps `members` extra group members alive (sleeping in pause(2), so they
// cost no CPU but their TLBs are shootdown targets) while `body` runs.
void WithMembers(Env& env, int members, const std::function<void(Env&)>& body) {
  std::vector<pid_t> pids;
  for (int i = 0; i < members; ++i) {
    const pid_t pid = env.Sproc(
        [](Env& c, long) {
          while (true) {
            c.Pause();
          }
        },
        PR_SALL);
    if (pid > 0) {
      pids.push_back(pid);
    }
  }
  body(env);
  for (pid_t pid : pids) {
    env.Kill(pid, kSigKill);
  }
  for (size_t i = 0; i < pids.size(); ++i) {
    env.WaitChild();
  }
}

void BM_FaultThroughput(benchmark::State& state) {
  const bool grouped = state.range(0) != 0;
  BootParams bp;
  bp.phys_mem_bytes = u64{512} << 20;
  Kernel k(bp);
  constexpr u64 kPages = 4096;
  u64 faults = 0;
  for (auto _ : state) {
    RunSim(k, [&](Env& env) {
      if (grouped) {
        env.Sproc([](Env&, long) {}, PR_SALL);  // form the group
        env.WaitChild();
      }
      const u64 f0 = env.proc().as.faults.load();
      const vaddr_t base = env.Mmap(kPages * kPageSize);
      for (u64 i = 0; i < kPages; ++i) {
        env.Store32(base + i * kPageSize, 1);  // first touch: demand-zero fault
      }
      faults += env.proc().as.faults.load() - f0;
      env.Munmap(base);
    });
  }
  state.SetItemsProcessed(static_cast<i64>(faults));
  state.counters["grouped"] = grouped ? 1 : 0;
}

BENCHMARK(BM_FaultThroughput)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_SbrkGrow(benchmark::State& state) {
  const int members = static_cast<int>(state.range(0));
  BootParams bp;
  bp.phys_mem_bytes = u64{512} << 20;
  Kernel k(bp);
  constexpr int kCalls = 256;
  for (auto _ : state) {
    RunSim(k, [&](Env& env) {
      WithMembers(env, members, [&](Env& e) {
        for (int i = 0; i < kCalls; ++i) {
          e.Sbrk(static_cast<i64>(kPageSize));
        }
        e.Sbrk(-static_cast<i64>(kCalls) * static_cast<i64>(kPageSize));
      });
    });
  }
  state.SetItemsProcessed(state.iterations() * kCalls);
  state.counters["members"] = members;
}

BENCHMARK(BM_SbrkGrow)->Arg(0)->Arg(1)->Arg(3)->Arg(7)->Unit(benchmark::kMicrosecond);

void BM_SbrkShrink(benchmark::State& state) {
  const int members = static_cast<int>(state.range(0));
  BootParams bp;
  bp.phys_mem_bytes = u64{512} << 20;
  Kernel k(bp);
  constexpr int kCalls = 256;
  u64 shootdowns = 0;
  for (auto _ : state) {
    RunSim(k, [&](Env& env) {
      WithMembers(env, members, [&](Env& e) {
        e.Sbrk(static_cast<i64>(kCalls) * static_cast<i64>(kPageSize));
        const vaddr_t brk = e.Sbrk(0);
        for (int i = 0; i < kCalls; ++i) {
          e.Store32(brk - static_cast<u64>(i + 1) * kPageSize, 1);  // make frames real
        }
        const u64 s0 = k.cpus().shootdowns();
        for (int i = 0; i < kCalls; ++i) {
          e.Sbrk(-static_cast<i64>(kPageSize));  // each one: flush + free
        }
        shootdowns += k.cpus().shootdowns() - s0;
      });
    });
  }
  state.SetItemsProcessed(state.iterations() * kCalls);
  state.counters["members"] = members;
  state.counters["shootdowns_per_call"] =
      static_cast<double>(shootdowns) / static_cast<double>(state.iterations() * kCalls);
}

BENCHMARK(BM_SbrkShrink)->Arg(0)->Arg(1)->Arg(3)->Arg(7)->Unit(benchmark::kMicrosecond);

void BM_MapUnmap(benchmark::State& state) {
  const int members = static_cast<int>(state.range(0));
  BootParams bp;
  bp.phys_mem_bytes = u64{512} << 20;
  Kernel k(bp);
  constexpr int kCalls = 128;
  for (auto _ : state) {
    RunSim(k, [&](Env& env) {
      WithMembers(env, members, [&](Env& e) {
        for (int i = 0; i < kCalls; ++i) {
          const vaddr_t a = e.Mmap(4 * kPageSize);
          e.Store32(a, 1);
          e.Munmap(a);  // detach: shootdown before the frames are freed
        }
      });
    });
  }
  state.SetItemsProcessed(state.iterations() * kCalls);
  state.counters["members"] = members;
}

BENCHMARK(BM_MapUnmap)->Arg(0)->Arg(3)->Arg(7)->Unit(benchmark::kMicrosecond);

// E3b (PR 7) — fault throughput under a VM-image writer mix.
//
// Members sweep a shared window wider than the 64-entry direct-mapped TLB,
// so every access conflict-misses and re-enters HandleFault: the measured
// rate is shared-image lookup/resolve throughput, not memory bandwidth.
// Meanwhile the group leader runs `writer_ops` mmap/munmap pairs — each
// one an update-lock acquisition, a layout-seqcount bump and a shootdown.
// Before PR 7 every fault took the group lock's read side and the writer
// convoyed the whole group behind each mutation; now faults validate
// against the seqcount, and only those that straddle a bump retry or fall
// back (the lockless_frac counter reports the split).
//
// Args: {members, writer_ops}.
constexpr u64 kWindowPages = 128;  // 2x the TLB: every swept access misses
constexpr int kSweeps = 24;

void BM_FaultWriterMix(benchmark::State& state) {
  const int members = static_cast<int>(state.range(0));
  const int writer_ops = static_cast<int>(state.range(1));
  BootParams bp;
  bp.phys_mem_bytes = u64{512} << 20;
  bp.max_procs = 64;
  Kernel k(bp);
  obs::Stats& stats = obs::Stats::Global();
  u64 faults = 0;
  u64 lockless = 0;
  u64 fallbacks = 0;
  u64 retries = 0;
  for (auto _ : state) {
    RunSim(k, [&](Env& env) {
      const vaddr_t ctl = env.Mmap(kPageSize);
      const vaddr_t win = env.Mmap(kWindowPages * kPageSize);
      for (u64 i = 0; i < kWindowPages; ++i) {
        env.Store32(win + i * kPageSize, 1);  // materialize every frame up front
      }
      const u64 f0 = stats.CounterValue("vm.faults");
      const u64 l0 = stats.CounterValue("vm.fault.lockless_hits");
      const u64 b0 = stats.CounterValue("vm.fault.fallbacks");
      const u64 r0 = stats.CounterValue("vm.fault.retries");
      int started = 0;
      for (int m = 0; m < members; ++m) {
        const pid_t pid = env.Sproc(
            [ctl, win, members](Env& c, long) {
              c.SpinBarrier(ctl, static_cast<u32>(members) + 1);
              for (int s = 0; s < kSweeps; ++s) {
                for (u64 i = 0; i < kWindowPages; ++i) {
                  (void)c.Load32(win + i * kPageSize);
                }
              }
            },
            PR_SADDR);
        if (pid > 0) {
          ++started;
        }
      }
      env.SpinBarrier(ctl, static_cast<u32>(members) + 1);
      for (int w = 0; w < writer_ops; ++w) {
        const vaddr_t a = env.Mmap(kPageSize);
        env.Store32(a, 1);
        env.Munmap(a);
      }
      for (int i = 0; i < started; ++i) {
        env.WaitChild();
      }
      faults += stats.CounterValue("vm.faults") - f0;
      lockless += stats.CounterValue("vm.fault.lockless_hits") - l0;
      fallbacks += stats.CounterValue("vm.fault.fallbacks") - b0;
      retries += stats.CounterValue("vm.fault.retries") - r0;
    });
  }
  state.SetItemsProcessed(static_cast<i64>(faults));
  state.counters["members"] = members;
  state.counters["writer_ops"] = writer_ops;
  state.counters["lockless_frac"] =
      faults == 0 ? 0.0 : static_cast<double>(lockless) / static_cast<double>(faults);
  state.counters["fallbacks"] = static_cast<double>(fallbacks);
  state.counters["retries"] = static_cast<double>(retries);
}

BENCHMARK(BM_FaultWriterMix)
    ->Args({4, 0})
    ->Args({4, 64})
    ->Args({4, 256})
    ->Args({16, 0})
    ->Args({16, 64})
    ->Args({16, 256})
    ->Unit(benchmark::kMillisecond);

// The pager under pressure: sequential sweeps over a working set larger
// than physical memory, with the pageout clock and major faults inside the
// fault path. Arg = working-set pages (memory holds 256 frames).
void BM_SwapThrash(benchmark::State& state) {
  const u64 pages = static_cast<u64>(state.range(0));
  BootParams bp;
  bp.phys_mem_bytes = 256 * kPageSize;
  bp.swap_pages = 8192;
  Kernel k(bp);
  for (auto _ : state) {
    RunSim(k, [&](Env& env) {
      const vaddr_t a = env.Mmap(pages * kPageSize);
      for (int sweep = 0; sweep < 2; ++sweep) {
        for (u64 i = 0; i < pages; ++i) {
          env.Store32(a + i * kPageSize, static_cast<u32>(i));
        }
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * static_cast<i64>(2 * pages));
  state.counters["swap_outs"] =
      k.swap() != nullptr ? static_cast<double>(k.swap()->outs()) : 0.0;
}

BENCHMARK(BM_SwapThrash)->Arg(128)->Arg(512)->Arg(1024)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sg
