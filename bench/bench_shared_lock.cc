// E8 — the shared read lock (§6.2): "Since operations that require the
// update lock are relatively rare (fork, exec, mmap, sbrk, etc.) compared
// to the operations that scan (page fault, pager) the shared lock is
// almost always available and multiple processes do not collide."
//
// Raw primitive benchmarks (host threads, no kernel):
//   * read acquire/release cost, alone and with parallel readers;
//   * an exclusive Spinlock baseline for the same scan pattern — what the
//     kernel would pay WITHOUT the reader/updater split;
//   * mixed read/update workloads at paper-like update ratios, reporting
//     the wait counters.
#include <thread>

#include "bench/bench_util.h"
#include "sync/shared_read_lock.h"
#include "sync/spinlock.h"

namespace sg {
namespace {

// The pre-sharding SharedReadLock read path, kept verbatim as a baseline:
// one spinlock (s_acclck) and one shared counter (s_acccnt) that every
// reader serializes through, plus the two shared statistic increments the
// old fast path performed. BM_*ParallelReaders measures the sharded lock
// against this so the scaling win is recorded in the same JSON stream.
class SingleCounterReadLock {
 public:
  void AcquireRead() {
    acclck_.Lock();
    // No updater exists in the readers-only benchmarks, so the sleep body
    // is unreachable, but the original's loop-entry test still runs.
    while (acccnt_ < 0) {
    }
    ++acccnt_;
    acclck_.Unlock();
    reads_.fetch_add(1, std::memory_order_relaxed);
    stat_reads_.fetch_add(1, std::memory_order_relaxed);  // the SG_OBS_INC
  }
  void ReleaseRead() {
    acclck_.Lock();
    --acccnt_;
    const bool wake = (acccnt_ == 0 && waitcnt_ > 0);  // original wake test
    if (wake) {
      benchmark::DoNotOptimize(&waitcnt_);
    }
    acclck_.Unlock();
  }
  u64 reads() const { return reads_.load(std::memory_order_relaxed); }

 private:
  Spinlock acclck_;
  int acccnt_ = 0;
  unsigned waitcnt_ = 0;
  std::atomic<u64> reads_{0};
  static std::atomic<u64> stat_reads_;  // stands in for the global registry counter
};

std::atomic<u64> SingleCounterReadLock::stat_reads_{0};

void BM_ReadLockUncontended(benchmark::State& state) {
  SharedReadLock lock;
  for (auto _ : state) {
    lock.AcquireRead();
    benchmark::DoNotOptimize(&lock);
    lock.ReleaseRead();
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_ReadLockUncontended);

void BM_UpdateLockUncontended(benchmark::State& state) {
  SharedReadLock lock;
  for (auto _ : state) {
    lock.AcquireUpdate();
    benchmark::DoNotOptimize(&lock);
    lock.ReleaseUpdate();
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_UpdateLockUncontended);

void BM_ExclusiveSpinlockBaseline(benchmark::State& state) {
  Spinlock lock;
  for (auto _ : state) {
    lock.Lock();
    benchmark::DoNotOptimize(&lock);
    lock.Unlock();
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_ExclusiveSpinlockBaseline);

// The §6.2 scaling claim head-on: N concurrent readers, no updater — the
// page-fault population of a share group between VM-image updates. The
// sharded lock's readers touch only their own slot; the seed baseline
// serializes them all through one spinlock/counter line.
void BM_ReadLockParallelReaders(benchmark::State& state) {
  static SharedReadLock* lock = nullptr;
  if (state.thread_index() == 0) {
    lock = new SharedReadLock();
  }
  for (auto _ : state) {
    lock->AcquireRead();
    benchmark::DoNotOptimize(lock);
    lock->ReleaseRead();
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    state.counters["reads"] = static_cast<double>(lock->reads());
    state.counters["read_slow"] = static_cast<double>(lock->read_slow());
    delete lock;
    lock = nullptr;
  }
}

BENCHMARK(BM_ReadLockParallelReaders)->Threads(1)->Threads(2)->Threads(4)->Threads(8)
    ->UseRealTime();

void BM_SeedSingleCounterParallelReaders(benchmark::State& state) {
  static SingleCounterReadLock* lock = nullptr;
  if (state.thread_index() == 0) {
    lock = new SingleCounterReadLock();
  }
  for (auto _ : state) {
    lock->AcquireRead();
    benchmark::DoNotOptimize(lock);
    lock->ReleaseRead();
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    state.counters["reads"] = static_cast<double>(lock->reads());
    delete lock;
    lock = nullptr;
  }
}

BENCHMARK(BM_SeedSingleCounterParallelReaders)->Threads(1)->Threads(2)->Threads(4)->Threads(8)
    ->UseRealTime();

// Parallel readers with an occasional updater, across thread counts. The
// ->Threads(n) harness runs the body on n concurrent host threads. Update
// ratio 1/1024 mimics the paper's "relatively rare" VM-image updates.
void BM_ReadersWithRareUpdates(benchmark::State& state) {
  static SharedReadLock* lock = nullptr;
  if (state.thread_index() == 0) {
    lock = new SharedReadLock();
  }
  u64 n = 0;
  for (auto _ : state) {
    if ((++n & 1023) == 0 && state.thread_index() == 0) {
      lock->AcquireUpdate();
      benchmark::DoNotOptimize(lock);
      lock->ReleaseUpdate();
    } else {
      lock->AcquireRead();
      benchmark::DoNotOptimize(lock);
      lock->ReleaseRead();
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    state.counters["read_waits"] = static_cast<double>(lock->read_waits());
    state.counters["update_waits"] = static_cast<double>(lock->update_waits());
    delete lock;
    lock = nullptr;
  }
}

BENCHMARK(BM_ReadersWithRareUpdates)->Threads(1)->Threads(2)->Threads(4)->Threads(8);

// The same mixed pattern through the REAL fault path: group members fault
// pages (read side) while one member occasionally mmaps/munmaps (update
// side); reports how often faulting actually had to wait.
void BM_FaultScanVsImageUpdate(benchmark::State& state) {
  const int faulter_members = 2;
  BootParams bp;
  bp.phys_mem_bytes = u64{512} << 20;
  Kernel k(bp);
  for (auto _ : state) {
    RunSim(k, [&](Env& env) {
      const vaddr_t arena = env.Mmap(256 * kPageSize);
      for (int m = 0; m < faulter_members; ++m) {
        env.Sproc(
            [arena](Env& c, long idx) {
              // Fault 128 pages, then unmap-triggering refaults via sbrk
              // noise from the parent.
              for (int round = 0; round < 8; ++round) {
                for (u64 i = 0; i < 128; ++i) {
                  c.Store32(arena + (static_cast<u64>(idx) * 128 + i) % 256 * kPageSize,
                            static_cast<u32>(i));
                }
              }
            },
            PR_SADDR, m);
      }
      for (int i = 0; i < 16; ++i) {
        const vaddr_t tmp = env.Mmap(4 * kPageSize);  // update-locked list change
        env.Store32(tmp, 1);
        env.Munmap(tmp);  // update lock + shootdown
      }
      for (int m = 0; m < faulter_members; ++m) {
        env.WaitChild();
      }
      SharedReadLock& l = env.proc().shaddr->space().lock();
      state.counters["reads"] = static_cast<double>(l.reads());
      state.counters["updates"] = static_cast<double>(l.updates());
      state.counters["read_waits"] = static_cast<double>(l.read_waits());
    });
  }
}

BENCHMARK(BM_FaultScanVsImageUpdate)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sg
