// E6 — synchronization cost (§3 "Synchronization"): "The best performance
// is obtained using some form of busy-waiting ... synchronization speeds
// can approach memory access speeds", versus mechanisms that require
// kernel interaction (System V semaphores, pipes, signals).
//
// Two measurements per mechanism:
//   * UNCONTENDED cost — acquire/release (or send/recv) with no partner;
//     this isolates the kernel-interaction tax the paper talks about;
//   * PING-PONG — two tasks alternating, counting round trips (on a small
//     host this is scheduling-bound for every mechanism, so the uncontended
//     numbers plus the syscalls-per-round counter carry the §3 argument).
#include "bench/bench_util.h"

namespace sg {
namespace {

void BM_UncontendedSpinlock(benchmark::State& state) {
  Kernel k;
  constexpr int kOps = 4096;
  for (auto _ : state) {
    RunSim(k, [&](Env& env) {
      const vaddr_t lock = env.Mmap(kPageSize);
      for (int i = 0; i < kOps; ++i) {
        env.SpinLock(lock);
        env.SpinUnlock(lock);
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * kOps);
}

BENCHMARK(BM_UncontendedSpinlock);

void BM_UncontendedSysvSem(benchmark::State& state) {
  Kernel k;
  constexpr int kOps = 4096;
  for (auto _ : state) {
    RunSim(k, [&](Env& env) {
      const int sem = env.Semget(0, 1);
      for (int i = 0; i < kOps; ++i) {
        env.SemOp(sem, -1);  // kernel entry
        env.SemOp(sem, 1);   // kernel entry
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * kOps);
}

BENCHMARK(BM_UncontendedSysvSem);

void BM_UncontendedPipeToken(benchmark::State& state) {
  Kernel k;
  constexpr int kOps = 4096;
  for (auto _ : state) {
    RunSim(k, [&](Env& env) {
      int rd = -1, wr = -1;
      env.Pipe(&rd, &wr);
      std::byte token{1};
      for (int i = 0; i < kOps; ++i) {
        env.WriteBuf(wr, std::span<const std::byte>(&token, 1));
        env.ReadBuf(rd, std::span<std::byte>(&token, 1));
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * kOps);
}

BENCHMARK(BM_UncontendedPipeToken);

// Raw simulated memory op, the floor busy-waiting approaches.
void BM_AtomicMemoryOp(benchmark::State& state) {
  Kernel k;
  constexpr int kOps = 16384;
  for (auto _ : state) {
    RunSim(k, [&](Env& env) {
      const vaddr_t word = env.Mmap(kPageSize);
      for (int i = 0; i < kOps; ++i) {
        benchmark::DoNotOptimize(env.FetchAdd32(word, 1));
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * kOps);
}

BENCHMARK(BM_AtomicMemoryOp);

// ---- ping-pong round trips between two tasks ----
//
// Caveat recorded in EXPERIMENTS.md: on a single-core HOST, a busy-wait
// ping-pong is bounded by host context switches, so the spin variant's
// wall-clock advantage only materializes on multi-core hosts; the
// syscalls_per_round counter carries the architectural point regardless.

constexpr int kRounds = 512;

void BM_PingPongSpin(benchmark::State& state) {
  Kernel k;
  for (auto _ : state) {
    RunSim(k, [&](Env& env) {
      const vaddr_t turn = env.Mmap(kPageSize);
      env.Sproc(
          [turn](Env& c, long) {
            for (int i = 0; i < kRounds; ++i) {
              while (c.AtomicRead32(turn) != 1) {
                c.Yield();
              }
              c.AtomicWrite32(turn, 0);
            }
          },
          PR_SADDR);
      const u64 sys0 = env.proc().syscalls.load();
      for (int i = 0; i < kRounds; ++i) {
        env.AtomicWrite32(turn, 1);
        while (env.AtomicRead32(turn) != 0) {
          env.Yield();
        }
      }
      state.counters["syscalls_per_round"] = static_cast<double>(
          env.proc().syscalls.load() - sys0) / kRounds;
      env.WaitChild();
    });
  }
  state.SetItemsProcessed(state.iterations() * kRounds);
}

BENCHMARK(BM_PingPongSpin)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_PingPongSysvSem(benchmark::State& state) {
  Kernel k;
  for (auto _ : state) {
    RunSim(k, [&](Env& env) {
      const int ping = env.Semget(0, 0);
      const int pong = env.Semget(0, 0);
      env.Fork([ping, pong](Env& c, long) {
        for (int i = 0; i < kRounds; ++i) {
          c.SemOp(ping, -1);
          c.SemOp(pong, 1);
        }
      });
      const u64 sys0 = env.proc().syscalls.load();
      for (int i = 0; i < kRounds; ++i) {
        env.SemOp(ping, 1);
        env.SemOp(pong, -1);
      }
      state.counters["syscalls_per_round"] = static_cast<double>(
          env.proc().syscalls.load() - sys0) / kRounds;
      env.WaitChild();
    });
  }
  state.SetItemsProcessed(state.iterations() * kRounds);
}

BENCHMARK(BM_PingPongSysvSem)->Unit(benchmark::kMillisecond);

void BM_PingPongPipe(benchmark::State& state) {
  Kernel k;
  for (auto _ : state) {
    RunSim(k, [&](Env& env) {
      int a_rd, a_wr, b_rd, b_wr;
      env.Pipe(&a_rd, &a_wr);
      env.Pipe(&b_rd, &b_wr);
      env.Fork([a_rd, b_wr](Env& c, long) {
        std::byte t{0};
        for (int i = 0; i < kRounds; ++i) {
          c.ReadBuf(a_rd, std::span<std::byte>(&t, 1));
          c.WriteBuf(b_wr, std::span<const std::byte>(&t, 1));
        }
      });
      const u64 sys0 = env.proc().syscalls.load();
      std::byte t{0};
      for (int i = 0; i < kRounds; ++i) {
        env.WriteBuf(a_wr, std::span<const std::byte>(&t, 1));
        env.ReadBuf(b_rd, std::span<std::byte>(&t, 1));
      }
      state.counters["syscalls_per_round"] = static_cast<double>(
          env.proc().syscalls.load() - sys0) / kRounds;
      env.WaitChild();
    });
  }
  state.SetItemsProcessed(state.iterations() * kRounds);
}

BENCHMARK(BM_PingPongPipe)->Unit(benchmark::kMillisecond);

void BM_PingPongSignal(benchmark::State& state) {
  Kernel k;
  for (auto _ : state) {
    RunSim(k, [&](Env& env) {
      static std::atomic<int> parent_hits{0};
      static std::atomic<int> child_hits{0};
      parent_hits = 0;
      child_hits = 0;
      env.Signal(kSigUsr1, [](int) { parent_hits.fetch_add(1); });
      std::atomic<pid_t> child_pid{0};
      const pid_t me = env.Pid();
      env.Fork([&, me](Env& c, long) {
        c.Signal(kSigUsr2, [](int) { child_hits.fetch_add(1); });
        child_pid = c.Pid();
        for (int i = 0; i < kRounds; ++i) {
          while (child_hits.load() <= i) {
            c.Sigpause();  // race-free sleep until our SIGUSR2 lands
          }
          c.Kill(me, kSigUsr1);
        }
      });
      while (child_pid.load() == 0) {
        env.Yield();
      }
      const u64 sys0 = env.proc().syscalls.load();
      for (int i = 0; i < kRounds; ++i) {
        env.Kill(child_pid.load(), kSigUsr2);
        while (parent_hits.load() <= i) {
          env.Sigpause();
        }
      }
      state.counters["syscalls_per_round"] = static_cast<double>(
          env.proc().syscalls.load() - sys0) / kRounds;
      env.WaitChild();
    });
  }
  state.SetItemsProcessed(state.iterations() * kRounds);
}

BENCHMARK(BM_PingPongSignal)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sg
