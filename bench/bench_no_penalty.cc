// E4 — "normal UNIX processes experience no penalty for the addition of
// share group support" (§7, and design goal 4 of §6).
//
// The share-group hook on the syscall path is one AND of p_flag (§6.3) and
// one null check of p->shaddr. Measured with manual timing (the group
// setup is excluded from the clock):
//   * syscall latency in a plain process (no group anywhere);
//   * syscall latency in a group member whose sync bits are clean;
//   * syscall latency when every call finds a dirty bit (the slow path the
//     fast test avoids);
//   * fork()+wait() latency with zero groups in the system.
#include <chrono>

#include "bench/bench_util.h"

namespace sg {
namespace {

constexpr int kCalls = 4096;

double TimeCalls(Env& env) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kCalls; ++i) {
    benchmark::DoNotOptimize(env.UlimitGet());
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

void BM_SyscallPlain(benchmark::State& state) {
  Kernel k;
  for (auto _ : state) {
    double elapsed = 0;
    RunSim(k, [&](Env& env) { elapsed = TimeCalls(env); });
    state.SetIterationTime(elapsed);
  }
  state.SetItemsProcessed(state.iterations() * kCalls);
}

BENCHMARK(BM_SyscallPlain)->UseManualTime();

void BM_SyscallGroupClean(benchmark::State& state) {
  Kernel k;
  for (auto _ : state) {
    double elapsed = 0;
    RunSim(k, [&](Env& env) {
      env.Sproc([](Env&, long) {}, PR_SALL);
      env.WaitChild();  // still a member; bits stay clean from here on
      elapsed = TimeCalls(env);
    });
    state.SetIterationTime(elapsed);
  }
  state.SetItemsProcessed(state.iterations() * kCalls);
}

BENCHMARK(BM_SyscallGroupClean)->UseManualTime();

void BM_SyscallGroupDirty(benchmark::State& state) {
  Kernel k;
  for (auto _ : state) {
    double elapsed = 0;
    RunSim(k, [&](Env& env) {
      env.Sproc([](Env&, long) {}, PR_SALL);
      env.WaitChild();
      const auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < kCalls; ++i) {
        // Force the slow path: pretend another member updated the umask.
        env.proc().p_flag.fetch_or(kPfSyncUmask, std::memory_order_relaxed);
        benchmark::DoNotOptimize(env.UlimitGet());
      }
      elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    });
    state.SetIterationTime(elapsed);
  }
  state.SetItemsProcessed(state.iterations() * kCalls);
}

BENCHMARK(BM_SyscallGroupDirty)->UseManualTime();

void BM_ForkWaitNoGroups(benchmark::State& state) {
  Kernel k;
  constexpr int kPairs = 32;
  for (auto _ : state) {
    double elapsed = 0;
    RunSim(k, [&](Env& env) {
      const auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < kPairs; ++i) {
        env.Fork([](Env&, long) {});
        env.WaitChild();
      }
      elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    });
    state.SetIterationTime(elapsed);
  }
  state.SetItemsProcessed(state.iterations() * kPairs);
}

BENCHMARK(BM_ForkWaitNoGroups)->UseManualTime()->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace sg
