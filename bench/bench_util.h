// Shared helpers for the experiment benchmarks (DESIGN.md §3).
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <functional>
#include <string>

#include "api/kernel.h"
#include "api/user_env.h"

namespace sg {

// Runs `body` as a simulated process and blocks until the whole process
// tree has exited and been reaped.
inline void RunSim(Kernel& k, std::function<void(Env&)> body) {
  auto pid = k.Launch([body = std::move(body)](Env& env, long) { body(env); });
  if (!pid.ok()) {
    std::abort();
  }
  k.WaitAll();
}

// Console reporter that additionally prints one machine-readable JSON line
// per benchmark run to stdout, so sweep scripts can scrape results without
// parsing the human table:
//   {"bench":"E3_VmSync/4","ns_per_op":123.4,"iterations":1000,
//    "params":"4","counters":{"ipis":7.0}}
// Every bench binary uses it through bench_main.cc.
class JsonLineReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) {
        continue;
      }
      const std::string name = run.benchmark_name();
      const double ns_per_op =
          run.iterations == 0 ? 0.0
                              : run.real_accumulated_time / static_cast<double>(run.iterations) * 1e9;
      // Everything after the first '/' is the arg tuple (e.g. "4/1024").
      const auto slash = name.find('/');
      const std::string params = slash == std::string::npos ? "" : name.substr(slash + 1);
      std::string counters;
      for (const auto& [cname, cvalue] : run.counters) {
        if (!counters.empty()) {
          counters += ',';
        }
        counters += '"' + cname + "\":" + std::to_string(static_cast<double>(cvalue));
      }
      std::printf("{\"bench\":\"%s\",\"ns_per_op\":%.3f,\"iterations\":%lld,\"params\":\"%s\","
                  "\"counters\":{%s}}\n",
                  name.c_str(), ns_per_op, static_cast<long long>(run.iterations),
                  params.c_str(), counters.c_str());
      std::fflush(stdout);
    }
  }
};

}  // namespace sg

#endif  // BENCH_BENCH_UTIL_H_
