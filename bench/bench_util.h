// Shared helpers for the experiment benchmarks (DESIGN.md §3).
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <functional>

#include "api/kernel.h"
#include "api/user_env.h"

namespace sg {

// Runs `body` as a simulated process and blocks until the whole process
// tree has exited and been reaped.
inline void RunSim(Kernel& k, std::function<void(Env&)> body) {
  auto pid = k.Launch([body = std::move(body)](Env& env, long) { body(env); });
  if (!pid.ok()) {
    std::abort();
  }
  k.WaitAll();
}

}  // namespace sg

#endif  // BENCH_BENCH_UTIL_H_
