#!/usr/bin/env bash
# Runs every bench binary and concatenates their JSON lines into one file,
# so each PR can commit a BENCH_<pr>.json point on the perf trajectory:
#
#   bench/run_benches.sh [build-dir] [out-file] [extra benchmark args...]
#   bench/run_benches.sh build BENCH_2.json --benchmark_min_time=0.1
#
# Every bench binary already prints one machine-readable JSON line per run
# (bench_util.h JsonLineReporter); this script just collects them. Bench
# binaries that fail abort the whole run (a perf point with silent holes is
# worse than none).
set -euo pipefail

build_dir=${1:-build}
out=${2:-BENCH_local.json}
shift $(( $# > 2 ? 2 : $# ))

if ! ls "${build_dir}"/bench/bench_* >/dev/null 2>&1; then
  echo "no bench binaries under ${build_dir}/bench — build first:" >&2
  echo "  cmake -B ${build_dir} -S . && cmake --build ${build_dir} -j" >&2
  exit 1
fi

# Injection points cost one branch per site even when no plan is active;
# perf numbers from such a build would not be comparable across PRs. Skip
# (successfully — CI treats this as "no perf point today") rather than
# record a tainted one.
if grep -q '^SG_INJECT:BOOL=ON$' "${build_dir}/CMakeCache.txt" 2>/dev/null; then
  echo "skipping benches: ${build_dir} was configured with SG_INJECT=ON" >&2
  echo "reconfigure a bench build first:" >&2
  echo "  cmake -B ${build_dir} -S . -DSG_INJECT=OFF && cmake --build ${build_dir} -j" >&2
  exit 0
fi

# Same policy for the lockdep validator: it serializes part of every lock
# acquisition, so its numbers are not comparable perf points either.
if grep -q '^SG_LOCKDEP:BOOL=ON$' "${build_dir}/CMakeCache.txt" 2>/dev/null; then
  echo "skipping benches: ${build_dir} was configured with SG_LOCKDEP=ON" >&2
  echo "reconfigure a bench build first:" >&2
  echo "  cmake -B ${build_dir} -S . -DSG_LOCKDEP=OFF && cmake --build ${build_dir} -j" >&2
  exit 0
fi

# And for the sanitizers (asan/ubsan/tsan): instrumented numbers are not
# perf points.
for opt in SG_ASAN SG_UBSAN SG_TSAN; do
  if grep -q "^${opt}:BOOL=ON$" "${build_dir}/CMakeCache.txt" 2>/dev/null; then
    echo "skipping benches: ${build_dir} was configured with ${opt}=ON" >&2
    exit 0
  fi
done

tmp=$(mktemp)
trap 'rm -f "${tmp}"' EXIT

for b in "${build_dir}"/bench/bench_*; do
  [ -x "${b}" ] || continue
  echo "== $(basename "${b}")" >&2
  # The console reporter's color resets land at the start of the next line
  # (even piped — it is constructed with OO_ColorTabular), so strip ANSI
  # escapes before the anchored grep.
  "${b}" "$@" | sed -e $'s/\x1b\\[[0-9;]*m//g' | grep '^{"bench"' >> "${tmp}"
done

mv "${tmp}" "${out}"
trap - EXIT
echo "wrote $(wc -l < "${out}") bench results to ${out}" >&2
