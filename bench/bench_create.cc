// E1 + E2 — task creation cost (DESIGN.md §3).
//
// Paper claims reproduced here:
//   §7  "the time for a sproc() system call is slightly less than a regular
//        fork()" — because a VM-sharing sproc skips the copy-on-write
//        duplication of the image; the gap grows with the number of
//        resident pages the image holds.
//   §3  "the Mach kernel can create and destroy threads at 10 times the
//        rate of the fork() system call" — threads allocate only a kernel
//        context, no process image at all. (And §3's rebuttal: creation
//        rate is irrelevant under self-scheduling — see bench_self_sched.)
//
// Each iteration runs a batch of create+reap pairs from inside a simulated
// process; the `pages` argument is how many image pages the creator has
// resident (what fork must dup).
#include "bench/bench_util.h"
#include "mach/task.h"

namespace sg {
namespace {

constexpr int kBatch = 64;

// Touches `pages` pages of arena so the image has that many resident pages.
vaddr_t TouchPages(Env& env, u64 pages) {
  const vaddr_t base = env.Mmap(pages * kPageSize);
  for (u64 i = 0; i < pages; ++i) {
    env.Store32(base + i * kPageSize, static_cast<u32>(i));
  }
  return base;
}

void Noop(Env&, long) {}

void CreateBatch(Env& env, u32 mode /*0=fork 1=sproc-shared 2=sproc-cow*/) {
  for (int i = 0; i < kBatch; ++i) {
    pid_t pid = -1;
    switch (mode) {
      case 0: pid = env.Fork(Noop); break;
      case 1: pid = env.Sproc(Noop, PR_SALL); break;
      case 2: pid = env.Sproc(Noop, PR_SFDS); break;  // member, but COW image
    }
    if (pid < 0) {
      std::abort();
    }
    env.WaitChild();
  }
}

void BM_Create(benchmark::State& state, u32 mode) {
  const u64 pages = static_cast<u64>(state.range(0));
  BootParams bp;
  bp.phys_mem_bytes = u64{512} << 20;
  Kernel k(bp);
  for (auto _ : state) {
    RunSim(k, [&](Env& env) {
      TouchPages(env, pages);
      CreateBatch(env, mode);
    });
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
  state.counters["img_pages"] = static_cast<double>(pages);
}

void BM_Fork(benchmark::State& state) { BM_Create(state, 0); }
void BM_SprocShared(benchmark::State& state) { BM_Create(state, 1); }
void BM_SprocCow(benchmark::State& state) { BM_Create(state, 2); }

BENCHMARK(BM_Fork)->Arg(16)->Arg(256)->Arg(2048)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SprocShared)->Arg(16)->Arg(256)->Arg(2048)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SprocCow)->Arg(16)->Arg(256)->Arg(2048)->Unit(benchmark::kMicrosecond);

// E2: Mach-style thread create/join against process creation at the same
// image size (the image size is irrelevant to threads — that IS the claim).
void BM_MachThread(benchmark::State& state) {
  const u64 pages = static_cast<u64>(state.range(0));
  BootParams bp;
  bp.phys_mem_bytes = u64{512} << 20;
  Kernel k(bp);
  for (auto _ : state) {
    RunSim(k, [&](Env& env) {
      TouchPages(env, pages);
      MachTask task(env.proc(), k.mem(), k.sched());
      for (int i = 0; i < kBatch; ++i) {
        auto tid = task.ThreadCreate([](int) {});
        if (!tid.ok()) {
          std::abort();
        }
        if (!task.ThreadJoin(tid.value()).ok()) {
          std::abort();
        }
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
  state.counters["img_pages"] = static_cast<double>(pages);
}

BENCHMARK(BM_MachThread)->Arg(16)->Arg(2048)->Unit(benchmark::kMicrosecond);

// Harness floor: launch + page touching with NO creations, so per-creation
// costs can be read as (variant - baseline) / batch.
void BM_Baseline(benchmark::State& state) {
  const u64 pages = static_cast<u64>(state.range(0));
  BootParams bp;
  bp.phys_mem_bytes = u64{512} << 20;
  Kernel k(bp);
  for (auto _ : state) {
    RunSim(k, [&](Env& env) { TouchPages(env, pages); });
  }
  state.counters["img_pages"] = static_cast<double>(pages);
}

BENCHMARK(BM_Baseline)->Arg(16)->Arg(256)->Arg(2048)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace sg
