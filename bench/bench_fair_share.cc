// E11 — fair-share isolation (src/rm/): one tenant group misbehaves (8
// spinning members) while three well-behaved tenants (2 members each) run
// the same loop at equal shares on 4 simulated CPUs. Without the resource
// manager the unfair tenant would take ~8/14 of the machine; with decayed
// usage feeding effective priority it self-throttles toward its 1/4
// entitlement. The reported counters are each tenant's achieved share of
// total work, and fair_min_entitled = worst fair tenant's share divided by
// its 0.25 entitlement (the acceptance bar is >= 0.8).
//
// The second experiment isolates the scheduler-side cost: ns per
// acquire/release decision as the number of live groups grows. The rm walk
// is O(depth), not O(groups), so the curve must stay flat.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <vector>

#include "bench/bench_util.h"
#include "proc/scheduler.h"
#include "rm/rm.h"

namespace sg {
namespace {

constexpr int kTenants = 4;
constexpr int kUnfairMembers = 8;  // tenant 0
constexpr int kFairMembers = 2;    // tenants 1..3
constexpr auto kWindow = std::chrono::milliseconds(200);

void SpinLoop(Env& c, std::atomic<u64>& counter, std::atomic<bool>& stop) {
  const vaddr_t scratch = c.Mmap(kPageSize);
  while (!stop.load(std::memory_order_relaxed)) {
    for (int n = 0; n < 32; ++n) {
      c.Store32(scratch, static_cast<u32>(n));
    }
    counter.fetch_add(1, std::memory_order_relaxed);
    c.Yield();  // scheduling point: effective priorities decide who runs
  }
}

void BM_FairShareIsolation(benchmark::State& state) {
  BootParams bp;
  bp.ncpus = 4;
  Kernel k(bp);
  double fair_min = 0.0, fair_sum = 0.0, unfair = 0.0;
  for (auto _ : state) {
    // Received CPU is scored as slot-time charged by the scheduler to each
    // tenant's rm node — the resource actually being arbitrated. (Loop
    // iteration counts would also fold in HOST scheduling noise: on a
    // narrow host, the 14 member threads multiplex over few cores.)
    std::atomic<u64> work[kTenants] = {};
    std::atomic<u64> slot_ns[kTenants] = {};
    std::atomic<bool> stop{false};
    RunSim(k, [&](Env& env) {
      for (int t = 0; t < kTenants; ++t) {
        env.Fork(
            [&, t](Env& founder, long) {
              const int members = t == 0 ? kUnfairMembers : kFairMembers;
              // The founder's first sproc forms the tenant's share group;
              // every tenant runs at the same (default) shares weight.
              for (int m = 1; m < members; ++m) {
                founder.Sproc([&, t](Env& c, long) { SpinLoop(c, work[t], stop); },
                              PR_SADDR);
              }
              SpinLoop(founder, work[t], stop);
              for (int m = 1; m < members; ++m) {
                founder.WaitChild();
              }
              // Members are reaped (final slices charged); the founder is
              // still attached, so the node is alive to read.
              slot_ns[t] = founder.proc().shaddr->rm_node()->charged_total_ns();
            });
      }
      const auto t0 = std::chrono::steady_clock::now();
      while (std::chrono::steady_clock::now() - t0 < kWindow) {
        env.Yield();
      }
      stop = true;
      for (int t = 0; t < kTenants; ++t) {
        env.WaitChild();
      }
    });
    double total = 0.0;
    for (int t = 0; t < kTenants; ++t) {
      total += static_cast<double>(slot_ns[t].load());
    }
    if (total <= 0.0) {
      continue;
    }
    unfair = static_cast<double>(slot_ns[0].load()) / total;
    fair_min = 1.0;
    fair_sum = 0.0;
    for (int t = 1; t < kTenants; ++t) {
      const double share = static_cast<double>(slot_ns[t].load()) / total;
      fair_sum += share;
      fair_min = std::min(fair_min, share);
    }
  }
  // Every tenant is entitled to 1/kTenants of the machine.
  state.counters["unfair_share"] = unfair;
  state.counters["fair_min_share"] = fair_min;
  state.counters["fair_sum_share"] = fair_sum;
  state.counters["fair_min_entitled"] = fair_min * kTenants;
}

BENCHMARK(BM_FairShareIsolation)->Unit(benchmark::kMillisecond)->Iterations(1);

// Scheduler-side overhead per acquire/release decision as live groups grow.
// Round-robins the acquiring "process" across every group so each decision
// pays the full effective-priority + charge path.
void BM_SchedOverheadVsGroups(benchmark::State& state) {
  const int groups = static_cast<int>(state.range(0));
  Scheduler sched(1);
  rm::ResourceManager m;
  std::vector<rm::GroupNode*> nodes;
  nodes.reserve(groups);
  for (int g = 0; g < groups; ++g) {
    nodes.push_back(m.CreateNode());
  }
  size_t i = 0;
  for (auto _ : state) {
    rm::GroupNode* node = nodes[i++ % nodes.size()];
    const u32 cpu = sched.AcquireCpu(0, node);
    sched.ReleaseCpu(cpu, node);
  }
  state.counters["groups"] = groups;
  for (rm::GroupNode* n : nodes) {
    m.ReleaseNode(n);
  }
}

BENCHMARK(BM_SchedOverheadVsGroups)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

}  // namespace
}  // namespace sg
