// E5 — data-passing bandwidth (§3 "Bandwidth"): "if the amount of data is
// large, or frequently accessed in parallel, then a shared memory model
// provides the highest bandwidth possible", while pipes and System V
// messages pay the copy-into-kernel / copy-out-of-kernel queueing tax.
//
// Fair accounting: every variant moves the payload through SIMULATED user
// memory. The producer generates the data with word stores (pass 1) and
// the consumer checksums it with word loads (final pass). In between:
//   * shared memory — nothing: the consumer reads the producer's buffer in
//     place (2 passes total, zero kernel copies);
//   * pipe          — write(2) copies user->kernel and read(2) copies
//                     kernel->user through a 4 KiB pipe buffer (4 passes);
//   * sysv msgq     — msgsnd/msgrcv do the same two copies through a
//                     bounded message queue (4 passes).
#include "bench/bench_util.h"

namespace sg {
namespace {

constexpr u64 kChunk = 4096;

// Pass 1: generate `len` bytes at `buf` with 64-bit stores.
void Generate(Env& env, vaddr_t buf, u64 len) {
  for (u64 off = 0; off < len; off += 8) {
    env.Store<u64>(buf + off, off * 1315423911u);
  }
}

// Final pass: checksum `len` bytes at `buf` with 64-bit loads.
u64 Consume(Env& env, vaddr_t buf, u64 len) {
  u64 sum = 0;
  for (u64 off = 0; off < len; off += 8) {
    sum += env.Load<u64>(buf + off);
  }
  return sum;
}

void BM_PipeBandwidth(benchmark::State& state) {
  const u64 bytes = static_cast<u64>(state.range(0));
  BootParams bp;
  bp.phys_mem_bytes = u64{512} << 20;
  Kernel k(bp);
  for (auto _ : state) {
    RunSim(k, [&](Env& env) {
      int rd = -1, wr = -1;
      env.Pipe(&rd, &wr);
      env.Fork([rd, wr, bytes](Env& c, long) {
        c.Close(wr);
        const vaddr_t buf = c.Mmap(kChunk);
        u64 got = 0;
        u64 sum = 0;
        while (got < bytes) {
          const i64 n = c.Read(rd, buf, kChunk);  // kernel -> user copy
          if (n <= 0) {
            break;
          }
          sum += Consume(c, buf, static_cast<u64>(n));
          got += static_cast<u64>(n);
        }
        benchmark::DoNotOptimize(sum);
      });
      env.Close(rd);
      const vaddr_t buf = env.Mmap(kChunk);
      u64 sent = 0;
      while (sent < bytes) {
        const u64 n = std::min(kChunk, bytes - sent);
        Generate(env, buf, n);
        env.Write(wr, buf, n);  // user -> kernel copy
        sent += n;
      }
      env.Close(wr);
      env.WaitChild();
    });
  }
  state.SetBytesProcessed(state.iterations() * static_cast<i64>(bytes));
}

BENCHMARK(BM_PipeBandwidth)->Arg(64 << 10)->Arg(1 << 20)->Arg(8 << 20)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_MsgQueueBandwidth(benchmark::State& state) {
  const u64 bytes = static_cast<u64>(state.range(0));
  BootParams bp;
  bp.phys_mem_bytes = u64{512} << 20;
  Kernel k(bp);
  for (auto _ : state) {
    RunSim(k, [&](Env& env) {
      const int q = env.Msgget(0);
      env.Fork([q, bytes](Env& c, long) {
        const vaddr_t buf = c.Mmap(kChunk);
        u64 got = 0;
        u64 sum = 0;
        while (got < bytes) {
          const i64 n = c.MsgrcvU(q, buf, kChunk);
          if (n <= 0) {
            break;
          }
          sum += Consume(c, buf, static_cast<u64>(n));
          got += static_cast<u64>(n);
        }
        benchmark::DoNotOptimize(sum);
      });
      const vaddr_t buf = env.Mmap(kChunk);
      u64 sent = 0;
      while (sent < bytes) {
        const u64 n = std::min(kChunk, bytes - sent);
        Generate(env, buf, n);
        env.MsgsndU(q, buf, n);
        sent += n;
      }
      env.WaitChild();
    });
  }
  state.SetBytesProcessed(state.iterations() * static_cast<i64>(bytes));
}

BENCHMARK(BM_MsgQueueBandwidth)->Arg(64 << 10)->Arg(1 << 20)->Arg(8 << 20)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

// Shared memory inside a share group: the producer generates straight into
// the shared image; the consumer checksums it in place. One atomic flag
// handoff per 64 KiB window, no kernel copies at all.
void BM_SharedMemBandwidth(benchmark::State& state) {
  const u64 bytes = static_cast<u64>(state.range(0));
  BootParams bp;
  bp.phys_mem_bytes = u64{512} << 20;
  Kernel k(bp);
  static constexpr u64 kWindow = 64 << 10;
  for (auto _ : state) {
    RunSim(k, [&](Env& env) {
      const vaddr_t base = env.Mmap(2 * kWindow + kPageSize);
      const vaddr_t flag = base + 2 * kWindow;  // 0 empty, 1|2 = window id
      env.Sproc(
          [base, flag, bytes](Env& c, long) {
            u64 got = 0;
            u64 sum = 0;
            while (got < bytes) {
              u32 which;
              while ((which = c.AtomicRead32(flag)) == 0) {
                c.Yield();
              }
              const u64 n = std::min(kWindow, bytes - got);
              sum += Consume(c, base + (which - 1) * kWindow, n);
              got += n;
              c.AtomicWrite32(flag, 0);
            }
            benchmark::DoNotOptimize(sum);
          },
          PR_SADDR, 0);
      u64 sent = 0;
      u32 next = 1;
      while (sent < bytes) {
        const u64 n = std::min(kWindow, bytes - sent);
        Generate(env, base + (next - 1) * kWindow, n);
        while (env.AtomicRead32(flag) != 0) {
          env.Yield();
        }
        env.AtomicWrite32(flag, next);
        sent += n;
        next = 3 - next;
      }
      env.WaitChild();
    });
  }
  state.SetBytesProcessed(state.iterations() * static_cast<i64>(bytes));
}

BENCHMARK(BM_SharedMemBandwidth)->Arg(64 << 10)->Arg(1 << 20)->Arg(8 << 20)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sg
