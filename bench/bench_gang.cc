// E10 — group scheduling, the §8 future-work idea implemented as an
// extension (PR_SETGROUPPRI): "the shared address block ... provides a
// convenient handle for making scheduling decisions about the process
// group as a whole. ... The priority of the whole group could be raised or
// lowered."
//
// A two-member share group runs spin-barrier rounds while background
// processes compete for the simulated CPUs (2 CPUs, 4 background spinners).
// With the group's priority raised, both members win slots at every
// scheduling point and the barrier makes progress at full speed; at equal
// priority the members are frequently split apart and each round stalls —
// the exact pathology gang scheduling exists to prevent.
#include "bench/bench_util.h"

namespace sg {
namespace {

constexpr int kRounds = 64;
constexpr int kBackground = 4;

void BM_GroupBarrier(benchmark::State& state, bool gang) {
  BootParams bp;
  bp.ncpus = 2;
  Kernel k(bp);
  for (auto _ : state) {
    RunSim(k, [&](Env& env) {
      const vaddr_t bar = env.Mmap(kPageSize);
      std::atomic<bool> stop{false};
      // Background load: plain processes burning their timeslices.
      std::vector<pid_t> noise;
      for (int i = 0; i < kBackground; ++i) {
        noise.push_back(env.Fork([&stop](Env& c, long) {
          const vaddr_t scratch = c.Mmap(kPageSize);
          while (!stop.load()) {
            for (int n = 0; n < 64; ++n) {
              c.Store32(scratch, static_cast<u32>(n));
            }
            c.Yield();  // scheduling point: priorities decide who runs
          }
        }));
      }
      // The gang: one partner member plus ourselves.
      env.Sproc(
          [bar](Env& c, long) {
            for (int r = 0; r < kRounds; ++r) {
              c.SpinBarrier(bar, 2);
            }
          },
          PR_SADDR);
      if (gang) {
        env.Prctl(PR_SETGROUPPRI, 10);
      }
      for (int r = 0; r < kRounds; ++r) {
        env.SpinBarrier(bar, 2);
      }
      env.WaitChild();  // the partner
      stop = true;
      for (size_t i = 0; i < noise.size(); ++i) {
        env.WaitChild();
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * kRounds);
  state.counters["gang"] = gang ? 1 : 0;
}

void BM_BarrierNoGang(benchmark::State& state) { BM_GroupBarrier(state, false); }
void BM_BarrierGang(benchmark::State& state) { BM_GroupBarrier(state, true); }

BENCHMARK(BM_BarrierNoGang)->Unit(benchmark::kMillisecond)->Iterations(5);
BENCHMARK(BM_BarrierGang)->Unit(benchmark::kMillisecond)->Iterations(5);

}  // namespace
}  // namespace sg
