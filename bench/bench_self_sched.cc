// E7 — self-scheduling vs dynamic creation (§3): "parallel programs tend to
// use a static number of tasks, and these tasks can be preallocated, which
// avoids dynamic startup costs ... If normal processes are used instead of
// threads, then the speed penalties of process creation are eliminated by
// creating a pool of processes before entering parallel sections of code,
// each of which then self-schedules as work becomes available."
//
// Fixed total work (kItems items of kSpinWork simulated memory ops each):
//   * pool      — kWorkers preallocated sproc members, shared work cursor;
//   * per-item  — one fresh sproc member created (and reaped) per item;
//   * per-fork  — one fresh fork child per item (the heaviest creation).
#include "bench/bench_util.h"

namespace sg {
namespace {

constexpr int kWorkers = 4;
constexpr u32 kItems = 256;     // many small items: the regime where dynamic
constexpr u32 kSpinWork = 500;  // creation cost dominates (simulated ops/item)

void DoItem(Env& env, vaddr_t scratch) {
  for (u32 i = 0; i < kSpinWork; ++i) {
    env.Store32(scratch + 4 * (i % 512), i);
  }
}

void BM_SelfSchedulingPool(benchmark::State& state) {
  Kernel k;
  for (auto _ : state) {
    RunSim(k, [&](Env& env) {
      const vaddr_t base = env.Mmap(16 * kPageSize);
      const vaddr_t cursor = base;  // work queue: a shared cursor
      for (int w = 0; w < kWorkers; ++w) {
        env.Sproc(
            [base, cursor](Env& c, long widx) {
              const vaddr_t scratch = base + kPageSize * (1 + static_cast<u64>(widx));
              for (;;) {
                const u32 item = c.FetchAdd32(cursor, 1);
                if (item >= kItems) {
                  return;
                }
                DoItem(c, scratch);
              }
            },
            PR_SADDR, w);
      }
      for (int w = 0; w < kWorkers; ++w) {
        env.WaitChild();
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * kItems);
}

BENCHMARK(BM_SelfSchedulingPool)->Unit(benchmark::kMillisecond);

void BM_SprocPerItem(benchmark::State& state) {
  Kernel k;
  for (auto _ : state) {
    RunSim(k, [&](Env& env) {
      const vaddr_t base = env.Mmap(16 * kPageSize);
      u32 issued = 0;
      while (issued < kItems) {
        int batch = 0;
        for (; batch < kWorkers && issued < kItems; ++batch, ++issued) {
          env.Sproc(
              [base](Env& c, long widx) {
                DoItem(c, base + kPageSize * (1 + static_cast<u64>(widx % kWorkers)));
              },
              PR_SADDR, batch);
        }
        for (int i = 0; i < batch; ++i) {
          env.WaitChild();
        }
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * kItems);
}

BENCHMARK(BM_SprocPerItem)->Unit(benchmark::kMillisecond);

void BM_ForkPerItem(benchmark::State& state) {
  Kernel k;
  for (auto _ : state) {
    RunSim(k, [&](Env& env) {
      const vaddr_t base = env.Mmap(16 * kPageSize);
      env.Store32(base, 1);  // resident page for fork to dup
      u32 issued = 0;
      while (issued < kItems) {
        int batch = 0;
        for (; batch < kWorkers && issued < kItems; ++batch, ++issued) {
          env.Fork(
              [base](Env& c, long widx) {
                DoItem(c, base + kPageSize * (1 + static_cast<u64>(widx % kWorkers)));
              },
              batch);
        }
        for (int i = 0; i < batch; ++i) {
          env.WaitChild();
        }
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * kItems);
}

BENCHMARK(BM_ForkPerItem)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sg
