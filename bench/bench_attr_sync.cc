// E9 — the §6.3 attribute-synchronization machinery itself:
//   * the kernel-entry fast path (clean bits) vs slow path (dirty bits) —
//     see also bench_no_penalty for the plain-process baseline;
//   * the cost of UPDATING a shared scalar as group size grows (the update
//     flags every other sharing member: linear in members);
//   * descriptor-table publish cost as the table fills (the master copy is
//     a full-table copy with reference-count traffic);
//   * the pull cost a member pays on its first entry after being flagged.
#include <chrono>

#include "bench/bench_util.h"
#include "core/shaddr.h"

namespace sg {
namespace {

double Secs(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// Sleeping members so the group has `members` extra entries to flag.
std::vector<pid_t> SpawnSleepers(Env& env, int members) {
  std::vector<pid_t> pids;
  for (int i = 0; i < members; ++i) {
    const pid_t pid = env.Sproc(
        [](Env& c, long) {
          while (true) {
            c.Pause();
          }
        },
        PR_SALL);
    if (pid > 0) {
      pids.push_back(pid);
    }
  }
  return pids;
}

void ReapSleepers(Env& env, const std::vector<pid_t>& pids) {
  for (pid_t pid : pids) {
    env.Kill(pid, kSigKill);
  }
  for (size_t i = 0; i < pids.size(); ++i) {
    env.WaitChild();
  }
}

void BM_UmaskUpdateVsGroupSize(benchmark::State& state) {
  const int members = static_cast<int>(state.range(0));
  Kernel k;
  constexpr int kCalls = 1024;
  for (auto _ : state) {
    double elapsed = 0;
    RunSim(k, [&](Env& env) {
      auto pids = SpawnSleepers(env, members);
      const auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < kCalls; ++i) {
        env.Umask(static_cast<mode_t>(i & 0777));  // update + flag the others
      }
      elapsed = Secs(t0);
      ReapSleepers(env, pids);
    });
    state.SetIterationTime(elapsed);
  }
  state.SetItemsProcessed(state.iterations() * kCalls);
  state.counters["members"] = members;
}

BENCHMARK(BM_UmaskUpdateVsGroupSize)->Arg(0)->Arg(1)->Arg(3)->Arg(7)->Arg(15)
    ->UseManualTime();

void BM_FdPublishVsTableSize(benchmark::State& state) {
  const int open_fds = static_cast<int>(state.range(0));
  Kernel k;
  constexpr int kCalls = 256;
  for (auto _ : state) {
    double elapsed = 0;
    RunSim(k, [&](Env& env) {
      auto pids = SpawnSleepers(env, 2);
      for (int i = 0; i < open_fds; ++i) {
        char path[32];
        std::snprintf(path, sizeof(path), "/fill%d", i);
        env.Open(path, kOpenWrite | kOpenCreat);
      }
      const auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < kCalls; ++i) {
        // Each open+close republishes the table into s_ofile (full copy).
        const int fd = env.Open("/churn", kOpenWrite | kOpenCreat);
        env.Close(fd);
      }
      elapsed = Secs(t0);
      ReapSleepers(env, pids);
    });
    state.SetIterationTime(elapsed);
  }
  state.SetItemsProcessed(state.iterations() * kCalls);
  state.counters["open_fds"] = open_fds;
}

BENCHMARK(BM_FdPublishVsTableSize)->Arg(0)->Arg(16)->Arg(48)->UseManualTime();

void BM_PullCostAfterFlag(benchmark::State& state) {
  Kernel k;
  constexpr int kCalls = 1024;
  for (auto _ : state) {
    double elapsed = 0;
    RunSim(k, [&](Env& env) {
      env.Sproc([](Env&, long) {}, PR_SALL);
      env.WaitChild();
      const auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < kCalls; ++i) {
        // Flag ourselves dirty on every resource, then pay one entry-sync.
        env.proc().p_flag.fetch_or(kPfSyncAny & ~kPfSyncFds, std::memory_order_relaxed);
        benchmark::DoNotOptimize(env.UlimitGet());
      }
      elapsed = Secs(t0);
    });
    state.SetIterationTime(elapsed);
  }
  state.SetItemsProcessed(state.iterations() * kCalls);
}

BENCHMARK(BM_PullCostAfterFlag)->UseManualTime();

void BM_FdPullAfterFlag(benchmark::State& state) {
  const int open_fds = static_cast<int>(state.range(0));
  Kernel k;
  constexpr int kCalls = 256;
  for (auto _ : state) {
    double elapsed = 0;
    RunSim(k, [&](Env& env) {
      for (int i = 0; i < open_fds; ++i) {
        char path[32];
        std::snprintf(path, sizeof(path), "/pf%d", i);
        env.Open(path, kOpenWrite | kOpenCreat);
      }
      env.Sproc([](Env&, long) {}, PR_SALL);
      env.WaitChild();
      const auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < kCalls; ++i) {
        // A full descriptor-table pull: release ours, dup the master's.
        env.proc().p_flag.fetch_or(kPfSyncFds, std::memory_order_relaxed);
        benchmark::DoNotOptimize(env.UlimitGet());
      }
      elapsed = Secs(t0);
    });
    state.SetIterationTime(elapsed);
  }
  state.SetItemsProcessed(state.iterations() * kCalls);
  state.counters["open_fds"] = open_fds;
}

BENCHMARK(BM_FdPullAfterFlag)->Arg(0)->Arg(16)->Arg(48)->UseManualTime();

// The delta-sync headline: publish + member pull for a ONE-descriptor
// change while the table holds `open_fds` other descriptors. With
// generation stamps both sides are O(changed); the curve should be flat
// where BM_FdPublishVsTableSize/BM_FdPullAfterFlag used to grow linearly.
void BM_FdSingleChangeInLargeTable(benchmark::State& state) {
  const int open_fds = static_cast<int>(state.range(0));
  Kernel k;
  constexpr int kCalls = 256;
  for (auto _ : state) {
    double elapsed = 0;
    RunSim(k, [&](Env& env) {
      auto pids = SpawnSleepers(env, 2);
      for (int i = 0; i < open_fds; ++i) {
        char path[32];
        std::snprintf(path, sizeof(path), "/sc%d", i);
        env.Open(path, kOpenWrite | kOpenCreat);
      }
      (void)env.UlimitGet();  // fully synced before the clock starts
      const auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < kCalls; ++i) {
        // Publish side: open+close stamp one slot twice.
        const int fd = env.Open("/churn", kOpenWrite | kOpenCreat);
        env.Close(fd);
        // Pull side: rewind our sync markers past those two publishes so
        // the next entry repays the member-side delta pull, exactly what a
        // sleeping member pays when it wakes.
        env.proc().p_fd_synced_gen -= 2;
        env.proc().p_resgen = LaneSet(env.proc().p_resgen, kLaneFds,
                                      LaneGet(env.proc().p_resgen, kLaneFds) - 2);
        benchmark::DoNotOptimize(env.UlimitGet());
      }
      elapsed = Secs(t0);
      ReapSleepers(env, pids);
    });
    state.SetIterationTime(elapsed);
  }
  state.SetItemsProcessed(state.iterations() * kCalls);
  state.counters["open_fds"] = open_fds;
}

BENCHMARK(BM_FdSingleChangeInLargeTable)->Arg(0)->Arg(16)->Arg(48)->UseManualTime();

// Scalar update cost vs group size after the generation rework: the update
// bumps one lane instead of walking the member chain, so the curve should
// be flat in `members` (compare BM_UmaskUpdateVsGroupSize in BENCH_4).
// `members` counts OTHER live members: every point runs inside a share
// group (a group of one at members=0), so the series isolates scaling from
// the fixed private-path-vs-group-path delta that
// BM_UmaskUpdateVsGroupSize/0 already records.
void BM_ScalarUpdateVsGroupSize(benchmark::State& state) {
  const int members = static_cast<int>(state.range(0));
  Kernel k;
  constexpr int kCalls = 1024;
  for (auto _ : state) {
    double elapsed = 0;
    RunSim(k, [&](Env& env) {
      env.Sproc([](Env&, long) {}, PR_SALL);  // ensure the group exists
      env.WaitChild();
      auto pids = SpawnSleepers(env, members);
      const auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < kCalls; ++i) {
        // Alternate two shared scalars so both Update paths stay hot.
        if ((i & 1) == 0) {
          env.Umask(static_cast<mode_t>(i & 0777));
        } else {
          (void)env.UlimitSet(u64{1} << 30);
        }
      }
      elapsed = Secs(t0);
      ReapSleepers(env, pids);
    });
    state.SetIterationTime(elapsed);
  }
  state.SetItemsProcessed(state.iterations() * kCalls);
  state.counters["members"] = members;
}

BENCHMARK(BM_ScalarUpdateVsGroupSize)->Arg(0)->Arg(1)->Arg(3)->Arg(7)->Arg(15)
    ->UseManualTime();

}  // namespace
}  // namespace sg
