// Entry point shared by every bench binary: google-benchmark's own main
// plus the JSON-line reporter (bench_util.h) for machine-readable output.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  sg::JsonLineReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
