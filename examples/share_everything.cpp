// share_everything — a guided tour of the non-VM shared resources (§4-5):
// directory, umask, ulimit and uid propagation across a share group, plus
// the two escape hatches — fork() (COW twin outside the group) and exec()
// (leaves the group before overlaying the image).
#include <cstdio>

#include "api/kernel.h"
#include "api/user_env.h"

using namespace sg;

namespace {

void Main(Env& env, long) {
  int failures = 0;
  auto check = [&](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
    failures += ok ? 0 : 1;
  };

  std::printf("share_everything: pid %d is about to found a share group\n", env.Pid());
  env.Mkdir("/project");
  env.Mkdir("/project/src");

  // --- current directory (PR_SDIR) ---
  env.Sproc([](Env& c, long) { c.Chdir("/project/src"); }, PR_SALL);
  env.WaitChild();
  check(env.Open("main.c", kOpenWrite | kOpenCreat) >= 0,
        "child's chdir moved the whole group: relative create lands in /project/src");
  check(env.kernel().Stat(env.proc(), "/project/src/main.c").ok(),
        "…and is visible at the absolute path");

  // --- umask (PR_SUMASK) ---
  env.Umask(0);
  env.Sproc([](Env& c, long) { c.Umask(077); }, PR_SALL);
  env.WaitChild();
  env.Open("/project/locked", kOpenWrite | kOpenCreat, 0666);
  auto st = env.kernel().Stat(env.proc(), "/project/locked");
  check(st.ok() && st.value().mode == 0600, "child's umask 077 shaped our create (0666 -> 0600)");

  // --- ulimit (PR_SULIMIT) ---
  env.Sproc([](Env& c, long) { c.UlimitSet(1024); }, PR_SALL);
  env.WaitChild();
  int fd = env.Open("/project/big", kOpenWrite | kOpenCreat);
  std::vector<std::byte> blob(4096, std::byte{1});
  check(env.WriteBuf(fd, blob) == 1024, "child's ulimit caps our write at 1024 bytes");

  // --- uid (PR_SID) ---
  env.Sproc([](Env& c, long) { c.Setuid(7); }, PR_SALL);
  env.WaitChild();
  check(env.Getuid() == 7, "child's setuid(7) changed the whole group's identity");

  // --- fork: outside the group ---
  std::atomic<bool> fork_outside{false};
  env.Fork([&](Env& c, long) {
    fork_outside = (c.proc().shaddr == nullptr);
    c.Umask(0);  // private to the fork child; must not reach the group
  });
  env.WaitChild();
  check(fork_outside.load(), "fork(2) child is NOT a group member");
  check(env.Umask(077) == 077, "…and its umask games never reached us");

  // --- exec: leaves the group ---
  std::atomic<bool> exec_left{false};
  env.Sproc(
      [&](Env& c, long) {
        Image img;
        img.name = "newprog";
        img.main = [&](Env& e2, long) { exec_left = (e2.proc().shaddr == nullptr); };
        c.Exec(img);
      },
      PR_SALL);
  env.WaitChild();
  check(exec_left.load(), "exec(2) removed the member before overlaying the image");

  std::printf("share_everything: %s (%d failures)\n", failures == 0 ? "OK" : "MISMATCH",
              failures);
  env.Exit(failures == 0 ? 0 : 1);
}

}  // namespace

int main() {
  Kernel kernel;
  if (!kernel.Launch(Main).ok()) {
    return 1;
  }
  kernel.WaitAll();
  return 0;
}
