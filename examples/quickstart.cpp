// quickstart — the smallest complete share-group program.
//
// Boots the simulated kernel, creates a share group with sproc(2) members
// that share everything (PR_SALL), sums an array in parallel over shared
// memory with user-level busy-wait locks (§3), and prints the result.
//
//   $ ./quickstart
#include <cstdio>

#include "api/kernel.h"
#include "api/user_env.h"

using namespace sg;

namespace {

constexpr int kWorkers = 4;
constexpr u32 kElements = 64 * 1024;

// Shared-memory layout (offsets into one mapping).
constexpr vaddr_t kOffLock = 0;     // u32 spinlock word
constexpr vaddr_t kOffSum = 64;     // u32 running total
constexpr vaddr_t kOffNext = 128;   // u32 self-scheduling cursor
constexpr vaddr_t kOffData = 4096;  // kElements u32 values

void Worker(Env& env, long arg) {
  const vaddr_t base = static_cast<vaddr_t>(arg);
  constexpr u32 kChunk = 1024;
  u32 local = 0;
  // Self-scheduling (§3): grab the next chunk of work until none is left.
  for (;;) {
    const u32 start = env.FetchAdd32(base + kOffNext, kChunk);
    if (start >= kElements) {
      break;
    }
    const u32 end = std::min(start + kChunk, kElements);
    for (u32 i = start; i < end; ++i) {
      local += env.Load32(base + kOffData + 4ULL * i);
    }
  }
  // Publish under the busy-wait lock ("synchronization speeds can approach
  // memory access speeds").
  env.SpinLock(base + kOffLock);
  env.Store32(base + kOffSum, env.Load32(base + kOffSum) + local);
  env.SpinUnlock(base + kOffLock);
}

void Main(Env& env, long) {
  // One mapping, immediately visible to every later group member.
  const vaddr_t base = env.Mmap(kOffData + 4ULL * kElements);
  if (base == 0) {
    std::printf("mmap failed: %s\n", ErrnoName(env.LastError()));
    env.Exit(1);
  }
  u64 expect = 0;
  for (u32 i = 0; i < kElements; ++i) {
    env.Store32(base + kOffData + 4ULL * i, i % 97);
    expect += i % 97;
  }

  std::printf("quickstart: machine has %ld processors (prctl PR_MAXPPROCS)\n",
              env.Prctl(PR_MAXPPROCS));
  for (int w = 0; w < kWorkers; ++w) {
    const pid_t pid = env.Sproc(Worker, PR_SALL, static_cast<long>(base));
    if (pid < 0) {
      std::printf("sproc failed: %s\n", ErrnoName(env.LastError()));
      env.Exit(1);
    }
  }
  for (int w = 0; w < kWorkers; ++w) {
    env.WaitChild();
  }

  const u32 sum = env.Load32(base + kOffSum);
  std::printf("quickstart: %u workers summed %u elements -> %u (expected %llu): %s\n",
              kWorkers, kElements, sum, static_cast<unsigned long long>(expect),
              sum == expect ? "OK" : "MISMATCH");
  env.Exit(sum == expect ? 0 : 1);
}

}  // namespace

int main() {
  Kernel kernel;
  auto pid = kernel.Launch(Main);
  if (!pid.ok()) {
    std::fprintf(stderr, "launch failed\n");
    return 1;
  }
  kernel.WaitAll();
  return 0;
}
