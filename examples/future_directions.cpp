// future_directions — a tour of the paper's §8 "Future Directions",
// implemented in this repository as working extensions:
//
//   * PR_SETGROUPPRI  — scheduling decisions for the group as a whole
//   * PR_UNSHARE      — stop sharing a resource (including the VM image)
//   * PR_BLOCKGROUP / PR_UNBLKGROUP — freeze and thaw the whole group
//   * PR_JOINGROUP    — an unrelated process joins dynamically
//   * PR_PRIVDATA     — share part of the image, COW the rest
//
// plus the paging subsystem (the §6.2 "pager" reader) and file-backed
// mappings (§7's "mapping or unmapping files").
#include <cstdio>

#include "api/kernel.h"
#include "api/user_env.h"

using namespace sg;

namespace {

int failures = 0;
void Check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
  failures += ok ? 0 : 1;
}

std::atomic<pid_t> founder_pid{0};
std::atomic<bool> founder_done{false};
std::atomic<int> mailbox_fd{-1};

void Founder(Env& env, long) {
  std::printf("-- founder pid %d --\n", env.Pid());
  const vaddr_t a = env.Mmap(kPageSize);
  env.Store32(a, 10);

  // PR_PRIVDATA: a member sharing the image EXCEPT the data region.
  const vaddr_t heap = env.Sbrk(0) - kPageSize;
  env.Store32(heap, 1);
  env.Sproc(
      [a, heap](Env& c, long) {
        c.Store32(heap, 2);  // lands in the private COW shadow
        c.Store32(a, 11);    // lands in the shared image
      },
      PR_SADDR | PR_PRIVDATA);
  env.WaitChild();
  Check(env.Load32(heap) == 1 && env.Load32(a) == 11,
        "PR_PRIVDATA: heap write stayed private, arena write was shared");

  // PR_UNSHARE: a member snapshots the image and goes its own way.
  std::atomic<u32>* snap = new std::atomic<u32>(0);
  env.Sproc(
      [a, snap](Env& c, long) {
        c.Prctl(PR_UNSHARE, PR_SADDR);
        snap->store(c.Load32(a));  // sees the value at snapshot time
        c.Store32(a, 99);          // private from here on
      },
      PR_SADDR);
  env.WaitChild();
  Check(snap->load() == 11 && env.Load32(a) == 11,
        "PR_UNSHARE(PR_SADDR): fork-style snapshot, later writes private");
  delete snap;

  // PR_BLOCKGROUP: freeze a member mid-run, prove it stopped, thaw it.
  std::atomic<u64>* ticks = new std::atomic<u64>(0);
  env.Sproc(
      [ticks](Env& c, long) {
        for (int i = 0; i < 100000; ++i) {
          ticks->fetch_add(1);
          c.Yield();
          if (c.proc().sig_pending.load() != 0) {
            return;
          }
        }
      },
      PR_SALL);
  while (ticks->load() < 50) {
    env.Yield();
  }
  env.Prctl(PR_BLOCKGROUP);
  for (int i = 0; i < 100; ++i) {
    env.Yield();  // give a non-frozen member time to tick
  }
  const u64 frozen_at = ticks->load();
  for (int i = 0; i < 200; ++i) {
    env.Yield();
  }
  const bool held_still = (ticks->load() == frozen_at);
  env.Prctl(PR_UNBLKGROUP);
  while (ticks->load() == frozen_at) {
    env.Yield();
  }
  Check(held_still, "PR_BLOCKGROUP froze the member; PR_UNBLKGROUP resumed it");
  env.proc().shaddr->ForEachMember([&](Proc& m) {
    if (&m != &env.proc()) {
      m.PostSignal(kSigKill);
    }
  });
  env.WaitChild();
  delete ticks;

  // PR_SETGROUPPRI through the shared block.
  Check(env.Prctl(PR_SETGROUPPRI, 3) == 1 && env.proc().priority.load() == 3,
        "PR_SETGROUPPRI set the whole group's priority");

  // Open a mailbox file, then let the joiner in.
  mailbox_fd = env.Open("/mailbox", kOpenRdwr | kOpenCreat);
  founder_pid = env.Pid();
  while (!founder_done.load()) {
    env.Yield();
  }
  char buf[64] = {};
  env.Lseek(mailbox_fd.load(), 0);
  const i64 n = env.ReadBuf(mailbox_fd.load(),
                            std::as_writable_bytes(std::span<char>(buf, sizeof(buf) - 1)));
  Check(n > 0 && std::string_view(buf).find("joiner") != std::string_view::npos,
        "PR_JOINGROUP: the joiner wrote through our shared descriptor table");
}

void Joiner(Env& env, long) {
  while (founder_pid.load() == 0) {
    env.Yield();
  }
  std::printf("-- joiner pid %d --\n", env.Pid());
  const i64 mask = env.Prctl(PR_JOINGROUP, founder_pid.load());
  Check(mask == static_cast<i64>(PR_SALL & ~PR_SADDR),
        "PR_JOINGROUP acquired every non-VM resource");
  // The founder's descriptor is ours now — same NUMBER, same file.
  env.WriteStr(mailbox_fd.load(), "hello from the joiner\n");
  founder_done = true;
}

void PagerDemo(Env& env, long) {
  std::printf("-- pager demo pid %d --\n", env.Pid());
  // Working set 3x physical memory, via a shared file mapping: dirty pages
  // migrate file -> memory -> swap -> file without losing a byte.
  const int fd = env.Open("/big", kOpenRdwr | kOpenCreat);
  std::vector<std::byte> zero(kPageSize);
  for (int i = 0; i < 96; ++i) {
    env.WriteBuf(fd, zero);
  }
  const vaddr_t a = env.MmapFile(fd, 0, 96 * kPageSize, /*shared=*/true);
  for (u64 i = 0; i < 96; ++i) {
    env.Store32(a + i * kPageSize, static_cast<u32>(7000 + i));
  }
  env.Munmap(a);  // writeback, possibly from swap
  bool ok = true;
  for (u64 i = 0; i < 96; ++i) {
    u32 w = 0;
    env.Lseek(fd, static_cast<i64>(i * kPageSize));
    env.ReadBuf(fd, std::as_writable_bytes(std::span<u32>(&w, 1)));
    ok = ok && (w == 7000 + i);
  }
  Check(ok, "pager: 96-page dirty working set survived a 32-frame machine");
}

}  // namespace

int main() {
  {
    Kernel kernel;
    (void)kernel.Launch(Founder);
    (void)kernel.Launch(Joiner);
    kernel.WaitAll();
  }
  {
    BootParams bp;
    bp.phys_mem_bytes = 32 * kPageSize;
    bp.swap_pages = 512;
    Kernel small(bp);
    (void)small.Launch(PagerDemo);
    small.WaitAll();
    std::printf("  (swap activity: %llu outs, %llu ins)\n",
                static_cast<unsigned long long>(small.swap()->outs()),
                static_cast<unsigned long long>(small.swap()->ins()));
  }
  std::printf("future_directions: %s (%d failures)\n", failures == 0 ? "OK" : "MISMATCH",
              failures);
  return failures == 0 ? 0 : 1;
}
