// parallel_reduce — the §3 computational pattern, head to head.
//
// The same dot-product runs twice:
//   1. share group: a preallocated self-scheduling pool of sproc(PR_SADDR)
//      members over a shared work queue with busy-wait locks;
//   2. queueing baseline: fork() children that each receive their slice
//      over a pipe and send partial results back over another pipe
//      (the copy-twice model of Figure 2).
// It prints wall-clock times for both; on a multiprocessor configuration
// the shared-memory version's advantage is exactly the paper's argument.
#include <chrono>
#include <cstdio>

#include "api/kernel.h"
#include "api/user_env.h"

using namespace sg;

namespace {

constexpr int kWorkers = 4;
constexpr u32 kElements = 128 * 1024;

constexpr vaddr_t kOffNext = 0;
constexpr vaddr_t kOffLock = 64;
constexpr vaddr_t kOffSum = 128;   // u64 as two u32 halves avoided: store u64
constexpr vaddr_t kOffA = 4096;
// B follows A.
constexpr vaddr_t OffB() { return kOffA + 4ULL * kElements; }

double Now() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void PoolWorker(Env& env, long arg) {
  const vaddr_t base = static_cast<vaddr_t>(arg);
  constexpr u32 kChunk = 2048;
  u64 local = 0;
  for (;;) {
    const u32 start = env.FetchAdd32(base + kOffNext, kChunk);
    if (start >= kElements) {
      break;
    }
    const u32 end = std::min(start + kChunk, kElements);
    for (u32 i = start; i < end; ++i) {
      local += static_cast<u64>(env.Load32(base + kOffA + 4ULL * i)) *
               env.Load32(base + OffB() + 4ULL * i);
    }
  }
  env.SpinLock(base + kOffLock);
  env.Store<u64>(base + kOffSum, env.Load<u64>(base + kOffSum) + local);
  env.SpinUnlock(base + kOffLock);
}

u64 RunShareGroup(Env& env, vaddr_t base) {
  env.Store32(base + kOffNext, 0);
  env.Store<u64>(base + kOffSum, 0);
  for (int w = 0; w < kWorkers; ++w) {
    env.Sproc(PoolWorker, PR_SADDR, static_cast<long>(base));
  }
  for (int w = 0; w < kWorkers; ++w) {
    env.WaitChild();
  }
  return env.Load<u64>(base + kOffSum);
}

u64 RunForkPipes(Env& env, vaddr_t base) {
  // One result pipe; each child computes a static slice and writes its
  // partial sum (data crosses the kernel twice per message).
  int res_rd = -1, res_wr = -1;
  env.Pipe(&res_rd, &res_wr);
  const u32 slice = kElements / kWorkers;
  for (int w = 0; w < kWorkers; ++w) {
    const u32 start = static_cast<u32>(w) * slice;
    const u32 end = (w == kWorkers - 1) ? kElements : start + slice;
    env.Fork(
        [base, start, end, res_wr](Env& c, long) {
          u64 local = 0;
          for (u32 i = start; i < end; ++i) {
            // The fork children read their COW copy of the arrays.
            local += static_cast<u64>(c.Load32(base + kOffA + 4ULL * i)) *
                     c.Load32(base + OffB() + 4ULL * i);
          }
          c.WriteBuf(res_wr, std::as_bytes(std::span<const u64>(&local, 1)));
        });
  }
  u64 total = 0;
  for (int w = 0; w < kWorkers; ++w) {
    u64 part = 0;
    env.ReadBuf(res_rd, std::as_writable_bytes(std::span<u64>(&part, 1)));
    total += part;
  }
  for (int w = 0; w < kWorkers; ++w) {
    env.WaitChild();
  }
  env.Close(res_rd);
  env.Close(res_wr);
  return total;
}

void Main(Env& env, long) {
  const vaddr_t base = env.Mmap(kOffA + 8ULL * kElements);
  u64 expect = 0;
  for (u32 i = 0; i < kElements; ++i) {
    const u32 a = i % 251;
    const u32 b = i % 97;
    env.Store32(base + kOffA + 4ULL * i, a);
    env.Store32(base + OffB() + 4ULL * i, b);
    expect += static_cast<u64>(a) * b;
  }

  const double t0 = Now();
  const u64 pool = RunShareGroup(env, base);
  const double t1 = Now();
  const u64 piped = RunForkPipes(env, base);
  const double t2 = Now();

  std::printf("parallel_reduce: %u-element dot product, %d workers\n", kElements, kWorkers);
  std::printf("  share group (self-scheduling pool):  %8.2f ms  -> %llu\n", (t1 - t0) * 1e3,
              static_cast<unsigned long long>(pool));
  std::printf("  fork + pipes (queueing baseline):    %8.2f ms  -> %llu\n", (t2 - t1) * 1e3,
              static_cast<unsigned long long>(piped));
  const bool ok = pool == expect && piped == expect;
  std::printf("parallel_reduce: %s\n", ok ? "OK" : "MISMATCH");
  env.Exit(ok ? 0 : 1);
}

}  // namespace

int main() {
  BootParams bp;
  bp.phys_mem_bytes = u64{512} << 20;
  Kernel kernel(bp);
  if (!kernel.Launch(Main).ok()) {
    return 1;
  }
  kernel.WaitAll();
  return 0;
}
