// fd_server — the §1 network-server pattern.
//
// "A network server could share file descriptors with several children.
// The server would perform security checks and open a socket descriptor to
// the client, and then pass this descriptor to a waiting child with a
// simple message containing the descriptor."
//
// The "network" is simulated with per-client files; the server (parent)
// performs the security check (file permissions under its uid), opens the
// descriptor, and hands the NUMBER to a waiting worker through a shared-
// memory mailbox. Because the descriptor table is shared (PR_SFDS), the
// number alone is enough.
#include <cstdio>

#include "api/kernel.h"
#include "api/user_env.h"

using namespace sg;

namespace {

constexpr int kWorkers = 3;
constexpr int kClients = 9;

// Mailbox in shared memory: a tiny queue of descriptor numbers.
constexpr vaddr_t kOffLock = 0;
constexpr vaddr_t kOffCount = 64;     // fds queued and not yet taken
constexpr vaddr_t kOffServed = 68;    // total served (stats)
constexpr vaddr_t kOffStop = 72;
constexpr vaddr_t kOffQueue = 128;    // kClients u32 slots
constexpr vaddr_t kOffHead = 76;
constexpr vaddr_t kOffTail = 80;

void Worker(Env& env, long arg) {
  const vaddr_t base = static_cast<vaddr_t>(arg);
  for (;;) {
    int fd = -1;
    env.SpinLock(base + kOffLock);
    if (env.Load32(base + kOffCount) > 0) {
      const u32 head = env.Load32(base + kOffHead);
      fd = static_cast<int>(env.Load32(base + kOffQueue + 4ULL * (head % kClients)));
      env.Store32(base + kOffHead, head + 1);
      env.Store32(base + kOffCount, env.Load32(base + kOffCount) - 1);
    }
    env.SpinUnlock(base + kOffLock);
    if (fd < 0) {
      if (env.AtomicRead32(base + kOffStop) != 0) {
        return;
      }
      env.Yield();
      continue;
    }
    // Serve the client on the inherited descriptor number: echo a reply.
    char req[32] = {};
    const i64 n = env.ReadBuf(fd, std::as_writable_bytes(std::span<char>(req, sizeof(req))));
    char reply[64];
    const int m = std::snprintf(reply, sizeof(reply), "worker %d served: %.*s", env.Pid(),
                                static_cast<int>(n), req);
    env.Lseek(fd, 0, SeekWhence::kEnd);
    env.WriteBuf(fd, std::as_bytes(std::span<const char>(reply, static_cast<size_t>(m))));
    env.Close(fd);  // propagates: the server sees the slot freed
    env.FetchAdd32(base + kOffServed, 1);
  }
}

void Main(Env& env, long) {
  const vaddr_t base = env.Mmap(kPageSize);
  for (int w = 0; w < kWorkers; ++w) {
    if (env.Sproc(Worker, PR_SADDR | PR_SFDS, static_cast<long>(base)) < 0) {
      env.Exit(1);
    }
  }

  // "Accept" clients: create their request files, security-check, open.
  for (int cid = 0; cid < kClients; ++cid) {
    char path[32];
    std::snprintf(path, sizeof(path), "/client%d", cid);
    const int fd = env.Open(path, kOpenRdwr | kOpenCreat, 0600);
    if (fd < 0) {
      std::printf("fd_server: accept failed: %s\n", ErrnoName(env.LastError()));
      continue;
    }
    char hello[32];
    const int n = std::snprintf(hello, sizeof(hello), "request #%d", cid);
    env.WriteBuf(fd, std::as_bytes(std::span<const char>(hello, static_cast<size_t>(n))));
    env.Lseek(fd, 0);
    // Pass the descriptor number through the mailbox.
    env.SpinLock(base + kOffLock);
    const u32 tail = env.Load32(base + kOffTail);
    env.Store32(base + kOffQueue + 4ULL * (tail % kClients), static_cast<u32>(fd));
    env.Store32(base + kOffTail, tail + 1);
    env.Store32(base + kOffCount, env.Load32(base + kOffCount) + 1);
    env.SpinUnlock(base + kOffLock);
  }

  while (env.AtomicRead32(base + kOffServed) < kClients) {
    env.Yield();
  }
  env.AtomicWrite32(base + kOffStop, 1);
  for (int w = 0; w < kWorkers; ++w) {
    env.WaitChild();
  }

  // Spot-check a reply.
  const int check = env.Open("/client0", kOpenRead);
  char buf[96] = {};
  const i64 n = env.ReadBuf(check, std::as_writable_bytes(std::span<char>(buf, sizeof(buf) - 1)));
  std::printf("fd_server: served %u clients with %d workers; /client0 = \"%.*s\"\n",
              env.AtomicRead32(base + kOffServed), kWorkers, static_cast<int>(n), buf);
  env.Exit(env.AtomicRead32(base + kOffServed) == kClients ? 0 : 1);
}

}  // namespace

int main() {
  Kernel kernel;
  if (!kernel.Launch(Main).ok()) {
    return 1;
  }
  kernel.WaitAll();
  return 0;
}
