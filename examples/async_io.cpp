// async_io — the paper's §4 user-level asynchronous I/O scheme.
//
// "A user-level asynchronous I/O scheme could be implemented by sharing the
// memory and file descriptors. High level I/O calls are translated into an
// equivalent call in a child shared process, which performs the I/O
// directly from the original buffer and then signals the parent."
//
// The parent queues write requests in shared memory; an I/O daemon created
// with sproc(PR_SADDR | PR_SFDS) performs them — using the parent's
// descriptor NUMBERS directly, because the descriptor table is shared —
// and raises SIGUSR1 on each completion.
#include <cstdio>

#include "api/kernel.h"
#include "api/user_env.h"

using namespace sg;

namespace {

// Request ring in shared memory.
constexpr u32 kRingSlots = 8;
constexpr vaddr_t kOffHead = 0;      // consumer cursor (daemon)
constexpr vaddr_t kOffTail = 4;      // producer cursor (parent)
constexpr vaddr_t kOffDone = 8;      // completed count
constexpr vaddr_t kOffStop = 12;     // shutdown flag
constexpr vaddr_t kOffReq = 64;      // kRingSlots * {fd, buf, len} (3 u32 each)
constexpr vaddr_t kOffBufs = 4096;   // data buffers

constexpr vaddr_t ReqAt(u32 slot) { return kOffReq + 12ULL * slot; }

void IoDaemon(Env& env, long arg) {
  const vaddr_t base = static_cast<vaddr_t>(arg);
  const pid_t parent = env.Ppid();
  for (;;) {
    const u32 head = env.AtomicRead32(base + kOffHead);
    if (head == env.AtomicRead32(base + kOffTail)) {
      if (env.AtomicRead32(base + kOffStop) != 0) {
        return;
      }
      env.Yield();
      continue;
    }
    const u32 slot = head % kRingSlots;
    const int fd = static_cast<int>(env.Load32(base + ReqAt(slot)));
    const vaddr_t buf = env.Load32(base + ReqAt(slot) + 4);
    const u32 len = env.Load32(base + ReqAt(slot) + 8);
    // The I/O happens here, directly from the original buffer, on the
    // shared descriptor.
    const i64 n = env.Write(fd, base + buf, len);
    if (n != static_cast<i64>(len)) {
      std::printf("async_io: daemon write failed (%s)\n", ErrnoName(env.LastError()));
    }
    env.AtomicWrite32(base + kOffHead, head + 1);
    env.FetchAdd32(base + kOffDone, 1);
    env.Kill(parent, kSigUsr1);  // completion signal
  }
}

void Main(Env& env, long) {
  const vaddr_t base = env.Mmap(64 * 1024);
  // A completion handler, as an interactive program would install.
  static std::atomic<int> completions{0};
  env.Signal(kSigUsr1, [](int) { completions.fetch_add(1); });

  const int log_fd = env.Open("/async.log", kOpenWrite | kOpenCreat);
  if (log_fd < 0) {
    env.Exit(1);
  }
  const pid_t daemon = env.Sproc(IoDaemon, PR_SADDR | PR_SFDS, static_cast<long>(base));
  if (daemon < 0) {
    env.Exit(1);
  }

  // Queue 20 asynchronous writes, each from its own shared buffer.
  constexpr u32 kRequests = 20;
  for (u32 r = 0; r < kRequests; ++r) {
    char line[64];
    const int len = std::snprintf(line, sizeof(line), "async record %02u\n", r);
    const vaddr_t buf = kOffBufs + 64ULL * r;
    for (int i = 0; i < len; ++i) {
      env.Store<u8>(base + buf + static_cast<u64>(i), static_cast<u8>(line[i]));
    }
    // Wait for ring space, then publish the request.
    while (env.AtomicRead32(base + kOffTail) - env.AtomicRead32(base + kOffHead) >=
           kRingSlots) {
      env.Yield();
    }
    const u32 tail = env.AtomicRead32(base + kOffTail);
    const u32 slot = tail % kRingSlots;
    env.Store32(base + ReqAt(slot), static_cast<u32>(log_fd));
    env.Store32(base + ReqAt(slot) + 4, static_cast<u32>(buf));
    env.Store32(base + ReqAt(slot) + 8, static_cast<u32>(len));
    env.AtomicWrite32(base + kOffTail, tail + 1);
  }

  // Overlap "computation" with the I/O, then drain.
  while (env.AtomicRead32(base + kOffDone) < kRequests) {
    env.Yield();
  }
  env.AtomicWrite32(base + kOffStop, 1);
  env.WaitChild();

  // Verify the log: the daemon wrote through the SHARED descriptor, so the
  // offset advanced for both of us.
  auto st = env.kernel().Stat(env.proc(), "/async.log");
  const u64 size = st.ok() ? st.value().size : 0;
  std::printf("async_io: %u requests completed, %d signals handled, log size %llu bytes\n",
              kRequests, completions.load(), static_cast<unsigned long long>(size));
  const bool ok = completions.load() > 0 && size == 16ULL * kRequests;
  std::printf("async_io: %s\n", ok ? "OK" : "MISMATCH");
  env.Exit(ok ? 0 : 1);
}

}  // namespace

int main() {
  Kernel kernel;
  if (!kernel.Launch(Main).ok()) {
    return 1;
  }
  kernel.WaitAll();
  return 0;
}
