#include "proc/deliver.h"

namespace sg {

void DeliverPendingSignals(Proc& p) {
  for (;;) {
    const u32 pending = p.sig_pending.load(std::memory_order_acquire) &
                        ~p.sig_blocked.load(std::memory_order_relaxed);
    if (pending == 0) {
      return;
    }
    // Lowest-numbered pending signal first.
    int sig = 1;
    while ((pending & SigBit(sig)) == 0) {
      ++sig;
    }
    p.sig_pending.fetch_and(~SigBit(sig), std::memory_order_acq_rel);

    if (sig == kSigKill) {
      throw ProcTerminated{0, sig};  // uncatchable
    }
    SigAction action;
    {
      MutexGuard l(p.sig_mu);
      action = p.sig_actions[static_cast<u32>(sig)];
    }
    switch (action.disp) {
      case SigDisp::kIgnore:
        break;
      case SigDisp::kHandler:
        // Run the user handler on this (the process's own) thread, exactly
        // where a real kernel would interpose the signal trampoline.
        action.handler(sig);
        p.sig_delivered.fetch_add(1, std::memory_order_acq_rel);
        break;
      case SigDisp::kDefault:
        if (DefaultTerminates(sig)) {
          throw ProcTerminated{0, sig};
        }
        break;  // SIGCHLD: discard
    }
  }
}

}  // namespace sg
