// Signals — kept working for share-group members exactly as for normal
// processes ("signals, system calls, traps and other process events should
// happen in an expected way", §3). Delivery happens at kernel entry/exit on
// the process's own thread; interruptible sleeps return kEINTR when a
// signal is posted.
#ifndef SRC_PROC_SIGNAL_H_
#define SRC_PROC_SIGNAL_H_

#include <functional>

#include "base/types.h"

namespace sg {

inline constexpr int kNsig = 32;

inline constexpr int kSigHup = 1;
inline constexpr int kSigInt = 2;
inline constexpr int kSigQuit = 3;
inline constexpr int kSigKill = 9;   // cannot be caught or ignored
inline constexpr int kSigSegv = 11;  // posted by the VM fault path
inline constexpr int kSigPipe = 13;
inline constexpr int kSigAlrm = 14;
inline constexpr int kSigTerm = 15;
inline constexpr int kSigUsr1 = 16;
inline constexpr int kSigUsr2 = 17;
inline constexpr int kSigChld = 18;  // default: ignored

constexpr bool ValidSignal(int sig) { return sig >= 1 && sig < kNsig; }
constexpr u32 SigBit(int sig) { return 1u << sig; }

enum class SigDisp {
  kDefault,  // terminate the process (except SIGCHLD: ignore)
  kIgnore,
  kHandler,
};

struct SigAction {
  SigDisp disp = SigDisp::kDefault;
  std::function<void(int)> handler;  // used when disp == kHandler
};

// True if the default action for `sig` terminates the process.
constexpr bool DefaultTerminates(int sig) { return sig != kSigChld; }

}  // namespace sg

#endif  // SRC_PROC_SIGNAL_H_
