// Scheduler — the simulated-processor gate. The machine has N CPUs; a
// process executes (user code or its own kernel code) only while holding a
// CPU slot. Blocking primitives release the slot through ExecutionContext
// and reacquire it on wake, so an M-process workload on an N-CPU
// configuration really does run at most N-wide — the property the paper's
// self-scheduling and gang-scheduling discussions (§3, §8) depend on.
//
// Slots are granted to the highest-priority waiter (ties FIFO). Execution
// between scheduling points is cooperative, as in a non-preemptive V.3
// kernel path.
#ifndef SRC_PROC_SCHEDULER_H_
#define SRC_PROC_SCHEDULER_H_

#include <condition_variable>
#include <mutex>
#include <set>

#include "base/types.h"

namespace sg {

class Scheduler {
 public:
  explicit Scheduler(u32 ncpus);
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Blocks until a CPU slot is free and the caller is the best waiter.
  // Higher `priority` wins; equal priorities are FIFO.
  void AcquireCpu(int priority);

  void ReleaseCpu();

  // Gives other runnable processes a chance to run: if anyone is waiting
  // for a slot, release and reacquire (round-robin among equals).
  void Yield(int priority);

  u32 ncpus() const { return ncpus_; }
  u32 FreeCpus() const;
  u64 ContextSwitches() const;

 private:
  using Ticket = std::pair<i64, u64>;  // (-priority, seq): smallest = best

  u32 ncpus_;
  mutable std::mutex m_;
  std::condition_variable cv_;
  u32 free_;
  u64 next_seq_ = 0;
  std::set<Ticket> waiters_;
  u64 switches_ = 0;
};

}  // namespace sg

#endif  // SRC_PROC_SCHEDULER_H_
