// Scheduler — the simulated-processor gate. The machine has N CPUs; a
// process executes (user code or its own kernel code) only while holding a
// CPU slot. Blocking primitives release the slot through ExecutionContext
// and reacquire it on wake, so an M-process workload on an N-CPU
// configuration really does run at most N-wide — the property the paper's
// self-scheduling and gang-scheduling discussions (§3, §8) depend on.
//
// Slots are granted to the highest-priority waiter (ties FIFO). Execution
// between scheduling points is cooperative, as in a non-preemptive V.3
// kernel path.
//
// Fair share (src/rm/): callers that belong to a share group pass their
// group's rm node. Held CPU time is charged to the node on every release,
// and the node turns the caller's base priority into an *effective*
// priority at every acquire — an over-consuming group sinks below its
// entitled peers and self-throttles. The scheduler itself stores no node
// pointers (only per-CPU grant timestamps), so group teardown never races
// a dangling reference here: the owning Proc clears its node before the
// node dies, and a null node degrades to the plain priority path.
#ifndef SRC_PROC_SCHEDULER_H_
#define SRC_PROC_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <set>
#include <vector>

#include "base/types.h"

namespace sg {

namespace rm {
class GroupNode;
}  // namespace rm

class Scheduler {
 public:
  explicit Scheduler(u32 ncpus);
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Blocks until a CPU slot is free and the caller is the best waiter.
  // Higher `priority` wins; equal priorities are FIFO. `node` (may be null)
  // is the caller's fair-share account: it bends the base priority by the
  // group's entitled-minus-consumed balance. Returns the id of the granted
  // CPU (0..ncpus-1) — holders identify themselves with it (per-CPU trace
  // rings key on it) and return it to ReleaseCpu.
  u32 AcquireCpu(int priority, rm::GroupNode* node = nullptr);

  // Returns the slot; the time it was held is charged to `node`.
  void ReleaseCpu(u32 cpu, rm::GroupNode* node = nullptr);

  // Gives other runnable processes a chance to run: if anyone is waiting
  // for a slot, release and reacquire (round-robin among equals). Returns
  // the CPU the caller runs on afterwards (possibly the same one).
  u32 Yield(int priority, u32 cpu, rm::GroupNode* node = nullptr);

  u32 ncpus() const { return ncpus_; }
  u32 FreeCpus() const;
  u64 ContextSwitches() const;

 private:
  u32 TakeFreeCpu();  // caller holds m_
  void ChargeHeld(u32 cpu, rm::GroupNode* node);  // charge since last grant

  using Ticket = std::pair<i64, u64>;  // (-priority, seq): smallest = best

  u32 ncpus_;
  mutable std::mutex m_;
  std::condition_variable cv_;
  std::vector<u32> free_;  // free CPU ids, granted from the back
  u64 next_seq_ = 0;
  std::set<Ticket> waiters_;
  u64 switches_ = 0;

  // When each CPU slot was last granted (ns). Written by the grantee right
  // after it wins the slot, read by the same holder at release — atomics
  // only so FreeCpus-style observers stay race-free.
  std::vector<std::atomic<u64>> grant_ns_;
};

}  // namespace sg

#endif  // SRC_PROC_SCHEDULER_H_
