#include "proc/scheduler.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "base/check.h"
#include "rm/rm.h"

namespace sg {

namespace {

u64 NowNs() {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now().time_since_epoch())
                              .count());
}

}  // namespace

Scheduler::Scheduler(u32 ncpus) : ncpus_(ncpus), grant_ns_(ncpus) {
  SG_CHECK(ncpus >= 1);
  // Grant low ids first (they come off the back).
  free_.reserve(ncpus);
  for (u32 id = ncpus; id > 0; --id) {
    free_.push_back(id - 1);
  }
}

u32 Scheduler::TakeFreeCpu() {
  SG_CHECK(!free_.empty());
  const u32 cpu = free_.back();
  free_.pop_back();
  return cpu;
}

void Scheduler::ChargeHeld(u32 cpu, rm::GroupNode* node) {
  if (node == nullptr) {
    return;
  }
  const u64 now = NowNs();
  const u64 t0 = grant_ns_[cpu].load(std::memory_order_relaxed);
  if (now > t0) {
    node->ChargeCpuAt(now - t0, now);
  }
}

u32 Scheduler::AcquireCpu(int priority, rm::GroupNode* node) {
  // The fair-share bend is computed before the queue lock: it reads the rm
  // node's decayed account (a spinlock + exp2), which must not run under m_.
  const int eff = node != nullptr ? node->EffectivePriority(priority) : priority;
  u32 cpu;
  {
    std::unique_lock<std::mutex> l(m_);
    if (!free_.empty() && waiters_.empty()) {
      cpu = TakeFreeCpu();
      grant_ns_[cpu].store(NowNs(), std::memory_order_relaxed);
      return cpu;
    }
    Ticket me{-eff, next_seq_++};
    waiters_.insert(me);
    if (node == nullptr) {
      // Plain priority does not drift while we wait; sleep until granted.
      cv_.wait(l, [&] { return !free_.empty() && *waiters_.begin() == me; });
    } else {
      // A fair-share waiter's ticket goes stale while it sits: its group's
      // usage decays (priority should RISE) while running groups keep
      // charging theirs. A frozen ticket behind a stream of freshly-bent
      // ones starves, so periodically re-bend the ticket against the
      // current picture. The rm read needs the node spinlock — never taken
      // under m_ — hence the unlock/relock bracket; the seq is kept so
      // re-keying never costs the waiter its FIFO rank among equals.
      while (!cv_.wait_for(l, std::chrono::milliseconds(1),
                           [&] { return !free_.empty() && *waiters_.begin() == me; })) {
        waiters_.erase(me);
        l.unlock();
        const int bent = node->EffectivePriority(priority);
        l.lock();
        me = Ticket{-bent, me.second};
        waiters_.insert(me);
      }
    }
    waiters_.erase(me);
    cpu = TakeFreeCpu();
    ++switches_;
    if (!free_.empty() && !waiters_.empty()) {
      cv_.notify_all();  // more slots may be grantable
    }
  }
  grant_ns_[cpu].store(NowNs(), std::memory_order_relaxed);
  return cpu;
}

void Scheduler::ReleaseCpu(u32 cpu, rm::GroupNode* node) {
  ChargeHeld(cpu, node);
  {
    std::lock_guard<std::mutex> l(m_);
    SG_CHECK(cpu < ncpus_ && free_.size() < ncpus_);
    SG_DCHECK(std::find(free_.begin(), free_.end(), cpu) == free_.end());
    free_.push_back(cpu);
  }
  cv_.notify_all();
}

u32 Scheduler::Yield(int priority, u32 cpu, rm::GroupNode* node) {
  // Pay for the slice held so far either way, and restart the meter: a
  // spinner that yields in a loop keeps feeding its group's account even
  // when it never gives the slot up.
  ChargeHeld(cpu, node);
  grant_ns_[cpu].store(NowNs(), std::memory_order_relaxed);
  const int eff = node != nullptr ? node->EffectivePriority(priority) : priority;
  {
    std::lock_guard<std::mutex> l(m_);
    // Hand the CPU over only to an equal-or-higher-priority waiter: a
    // high-priority runner (e.g. a gang-prioritized share group) is never
    // preempted by background work.
    if (waiters_.empty() || -waiters_.begin()->first < eff) {
      // No simulated contention worth yielding to — but the host may be
      // narrower than the simulated machine, so give other RUNNING
      // processes' host threads a chance (a true multiprocessor runs them
      // concurrently anyway).
      std::this_thread::yield();
      return cpu;
    }
  }
  ReleaseCpu(cpu, nullptr);  // already charged above
  return AcquireCpu(priority, node);
}

u32 Scheduler::FreeCpus() const {
  std::lock_guard<std::mutex> l(m_);
  return static_cast<u32>(free_.size());
}

u64 Scheduler::ContextSwitches() const {
  std::lock_guard<std::mutex> l(m_);
  return switches_;
}

}  // namespace sg
