#include "proc/scheduler.h"

#include <thread>

#include "base/check.h"

namespace sg {

Scheduler::Scheduler(u32 ncpus) : ncpus_(ncpus), free_(ncpus) { SG_CHECK(ncpus >= 1); }

void Scheduler::AcquireCpu(int priority) {
  std::unique_lock<std::mutex> l(m_);
  if (free_ > 0 && waiters_.empty()) {
    --free_;
    return;
  }
  const Ticket me{-priority, next_seq_++};
  waiters_.insert(me);
  cv_.wait(l, [&] { return free_ > 0 && *waiters_.begin() == me; });
  waiters_.erase(me);
  --free_;
  ++switches_;
  if (free_ > 0 && !waiters_.empty()) {
    cv_.notify_all();  // more slots may be grantable
  }
}

void Scheduler::ReleaseCpu() {
  {
    std::lock_guard<std::mutex> l(m_);
    SG_CHECK(free_ < ncpus_);
    ++free_;
  }
  cv_.notify_all();
}

void Scheduler::Yield(int priority) {
  {
    std::lock_guard<std::mutex> l(m_);
    // Hand the CPU over only to an equal-or-higher-priority waiter: a
    // high-priority runner (e.g. a gang-prioritized share group) is never
    // preempted by background work.
    if (waiters_.empty() || -waiters_.begin()->first < priority) {
      // No simulated contention worth yielding to — but the host may be
      // narrower than the simulated machine, so give other RUNNING
      // processes' host threads a chance (a true multiprocessor runs them
      // concurrently anyway).
      std::this_thread::yield();
      return;
    }
  }
  ReleaseCpu();
  AcquireCpu(priority);
}

u32 Scheduler::FreeCpus() const {
  std::lock_guard<std::mutex> l(m_);
  return free_;
}

u64 Scheduler::ContextSwitches() const {
  std::lock_guard<std::mutex> l(m_);
  return switches_;
}

}  // namespace sg
