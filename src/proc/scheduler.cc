#include "proc/scheduler.h"

#include <algorithm>
#include <thread>

#include "base/check.h"

namespace sg {

Scheduler::Scheduler(u32 ncpus) : ncpus_(ncpus) {
  SG_CHECK(ncpus >= 1);
  // Grant low ids first (they come off the back).
  free_.reserve(ncpus);
  for (u32 id = ncpus; id > 0; --id) {
    free_.push_back(id - 1);
  }
}

u32 Scheduler::TakeFreeCpu() {
  SG_CHECK(!free_.empty());
  const u32 cpu = free_.back();
  free_.pop_back();
  return cpu;
}

u32 Scheduler::AcquireCpu(int priority) {
  std::unique_lock<std::mutex> l(m_);
  if (!free_.empty() && waiters_.empty()) {
    return TakeFreeCpu();
  }
  const Ticket me{-priority, next_seq_++};
  waiters_.insert(me);
  cv_.wait(l, [&] { return !free_.empty() && *waiters_.begin() == me; });
  waiters_.erase(me);
  const u32 cpu = TakeFreeCpu();
  ++switches_;
  if (!free_.empty() && !waiters_.empty()) {
    cv_.notify_all();  // more slots may be grantable
  }
  return cpu;
}

void Scheduler::ReleaseCpu(u32 cpu) {
  {
    std::lock_guard<std::mutex> l(m_);
    SG_CHECK(cpu < ncpus_ && free_.size() < ncpus_);
    SG_DCHECK(std::find(free_.begin(), free_.end(), cpu) == free_.end());
    free_.push_back(cpu);
  }
  cv_.notify_all();
}

u32 Scheduler::Yield(int priority, u32 cpu) {
  {
    std::lock_guard<std::mutex> l(m_);
    // Hand the CPU over only to an equal-or-higher-priority waiter: a
    // high-priority runner (e.g. a gang-prioritized share group) is never
    // preempted by background work.
    if (waiters_.empty() || -waiters_.begin()->first < priority) {
      // No simulated contention worth yielding to — but the host may be
      // narrower than the simulated machine, so give other RUNNING
      // processes' host threads a chance (a true multiprocessor runs them
      // concurrently anyway).
      std::this_thread::yield();
      return cpu;
    }
  }
  ReleaseCpu(cpu);
  return AcquireCpu(priority);
}

u32 Scheduler::FreeCpus() const {
  std::lock_guard<std::mutex> l(m_);
  return static_cast<u32>(free_.size());
}

u64 Scheduler::ContextSwitches() const {
  std::lock_guard<std::mutex> l(m_);
  return switches_;
}

}  // namespace sg
