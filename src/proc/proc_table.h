// The system process table: pid allocation, lookup, and lifetime of Proc
// objects (freed when the parent reaps them).
#ifndef SRC_PROC_PROC_TABLE_H_
#define SRC_PROC_PROC_TABLE_H_

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "base/id_allocator.h"
#include "base/result.h"
#include "hw/phys_mem.h"
#include "proc/proc.h"
#include "proc/scheduler.h"

namespace sg {

class ProcTable {
 public:
  ProcTable(PhysMem& mem, Scheduler& sched, u32 max_procs, u32 tlb_entries)
      : mem_(mem), sched_(sched), tlb_entries_(tlb_entries), pids_(1, max_procs),
        max_procs_(max_procs) {}
  ProcTable(const ProcTable&) = delete;
  ProcTable& operator=(const ProcTable&) = delete;

  // Allocates a Proc with a fresh pid; kEAGAIN when the table is full.
  Result<Proc*> Alloc() {
    std::lock_guard<std::mutex> l(mu_);
    auto pid = pids_.Allocate();
    if (!pid.ok()) {
      return pid.error();
    }
    auto p = std::make_unique<Proc>(static_cast<pid_t>(pid.value()), mem_, sched_, tlb_entries_);
    Proc* raw = p.get();
    table_.emplace(raw->pid, std::move(p));
    return raw;
  }

  // Destroys a reaped process and recycles its pid.
  void Free(Proc* p) {
    std::lock_guard<std::mutex> l(mu_);
    const pid_t pid = p->pid;
    SG_CHECK(table_.erase(pid) == 1);
    pids_.Free(pid);
  }

  Proc* Find(pid_t pid) {
    std::lock_guard<std::mutex> l(mu_);
    auto it = table_.find(pid);
    return it == table_.end() ? nullptr : it->second.get();
  }

  // Runs `fn(proc)` with the table locked, so the Proc cannot be freed out
  // from under the callback (Free also takes the lock). `fn` must not call
  // back into the table and must not block. Returns false if `pid` is gone.
  template <typename Fn>
  bool WithProc(pid_t pid, Fn&& fn) {
    std::lock_guard<std::mutex> l(mu_);
    auto it = table_.find(pid);
    if (it == table_.end()) {
      return false;
    }
    fn(*it->second);
    return true;
  }

  std::vector<Proc*> Snapshot() {
    std::lock_guard<std::mutex> l(mu_);
    std::vector<Proc*> out;
    out.reserve(table_.size());
    for (auto& [pid, p] : table_) {
      out.push_back(p.get());
    }
    return out;
  }

  // Runs `fn(proc)` for every live process under the table lock — entries
  // cannot be freed mid-scan (use instead of Snapshot when the scan
  // dereferences the procs). `fn` must not re-enter the table or block.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    std::lock_guard<std::mutex> l(mu_);
    for (auto& [pid, p] : table_) {
      fn(*p);
    }
  }

  u64 Count() const {
    std::lock_guard<std::mutex> l(mu_);
    return table_.size();
  }

  u32 max_procs() const { return max_procs_; }

 private:
  PhysMem& mem_;
  Scheduler& sched_;
  u32 tlb_entries_;
  mutable std::mutex mu_;
  IdAllocator pids_;
  u32 max_procs_;
  std::map<pid_t, std::unique_ptr<Proc>> table_;
};

}  // namespace sg

#endif  // SRC_PROC_PROC_TABLE_H_
