// Signal delivery (issig/psig): run at kernel entry and exit on the
// process's own thread.
#ifndef SRC_PROC_DELIVER_H_
#define SRC_PROC_DELIVER_H_

#include "proc/proc.h"

namespace sg {

// Delivers every pending, unblocked signal: runs handlers, ignores ignored
// ones, and throws ProcTerminated for fatal dispositions (which unwinds to
// the process's thread body for teardown).
void DeliverPendingSignals(Proc& p);

}  // namespace sg

#endif  // SRC_PROC_DELIVER_H_
