// Proc — the process table entry plus u-area of one simulated process.
//
// The share-group fields follow the paper directly:
//   * p_shmask (§6.3) — the kernel copy of the share mask chosen at sproc();
//   * p_flag sync bits (§6.3) — set by OTHER members when they modify a
//     shared resource; tested in one AND on every kernel entry, and again
//     after acquiring the update lock (the double-update race);
//   * shaddr — pointer to the group's shared-address block (core/shaddr.h),
//     linked through s_plink; opaque at this layer.
//
// A Proc is also the ExecutionContext of its host thread: blocking kernel
// primitives release its simulated CPU and signal posters can kick it out
// of interruptible sleeps.
#ifndef SRC_PROC_PROC_H_
#define SRC_PROC_PROC_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "base/mutex.h"
#include "base/thread_annotations.h"
#include "base/types.h"
#include "fs/file.h"
#include "fs/inode.h"
#include "obs/trace.h"
#include "proc/scheduler.h"
#include "proc/signal.h"
#include "sync/execution_context.h"
#include "vm/address_space.h"
#include "vm/layout.h"

namespace sg {

class ShaddrBlock;  // core/shaddr.h — the share-group layer owns it

namespace rm {
class GroupNode;  // rm/rm.h — the fair-share account of a share group
}  // namespace rm

// Atomic pointer to a process's share block. Written only by the owner
// process's own thread (sproc/prctl/exec/exit) or by its parent before the
// host thread starts, but read cross-thread by PR_JOINGROUP, kill(2) and
// the /proc snapshots — so every access goes through an atomic. The
// pointer-ish interface keeps owner-thread call sites natural; each
// operator-> performs its own acquire load, which is fine for the owner
// (its value is stable under its feet) and gives cross-thread readers one
// consistent snapshot per dereference.
class ShaddrPtr {
 public:
  ShaddrPtr& operator=(ShaddrBlock* b) {
    p_.store(b, std::memory_order_release);
    return *this;
  }
  operator ShaddrBlock*() const { return p_.load(std::memory_order_acquire); }
  ShaddrBlock* operator->() const { return p_.load(std::memory_order_acquire); }

 private:
  std::atomic<ShaddrBlock*> p_{nullptr};
};

// p_flag bits. The five sync bits say "your private copy of this resource
// is stale; resynchronize from the shared-address block on kernel entry".
inline constexpr u32 kPfSyncFds = 1u << 0;
inline constexpr u32 kPfSyncDir = 1u << 1;
inline constexpr u32 kPfSyncId = 1u << 2;
inline constexpr u32 kPfSyncUmask = 1u << 3;
inline constexpr u32 kPfSyncUlimit = 1u << 4;
inline constexpr u32 kPfSyncAny =
    kPfSyncFds | kPfSyncDir | kPfSyncId | kPfSyncUmask | kPfSyncUlimit;

enum class ProcState {
  kEmbryo,   // allocated, not yet started
  kActive,   // host thread running (possibly sleeping in a primitive)
  kZombie,   // exited; waiting to be reaped by the parent
};

class Proc final : public ExecutionContext {
 public:
  Proc(pid_t pid, PhysMem& mem, Scheduler& sched, u32 tlb_entries)
      : pid(pid), as(mem, tlb_entries), sched_(sched) {}
  ~Proc() override = default;
  Proc(const Proc&) = delete;
  Proc& operator=(const Proc&) = delete;

  // ----- identity / tree -----
  const pid_t pid;
  // Parent pid rather than a pointer: a pid is safe to hold across the
  // parent's own exit/reap (orphans are reparented to 0 = the kernel).
  std::atomic<pid_t> ppid{0};
  std::atomic<ProcState> state{ProcState::kEmbryo};
  int exit_status = 0;
  int term_signal = 0;  // nonzero if terminated by a signal

  // ----- share group (core layer manages these) -----
  // Membership identity (shaddr + p_shmask) is published atomically:
  // attach sets it before the member is linked into the chain, detach
  // clears it before the unlink drops the refcount, so concurrent chain
  // walkers (FlagOthers, the /proc snapshots) and PR_JOINGROUP's
  // cross-thread peek never see a half-formed member.
  ShaddrPtr shaddr;               // null when not in a share group
  std::atomic<u32> p_shmask{0};   // resources this member shares
  std::atomic<u32> p_flag{0};     // sync bits (see above)
  Proc* s_plink = nullptr;        // next member in the share group chain
  // Generation caches for the §6.3 delta-sync protocol (DESIGN.md §4f).
  // Owner-thread only: written by this process's own kernel entries and
  // updates. Other members communicate through the block's generations and
  // the p_flag bits, never by touching these.
  u64 p_resgen = 0;         // packed per-resource gen word last synced against
  u64 p_fd_synced_gen = 0;  // master fd-table generation our fd table reflects
  // Fair-share account of this member's group (src/rm/). Set by attach
  // before the member is linked, cleared by detach before the node can die;
  // read on every scheduler call below, so lifetime follows membership
  // identity exactly (a cleared member schedules at its plain priority).
  std::atomic<rm::GroupNode*> rm_node{nullptr};

  // ----- virtual memory -----
  AddressSpace as;
  vaddr_t stack_base = 0;      // lowest address of this process's stack
  u64 stack_max_pages = kDefaultStackMaxPages;  // PR_SETSTACKSIZE; inherited

  // ----- u-area: filesystem state (share-group shareable resources) -----
  FdTable fds;
  Inode* cwd = nullptr;      // counted ref
  Inode* rootdir = nullptr;  // counted ref
  // Identity is owner-written (under the share block's rupdlock_ when
  // shared) but read cross-thread by kill(2)'s permission check and the
  // /proc snapshots; atomics keep those reads defined. umask/ulimit have
  // no cross-thread readers and stay plain.
  std::atomic<uid_t> uid{0};
  std::atomic<gid_t> gid{0};
  mode_t umask = 022;
  u64 ulimit = u64{1} << 30;  // max file size a write may produce (bytes)

  // ----- signals -----
  std::atomic<u32> sig_pending{0};
  std::atomic<u32> sig_blocked{0};
  std::atomic<u64> sig_delivered{0};  // handlers run (sigpause uses this)
  Mutex sig_mu;  // guards actions
  std::array<SigAction, kNsig> sig_actions SG_GUARDED_BY(sig_mu){};

  // ----- scheduling / execution -----
  std::atomic<int> priority{0};  // scheduling priority (group-settable, see PR_SETGROUPPRI)
  std::atomic<bool> suspended{false};  // PR_BLOCKGROUP: parked at next kernel entry
  std::function<void()> entry;  // bound user program (set by the api layer)
  std::thread thread;

  // Per-process syscall counter (E4/E9 benchmarks).
  std::atomic<u64> syscalls{0};

  // Channel for pause(2)-style self-sleeps; signal posters wake it through
  // the wakeup registration.
  std::mutex wait_mu;
  std::condition_variable wait_cv;

  // ----- ExecutionContext -----
  void WillBlock() override {
    if (has_cpu_) {
      has_cpu_ = false;
      obs::CurrentTraceContext().cpu = -1;
      sched_.ReleaseCpu(cpu_, rm_node.load(std::memory_order_acquire));
    }
  }
  void DidWake() override {
    if (!has_cpu_) {
      cpu_ = sched_.AcquireCpu(priority.load(std::memory_order_relaxed),
                               rm_node.load(std::memory_order_acquire));
      has_cpu_ = true;
      obs::CurrentTraceContext().cpu = static_cast<i32>(cpu_);
    }
  }
  bool InterruptPending() override {
    const u32 pending = sig_pending.load(std::memory_order_acquire) &
                        ~sig_blocked.load(std::memory_order_relaxed);
    if (pending == 0) {
      return false;
    }
    // Ignored signals never interrupt a sleep.
    MutexGuard l(sig_mu);
    for (int sig = 1; sig < kNsig; ++sig) {
      if ((pending & SigBit(sig)) == 0) {
        continue;
      }
      if (sig == kSigKill || sig_actions[static_cast<u32>(sig)].disp != SigDisp::kIgnore) {
        if (sig == kSigChld && sig_actions[static_cast<u32>(sig)].disp == SigDisp::kDefault) {
          continue;  // default SIGCHLD is ignore
        }
        return true;
      }
    }
    return false;
  }
  void SetWakeup(std::condition_variable* cv, std::mutex* m) override {
    std::lock_guard<std::mutex> l(wake_reg_mu_);
    wake_cv_ = cv;
    wake_m_ = m;
  }
  void ClearWakeup() override {
    std::lock_guard<std::mutex> l(wake_reg_mu_);
    wake_cv_ = nullptr;
    wake_m_ = nullptr;
  }

  // Posts `sig` and kicks the process out of any interruptible sleep.
  // Callable from any thread. If the caller already holds the mutex the
  // sleeper registered (e.g. the kernel's reap lock during exit), pass it
  // as `held` — the required serialization is then already in place and
  // locking it again would self-deadlock.
  void PostSignal(int sig, std::mutex* held = nullptr) {
    sig_pending.fetch_or(SigBit(sig), std::memory_order_acq_rel);
    std::condition_variable* cv = nullptr;
    std::mutex* m = nullptr;
    {
      std::lock_guard<std::mutex> l(wake_reg_mu_);
      cv = wake_cv_;
      m = wake_m_;
    }
    if (cv != nullptr) {
      // Serialize with the sleeper: once we hold m, the sleeper is either
      // inside wait() (gets the notify) or past ClearWakeup (re-checks
      // InterruptPending itself).
      if (m != held) {
        std::lock_guard<std::mutex> l(*m);
      }
      cv->notify_all();
    }
  }

  // CPU-slot management for the thread body (api layer).
  void AcquireCpuInitial() {
    cpu_ = sched_.AcquireCpu(priority.load(std::memory_order_relaxed),
                             rm_node.load(std::memory_order_acquire));
    has_cpu_ = true;
    obs::CurrentTraceContext().cpu = static_cast<i32>(cpu_);
  }
  void ReleaseCpuFinal() {
    if (has_cpu_) {
      has_cpu_ = false;
      obs::CurrentTraceContext().cpu = -1;
      sched_.ReleaseCpu(cpu_, rm_node.load(std::memory_order_acquire));
    }
  }
  void YieldCpu() {
    cpu_ = sched_.Yield(priority.load(std::memory_order_relaxed), cpu_,
                        rm_node.load(std::memory_order_acquire));
    obs::CurrentTraceContext().cpu = static_cast<i32>(cpu_);
  }
  bool has_cpu() const { return has_cpu_; }
  // The simulated processor currently (or last) granted to this process.
  u32 cpu() const { return cpu_; }

 private:
  Scheduler& sched_;
  bool has_cpu_ = false;  // owned by this proc's host thread
  u32 cpu_ = 0;           // valid while has_cpu_

  std::mutex wake_reg_mu_;
  std::condition_variable* wake_cv_ = nullptr;
  std::mutex* wake_m_ = nullptr;
};

// Thrown on the process's own thread to unwind out of user code when the
// process terminates (exit(2), fatal signal, unhandled SIGSEGV).
struct ProcTerminated {
  int status;
  int signal;  // 0 for a plain exit
};

}  // namespace sg

#endif  // SRC_PROC_PROC_H_
