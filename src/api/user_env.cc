#include "api/user_env.h"

#include "base/log.h"
#include "proc/deliver.h"

namespace sg {

void Env::MemoryFault(Errno e) {
  SG_LOG_DEBUG("pid %d: memory fault (%s)", static_cast<int>(p_.pid), ErrnoName(e));
  p_.PostSignal(kSigSegv);
  DeliverPendingSignals(p_);  // default disposition terminates
  // A handler may catch SIGSEGV; classic semantics would restart the
  // faulting instruction, which a hosted simulation cannot do — treat a
  // caught fault as fatal anyway.
  throw ProcTerminated{0, kSigSegv};
}

}  // namespace sg
