// Kernel — the syscall layer tying every subsystem together: the V.3
// process model (fork/exec/exit/wait/signals), the filesystem calls, the
// VM calls, System V IPC, and the paper's contribution, sproc(2)/prctl(2)
// with share groups.
//
// Every syscall takes the calling Proc explicitly (the simulated `u.u_procp`)
// and begins with SyscallEnter: the single p_flag bit-test that
// resynchronizes shared resources (§6.3) plus signal delivery — the same
// kernel-entry hook the paper describes.
#ifndef SRC_API_KERNEL_H_
#define SRC_API_KERNEL_H_

#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "api/image.h"
#include "base/result.h"
#include "base/types.h"
#include "core/shaddr.h"
#include "core/share_mask.h"
#include "fs/vfs.h"
#include "hw/cpu_set.h"
#include "hw/phys_mem.h"
#include "hw/swap.h"
#include "ipc/sysv.h"
#include "obs/procfs.h"
#include "proc/proc.h"
#include "proc/proc_table.h"
#include "proc/scheduler.h"
#include "rm/rm.h"
#include "vm/vm_ops.h"

namespace sg {

struct BootParams {
  u32 ncpus = 4;
  u64 phys_mem_bytes = u64{256} << 20;  // 256 MiB
  u32 max_procs = 512;
  u32 max_inodes = 4096;
  u32 max_files = 4096;
  u32 tlb_entries = 64;
  u64 initial_data_pages = 16;  // data region size of a fresh image
  // Swap device size in pages; 0 = no swap (faults fail hard with ENOMEM
  // when physical memory is exhausted, instead of waking the pager).
  u32 swap_pages = 0;
  // Mount the synthetic /proc filesystem at boot (obs/procfs.h): user
  // processes then read kernel counters and share-group state through
  // ordinary open/read.
  bool mount_procfs = true;
};

struct WaitResult {
  pid_t pid = 0;
  int status = 0;
  int signal = 0;  // nonzero if the child died of a signal
};

struct StatResult {
  ino_t ino = 0;
  InodeType type = InodeType::kRegular;
  mode_t mode = 0;
  uid_t uid = 0;
  gid_t gid = 0;
  u64 size = 0;
  u32 nlink = 0;
};

class Kernel {
 public:
  explicit Kernel(const BootParams& params = {});
  ~Kernel();
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // ----- boot / lifecycle -----
  // Starts an initial user process with a fresh image; parented to the
  // kernel (reaped by WaitAll).
  Result<pid_t> Launch(UserFn main, long arg = 0);
  // Blocks until every process has exited and been reaped.
  void WaitAll();

  // ----- the paper's interface (§5) -----
  // sproc(entry, shmask, arg): creates a process in the caller's share
  // group (creating the group on first use), sharing the resources in
  // `shmask` (strict-inheritance-masked against the caller's own mask).
  Result<pid_t> Sproc(Proc& p, UserFn entry, u32 shmask, long arg = 0);
  // prctl(option, value).
  Result<i64> Prctl(Proc& p, u32 option, i64 value = 0);

  // ----- process control -----
  Result<pid_t> Fork(Proc& p, UserFn entry, long arg = 0);
  // Replaces the image; removes the caller from its share group first
  // (§5.1). Returns only on failure; on success runs img.main and exits.
  Status Exec(Proc& p, const Image& img, long arg = 0);
  [[noreturn]] void Exit(Proc& p, int status);
  Result<WaitResult> Wait(Proc& p);
  Status Kill(Proc& p, pid_t target, int sig);
  Status Sigaction(Proc& p, int sig, SigDisp disp, std::function<void(int)> handler = {});
  Result<u32> Sigsetmask(Proc& p, u32 mask);
  Status Pause(Proc& p);
  // Race-free pause (System V sigpause flavor): if a handler has run since
  // the caller last checked — including for a signal already pending at
  // entry — returns immediately instead of sleeping.
  Status Sigpause(Proc& p);
  void Yield(Proc& p);
  pid_t Getpid(Proc& p) const { return p.pid; }
  pid_t Getppid(Proc& p) const { return p.ppid.load(std::memory_order_relaxed); }
  Status Setuid(Proc& p, uid_t uid);
  Status Setgid(Proc& p, gid_t gid);
  // Real kernel entries: a group member sharing PR_SID synchronizes its ids
  // here (§6.3 — the sync happens on ANY kernel entry, including getuid).
  uid_t Getuid(Proc& p) {
    SyscallEnter(p);
    const uid_t u = p.uid;
    SyscallExit(p);
    return u;
  }
  gid_t Getgid(Proc& p) {
    SyscallEnter(p);
    const gid_t g = p.gid;
    SyscallExit(p);
    return g;
  }
  Result<mode_t> Umask(Proc& p, mode_t mask);  // returns the previous mask
  Result<u64> UlimitGet(Proc& p);
  Status UlimitSet(Proc& p, u64 bytes);  // only root may raise

  // ----- virtual memory -----
  Result<vaddr_t> Sbrk(Proc& p, i64 delta);
  Result<vaddr_t> Mmap(Proc& p, u64 bytes, u32 prot = kProtRw);
  Status Munmap(Proc& p, vaddr_t base);
  // File-backed mapping of `len` bytes of `fd` at byte `offset` (§7 names
  // "mapping or unmapping files" as the VM-heavy workload). A shared
  // mapping (requires a writable fd) writes dirty pages back at Msync and
  // munmap and stays shared across fork; a private one is COW.
  Result<vaddr_t> MapFile(Proc& p, int fd, u64 offset, u64 len, bool shared_mapping);
  Status Msync(Proc& p, vaddr_t base);

  // ----- filesystem -----
  Result<int> Open(Proc& p, std::string_view path, u32 flags, mode_t mode = 0644);
  Status Close(Proc& p, int fd);
  Result<int> Dup(Proc& p, int fd);
  Result<int> Dup2(Proc& p, int fd, int newfd);
  // fcntl(F_SETFD/F_GETFD) equivalent: the per-descriptor flag byte the
  // share block mirrors in s_pofile. Propagates like any fd-table change.
  Status SetCloexec(Proc& p, int fd, bool on);
  Result<bool> GetCloexec(Proc& p, int fd);
  Result<std::pair<int, int>> MakePipe(Proc& p);
  // User-buffer I/O (through the simulated VM).
  Result<u64> Read(Proc& p, int fd, vaddr_t ubuf, u64 len);
  Result<u64> Write(Proc& p, int fd, vaddr_t ubuf, u64 len);
  // Kernel-buffer I/O (tests, program loaders).
  Result<u64> ReadK(Proc& p, int fd, std::span<std::byte> out);
  Result<u64> WriteK(Proc& p, int fd, std::span<const std::byte> in);
  Result<u64> Lseek(Proc& p, int fd, i64 off, SeekWhence whence);
  Status Mkdir(Proc& p, std::string_view path, mode_t mode = 0755);
  Status Link(Proc& p, std::string_view existing, std::string_view newpath);
  Status Unlink(Proc& p, std::string_view path);
  Status Rmdir(Proc& p, std::string_view path);
  Status Chdir(Proc& p, std::string_view path);
  Status Chroot(Proc& p, std::string_view path);
  Result<StatResult> Stat(Proc& p, std::string_view path);
  Result<StatResult> Fstat(Proc& p, int fd);
  Status Chmod(Proc& p, std::string_view path, mode_t mode);
  // Absolute path of the working directory, relative to the process's root
  // (so a chroot jail reports "/" at its own root).
  Result<std::string> Getcwd(Proc& p);
  // Directory entries of `path` (readdir), sorted; requires read permission.
  Result<std::vector<std::string>> ListDir(Proc& p, std::string_view path);

  // ----- System V IPC (baselines; ipc/sysv.h) -----
  Result<int> Shmget(Proc& p, i32 key, u64 bytes);
  Result<vaddr_t> Shmat(Proc& p, int shmid);
  Status Shmdt(Proc& p, vaddr_t base);
  Status ShmRemove(Proc& p, int shmid);
  Result<int> Semget(Proc& p, i32 key, i64 initial);
  Status SemOp(Proc& p, int semid, i64 delta);  // negative P (may sleep), positive V
  Status SemRemove(Proc& p, int semid);
  Result<int> Msgget(Proc& p, i32 key);
  Status Msgsnd(Proc& p, int msqid, std::span<const std::byte> msg);
  Result<u64> Msgrcv(Proc& p, int msqid, std::span<std::byte> out);
  // User-buffer variants (copy through the simulated VM, like real
  // msgsnd/msgrcv copy through the user/kernel boundary).
  Status MsgsndU(Proc& p, int msqid, vaddr_t msg, u64 len);
  Result<u64> MsgrcvU(Proc& p, int msqid, vaddr_t out, u64 cap);
  Status MsgRemove(Proc& p, int msqid);

  // ----- introspection (tests, benches) -----
  Scheduler& sched() { return sched_; }
  rm::ResourceManager& rm() { return rm_; }
  CpuSet& cpus() { return cpus_; }
  PhysMem& mem() { return mem_; }
  SwapSpace* swap() { return swap_.get(); }
  Vfs& vfs() { return vfs_; }
  ProcTable& procs() { return procs_; }
  SysvIpc& ipc() { return ipc_; }
  // The share block of `p`, if any (tests).
  ShaddrBlock* BlockOf(Proc& p) { return p.shaddr; }
  u64 LiveBlocks() const;
  // The mounted /proc (null when booted with mount_procfs = false).
  obs::Procfs* procfs() { return procfs_.get(); }

  // Marks kernel entry explicitly (benches measuring entry cost).
  void SyscallEnter(Proc& p);
  void SyscallExit(Proc& p);

 private:
  // Builds a fresh private image (text/data/stack/PRDA) for `p`.
  Status BuildImage(Proc& p, const Image& img);
  // Creates the always-private PRDA page (§5.1).
  static void CreatePrda(AddressSpace& as, PhysMem& mem);
  // Allocates a stack region for `p`: in the group's shared space when
  // `shared_stack` (visible to all members), else private.
  Status AllocStack(Proc& p, bool shared_stack);
  // Copies the non-VM u-area from parent to child (fds/dirs/ids/limits,
  // signal dispositions).
  void InheritUArea(Proc& parent, Proc& child);
  // Binds the entry closure and spawns the host thread.
  void StartProcThread(Proc* c, UserFn fn, long arg);
  // Thread body of every simulated process.
  void ProcMain(Proc* p);
  // Exit/kill teardown, on the process's own thread.
  void TerminateProcess(Proc& p, int status, int signal);
  // Reaps `z` (already a zombie): joins its thread and frees the slot.
  WaitResult Reap(Proc* z);

  // Snapshot providers behind /proc (obs/procfs.h).
  std::vector<obs::ProcStatus> SnapshotProcs();
  std::vector<obs::GroupStatus> SnapshotGroups();

  Cred CredOf(const Proc& p) const { return Cred{p.uid, p.gid}; }
  // The share block to use for fd-table updates, or null if not sharing.
  // One atomic snapshot of p.shaddr: identity (shaddr + p_shmask) is
  // published before link and cleared before unlink, so a non-null b with
  // PR_SFDS set is safe to use here.
  ShaddrBlock* FdBlock(Proc& p) {
    ShaddrBlock* b = p.shaddr;
    return (b != nullptr && (p.p_shmask & PR_SFDS) != 0) ? b : nullptr;
  }

  BootParams params_;
  PhysMem mem_;
  std::unique_ptr<SwapSpace> swap_;  // null when booted without swap
  CpuSet cpus_;
  Scheduler sched_;
  // The fair-share hierarchy. Declared before blocks_ (and thus destroyed
  // after it): every ShaddrBlock releases its rm node at teardown.
  rm::ResourceManager rm_;
  Vfs vfs_;
  ProcTable procs_;
  SysvIpc ipc_;

  mutable std::mutex blocks_mu_;
  std::map<ShaddrBlock*, std::unique_ptr<ShaddrBlock>> blocks_;

  // Declared after vfs_/procs_/blocks_: destroyed first, so /proc is
  // unmounted while the inode table is still fully alive.
  std::unique_ptr<obs::Procfs> procfs_;

  // Exit/reap coordination: zombies bump the generation and notify.
  std::mutex reap_mu_;
  std::condition_variable reap_cv_;
};

}  // namespace sg

#endif  // SRC_API_KERNEL_H_
