// Program image for exec(2)/boot: the initial text and data contents plus
// the function that plays the role of the program's main().
#ifndef SRC_API_IMAGE_H_
#define SRC_API_IMAGE_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "base/types.h"

namespace sg {

class Env;

// A user program: called on the process's thread with its environment and
// the sproc()-style argument.
using UserFn = std::function<void(Env&, long)>;

struct Image {
  std::string name = "a.out";
  std::vector<std::byte> text;  // initial text bytes (may be empty)
  std::vector<std::byte> data;  // initialized data
  u64 extra_data_pages = 4;     // bss/heap headroom beyond `data`
  u64 text_pages = 4;           // minimum text size in pages
  UserFn main;                  // entry point
};

}  // namespace sg

#endif  // SRC_API_IMAGE_H_
