// Env — the "C library" of a simulated process: libc-flavored syscall
// wrappers (-1 on error), memory access through the simulated VM, and the
// user-level busy-wait synchronization of §3.
//
// errno lives in the PRDA (§5.1): "The C library could locate a copy of
// errno in the PRDA for a process" — so even with a fully shared data
// space, each member sees its own errno. Slot 0 of the PRDA page holds it;
// the remaining bytes are free for the program (PrdaUserBase).
#ifndef SRC_API_USER_ENV_H_
#define SRC_API_USER_ENV_H_

#include <span>
#include <string_view>

#include "api/image.h"
#include "api/kernel.h"
#include "base/types.h"
#include "vm/access.h"
#include "vm/layout.h"

namespace sg {

class Env {
 public:
  Env(Kernel& k, Proc& p) : k_(k), p_(p) {}

  Kernel& kernel() { return k_; }
  Proc& proc() { return p_; }
  pid_t Pid() const { return p_.pid; }
  pid_t Ppid() const { return p_.ppid.load(std::memory_order_relaxed); }

  // ----- errno in the PRDA -----
  static constexpr vaddr_t kErrnoAddr = kPrdaBase;        // u32 slot
  static constexpr vaddr_t PrdaUserBase() { return kPrdaBase + 8; }
  Errno LastError() {
    auto v = AtomicLoad32(p_.as, kErrnoAddr);
    return v.ok() ? static_cast<Errno>(v.value()) : Errno::kEFAULT;
  }
  void SetError(Errno e) { (void)AtomicStore32(p_.as, kErrnoAddr, static_cast<u32>(e)); }

  // ----- the paper's interface -----
  pid_t Sproc(UserFn fn, u32 shmask, long arg = 0) {
    return Ret(k_.Sproc(p_, std::move(fn), shmask, arg));
  }
  i64 Prctl(u32 option, i64 value = 0) { return Ret(k_.Prctl(p_, option, value)); }

  // ----- processes -----
  pid_t Fork(UserFn fn, long arg = 0) { return Ret(k_.Fork(p_, std::move(fn), arg)); }
  int Exec(const Image& img, long arg = 0) { return Ret0(k_.Exec(p_, img, arg)); }
  [[noreturn]] void Exit(int status) { k_.Exit(p_, status); }
  // Returns the reaped child's pid, or -1; fills *status / *sig if given.
  pid_t WaitChild(int* status = nullptr, int* sig = nullptr) {
    auto r = k_.Wait(p_);
    if (!r.ok()) {
      SetError(r.error());
      return -1;
    }
    if (status != nullptr) {
      *status = r.value().status;
    }
    if (sig != nullptr) {
      *sig = r.value().signal;
    }
    return r.value().pid;
  }
  int Kill(pid_t pid, int sig) { return Ret0(k_.Kill(p_, pid, sig)); }
  int Signal(int sig, std::function<void(int)> handler) {
    return Ret0(k_.Sigaction(p_, sig, SigDisp::kHandler, std::move(handler)));
  }
  int SignalIgnore(int sig) { return Ret0(k_.Sigaction(p_, sig, SigDisp::kIgnore)); }
  int SignalDefault(int sig) { return Ret0(k_.Sigaction(p_, sig, SigDisp::kDefault)); }
  int Pause() { return Ret0(k_.Pause(p_)); }
  int Sigpause() { return Ret0(k_.Sigpause(p_)); }
  void Yield() { k_.Yield(p_); }
  int Setuid(uid_t uid) { return Ret0(k_.Setuid(p_, uid)); }
  int Setgid(gid_t gid) { return Ret0(k_.Setgid(p_, gid)); }
  uid_t Getuid() { return k_.Getuid(p_); }
  mode_t Umask(mode_t mask) { return k_.Umask(p_, mask).value_or(0); }
  i64 UlimitGet() { return Ret(k_.UlimitGet(p_)); }
  int UlimitSet(u64 bytes) { return Ret0(k_.UlimitSet(p_, bytes)); }

  // ----- files -----
  int Open(std::string_view path, u32 flags, mode_t mode = 0644) {
    return Ret(k_.Open(p_, path, flags, mode));
  }
  int Close(int fd) { return Ret0(k_.Close(p_, fd)); }
  int Dup(int fd) { return Ret(k_.Dup(p_, fd)); }
  int Dup2(int fd, int newfd) { return Ret(k_.Dup2(p_, fd, newfd)); }
  int Pipe(int* rd, int* wr) {
    auto r = k_.MakePipe(p_);
    if (!r.ok()) {
      SetError(r.error());
      return -1;
    }
    *rd = r.value().first;
    *wr = r.value().second;
    return 0;
  }
  i64 Read(int fd, vaddr_t buf, u64 n) { return Ret(k_.Read(p_, fd, buf, n)); }
  i64 Write(int fd, vaddr_t buf, u64 n) { return Ret(k_.Write(p_, fd, buf, n)); }
  i64 ReadBuf(int fd, std::span<std::byte> out) { return Ret(k_.ReadK(p_, fd, out)); }
  i64 WriteBuf(int fd, std::span<const std::byte> in) { return Ret(k_.WriteK(p_, fd, in)); }
  i64 WriteStr(int fd, std::string_view s) {
    return WriteBuf(fd, std::as_bytes(std::span<const char>(s.data(), s.size())));
  }
  i64 Lseek(int fd, i64 off, SeekWhence whence = SeekWhence::kSet) {
    return Ret(k_.Lseek(p_, fd, off, whence));
  }
  int SetCloexec(int fd, bool on) { return Ret0(k_.SetCloexec(p_, fd, on)); }
  std::vector<std::string> ListDir(std::string_view path) {
    auto r = k_.ListDir(p_, path);
    if (!r.ok()) {
      SetError(r.error());
      return {};
    }
    return std::move(r).value();
  }
  std::string Getcwd() {
    auto r = k_.Getcwd(p_);
    if (!r.ok()) {
      SetError(r.error());
      return {};
    }
    return std::move(r).value();
  }
  int Mkdir(std::string_view path, mode_t mode = 0755) { return Ret0(k_.Mkdir(p_, path, mode)); }
  int Unlink(std::string_view path) { return Ret0(k_.Unlink(p_, path)); }
  int Chdir(std::string_view path) { return Ret0(k_.Chdir(p_, path)); }
  int Chroot(std::string_view path) { return Ret0(k_.Chroot(p_, path)); }

  // ----- memory -----
  vaddr_t Sbrk(i64 delta) {
    auto r = k_.Sbrk(p_, delta);
    if (!r.ok()) {
      SetError(r.error());
      return 0;
    }
    return r.value();
  }
  vaddr_t Mmap(u64 bytes, u32 prot = kProtRw) {
    auto r = k_.Mmap(p_, bytes, prot);
    if (!r.ok()) {
      SetError(r.error());
      return 0;
    }
    return r.value();
  }
  int Munmap(vaddr_t base) { return Ret0(k_.Munmap(p_, base)); }
  vaddr_t MmapFile(int fd, u64 offset, u64 len, bool shared_mapping) {
    auto r = k_.MapFile(p_, fd, offset, len, shared_mapping);
    if (!r.ok()) {
      SetError(r.error());
      return 0;
    }
    return r.value();
  }
  int Msync(vaddr_t base) { return Ret0(k_.Msync(p_, base)); }

  // Scalar access through the TLB + fault path. A bad address raises
  // SIGSEGV exactly like a hardware access would.
  template <typename T>
  T Load(vaddr_t va) {
    auto r = sg::Load<T>(p_.as, va);
    if (!r.ok()) {
      MemoryFault(r.error());
    }
    return r.value();
  }
  template <typename T>
  void Store(vaddr_t va, T value) {
    Status st = sg::Store<T>(p_.as, va, value);
    if (!st.ok()) {
      MemoryFault(st.error());
    }
  }
  u32 Load32(vaddr_t va) { return Load<u32>(va); }
  void Store32(vaddr_t va, u32 v) { Store<u32>(va, v); }

  // Word atomics (the "hardware supported lock" substrate of §3).
  u32 FetchAdd32(vaddr_t va, u32 delta) {
    auto r = AtomicFetchAdd32(p_.as, va, delta);
    if (!r.ok()) {
      MemoryFault(r.error());
    }
    return r.value();
  }
  // True if *va went expected -> desired.
  bool Cas32(vaddr_t va, u32 expected, u32 desired) {
    auto r = AtomicCas32(p_.as, va, expected, desired);
    if (!r.ok()) {
      MemoryFault(r.error());
    }
    return r.value() == expected;
  }
  u32 AtomicRead32(vaddr_t va) {
    auto r = AtomicLoad32(p_.as, va);
    if (!r.ok()) {
      MemoryFault(r.error());
    }
    return r.value();
  }
  void AtomicWrite32(vaddr_t va, u32 v) {
    Status st = AtomicStore32(p_.as, va, v);
    if (!st.ok()) {
      MemoryFault(st.error());
    }
  }

  // ----- user-level busy-wait synchronization (§3) -----
  // Spinlock over a shared u32 word (0 = free, 1 = held). "With busy-
  // waiting ... synchronization speeds can approach memory access speeds."
  // Spins yield periodically so a preempted holder can run even when the
  // group exceeds the processor count.
  void SpinLock(vaddr_t word) {
    u32 spins = 0;
    while (!Cas32(word, 0, 1)) {
      while (AtomicRead32(word) != 0) {
        CpuRelax();
        if (++spins % 1024 == 0) {
          k_.Yield(p_);
        }
      }
    }
  }
  bool SpinTryLock(vaddr_t word) { return Cas32(word, 0, 1); }
  void SpinUnlock(vaddr_t word) { AtomicWrite32(word, 0); }

  // Sense-reversing spin barrier over two shared u32 words
  // (word: arrival count, word+4: generation).
  void SpinBarrier(vaddr_t word, u32 parties) {
    const u32 gen = AtomicRead32(word + 4);
    if (FetchAdd32(word, 1) + 1 == parties) {
      AtomicWrite32(word, 0);
      FetchAdd32(word + 4, 1);  // release everyone
    } else {
      u32 spins = 0;
      while (AtomicRead32(word + 4) == gen) {
        CpuRelax();
        if (++spins % 1024 == 0) {
          k_.Yield(p_);
        }
      }
    }
  }

  // System V IPC wrappers.
  int Shmget(i32 key, u64 bytes) { return Ret(k_.Shmget(p_, key, bytes)); }
  vaddr_t Shmat(int shmid) {
    auto r = k_.Shmat(p_, shmid);
    if (!r.ok()) {
      SetError(r.error());
      return 0;
    }
    return r.value();
  }
  int Shmdt(vaddr_t base) { return Ret0(k_.Shmdt(p_, base)); }
  int Semget(i32 key, i64 initial) { return Ret(k_.Semget(p_, key, initial)); }
  int SemOp(int semid, i64 delta) { return Ret0(k_.SemOp(p_, semid, delta)); }
  int Msgget(i32 key) { return Ret(k_.Msgget(p_, key)); }
  int Msgsnd(int msqid, std::span<const std::byte> m) { return Ret0(k_.Msgsnd(p_, msqid, m)); }
  i64 Msgrcv(int msqid, std::span<std::byte> out) { return Ret(k_.Msgrcv(p_, msqid, out)); }
  int MsgsndU(int msqid, vaddr_t msg, u64 len) { return Ret0(k_.MsgsndU(p_, msqid, msg, len)); }
  i64 MsgrcvU(int msqid, vaddr_t out, u64 cap) { return Ret(k_.MsgrcvU(p_, msqid, out, cap)); }

 private:
  // Converts Result<T> to the libc convention.
  template <typename T>
  i64 Ret(const Result<T>& r) {
    if (!r.ok()) {
      SetError(r.error());
      return -1;
    }
    return static_cast<i64>(r.value());
  }
  int Ret0(Status st) {
    if (!st.ok()) {
      SetError(st.error());
      return -1;
    }
    return 0;
  }

  // A failed user memory access: post SIGSEGV to ourselves and take the
  // kernel-entry path so it is delivered (default: terminate).
  [[noreturn]] void MemoryFault(Errno e);

  Kernel& k_;
  Proc& p_;
};

}  // namespace sg

#endif  // SRC_API_USER_ENV_H_
