// VM syscalls and System V IPC wrappers.
#include <optional>

#include "api/kernel.h"
#include "obs/stats.h"
#include "vm/access.h"
#include "vm/page_source.h"

namespace sg {

namespace {

// Adapts an inode to the vm layer's backing-store interface, holding a
// counted reference for the mapping's lifetime.
class InodePageSource final : public PageSource {
 public:
  InodePageSource(InodeTable& inodes, Inode* ip) : inodes_(inodes), ip_(inodes.Iget(ip)) {}
  ~InodePageSource() override { inodes_.Iput(ip_); }

  void ReadPage(u64 off, std::byte* dst) override { ip_->ReadAt(off, dst, kPageSize); }
  void WritePage(u64 off, const std::byte* src, u64 len) override {
    // Kernel writeback bypasses the caller's ulimit (the data already
    // passed the limit check when the mapping length was established).
    ip_->WriteAt(off, src, len, ~u64{0});
  }

 private:
  InodeTable& inodes_;
  Inode* ip_;
};

}  // namespace

Result<vaddr_t> Kernel::Sbrk(Proc& p, i64 delta) {
  SyscallEnter(p);
  SG_OBS_SYSCALL("sbrk");
  auto r = sg::Sbrk(p.as, delta);
  SyscallExit(p);
  return r;
}

Result<vaddr_t> Kernel::Mmap(Proc& p, u64 bytes, u32 prot) {
  SyscallEnter(p);
  SG_OBS_SYSCALL("mmap");
  auto r = MapAnon(p.as, bytes, prot);
  SyscallExit(p);
  return r;
}

Status Kernel::Munmap(Proc& p, vaddr_t base) {
  SyscallEnter(p);
  SG_OBS_SYSCALL("munmap");
  Status st = Unmap(p.as, base);
  SyscallExit(p);
  return st;
}

Result<vaddr_t> Kernel::MapFile(Proc& p, int fd, u64 offset, u64 len, bool shared_mapping) {
  SyscallEnter(p);
  SG_OBS_SYSCALL("mapfile");
  Result<vaddr_t> r = Errno::kEBADF;
  auto fr = p.fds.Get(fd);
  if (!fr.ok()) {
    r = fr.error();
  } else if (len == 0 || (offset & kPageMask) != 0) {
    r = Errno::kEINVAL;
  } else {
    OpenFile* f = fr.value();
    if (f->inode()->type() != InodeType::kRegular) {
      r = Errno::kEINVAL;
    } else if (!f->readable() || (shared_mapping && !f->writable())) {
      // A shared mapping writes back, so the descriptor must allow it.
      r = Errno::kEACCES;
    } else {
      auto source = std::make_shared<InodePageSource>(vfs_.inodes(), f->inode());
      auto region = Region::AllocBacked(mem_, PagesFor(len), std::move(source), offset, len,
                                        shared_mapping);
      r = AttachRegion(p.as, std::move(region), kProtRw);
    }
  }
  SyscallExit(p);
  return r;
}

Status Kernel::Msync(Proc& p, vaddr_t base) {
  SyscallEnter(p);
  SG_OBS_SYSCALL("msync");
  Status st = Errno::kEINVAL;
  // Pin the region under the lock, write it back OUTSIDE: WriteBack is
  // blocking I/O, and holding even the read side across it would stall
  // every VM updater (sbrk, mmap, sproc stack attach) behind one msync.
  // The shared_ptr keeps the region alive if the mapping is unmapped
  // concurrently; the worst case is a redundant writeback of data munmap
  // already flushed, never a lost or dangling one.
  std::shared_ptr<Region> target;
  {
    SharedSpace* ss = p.as.shared();
    std::optional<ReadGuard> guard;
    if (ss != nullptr) {
      guard.emplace(ss->lock());
    }
    Pregion* pr = p.as.FindPregionFast(base, /*out_shared=*/nullptr);
    if (pr != nullptr && pr->base == base && pr->region->NeedsWriteBack()) {
      target = pr->region;
    }
  }
  if (target != nullptr) {
    st = target->WriteBack();
  }
  SyscallExit(p);
  return st;
}

// ----- System V IPC -----

Result<int> Kernel::Shmget(Proc& p, i32 key, u64 bytes) {
  SyscallEnter(p);
  SG_OBS_SYSCALL("shmget");
  auto r = ipc_.ShmGet(key, bytes);
  SyscallExit(p);
  return r;
}

Result<vaddr_t> Kernel::Shmat(Proc& p, int shmid) {
  SyscallEnter(p);
  SG_OBS_SYSCALL("shmat");
  Result<vaddr_t> r = Errno::kEIDRM;
  auto region = ipc_.ShmRegion(shmid);
  if (!region.ok()) {
    r = region.error();
  } else {
    r = AttachRegion(p.as, std::move(region).value(), kProtRw);
  }
  SyscallExit(p);
  return r;
}

Status Kernel::Shmdt(Proc& p, vaddr_t base) {
  SyscallEnter(p);
  SG_OBS_SYSCALL("shmdt");
  Status st = Unmap(p.as, base);
  SyscallExit(p);
  return st;
}

Status Kernel::ShmRemove(Proc& p, int shmid) {
  SyscallEnter(p);
  SG_OBS_SYSCALL("shmremove");
  Status st = ipc_.ShmRemove(shmid);
  SyscallExit(p);
  return st;
}

Result<int> Kernel::Semget(Proc& p, i32 key, i64 initial) {
  SyscallEnter(p);
  SG_OBS_SYSCALL("semget");
  auto r = ipc_.SemGet(key, initial);
  SyscallExit(p);
  return r;
}

Status Kernel::SemOp(Proc& p, int semid, i64 delta) {
  SyscallEnter(p);
  SG_OBS_SYSCALL("semop");
  Status st = Status::Ok();
  auto sem = ipc_.Sem(semid);
  if (!sem.ok()) {
    st = sem.status();
  } else {
    st = sem.value()->Op(delta);
  }
  SyscallExit(p);
  return st;
}

Status Kernel::SemRemove(Proc& p, int semid) {
  SyscallEnter(p);
  SG_OBS_SYSCALL("semremove");
  Status st = ipc_.SemRemove(semid);
  SyscallExit(p);
  return st;
}

Result<int> Kernel::Msgget(Proc& p, i32 key) {
  SyscallEnter(p);
  SG_OBS_SYSCALL("msgget");
  auto r = ipc_.MsgGet(key);
  SyscallExit(p);
  return r;
}

Status Kernel::Msgsnd(Proc& p, int msqid, std::span<const std::byte> msg) {
  SyscallEnter(p);
  SG_OBS_SYSCALL("msgsnd");
  Status st = Status::Ok();
  auto q = ipc_.Msg(msqid);
  if (!q.ok()) {
    st = q.status();
  } else {
    st = q.value()->Send(msg);
  }
  SyscallExit(p);
  return st;
}

Result<u64> Kernel::Msgrcv(Proc& p, int msqid, std::span<std::byte> out) {
  SyscallEnter(p);
  SG_OBS_SYSCALL("msgrcv");
  Result<u64> r = Errno::kEIDRM;
  auto q = ipc_.Msg(msqid);
  if (!q.ok()) {
    r = q.error();
  } else {
    r = q.value()->Receive(out);
  }
  SyscallExit(p);
  return r;
}

Status Kernel::MsgsndU(Proc& p, int msqid, vaddr_t msg, u64 len) {
  SyscallEnter(p);
  SG_OBS_SYSCALL("msgsndu");
  Status st = Status::Ok();
  auto q = ipc_.Msg(msqid);
  if (!q.ok()) {
    st = q.status();
  } else {
    std::vector<std::byte> bounce(len);
    st = CopyIn(p.as, bounce.data(), msg, len);  // user -> kernel copy
    if (st.ok()) {
      st = q.value()->Send(bounce);
    }
  }
  SyscallExit(p);
  return st;
}

Result<u64> Kernel::MsgrcvU(Proc& p, int msqid, vaddr_t out, u64 cap) {
  SyscallEnter(p);
  SG_OBS_SYSCALL("msgrcvu");
  Result<u64> r = Errno::kEIDRM;
  auto q = ipc_.Msg(msqid);
  if (!q.ok()) {
    r = q.error();
  } else {
    std::vector<std::byte> bounce(cap);
    r = q.value()->Receive(bounce);
    if (r.ok()) {
      Status st = CopyOut(p.as, out, bounce.data(), r.value());  // kernel -> user copy
      if (!st.ok()) {
        r = st.error();
      }
    }
  }
  SyscallExit(p);
  return r;
}

Status Kernel::MsgRemove(Proc& p, int msqid) {
  SyscallEnter(p);
  SG_OBS_SYSCALL("msgremove");
  Status st = ipc_.MsgRemove(msqid);
  SyscallExit(p);
  return st;
}

}  // namespace sg
