// Process creation and the paper's sproc(2)/prctl(2) interface (§5), plus
// the identity/limit syscalls whose values share groups can propagate.
#include <limits>

#include "api/kernel.h"
#include "obs/stats.h"
#include "api/user_env.h"
#include "base/check.h"
#include "inject/inject.h"
#include "vm/access.h"

namespace sg {

void Kernel::CreatePrda(AddressSpace& as, PhysMem& mem) {
  // §5.1: "a small amount of memory (typically less than a page in size)
  // which records data which must remain private to the process, and is
  // always at the same fixed virtual location in every process, allowing
  // shared code to access private data."
  auto region = Region::Alloc(mem, RegionType::kPrda, 1);
  as.AttachPrivate(std::make_unique<Pregion>(std::move(region), kPrdaBase, kProtRw));
}

Status Kernel::AllocStack(Proc& p, bool shared_stack) {
  if (SG_INJECT_FAULT("alloc.stack")) {
    return Errno::kENOMEM;  // injected: out of stack VA/frames
  }
  const u64 pages = p.stack_max_pages;
  if (shared_stack) {
    ShaddrBlock* b = p.shaddr;
    SG_CHECK(b != nullptr);
    SharedSpace& ss = b->space();
    // §6.2: sproc "allocates a new stack segment in a non-overlapping
    // region of the parent's virtual address space"; the list change is a
    // VM-image update.
    UpdateGuard g(ss.lock());
    auto base = ss.va().AllocDown(pages);
    if (!base.ok()) {
      return base.error();
    }
    auto pr = std::make_unique<Pregion>(Region::Alloc(mem_, RegionType::kStack, pages),
                                        base.value(), kProtRw);
    pr->stack_owner = p.pid;
    // AttachPregion charges the stack's resident pages to the group's page
    // cap from the first fault on, and publishes the layout change to the
    // lockless fault path.
    ss.AttachPregion(std::move(pr));
    p.stack_base = base.value();
    return Status::Ok();
  }
  auto base = p.as.va().AllocDown(pages);
  if (!base.ok()) {
    return base.error();
  }
  auto pr = std::make_unique<Pregion>(Region::Alloc(mem_, RegionType::kStack, pages),
                                      base.value(), kProtRw);
  pr->stack_owner = p.pid;
  p.as.AttachPrivate(std::move(pr));
  p.stack_base = base.value();
  return Status::Ok();
}

Status Kernel::BuildImage(Proc& p, const Image& img) {
  const u64 text_pages = std::max<u64>(std::max<u64>(img.text_pages, 1),
                                       PagesFor(img.text.size()));
  auto text = Region::Alloc(mem_, RegionType::kText, text_pages);
  if (!img.text.empty()) {
    SG_RETURN_IF_ERROR(text->FillFrom(0, img.text));
  }
  p.as.AttachPrivate(std::make_unique<Pregion>(std::move(text), kTextBase, kProtRx));

  const u64 data_pages =
      std::max<u64>(PagesFor(img.data.size()) + img.extra_data_pages, params_.initial_data_pages);
  auto data = Region::Alloc(mem_, RegionType::kData, data_pages);
  if (!img.data.empty()) {
    SG_RETURN_IF_ERROR(data->FillFrom(0, img.data));
  }
  p.as.AttachPrivate(std::make_unique<Pregion>(std::move(data), kDataBase, kProtRw));

  CreatePrda(p.as, mem_);
  return AllocStack(p, /*shared_stack=*/false);
}

void Kernel::InheritUArea(Proc& parent, Proc& child) {
  child.uid = parent.uid.load(std::memory_order_relaxed);
  child.gid = parent.gid.load(std::memory_order_relaxed);
  child.umask = parent.umask;
  child.ulimit = parent.ulimit;
  child.stack_max_pages = parent.stack_max_pages;  // PR_SETSTACKSIZE inherits (§5.2)
  child.priority.store(parent.priority.load(std::memory_order_relaxed), std::memory_order_relaxed);
  child.cwd = vfs_.inodes().Iget(parent.cwd);
  child.rootdir = vfs_.inodes().Iget(parent.rootdir);
  for (int fd = 0; fd < FdTable::kMaxFds; ++fd) {
    const FdEntry& e = parent.fds.Slot(fd);
    if (e.used()) {
      SG_CHECK(child.fds.SetSlot(fd, vfs_.files().Dup(e.file), e.close_on_exec).ok());
    }
  }
  MutexGuard l(parent.sig_mu);
  // The child is an embryo (host thread not started), so its mutex is free;
  // holding it anyway keeps the write analyzable.
  MutexGuard lc(child.sig_mu);
  child.sig_actions = parent.sig_actions;
  child.sig_blocked.store(parent.sig_blocked.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
}

namespace {

// Unwinds a half-built child that never ran.
void AbortEmbryo(Kernel& k, Proc* c) {
  for (int fd = 0; fd < FdTable::kMaxFds; ++fd) {
    auto f = c->fds.ClearSlot(fd);
    if (f.ok()) {
      k.vfs().files().Release(f.value());
    }
  }
  if (c->cwd != nullptr) {
    k.vfs().inodes().Iput(c->cwd);
  }
  if (c->rootdir != nullptr) {
    k.vfs().inodes().Iput(c->rootdir);
  }
  c->as.DetachAllPrivate();
  k.procs().Free(c);
}

}  // namespace

Result<pid_t> Kernel::Fork(Proc& p, UserFn entry, long arg) {
  SyscallEnter(p);
  SG_OBS_SYSCALL("fork");
  auto alloc = procs_.Alloc();
  if (!alloc.ok()) {
    SyscallExit(p);
    return alloc.error();
  }
  Proc* c = alloc.value();
  c->ppid.store(p.pid, std::memory_order_relaxed);
  InheritUArea(p, *c);
  // §5.1: "A new process may be created outside the share group through the
  // fork(2) system call" — the child gets a copy-on-write image (including
  // any group-visible stacks) and is NOT a member.
  Status st = DuplicateForFork(p.as, c->as);
  if (!st.ok()) {
    AbortEmbryo(*this, c);
    SyscallExit(p);
    return st.error();
  }
  c->stack_base = p.stack_base;  // the child runs on its COW copy of our stack
  StartProcThread(c, std::move(entry), arg);
  SyscallExit(p);
  return c->pid;
}

Result<pid_t> Kernel::Sproc(Proc& p, UserFn entry, u32 shmask, long arg) {
  SyscallEnter(p);
  SG_OBS_SYSCALL("sproc");
  const bool priv_data = (shmask & PR_PRIVDATA) != 0;  // §8 extension
  shmask &= PR_SALL;
  // §5.1 strict inheritance: "a process can only cause a child to share
  // those resources that the parent can share as well".
  if (p.shaddr != nullptr) {
    shmask &= p.p_shmask;
  }
  // "The first use of the sproc() call creates a share group."
  if (p.shaddr == nullptr) {
    auto block = std::make_unique<ShaddrBlock>(p, cpus_, vfs_, rm_);
    std::lock_guard<std::mutex> l(blocks_mu_);
    blocks_.emplace(block.get(), std::move(block));
  }
  ShaddrBlock* block = p.shaddr;
  SG_INJECT_POINT("kernel.sproc.pre_attach");

  if (SG_INJECT_FAULT("sproc.alloc")) {
    SyscallExit(p);
    return Errno::kEAGAIN;  // injected: process table pressure
  }
  // Admission control (src/rm/): the member cap is charged before the child
  // exists; every path below on which the child never attaches uncharges.
  // (RemoveMember owns the uncharge once the child IS attached.)
  if (SG_INJECT_FAULT("rm.cap.members") ||
      !block->rm_node()->TryCharge(rm::Resource::kMembers, 1)) {
    SyscallExit(p);
    return Errno::kEAGAIN;  // group at its member cap
  }
  auto alloc = procs_.Alloc();
  if (!alloc.ok()) {
    block->rm_node()->Uncharge(rm::Resource::kMembers, 1);
    SyscallExit(p);
    return alloc.error();
  }
  Proc* c = alloc.value();
  c->ppid.store(p.pid, std::memory_order_relaxed);
  InheritUArea(p, *c);

  Status st = Status::Ok();
  if ((shmask & PR_SADDR) != 0) {
    // Shared image: the child sees the group's pregion list; only its PRDA
    // is private, and it gets a fresh group-visible stack.
    block->AddMember(*c, shmask);
    CreatePrda(c->as, mem_);
    st = AllocStack(*c, /*shared_stack=*/true);
    if (st.ok() && priv_data) {
      // §8: "share part of the VM image and have copy-on-write access to
      // other parts" — the data region becomes a private COW shadow.
      st = block->ShadowDataPrivately(*c);
    }
  } else {
    // "If the virtual address space is not shared, the new process gets a
    // copy-on-write image of the share group virtual address space. In this
    // case, the new stack is not visible in the share group."
    st = DuplicateForFork(p.as, c->as);
    if (st.ok()) {
      st = AllocStack(*c, /*shared_stack=*/false);
    }
    if (st.ok()) {
      block->AddMember(*c, shmask);
    }
  }
  if (!st.ok()) {
    if (c->shaddr != nullptr) {
      // RemoveMember returns the charged member slot.
      if (block->RemoveMember(*c)) {
        std::lock_guard<std::mutex> l(blocks_mu_);
        blocks_.erase(block);
      }
    } else {
      // The child never attached; return its admission charge ourselves.
      block->rm_node()->Uncharge(rm::Resource::kMembers, 1);
    }
    AbortEmbryo(*this, c);
    SyscallExit(p);
    return st.error();
  }

  // The child's u-area was copied from the parent outside the update locks,
  // so the child is exactly as stale as the parent: seed its generation
  // caches from the parent's and the ordinary delta sync pulls, on the
  // child's first kernel entry, exactly what the parent itself would have
  // pulled (strict inheritance means the child shares nothing the parent
  // doesn't). This replaces the old flag-everything seeding, whose first
  // entry cost a wholesale resync even when nothing had changed.
  c->p_resgen = p.p_resgen;
  c->p_fd_synced_gen = p.p_fd_synced_gen;
  SG_INJECT_POINT("kernel.sproc.post_attach");

  StartProcThread(c, std::move(entry), arg);
  SyscallExit(p);
  return c->pid;
}

Result<i64> Kernel::Prctl(Proc& p, u32 option, i64 value) {
  SyscallEnter(p);
  SG_OBS_SYSCALL("prctl");
  Result<i64> r = Errno::kEINVAL;
  switch (option) {
    case PR_MAXPROCS:
      r = static_cast<i64>(procs_.max_procs());
      break;
    case PR_MAXPPROCS:
      // "the number of processes that the system can run in parallel".
      r = static_cast<i64>(cpus_.ncpus());
      break;
    case PR_SETSTACKSIZE: {
      if (value <= 0) {
        break;
      }
      u64 pages = PagesFor(static_cast<u64>(value));
      if (pages > kMaxStackMaxPages) {
        pages = kMaxStackMaxPages;
      }
      p.stack_max_pages = pages;  // layout of future sproc stacks (§5.2)
      r = static_cast<i64>(pages * kPageSize);
      break;
    }
    case PR_GETSTACKSIZE:
      r = static_cast<i64>(p.stack_max_pages * kPageSize);
      break;
    case PR_SETGROUPPRI: {
      // §8 extension: group-wide scheduling control through the share block.
      if (p.shaddr == nullptr) {
        break;
      }
      i64 members = 0;
      p.shaddr->ForEachMember([&](Proc& m) {
        m.priority.store(static_cast<int>(value), std::memory_order_relaxed);
        ++members;
      });
      r = members;
      break;
    }
    case PR_UNSHARE: {
      // §8 extension: stop sharing the resources in `value`.
      if (p.shaddr == nullptr) {
        break;
      }
      const u32 drop = static_cast<u32>(value) & PR_SALL & p.p_shmask;
      Status st = Status::Ok();
      if ((drop & PR_SADDR) != 0) {
        st = p.shaddr->UnshareVm(p);  // clears PR_SADDR itself
      }
      if (st.ok()) {
        p.p_shmask &= ~(drop & ~PR_SADDR);
        // Stale "resynchronize" hints for dropped resources are void now.
        u32 clear = 0;
        if ((drop & PR_SFDS) != 0) {
          clear |= kPfSyncFds;
        }
        if ((drop & PR_SDIR) != 0) {
          clear |= kPfSyncDir;
        }
        if ((drop & PR_SID) != 0) {
          clear |= kPfSyncId;
        }
        if ((drop & PR_SUMASK) != 0) {
          clear |= kPfSyncUmask;
        }
        if ((drop & PR_SULIMIT) != 0) {
          clear |= kPfSyncUlimit;
        }
        p.p_flag.fetch_and(~clear, std::memory_order_acq_rel);
        r = static_cast<i64>(p.p_shmask);
      } else {
        r = st.error();
      }
      break;
    }
    case PR_BLOCKGROUP: {
      // §8 extension: suspend every OTHER member at its next kernel entry.
      if (p.shaddr == nullptr) {
        break;
      }
      i64 affected = 0;
      p.shaddr->ForEachMember([&](Proc& m) {
        if (&m != &p) {
          m.suspended.store(true, std::memory_order_release);
          ++affected;
        }
      });
      r = affected;
      break;
    }
    case PR_UNBLKGROUP: {
      if (p.shaddr == nullptr) {
        break;
      }
      i64 affected = 0;
      p.shaddr->ForEachMember([&](Proc& m) {
        if (&m != &p && m.suspended.exchange(false, std::memory_order_acq_rel)) {
          ++affected;
          // Serialize with a parker mid-wait, then wake it.
          {
            std::lock_guard<std::mutex> l(m.wait_mu);
          }
          m.wait_cv.notify_all();
        }
      });
      r = affected;
      break;
    }
    case PR_JOINGROUP: {
      // §8 extension: join `value`'s group for the non-VM resources.
      if (p.shaddr != nullptr) {
        break;  // already in a group
      }
      Result<i64> join_result = Errno::kESRCH;
      {
        std::lock_guard<std::mutex> bl(blocks_mu_);
        procs_.WithProc(static_cast<pid_t>(value), [&](Proc& t) {
          if (p.uid != 0 && p.uid != t.uid) {
            join_result = Errno::kEPERM;
            return;
          }
          ShaddrBlock* b = t.shaddr;
          if (b == nullptr || blocks_.find(b) == blocks_.end()) {
            return;  // target not in a (live) group
          }
          constexpr u32 kJoinMask = PR_SALL & ~PR_SADDR;
          // Same admission seam as sproc: the joiner is charged against the
          // member cap before it can attach.
          if (SG_INJECT_FAULT("rm.cap.members") ||
              !b->rm_node()->TryCharge(rm::Resource::kMembers, 1)) {
            join_result = Errno::kEAGAIN;
            return;
          }
          if (!b->TryAddMember(p, kJoinMask)) {
            b->rm_node()->Uncharge(rm::Resource::kMembers, 1);
            return;  // the group drained under us
          }
          join_result = static_cast<i64>(kJoinMask);
        });
      }
      if (join_result.ok()) {
        // Pull every master copy at this very entry's tail: flag ourselves.
        p.p_flag.fetch_or(kPfSyncAny, std::memory_order_acq_rel);
        p.shaddr->SyncOnKernelEntry(p);
      }
      r = join_result;
      break;
    }
    case PR_SETSHARES: {
      // Fair-share weight of the caller's group (src/rm/). Returns the
      // shares now in effect (the manager clamps 0 to 1).
      if (p.shaddr == nullptr || value < 0 ||
          value > static_cast<i64>(std::numeric_limits<u32>::max())) {
        break;
      }
      r = static_cast<i64>(rm_.SetShares(p.shaddr->rm_node(), static_cast<u32>(value)));
      break;
    }
    case PR_SETRCAP: {
      // Per-group capacity cap; value packs (resource, cap) — see
      // share_mask.h. Returns the cap now in effect (0 = unlimited).
      if (p.shaddr == nullptr || value < 0) {
        break;
      }
      const u32 res = PrRcapResource(value);
      const u64 cap = PrRcapCap(value);
      rm::GroupNode* node = p.shaddr->rm_node();
      if (res == PR_RCAP_MEMBERS) {
        node->SetCap(rm::Resource::kMembers, cap);
      } else if (res == PR_RCAP_FILES) {
        node->SetCap(rm::Resource::kFiles, cap);
      } else if (res == PR_RCAP_PAGES) {
        node->SetCap(rm::Resource::kPages, cap);
      } else {
        break;  // unknown resource selector
      }
      r = static_cast<i64>(cap);
      break;
    }
    default:
      break;
  }
  SyscallExit(p);
  return r;
}

Status Kernel::Exec(Proc& p, const Image& img, long arg) {
  SyscallEnter(p);
  SG_OBS_SYSCALL("exec");
  if (!img.main) {
    SyscallExit(p);
    return Errno::kEINVAL;
  }
  // §5.1: "use of the exec(2) system call removes the process from the
  // share group before overlaying the new process image, thus insuring a
  // secure environment for the new program image."
  if (p.shaddr != nullptr) {
    ShaddrBlock* b = p.shaddr;
    SG_INJECT_POINT("kernel.exec.pre_detach");
    if (b->RemoveMember(p)) {
      std::lock_guard<std::mutex> l(blocks_mu_);
      blocks_.erase(b);
    }
    SG_INJECT_POINT("kernel.exec.post_detach");
  }
  // Close close-on-exec descriptors (ours only; we are no longer sharing).
  for (int fd = 0; fd < FdTable::kMaxFds; ++fd) {
    if (p.fds.Slot(fd).used() && p.fds.Slot(fd).close_on_exec) {
      vfs_.files().Release(p.fds.ClearSlot(fd).value());
    }
  }
  // Overlay the image.
  p.as.DetachAllPrivate();
  p.as.ResetVa();
  Status st = BuildImage(p, img);
  if (!st.ok()) {
    // The old image is gone; a real kernel kills the process here.
    throw ProcTerminated{0, kSigKill};
  }
  // Caught signals revert to default across exec.
  {
    MutexGuard l(p.sig_mu);
    for (SigAction& a : p.sig_actions) {
      if (a.disp == SigDisp::kHandler) {
        a = SigAction{};
      }
    }
  }
  Env env(*this, p);
  img.main(env, arg);
  throw ProcTerminated{0, 0};  // the new image's main returned
}

// ----- identity / limits -----

Status Kernel::Setuid(Proc& p, uid_t uid) {
  SyscallEnter(p);
  SG_OBS_SYSCALL("setuid");
  Status st = Status::Ok();
  if (p.uid != 0 && uid != p.uid) {
    st = Errno::kEPERM;
  } else if (p.shaddr != nullptr && (p.p_shmask & PR_SID) != 0) {
    p.shaddr->UpdateIds(p, &uid, nullptr);
  } else {
    p.uid = uid;
  }
  SyscallExit(p);
  return st;
}

Status Kernel::Setgid(Proc& p, gid_t gid) {
  SyscallEnter(p);
  SG_OBS_SYSCALL("setgid");
  Status st = Status::Ok();
  if (p.uid != 0 && gid != p.gid) {
    st = Errno::kEPERM;
  } else if (p.shaddr != nullptr && (p.p_shmask & PR_SID) != 0) {
    p.shaddr->UpdateIds(p, nullptr, &gid);
  } else {
    p.gid = gid;
  }
  SyscallExit(p);
  return st;
}

Result<mode_t> Kernel::Umask(Proc& p, mode_t mask) {
  SyscallEnter(p);
  SG_OBS_SYSCALL("umask");
  const mode_t old = p.umask;
  if (p.shaddr != nullptr && (p.p_shmask & PR_SUMASK) != 0) {
    p.shaddr->UpdateUmask(p, mask);
  } else {
    p.umask = static_cast<mode_t>(mask & kModeAll);
  }
  SyscallExit(p);
  return old;
}

Result<u64> Kernel::UlimitGet(Proc& p) {
  SyscallEnter(p);
  SG_OBS_SYSCALL("ulimitget");
  const u64 v = p.ulimit;
  SyscallExit(p);
  return v;
}

Status Kernel::UlimitSet(Proc& p, u64 bytes) {
  SyscallEnter(p);
  SG_OBS_SYSCALL("ulimitset");
  Status st = Status::Ok();
  if (bytes > p.ulimit && p.uid != 0) {
    st = Errno::kEPERM;  // only the superuser may raise the limit
  } else if (p.shaddr != nullptr && (p.p_shmask & PR_SULIMIT) != 0) {
    p.shaddr->UpdateUlimit(p, bytes);
  } else {
    p.ulimit = bytes;
  }
  SyscallExit(p);
  return st;
}

}  // namespace sg
