// Filesystem syscalls. Descriptor-table mutations follow the §6.3 protocol
// when the caller shares PR_SFDS: single-thread through s_fupdsema, pull if
// flagged (the double-update check), modify, publish, release — so "when
// one of the processes in a group opens a file, the others will see the
// file as immediately available to them".
//
// The bracket is conditional (taken only when the caller shares PR_SFDS),
// which clang's thread-safety analysis cannot express — the descriptor
// syscalls below carry SG_NO_THREAD_SAFETY_ANALYSIS, and the runtime
// lockdep validator covers the bracket ordering instead.
#include <algorithm>
#include <vector>

#include "api/kernel.h"
#include "base/thread_annotations.h"
#include "inject/inject.h"
#include "obs/stats.h"
#include "vm/access.h"

namespace sg {

namespace {

// Headroom check against the group's fd cap (src/rm/). Valid only inside the
// s_fupdsema bracket after the pull: there the rm node's kFiles `used` equals
// the master table's population, so `used + delta <= cap` is an exact
// admission test. The charge itself moves with PublishFds — this never
// charges, so no unwind is needed on later failure.
bool FdCapAllows(ShaddrBlock* b, u64 delta) {
  if (b == nullptr) {
    return true;  // private fd table: no group, no cap
  }
  if (SG_INJECT_FAULT("rm.cap.files")) {
    SG_OBS_INC("rm.cap.denied.files");
    return false;
  }
  rm::GroupNode* n = b->rm_node();
  const u64 cap = n->cap(rm::Resource::kFiles);
  if (cap == 0 || n->used(rm::Resource::kFiles) + delta <= cap) {
    return true;
  }
  SG_OBS_INC("rm.cap.denied.files");
  return false;
}

}  // namespace

Result<int> Kernel::Open(Proc& p, std::string_view path, u32 flags, mode_t mode) SG_NO_THREAD_SAFETY_ANALYSIS {
  SyscallEnter(p);
  SG_OBS_SYSCALL("open");
  ShaddrBlock* b = FdBlock(p);
  if (b != nullptr) {
    b->LockFileUpdate();
    b->PullFdsIfFlagged(p);
  }
  Result<int> result = Errno::kEINVAL;
  if (!FdCapAllows(b, 1)) {
    result = Errno::kEAGAIN;
  } else {
    auto f = SG_INJECT_FAULT("open")
                 ? Result<OpenFile*>(Errno::kENFILE)  // injected: file table full
                 : vfs_.Open(p.cwd, p.rootdir, CredOf(p), path, flags, mode, p.umask);
    if (!f.ok()) {
      result = f.error();
    } else {
      auto fd = p.fds.AllocSlot(f.value());
      if (!fd.ok()) {
        vfs_.files().Release(f.value());
        result = fd.error();
      } else {
        result = fd.value();
        if (b != nullptr) {
          b->PublishFds(p);
        }
      }
    }
  }
  if (b != nullptr) {
    b->UnlockFileUpdate();
  }
  SyscallExit(p);
  return result;
}

Status Kernel::Close(Proc& p, int fd) SG_NO_THREAD_SAFETY_ANALYSIS {
  SyscallEnter(p);
  SG_OBS_SYSCALL("close");
  ShaddrBlock* b = FdBlock(p);
  if (b != nullptr) {
    b->LockFileUpdate();
    b->PullFdsIfFlagged(p);
  }
  Status st = Status::Ok();
  auto f = p.fds.ClearSlot(fd);
  if (!f.ok()) {
    st = f.error();
  } else {
    vfs_.files().Release(f.value());
    if (b != nullptr) {
      b->PublishFds(p);
    }
  }
  if (b != nullptr) {
    b->UnlockFileUpdate();
  }
  SyscallExit(p);
  return st;
}

Result<int> Kernel::Dup(Proc& p, int fd) SG_NO_THREAD_SAFETY_ANALYSIS {
  SyscallEnter(p);
  SG_OBS_SYSCALL("dup");
  ShaddrBlock* b = FdBlock(p);
  if (b != nullptr) {
    b->LockFileUpdate();
    b->PullFdsIfFlagged(p);
  }
  Result<int> result = Errno::kEBADF;
  auto f = p.fds.Get(fd);
  if (f.ok() && !FdCapAllows(b, 1)) {
    result = Errno::kEAGAIN;
  } else if (f.ok()) {
    auto slot = p.fds.AllocSlot(vfs_.files().Dup(f.value()));
    if (!slot.ok()) {
      vfs_.files().Release(f.value());
      result = slot.error();
    } else {
      result = slot.value();
      if (b != nullptr) {
        b->PublishFds(p);
      }
    }
  }
  if (b != nullptr) {
    b->UnlockFileUpdate();
  }
  SyscallExit(p);
  return result;
}

Result<int> Kernel::Dup2(Proc& p, int fd, int newfd) SG_NO_THREAD_SAFETY_ANALYSIS {
  SyscallEnter(p);
  SG_OBS_SYSCALL("dup2");
  ShaddrBlock* b = FdBlock(p);
  if (b != nullptr) {
    b->LockFileUpdate();
    b->PullFdsIfFlagged(p);
  }
  Result<int> result = Errno::kEBADF;
  auto f = p.fds.Get(fd);
  if (f.ok() && p.fds.ValidFd(newfd)) {
    if (fd == newfd) {
      result = newfd;
    } else if (!p.fds.Slot(newfd).used() && !FdCapAllows(b, 1)) {
      // Only a dup onto an EMPTY slot grows the table; replacing counts 0.
      result = Errno::kEAGAIN;
    } else {
      auto old = p.fds.ClearSlot(newfd);
      if (old.ok()) {
        vfs_.files().Release(old.value());
      }
      SG_RETURN_IF_ERROR(p.fds.SetSlot(newfd, vfs_.files().Dup(f.value()), false));
      result = newfd;
      if (b != nullptr) {
        b->PublishFds(p);
      }
    }
  }
  if (b != nullptr) {
    b->UnlockFileUpdate();
  }
  SyscallExit(p);
  return result;
}

Status Kernel::SetCloexec(Proc& p, int fd, bool on) SG_NO_THREAD_SAFETY_ANALYSIS {
  SyscallEnter(p);
  SG_OBS_SYSCALL("setcloexec");
  ShaddrBlock* b = FdBlock(p);
  if (b != nullptr) {
    b->LockFileUpdate();
    b->PullFdsIfFlagged(p);
  }
  Status st = Status::Ok();
  if (!p.fds.ValidFd(fd) || !p.fds.Slot(fd).used()) {
    st = Errno::kEBADF;
  } else {
    p.fds.Slot(fd).close_on_exec = on;
    if (b != nullptr) {
      b->PublishFds(p);  // s_pofile mirrors the flag bytes too
    }
  }
  if (b != nullptr) {
    b->UnlockFileUpdate();
  }
  SyscallExit(p);
  return st;
}

Result<bool> Kernel::GetCloexec(Proc& p, int fd) {
  SyscallEnter(p);
  SG_OBS_SYSCALL("getcloexec");
  Result<bool> r = Errno::kEBADF;
  if (p.fds.ValidFd(fd) && p.fds.Slot(fd).used()) {
    r = p.fds.Slot(fd).close_on_exec;
  }
  SyscallExit(p);
  return r;
}

Result<std::pair<int, int>> Kernel::MakePipe(Proc& p) SG_NO_THREAD_SAFETY_ANALYSIS {
  SyscallEnter(p);
  SG_OBS_SYSCALL("makepipe");
  ShaddrBlock* b = FdBlock(p);
  if (b != nullptr) {
    b->LockFileUpdate();
    b->PullFdsIfFlagged(p);
  }
  Result<std::pair<int, int>> result = Errno::kENFILE;
  if (!FdCapAllows(b, 2)) {  // a pipe admits both ends or neither
    result = Errno::kEAGAIN;
  } else {
    auto made = vfs_.MakePipe();
    if (!made.ok()) {
      result = made.error();
    } else {
      auto [rd, wr] = made.value();
      auto rfd = p.fds.AllocSlot(rd);
      auto wfd = rfd.ok() ? p.fds.AllocSlot(wr) : Result<int>(Errno::kEMFILE);
      if (!rfd.ok() || !wfd.ok()) {
        if (rfd.ok()) {
          p.fds.ClearSlot(rfd.value()).value();
        }
        vfs_.files().Release(rd);
        vfs_.files().Release(wr);
        result = Errno::kEMFILE;
      } else {
        result = std::make_pair(rfd.value(), wfd.value());
        if (b != nullptr) {
          b->PublishFds(p);
        }
      }
    }
  }
  if (b != nullptr) {
    b->UnlockFileUpdate();
  }
  SyscallExit(p);
  return result;
}

// ----- I/O -----

Result<u64> Kernel::Read(Proc& p, int fd, vaddr_t ubuf, u64 len) {
  SyscallEnter(p);
  SG_OBS_SYSCALL("read");
  auto fr = p.fds.Get(fd);
  if (!fr.ok()) {
    SyscallExit(p);
    return fr.error();
  }
  OpenFile* f = fr.value();
  std::vector<std::byte> bounce(std::min<u64>(len, u64{64} << 10));
  u64 total = 0;
  Status err = Status::Ok();
  while (total < len) {
    const u64 chunk = std::min<u64>(len - total, bounce.size());
    auto r = vfs_.ReadFile(*f, bounce.data(), chunk);
    if (!r.ok()) {
      err = r.status();
      break;
    }
    if (r.value() == 0) {
      break;  // EOF
    }
    Status cs = CopyOut(p.as, ubuf + total, bounce.data(), r.value());
    if (!cs.ok()) {
      err = cs;
      break;
    }
    total += r.value();
    if (r.value() < chunk || f->inode()->type() == InodeType::kPipe) {
      break;  // short read; pipes return what is available
    }
  }
  SyscallExit(p);
  if (total == 0 && !err.ok()) {
    return err.error();
  }
  return total;
}

Result<u64> Kernel::Write(Proc& p, int fd, vaddr_t ubuf, u64 len) {
  SyscallEnter(p);
  SG_OBS_SYSCALL("write");
  auto fr = p.fds.Get(fd);
  if (!fr.ok()) {
    SyscallExit(p);
    return fr.error();
  }
  OpenFile* f = fr.value();
  std::vector<std::byte> bounce(std::min<u64>(len, u64{64} << 10));
  u64 total = 0;
  Status err = Status::Ok();
  while (total < len) {
    const u64 chunk = std::min<u64>(len - total, bounce.size());
    Status cs = CopyIn(p.as, bounce.data(), ubuf + total, chunk);
    if (!cs.ok()) {
      err = cs;
      break;
    }
    auto w = vfs_.WriteFile(*f, bounce.data(), chunk, p.ulimit);
    if (!w.ok()) {
      err = w.status();
      break;
    }
    total += w.value();
    if (w.value() < chunk) {
      break;
    }
  }
  if (err.error() == Errno::kEPIPE) {
    p.PostSignal(kSigPipe);  // classic: EPIPE comes with SIGPIPE
  }
  SyscallExit(p);
  if (total == 0 && !err.ok()) {
    return err.error();
  }
  return total;
}

Result<u64> Kernel::ReadK(Proc& p, int fd, std::span<std::byte> out) {
  SyscallEnter(p);
  SG_OBS_SYSCALL("readk");
  auto fr = p.fds.Get(fd);
  Result<u64> r = fr.ok() ? vfs_.ReadFile(*fr.value(), out.data(), out.size())
                          : Result<u64>(fr.error());
  SyscallExit(p);
  return r;
}

Result<u64> Kernel::WriteK(Proc& p, int fd, std::span<const std::byte> in) {
  SyscallEnter(p);
  SG_OBS_SYSCALL("writek");
  auto fr = p.fds.Get(fd);
  Result<u64> r = fr.ok() ? vfs_.WriteFile(*fr.value(), in.data(), in.size(), p.ulimit)
                          : Result<u64>(fr.error());
  if (!r.ok() && r.error() == Errno::kEPIPE) {
    p.PostSignal(kSigPipe);
  }
  SyscallExit(p);
  return r;
}

Result<u64> Kernel::Lseek(Proc& p, int fd, i64 off, SeekWhence whence) {
  SyscallEnter(p);
  SG_OBS_SYSCALL("lseek");
  auto fr = p.fds.Get(fd);
  Result<u64> r = fr.ok() ? vfs_.Seek(*fr.value(), off, whence) : Result<u64>(fr.error());
  SyscallExit(p);
  return r;
}

// ----- namespace ops -----

Status Kernel::Mkdir(Proc& p, std::string_view path, mode_t mode) {
  SyscallEnter(p);
  SG_OBS_SYSCALL("mkdir");
  Status st = vfs_.Mkdir(p.cwd, p.rootdir, CredOf(p), path, mode, p.umask);
  SyscallExit(p);
  return st;
}

Status Kernel::Link(Proc& p, std::string_view existing, std::string_view newpath) {
  SyscallEnter(p);
  SG_OBS_SYSCALL("link");
  Status st = vfs_.Link(p.cwd, p.rootdir, CredOf(p), existing, newpath);
  SyscallExit(p);
  return st;
}

Status Kernel::Unlink(Proc& p, std::string_view path) {
  SyscallEnter(p);
  SG_OBS_SYSCALL("unlink");
  Status st = vfs_.Unlink(p.cwd, p.rootdir, CredOf(p), path);
  SyscallExit(p);
  return st;
}

Status Kernel::Rmdir(Proc& p, std::string_view path) {
  SyscallEnter(p);
  SG_OBS_SYSCALL("rmdir");
  Status st = vfs_.Rmdir(p.cwd, p.rootdir, CredOf(p), path);
  SyscallExit(p);
  return st;
}

namespace {

// Resolves `path` to a directory inode with search permission, returning a
// counted ref.
Result<Inode*> ResolveDir(Vfs& vfs, Proc& p, Cred cred, std::string_view path) {
  auto ip = vfs.Namei(p.cwd, p.rootdir, cred, path);
  if (!ip.ok()) {
    return ip.error();
  }
  if (ip.value()->type() != InodeType::kDirectory) {
    vfs.inodes().Iput(ip.value());
    return Errno::kENOTDIR;
  }
  if (!Permits(*ip.value(), cred.uid, cred.gid, Access::kExec)) {
    vfs.inodes().Iput(ip.value());
    return Errno::kEACCES;
  }
  return ip.value();
}

}  // namespace

Status Kernel::Chdir(Proc& p, std::string_view path) {
  SyscallEnter(p);
  SG_OBS_SYSCALL("chdir");
  auto dir = ResolveDir(vfs_, p, CredOf(p), path);
  Status st = Status::Ok();
  if (!dir.ok()) {
    st = dir.status();
  } else if (p.shaddr != nullptr && (p.p_shmask & PR_SDIR) != 0) {
    // "the ability to change the working directory ... of an entire set of
    // processes at once" (§4).
    p.shaddr->UpdateDir(p, dir.value(), nullptr);
  } else {
    vfs_.inodes().Iput(p.cwd);
    p.cwd = dir.value();
  }
  SyscallExit(p);
  return st;
}

Status Kernel::Chroot(Proc& p, std::string_view path) {
  SyscallEnter(p);
  SG_OBS_SYSCALL("chroot");
  Status st = Status::Ok();
  if (p.uid != 0) {
    st = Errno::kEPERM;
  } else {
    auto dir = ResolveDir(vfs_, p, CredOf(p), path);
    if (!dir.ok()) {
      st = dir.status();
    } else if (p.shaddr != nullptr && (p.p_shmask & PR_SDIR) != 0) {
      p.shaddr->UpdateDir(p, nullptr, dir.value());
    } else {
      vfs_.inodes().Iput(p.rootdir);
      p.rootdir = dir.value();
    }
  }
  SyscallExit(p);
  return st;
}

namespace {
StatResult FillStat(InodeTable& inodes, Inode* ip) {
  StatResult s;
  s.ino = ip->ino();
  s.type = ip->type();
  s.mode = ip->mode();
  s.uid = ip->uid();
  s.gid = ip->gid();
  s.size = ip->Size();
  s.nlink = ip->nlink;
  (void)inodes;
  return s;
}
}  // namespace

Result<StatResult> Kernel::Stat(Proc& p, std::string_view path) {
  SyscallEnter(p);
  SG_OBS_SYSCALL("stat");
  auto ip = vfs_.Namei(p.cwd, p.rootdir, CredOf(p), path);
  Result<StatResult> r = Errno::kENOENT;
  if (!ip.ok()) {
    r = ip.error();
  } else {
    r = FillStat(vfs_.inodes(), ip.value());
    vfs_.inodes().Iput(ip.value());
  }
  SyscallExit(p);
  return r;
}

Result<StatResult> Kernel::Fstat(Proc& p, int fd) {
  SyscallEnter(p);
  SG_OBS_SYSCALL("fstat");
  auto fr = p.fds.Get(fd);
  Result<StatResult> r =
      fr.ok() ? Result<StatResult>(FillStat(vfs_.inodes(), fr.value()->inode()))
              : Result<StatResult>(fr.error());
  SyscallExit(p);
  return r;
}

Result<std::string> Kernel::Getcwd(Proc& p) {
  SyscallEnter(p);
  SG_OBS_SYSCALL("getcwd");
  Result<std::string> r = Errno::kENOENT;
  {
    InodeTable& inodes = vfs_.inodes();
    Inode* at = inodes.Iget(p.cwd);
    std::string path;
    bool ok = true;
    while (at != p.rootdir && at->parent != at) {
      Inode* parent = inodes.Iget(at->parent);
      // Find our name in the parent (in-memory fs: a scan is fine).
      std::string name;
      for (const std::string& entry : parent->ListEntries()) {
        auto child = parent->Lookup(entry);
        if (child.ok() && child.value() == at) {
          name = entry;
          break;
        }
      }
      if (name.empty()) {
        ok = false;  // disconnected (cwd was unlinked)
        inodes.Iput(parent);
        break;
      }
      path.insert(0, "/" + name);
      inodes.Iput(at);
      at = parent;
    }
    inodes.Iput(at);
    if (ok) {
      r = path.empty() ? std::string("/") : path;
    }
  }
  SyscallExit(p);
  return r;
}

Result<std::vector<std::string>> Kernel::ListDir(Proc& p, std::string_view path) {
  SyscallEnter(p);
  SG_OBS_SYSCALL("listdir");
  Result<std::vector<std::string>> r = Errno::kENOENT;
  auto ip = vfs_.Namei(p.cwd, p.rootdir, CredOf(p), path);
  if (!ip.ok()) {
    r = ip.error();
  } else {
    if (ip.value()->type() != InodeType::kDirectory) {
      r = Errno::kENOTDIR;
    } else if (!Permits(*ip.value(), p.uid, p.gid, Access::kRead)) {
      r = Errno::kEACCES;
    } else {
      r = ip.value()->ListEntries();  // already sorted (std::map order)
    }
    vfs_.inodes().Iput(ip.value());
  }
  SyscallExit(p);
  return r;
}

Status Kernel::Chmod(Proc& p, std::string_view path, mode_t mode) {
  SyscallEnter(p);
  SG_OBS_SYSCALL("chmod");
  auto ip = vfs_.Namei(p.cwd, p.rootdir, CredOf(p), path);
  Status st = Status::Ok();
  if (!ip.ok()) {
    st = ip.status();
  } else {
    if (p.uid != 0 && p.uid != ip.value()->uid()) {
      st = Errno::kEPERM;
    } else {
      ip.value()->set_mode(mode);
    }
    vfs_.inodes().Iput(ip.value());
  }
  SyscallExit(p);
  return st;
}

}  // namespace sg
