// Kernel lifecycle: boot, process threads, exit/wait/reap, signals.
#include "api/kernel.h"

#include "api/user_env.h"
#include "base/check.h"
#include "base/log.h"
#include "inject/inject.h"
#include "obs/stats.h"
#include "obs/trace.h"
#include "proc/deliver.h"
#include "sync/lockdep.h"
#include "sync/wait.h"
#include "vm/access.h"

namespace sg {

Kernel::Kernel(const BootParams& params)
    : params_(params),
      mem_(params.phys_mem_bytes),
      cpus_(params.ncpus),
      sched_(params.ncpus),
      vfs_(params.max_inodes, params.max_files),
      procs_(mem_, sched_, params.max_procs, params.tlb_entries),
      ipc_(mem_) {
  if (params.swap_pages > 0) {
    swap_ = std::make_unique<SwapSpace>(params.swap_pages);
    mem_.AttachSwap(swap_.get());
  }
  if (params.mount_procfs) {
    procfs_ = std::make_unique<obs::Procfs>(
        vfs_, [this] { return SnapshotProcs(); }, [this] { return SnapshotGroups(); });
    // The lockdep validator's report surface. obs/ sits below sync/ in the
    // dependency order, so the wiring happens here at the top of the stack.
    procfs_->AddRootFile("lockdep", [] { return lockdep::RenderReport(); });
  }
}

std::vector<obs::ProcStatus> Kernel::SnapshotProcs() {
  // Pid -> group id, from the blocks' member chains (blocks_mu_ then each
  // block's list lock, matching the PR_JOINGROUP lock order).
  std::map<pid_t, u64> groups;
  {
    std::lock_guard<std::mutex> l(blocks_mu_);
    for (const auto& [raw, owned] : blocks_) {
      owned->ForEachMember([&](Proc& m) { groups[m.pid] = owned->id(); });
    }
  }
  std::vector<obs::ProcStatus> out;
  procs_.ForEach([&](Proc& q) {
    obs::ProcStatus s;
    s.pid = q.pid;
    s.ppid = q.ppid.load(std::memory_order_relaxed);
    switch (q.state.load(std::memory_order_acquire)) {
      case ProcState::kEmbryo: s.state = 'E'; break;
      case ProcState::kActive: s.state = 'A'; break;
      case ProcState::kZombie: s.state = 'Z'; break;
    }
    s.uid = q.uid;
    s.gid = q.gid;
    s.shmask = q.p_shmask;
    s.pflag = q.p_flag.load(std::memory_order_relaxed);
    auto it = groups.find(q.pid);
    s.group = it == groups.end() ? -1 : static_cast<i64>(it->second);
    s.syscalls = q.syscalls.load(std::memory_order_relaxed);
    out.push_back(s);
  });
  obs::Stats::Global().gauge("procs.live").Set(static_cast<i64>(out.size()));
  return out;
}

std::vector<obs::GroupStatus> Kernel::SnapshotGroups() {
  std::vector<obs::GroupStatus> out;
  {
    std::lock_guard<std::mutex> l(blocks_mu_);
    for (const auto& [raw, owned] : blocks_) {
      obs::GroupStatus g;
      g.id = owned->id();
      g.refcnt = owned->refcnt();
      owned->ForEachMember([&](Proc& m) { g.members.push_back(m.pid); });
      const SharedReadLock& lk = owned->space().lock();
      g.lock_name = lk.name();
      g.lock_reads = lk.reads();
      g.lock_read_slow = lk.read_slow();
      g.lock_updates = lk.updates();
      g.lock_read_waits = lk.read_waits();
      g.lock_update_waits = lk.update_waits();
      g.lock_update_wait_count = lk.update_wait_histo().count();
      g.lock_update_wait_sum_ns = lk.update_wait_histo().sum_ns();
      g.ofiles = owned->OfileCount();
      rm::GroupNode* node = owned->rm_node();
      g.rm_shares = node->shares();
      g.rm_usage_ns = static_cast<u64>(node->DecayedUsage());
      constexpr rm::Resource kRes[3] = {rm::Resource::kMembers, rm::Resource::kFiles,
                                        rm::Resource::kPages};
      for (int i = 0; i < 3; ++i) {
        g.rm_cap[i] = node->cap(kRes[i]);
        g.rm_used[i] = node->used(kRes[i]);
      }
      out.push_back(std::move(g));
    }
  }
  obs::Stats::Global().gauge("blocks.live").Set(static_cast<i64>(out.size()));
  return out;
}

Kernel::~Kernel() { WaitAll(); }

void Kernel::SyscallEnter(Proc& p) {
  p.syscalls.fetch_add(1, std::memory_order_relaxed);
  SG_OBS_INC("sys.entries");
  // §6.3: one AND of the p_flag sync bits; the slow path runs only when
  // another member changed a shared resource since our last entry.
  if (p.shaddr != nullptr) {
    p.shaddr->SyncOnKernelEntry(p);
  }
  // §8 PR_BLOCKGROUP: a suspended member parks here until resumed (or a
  // signal arrives — it is delivered right below, like for any entry).
  if (p.suspended.load(std::memory_order_acquire)) {
    bool slept = false;
    {
      std::unique_lock<std::mutex> l(p.wait_mu);
      Status st = BlockOn(p.wait_cv, l, SleepMode::kInterruptible, &slept,
                          [&] { return !p.suspended.load(std::memory_order_acquire); });
      (void)st;
    }
    FinishSleep(slept);
  }
  DeliverPendingSignals(p);
}

void Kernel::SyscallExit(Proc& p) { DeliverPendingSignals(p); }

// ----- process threads -----

void Kernel::StartProcThread(Proc* c, UserFn fn, long arg) {
  c->entry = [this, c, fn = std::move(fn), arg] {
    Env env(*this, *c);
    fn(env, arg);
  };
  c->thread = std::thread([this, c] { ProcMain(c); });
}

void Kernel::ProcMain(Proc* p) {
  SetCurrentExecutionContext(p);
  obs::CurrentTraceContext().pid = p->pid;
  p->AcquireCpuInitial();
  p->state.store(ProcState::kActive, std::memory_order_release);
  int status = 0;
  int signal = 0;
  try {
    p->entry();  // returning normally is exit(0)
  } catch (const ProcTerminated& t) {
    status = t.status;
    signal = t.signal;
  }
  TerminateProcess(*p, status, signal);
  SetCurrentExecutionContext(nullptr);
  obs::CurrentTraceContext().pid = 0;
}

void Kernel::TerminateProcess(Proc& p, int status, int signal) {
  p.exit_status = status;
  p.term_signal = signal;
  obs::Trace(obs::TraceKind::kProcExit, static_cast<u64>(status), static_cast<u64>(signal));

  // Release the u-area's counted resources. Only this process's own
  // references go away; a share group's master copies (which hold their own
  // bumped counts, §6.3) are untouched until the block itself dies.
  for (int fd = 0; fd < FdTable::kMaxFds; ++fd) {
    auto f = p.fds.ClearSlot(fd);
    if (f.ok()) {
      vfs_.files().Release(f.value());
    }
  }
  if (p.cwd != nullptr) {
    vfs_.inodes().Iput(p.cwd);
    p.cwd = nullptr;
  }
  if (p.rootdir != nullptr) {
    vfs_.inodes().Iput(p.rootdir);
    p.rootdir = nullptr;
  }

  // Leave the share group; the last member tears the block down.
  if (p.shaddr != nullptr) {
    ShaddrBlock* b = p.shaddr;
    SG_INJECT_POINT("kernel.exit.pre_detach");
    if (b->RemoveMember(p)) {
      std::lock_guard<std::mutex> l(blocks_mu_);
      blocks_.erase(b);
    }
    SG_INJECT_POINT("kernel.exit.post_detach");
  }
  p.as.DetachAllPrivate();

  // Tree surgery under the reap lock (lock order: reap_mu_ -> table). The
  // invariant this buys: while any terminating child holds reap_mu_ and
  // sees a nonzero ppid, that parent has not finished ITS terminate (which
  // reparents under the same lock), so the parent cannot have been reaped
  // and freed — the SIGCHLD kick below cannot dangle.
  {
    std::lock_guard<std::mutex> l(reap_mu_);
    procs_.ForEach([&](Proc& q) {
      if (&q != &p && q.ppid.load(std::memory_order_relaxed) == p.pid) {
        q.ppid.store(0, std::memory_order_relaxed);  // orphans go to the kernel
      }
    });
    p.state.store(ProcState::kZombie, std::memory_order_release);
    const pid_t ppid = p.ppid.load(std::memory_order_relaxed);
    if (ppid != 0) {
      procs_.WithProc(ppid,
                      [this](Proc& parent) { parent.PostSignal(kSigChld, &reap_mu_); });
    }
  }
  reap_cv_.notify_all();
  p.ReleaseCpuFinal();
}

WaitResult Kernel::Reap(Proc* z) {
  SG_CHECK(z->state.load(std::memory_order_acquire) == ProcState::kZombie);
  if (z->thread.joinable()) {
    z->thread.join();
  }
  WaitResult r{z->pid, z->exit_status, z->term_signal};
  procs_.Free(z);
  return r;
}

Result<pid_t> Kernel::Launch(UserFn main, long arg) {
  auto alloc = procs_.Alloc();
  if (!alloc.ok()) {
    return alloc.error();
  }
  Proc* p = alloc.value();
  p->ppid.store(0, std::memory_order_relaxed);
  p->cwd = vfs_.inodes().Iget(vfs_.root());
  p->rootdir = vfs_.inodes().Iget(vfs_.root());
  Image img;
  img.main = nullptr;  // entry supplied separately below
  Status st = BuildImage(*p, img);
  if (!st.ok()) {
    procs_.Free(p);
    return st.error();
  }
  StartProcThread(p, std::move(main), arg);
  return p->pid;
}

void Kernel::WaitAll() {
  std::unique_lock<std::mutex> l(reap_mu_);
  for (;;) {
    std::vector<Proc*> zombies;
    bool any_left = false;
    procs_.ForEach([&](Proc& q) {
      any_left = true;
      if (q.ppid.load(std::memory_order_relaxed) == 0 &&
          q.state.load(std::memory_order_acquire) == ProcState::kZombie) {
        zombies.push_back(&q);
      }
    });
    if (!zombies.empty()) {
      l.unlock();
      for (Proc* z : zombies) {
        Reap(z);
      }
      l.lock();
      continue;
    }
    if (!any_left) {
      return;
    }
    reap_cv_.wait(l);
  }
}

u64 Kernel::LiveBlocks() const {
  std::lock_guard<std::mutex> l(blocks_mu_);
  return blocks_.size();
}

// ----- wait(2) / exit(2) / signals -----

void Kernel::Exit(Proc& p, int status) {
  (void)p;
  throw ProcTerminated{status, 0};
}

Result<WaitResult> Kernel::Wait(Proc& p) {
  SyscallEnter(p);
  SG_OBS_SYSCALL("wait");
  Proc* zombie = nullptr;
  bool have_children = false;
  // The scan runs while holding reap_mu_ (the BlockOn mutex); ForEach adds
  // the table lock inside it, so scanned procs cannot be freed mid-scan.
  auto scan = [&] {
    zombie = nullptr;
    have_children = false;
    procs_.ForEach([&](Proc& q) {
      if (q.ppid.load(std::memory_order_relaxed) == p.pid) {
        have_children = true;
        if (zombie == nullptr &&
            q.state.load(std::memory_order_acquire) == ProcState::kZombie) {
          zombie = &q;
        }
      }
    });
    return zombie != nullptr || !have_children;
  };
  bool slept = false;
  Status st = Status::Ok();
  {
    std::unique_lock<std::mutex> l(reap_mu_);
    st = BlockOn(reap_cv_, l, SleepMode::kInterruptible, &slept, scan);
  }
  FinishSleep(slept);
  if (!st.ok()) {
    SyscallExit(p);  // typically delivers the interrupting signal
    return st.error();
  }
  if (zombie == nullptr) {
    SyscallExit(p);
    return Errno::kECHILD;
  }
  WaitResult r = Reap(zombie);
  SyscallExit(p);
  return r;
}

Status Kernel::Kill(Proc& p, pid_t target, int sig) {
  SyscallEnter(p);
  SG_OBS_SYSCALL("kill");
  if (!ValidSignal(sig)) {
    SyscallExit(p);
    return Errno::kEINVAL;
  }
  Status st = Errno::kESRCH;
  {
    // reap_mu_ first (lock order reap_mu_ -> table): the target may be
    // sleeping in wait(2) with reap_mu_ registered as its wakeup mutex.
    std::lock_guard<std::mutex> rl(reap_mu_);
    procs_.WithProc(target, [&](Proc& t) {
      // t.uid is owner-written (under the share block's update lock when
      // shared); this cross-thread read can at worst observe a just-changed
      // identity — the same TOCTOU window a real kernel's kill(2) has.
      if (p.uid != 0 && p.uid != t.uid) {
        st = Errno::kEPERM;
        return;
      }
      t.PostSignal(sig, &reap_mu_);
      st = Status::Ok();
    });
  }
  SyscallExit(p);
  return st;
}

Status Kernel::Sigaction(Proc& p, int sig, SigDisp disp, std::function<void(int)> handler) {
  SyscallEnter(p);
  SG_OBS_SYSCALL("sigaction");
  Status st = Status::Ok();
  if (!ValidSignal(sig) || sig == kSigKill) {
    st = Errno::kEINVAL;  // SIGKILL cannot be caught or ignored
  } else {
    MutexGuard l(p.sig_mu);
    p.sig_actions[static_cast<u32>(sig)] = SigAction{disp, std::move(handler)};
  }
  SyscallExit(p);
  return st;
}

Result<u32> Kernel::Sigsetmask(Proc& p, u32 mask) {
  SyscallEnter(p);
  SG_OBS_SYSCALL("sigsetmask");
  const u32 old = p.sig_blocked.exchange(mask & ~SigBit(kSigKill), std::memory_order_acq_rel);
  SyscallExit(p);
  return old;
}

Status Kernel::Pause(Proc& p) {
  SyscallEnter(p);
  SG_OBS_SYSCALL("pause");
  bool slept = false;
  {
    std::unique_lock<std::mutex> l(p.wait_mu);
    // Sleeps until a signal makes BlockOn return kEINTR.
    Status st = BlockOn(p.wait_cv, l, SleepMode::kInterruptible, &slept, [] { return false; });
    (void)st;
  }
  FinishSleep(slept);
  SyscallExit(p);  // deliver what woke us
  return Errno::kEINTR;
}

Status Kernel::Sigpause(Proc& p) {
  const u64 before = p.sig_delivered.load(std::memory_order_acquire);
  SyscallEnter(p);  // delivers anything already pending
  if (p.sig_delivered.load(std::memory_order_acquire) != before) {
    SyscallExit(p);
    return Errno::kEINTR;  // the signal beat us to the sleep: no race
  }
  bool slept = false;
  {
    std::unique_lock<std::mutex> l(p.wait_mu);
    Status st = BlockOn(p.wait_cv, l, SleepMode::kInterruptible, &slept, [] { return false; });
    (void)st;
  }
  FinishSleep(slept);
  SyscallExit(p);
  return Errno::kEINTR;
}

void Kernel::Yield(Proc& p) {
  SyscallEnter(p);
  SG_OBS_SYSCALL("yield");
  p.YieldCpu();
  SyscallExit(p);
}

}  // namespace sg
