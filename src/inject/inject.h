// Deterministic schedule-perturbation and fault-injection layer.
//
// The §6 lifecycle protocol (member list under s_listlock, s_refcnt
// teardown, s_fupdsema-serialized fd updates, detach-on-exec) is guarded
// by locks whose *windows* are a handful of instructions wide; plain
// stress tests cross them only by luck. This layer plants named points
// inside those windows. When a plan is installed, each point consults a
// decision stream derived purely from (plan seed, simulated pid,
// per-thread hit index) and either passes through, yields the host
// thread, spins a short delay, or — at SG_INJECT_FAULT points — reports
// an injected resource failure (ENOMEM/ENFILE-class errors the caller
// must unwind from).
//
// Determinism contract (stated precisely, because true cross-thread
// interleaving replay is impossible with host threads): the decision at
// the i-th point hit by simulated process P under seed S is a pure
// function of (S, P, i, point name). A process whose own syscall sequence
// is fixed therefore sees the identical perturbation sequence on every
// run with the same seed — re-running a failing seed re-applies the same
// per-process schedule pressure, which is what makes storm failures
// reproducible in practice. The order-insensitive digest() (XOR over all
// decisions) is bit-equal across runs whenever every process hits the
// same points, and is used by the storm harness to verify the decision
// streams themselves never drift.
//
// Cost when no plan is installed: one relaxed load per point (the macros
// short-circuit on Enabled()). Compile the points out entirely with
// -DSG_INJECT=OFF (the benches insist on it; see bench/run_benches.sh).
//
// Layering: depends only on base/ and obs/ so every layer from sync/ up
// (spinlock, semaphore, shared read lock, shaddr, the kernel) may plant
// points.
#ifndef SRC_INJECT_INJECT_H_
#define SRC_INJECT_INJECT_H_

#include <atomic>

#include "base/types.h"
#include "obs/stats.h"

namespace sg {
namespace inject {

// Perturbation mix, in parts-per-million of point hits. The default plan
// does nothing; storms typically run with a few hundred thousand ppm of
// yields so every lock-order window gets crossed both ways.
struct PlanConfig {
  u32 yield_ppm = 0;        // give up the host thread's timeslice
  u32 delay_ppm = 0;        // spin 0..max_delay_spins compiler barriers
  u32 fault_ppm = 0;        // SG_INJECT_FAULT points report failure
  u32 max_delay_spins = 256;
};

class InjectionPlan {
 public:
  InjectionPlan(u64 seed, const PlanConfig& cfg);
  InjectionPlan(const InjectionPlan&) = delete;
  InjectionPlan& operator=(const InjectionPlan&) = delete;

  u64 seed() const { return seed_; }
  const PlanConfig& config() const { return cfg_; }

  // Order-insensitive XOR fold of every decision drawn, and the total
  // draw count. Equal digests across two runs of the same scenario mean
  // the decision streams were identical (see the header comment).
  u64 digest() const { return digest_.load(std::memory_order_relaxed); }
  u64 decisions() const { return decisions_.load(std::memory_order_relaxed); }

  // Called by the macros through PointHit/FaultHit.
  void Perturb(const char* point);
  bool ShouldFail(const char* point);

 private:
  // One decision draw: deterministic in (seed_, pid, per-thread index,
  // point); folds into the digest.
  u64 Draw(const char* point);

  const u64 seed_;
  const u64 epoch_;  // distinguishes this plan's thread-local streams
  const PlanConfig cfg_;
  std::atomic<u64> digest_{0};
  std::atomic<u64> decisions_{0};
};

namespace internal {
// The single active plan. Installed/removed by ScopedInjection; points do
// one relaxed load when no plan is active.
extern std::atomic<InjectionPlan*> g_active;
}  // namespace internal

inline bool Enabled() {
  return internal::g_active.load(std::memory_order_relaxed) != nullptr;
}
inline InjectionPlan* ActivePlan() {
  return internal::g_active.load(std::memory_order_acquire);
}

// Installs `plan` as the process-wide active plan for the scope. At most
// one plan may be active; nesting is a programming error (checked).
// The destructor must run only after every thread that might hit a point
// has quiesced (the storm harness calls Kernel::WaitAll first) — points
// hold no reference of their own.
class ScopedInjection {
 public:
  explicit ScopedInjection(InjectionPlan& plan);
  ~ScopedInjection();
  ScopedInjection(const ScopedInjection&) = delete;
  ScopedInjection& operator=(const ScopedInjection&) = delete;

 private:
  InjectionPlan* plan_;
};

// Out-of-line bodies of the macros (active-plan indirection).
void PointHit(const char* point);
bool FaultHit(const char* point);

}  // namespace inject
}  // namespace sg

// SG_INJECT_POINT(name): a schedule-perturbation point. `name` must be a
// string literal ("shaddr.detach.pre_refcnt"). Counts hits in the obs
// registry as inject.point.<name> (rendered by /proc/stat) and lets the
// active plan yield or delay here. Statement form.
//
// SG_INJECT_FAULT(name): a fault point. Expression of type bool — true
// means "fail now"; the caller returns its natural resource error
// (ENOMEM, ENFILE, ...). Counts hits as inject.fault.<name>.
#if defined(SG_INJECT_ENABLED)
#define SG_INJECT_POINT(name)               \
  do {                                      \
    if (::sg::inject::Enabled()) {          \
      SG_OBS_INC("inject.point." name);     \
      ::sg::inject::PointHit(name);         \
    }                                       \
  } while (0)
#define SG_INJECT_FAULT(name)               \
  (::sg::inject::Enabled() && [] {          \
    SG_OBS_INC("inject.fault." name);       \
    return ::sg::inject::FaultHit(name);    \
  }())
#else
#define SG_INJECT_POINT(name) \
  do {                        \
  } while (0)
#define SG_INJECT_FAULT(name) false
#endif

#endif  // SRC_INJECT_INJECT_H_
