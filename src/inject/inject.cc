#include "inject/inject.h"

#include <thread>

#include "base/check.h"
#include "obs/trace.h"

namespace sg {
namespace inject {

namespace internal {
std::atomic<InjectionPlan*> g_active{nullptr};
}  // namespace internal

namespace {

// splitmix64 finalizer: full-avalanche mix so consecutive hit indices and
// near-identical seeds produce unrelated decisions.
u64 Mix(u64 x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// FNV-1a over the point name: the decision depends on WHERE it is drawn,
// so moving a point or adding one upstream changes only that stream.
u64 HashName(const char* s) {
  u64 h = 0xcbf29ce484222325ull;
  for (; *s != '\0'; ++s) {
    h = (h ^ static_cast<u64>(static_cast<unsigned char>(*s))) * 0x100000001b3ull;
  }
  return h;
}

// Each plan gets a fresh epoch so the per-thread hit counters restart at
// zero for every plan — run N of a seed draws the same stream as run 1.
std::atomic<u64> g_epoch{0};

struct ThreadStream {
  u64 epoch = 0;
  u64 hits = 0;
};
thread_local ThreadStream tl_stream;

}  // namespace

InjectionPlan::InjectionPlan(u64 seed, const PlanConfig& cfg)
    : seed_(seed),
      epoch_(g_epoch.fetch_add(1, std::memory_order_relaxed) + 1),
      cfg_(cfg) {}

u64 InjectionPlan::Draw(const char* point) {
  if (tl_stream.epoch != epoch_) {
    tl_stream.epoch = epoch_;
    tl_stream.hits = 0;
  }
  const u64 hit = tl_stream.hits++;
  // A simulated process is pinned to one host thread, so the thread-local
  // hit index IS the per-process hit index; pid 0 covers bare test threads.
  const u64 pid = static_cast<u64>(static_cast<u32>(obs::CurrentTraceContext().pid));
  const u64 h = Mix(seed_ ^ Mix(pid) ^ Mix(hit) ^ HashName(point));
  digest_.fetch_xor(Mix(h), std::memory_order_relaxed);
  decisions_.fetch_add(1, std::memory_order_relaxed);
  return h;
}

void InjectionPlan::Perturb(const char* point) {
  const u64 h = Draw(point);
  const u32 u = static_cast<u32>(h % 1000000);
  if (u < cfg_.yield_ppm) {
    SG_OBS_INC("inject.yields");
    std::this_thread::yield();
  } else if (u < cfg_.yield_ppm + cfg_.delay_ppm) {
    SG_OBS_INC("inject.delays");
    const u32 spins = static_cast<u32>((h >> 32) % (cfg_.max_delay_spins + 1));
    for (u32 i = 0; i < spins; ++i) {
      // Compiler barrier only: stretches the window without a syscall.
      std::atomic_signal_fence(std::memory_order_seq_cst);
    }
  }
}

bool InjectionPlan::ShouldFail(const char* point) {
  const u64 h = Draw(point);
  if (static_cast<u32>(h % 1000000) < cfg_.fault_ppm) {
    SG_OBS_INC("inject.faults_fired");
    return true;
  }
  return false;
}

ScopedInjection::ScopedInjection(InjectionPlan& plan) : plan_(&plan) {
  InjectionPlan* expected = nullptr;
  SG_CHECK(internal::g_active.compare_exchange_strong(expected, plan_,
                                                      std::memory_order_acq_rel));
}

ScopedInjection::~ScopedInjection() {
  InjectionPlan* expected = plan_;
  SG_CHECK(internal::g_active.compare_exchange_strong(expected, nullptr,
                                                      std::memory_order_acq_rel));
}

void PointHit(const char* point) {
  InjectionPlan* p = ActivePlan();
  if (p != nullptr) {
    p->Perturb(point);
  }
}

bool FaultHit(const char* point) {
  InjectionPlan* p = ActivePlan();
  return p != nullptr && p->ShouldFail(point);
}

}  // namespace inject
}  // namespace sg
