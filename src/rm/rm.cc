#include "rm/rm.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <string>

#include "base/check.h"
#include "obs/stats.h"

namespace sg {
namespace rm {

namespace {

u64 NowNs() {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now().time_since_epoch())
                              .count());
}

// The per-level adjustment can pile up in a deep tree; clamp the total so
// fair-share can reorder tenants but never swamp an explicit PR_SETGROUPPRI
// gulf of hundreds of points.
constexpr int kMaxAdjust = 4 * kPriorityGain;

}  // namespace

const char* ResourceName(Resource r) {
  switch (r) {
    case Resource::kMembers: return "members";
    case Resource::kFiles: return "files";
    case Resource::kPages: return "pages";
  }
  return "?";
}

// ----- GroupNode: caps -----

bool GroupNode::TryCharge(Resource r, u64 n) {
  const u32 i = Idx(r);
  u64 cur = used_[i].load(std::memory_order_relaxed);
  for (;;) {
    const u64 cap = cap_[i].load(std::memory_order_relaxed);
    if (cap != 0 && cur + n > cap) {
      // Denials are the interesting (rare) path; name lookup here is fine.
      obs::Stats::Global()
          .counter(std::string("rm.cap.denied.") + ResourceName(r))
          .Inc();
      return false;
    }
    if (used_[i].compare_exchange_weak(cur, cur + n, std::memory_order_relaxed)) {
      return true;
    }
  }
}

void GroupNode::Uncharge(Resource r, u64 n) {
  const u64 old = used_[Idx(r)].fetch_sub(n, std::memory_order_relaxed);
  // "usage never negative": an underflow means a charge/uncharge pair went
  // missing somewhere — fail loudly instead of poisoning the account.
  SG_CHECK(old >= n);
}

// ----- GroupNode: decayed CPU usage -----

void GroupNode::DecayLocked(u64 now_ns) const {
  if (now_ns <= last_decay_ns_) {
    return;
  }
  const double halflives =
      static_cast<double>(now_ns - last_decay_ns_) / static_cast<double>(kDecayHalfLifeNs);
  usage_ns_ *= std::exp2(-halflives);
  last_decay_ns_ = now_ns;
}

void GroupNode::ChargeCpu(u64 ns) { ChargeCpuAt(ns, NowNs()); }

void GroupNode::ChargeCpuAt(u64 ns, u64 now_ns) {
  SG_OBS_ADD("rm.cpu.charged_ns", ns);
  charged_total_ns_.fetch_add(ns, std::memory_order_relaxed);
  for (GroupNode* n = this; n != nullptr; n = n->parent_) {
    SpinGuard g(n->lock_);
    n->DecayLocked(now_ns);
    n->usage_ns_ += static_cast<double>(ns);
  }
}

double GroupNode::DecayedUsage() const { return DecayedUsageAt(NowNs()); }

double GroupNode::DecayedUsageAt(u64 now_ns) const {
  SpinGuard g(lock_);
  DecayLocked(now_ns);
  return usage_ns_;
}

int GroupNode::EffectivePriority(int base) const { return EffectivePriorityAt(base, NowNs()); }

int GroupNode::EffectivePriorityAt(int base, u64 now_ns) const {
  double adj = 0.0;
  for (const GroupNode* n = this; n->parent_ != nullptr; n = n->parent_) {
    const GroupNode* p = n->parent_;
    const double denom =
        static_cast<double>(std::max<i64>(1, p->child_shares_.load(std::memory_order_relaxed)));
    const double entitled = static_cast<double>(n->shares()) / denom;
    const double total = p->DecayedUsageAt(now_ns);
    // With (almost) nothing consumed at this level there is nothing to
    // arbitrate: treat consumption as exactly the entitlement (zero term).
    // This also keeps a lone tenant's priority identical to the ungrouped
    // case, whatever its shares.
    const double consumed = total >= 1.0 ? n->DecayedUsageAt(now_ns) / total : entitled;
    adj += static_cast<double>(kPriorityGain) * (entitled - consumed);
  }
  const int bounded = static_cast<int>(std::max(-static_cast<double>(kMaxAdjust),
                                                std::min(static_cast<double>(kMaxAdjust), adj)));
  return base + bounded;
}

// ----- ResourceManager -----

ResourceManager::ResourceManager() : root_(new GroupNode(nullptr)) {}

ResourceManager::~ResourceManager() = default;

GroupNode* ResourceManager::CreateNode(GroupNode* parent, u32 shares) {
  if (parent == nullptr) {
    parent = root_.get();
  }
  if (shares == 0) {
    shares = 1;
  }
  auto node = std::unique_ptr<GroupNode>(new GroupNode(parent));
  node->shares_.store(shares, std::memory_order_relaxed);
  parent->child_shares_.fetch_add(shares, std::memory_order_relaxed);
  GroupNode* raw = node.get();
  {
    MutexGuard g(mu_);
    nodes_.emplace(raw, std::move(node));
  }
  SG_OBS_INC("rm.nodes.created");
  static obs::Gauge& live = obs::Stats::Global().gauge("rm.groups.live");
  live.Add(1);
  return raw;
}

void ResourceManager::ReleaseNode(GroupNode* node) {
  SG_CHECK(node != nullptr && node != root_.get());
  node->parent_->child_shares_.fetch_sub(node->shares(), std::memory_order_relaxed);
  {
    MutexGuard g(mu_);
    const auto erased = nodes_.erase(node);
    SG_CHECK(erased == 1);
  }
  SG_OBS_INC("rm.nodes.released");
  static obs::Gauge& live = obs::Stats::Global().gauge("rm.groups.live");
  live.Add(-1);
}

u32 ResourceManager::SetShares(GroupNode* node, u32 shares) {
  SG_CHECK(node != nullptr && node != root_.get());
  if (shares == 0) {
    shares = 1;
  }
  const u32 old = node->shares_.exchange(shares, std::memory_order_relaxed);
  node->parent_->child_shares_.fetch_add(static_cast<i64>(shares) - static_cast<i64>(old),
                                         std::memory_order_relaxed);
  return shares;
}

}  // namespace rm
}  // namespace sg
