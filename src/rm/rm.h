// rm — hierarchical fair-share resource manager over share groups.
//
// The paper's share groups (§4–§6) supply the sharing primitive but nothing
// arbitrates *between* groups: every member competes in one flat scheduler
// queue and PR_SETGROUPPRI is just a gang-wide nice value. This layer adds
// the arbitration in the style of Gunther's UNIX resource managers and the
// Solaris SRM `lnode` tree:
//
//   * Every share group owns a GroupNode in a tree rooted at the manager's
//     root node. A node carries a CPU `shares` weight and an exponentially
//     decayed CPU-usage account (half-life kDecayHalfLifeNs). The scheduler
//     charges consumed CPU time to the running process's node (which
//     propagates up the ancestry) and asks the node for an *effective*
//     priority: base priority plus, per tree level, a term proportional to
//     (entitled fraction − consumed fraction). A group burning more than
//     its shares entitle it decays toward lower priority and self-throttles;
//     an idle group's usage decays away and its priority recovers. The walk
//     is O(depth), independent of the number of sibling groups.
//
//   * A node also carries hard capacity caps — member count, open files in
//     the shared fd table, resident pages of the shared VM image — enforced
//     by TryCharge/Uncharge pairs at the existing admission chokepoints
//     (sproc/attach, fd publish, page-fault frame allocation). A cap of 0
//     means unlimited. Charging is lock-free (CAS); only the decayed-usage
//     account takes the node's spinlock.
//
// A process outside any share group passes a null node everywhere and is
// scheduled exactly as before; a lone group at default shares gets a zero
// adjustment (entitlement 1, consumption 1), so single-tenant workloads are
// unaffected by the manager's existence.
#ifndef SRC_RM_RM_H_
#define SRC_RM_RM_H_

#include <atomic>
#include <map>
#include <memory>

#include "base/mutex.h"
#include "base/thread_annotations.h"
#include "base/types.h"
#include "sync/spinlock.h"
#include "vm/page_charge.h"

namespace sg {
namespace rm {

// Capped resources. kMembers/kFiles breaches surface as EAGAIN at the
// admission syscall; kPages breaches surface as ENOMEM on the fault path
// (where the pager may steal from the same image to make headroom).
enum class Resource : u32 {
  kMembers = 0,  // processes attached to the share group
  kFiles = 1,    // open slots in the group's shared fd table
  kPages = 2,    // resident pages of the group's shared VM image
};
inline constexpr u32 kNumResources = 3;

const char* ResourceName(Resource r);

inline constexpr u32 kDefaultShares = 100;

// Decay half-life of the CPU-usage account: usage halves every 50
// simulated-CPU milliseconds it is left alone.
inline constexpr u64 kDecayHalfLifeNs = 50'000'000;

// Priority points awarded per tree level per unit of (entitled − consumed)
// fraction. With the scheduler's strict priority queue, ±kPriorityGain/4 is
// already enough to reorder a saturated tenant behind a starved one.
inline constexpr int kPriorityGain = 64;

class ResourceManager;

// One node of the share tree. Created/destroyed only through the
// ResourceManager; all other operations are safe from any thread.
class GroupNode final : public PageCharge {
 public:
  GroupNode* parent() const { return parent_; }
  u32 shares() const { return shares_.load(std::memory_order_relaxed); }

  // ----- capacity caps -----

  // Sets the cap for `r` (0 = unlimited). Takes effect for future charges
  // only; existing usage above a newly lowered cap is not evicted.
  void SetCap(Resource r, u64 cap) {
    cap_[Idx(r)].store(cap, std::memory_order_relaxed);
  }
  u64 cap(Resource r) const { return cap_[Idx(r)].load(std::memory_order_relaxed); }
  u64 used(Resource r) const { return used_[Idx(r)].load(std::memory_order_relaxed); }

  // Charges `n` units of `r` if the cap allows it; false on breach.
  bool TryCharge(Resource r, u64 n);
  // Charges unconditionally (adopting pre-existing usage, e.g. the fds a
  // process already holds when it founds a group).
  void ChargeForced(Resource r, u64 n) {
    used_[Idx(r)].fetch_add(n, std::memory_order_relaxed);
  }
  // Returns `n` units. Underflow is an accounting bug: it panics rather
  // than leaving a poisoned (giant) usage figure behind.
  void Uncharge(Resource r, u64 n);

  // PageCharge — the vm layer's hooks map straight onto kPages.
  bool TryChargePages(u64 n) override { return TryCharge(Resource::kPages, n); }
  void ChargePagesForced(u64 n) override { ChargeForced(Resource::kPages, n); }
  void UnchargePages(u64 n) override { Uncharge(Resource::kPages, n); }

  // ----- decayed CPU usage / effective priority -----

  // Charges `ns` of consumed CPU to this node and every ancestor.
  void ChargeCpu(u64 ns);
  void ChargeCpuAt(u64 ns, u64 now_ns);  // test/bench hook: injected clock

  // Lifetime total charged to THIS node (no decay, no ancestor rollup):
  // the delivered-CPU measure the fairness experiments score against.
  u64 charged_total_ns() const {
    return charged_total_ns_.load(std::memory_order_relaxed);
  }

  // This node's decayed usage account, in ns.
  double DecayedUsage() const;
  double DecayedUsageAt(u64 now_ns) const;

  // Base priority adjusted by the fair-share terms of every tree level.
  int EffectivePriority(int base) const;
  int EffectivePriorityAt(int base, u64 now_ns) const;

 private:
  friend class ResourceManager;
  explicit GroupNode(GroupNode* parent) : parent_(parent) {}

  static constexpr u32 Idx(Resource r) { return static_cast<u32>(r); }

  // Decays usage_ns_ to `now_ns` (caller holds lock_; only the mutable
  // account moves, so callable from the const readers).
  void DecayLocked(u64 now_ns) const SG_REQUIRES(lock_);

  GroupNode* const parent_;
  std::atomic<u32> shares_{kDefaultShares};
  // Sum of the *children's* shares — the denominator of each child's
  // entitled fraction. Signed so a racing set-shares never wraps.
  std::atomic<i64> child_shares_{0};

  std::atomic<u64> cap_[kNumResources] = {};   // 0 = unlimited
  std::atomic<u64> used_[kNumResources] = {};
  std::atomic<u64> charged_total_ns_{0};

  // The decayed-usage account. Charged on every CPU release, read on every
  // acquire — a spinlock-guarded pair keeps decay-then-add atomic.
  mutable Spinlock lock_{"rm.node"};
  mutable double usage_ns_ SG_GUARDED_BY(lock_) = 0.0;
  mutable u64 last_decay_ns_ SG_GUARDED_BY(lock_) = 0;
};

// Owns the node tree. One instance per Kernel; share-group creation and
// teardown call CreateNode/ReleaseNode, everything else talks to the nodes
// directly.
class ResourceManager {
 public:
  ResourceManager();
  ~ResourceManager();
  ResourceManager(const ResourceManager&) = delete;
  ResourceManager& operator=(const ResourceManager&) = delete;

  GroupNode& root() { return *root_; }

  // Creates a node under `parent` (the root when null) with `shares`.
  GroupNode* CreateNode(GroupNode* parent = nullptr, u32 shares = kDefaultShares);

  // Destroys `node`, returning its shares to the parent's denominator. The
  // caller guarantees nothing references the node anymore (the scheduler
  // never stores node pointers, so clearing the owning Proc/ShaddrBlock
  // reference first is sufficient).
  void ReleaseNode(GroupNode* node);

  // Re-weights `node` and fixes up the parent's denominator. Returns the
  // shares now in effect (shares of 0 are clamped to 1: a zero denominator
  // would make every sibling's entitlement undefined).
  u32 SetShares(GroupNode* node, u32 shares);

 private:
  // sgcheck:allow(guarded-fields): allocated in the constructor and never
  // reseated; the nodes it reaches synchronize themselves (per-node lock_)
  std::unique_ptr<GroupNode> root_;
  Mutex mu_;
  std::map<GroupNode*, std::unique_ptr<GroupNode>> nodes_ SG_GUARDED_BY(mu_);
};

}  // namespace rm
}  // namespace sg

#endif  // SRC_RM_RM_H_
