#include "obs/trace.h"

#include <algorithm>

#include "base/check.h"

namespace sg {
namespace obs {

TraceContext& CurrentTraceContext() {
  thread_local TraceContext ctx;
  return ctx;
}

TraceRing::TraceRing(u32 capacity) : cap_(capacity), slots_(new Slot[capacity]) {
  SG_CHECK(capacity > 0);
}

void TraceRing::Emit(const TraceEvent& e) {
  const u64 i = head_.fetch_add(1, std::memory_order_relaxed) % cap_;
  Slot& s = slots_[i];
  s.tick.store(e.tick, std::memory_order_relaxed);
  s.arg0.store(e.arg0, std::memory_order_relaxed);
  s.arg1.store(e.arg1, std::memory_order_relaxed);
  s.pid.store(e.pid, std::memory_order_relaxed);
  s.cpu.store(e.cpu, std::memory_order_relaxed);
  s.kind.store(e.kind, std::memory_order_release);  // kind last: publishes the slot
}

std::vector<TraceEvent> TraceRing::Snapshot() const {
  const u64 w = written();
  const u64 n = std::min<u64>(w, cap_);
  std::vector<TraceEvent> out;
  out.reserve(n);
  // Oldest live event sits at w % cap_ once wrapped, else at 0.
  const u64 start = w > cap_ ? w % cap_ : 0;
  for (u64 k = 0; k < n; ++k) {
    const Slot& s = slots_[(start + k) % cap_];
    TraceEvent e;
    e.kind = s.kind.load(std::memory_order_acquire);
    if (e.kind == static_cast<u16>(TraceKind::kNone)) {
      continue;  // slot claimed but not yet published
    }
    e.tick = s.tick.load(std::memory_order_relaxed);
    e.arg0 = s.arg0.load(std::memory_order_relaxed);
    e.arg1 = s.arg1.load(std::memory_order_relaxed);
    e.pid = s.pid.load(std::memory_order_relaxed);
    e.cpu = s.cpu.load(std::memory_order_relaxed);
    out.push_back(e);
  }
  return out;
}

void TraceRing::Reset() {
  head_.store(0, std::memory_order_relaxed);
  for (u32 i = 0; i < cap_; ++i) {
    slots_[i].kind.store(0, std::memory_order_relaxed);
  }
}

TraceBuffer::TraceBuffer() {
  rings_.reserve(kMaxCpus + 1);
  for (u32 i = 0; i < kMaxCpus + 1; ++i) {
    rings_.push_back(std::make_unique<TraceRing>(kRingCapacity));
  }
}

TraceBuffer& TraceBuffer::Global() {
  static TraceBuffer* g = new TraceBuffer();  // leaked: see Stats::Global()
  return *g;
}

TraceRing& TraceBuffer::ring(i32 cpu) {
  const u32 i = (cpu < 0 || cpu >= static_cast<i32>(kMaxCpus)) ? kOffCpu : static_cast<u32>(cpu);
  return *rings_[i];
}

void TraceBuffer::Emit(TraceKind kind, u64 arg0, u64 arg1) {
  const TraceContext& ctx = CurrentTraceContext();
  TraceEvent e;
  e.tick = tick_.fetch_add(1, std::memory_order_relaxed);
  e.arg0 = arg0;
  e.arg1 = arg1;
  e.pid = ctx.pid;
  e.cpu = static_cast<i16>(ctx.cpu);
  e.kind = static_cast<u16>(kind);
  ring(ctx.cpu).Emit(e);
}

u64 TraceBuffer::TotalWritten() const {
  u64 n = 0;
  for (const auto& r : rings_) {
    n += r->written();
  }
  return n;
}

std::vector<TraceEvent> TraceBuffer::SnapshotAll() const {
  std::vector<TraceEvent> out;
  for (const auto& r : rings_) {
    auto v = r->Snapshot();
    out.insert(out.end(), v.begin(), v.end());
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) { return a.tick < b.tick; });
  return out;
}

void TraceBuffer::Reset() {
  for (const auto& r : rings_) {
    r->Reset();
  }
  tick_.store(0, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace sg
