// Per-CPU trace rings — a fixed-size, lock-free event log of the kernel
// actions the paper's claims are about: page faults, COW breaks, TLB
// shootdowns, lock waits, sleeps, and sync-bit pulls.
//
// Layout: one ring per simulated CPU plus one "off-CPU" ring (index
// kOffCpu) for threads not currently holding a CPU slot (raw host threads
// in unit tests, processes mid-block). A process's current CPU and pid
// live in a thread-local TraceContext maintained by the proc layer, so
// emitting an event never takes a lock: claim a slot with fetch_add, store
// the fields relaxed. When a ring wraps, the oldest events are overwritten
// (dropped() reports how many).
//
// Events off the syscall fast path only: the entry-count fast path uses
// plain counters (obs/stats.h); rings record the *rare* expensive events,
// so tracing stays compiled-in at negligible cost (E4 bench_no_penalty).
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <atomic>
#include <memory>
#include <vector>

#include "base/types.h"

namespace sg {
namespace obs {

enum class TraceKind : u16 {
  kNone = 0,        // empty slot
  kPageFault,       // arg0 = faulting va, arg1 = want_write
  kCowBreak,        // arg0 = faulting va
  kTlbShootdown,    // arg0 = #TLBs flushed, arg1 = IPIs delivered
  kLockReadWait,    // shared read lock: reader blocked behind an updater
  kLockUpdateWait,  // shared read lock: updater blocked behind readers
  kSemSleep,        // arg0 = discriminator (0 generic, 1 s_fupdsema)
  kResourceSync,    // §6.3 kernel-entry pull; arg0 = p_flag sync bits
  kPagerSteal,      // arg0 = frames stolen
  kProcExit,        // arg0 = exit status, arg1 = terminating signal
};

struct TraceEvent {
  u64 tick = 0;  // global order stamp (monotone across all rings)
  u64 arg0 = 0;
  u64 arg1 = 0;
  i32 pid = 0;   // 0 = not a simulated process
  i16 cpu = -1;  // -1 = off-CPU
  u16 kind = 0;  // TraceKind
};

// Where am I running? The proc layer keeps this current; Emit reads it.
struct TraceContext {
  i32 cpu = -1;
  i32 pid = 0;
};
TraceContext& CurrentTraceContext();

// One lock-free ring. Multiple writers may emit concurrently; a slot's
// fields are individually-relaxed atomics, so a torn event under a
// concurrent snapshot mixes fields of two events rather than invoking UB —
// acceptable for a diagnostic ring, and what real kernel tracers do.
class TraceRing {
 public:
  explicit TraceRing(u32 capacity);
  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  void Emit(const TraceEvent& e);

  u32 capacity() const { return cap_; }
  // Total events ever emitted; dropped() = written() - capacity() once the
  // ring has wrapped (the overwritten oldest events).
  u64 written() const { return head_.load(std::memory_order_relaxed); }
  u64 dropped() const {
    const u64 w = written();
    return w > cap_ ? w - cap_ : 0;
  }

  // Copies the live events oldest-first.
  std::vector<TraceEvent> Snapshot() const;
  void Reset();

 private:
  struct Slot {
    std::atomic<u64> tick{0};
    std::atomic<u64> arg0{0};
    std::atomic<u64> arg1{0};
    std::atomic<i32> pid{0};
    std::atomic<i16> cpu{-1};
    std::atomic<u16> kind{0};
  };

  const u32 cap_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<u64> head_{0};
};

// The global per-CPU buffer: rings for CPUs 0..kMaxCpus-1 plus the off-CPU
// ring. Leaked singleton, same reasoning as Stats::Global().
class TraceBuffer {
 public:
  static constexpr u32 kMaxCpus = 64;
  static constexpr u32 kOffCpu = kMaxCpus;  // ring index for cpu = -1
  static constexpr u32 kRingCapacity = 1024;

  static TraceBuffer& Global();

  // Stamps a global tick and appends to the calling thread's current ring.
  void Emit(TraceKind kind, u64 arg0 = 0, u64 arg1 = 0);

  TraceRing& ring(i32 cpu);
  u64 TotalWritten() const;
  std::vector<TraceEvent> SnapshotAll() const;  // merged, tick-ordered
  void Reset();

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

 private:
  TraceBuffer();

  std::atomic<bool> enabled_{true};
  std::atomic<u64> tick_{0};
  std::vector<std::unique_ptr<TraceRing>> rings_;  // kMaxCpus + 1, fixed at ctor
};

// The emit helper instrumented code calls. One relaxed load when disabled.
inline void Trace(TraceKind kind, u64 arg0 = 0, u64 arg1 = 0) {
  TraceBuffer& b = TraceBuffer::Global();
  if (b.enabled()) {
    b.Emit(kind, arg0, arg1);
  }
}

}  // namespace obs
}  // namespace sg

#endif  // SRC_OBS_TRACE_H_
