// Kernel statistics registry — the counter/gauge/histogram layer the rest
// of the kernel is instrumented with.
//
// The paper's §7 analysis is qualitative ("overhead ... is negligible
// except when detaching or shrinking regions") because the 1988 kernel had
// no built-in way to measure itself. This registry closes that gap: every
// hot path (shared read lock, TLB shootdown, fault/COW, sync-bit
// propagation, syscall entry) increments a named counter, and /proc/stat
// renders the whole registry for user processes.
//
// Design constraints:
//   * The update path is a single relaxed atomic increment. Name lookup
//     happens ONCE per call site (function-local static reference in the
//     SG_OBS_* macros), so instrumentation stays off the critical path.
//   * Registered objects have stable addresses for the life of the
//     process (the registry is a leaked singleton), so cached references
//     never dangle — including during static destruction.
//   * Depends only on base/: every layer from sync/ up may include this.
#ifndef SRC_OBS_STATS_H_
#define SRC_OBS_STATS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "base/mutex.h"
#include "base/thread_annotations.h"
#include "base/types.h"

namespace sg {
namespace obs {

// Monotonically increasing event count.
class Counter {
 public:
  void Inc(u64 n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  u64 value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<u64> v_{0};
};

// Instantaneous level (live processes, live share blocks).
class Gauge {
 public:
  void Set(i64 v) { v_.store(v, std::memory_order_relaxed); }
  void Add(i64 d) { v_.fetch_add(d, std::memory_order_relaxed); }
  i64 value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<i64> v_{0};
};

// Log2-bucketed latency histogram (nanoseconds). Bucket i counts samples
// with value < 2^i ns; the last bucket is open-ended. Lock-free: Record is
// three relaxed increments.
class LatencyHisto {
 public:
  static constexpr u32 kBuckets = 40;  // 2^39 ns ≈ 9 minutes: plenty

  void Record(u64 ns) {
    u32 b = 0;
    while (b + 1 < kBuckets && (u64{1} << b) <= ns) {
      ++b;
    }
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  }

  u64 count() const { return count_.load(std::memory_order_relaxed); }
  u64 sum_ns() const { return sum_ns_.load(std::memory_order_relaxed); }
  u64 bucket(u32 i) const { return buckets_[i].load(std::memory_order_relaxed); }

 private:
  std::array<std::atomic<u64>, kBuckets> buckets_{};
  std::atomic<u64> count_{0};
  std::atomic<u64> sum_ns_{0};
};

// The system-wide registry. Lookup by name is mutex-guarded and intended
// to run once per call site; the returned references are stable forever.
class Stats {
 public:
  // The leaked global instance (never destroyed: cached references in
  // instrumented code must outlive every static destructor).
  static Stats& Global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  LatencyHisto& histo(std::string_view name);

  // Value of a counter if it exists, else 0 (tests, /proc readers).
  u64 CounterValue(std::string_view name) const;
  u64 HistoCount(std::string_view name) const;

  // Renders every registered stat as "name value" lines, sorted by name.
  // Histograms expand to .count/.sum_ns/.avg_ns plus one line per nonzero
  // bucket. This is the body of /proc/stat.
  std::string RenderText() const;

 private:
  Stats() = default;

  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_ SG_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_ SG_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<LatencyHisto>, std::less<>> histos_ SG_GUARDED_BY(mu_);
};

// Records the lifetime of a scope into a histogram.
class ScopedTimerNs {
 public:
  explicit ScopedTimerNs(LatencyHisto& h) : h_(h), t0_(std::chrono::steady_clock::now()) {}
  ~ScopedTimerNs() {
    const auto dt = std::chrono::steady_clock::now() - t0_;
    h_.Record(static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count()));
  }
  ScopedTimerNs(const ScopedTimerNs&) = delete;
  ScopedTimerNs& operator=(const ScopedTimerNs&) = delete;

 private:
  LatencyHisto& h_;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace obs
}  // namespace sg

// Increment the named counter. The registry lookup runs once per call site
// (thread-safe static-local init); afterwards this is one relaxed fetch_add.
#define SG_OBS_INC(name) SG_OBS_ADD(name, 1)

#define SG_OBS_ADD(name, n)                                                          \
  do {                                                                               \
    static ::sg::obs::Counter& sg_obs_counter_ =                                     \
        ::sg::obs::Stats::Global().counter(name);                                    \
    sg_obs_counter_.Inc(n);                                                          \
  } while (0)

// Per-syscall entry counter ("sys.open", "sys.sproc", ...).
#define SG_OBS_SYSCALL(name) SG_OBS_INC("sys." name)

#endif  // SRC_OBS_STATS_H_
