#include "obs/stats.h"

namespace sg {
namespace obs {

Stats& Stats::Global() {
  static Stats* g = new Stats();  // leaked: see header
  return *g;
}

Counter& Stats::counter(std::string_view name) {
  MutexGuard l(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& Stats::gauge(std::string_view name) {
  MutexGuard l(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

LatencyHisto& Stats::histo(std::string_view name) {
  MutexGuard l(mu_);
  auto it = histos_.find(name);
  if (it == histos_.end()) {
    it = histos_.emplace(std::string(name), std::make_unique<LatencyHisto>()).first;
  }
  return *it->second;
}

u64 Stats::CounterValue(std::string_view name) const {
  MutexGuard l(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

u64 Stats::HistoCount(std::string_view name) const {
  MutexGuard l(mu_);
  auto it = histos_.find(name);
  return it == histos_.end() ? 0 : it->second->count();
}

std::string Stats::RenderText() const {
  MutexGuard l(mu_);
  std::string out;
  out.reserve(1024);
  for (const auto& [name, c] : counters_) {
    out += name;
    out += ' ';
    out += std::to_string(c->value());
    out += '\n';
  }
  for (const auto& [name, g] : gauges_) {
    out += name;
    out += ' ';
    out += std::to_string(g->value());
    out += '\n';
  }
  for (const auto& [name, h] : histos_) {
    const u64 n = h->count();
    out += name + ".count " + std::to_string(n) + '\n';
    out += name + ".sum_ns " + std::to_string(h->sum_ns()) + '\n';
    out += name + ".avg_ns " + std::to_string(n == 0 ? 0 : h->sum_ns() / n) + '\n';
    for (u32 b = 0; b < LatencyHisto::kBuckets; ++b) {
      const u64 v = h->bucket(b);
      if (v != 0) {
        out += name + ".le_2e" + std::to_string(b) + " " + std::to_string(v) + '\n';
      }
    }
  }
  return out;
}

}  // namespace obs
}  // namespace sg
