// Procfs — a synthetic filesystem mounted at /proc through the ordinary
// fs/vfs layer, so user processes read kernel state through the normal
// open(2)/read(2) descriptor path (the very sharing shape the paper's
// fd/VFS machinery exists to support).
//
// Layout:
//   /proc/stat            global counter registry (obs/stats.h RenderText)
//   /proc/<pid>/status    pid, ppid, state, ids, shmask, p_flag sync bits,
//                         share-group id, syscall count
//   /proc/share/<gid>     member list, s_refcnt, shared-read-lock stats
//
// File contents are generated at read(2) time; the directory population
// (which pids/groups exist) is refreshed by a hook the VFS invokes during
// path resolution. The kernel supplies two snapshot providers; Procfs
// itself knows nothing about Proc or ShaddrBlock internals, which keeps
// this library below core/ in the dependency order (obs + fs only).
#ifndef SRC_OBS_PROCFS_H_
#define SRC_OBS_PROCFS_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "base/mutex.h"
#include "base/thread_annotations.h"
#include "base/types.h"
#include "fs/vfs.h"

namespace sg {
namespace obs {

// One process, as /proc presents it. `group` is the share-group id or -1.
struct ProcStatus {
  i32 pid = 0;
  i32 ppid = 0;
  char state = '?';  // E(mbryo) / A(ctive) / Z(ombie)
  u32 uid = 0;
  u32 gid = 0;
  u32 shmask = 0;
  u32 pflag = 0;
  i64 group = -1;
  u64 syscalls = 0;
};

// One share group, as /proc/share presents it.
struct GroupStatus {
  u64 id = 0;
  u32 refcnt = 0;
  std::vector<i32> members;
  std::string lock_name;  // SharedReadLock::name(), empty if unnamed
  u64 lock_reads = 0;
  u64 lock_read_slow = 0;  // read acquisitions off the sharded fast path
  u64 lock_updates = 0;
  u64 lock_read_waits = 0;
  u64 lock_update_waits = 0;
  u64 lock_update_wait_count = 0;   // per-lock writer wait histogram
  u64 lock_update_wait_sum_ns = 0;
  int ofiles = 0;
  // Fair-share resource manager (src/rm/) view: shares weight, decayed CPU
  // usage, and per-resource cap/used (index order: members, files, pages;
  // cap 0 = unlimited). Plain values so Procfs stays below rm/ in the
  // dependency order.
  u32 rm_shares = 0;
  u64 rm_usage_ns = 0;
  u64 rm_cap[3] = {0, 0, 0};
  u64 rm_used[3] = {0, 0, 0};
};

class Procfs {
 public:
  using ProcLister = std::function<std::vector<ProcStatus>()>;
  using GroupLister = std::function<std::vector<GroupStatus>()>;

  // Builds /proc under `vfs`'s root and installs the refresh hooks. The
  // providers are called on every /proc traversal and on status reads;
  // they must take their own snapshots under the kernel's locks.
  Procfs(Vfs& vfs, ProcLister procs, GroupLister groups);
  ~Procfs();
  Procfs(const Procfs&) = delete;
  Procfs& operator=(const Procfs&) = delete;

  // Re-populates the /proc/<pid> and /proc/share/<gid> entries from fresh
  // snapshots. Invoked by the VFS hook; callable directly from tests.
  void Refresh();

  // Installs an extra generated file directly under /proc (e.g. the kernel
  // layer registers /proc/lockdep here — Procfs itself sits below sync/ in
  // the dependency order and cannot generate that content itself). The node
  // is owned by this Procfs and removed in the destructor. The name must
  // not collide with a pid directory or a built-in node.
  void AddRootFile(const std::string& name, std::function<std::string()> gen);

 private:
  Inode* MakeDir(Inode* parent, const std::string& name);
  Inode* MakeFile(Inode* parent, const std::string& name, std::function<std::string()> gen);
  void RemoveFile(Inode* parent, const std::string& name, Inode* ip);

  std::string RenderStatus(i32 pid) const;
  std::string RenderGroup(u64 gid) const;

  Vfs& vfs_;
  // sgcheck:allow(guarded-fields): callback bound at construction, then
  // only invoked (std::function target never reseated)
  ProcLister procs_;
  // sgcheck:allow(guarded-fields): callback bound at construction, see above
  GroupLister groups_;

  // sgcheck:allow(guarded-fields): set once in Mount before /proc is
  // reachable, then read-only
  Inode* proc_dir_ = nullptr;   // /proc (own counted ref held)
  // sgcheck:allow(guarded-fields): set once in Mount, see above
  Inode* share_dir_ = nullptr;  // /proc/share (own counted ref held)
  // sgcheck:allow(guarded-fields): set once in Mount, see above
  Inode* stat_file_ = nullptr;  // /proc/stat

  Mutex refresh_mu_;  // serializes concurrent traversal-driven refreshes
  struct PidNode {
    Inode* dir = nullptr;
    Inode* status = nullptr;
  };
  std::map<i32, PidNode> pid_nodes_ SG_GUARDED_BY(refresh_mu_);
  std::map<u64, Inode*> group_nodes_ SG_GUARDED_BY(refresh_mu_);
  // Extra root files installed via AddRootFile (name -> inode).
  std::map<std::string, Inode*> extra_files_ SG_GUARDED_BY(refresh_mu_);
};

}  // namespace obs
}  // namespace sg

#endif  // SRC_OBS_PROCFS_H_
