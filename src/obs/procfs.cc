#include "obs/procfs.h"

#include <cstdio>

#include "base/check.h"
#include "obs/stats.h"

namespace sg {
namespace obs {

namespace {

std::string Hex(u64 v) {
  char buf[2 + 16 + 1];
  std::snprintf(buf, sizeof(buf), "0x%llx", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

Procfs::Procfs(Vfs& vfs, ProcLister procs, GroupLister groups)
    : vfs_(vfs), procs_(std::move(procs)), groups_(std::move(groups)) {
  InodeTable& tab = vfs_.inodes();

  // Build the whole subtree first, then publish "proc" in the root — path
  // resolution never sees a half-built tree. We keep our own counted
  // reference on every node we create (released on removal), so the raw
  // pointers in pid_nodes_/group_nodes_ stay valid.
  auto made = tab.Alloc(InodeType::kDirectory, 0555, 0, 0);
  SG_CHECK(made.ok());
  proc_dir_ = made.value();
  proc_dir_->parent = vfs_.root();
  proc_dir_->SetRefreshHook([this] { Refresh(); });

  stat_file_ = MakeFile(proc_dir_, "stat", [] { return Stats::Global().RenderText(); });

  made = tab.Alloc(InodeType::kDirectory, 0555, 0, 0);
  SG_CHECK(made.ok());
  share_dir_ = made.value();
  share_dir_->parent = proc_dir_;
  share_dir_->SetRefreshHook([this] { Refresh(); });
  SG_CHECK(proc_dir_->AddEntry("share", share_dir_).ok());
  tab.LinkInc(share_dir_);

  SG_CHECK(vfs_.root()->AddEntry("proc", proc_dir_).ok());
  tab.LinkInc(proc_dir_);
}

Procfs::~Procfs() {
  MutexGuard l(refresh_mu_);
  InodeTable& tab = vfs_.inodes();
  for (auto& [name, ip] : extra_files_) {
    RemoveFile(proc_dir_, name, ip);
  }
  extra_files_.clear();
  for (auto& [pid, node] : pid_nodes_) {
    RemoveFile(node.dir, "status", node.status);
    SG_CHECK(proc_dir_->RemoveEntry(std::to_string(pid)).ok());
    tab.LinkDec(node.dir);
    tab.Iput(node.dir);
  }
  pid_nodes_.clear();
  for (auto& [gid, ip] : group_nodes_) {
    RemoveFile(share_dir_, std::to_string(gid), ip);
  }
  group_nodes_.clear();
  RemoveFile(proc_dir_, "stat", stat_file_);
  SG_CHECK(proc_dir_->RemoveEntry("share").ok());
  tab.LinkDec(share_dir_);
  tab.Iput(share_dir_);
  SG_CHECK(vfs_.root()->RemoveEntry("proc").ok());
  tab.LinkDec(proc_dir_);
  tab.Iput(proc_dir_);
}

Inode* Procfs::MakeDir(Inode* parent, const std::string& name) {
  InodeTable& tab = vfs_.inodes();
  auto made = tab.Alloc(InodeType::kDirectory, 0555, 0, 0);
  SG_CHECK(made.ok());
  Inode* dir = made.value();
  dir->parent = parent;
  // Marks the dir synthetic (user link/unlink inside it is EPERM) and keeps
  // its entries fresh when a path walk enters it directly.
  dir->SetRefreshHook([this] { Refresh(); });
  SG_CHECK(parent->AddEntry(name, dir).ok());
  tab.LinkInc(dir);
  return dir;
}

Inode* Procfs::MakeFile(Inode* parent, const std::string& name,
                        std::function<std::string()> gen) {
  InodeTable& tab = vfs_.inodes();
  auto made = tab.Alloc(InodeType::kRegular, 0444, 0, 0);
  SG_CHECK(made.ok());
  Inode* ip = made.value();
  ip->SetGenerator(std::move(gen));  // before publication: immutable after
  SG_CHECK(parent->AddEntry(name, ip).ok());
  tab.LinkInc(ip);
  return ip;
}

void Procfs::RemoveFile(Inode* parent, const std::string& name, Inode* ip) {
  InodeTable& tab = vfs_.inodes();
  SG_CHECK(parent->RemoveEntry(name).ok());
  tab.LinkDec(ip);  // an open descriptor keeps the inode alive until close
  tab.Iput(ip);     // our creation reference
}

void Procfs::AddRootFile(const std::string& name, std::function<std::string()> gen) {
  MutexGuard l(refresh_mu_);
  SG_CHECK(extra_files_.count(name) == 0);
  extra_files_.emplace(name, MakeFile(proc_dir_, name, std::move(gen)));
}

void Procfs::Refresh() {
  MutexGuard l(refresh_mu_);
  InodeTable& tab = vfs_.inodes();

  // --- /proc/<pid> ---
  const std::vector<ProcStatus> procs = procs_();
  std::map<i32, bool> live;
  for (const ProcStatus& p : procs) {
    live[p.pid] = true;
  }
  for (auto it = pid_nodes_.begin(); it != pid_nodes_.end();) {
    if (live.count(it->first) != 0) {
      ++it;
      continue;
    }
    RemoveFile(it->second.dir, "status", it->second.status);
    SG_CHECK(proc_dir_->RemoveEntry(std::to_string(it->first)).ok());
    tab.LinkDec(it->second.dir);
    tab.Iput(it->second.dir);
    it = pid_nodes_.erase(it);
  }
  for (const auto& [pid, unused] : live) {
    if (pid_nodes_.count(pid) != 0) {
      continue;
    }
    PidNode node;
    node.dir = MakeDir(proc_dir_, std::to_string(pid));
    const i32 captured = pid;
    node.status = MakeFile(node.dir, "status", [this, captured] { return RenderStatus(captured); });
    pid_nodes_.emplace(pid, node);
  }

  // --- /proc/share/<gid> ---
  const std::vector<GroupStatus> groups = groups_();
  std::map<u64, bool> live_groups;
  for (const GroupStatus& g : groups) {
    live_groups[g.id] = true;
  }
  for (auto it = group_nodes_.begin(); it != group_nodes_.end();) {
    if (live_groups.count(it->first) != 0) {
      ++it;
      continue;
    }
    RemoveFile(share_dir_, std::to_string(it->first), it->second);
    it = group_nodes_.erase(it);
  }
  for (const auto& [gid, unused] : live_groups) {
    if (group_nodes_.count(gid) != 0) {
      continue;
    }
    const u64 captured = gid;
    Inode* ip = MakeFile(share_dir_, std::to_string(gid),
                         [this, captured] { return RenderGroup(captured); });
    group_nodes_.emplace(gid, ip);
  }
}

std::string Procfs::RenderStatus(i32 pid) const {
  for (const ProcStatus& p : procs_()) {
    if (p.pid != pid) {
      continue;
    }
    std::string out;
    out += "pid " + std::to_string(p.pid) + '\n';
    out += "ppid " + std::to_string(p.ppid) + '\n';
    out += "state ";
    out += p.state;
    out += '\n';
    out += "uid " + std::to_string(p.uid) + '\n';
    out += "gid " + std::to_string(p.gid) + '\n';
    out += "shmask " + Hex(p.shmask) + '\n';
    out += "pflag " + Hex(p.pflag) + '\n';
    out += "group " + (p.group < 0 ? std::string("-") : std::to_string(p.group)) + '\n';
    out += "syscalls " + std::to_string(p.syscalls) + '\n';
    return out;
  }
  return "gone\n";  // pid died between directory refresh and read
}

std::string Procfs::RenderGroup(u64 gid) const {
  for (const GroupStatus& g : groups_()) {
    if (g.id != gid) {
      continue;
    }
    std::string out;
    out += "group " + std::to_string(g.id) + '\n';
    out += "refcnt " + std::to_string(g.refcnt) + '\n';
    out += "members";
    for (i32 pid : g.members) {
      out += ' ' + std::to_string(pid);
    }
    out += '\n';
    out += "ofiles " + std::to_string(g.ofiles) + '\n';
    out += "rm.shares " + std::to_string(g.rm_shares) + '\n';
    out += "rm.usage_ns " + std::to_string(g.rm_usage_ns) + '\n';
    static const char* kResNames[3] = {"members", "files", "pages"};
    for (int i = 0; i < 3; ++i) {
      out += "rm.cap." + std::string(kResNames[i]) + ' ' + std::to_string(g.rm_cap[i]) + '\n';
      out += "rm.used." + std::string(kResNames[i]) + ' ' + std::to_string(g.rm_used[i]) + '\n';
      // Headroom renders "-" when the cap is 0 (unlimited); a cap lowered
      // below current usage clamps to 0 rather than wrapping.
      out += "rm.headroom." + std::string(kResNames[i]) + ' ';
      if (g.rm_cap[i] == 0) {
        out += '-';
      } else {
        out += std::to_string(g.rm_cap[i] > g.rm_used[i] ? g.rm_cap[i] - g.rm_used[i] : 0);
      }
      out += '\n';
    }
    if (!g.lock_name.empty()) {
      out += "lock.name " + g.lock_name + '\n';
    }
    out += "lock.reads " + std::to_string(g.lock_reads) + '\n';
    out += "lock.read_slow " + std::to_string(g.lock_read_slow) + '\n';
    out += "lock.updates " + std::to_string(g.lock_updates) + '\n';
    out += "lock.read_waits " + std::to_string(g.lock_read_waits) + '\n';
    out += "lock.update_waits " + std::to_string(g.lock_update_waits) + '\n';
    out += "lock.update_wait.count " + std::to_string(g.lock_update_wait_count) + '\n';
    const u64 avg = g.lock_update_wait_count == 0
                        ? 0
                        : g.lock_update_wait_sum_ns / g.lock_update_wait_count;
    out += "lock.update_wait.avg_ns " + std::to_string(avg) + '\n';
    return out;
  }
  return "gone\n";
}

}  // namespace obs
}  // namespace sg
