// ShaddrBlock — the paper's shaddr_t (§6.1): "For each share group, there
// is a single data structure (the shared address block) that is referenced
// by all members of the group."
//
// Field correspondence with the paper's structure:
//   s_region / s_acclck / s_updwait / s_acccnt / s_waitcnt
//       -> space_ (vm::SharedSpace: the shared pregion list + SharedReadLock)
//   s_plink / s_refcnt / s_listlock
//       -> the member chain (through Proc::s_plink), refcnt_, listlock_
//   s_fupdsema -> fupdsema_ (single-threads open-file-table updates)
//   s_ofile / s_pofile -> ofile_ (master copy of the descriptor table,
//       FdEntry carries the per-descriptor flag byte), generation-stamped
//       per slot for delta synchronization
//   s_cdir / s_rdir -> cdir_/rdir_ (counted inode refs)
//   s_rupdlock -> rupdlock_ (spinlock for the small shared values)
//   s_cmask / s_limit / s_uid / s_gid -> cmask_/limit_/uid_/gid_
//
// "Those resources which have reference counts (file descriptors and
// inodes) have the count bumped one for the shared address block. This
// avoids any races whereby the process that changed the resource exits
// before all other group members have had a chance to synchronize." The
// block therefore owns one reference to every file in ofile_ and to
// cdir_/rdir_, released only at group teardown or replacement.
//
// ---- Generation-based resource synchronization (DESIGN.md §4f) ----
//
// The paper's p_flag bits answer "did ANYTHING change?"; flagging is
// O(members) per update and a flagged member resynchronizes wholesale.
// This block generalizes the "checked in a single test" property to
// generation counters:
//
//   * resgen_ — one packed u64 with a generation lane per shared resource
//     (fds/dir/id/umask/ulimit). Every update bumps its lane; a member
//     caches the word it last synced against (Proc::p_resgen), so kernel
//     entry stays a single word compare and updates stop walking the
//     member chain (FlagOthers survives only as the lane-wrap fallback
//     and for forced resyncs: sproc seeding, PR_JOINGROUP, teardown).
//   * fd_gen_ / MasterFdSlot::gen — the master descriptor table carries a
//     full-width table generation; each slot is stamped with the
//     generation of its last change and each member records the table
//     generation its own fd table reflects (Proc::p_fd_synced_gen).
//     PublishFds diffs the member table against the master and touches
//     only changed slots; PullFdsIfFlagged copies only slots stamped
//     newer than the member's last sync — a 1-fd open(2) costs O(changed)
//     refcount round-trips per member instead of O(kMaxFds).
#ifndef SRC_CORE_SHADDR_H_
#define SRC_CORE_SHADDR_H_

#include <atomic>
#include <vector>

#include "base/thread_annotations.h"
#include "base/types.h"
#include "fs/file.h"
#include "fs/vfs.h"
#include "hw/cpu_set.h"
#include "obs/stats.h"
#include "obs/trace.h"
#include "proc/proc.h"
#include "rm/rm.h"
#include "sync/lockdep.h"
#include "sync/semaphore.h"
#include "sync/spinlock.h"
#include "vm/shared_space.h"

namespace sg {

// Lanes of the packed resource-generation word. The fds lane mirrors the
// low bits of the full-width fd_gen_; the scalar lanes are free-running
// modular counters. Lane widths bound how far a member may lag before the
// word compare could alias (2^bits updates); the updater closes that hole
// by falling back to a FlagOthers walk whenever a lane wraps to 0, so the
// p_flag bit forces the pull no matter what the word compare says.
struct ResLane {
  u32 shift;
  u32 bits;
};
inline constexpr ResLane kLaneFds{0, 16};
inline constexpr ResLane kLaneDir{16, 12};
inline constexpr ResLane kLaneId{28, 12};
inline constexpr ResLane kLaneUmask{40, 12};
inline constexpr ResLane kLaneUlimit{52, 12};

constexpr u64 LaneLimit(ResLane l) { return u64{1} << l.bits; }
constexpr u64 LaneMask(ResLane l) { return (LaneLimit(l) - 1) << l.shift; }
constexpr u64 LaneGet(u64 word, ResLane l) { return (word >> l.shift) & (LaneLimit(l) - 1); }
constexpr u64 LaneSet(u64 word, ResLane l, u64 v) {
  return (word & ~LaneMask(l)) | ((v & (LaneLimit(l) - 1)) << l.shift);
}

// One master descriptor-table slot: the entry plus the fd_gen_ value of
// its last change (0 = never touched since the block was created).
struct MasterFdSlot {
  FdEntry e;
  u64 gen = 0;
};

class ShaddrBlock {
 public:
  // Creates the block for `creator`'s new share group: moves the creator's
  // sharable pregions onto the shared list, registers its TLB, seeds the
  // master resource copies from the creator's u-area (bumping the block's
  // own references), links the creator as the first member, and gives it a
  // mask "indicating that all resources are shared".
  // Analysis suppressed on both: the constructor runs before the block is
  // published (nobody else can hold its locks) and the destructor after
  // the last member detached (sole owner), so neither takes the locks the
  // touched fields are guarded by.
  ShaddrBlock(Proc& creator, CpuSet& cpus, Vfs& vfs, rm::ResourceManager& rm)
      SG_NO_THREAD_SAFETY_ANALYSIS;
  ~ShaddrBlock() SG_NO_THREAD_SAFETY_ANALYSIS;
  ShaddrBlock(const ShaddrBlock&) = delete;
  ShaddrBlock& operator=(const ShaddrBlock&) = delete;

  // ----- the pregion half (s_region & friends) -----
  SharedSpace& space() { return space_; }

  // System-wide unique group id (the /proc/share/<id> name).
  u64 id() const { return id_; }

  // ----- fair-share resource manager (src/rm/) -----
  // The group's rm node: CPU shares + decayed usage + capacity caps. Owned
  // by the manager; created in the constructor, released in the destructor,
  // so it outlives every reference a member can publish (members clear
  // their Proc::rm_node in RemoveMember, strictly before teardown).
  //
  // Accounting contract: the ADMISSION seams charge kMembers (sproc /
  // PR_JOINGROUP, before the member attaches) and RemoveMember uncharges;
  // kFiles moves only with the master fd table (constructor seed,
  // PublishFds deltas); kPages moves with page-table validity transitions
  // via the regions' PageCharge hookup.
  rm::GroupNode* rm_node() const { return node_; }

  // ----- member chain (s_plink/s_refcnt/s_listlock) -----
  // Links `child` with its (already strict-inheritance-masked) share mask.
  // If PR_SADDR is set the child's address space joins the shared image.
  // The caller seeds the child's p_resgen/p_fd_synced_gen from its own
  // (the child's u-area is a copy of the caller's, so it is exactly as
  // stale as the caller).
  void AddMember(Proc& child, u32 shmask);

  // Like AddMember, but fails (returns false) if the group is already
  // draining (refcnt 0, block about to be destroyed). Used by the dynamic
  // PR_JOINGROUP extension, where the joiner races the last member's exit.
  bool TryAddMember(Proc& child, u32 shmask);

  // Unlinks `p` (exit(2) or exec(2)). Removes the member's stack from the
  // shared image (with the §6.2 shootdown: its frames are freed) and drops
  // its TLB registration. Returns true when `p` was the last member — the
  // caller then destroys the block ("the structure is thrown away once the
  // last member exits").
  bool RemoveMember(Proc& p);

  // §8 PR_UNSHARE(PR_SADDR): takes a copy-on-write snapshot of the shared
  // image into `p`'s private space (its own stack MOVES out of the shared
  // image) and detaches `p` from shared VM. `p` stays a group member for
  // whatever else it shares.
  Status UnshareVm(Proc& p);

  // §8 PR_PRIVDATA: shadows the shared DATA region with a private
  // copy-on-write duplicate in `p`'s address space — the private-first scan
  // order (§6.2) makes `p` use the copy while everyone else keeps sharing.
  Status ShadowDataPrivately(Proc& p);

  // Calls fn(member) for each member under the list lock.
  template <typename Fn>
  void ForEachMember(Fn&& fn) {
    SpinGuard g(listlock_);
    for (Proc* m = plink_; m != nullptr; m = m->s_plink) {
      fn(*m);
    }
  }

  u32 refcnt() const;

  // ----- §6.3 resource synchronization -----
  // Update protocol ("the share block is locked for update, the resource is
  // modified, a copy is made in the shared address block, each sharing
  // group member's p_flag word is updated, and the lock is released" —
  // except that "each member's p_flag is updated" is now "the resource's
  // generation lane is bumped": O(1) in group size. The double-update
  // check survives unchanged: after acquiring the lock the updater first
  // synchronizes its own stale copy, then applies its change):
  //
  //   lock -> pull-if-stale -> apply caller's change -> copy to master ->
  //   bump the resource's generation lane -> unlock.
  //
  // File-descriptor updates are single-threaded by fupdsema_ (s_fupdsema)
  // and bracket a whole open/close/dup in the syscall layer; the small
  // scalar resources complete inside rupdlock_ (s_rupdlock).

  // Descriptor-table update bracket. Sequence in the syscall layer:
  //   LockFileUpdate(); PullFdsIfFlagged(p); <modify p.fds>;
  //   PublishFds(p); UnlockFileUpdate();
  void LockFileUpdate() SG_ACQUIRE(fupdsema_) {
    // The bracket is a sleeping acquisition even when TryP wins the fast
    // path, so declare the sleep intent before trying.
    lockdep::MaySleep("shaddr.LockFileUpdate");
    if (fupdsema_.TryP()) {
      lockdep::OnAcquire(FupdsemaClass(), this);
      return;  // uncontended: another member isn't mid-update
    }
    SG_OBS_INC("core.fupdsema_waits");
    obs::Trace(obs::TraceKind::kSemSleep, 1);
    (void)fupdsema_.P();  // uninterruptible: always kOk
    lockdep::OnAcquire(FupdsemaClass(), this);
  }
  void UnlockFileUpdate() SG_RELEASE(fupdsema_) {
    lockdep::OnRelease(FupdsemaClass(), this);
    fupdsema_.V();
  }
  // Delta pull: copies only master slots stamped newer than the member's
  // last-synced generation. A member flagged with kPfSyncFds (forced
  // resync: PR_JOINGROUP, lane wrap) reconciles every slot instead.
  void PullFdsIfFlagged(Proc& p) SG_REQUIRES(fupdsema_);
  // Delta publish: diffs `p`'s table against the master and touches only
  // changed slots (refcount traffic proportional to the change, not the
  // table), stamping them with a fresh table generation.
  void PublishFds(Proc& p) SG_REQUIRES(fupdsema_);

  // Scalar resources; null/unset arguments leave that field as-is.
  void UpdateDir(Proc& p, Inode* new_cwd, Inode* new_root);  // takes over the counted refs
  void UpdateIds(Proc& p, const uid_t* new_uid, const gid_t* new_gid);
  void UpdateUmask(Proc& p, mode_t value);
  void UpdateUlimit(Proc& p, u64 value);

  // Kernel-entry hook. "When a shared process enters the system via a
  // system call, the collection of bits in p_flag is checked in a single
  // test" — the single test is now the packed-word compare (plus the
  // legacy bit AND for forced resyncs); pulls whatever lane is stale.
  void SyncOnKernelEntry(Proc& p);

  // The block's current packed resource-generation word (tests, /proc).
  u64 resgen() const { return resgen_.load(std::memory_order_acquire); }

  // Test/diagnostic accessors for the master copies.
  mode_t cmask() const;
  u64 limit() const;
  uid_t uid() const;
  gid_t gid() const;
  Inode* cdir() const;
  Inode* rdir() const;
  // Used descriptors in the master table. Maintained incrementally at
  // publish so the /proc/share snapshot is one atomic load, not a
  // kMaxFds walk under a lock.
  int OfileCount() const { return ofile_count_.load(std::memory_order_acquire); }

 private:
  // Lockdep class of the fupdsema_ bracket (the semaphore itself is a
  // generic counting primitive; the ordering class belongs to this use).
  static lockdep::ClassId FupdsemaClass() {
    static const lockdep::ClassId id =
        lockdep::RegisterClass("shaddr.fupdsema", lockdep::Kind::kSleep);
    return id;
  }

  // Bumps `lane` of resgen_ by one (CAS: the fds lane and the scalar lanes
  // are bumped under different locks, so a plain RMW could carry into a
  // neighbor lane). Returns the new lane value; 0 means the lane wrapped
  // and the caller must FlagOthers so a member exactly 2^bits updates
  // behind cannot alias the word compare.
  u64 BumpScalarLane(ResLane lane);
  // Sets the fds lane to the low bits of `fd_gen` (same CAS discipline).
  void StoreFdsLane(u64 fd_gen);

  // Sets `bit` in every member (except `self`) whose share mask includes
  // `resource`. O(members): only the wrap fallback and forced-resync
  // paths use it now.
  void FlagOthers(Proc& self, u32 resource, u32 bit);

  // Kernel-entry pulls: refresh the member's private copy from the master
  // and adopt the lane into the member's cached word.
  void PullDir(Proc& p);
  void PullIds(Proc& p);
  void PullUmask(Proc& p);
  void PullUlimit(Proc& p);

  Vfs& vfs_;
  SharedSpace space_;
  const u64 id_;  // assigned at creation, never reused
  rm::ResourceManager& rm_;
  rm::GroupNode* const node_;  // this group's fair-share account

  mutable Spinlock listlock_{"shaddr.listlock"};    // s_listlock
  Proc* plink_ SG_GUARDED_BY(listlock_) = nullptr;  // s_plink
  u32 refcnt_ SG_GUARDED_BY(listlock_) = 0;         // s_refcnt

  Semaphore fupdsema_{1};  // s_fupdsema
  // s_ofile + s_pofile: the master descriptor table, generation-stamped
  // per slot. Touched only inside the fupdsema_ bracket; the /proc
  // snapshot reads the incremental ofile_count_ instead of walking it.
  std::vector<MasterFdSlot> ofile_ SG_GUARDED_BY(fupdsema_);
  // Full-width master-table generation; bumped once per publish that
  // changed anything. Slots are stamped with it; members remember the
  // value they last synced to (Proc::p_fd_synced_gen).
  u64 fd_gen_ SG_GUARDED_BY(fupdsema_) = 1;
  std::atomic<int> ofile_count_{0};

  // The packed per-resource generation word (see lane constants above).
  // Scalar lanes are bumped under rupdlock_, the fds lane under the
  // fupdsema_ bracket; cross-lane concurrency is resolved by CAS.
  std::atomic<u64> resgen_{LaneSet(LaneSet(LaneSet(LaneSet(LaneSet(0, kLaneFds, 1), kLaneDir, 1),
                                                   kLaneId, 1),
                                           kLaneUmask, 1),
                                   kLaneUlimit, 1)};

  mutable Spinlock rupdlock_{"shaddr.rupdlock"};  // s_rupdlock
  Inode* cdir_ SG_GUARDED_BY(rupdlock_) = nullptr;  // s_cdir
  Inode* rdir_ SG_GUARDED_BY(rupdlock_) = nullptr;  // s_rdir
  mode_t cmask_ SG_GUARDED_BY(rupdlock_) = 022;     // s_cmask
  u64 limit_ SG_GUARDED_BY(rupdlock_) = 0;          // s_limit
  uid_t uid_ SG_GUARDED_BY(rupdlock_) = 0;          // s_uid
  gid_t gid_ SG_GUARDED_BY(rupdlock_) = 0;          // s_gid
};

}  // namespace sg

#endif  // SRC_CORE_SHADDR_H_
