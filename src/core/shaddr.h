// ShaddrBlock — the paper's shaddr_t (§6.1): "For each share group, there
// is a single data structure (the shared address block) that is referenced
// by all members of the group."
//
// Field correspondence with the paper's structure:
//   s_region / s_acclck / s_updwait / s_acccnt / s_waitcnt
//       -> space_ (vm::SharedSpace: the shared pregion list + SharedReadLock)
//   s_plink / s_refcnt / s_listlock
//       -> the member chain (through Proc::s_plink), refcnt_, listlock_
//   s_fupdsema -> fupdsema_ (single-threads open-file-table updates)
//   s_ofile / s_pofile -> ofile_ (master copy of the descriptor table,
//       FdEntry carries the per-descriptor flag byte)
//   s_cdir / s_rdir -> cdir_/rdir_ (counted inode refs)
//   s_rupdlock -> rupdlock_ (spinlock for the small shared values)
//   s_cmask / s_limit / s_uid / s_gid -> cmask_/limit_/uid_/gid_
//
// "Those resources which have reference counts (file descriptors and
// inodes) have the count bumped one for the shared address block. This
// avoids any races whereby the process that changed the resource exits
// before all other group members have had a chance to synchronize." The
// block therefore owns one reference to every file in ofile_ and to
// cdir_/rdir_, released only at group teardown or replacement.
#ifndef SRC_CORE_SHADDR_H_
#define SRC_CORE_SHADDR_H_

#include <vector>

#include "base/thread_annotations.h"
#include "base/types.h"
#include "fs/file.h"
#include "fs/vfs.h"
#include "hw/cpu_set.h"
#include "obs/stats.h"
#include "obs/trace.h"
#include "proc/proc.h"
#include "sync/lockdep.h"
#include "sync/semaphore.h"
#include "sync/spinlock.h"
#include "vm/shared_space.h"

namespace sg {

class ShaddrBlock {
 public:
  // Creates the block for `creator`'s new share group: moves the creator's
  // sharable pregions onto the shared list, registers its TLB, seeds the
  // master resource copies from the creator's u-area (bumping the block's
  // own references), links the creator as the first member, and gives it a
  // mask "indicating that all resources are shared".
  // Analysis suppressed on both: the constructor runs before the block is
  // published (nobody else can hold its locks) and the destructor after
  // the last member detached (sole owner), so neither takes the locks the
  // touched fields are guarded by.
  ShaddrBlock(Proc& creator, CpuSet& cpus, Vfs& vfs) SG_NO_THREAD_SAFETY_ANALYSIS;
  ~ShaddrBlock() SG_NO_THREAD_SAFETY_ANALYSIS;
  ShaddrBlock(const ShaddrBlock&) = delete;
  ShaddrBlock& operator=(const ShaddrBlock&) = delete;

  // ----- the pregion half (s_region & friends) -----
  SharedSpace& space() { return space_; }

  // System-wide unique group id (the /proc/share/<id> name).
  u64 id() const { return id_; }

  // ----- member chain (s_plink/s_refcnt/s_listlock) -----
  // Links `child` with its (already strict-inheritance-masked) share mask.
  // If PR_SADDR is set the child's address space joins the shared image.
  void AddMember(Proc& child, u32 shmask);

  // Like AddMember, but fails (returns false) if the group is already
  // draining (refcnt 0, block about to be destroyed). Used by the dynamic
  // PR_JOINGROUP extension, where the joiner races the last member's exit.
  bool TryAddMember(Proc& child, u32 shmask);

  // Unlinks `p` (exit(2) or exec(2)). Removes the member's stack from the
  // shared image (with the §6.2 shootdown: its frames are freed) and drops
  // its TLB registration. Returns true when `p` was the last member — the
  // caller then destroys the block ("the structure is thrown away once the
  // last member exits").
  bool RemoveMember(Proc& p);

  // §8 PR_UNSHARE(PR_SADDR): takes a copy-on-write snapshot of the shared
  // image into `p`'s private space (its own stack MOVES out of the shared
  // image) and detaches `p` from shared VM. `p` stays a group member for
  // whatever else it shares.
  Status UnshareVm(Proc& p);

  // §8 PR_PRIVDATA: shadows the shared DATA region with a private
  // copy-on-write duplicate in `p`'s address space — the private-first scan
  // order (§6.2) makes `p` use the copy while everyone else keeps sharing.
  Status ShadowDataPrivately(Proc& p);

  // Calls fn(member) for each member under the list lock.
  template <typename Fn>
  void ForEachMember(Fn&& fn) {
    SpinGuard g(listlock_);
    for (Proc* m = plink_; m != nullptr; m = m->s_plink) {
      fn(*m);
    }
  }

  u32 refcnt() const;

  // ----- §6.3 resource synchronization -----
  // Update protocol ("the share block is locked for update, the resource is
  // modified, a copy is made in the shared address block, each sharing
  // group member's p_flag word is updated, and the lock is released" —
  // plus the double-update check: "it is important that the second process
  // be synchronized prior to being allowed to update the resource. This is
  // handled by also checking the synchronization bits after acquiring the
  // lock"):
  //
  //   lock -> pull-if-flagged -> apply caller's change -> copy to master ->
  //   flag the other sharing members -> unlock.
  //
  // File-descriptor updates are single-threaded by fupdsema_ (s_fupdsema)
  // and bracket a whole open/close/dup in the syscall layer; the small
  // scalar resources complete inside rupdlock_ (s_rupdlock).

  // Descriptor-table update bracket. Sequence in the syscall layer:
  //   LockFileUpdate(); PullFdsIfFlagged(p); <modify p.fds>;
  //   PublishFds(p); UnlockFileUpdate();
  void LockFileUpdate() SG_ACQUIRE(fupdsema_) {
    // The bracket is a sleeping acquisition even when TryP wins the fast
    // path, so declare the sleep intent before trying.
    lockdep::MaySleep("shaddr.LockFileUpdate");
    if (fupdsema_.TryP()) {
      lockdep::OnAcquire(FupdsemaClass(), this);
      return;  // uncontended: another member isn't mid-update
    }
    SG_OBS_INC("core.fupdsema_waits");
    obs::Trace(obs::TraceKind::kSemSleep, 1);
    (void)fupdsema_.P();  // uninterruptible: always kOk
    lockdep::OnAcquire(FupdsemaClass(), this);
  }
  void UnlockFileUpdate() SG_RELEASE(fupdsema_) {
    lockdep::OnRelease(FupdsemaClass(), this);
    fupdsema_.V();
  }
  void PullFdsIfFlagged(Proc& p) SG_REQUIRES(fupdsema_);
  void PublishFds(Proc& p) SG_REQUIRES(fupdsema_);

  // Scalar resources; null/unset arguments leave that field as-is.
  void UpdateDir(Proc& p, Inode* new_cwd, Inode* new_root);  // takes over the counted refs
  void UpdateIds(Proc& p, const uid_t* new_uid, const gid_t* new_gid);
  void UpdateUmask(Proc& p, mode_t value);
  void UpdateUlimit(Proc& p, u64 value);

  // Kernel-entry hook: tests p_flag in one AND; pulls whatever is flagged.
  // "When a shared process enters the system via a system call, the
  // collection of bits in p_flag is checked in a single test."
  void SyncOnKernelEntry(Proc& p);

  // Test/diagnostic accessors for the master copies.
  mode_t cmask() const;
  u64 limit() const;
  uid_t uid() const;
  gid_t gid() const;
  Inode* cdir() const;
  Inode* rdir() const;
  int OfileCount() const;

 private:
  // Lockdep class of the fupdsema_ bracket (the semaphore itself is a
  // generic counting primitive; the ordering class belongs to this use).
  static lockdep::ClassId FupdsemaClass() {
    static const lockdep::ClassId id =
        lockdep::RegisterClass("shaddr.fupdsema", lockdep::Kind::kSleep);
    return id;
  }

  // Sets `bit` in every member (except `self`) whose share mask includes
  // `resource`.
  void FlagOthers(Proc& self, u32 resource, u32 bit);

  // Kernel-entry pulls: refresh the member's private copy from the master.
  void PullDir(Proc& p);
  void PullIds(Proc& p);
  void PullUmask(Proc& p);
  void PullUlimit(Proc& p);

  Vfs& vfs_;
  SharedSpace space_;
  const u64 id_;  // assigned at creation, never reused

  mutable Spinlock listlock_{"shaddr.listlock"};    // s_listlock
  Proc* plink_ SG_GUARDED_BY(listlock_) = nullptr;  // s_plink
  u32 refcnt_ SG_GUARDED_BY(listlock_) = 0;         // s_refcnt

  Semaphore fupdsema_{1};  // s_fupdsema
  // s_ofile + s_pofile. Mutated only inside the fupdsema_ bracket, but the
  // vector itself is swapped/read under rupdlock_ so /proc snapshots can
  // walk it without joining the bracket.
  std::vector<FdEntry> ofile_ SG_GUARDED_BY(rupdlock_);

  mutable Spinlock rupdlock_{"shaddr.rupdlock"};  // s_rupdlock
  Inode* cdir_ SG_GUARDED_BY(rupdlock_) = nullptr;  // s_cdir
  Inode* rdir_ SG_GUARDED_BY(rupdlock_) = nullptr;  // s_rdir
  mode_t cmask_ SG_GUARDED_BY(rupdlock_) = 022;     // s_cmask
  u64 limit_ SG_GUARDED_BY(rupdlock_) = 0;          // s_limit
  uid_t uid_ SG_GUARDED_BY(rupdlock_) = 0;          // s_uid
  gid_t gid_ SG_GUARDED_BY(rupdlock_) = 0;          // s_gid
};

}  // namespace sg

#endif  // SRC_CORE_SHADDR_H_
