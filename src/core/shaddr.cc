#include "core/shaddr.h"

#include <algorithm>
#include <string>

#include "base/check.h"
#include "core/share_mask.h"
#include "inject/inject.h"
#include "sync/seqcount.h"
#include "sync/shared_read_lock.h"

namespace sg {

namespace {

// Is this pregion type sharable when a group forms? The PRDA never is
// ("certain small parts of a process's VM space are not shared", §5.1).
bool Sharable(const Pregion& pr) { return pr.region->type() != RegionType::kPrda; }

// Group ids are process-wide and never reused, so /proc/share names stay
// unambiguous across the lifetime of the simulation.
std::atomic<u64> g_next_group_id{1};

}  // namespace

ShaddrBlock::ShaddrBlock(Proc& creator, CpuSet& cpus, Vfs& vfs, rm::ResourceManager& rm)
    : vfs_(vfs),
      space_(cpus),
      id_(g_next_group_id.fetch_add(1, std::memory_order_relaxed)),
      rm_(rm),
      node_(rm.CreateNode()) {
  // Every region that joins the group image is pointed at the group's rm
  // node so resident pages count against the group's page cap.
  space_.set_page_charge(node_);
  // Move the creator's sharable pregions onto the shared list (§6.2: "When
  // a process first creates a share group all of its sharable pregions are
  // moved to the list of pregions in the shared address block"). Nobody
  // else can see the block yet, so no locking.
  auto& priv = creator.as.private_pregions();
  creator.as.InvalidatePrivateHint();  // the list is about to lose entries
  {
    UpdateGuard g(space_.lock());
    for (auto it = priv.begin(); it != priv.end();) {
      if (Sharable(**it)) {
        if ((*it)->base >= kArenaBase) {
          SG_CHECK(space_.va().Reserve((*it)->base, (*it)->region->pages()).ok());
        }
        // AttachPregion points the region at node_ (the page_charge_ set
        // above) and publishes the growing layout.
        space_.AttachPregion(std::move(*it));
        it = priv.erase(it);
      } else {
        ++it;
      }
    }
    space_.AddMemberTlb(&creator.as.tlb());
  }
  creator.as.set_shared(&space_);
  // Per-group lock stats: /proc/stat grows sharedlock.group<id>.* lines and
  // /proc/share/<id> reports this lock, not just the process-wide aggregate.
  space_.lock().SetName("group" + std::to_string(id_));

  // Seed the master resource copies, bumping the block's own references.
  // Slots start at gen 0 (< fd_gen_): nothing is newer than what the
  // creator, seeded fully synced below, already has.
  ofile_.reserve(creator.fds.slots().size());
  int used = 0;
  for (const FdEntry& e : creator.fds.slots()) {
    MasterFdSlot s;
    if (e.used()) {
      s.e = FdEntry{vfs_.files().Dup(e.file), e.close_on_exec};
      ++used;
    }
    ofile_.push_back(s);
  }
  ofile_count_.store(used, std::memory_order_release);
  // Forced charges: the founder's pre-existing usage can never bounce (no
  // cap is configurable before the group exists).
  node_->ChargeForced(rm::Resource::kFiles, static_cast<u64>(used));
  node_->ChargeForced(rm::Resource::kMembers, 1);
  cdir_ = vfs_.inodes().Iget(creator.cwd);
  rdir_ = vfs_.inodes().Iget(creator.rootdir);
  cmask_ = creator.umask;
  limit_ = creator.ulimit;
  uid_ = creator.uid;
  gid_ = creator.gid;

  // The master copies ARE the creator's current values, so the creator is
  // born synchronized (it may carry stale caches from an earlier group).
  creator.p_resgen = resgen_.load(std::memory_order_relaxed);
  creator.p_fd_synced_gen = fd_gen_;

  plink_ = &creator;
  creator.s_plink = nullptr;
  refcnt_ = 1;
  creator.rm_node.store(node_, std::memory_order_release);
  creator.shaddr = this;
  creator.p_shmask = PR_SALL;
}

ShaddrBlock::~ShaddrBlock() {
  // Cut every surviving image region loose from the rm node before the
  // node dies, and destroy any still-retired pregions while their charges
  // can still be returned. Text/SysV regions may outlive the block through
  // other owners (fork children, the IPC registry); after this their pages
  // are simply unaccounted.
  space_.TeardownRelease();
  space_.set_page_charge(nullptr);
  rm_.ReleaseNode(node_);
  for (const MasterFdSlot& s : ofile_) {
    if (s.e.used()) {
      vfs_.files().Release(s.e.file);
    }
  }
  if (cdir_ != nullptr) {
    vfs_.inodes().Iput(cdir_);
  }
  if (rdir_ != nullptr) {
    vfs_.inodes().Iput(rdir_);
  }
}

void ShaddrBlock::AddMember(Proc& child, u32 shmask) {
  // Identity first, link second: once the child hangs off plink_, chain
  // walkers (FlagOthers, the /proc snapshots) read its mask. The rm node
  // travels with the identity: the member schedules on the group's account
  // from its first instruction. (The caller already charged kMembers.)
  child.rm_node.store(node_, std::memory_order_release);
  child.shaddr = this;
  child.p_shmask = shmask;
  SG_INJECT_POINT("shaddr.attach.pre_link");
  if ((shmask & PR_SADDR) != 0) {
    UpdateGuard g(space_.lock());
    child.as.set_shared(&space_);
    space_.AddMemberTlb(&child.as.tlb());
  }
  SpinGuard g(listlock_);
  child.s_plink = plink_;
  plink_ = &child;
  ++refcnt_;
}

bool ShaddrBlock::TryAddMember(Proc& child, u32 shmask) {
  SG_CHECK((shmask & PR_SADDR) == 0);  // dynamic joins never share VM
  // Same identity-before-link order as AddMember. The caller (PR_JOINGROUP)
  // holds the kernel's block map lock, so the block cannot be destroyed
  // under us even when we lose the race below; undoing the identity on
  // failure touches only the caller's own fields.
  child.rm_node.store(node_, std::memory_order_release);
  child.shaddr = this;
  child.p_shmask = shmask;
  SG_INJECT_POINT("shaddr.tryattach.pre_refcnt");
  {
    SpinGuard g(listlock_);
    if (refcnt_ == 0) {
      // The last member's detach already dropped the count to zero under
      // this same lock: teardown is committed, and reviving the chain here
      // would resurrect a block whose owner is about to destroy it.
      child.shaddr = nullptr;
      child.p_shmask = 0;
      child.rm_node.store(nullptr, std::memory_order_release);
      return false;
    }
    child.s_plink = plink_;
    plink_ = &child;
    ++refcnt_;
  }
  return true;
}

Status ShaddrBlock::UnshareVm(Proc& p) {
  SG_CHECK(p.as.shared() == &space_);
  UpdateGuard g(space_.lock());

  // The caller's private allocator is pristine-by-construction while it
  // shares VM (only the PRDA lives privately, below the arena); rebuild it
  // and claim every range we are about to own.
  p.as.ResetVa();

  // The caller's own stack MOVES out of the shared image: its writes keep
  // working, other members lose access (like a fork child's stack, it is
  // "not visible in the share group virtual address space"). ExtractStackOf
  // bumps the layout seqcount, so a lockless faulter mid-resolution on the
  // stack revalidates and retries.
  if (auto stack = space_.ExtractStackOf(p.pid); stack != nullptr) {
    SG_CHECK(p.as.va().Reserve(stack->base, stack->region->pages()).ok());
    // The stack leaves the group image for good: return its resident
    // pages to the group's account.
    stack->region->SetCharge(nullptr);
    space_.va().Free(p.stack_base);
    p.as.AttachPrivate(std::move(stack));
  }

  // Copy-on-write snapshot of everything else, exactly the fork treatment.
  // One seqcount write section spans the COW marking and the shootdown: a
  // racing lockless faulter that installed a writable entry off the
  // pre-marking page table fails its re-check and undoes it.
  {
    SeqWriter w(space_.layout_seq());
    space_.ForEachPregion([&](Pregion& pr) {
      std::shared_ptr<Region> r;
      switch (pr.region->type()) {
        case RegionType::kText:
        case RegionType::kShm:
          r = pr.region;
          break;
        default:
          r = pr.region->DupCow();
          break;
      }
      auto copy = std::make_unique<Pregion>(std::move(r), pr.base, pr.prot);
      copy->stack_owner = pr.stack_owner;
      if (pr.base >= kArenaBase) {
        SG_CHECK(p.as.va().Reserve(pr.base, pr.region->pages()).ok());
      }
      p.as.AttachPrivate(std::move(copy));
    });
    // COW marking revoked write permission group-wide; the moved stack
    // vanished from the shared image: flush everyone, then detach.
    space_.ShootdownAll();
  }
  space_.RemoveMemberTlb(&p.as.tlb());
  p.as.set_shared(nullptr);
  p.as.tlb().FlushAll();
  p.p_shmask &= ~PR_SADDR;
  return Status::Ok();
}

Status ShaddrBlock::ShadowDataPrivately(Proc& p) {
  SG_CHECK(p.as.shared() == &space_);
  UpdateGuard g(space_.lock());
  Pregion* data = space_.FindByType(RegionType::kData);
  if (data == nullptr) {
    return Errno::kEINVAL;
  }
  // The COW marking write-protects the shared data pages for everyone;
  // bracket it with the shootdown (see UnshareVm).
  SeqWriter w(space_.layout_seq());
  auto copy = std::make_unique<Pregion>(data->region->DupCow(), data->base, data->prot);
  p.as.AttachPrivate(std::move(copy));
  space_.ShootdownAll();
  return Status::Ok();
}

bool ShaddrBlock::RemoveMember(Proc& p) {
  SG_INJECT_POINT("shaddr.detach.pre_refcnt");
  if ((p.p_shmask & PR_SADDR) != 0 && p.as.shared() == &space_) {
    UpdateGuard g(space_.lock());
    // Drop this member's stack from the shared image. Its frames are freed
    // only at the quiescence point below, so the shootdown still strictly
    // precedes the free; a lockless faulter that raced the extraction
    // fails its seqcount re-check and cannot keep a stale translation.
    if (auto stack = space_.ExtractStackOf(p.pid); stack != nullptr) {
      space_.ShootdownAll();
      space_.va().Free(stack->base);
      space_.RetirePregion(std::move(stack));
    }
    // RemoveMemberTlb republishes the narrower member set and waits out
    // every reader of the old snapshot — which also reclaims the retired
    // stack above before this member's translation context goes away.
    space_.RemoveMemberTlb(&p.as.tlb());
    p.as.set_shared(nullptr);
    p.as.tlb().FlushAll();
  }
  // Clear the membership identity BEFORE the unlink (the inverse of the
  // attach order): from here on FlagOthers skips us and a PR_JOINGROUP
  // aimed at us reads null instead of a block whose count may be about to
  // hit zero. The unlink and the drop-to-zero stay atomic under listlock_,
  // which is what TryAddMember's refcnt_ == 0 test relies on. The rm node
  // reference is cleared here too — on the member's own thread, before the
  // refcount can reach zero — so no scheduler call of this process can
  // touch the node once teardown may destroy it.
  p.shaddr = nullptr;
  p.p_shmask = 0;
  p.rm_node.store(nullptr, std::memory_order_release);
  p.p_flag.fetch_and(~kPfSyncAny, std::memory_order_acq_rel);
  node_->Uncharge(rm::Resource::kMembers, 1);
  SG_INJECT_POINT("shaddr.detach.pre_unlink");
  bool last;
  {
    SpinGuard g(listlock_);
    Proc** link = &plink_;
    while (*link != nullptr && *link != &p) {
      link = &(*link)->s_plink;
    }
    SG_CHECK(*link == &p);
    *link = p.s_plink;
    p.s_plink = nullptr;
    SG_CHECK(refcnt_ > 0);
    last = (--refcnt_ == 0);
  }
  SG_INJECT_POINT("shaddr.detach.post_unlink");
  return last;
}

u32 ShaddrBlock::refcnt() const {
  SpinGuard g(listlock_);
  return refcnt_;
}

void ShaddrBlock::FlagOthers(Proc& self, u32 resource, u32 bit) {
  u64 flagged = 0;
  {
    SpinGuard g(listlock_);
    for (Proc* m = plink_; m != nullptr; m = m->s_plink) {
      if (m != &self && (m->p_shmask & resource) != 0) {
        m->p_flag.fetch_or(bit, std::memory_order_acq_rel);
        ++flagged;
      }
    }
  }
  if (flagged > 0) {
    SG_OBS_ADD("core.sync_flags_set", flagged);
  }
}

// ----- generation plumbing (DESIGN.md §4f) -----

u64 ShaddrBlock::BumpScalarLane(ResLane lane) {
  // CAS rather than fetch_add: a plain RMW could carry into the neighbor
  // lane, and the fds lane is stored under a different lock (fupdsema_)
  // than the scalar lanes (rupdlock_), so lanes do race each other. The
  // release half publishes the master value written just before the bump;
  // pullers re-read it under rupdlock_ anyway, so this only makes the
  // staleness check timely, never load-bearing for the data itself.
  u64 cur = resgen_.load(std::memory_order_relaxed);
  u64 next = 0;
  u64 value = 0;
  do {
    value = (LaneGet(cur, lane) + 1) & (LaneLimit(lane) - 1);
    next = LaneSet(cur, lane, value);
  } while (!resgen_.compare_exchange_weak(cur, next, std::memory_order_acq_rel,
                                          std::memory_order_relaxed));
  SG_OBS_INC("core.scalar_gen_bumps");
  if (value == 0) {
    SG_OBS_INC("core.scalar_gen_wraps");
  }
  return value;
}

void ShaddrBlock::StoreFdsLane(u64 fd_gen) {
  u64 cur = resgen_.load(std::memory_order_relaxed);
  u64 next = 0;
  do {
    next = LaneSet(cur, kLaneFds, fd_gen);
  } while (!resgen_.compare_exchange_weak(cur, next, std::memory_order_acq_rel,
                                          std::memory_order_relaxed));
}

// ----- file descriptors (under fupdsema_) -----

void ShaddrBlock::PullFdsIfFlagged(Proc& p) {
  // A set kPfSyncFds bit forces a full-table reconcile: PR_JOINGROUP
  // joiners carry arbitrary private tables (and an unrelated synced-gen
  // from a previous group), and the lane-wrap fallback routes members too
  // far behind for the word compare through here as well.
  const bool forced = (p.p_flag.load(std::memory_order_acquire) & kPfSyncFds) != 0;
  if (!forced && p.p_fd_synced_gen == fd_gen_) {
    return;  // current: nothing published since we last synchronized
  }
  SG_INJECT_POINT("shaddr.fds.delta_pull");
  u64 pulled = 0;
  const auto n = std::min(ofile_.size(), p.fds.slots().size());
  for (u32 i = 0; i < n; ++i) {
    const MasterFdSlot& s = ofile_[i];
    if (!forced && s.gen <= p.p_fd_synced_gen) {
      continue;  // slot untouched since our last sync
    }
    FdEntry& mine = p.fds.slots()[i];
    if (mine.file == s.e.file) {
      // Same open-file instance: adopt the flag byte, no refcount traffic.
      if (mine.close_on_exec != s.e.close_on_exec) {
        mine.close_on_exec = s.e.close_on_exec;
        ++pulled;
      }
      continue;
    }
    if (mine.used()) {
      vfs_.files().Release(mine.file);
    }
    mine = s.e.used() ? FdEntry{vfs_.files().Dup(s.e.file), s.e.close_on_exec} : FdEntry{};
    ++pulled;
  }
  p.p_fd_synced_gen = fd_gen_;
  p.p_resgen = LaneSet(p.p_resgen, kLaneFds, fd_gen_);
  p.p_flag.fetch_and(~kPfSyncFds, std::memory_order_acq_rel);
  if (pulled > 0) {
    SG_OBS_ADD("core.fds.delta_pulled_slots", pulled);
  }
}

void ShaddrBlock::PublishFds(Proc& p) {
  SG_INJECT_POINT("shaddr.fds.delta_publish");
  // Diff the member's table against the master and retarget only changed
  // slots. fupdsema_ single-threads every reader and writer of ofile_; the
  // /proc snapshot reads the atomic ofile_count_ instead of walking us.
  u64 changed = 0;
  int used_delta = 0;
  const auto n = std::min(ofile_.size(), p.fds.slots().size());
  for (u32 i = 0; i < n; ++i) {
    MasterFdSlot& s = ofile_[i];
    const FdEntry& mine = p.fds.slots()[i];
    if (s.e.file == mine.file && s.e.close_on_exec == mine.close_on_exec) {
      continue;
    }
    if (changed == 0) {
      ++fd_gen_;  // one fresh stamp per publish that changes anything
    }
    if (s.e.file != mine.file) {
      OpenFile* displaced = s.e.file;  // may be null
      s.e.file = mine.used() ? vfs_.files().Dup(mine.file) : nullptr;
      used_delta += (s.e.file != nullptr ? 1 : 0) - (displaced != nullptr ? 1 : 0);
      if (displaced != nullptr) {
        vfs_.files().Release(displaced);
      }
    }
    s.e.close_on_exec = mine.close_on_exec;
    s.gen = fd_gen_;
    ++changed;
  }
  if (changed > 0) {
    if (used_delta != 0) {
      ofile_count_.fetch_add(used_delta, std::memory_order_acq_rel);
      // kFiles tracks the master table exactly, and only from inside this
      // single-threaded bracket. Forced: the cap was already enforced as a
      // headroom check at the syscall seam (kernel_fs.cc), so the publish
      // itself must never bounce.
      if (used_delta > 0) {
        node_->ChargeForced(rm::Resource::kFiles, static_cast<u64>(used_delta));
      } else {
        node_->Uncharge(rm::Resource::kFiles, static_cast<u64>(-used_delta));
      }
    }
    StoreFdsLane(fd_gen_);
    SG_OBS_ADD("core.fds.delta_published_slots", changed);
    if (LaneGet(fd_gen_, kLaneFds) == 0) {
      // The 16-bit lane mirror just wrapped: a member 2^16 publishes
      // behind could alias the word compare, so fall back to the paper's
      // O(members) flagging — its forced pull ignores generations.
      SG_OBS_INC("core.scalar_gen_wraps");
      FlagOthers(p, PR_SFDS, kPfSyncFds);
    }
  }
  // The publisher is by construction fully synchronized with what it just
  // published (PullFdsIfFlagged ran first inside this same bracket).
  p.p_fd_synced_gen = fd_gen_;
  p.p_resgen = LaneSet(p.p_resgen, kLaneFds, fd_gen_);
  p.p_flag.fetch_and(~kPfSyncFds, std::memory_order_acq_rel);
}

// ----- scalar resources (under rupdlock_) -----

void ShaddrBlock::UpdateDir(Proc& p, Inode* new_cwd, Inode* new_root) {
  // Inode refcounts live under the inode-table mutex, which may block, so
  // it must be taken BEFORE the spinlock (the reverse order slept inside
  // rupdlock_ — caught by sgcheck sleep-in-atomic and lockdep).
  InodeTable& inodes = vfs_.inodes();
  auto tbl = inodes.Acquire();
  SpinGuard g(rupdlock_);
  // Double-update check (generation form): refresh from the master before
  // applying our own change, so a concurrent chroot by another member is
  // not clobbered by our chdir (and vice versa).
  if (LaneGet(resgen_.load(std::memory_order_relaxed), kLaneDir) !=
          LaneGet(p.p_resgen, kLaneDir) ||
      (p.p_flag.load(std::memory_order_acquire) & kPfSyncDir) != 0) {
    inodes.IputLocked(p.cwd);
    inodes.IputLocked(p.rootdir);
    p.cwd = inodes.IgetLocked(cdir_);
    p.rootdir = inodes.IgetLocked(rdir_);
  }
  if (new_cwd != nullptr) {
    inodes.IputLocked(p.cwd);
    p.cwd = new_cwd;  // counted ref transferred from the caller
  }
  if (new_root != nullptr) {
    inodes.IputLocked(p.rootdir);
    p.rootdir = new_root;
  }
  // Copy to the master (swap the block's references) and bump the lane —
  // O(1) in group size; members notice via the word compare at entry.
  inodes.IputLocked(cdir_);
  inodes.IputLocked(rdir_);
  cdir_ = inodes.IgetLocked(p.cwd);
  rdir_ = inodes.IgetLocked(p.rootdir);
  const u64 lane = BumpScalarLane(kLaneDir);
  p.p_resgen = LaneSet(p.p_resgen, kLaneDir, lane);
  p.p_flag.fetch_and(~kPfSyncDir, std::memory_order_acq_rel);
  if (lane == 0) {
    FlagOthers(p, PR_SDIR, kPfSyncDir);  // wrap fallback (see BumpScalarLane)
  }
}

void ShaddrBlock::PullDir(Proc& p) {
  // Same lock order as UpdateDir: inode-table mutex first, spinlock inside.
  InodeTable& inodes = vfs_.inodes();
  auto tbl = inodes.Acquire();
  SpinGuard g(rupdlock_);
  inodes.IputLocked(p.cwd);
  inodes.IputLocked(p.rootdir);
  p.cwd = inodes.IgetLocked(cdir_);
  p.rootdir = inodes.IgetLocked(rdir_);
  p.p_resgen =
      LaneSet(p.p_resgen, kLaneDir, LaneGet(resgen_.load(std::memory_order_relaxed), kLaneDir));
  p.p_flag.fetch_and(~kPfSyncDir, std::memory_order_acq_rel);
  SG_OBS_INC("core.scalar_gen_pulls");
}

void ShaddrBlock::UpdateIds(Proc& p, const uid_t* new_uid, const gid_t* new_gid) {
  SpinGuard g(rupdlock_);
  if (LaneGet(resgen_.load(std::memory_order_relaxed), kLaneId) != LaneGet(p.p_resgen, kLaneId) ||
      (p.p_flag.load(std::memory_order_acquire) & kPfSyncId) != 0) {
    p.uid = uid_;
    p.gid = gid_;
  }
  if (new_uid != nullptr) {
    p.uid = *new_uid;
  }
  if (new_gid != nullptr) {
    p.gid = *new_gid;
  }
  uid_ = p.uid;
  gid_ = p.gid;
  const u64 lane = BumpScalarLane(kLaneId);
  p.p_resgen = LaneSet(p.p_resgen, kLaneId, lane);
  p.p_flag.fetch_and(~kPfSyncId, std::memory_order_acq_rel);
  if (lane == 0) {
    FlagOthers(p, PR_SID, kPfSyncId);
  }
}

void ShaddrBlock::PullIds(Proc& p) {
  SpinGuard g(rupdlock_);
  p.uid = uid_;
  p.gid = gid_;
  p.p_resgen =
      LaneSet(p.p_resgen, kLaneId, LaneGet(resgen_.load(std::memory_order_relaxed), kLaneId));
  p.p_flag.fetch_and(~kPfSyncId, std::memory_order_acq_rel);
  SG_OBS_INC("core.scalar_gen_pulls");
}

void ShaddrBlock::UpdateUmask(Proc& p, mode_t value) {
  SpinGuard g(rupdlock_);
  p.umask = static_cast<mode_t>(value & kModeAll);
  cmask_ = p.umask;
  const u64 lane = BumpScalarLane(kLaneUmask);
  p.p_resgen = LaneSet(p.p_resgen, kLaneUmask, lane);
  p.p_flag.fetch_and(~kPfSyncUmask, std::memory_order_acq_rel);
  if (lane == 0) {
    FlagOthers(p, PR_SUMASK, kPfSyncUmask);
  }
}

void ShaddrBlock::PullUmask(Proc& p) {
  SpinGuard g(rupdlock_);
  p.umask = cmask_;
  p.p_resgen =
      LaneSet(p.p_resgen, kLaneUmask, LaneGet(resgen_.load(std::memory_order_relaxed), kLaneUmask));
  p.p_flag.fetch_and(~kPfSyncUmask, std::memory_order_acq_rel);
  SG_OBS_INC("core.scalar_gen_pulls");
}

void ShaddrBlock::UpdateUlimit(Proc& p, u64 value) {
  SpinGuard g(rupdlock_);
  p.ulimit = value;
  limit_ = value;
  const u64 lane = BumpScalarLane(kLaneUlimit);
  p.p_resgen = LaneSet(p.p_resgen, kLaneUlimit, lane);
  p.p_flag.fetch_and(~kPfSyncUlimit, std::memory_order_acq_rel);
  if (lane == 0) {
    FlagOthers(p, PR_SULIMIT, kPfSyncUlimit);
  }
}

void ShaddrBlock::PullUlimit(Proc& p) {
  SpinGuard g(rupdlock_);
  p.ulimit = limit_;
  p.p_resgen = LaneSet(p.p_resgen, kLaneUlimit,
                       LaneGet(resgen_.load(std::memory_order_relaxed), kLaneUlimit));
  p.p_flag.fetch_and(~kPfSyncUlimit, std::memory_order_acq_rel);
  SG_OBS_INC("core.scalar_gen_pulls");
}

void ShaddrBlock::SyncOnKernelEntry(Proc& p) {
  // The fast path keeps §6.3's property ("the collection of bits in p_flag
  // is checked in a single test ... thus lowering the system call overhead
  // for most system calls"): one packed-word compare covers every
  // generation lane, plus the legacy bit AND for the forced-resync paths
  // (PR_JOINGROUP, lane wrap, signal/teardown users of the bits).
  const u64 word = resgen_.load(std::memory_order_acquire);
  const u32 flags = p.p_flag.load(std::memory_order_acquire);
  if (word == p.p_resgen && (flags & kPfSyncAny) == 0) {
    return;
  }
  SG_OBS_INC("core.sync_pulls");
  obs::Trace(obs::TraceKind::kResourceSync, flags & kPfSyncAny);
  const u32 mask = p.p_shmask.load(std::memory_order_acquire);
  const auto stale = [&](ResLane lane, u32 bit) {
    return LaneGet(word, lane) != LaneGet(p.p_resgen, lane) || (flags & bit) != 0;
  };
  // For a resource this member does NOT share, the master is irrelevant:
  // adopt the lane (so the word compare recovers, e.g. after PR_UNSHARE)
  // and drop any stray forced bit.
  const auto adopt = [&](ResLane lane, u32 bit) {
    p.p_resgen = LaneSet(p.p_resgen, lane, LaneGet(word, lane));
    if ((flags & bit) != 0) {
      p.p_flag.fetch_and(~bit, std::memory_order_acq_rel);
    }
  };
  if (stale(kLaneFds, kPfSyncFds)) {
    if ((mask & PR_SFDS) != 0) {
      LockFileUpdate();
      PullFdsIfFlagged(p);
      UnlockFileUpdate();
    } else {
      adopt(kLaneFds, kPfSyncFds);
    }
  }
  if (stale(kLaneDir, kPfSyncDir)) {
    if ((mask & PR_SDIR) != 0) {
      PullDir(p);
    } else {
      adopt(kLaneDir, kPfSyncDir);
    }
  }
  if (stale(kLaneId, kPfSyncId)) {
    if ((mask & PR_SID) != 0) {
      PullIds(p);
    } else {
      adopt(kLaneId, kPfSyncId);
    }
  }
  if (stale(kLaneUmask, kPfSyncUmask)) {
    if ((mask & PR_SUMASK) != 0) {
      PullUmask(p);
    } else {
      adopt(kLaneUmask, kPfSyncUmask);
    }
  }
  if (stale(kLaneUlimit, kPfSyncUlimit)) {
    if ((mask & PR_SULIMIT) != 0) {
      PullUlimit(p);
    } else {
      adopt(kLaneUlimit, kPfSyncUlimit);
    }
  }
}

// ----- diagnostics -----

mode_t ShaddrBlock::cmask() const {
  SpinGuard g(rupdlock_);
  return cmask_;
}

u64 ShaddrBlock::limit() const {
  SpinGuard g(rupdlock_);
  return limit_;
}

uid_t ShaddrBlock::uid() const {
  SpinGuard g(rupdlock_);
  return uid_;
}

gid_t ShaddrBlock::gid() const {
  SpinGuard g(rupdlock_);
  return gid_;
}

Inode* ShaddrBlock::cdir() const {
  SpinGuard g(rupdlock_);
  return cdir_;
}

Inode* ShaddrBlock::rdir() const {
  SpinGuard g(rupdlock_);
  return rdir_;
}

}  // namespace sg
