#include "core/shaddr.h"

#include <string>

#include "base/check.h"
#include "core/share_mask.h"
#include "inject/inject.h"
#include "sync/shared_read_lock.h"

namespace sg {

namespace {

// Is this pregion type sharable when a group forms? The PRDA never is
// ("certain small parts of a process's VM space are not shared", §5.1).
bool Sharable(const Pregion& pr) { return pr.region->type() != RegionType::kPrda; }

// Group ids are process-wide and never reused, so /proc/share names stay
// unambiguous across the lifetime of the simulation.
std::atomic<u64> g_next_group_id{1};

}  // namespace

ShaddrBlock::ShaddrBlock(Proc& creator, CpuSet& cpus, Vfs& vfs)
    : vfs_(vfs),
      space_(cpus),
      id_(g_next_group_id.fetch_add(1, std::memory_order_relaxed)) {
  // Move the creator's sharable pregions onto the shared list (§6.2: "When
  // a process first creates a share group all of its sharable pregions are
  // moved to the list of pregions in the shared address block"). Nobody
  // else can see the block yet, so no locking.
  auto& priv = creator.as.private_pregions();
  creator.as.InvalidatePrivateHint();  // the list is about to lose entries
  for (auto it = priv.begin(); it != priv.end();) {
    if (Sharable(**it)) {
      if ((*it)->base >= kArenaBase) {
        SG_CHECK(space_.va().Reserve((*it)->base, (*it)->region->pages()).ok());
      }
      space_.pregions().push_back(std::move(*it));
      it = priv.erase(it);
    } else {
      ++it;
    }
  }
  creator.as.set_shared(&space_);
  // Per-group lock stats: /proc/stat grows sharedlock.group<id>.* lines and
  // /proc/share/<id> reports this lock, not just the process-wide aggregate.
  space_.lock().SetName("group" + std::to_string(id_));
  space_.AddMemberTlb(&creator.as.tlb());

  // Seed the master resource copies, bumping the block's own references.
  for (const FdEntry& e : creator.fds.slots()) {
    ofile_.push_back(e.used() ? FdEntry{vfs_.files().Dup(e.file), e.close_on_exec} : FdEntry{});
  }
  cdir_ = vfs_.inodes().Iget(creator.cwd);
  rdir_ = vfs_.inodes().Iget(creator.rootdir);
  cmask_ = creator.umask;
  limit_ = creator.ulimit;
  uid_ = creator.uid;
  gid_ = creator.gid;

  plink_ = &creator;
  creator.s_plink = nullptr;
  refcnt_ = 1;
  creator.shaddr = this;
  creator.p_shmask = PR_SALL;
}

ShaddrBlock::~ShaddrBlock() {
  for (const FdEntry& e : ofile_) {
    if (e.used()) {
      vfs_.files().Release(e.file);
    }
  }
  if (cdir_ != nullptr) {
    vfs_.inodes().Iput(cdir_);
  }
  if (rdir_ != nullptr) {
    vfs_.inodes().Iput(rdir_);
  }
}

void ShaddrBlock::AddMember(Proc& child, u32 shmask) {
  // Identity first, link second: once the child hangs off plink_, chain
  // walkers (FlagOthers, the /proc snapshots) read its mask.
  child.shaddr = this;
  child.p_shmask = shmask;
  SG_INJECT_POINT("shaddr.attach.pre_link");
  if ((shmask & PR_SADDR) != 0) {
    UpdateGuard g(space_.lock());
    child.as.set_shared(&space_);
    space_.AddMemberTlb(&child.as.tlb());
  }
  SpinGuard g(listlock_);
  child.s_plink = plink_;
  plink_ = &child;
  ++refcnt_;
}

bool ShaddrBlock::TryAddMember(Proc& child, u32 shmask) {
  SG_CHECK((shmask & PR_SADDR) == 0);  // dynamic joins never share VM
  // Same identity-before-link order as AddMember. The caller (PR_JOINGROUP)
  // holds the kernel's block map lock, so the block cannot be destroyed
  // under us even when we lose the race below; undoing the identity on
  // failure touches only the caller's own fields.
  child.shaddr = this;
  child.p_shmask = shmask;
  SG_INJECT_POINT("shaddr.tryattach.pre_refcnt");
  {
    SpinGuard g(listlock_);
    if (refcnt_ == 0) {
      // The last member's detach already dropped the count to zero under
      // this same lock: teardown is committed, and reviving the chain here
      // would resurrect a block whose owner is about to destroy it.
      child.shaddr = nullptr;
      child.p_shmask = 0;
      return false;
    }
    child.s_plink = plink_;
    plink_ = &child;
    ++refcnt_;
  }
  return true;
}

Status ShaddrBlock::UnshareVm(Proc& p) {
  SG_CHECK(p.as.shared() == &space_);
  UpdateGuard g(space_.lock());
  auto& shared = space_.pregions();

  // The caller's private allocator is pristine-by-construction while it
  // shares VM (only the PRDA lives privately, below the arena); rebuild it
  // and claim every range we are about to own.
  p.as.ResetVa();

  // The caller's own stack MOVES out of the shared image: its writes keep
  // working, other members lose access (like a fork child's stack, it is
  // "not visible in the share group virtual address space").
  for (auto it = shared.begin(); it != shared.end(); ++it) {
    if ((*it)->region->type() == RegionType::kStack && (*it)->stack_owner == p.pid) {
      SG_CHECK(p.as.va().Reserve((*it)->base, (*it)->region->pages()).ok());
      p.as.AttachPrivate(std::move(*it));
      shared.erase(it);
      space_.va().Free(p.stack_base);
      break;
    }
  }

  // Copy-on-write snapshot of everything else, exactly the fork treatment.
  for (auto& pr : shared) {
    std::shared_ptr<Region> r;
    switch (pr->region->type()) {
      case RegionType::kText:
      case RegionType::kShm:
        r = pr->region;
        break;
      default:
        r = pr->region->DupCow();
        break;
    }
    auto copy = std::make_unique<Pregion>(std::move(r), pr->base, pr->prot);
    copy->stack_owner = pr->stack_owner;
    if (pr->base >= kArenaBase) {
      SG_CHECK(p.as.va().Reserve(pr->base, pr->region->pages()).ok());
    }
    p.as.AttachPrivate(std::move(copy));
  }

  // COW marking revoked write permission group-wide; the moved stack
  // vanished from the shared image: flush everyone, then detach.
  space_.ShootdownAll();
  space_.RemoveMemberTlb(&p.as.tlb());
  p.as.set_shared(nullptr);
  p.as.tlb().FlushAll();
  p.p_shmask &= ~PR_SADDR;
  return Status::Ok();
}

Status ShaddrBlock::ShadowDataPrivately(Proc& p) {
  SG_CHECK(p.as.shared() == &space_);
  UpdateGuard g(space_.lock());
  Pregion* data = nullptr;
  for (auto& pr : space_.pregions()) {
    if (pr->region->type() == RegionType::kData) {
      data = pr.get();
      break;
    }
  }
  if (data == nullptr) {
    return Errno::kEINVAL;
  }
  auto copy = std::make_unique<Pregion>(data->region->DupCow(), data->base, data->prot);
  p.as.AttachPrivate(std::move(copy));
  // The COW marking write-protected the shared data pages for everyone.
  space_.ShootdownAll();
  return Status::Ok();
}

bool ShaddrBlock::RemoveMember(Proc& p) {
  SG_INJECT_POINT("shaddr.detach.pre_refcnt");
  if ((p.p_shmask & PR_SADDR) != 0 && p.as.shared() == &space_) {
    UpdateGuard g(space_.lock());
    // Drop this member's stack from the shared image. Its frames are about
    // to be freed, so the synchronous all-processor flush comes first.
    auto& list = space_.pregions();
    for (auto it = list.begin(); it != list.end(); ++it) {
      if ((*it)->region->type() == RegionType::kStack && (*it)->stack_owner == p.pid) {
        space_.ShootdownAll();
        const vaddr_t base = (*it)->base;
        list.erase(it);
        space_.va().Free(base);
        break;
      }
    }
    space_.RemoveMemberTlb(&p.as.tlb());
    p.as.set_shared(nullptr);
    p.as.tlb().FlushAll();
  }
  // Clear the membership identity BEFORE the unlink (the inverse of the
  // attach order): from here on FlagOthers skips us and a PR_JOINGROUP
  // aimed at us reads null instead of a block whose count may be about to
  // hit zero. The unlink and the drop-to-zero stay atomic under listlock_,
  // which is what TryAddMember's refcnt_ == 0 test relies on.
  p.shaddr = nullptr;
  p.p_shmask = 0;
  p.p_flag.fetch_and(~kPfSyncAny, std::memory_order_acq_rel);
  SG_INJECT_POINT("shaddr.detach.pre_unlink");
  bool last;
  {
    SpinGuard g(listlock_);
    Proc** link = &plink_;
    while (*link != nullptr && *link != &p) {
      link = &(*link)->s_plink;
    }
    SG_CHECK(*link == &p);
    *link = p.s_plink;
    p.s_plink = nullptr;
    SG_CHECK(refcnt_ > 0);
    last = (--refcnt_ == 0);
  }
  SG_INJECT_POINT("shaddr.detach.post_unlink");
  return last;
}

u32 ShaddrBlock::refcnt() const {
  SpinGuard g(listlock_);
  return refcnt_;
}

void ShaddrBlock::FlagOthers(Proc& self, u32 resource, u32 bit) {
  u64 flagged = 0;
  {
    SpinGuard g(listlock_);
    for (Proc* m = plink_; m != nullptr; m = m->s_plink) {
      if (m != &self && (m->p_shmask & resource) != 0) {
        m->p_flag.fetch_or(bit, std::memory_order_acq_rel);
        ++flagged;
      }
    }
  }
  if (flagged > 0) {
    SG_OBS_ADD("core.sync_flags_set", flagged);
  }
}

// ----- file descriptors (under fupdsema_) -----

void ShaddrBlock::PullFdsIfFlagged(Proc& p) {
  if ((p.p_flag.load(std::memory_order_acquire) & kPfSyncFds) == 0) {
    return;
  }
  SG_INJECT_POINT("shaddr.fds.pull");
  // Wholesale replace: release the stale table, duplicate the master.
  for (FdEntry& e : p.fds.slots()) {
    if (e.used()) {
      vfs_.files().Release(e.file);
      e = FdEntry{};
    }
  }
  // Snapshot the master under rupdlock_ — plain FdEntry copies only, no
  // refcount traffic under the spinlock. Duplicating outside the lock is
  // safe because fupdsema_ (held by our caller) excludes the only writer
  // (PublishFds), so the snapshotted entries stay pinned.
  std::vector<FdEntry> master;
  {
    SpinGuard g(rupdlock_);
    master = ofile_;
  }
  for (u32 i = 0; i < master.size() && i < p.fds.slots().size(); ++i) {
    if (master[i].used()) {
      p.fds.slots()[i] = FdEntry{vfs_.files().Dup(master[i].file), master[i].close_on_exec};
    }
  }
  p.p_flag.fetch_and(~kPfSyncFds, std::memory_order_acq_rel);
}

void ShaddrBlock::PublishFds(Proc& p) {
  SG_INJECT_POINT("shaddr.fds.publish");
  // Writers are single-threaded by fupdsema_, but OfileCount (the /proc
  // snapshot path) reads the master table from outside that bracket.
  // Build the replacement aside and swap it in under rupdlock_ so a
  // concurrent reader never walks the vector mid-rebuild (growing it in
  // place can reallocate the storage under the reader's feet); drop the
  // displaced references only after the swap, outside the spinlock.
  std::vector<FdEntry> fresh;
  fresh.reserve(p.fds.slots().size());
  for (const FdEntry& e : p.fds.slots()) {
    fresh.push_back(e.used() ? FdEntry{vfs_.files().Dup(e.file), e.close_on_exec} : FdEntry{});
  }
  {
    SpinGuard g(rupdlock_);
    ofile_.swap(fresh);
  }
  for (const FdEntry& e : fresh) {
    if (e.used()) {
      vfs_.files().Release(e.file);
    }
  }
  p.p_flag.fetch_and(~kPfSyncFds, std::memory_order_acq_rel);
  FlagOthers(p, PR_SFDS, kPfSyncFds);
}

// ----- scalar resources (under rupdlock_) -----

void ShaddrBlock::UpdateDir(Proc& p, Inode* new_cwd, Inode* new_root) {
  SpinGuard g(rupdlock_);
  // Double-update check: refresh from the master before applying our own
  // change, so a concurrent chroot by another member is not clobbered by
  // our chdir (and vice versa).
  if ((p.p_flag.load(std::memory_order_acquire) & kPfSyncDir) != 0) {
    vfs_.inodes().Iput(p.cwd);
    vfs_.inodes().Iput(p.rootdir);
    p.cwd = vfs_.inodes().Iget(cdir_);
    p.rootdir = vfs_.inodes().Iget(rdir_);
  }
  if (new_cwd != nullptr) {
    vfs_.inodes().Iput(p.cwd);
    p.cwd = new_cwd;  // counted ref transferred from the caller
  }
  if (new_root != nullptr) {
    vfs_.inodes().Iput(p.rootdir);
    p.rootdir = new_root;
  }
  // Copy to the master (swap the block's references).
  vfs_.inodes().Iput(cdir_);
  vfs_.inodes().Iput(rdir_);
  cdir_ = vfs_.inodes().Iget(p.cwd);
  rdir_ = vfs_.inodes().Iget(p.rootdir);
  p.p_flag.fetch_and(~kPfSyncDir, std::memory_order_acq_rel);
  FlagOthers(p, PR_SDIR, kPfSyncDir);
}

void ShaddrBlock::PullDir(Proc& p) {
  SpinGuard g(rupdlock_);
  vfs_.inodes().Iput(p.cwd);
  vfs_.inodes().Iput(p.rootdir);
  p.cwd = vfs_.inodes().Iget(cdir_);
  p.rootdir = vfs_.inodes().Iget(rdir_);
  p.p_flag.fetch_and(~kPfSyncDir, std::memory_order_acq_rel);
}

void ShaddrBlock::UpdateIds(Proc& p, const uid_t* new_uid, const gid_t* new_gid) {
  SpinGuard g(rupdlock_);
  if ((p.p_flag.load(std::memory_order_acquire) & kPfSyncId) != 0) {
    p.uid = uid_;
    p.gid = gid_;
  }
  if (new_uid != nullptr) {
    p.uid = *new_uid;
  }
  if (new_gid != nullptr) {
    p.gid = *new_gid;
  }
  uid_ = p.uid;
  gid_ = p.gid;
  p.p_flag.fetch_and(~kPfSyncId, std::memory_order_acq_rel);
  FlagOthers(p, PR_SID, kPfSyncId);
}

void ShaddrBlock::PullIds(Proc& p) {
  SpinGuard g(rupdlock_);
  p.uid = uid_;
  p.gid = gid_;
  p.p_flag.fetch_and(~kPfSyncId, std::memory_order_acq_rel);
}

void ShaddrBlock::UpdateUmask(Proc& p, mode_t value) {
  SpinGuard g(rupdlock_);
  p.umask = static_cast<mode_t>(value & kModeAll);
  cmask_ = p.umask;
  p.p_flag.fetch_and(~kPfSyncUmask, std::memory_order_acq_rel);
  FlagOthers(p, PR_SUMASK, kPfSyncUmask);
}

void ShaddrBlock::PullUmask(Proc& p) {
  SpinGuard g(rupdlock_);
  p.umask = cmask_;
  p.p_flag.fetch_and(~kPfSyncUmask, std::memory_order_acq_rel);
}

void ShaddrBlock::UpdateUlimit(Proc& p, u64 value) {
  SpinGuard g(rupdlock_);
  p.ulimit = value;
  limit_ = value;
  p.p_flag.fetch_and(~kPfSyncUlimit, std::memory_order_acq_rel);
  FlagOthers(p, PR_SULIMIT, kPfSyncUlimit);
}

void ShaddrBlock::PullUlimit(Proc& p) {
  SpinGuard g(rupdlock_);
  p.ulimit = limit_;
  p.p_flag.fetch_and(~kPfSyncUlimit, std::memory_order_acq_rel);
}

void ShaddrBlock::SyncOnKernelEntry(Proc& p) {
  // The fast path is this single test (§6.3: "if any are set then a routine
  // to handle the synchronization is called ... thus lowering the system
  // call overhead for most system calls").
  const u32 flags = p.p_flag.load(std::memory_order_acquire);
  if ((flags & kPfSyncAny) == 0) {
    return;
  }
  SG_OBS_INC("core.sync_pulls");
  obs::Trace(obs::TraceKind::kResourceSync, flags & kPfSyncAny);
  if ((flags & kPfSyncFds) != 0) {
    LockFileUpdate();
    PullFdsIfFlagged(p);
    UnlockFileUpdate();
  }
  if ((flags & kPfSyncDir) != 0) {
    PullDir(p);
  }
  if ((flags & kPfSyncId) != 0) {
    PullIds(p);
  }
  if ((flags & kPfSyncUmask) != 0) {
    PullUmask(p);
  }
  if ((flags & kPfSyncUlimit) != 0) {
    PullUlimit(p);
  }
}

// ----- diagnostics -----

mode_t ShaddrBlock::cmask() const {
  SpinGuard g(rupdlock_);
  return cmask_;
}

u64 ShaddrBlock::limit() const {
  SpinGuard g(rupdlock_);
  return limit_;
}

uid_t ShaddrBlock::uid() const {
  SpinGuard g(rupdlock_);
  return uid_;
}

gid_t ShaddrBlock::gid() const {
  SpinGuard g(rupdlock_);
  return gid_;
}

Inode* ShaddrBlock::cdir() const {
  SpinGuard g(rupdlock_);
  return cdir_;
}

Inode* ShaddrBlock::rdir() const {
  SpinGuard g(rupdlock_);
  return rdir_;
}

int ShaddrBlock::OfileCount() const {
  // Taken by the /proc snapshot outside the fupdsema_ bracket; rupdlock_
  // pairs with the swap in PublishFds.
  SpinGuard g(rupdlock_);
  int n = 0;
  for (const FdEntry& e : ofile_) {
    n += e.used() ? 1 : 0;
  }
  return n;
}

}  // namespace sg
