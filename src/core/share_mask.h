// The share mask (§5.1): which resources an sproc() child shares with the
// group. "When the child is created, the share mask is masked against the
// share mask used when creating the parent ... providing strict inheritance
// of those resources. The original process in a share group is given a mask
// indicating that all resources are shared."
#ifndef SRC_CORE_SHARE_MASK_H_
#define SRC_CORE_SHARE_MASK_H_

#include "base/types.h"

namespace sg {

inline constexpr u32 PR_SADDR = 1u << 0;    // share virtual address space
inline constexpr u32 PR_SULIMIT = 1u << 1;  // share ulimit values
inline constexpr u32 PR_SUMASK = 1u << 2;   // share umask values
inline constexpr u32 PR_SDIR = 1u << 3;     // share current/root directory
inline constexpr u32 PR_SFDS = 1u << 4;     // share open file descriptors
inline constexpr u32 PR_SID = 1u << 5;      // share uid/gid
inline constexpr u32 PR_SALL =
    PR_SADDR | PR_SULIMIT | PR_SUMASK | PR_SDIR | PR_SFDS | PR_SID;

// prctl() options (§5.2).
inline constexpr u32 PR_MAXPROCS = 1;      // limit on processes per user
inline constexpr u32 PR_MAXPPROCS = 2;     // processes the system runs in parallel
inline constexpr u32 PR_SETSTACKSIZE = 3;  // set maximum stack size
inline constexpr u32 PR_GETSTACKSIZE = 4;  // get maximum stack size

// ---- Extensions implementing §8 ("Future Directions") ----
//
// Return convention for the group-wide prctl options (16..22): every option
// is kEINVAL when the caller is not in a share group, and on success
// returns a NON-NEGATIVE SUMMARY OF THE EFFECT NOW IN FORCE — not a bare 0:
//   PR_SETGROUPPRI  -> number of members the priority was applied to
//   PR_UNSHARE      -> the caller's remaining share mask
//   PR_BLOCKGROUP / PR_UNBLKGROUP -> number of members affected
//   PR_JOINGROUP    -> the share mask acquired by the join
//   PR_SETSHARES    -> the group's CPU shares now in effect
//   PR_SETRCAP      -> the resource cap now in effect (0 = unlimited)
// Callers can therefore always read the result back from the success value;
// "did anything happen" is never ambiguous with "succeeded vacuously".

// "The priority of the whole group could be raised or lowered." Sets every
// member's scheduling priority; returns the member count (see the return
// convention above). kEINVAL when the caller is not in a share group.
inline constexpr u32 PR_SETGROUPPRI = 16;

// "It might be useful to allow a process to stop sharing a resource. For
// instance, the fork() primitive already performs this for the virtual
// address space." prctl(PR_UNSHARE, mask) stops sharing the resources in
// `mask`; PR_SADDR takes a copy-on-write snapshot of the shared image into
// the caller's private space (exactly what fork gives a child). Returns the
// remaining share mask. kEINVAL outside a group.
inline constexpr u32 PR_UNSHARE = 17;

// "A whole process group could be conveniently blocked or unblocked."
// PR_BLOCKGROUP suspends every OTHER member at its next kernel entry;
// PR_UNBLKGROUP resumes them. Returns the number of members affected.
inline constexpr u32 PR_BLOCKGROUP = 18;
inline constexpr u32 PR_UNBLKGROUP = 19;

// "We can also consider allowing an unrelated process to join a share
// group dynamically." prctl(PR_JOINGROUP, pid) joins the group of `pid`
// for every non-VM resource (fds, directories, ids, umask, ulimit); the
// caller keeps its own address space. Returns the acquired share mask.
inline constexpr u32 PR_JOINGROUP = 20;

// ---- Fair-share resource manager extensions (src/rm/) ----

// prctl(PR_SETSHARES, shares): sets the caller's group's CPU shares weight
// in the resource-manager hierarchy (0 is clamped to 1). Returns the
// shares now in effect. kEINVAL outside a group.
inline constexpr u32 PR_SETSHARES = 21;

// prctl(PR_SETRCAP, PrRcapArg(resource, cap)): sets a per-group capacity
// cap — PR_RCAP_MEMBERS (admissions beyond the cap fail sproc/PR_JOINGROUP
// with kEAGAIN), PR_RCAP_FILES (opens that would grow the shared fd table
// past the cap fail with kEAGAIN; requires PR_SFDS), PR_RCAP_PAGES
// (resident pages of the shared image; faults needing a frame beyond the
// cap drive the pager and surface kENOMEM when nothing can be stolen).
// cap = 0 means unlimited. Returns the cap now in effect. kEINVAL outside
// a group or for an unknown resource.
inline constexpr u32 PR_SETRCAP = 22;

inline constexpr u32 PR_RCAP_MEMBERS = 1;
inline constexpr u32 PR_RCAP_FILES = 2;
inline constexpr u32 PR_RCAP_PAGES = 3;

// PR_SETRCAP argument packing: resource selector in the top byte, cap value
// in the low 56 bits (caps are counts — members, fds, pages — so 2^56 is
// no practical restriction).
inline constexpr u64 kPrRcapCapMask = (u64{1} << 56) - 1;
constexpr i64 PrRcapArg(u32 resource, u64 cap) {
  return static_cast<i64>((static_cast<u64>(resource) << 56) | (cap & kPrRcapCapMask));
}
constexpr u32 PrRcapResource(i64 arg) { return static_cast<u32>(static_cast<u64>(arg) >> 56); }
constexpr u64 PrRcapCap(i64 arg) { return static_cast<u64>(arg) & kPrRcapCapMask; }

// sproc() shmask extension: share the address space (PR_SADDR) but give
// the child a private copy-on-write DATA region shadowing the shared one —
// §8's "it could be possible to share part of the VM image and have
// copy-on-write access to other parts of the image." Not part of PR_SALL
// and not subject to strict inheritance (it takes nothing from the group).
inline constexpr u32 PR_PRIVDATA = 1u << 8;

}  // namespace sg

#endif  // SRC_CORE_SHARE_MASK_H_
