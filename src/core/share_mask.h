// The share mask (§5.1): which resources an sproc() child shares with the
// group. "When the child is created, the share mask is masked against the
// share mask used when creating the parent ... providing strict inheritance
// of those resources. The original process in a share group is given a mask
// indicating that all resources are shared."
#ifndef SRC_CORE_SHARE_MASK_H_
#define SRC_CORE_SHARE_MASK_H_

#include "base/types.h"

namespace sg {

inline constexpr u32 PR_SADDR = 1u << 0;    // share virtual address space
inline constexpr u32 PR_SULIMIT = 1u << 1;  // share ulimit values
inline constexpr u32 PR_SUMASK = 1u << 2;   // share umask values
inline constexpr u32 PR_SDIR = 1u << 3;     // share current/root directory
inline constexpr u32 PR_SFDS = 1u << 4;     // share open file descriptors
inline constexpr u32 PR_SID = 1u << 5;      // share uid/gid
inline constexpr u32 PR_SALL =
    PR_SADDR | PR_SULIMIT | PR_SUMASK | PR_SDIR | PR_SFDS | PR_SID;

// prctl() options (§5.2).
inline constexpr u32 PR_MAXPROCS = 1;      // limit on processes per user
inline constexpr u32 PR_MAXPPROCS = 2;     // processes the system runs in parallel
inline constexpr u32 PR_SETSTACKSIZE = 3;  // set maximum stack size
inline constexpr u32 PR_GETSTACKSIZE = 4;  // get maximum stack size

// ---- Extensions implementing §8 ("Future Directions") ----

// "The priority of the whole group could be raised or lowered." Sets every
// member's scheduling priority; returns the member count. kEINVAL when the
// caller is not in a share group.
inline constexpr u32 PR_SETGROUPPRI = 16;

// "It might be useful to allow a process to stop sharing a resource. For
// instance, the fork() primitive already performs this for the virtual
// address space." prctl(PR_UNSHARE, mask) stops sharing the resources in
// `mask`; PR_SADDR takes a copy-on-write snapshot of the shared image into
// the caller's private space (exactly what fork gives a child). Returns the
// remaining share mask. kEINVAL outside a group.
inline constexpr u32 PR_UNSHARE = 17;

// "A whole process group could be conveniently blocked or unblocked."
// PR_BLOCKGROUP suspends every OTHER member at its next kernel entry;
// PR_UNBLKGROUP resumes them. Returns the number of members affected.
inline constexpr u32 PR_BLOCKGROUP = 18;
inline constexpr u32 PR_UNBLKGROUP = 19;

// "We can also consider allowing an unrelated process to join a share
// group dynamically." prctl(PR_JOINGROUP, pid) joins the group of `pid`
// for every non-VM resource (fds, directories, ids, umask, ulimit); the
// caller keeps its own address space. Returns the acquired share mask.
inline constexpr u32 PR_JOINGROUP = 20;

// sproc() shmask extension: share the address space (PR_SADDR) but give
// the child a private copy-on-write DATA region shadowing the shared one —
// §8's "it could be possible to share part of the VM image and have
// copy-on-write access to other parts of the image." Not part of PR_SALL
// and not subject to strict inheritance (it takes nothing from the group).
inline constexpr u32 PR_PRIVDATA = 1u << 8;

}  // namespace sg

#endif  // SRC_CORE_SHARE_MASK_H_
