// Mach-flavored tasks and threads — the lightweight-process baseline the
// paper argues against (§2–3): multiple threads of control inside ONE
// process context, sharing *everything* with no selectivity. Used by the
// E2 experiment ("the Mach kernel can create and destroy threads at 10
// times the rate of the fork() system call") and as the contrast for the
// "too much sharing" discussion.
//
// Each thread carries the kernel-side overhead the paper calls out —
// "kernel context (the user area) and a kernel stack for each thread" —
// modelled as physical frames charged per thread.
#ifndef SRC_MACH_TASK_H_
#define SRC_MACH_TASK_H_

#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "base/result.h"
#include "base/types.h"
#include "hw/phys_mem.h"
#include "proc/proc.h"
#include "proc/scheduler.h"

namespace sg {

// Kernel pages charged per thread (user-area page + kernel stack page).
inline constexpr u32 kThreadKernelPages = 2;

class MachTask;

// The per-thread execution context: its own CPU-slot state, sharing the
// task's process for everything else.
class MachThread final : public ExecutionContext {
 public:
  MachThread(Scheduler& sched, int priority, int tid)
      : sched_(sched), priority_(priority), tid_(tid) {}
  ~MachThread() override = default;

  int tid() const { return tid_; }

  void WillBlock() override {
    if (has_cpu_) {
      has_cpu_ = false;
      sched_.ReleaseCpu(cpu_);
    }
  }
  void DidWake() override {
    if (!has_cpu_) {
      cpu_ = sched_.AcquireCpu(priority_);
      has_cpu_ = true;
    }
  }

  std::thread host;
  pfn_t kstack[kThreadKernelPages] = {0, 0};

 private:
  Scheduler& sched_;
  int priority_;
  int tid_;
  bool has_cpu_ = false;
  u32 cpu_ = 0;  // valid while has_cpu_

  friend class MachTask;
};

class MachTask {
 public:
  // A task wraps an existing process: its address space, descriptors and
  // identity are shared wholesale by every thread.
  MachTask(Proc& proc, PhysMem& mem, Scheduler& sched)
      : proc_(proc), mem_(mem), sched_(sched) {}
  ~MachTask();
  MachTask(const MachTask&) = delete;
  MachTask& operator=(const MachTask&) = delete;

  Proc& proc() { return proc_; }

  // Spawns a thread running `fn(tid)` inside the task. Charges the
  // per-thread kernel pages; kENOMEM when physical memory is exhausted.
  Result<int> ThreadCreate(std::function<void(int)> fn);

  // Joins a thread and releases its kernel pages. kESRCH for unknown tids.
  Status ThreadJoin(int tid);

  // Joins every live thread.
  void JoinAll();

  u32 LiveThreads() const;

 private:
  Proc& proc_;
  PhysMem& mem_;
  Scheduler& sched_;

  mutable std::mutex mu_;
  int next_tid_ = 1;
  std::map<int, std::unique_ptr<MachThread>> threads_;
};

}  // namespace sg

#endif  // SRC_MACH_TASK_H_
