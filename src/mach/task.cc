#include "mach/task.h"

#include "base/check.h"

namespace sg {

MachTask::~MachTask() { JoinAll(); }

Result<int> MachTask::ThreadCreate(std::function<void(int)> fn) {
  int tid;
  {
    std::lock_guard<std::mutex> l(mu_);
    tid = next_tid_++;
  }
  auto t = std::make_unique<MachThread>(sched_, proc_.priority.load(std::memory_order_relaxed),
                                        tid);
  // Charge the per-thread kernel context: a user-area page and a kernel
  // stack page, allocated from the same physical pool as everything else.
  for (u32 i = 0; i < kThreadKernelPages; ++i) {
    auto frame = mem_.AllocFrame();
    if (!frame.ok()) {
      for (u32 j = 0; j < i; ++j) {
        mem_.Unref(t->kstack[j]);
      }
      return frame.error();
    }
    t->kstack[i] = frame.value();
  }
  MachThread* raw;
  {
    std::lock_guard<std::mutex> l(mu_);
    raw = t.get();
    threads_.emplace(tid, std::move(t));
  }
  raw->host = std::thread([this, raw, tid, fn = std::move(fn)] {
    ScopedExecutionContext ctx(raw);
    raw->cpu_ = sched_.AcquireCpu(proc_.priority.load(std::memory_order_relaxed));
    raw->has_cpu_ = true;
    try {
      fn(tid);
    } catch (const ProcTerminated&) {
      // A fatal event inside a thread ends just that thread here.
    }
    if (raw->has_cpu_) {
      raw->has_cpu_ = false;
      sched_.ReleaseCpu(raw->cpu_);
    }
  });
  return tid;
}

Status MachTask::ThreadJoin(int tid) {
  std::unique_ptr<MachThread> t;
  {
    std::lock_guard<std::mutex> l(mu_);
    auto it = threads_.find(tid);
    if (it == threads_.end()) {
      return Errno::kESRCH;
    }
    t = std::move(it->second);
    threads_.erase(it);
  }
  if (t->host.joinable()) {
    t->host.join();
  }
  for (u32 i = 0; i < kThreadKernelPages; ++i) {
    mem_.Unref(t->kstack[i]);
  }
  return Status::Ok();
}

void MachTask::JoinAll() {
  for (;;) {
    int tid;
    {
      std::lock_guard<std::mutex> l(mu_);
      if (threads_.empty()) {
        return;
      }
      tid = threads_.begin()->first;
    }
    SG_CHECK(ThreadJoin(tid).ok());
  }
}

u32 MachTask::LiveThreads() const {
  std::lock_guard<std::mutex> l(mu_);
  return static_cast<u32>(threads_.size());
}

}  // namespace sg
