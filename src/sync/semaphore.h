// Kernel counting semaphore (the paper's `sema_t`: s_updwait, s_fupdsema).
//
// P() sleeps when the count is zero, releasing the simulated CPU through the
// current ExecutionContext; V() wakes sleepers. An interruptible P returns
// EINTR when a signal is posted to the sleeping process, matching classic
// interruptible kernel sleeps (pipes, wait, pause).
#ifndef SRC_SYNC_SEMAPHORE_H_
#define SRC_SYNC_SEMAPHORE_H_

#include <condition_variable>
#include <mutex>

#include "base/result.h"
#include "base/types.h"

namespace sg {

enum class SleepMode {
  kUninterruptible,  // sleep until the resource is available
  kInterruptible,    // additionally wake with EINTR on a pending signal
};

class Semaphore {
 public:
  explicit Semaphore(i64 initial = 0) : count_(initial) {}
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  // Decrements the count, sleeping while it is zero.
  // Returns kOk, or EINTR for an interrupted interruptible sleep (the count
  // is not consumed in that case).
  Status P(SleepMode mode = SleepMode::kUninterruptible);

  // Non-blocking P; returns true if the count was consumed.
  bool TryP();

  // Increments the count and wakes sleepers.
  void V();

  i64 count() const;

  // Number of P() calls that had to sleep (contention metric).
  u64 sleeps() const;

 private:
  mutable std::mutex m_;
  std::condition_variable cv_;
  i64 count_;
  u64 sleeps_ = 0;
};

}  // namespace sg

#endif  // SRC_SYNC_SEMAPHORE_H_
