// Kernel counting semaphore (the paper's `sema_t`: s_updwait, s_fupdsema).
//
// P() sleeps when the count is zero, releasing the simulated CPU through the
// current ExecutionContext; V() wakes sleepers. An interruptible P returns
// EINTR when a signal is posted to the sleeping process, matching classic
// interruptible kernel sleeps (pipes, wait, pause).
#ifndef SRC_SYNC_SEMAPHORE_H_
#define SRC_SYNC_SEMAPHORE_H_

#include <condition_variable>
#include <mutex>

#include "base/result.h"
#include "base/thread_annotations.h"
#include "base/types.h"

namespace sg {

enum class SleepMode {
  kUninterruptible,  // sleep until the resource is available
  kInterruptible,    // additionally wake with EINTR on a pending signal
};

// Capability annotations model the binary (mutex-style) use — the kernel's
// only instance is s_fupdsema, initial count 1, P/V strictly bracketed.
// The annotations describe the uninterruptible path; an EINTR return from
// an interruptible P does NOT hold the capability, so such call sites must
// hand the result to clang explicitly (none exist in the kernel today).
class SG_CAPABILITY("semaphore") Semaphore {
 public:
  explicit Semaphore(i64 initial = 0) : count_(initial) {}
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  // Decrements the count, sleeping while it is zero.
  // Returns kOk, or EINTR for an interrupted interruptible sleep (the count
  // is not consumed in that case).
  Status P(SleepMode mode = SleepMode::kUninterruptible) SG_ACQUIRE();

  // Non-blocking P; returns true if the count was consumed.
  bool TryP() SG_TRY_ACQUIRE(true);

  // Increments the count and wakes sleepers.
  void V() SG_RELEASE();

  i64 count() const;

  // Number of P() calls that had to sleep (contention metric).
  u64 sleeps() const;

 private:
  mutable std::mutex m_;
  std::condition_variable cv_;
  i64 count_;
  u64 sleeps_ = 0;
};

}  // namespace sg

#endif  // SRC_SYNC_SEMAPHORE_H_
