// Busy-wait spinlock, the kernel's short-critical-section lock (the paper's
// `lock_t`: s_acclck, s_listlock, s_rupdlock).
//
// On the target machine spinlocks are hardware test-and-set loops; here we
// use an atomic flag with a test-test-and-set loop and a pause hint. Holders
// must not sleep: critical sections protected by a Spinlock are short and
// never call a blocking primitive. That rule is enforced twice over: the
// clang thread-safety annotations below make guarded state machine-checked
// under `cmake --preset tsa`, and in SG_LOCKDEP=ON builds every Lock/Unlock
// feeds the sync/lockdep.h validator (acquisition-order graph +
// sleep-under-spinlock detection). Name a lock at construction
// (`Spinlock lk{"shaddr.listlock"}`) to give it its own lockdep class;
// unnamed locks share the generic "spinlock" class.
#ifndef SRC_SYNC_SPINLOCK_H_
#define SRC_SYNC_SPINLOCK_H_

#include <atomic>
#include <thread>

#include "base/check.h"
#include "base/thread_annotations.h"
#include "base/types.h"
#include "inject/inject.h"
#include "obs/stats.h"
#include "sync/lockdep.h"

namespace sg {

inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

class SG_CAPABILITY("spinlock") Spinlock {
 public:
  Spinlock() : Spinlock("spinlock") {}
  explicit Spinlock(const char* lockdep_class)
#if defined(SG_LOCKDEP_ENABLED)
      : class_(lockdep::RegisterClass(lockdep_class, lockdep::Kind::kSpin))
#endif
  {
    (void)lockdep_class;
  }
  Spinlock(const Spinlock&) = delete;
  Spinlock& operator=(const Spinlock&) = delete;

  void Lock() SG_ACQUIRE() {
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) {
        DidAcquire();
        return;
      }
      // Contended: spin on a plain load until the lock looks free. After a
      // while, yield the HOST thread — on a host narrower than the
      // simulated machine the holder may be preempted, and burning the
      // quantum would stall everyone (a real multiprocessor never sees
      // this: the holder runs concurrently).
      contended_.fetch_add(1, std::memory_order_relaxed);
      SG_OBS_INC("sync.spin_contended");
      SG_INJECT_POINT("spinlock.contended");
      u32 spins = 0;
      while (flag_.load(std::memory_order_relaxed)) {
        CpuRelax();
        if (++spins == 1024) {
          spins = 0;
          std::this_thread::yield();
        }
      }
    }
  }

  bool TryLock() SG_TRY_ACQUIRE(true) {
    if (flag_.exchange(true, std::memory_order_acquire)) {
      return false;
    }
    DidAcquire();
    return true;
  }

  void Unlock() SG_RELEASE() {
#if defined(SG_LOCKDEP_ENABLED)
    // The double-unlock / unlock-from-the-wrong-thread failure mode is
    // silent with a bare store (the flag just goes false again); with the
    // holder tracked, it panics with the culprit on the stack.
    SG_CHECK(holder_.load(std::memory_order_relaxed) == std::this_thread::get_id());
    holder_.store(std::thread::id{}, std::memory_order_relaxed);
    lockdep::OnRelease(class_, this);
#else
    // Weak form of the same check for ordinary debug builds: the flag must
    // at least be set (catches plain double-unlock, not wrong-thread).
    SG_DCHECK(flag_.load(std::memory_order_relaxed));
#endif
    flag_.store(false, std::memory_order_release);
  }

  // Number of lock acquisitions that found the lock held (contention metric
  // used by the shared-read-lock benchmarks).
  u64 contended_acquires() const { return contended_.load(std::memory_order_relaxed); }

 private:
  void DidAcquire() {
#if defined(SG_LOCKDEP_ENABLED)
    holder_.store(std::this_thread::get_id(), std::memory_order_relaxed);
    lockdep::OnAcquire(class_, this);
#endif
  }

  std::atomic<bool> flag_{false};
  std::atomic<u64> contended_{0};
#if defined(SG_LOCKDEP_ENABLED)
  lockdep::ClassId class_ = 0;
  std::atomic<std::thread::id> holder_{};
#endif
};

// RAII guard.
class SG_SCOPED_CAPABILITY SpinGuard {
 public:
  explicit SpinGuard(Spinlock& lock) SG_ACQUIRE(lock) : lock_(lock) { lock_.Lock(); }
  ~SpinGuard() SG_RELEASE() { lock_.Unlock(); }
  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;

 private:
  Spinlock& lock_;
};

}  // namespace sg

#endif  // SRC_SYNC_SPINLOCK_H_
