// Busy-wait spinlock, the kernel's short-critical-section lock (the paper's
// `lock_t`: s_acclck, s_listlock, s_rupdlock).
//
// On the target machine spinlocks are hardware test-and-set loops; here we
// use an atomic flag with a test-test-and-set loop and a pause hint. Holders
// must not sleep: critical sections protected by a Spinlock are short and
// never call a blocking primitive.
#ifndef SRC_SYNC_SPINLOCK_H_
#define SRC_SYNC_SPINLOCK_H_

#include <atomic>
#include <thread>

#include "base/types.h"
#include "inject/inject.h"
#include "obs/stats.h"

namespace sg {

inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

class Spinlock {
 public:
  Spinlock() = default;
  Spinlock(const Spinlock&) = delete;
  Spinlock& operator=(const Spinlock&) = delete;

  void Lock() {
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) {
        return;
      }
      // Contended: spin on a plain load until the lock looks free. After a
      // while, yield the HOST thread — on a host narrower than the
      // simulated machine the holder may be preempted, and burning the
      // quantum would stall everyone (a real multiprocessor never sees
      // this: the holder runs concurrently).
      contended_.fetch_add(1, std::memory_order_relaxed);
      SG_OBS_INC("sync.spin_contended");
      SG_INJECT_POINT("spinlock.contended");
      u32 spins = 0;
      while (flag_.load(std::memory_order_relaxed)) {
        CpuRelax();
        if (++spins == 1024) {
          spins = 0;
          std::this_thread::yield();
        }
      }
    }
  }

  bool TryLock() { return !flag_.exchange(true, std::memory_order_acquire); }

  void Unlock() { flag_.store(false, std::memory_order_release); }

  // Number of lock acquisitions that found the lock held (contention metric
  // used by the shared-read-lock benchmarks).
  u64 contended_acquires() const { return contended_.load(std::memory_order_relaxed); }

 private:
  std::atomic<bool> flag_{false};
  std::atomic<u64> contended_{0};
};

// RAII guard.
class SpinGuard {
 public:
  explicit SpinGuard(Spinlock& lock) : lock_(lock) { lock_.Lock(); }
  ~SpinGuard() { lock_.Unlock(); }
  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;

 private:
  Spinlock& lock_;
};

}  // namespace sg

#endif  // SRC_SYNC_SPINLOCK_H_
