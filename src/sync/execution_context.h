// ExecutionContext: the bridge between blocking kernel primitives and the
// simulated-processor scheduler.
//
// Every simulated process runs its user code (and the kernel code of its own
// syscalls) on a host thread that holds a simulated-CPU slot while RUNNING.
// When a kernel primitive must sleep (semaphore P, shared-read-lock wait,
// pipe full/empty, wait(2)...), it releases the slot via WillBlock() so
// another runnable process can execute, and reacquires it via DidWake()
// after the host-level wait completes.
//
// The context also carries the signal plumbing: interruptible sleeps poll
// InterruptPending(), and posters of signals use the registered wakeup
// channel to kick a sleeping process out of its wait.
//
// Locking contract (important — violating it can deadlock a 1-CPU config):
//   * WillBlock() may be called while holding primitive-internal mutexes;
//     it only releases resources and never blocks.
//   * DidWake() may block (it reacquires a CPU slot) and therefore MUST be
//     called with no primitive-internal mutexes held.
//   * SetWakeup()/ClearWakeup() may be called with the wait mutex held; a
//     poster must copy the registration under the registration lock, drop
//     it, and only then lock the wait mutex to publish its notification.
#ifndef SRC_SYNC_EXECUTION_CONTEXT_H_
#define SRC_SYNC_EXECUTION_CONTEXT_H_

#include <condition_variable>
#include <mutex>

namespace sg {

class ExecutionContext {
 public:
  virtual ~ExecutionContext() = default;

  // Releases the simulated CPU if this context holds one. Idempotent.
  virtual void WillBlock() = 0;

  // Reacquires a simulated CPU if WillBlock() released one. Idempotent.
  // May block; see the locking contract above.
  virtual void DidWake() = 0;

  // True if an unblocked signal is pending for the process; interruptible
  // sleeps return EINTR when this turns true.
  virtual bool InterruptPending() { return false; }

  // Registers / clears the condition variable the thread is about to wait
  // on, so that a signal poster can wake it. Base implementation: no-op.
  virtual void SetWakeup(std::condition_variable* cv, std::mutex* m) {
    (void)cv;
    (void)m;
  }
  virtual void ClearWakeup() {}
};

// Per-host-thread current context; nullptr outside simulated processes
// (e.g. in unit tests driving primitives directly).
ExecutionContext* CurrentExecutionContext();
void SetCurrentExecutionContext(ExecutionContext* ctx);

// RAII installer for the calling thread.
class ScopedExecutionContext {
 public:
  explicit ScopedExecutionContext(ExecutionContext* ctx) : prev_(CurrentExecutionContext()) {
    SetCurrentExecutionContext(ctx);
  }
  ~ScopedExecutionContext() { SetCurrentExecutionContext(prev_); }

  ScopedExecutionContext(const ScopedExecutionContext&) = delete;
  ScopedExecutionContext& operator=(const ScopedExecutionContext&) = delete;

 private:
  ExecutionContext* prev_;
};

}  // namespace sg

#endif  // SRC_SYNC_EXECUTION_CONTEXT_H_
