// SeqCount — a sequence counter for optimistic, lockless readers (the
// Linux seqcount_t idiom, here backing the per-group VM layout: see
// DESIGN.md §4h).
//
// Writers are ALREADY serialized by some external lock (for the VM layout,
// the group's SharedReadLock held for update); the counter only publishes
// "a layout mutation is in progress / has happened" to readers that hold
// no lock at all. The value is even when the layout is stable and odd
// while a write section is open:
//
//   writer:  WriteBegin();  ...mutate + republish...  WriteEnd();
//   reader:  u64 s;
//            if (!TryReadBegin(&s)) fall back;      // writer active now
//            ...lockless reads of published state...
//            if (!ReadValidate(s)) retry/fall back; // a writer intervened
//
// Unlike the classic seqlock, readers here never dereference racily-written
// plain data: everything they touch is either an atomically published
// snapshot pointer (SharedSpace::layout()) or state guarded by a finer lock
// (region page tables, TLBs). The counter is therefore a pure logical
// validity check — its memory-ordering obligations are modest, and the
// seq_cst RMWs below are chosen for auditability, not necessity (the
// dangerous interleavings are all mediated by the TLB/region locks; see
// the §4h proof sketch).
//
// Write sections are registered with lockdep as a spin-class lock: they
// are short, never sleep, and every blocking primitive called while one is
// open is a protocol violation a storm run will report.
#ifndef SRC_SYNC_SEQCOUNT_H_
#define SRC_SYNC_SEQCOUNT_H_

#include <atomic>

#include "base/check.h"
#include "base/thread_annotations.h"
#include "base/types.h"
#include "sync/lockdep.h"

namespace sg {

class SG_CAPABILITY("seqcount") SeqCount {
 public:
  // `name` keys the lockdep class (string literal; all counters created
  // under one name share ordering state).
  explicit SeqCount(const char* name) {
    if (lockdep::kEnabled) {
      class_ = lockdep::RegisterClass(name, lockdep::Kind::kSpin);
    }
  }
  SeqCount(const SeqCount&) = delete;
  SeqCount& operator=(const SeqCount&) = delete;

  // ----- writer side (callers hold the external update lock) -----

  void WriteBegin() SG_ACQUIRE() {
    const u64 prev = seq_.fetch_add(1, std::memory_order_seq_cst);
    SG_CHECK((prev & 1) == 0);  // write sections never nest
    lockdep::OnAcquire(class_, this);
  }

  void WriteEnd() SG_RELEASE() {
    lockdep::OnRelease(class_, this);
    const u64 prev = seq_.fetch_add(1, std::memory_order_seq_cst);
    SG_CHECK((prev & 1) == 1);  // unbalanced WriteEnd
  }

  // ----- reader side (no lock held) -----

  // Snapshots the counter into `*s`. False if a write section is open
  // right now — the caller should fall back to the locked path rather
  // than spin (the writer holds a blocking lock and may be slow).
  bool TryReadBegin(u64* s) const {
    const u64 v = seq_.load(std::memory_order_seq_cst);
    *s = v;
    return (v & 1) == 0;
  }

  // True iff no write section began since `s` was snapshotted: everything
  // read in between belongs to one stable layout.
  bool ReadValidate(u64 s) const {
    return seq_.load(std::memory_order_seq_cst) == s;
  }

  // Current raw value (diagnostics, and generation stamps taken while the
  // external update/read lock is held — the counter is frozen then, so the
  // value doubles as a layout generation number).
  u64 value() const { return seq_.load(std::memory_order_seq_cst); }

 private:
  std::atomic<u64> seq_{0};
  lockdep::ClassId class_ = 0;
};

// RAII write section.
class SG_SCOPED_CAPABILITY SeqWriter {
 public:
  explicit SeqWriter(SeqCount& sc) SG_ACQUIRE(sc) : sc_(sc) { sc_.WriteBegin(); }
  ~SeqWriter() SG_RELEASE() { sc_.WriteEnd(); }
  SeqWriter(const SeqWriter&) = delete;
  SeqWriter& operator=(const SeqWriter&) = delete;

 private:
  SeqCount& sc_;
};

}  // namespace sg

#endif  // SRC_SYNC_SEQCOUNT_H_
