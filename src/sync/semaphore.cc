#include "sync/semaphore.h"

#include "inject/inject.h"
#include "obs/stats.h"
#include "obs/trace.h"
#include "sync/execution_context.h"
#include "sync/lockdep.h"

namespace sg {

Status Semaphore::P(SleepMode mode) {
  lockdep::MaySleep("semaphore.P");
  SG_INJECT_POINT("sema.p");
  ExecutionContext* ctx = CurrentExecutionContext();
  bool slept = false;
  Status st = Status::Ok();
  {
    std::unique_lock<std::mutex> l(m_);
    for (;;) {
      if (count_ > 0) {
        --count_;
        break;
      }
      // Going to sleep. Register the wakeup channel *before* the final
      // pending-signal check so a racing signal poster either sees the
      // registration (and notifies cv_) or posted before the check below.
      if (ctx != nullptr) {
        ctx->WillBlock();
        ctx->SetWakeup(&cv_, &m_);
      }
      if (mode == SleepMode::kInterruptible && ctx != nullptr && ctx->InterruptPending()) {
        if (ctx != nullptr) {
          ctx->ClearWakeup();
        }
        st = Errno::kEINTR;
        break;
      }
      slept = true;
      ++sleeps_;
      SG_OBS_INC("sync.sema_sleeps");
      obs::Trace(obs::TraceKind::kSemSleep, 0);
      cv_.wait(l);
      if (ctx != nullptr) {
        ctx->ClearWakeup();
      }
    }
  }
  if (slept && ctx != nullptr) {
    ctx->DidWake();  // may block; no internal mutex held here
  }
  return st;
}

bool Semaphore::TryP() {
  SG_INJECT_POINT("sema.tryp");
  std::lock_guard<std::mutex> l(m_);
  if (count_ > 0) {
    --count_;
    return true;
  }
  return false;
}

void Semaphore::V() {
  {
    std::lock_guard<std::mutex> l(m_);
    ++count_;
  }
  // notify_all: sleepers re-check the count; interrupted sleepers must also
  // get a chance to observe their pending signal.
  cv_.notify_all();
}

i64 Semaphore::count() const {
  std::lock_guard<std::mutex> l(m_);
  return count_;
}

u64 Semaphore::sleeps() const {
  std::lock_guard<std::mutex> l(m_);
  return sleeps_;
}

}  // namespace sg
