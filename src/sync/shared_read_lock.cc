#include "sync/shared_read_lock.h"

#include <chrono>

#include "base/check.h"
#include "obs/stats.h"
#include "obs/trace.h"
#include "sync/execution_context.h"

namespace sg {

void SharedReadLock::SleepOnChannel() {
  // Caller holds acclck_ and has already incremented waitcnt_.
  ExecutionContext* ctx = CurrentExecutionContext();
  {
    std::unique_lock<std::mutex> cl(chan_m_);
    const u64 gen = chan_gen_;
    // Release the spinlock only after chan_m_ is held: a releaser must take
    // acclck_ (still ours) before deciding to wake, and must take chan_m_
    // to bump the generation, so the wakeup cannot be lost.
    acclck_.Unlock();
    if (ctx != nullptr) {
      ctx->WillBlock();
    }
    chan_cv_.wait(cl, [&] { return chan_gen_ != gen; });
  }
  if (ctx != nullptr) {
    ctx->DidWake();  // may block for a CPU; no internal mutex held
  }
  acclck_.Lock();
}

void SharedReadLock::WakeChannel() {
  {
    std::lock_guard<std::mutex> cl(chan_m_);
    ++chan_gen_;
  }
  chan_cv_.notify_all();
}

void SharedReadLock::AcquireRead() {
  acclck_.Lock();
  while (acccnt_ < 0) {
    ++waitcnt_;
    read_waits_.fetch_add(1, std::memory_order_relaxed);
    SG_OBS_INC("sharedlock.read_waits");
    obs::Trace(obs::TraceKind::kLockReadWait);
    SleepOnChannel();
    --waitcnt_;
  }
  ++acccnt_;
  acclck_.Unlock();
  reads_.fetch_add(1, std::memory_order_relaxed);
  SG_OBS_INC("sharedlock.reads");
}

void SharedReadLock::ReleaseRead() {
  acclck_.Lock();
  SG_DCHECK(acccnt_ > 0);
  --acccnt_;
  const bool wake = (acccnt_ == 0 && waitcnt_ > 0);
  if (wake) {
    WakeChannel();
  }
  acclck_.Unlock();
}

void SharedReadLock::AcquireUpdate() {
  // Writer-wait latency is the paper's §7 cost of shrink/detach: every
  // update acquisition records entry-to-grant time, so /proc/stat exposes
  // how long updaters stall behind the reader population.
  const auto t0 = std::chrono::steady_clock::now();
  acclck_.Lock();
  while (acccnt_ != 0) {
    ++waitcnt_;
    update_waits_.fetch_add(1, std::memory_order_relaxed);
    SG_OBS_INC("sharedlock.update_waits");
    obs::Trace(obs::TraceKind::kLockUpdateWait);
    SleepOnChannel();
    --waitcnt_;
  }
  acccnt_ = -1;
  acclck_.Unlock();
  updates_.fetch_add(1, std::memory_order_relaxed);
  SG_OBS_INC("sharedlock.updates");
  static obs::LatencyHisto& wait_histo =
      obs::Stats::Global().histo("sharedlock.update_wait_ns");
  const auto dt = std::chrono::steady_clock::now() - t0;
  wait_histo.Record(
      static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count()));
}

bool SharedReadLock::TryAcquireUpdate() {
  acclck_.Lock();
  if (acccnt_ != 0) {
    acclck_.Unlock();
    return false;
  }
  acccnt_ = -1;
  acclck_.Unlock();
  updates_.fetch_add(1, std::memory_order_relaxed);
  SG_OBS_INC("sharedlock.updates");
  return true;
}

void SharedReadLock::ReleaseUpdate() {
  acclck_.Lock();
  SG_DCHECK(acccnt_ == -1);
  acccnt_ = 0;
  if (waitcnt_ > 0) {
    WakeChannel();
  }
  acclck_.Unlock();
}

}  // namespace sg
