#include "sync/shared_read_lock.h"

#include <chrono>

#include "base/check.h"
#include "inject/inject.h"
#include "obs/stats.h"
#include "obs/trace.h"
#include "sync/execution_context.h"
#include "sync/lockdep.h"

namespace sg {

namespace {
u64 NowNsSince(std::chrono::steady_clock::time_point t0) {
  const auto dt = std::chrono::steady_clock::now() - t0;
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count());
}

// All SharedReadLock instances share one lockdep class: every instance
// guards the same kind of object (a share group's pregion list) and no
// path nests two of them.
lockdep::ClassId SharedLockClass() {
  static const lockdep::ClassId id =
      lockdep::RegisterClass("sharedlock", lockdep::Kind::kSleep);
  return id;
}
}  // namespace

namespace {
// Threads are striped across the slots round-robin at first use; the
// index is process-global so every lock hashes a given thread to the same
// slot (release must decrement what acquire incremented). Constant-
// initialized with a sentinel rather than dynamically initialized so the
// fast-path access is a plain TLS load with no init-guard check.
constexpr u32 kSlotUnassigned = ~u32{0};
thread_local u32 tl_slot = kSlotUnassigned;

u32 AssignSlot() {
  static std::atomic<u32> next{0};
  tl_slot = next.fetch_add(1, std::memory_order_relaxed);
  return tl_slot;
}
}  // namespace

u32 SharedReadLock::SlotIndex() {
  u32 idx = tl_slot;
  if (idx == kSlotUnassigned) {
    idx = AssignSlot();
  }
  return idx & (kSlots - 1);
}

i64 SharedReadLock::SumActive() const {
  i64 sum = 0;
  for (const Slot& s : slots_) {
    sum += static_cast<i64>(s.state.load(std::memory_order_seq_cst) & kActiveMask);
  }
  return sum;
}

u64 SharedReadLock::reads() const {
  u64 sum = 0;
  for (const Slot& s : slots_) {
    sum += s.state.load(std::memory_order_relaxed) >> kActiveBits;
  }
  return sum;
}

void SharedReadLock::SetName(std::string_view name) {
  name_ = name;
  const std::string prefix = "sharedlock." + name_ + ".";
  obs::Stats& stats = obs::Stats::Global();
  named_updates_ = &stats.counter(prefix + "updates");
  named_update_waits_ = &stats.counter(prefix + "update_waits");
  named_wait_histo_ = &stats.histo(prefix + "update_wait_ns");
}

void SharedReadLock::SleepUntilReleased() {
  // Caller holds acclck_ and has already incremented waitcnt_.
  ExecutionContext* ctx = CurrentExecutionContext();
  {
    // sgcheck:allow(sleep-in-atomic): wait-channel handoff — chan_m_ must be
    // held before acclck_ drops or a concurrent ReleaseUpdate's generation
    // bump is lost; chan_m_ sections are O(1) and take no other lock.
    std::unique_lock<std::mutex> cl(chan_m_);
    const u64 gen = release_gen_;
    // Release the spinlock only after chan_m_ is held: ReleaseUpdate clears
    // writer_claimed_ under acclck_ (which we still hold) and must then take
    // chan_m_ to bump the generation, so the wakeup cannot be lost.
    acclck_.Unlock();
    if (ctx != nullptr) {
      ctx->WillBlock();
    }
    release_cv_.wait(cl, [&] { return release_gen_ != gen; });
  }
  if (ctx != nullptr) {
    ctx->DidWake();  // may block for a CPU; no internal mutex held
  }
  acclck_.Lock();
}

void SharedReadLock::WakeReleased() {
  {
    std::lock_guard<std::mutex> cl(chan_m_);
    ++release_gen_;
  }
  release_cv_.notify_all();
}

void SharedReadLock::WakeDrain() {
  {
    std::lock_guard<std::mutex> cl(chan_m_);
    ++drain_gen_;
  }
  drain_cv_.notify_all();
}

u64 SharedReadLock::DrainGen() {
  std::lock_guard<std::mutex> cl(chan_m_);
  return drain_gen_;
}

void SharedReadLock::WaitDrainChangedFrom(u64 gen) {
  ExecutionContext* ctx = CurrentExecutionContext();
  bool blocked = false;
  {
    std::unique_lock<std::mutex> cl(chan_m_);
    if (drain_gen_ == gen) {
      blocked = true;
      if (ctx != nullptr) {
        ctx->WillBlock();
      }
      drain_cv_.wait(cl, [&] { return drain_gen_ != gen; });
    }
  }
  if (blocked && ctx != nullptr) {
    ctx->DidWake();
  }
}

void SharedReadLock::AcquireRead() {
  // Even the fast path is a violation under a spinlock: whether THIS call
  // sleeps depends on a racing updater, and the discipline must hold on
  // every schedule.
  lockdep::MaySleep("sharedlock.AcquireRead");
  Slot& slot = slots_[SlotIndex()];
  // One RMW: raise the active count and (optimistically) the grant
  // statistic together. The only shared state touched after it is a load
  // of the (rarely written) intent flag.
  slot.state.fetch_add(kGrantOne | kActiveOne, std::memory_order_seq_cst);
  if (!writer_intent_.load(std::memory_order_seq_cst)) {
    lockdep::OnAcquire(SharedLockClass(), this);
    return;
  }
  // A writer holds the lock or is draining readers: back the increment out
  // (grant included — this acquisition was not granted) and queue behind
  // it, so updaters are never starved by a reader stream.
  slot.state.fetch_sub(kGrantOne | kActiveOne, std::memory_order_seq_cst);
  SG_INJECT_POINT("sharedlock.read.backout");
  WakeDrain();  // the writer may be drain-waiting on our transient count
  AcquireReadSlow(slot);
  // Recorded after AcquireReadSlow drops acclck_, so lockdep never sees an
  // acclck -> sharedlock edge (the implementation lock is strictly inside).
  lockdep::OnAcquire(SharedLockClass(), this);
}

void SharedReadLock::AcquireReadSlow(Slot& slot) {
  acclck_.Lock();
  while (writer_claimed_) {
    ++waitcnt_;
    read_waits_.fetch_add(1, std::memory_order_relaxed);
    SG_OBS_INC("sharedlock.read_waits");
    obs::Trace(obs::TraceKind::kLockReadWait);
    // sgcheck:allow(sleep-in-atomic): handoff — SleepUntilReleased drops
    // acclck_ before sleeping and re-holds it before returning.
    SleepUntilReleased();
    --waitcnt_;
  }
  // Enter while holding acclck_: the next writer must take acclck_ to
  // claim, which orders after our release, so its drain sum sees this
  // increment.
  slot.state.fetch_add(kGrantOne | kActiveOne, std::memory_order_seq_cst);
  read_slow_.fetch_add(1, std::memory_order_relaxed);
  acclck_.Unlock();
}

void SharedReadLock::ReleaseRead() {
  lockdep::OnRelease(SharedLockClass(), this);
  Slot& slot = slots_[SlotIndex()];
  slot.state.fetch_sub(kActiveOne, std::memory_order_seq_cst);
  if (writer_intent_.load(std::memory_order_seq_cst)) {
    // Seq_cst pairing mirrors the acquire side: either our decrement lands
    // before the writer's drain sum, or we see its intent and wake it.
    WakeDrain();
  }
}

void SharedReadLock::AcquireUpdate() {
  lockdep::MaySleep("sharedlock.AcquireUpdate");
  // Writer-wait latency is the paper's §7 cost of shrink/detach: every
  // update acquisition records entry-to-grant time, so /proc/stat exposes
  // how long updaters stall behind the reader population.
  const auto t0 = std::chrono::steady_clock::now();

  acclck_.Lock();
  while (writer_claimed_) {
    ++waitcnt_;
    update_waits_.fetch_add(1, std::memory_order_relaxed);
    SG_OBS_INC("sharedlock.update_waits");
    if (named_update_waits_ != nullptr) {
      named_update_waits_->Inc();
    }
    obs::Trace(obs::TraceKind::kLockUpdateWait);
    // sgcheck:allow(sleep-in-atomic): handoff — SleepUntilReleased drops
    // acclck_ before sleeping and re-holds it before returning.
    SleepUntilReleased();
    --waitcnt_;
  }
  writer_claimed_ = true;
  writer_intent_.store(true, std::memory_order_seq_cst);
  acclck_.Unlock();
  SG_INJECT_POINT("sharedlock.update.pre_drain");

  // Drain the in-flight readers. New readers see writer_intent_ and back
  // out; each release (or back-out) with the flag up bumps the drain
  // generation, and the generation is snapshotted BEFORE the sum, so a
  // decrement-to-zero between the sum and the sleep is never lost.
  for (;;) {
    const u64 gen = DrainGen();
    if (SumActive() == 0) {
      break;
    }
    update_waits_.fetch_add(1, std::memory_order_relaxed);
    SG_OBS_INC("sharedlock.update_waits");
    if (named_update_waits_ != nullptr) {
      named_update_waits_->Inc();
    }
    obs::Trace(obs::TraceKind::kLockUpdateWait);
    WaitDrainChangedFrom(gen);
  }

  lockdep::OnAcquire(SharedLockClass(), this);
  updates_.fetch_add(1, std::memory_order_relaxed);
  SG_OBS_INC("sharedlock.updates");
  if (named_updates_ != nullptr) {
    named_updates_->Inc();
  }
  static obs::LatencyHisto& global_wait_histo =
      obs::Stats::Global().histo("sharedlock.update_wait_ns");
  const u64 wait_ns = NowNsSince(t0);
  global_wait_histo.Record(wait_ns);
  wait_histo_.Record(wait_ns);
  if (named_wait_histo_ != nullptr) {
    named_wait_histo_->Record(wait_ns);
  }
}

bool SharedReadLock::TryAcquireUpdate() {
  acclck_.Lock();
  if (writer_claimed_) {
    acclck_.Unlock();
    return false;
  }
  writer_claimed_ = true;
  writer_intent_.store(true, std::memory_order_seq_cst);
  if (SumActive() != 0) {
    // Readers in flight: undo. A fast-path reader that backed out because
    // of our transient intent is spinning on acclck_ (still ours) and will
    // re-enter as soon as we release — no sleeper to wake.
    writer_claimed_ = false;
    writer_intent_.store(false, std::memory_order_seq_cst);
    acclck_.Unlock();
    return false;
  }
  acclck_.Unlock();
  lockdep::OnAcquire(SharedLockClass(), this);
  updates_.fetch_add(1, std::memory_order_relaxed);
  SG_OBS_INC("sharedlock.updates");
  if (named_updates_ != nullptr) {
    named_updates_->Inc();
  }
  return true;
}

void SharedReadLock::ReleaseUpdate() {
  lockdep::OnRelease(SharedLockClass(), this);
  SG_INJECT_POINT("sharedlock.update.release");
  acclck_.Lock();
  SG_DCHECK(writer_claimed_);
  writer_claimed_ = false;
  writer_intent_.store(false, std::memory_order_seq_cst);
  const bool wake = waitcnt_ > 0;
  acclck_.Unlock();
  if (wake) {
    WakeReleased();
  }
}

}  // namespace sg
