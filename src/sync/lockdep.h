// lockdep — runtime validator for the share-group locking protocol,
// following the Linux lockdep lineage (Molnar's lock dependency engine):
// instead of waiting for a 1-in-1280-seeds storm schedule to actually
// deadlock, record the ORDER in which lock CLASSES are taken and diagnose
// a protocol violation the first time both sides of an inversion have ever
// been seen — on any schedule, even one that did not deadlock.
//
// What it checks (in SG_LOCKDEP=ON builds; compiled to nothing otherwise):
//
//   * Acquisition-order cycles. Every tracked lock belongs to a class
//     ("shaddr.listlock", "shaddr.rupdlock", "tlb", "sharedlock", ...).
//     When a thread acquires class B while holding class A, the edge A->B
//     enters a global dependency graph; if B can already reach A through
//     recorded edges, the new edge closes a cycle and a report is filed
//     with both acquisition contexts (the held-lock stack that recorded
//     each conflicting edge).
//   * Sleep under spinlock. The paper's hard rule — "critical sections
//     protected by a Spinlock are short and never call a blocking
//     primitive" — is checked at the entry of every simulated-CPU-
//     releasing primitive (Semaphore::P, SharedReadLock acquisition,
//     BlockOn, Barrier::Arrive) via MaySleep(): calling one with any
//     spinlock-class lock held is a violation even on runs where the fast
//     path happened not to sleep.
//
// Violations are counted in the obs registry (lockdep.cycles,
// lockdep.sleep_under_spin) and the full text — class names, edges, both
// stacks per report — is served as /proc/lockdep. Reports are filed once
// per offending edge/site, so a hot path cannot flood the log; detection
// never panics (the storm suites assert Reports() == 0 at the end).
//
// Layering: depends on base/ and obs/ only, so spinlock.h itself can call
// the hooks. Lockdep's own bookkeeping uses host std::mutex + thread_local
// state and never takes a tracked lock, so it cannot deadlock against the
// code it watches.
#ifndef SRC_SYNC_LOCKDEP_H_
#define SRC_SYNC_LOCKDEP_H_

#include <string>

#include "base/types.h"

namespace sg {
namespace lockdep {

// Lock classes: all instances created under one name share ordering state
// (every ShaddrBlock's listlock_ is one class, like Linux lockdep keying
// by initialization site).
using ClassId = u16;  // 1-based; 0 = invalid/untracked

enum class Kind : u8 {
  kSpin,   // busy-wait lock; holders must never sleep
  kSleep,  // blocking primitive (semaphore, shared read lock)
};

#if defined(SG_LOCKDEP_ENABLED)

inline constexpr bool kEnabled = true;

// Registers (or looks up) the class named `name`. Cheap enough for lock
// constructors; idempotent per name. `name` must outlive the process
// (string literals).
ClassId RegisterClass(const char* name, Kind kind);

// The calling thread acquired / released an instance of `cls`. Acquire is
// reported AFTER the lock is actually held; release before or after the
// drop, on the acquiring thread. Balanced nesting is not required —
// release unwinds the matching (cls, instance) entry wherever it sits in
// the held stack.
void OnAcquire(ClassId cls, const void* instance);
void OnRelease(ClassId cls, const void* instance);

// Entry hook of every primitive that may release the simulated CPU.
// Reports if the calling thread holds any kSpin-class lock.
void MaySleep(const char* what);

// Number of tracked locks the calling thread currently holds.
u32 HeldCount();

// Total violation reports filed so far (cycles + sleeps-under-spinlock).
u64 Reports();

// Full diagnostic text: classes, recorded edges, and every report with
// both acquisition stacks. The body of /proc/lockdep.
std::string RenderReport();

// Clears the dependency graph, the reports, and the once-only dedup sets
// (NOT the class registry: ClassIds cached in lock instances stay valid).
// Tests only; do not call while other threads hold tracked locks.
void ResetForTest();

#else  // !SG_LOCKDEP_ENABLED — every hook compiles to nothing

inline constexpr bool kEnabled = false;

inline ClassId RegisterClass(const char*, Kind) { return 0; }
inline void OnAcquire(ClassId, const void*) {}
inline void OnRelease(ClassId, const void*) {}
inline void MaySleep(const char*) {}
inline u32 HeldCount() { return 0; }
inline u64 Reports() { return 0; }
inline std::string RenderReport() { return "lockdep: off (build with -DSG_LOCKDEP=ON)\n"; }
inline void ResetForTest() {}

#endif  // SG_LOCKDEP_ENABLED

}  // namespace lockdep
}  // namespace sg

#endif  // SRC_SYNC_LOCKDEP_H_
