#include "sync/barrier.h"

#include "sync/execution_context.h"
#include "sync/lockdep.h"

namespace sg {

void Barrier::Arrive() {
  lockdep::MaySleep("barrier.Arrive");
  ExecutionContext* ctx = CurrentExecutionContext();
  bool slept = false;
  {
    std::unique_lock<std::mutex> l(m_);
    const u64 gen = generation_;
    if (++arrived_ == parties_) {
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
    } else {
      if (ctx != nullptr) {
        ctx->WillBlock();
      }
      slept = true;
      cv_.wait(l, [&] { return generation_ != gen; });
    }
  }
  if (slept && ctx != nullptr) {
    ctx->DidWake();
  }
}

}  // namespace sg
