#include "sync/lockdep.h"

#if defined(SG_LOCKDEP_ENABLED)

#include <atomic>
#include <cstdio>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "base/check.h"
#include "obs/stats.h"

namespace sg {
namespace lockdep {

namespace {

// Class-count ceiling: the kernel protocol defines ~a dozen classes and
// tests add a handful more, so 64 leaves an order of magnitude of slack
// (RegisterClass panics past it rather than silently merging classes).
constexpr u32 kMaxClasses = 64;

// Deepest tracked nesting per thread. The real protocol never nests past
// three (fupdsema -> rupdlock -> listlock); 32 catches even absurd tests.
constexpr u32 kMaxHeld = 32;

struct ClassInfo {
  const char* name = nullptr;
  Kind kind = Kind::kSpin;
};

struct HeldLock {
  ClassId cls = 0;
  const void* instance = nullptr;
  Kind kind = Kind::kSpin;
};

// Per-thread held-lock stack. Plain thread_local (no registration): each
// hook touches only the calling thread's stack, so there is nothing to
// synchronize on the fast path.
thread_local HeldLock tl_held[kMaxHeld];
thread_local u32 tl_depth = 0;

// ----- global state (validator-internal; host std::mutex, never a
// tracked lock, so the validator cannot deadlock against its subject) ----

std::mutex g_reg_m;                 // class registry
ClassInfo g_classes[kMaxClasses + 1];  // 1-based
u32 g_nclasses = 0;  // under g_reg_m; read via g_nclasses_pub elsewhere
std::atomic<u32> g_nclasses_pub{0};

// Dependency graph over classes. g_edge[a][b] != 0 means "a was held while
// b was acquired" has been observed. The fast path is one relaxed load; a
// set bit never becomes interesting again. Inserts (and the DFS that
// precedes them) serialize on g_graph_m.
std::atomic<u8> g_edge[kMaxClasses + 1][kMaxClasses + 1];

std::mutex g_graph_m;
// Where each edge was first seen: the acquiring thread's held stack at
// record time. This is the "other stack" in a cycle report.
std::string g_edge_ctx[kMaxClasses + 1][kMaxClasses + 1];

std::vector<std::string>& EdgeList() {
  static std::vector<std::string>* v = new std::vector<std::string>;
  return *v;
}

std::vector<std::string>& ReportList() {
  static std::vector<std::string>* v = new std::vector<std::string>;
  return *v;
}

// Sleep-under-spinlock sites already reported (what x spin class): each
// offending call site fires once, not once per storm iteration.
std::set<std::pair<std::string, ClassId>>& SleepSites() {
  static auto* s = new std::set<std::pair<std::string, ClassId>>;
  return *s;
}

std::atomic<u64> g_reports{0};

const char* ClassName(ClassId c) {
  // Safe without g_reg_m: slots [1, g_nclasses_pub] are write-once before
  // the publishing store.
  if (c == 0 || c > g_nclasses_pub.load(std::memory_order_acquire)) {
    return "<invalid>";
  }
  return g_classes[c].name;
}

std::string DescribeHeldStack() {
  std::ostringstream os;
  os << "thread " << std::this_thread::get_id() << " holding [";
  for (u32 i = 0; i < tl_depth; ++i) {
    if (i != 0) {
      os << " -> ";
    }
    os << ClassName(tl_held[i].cls) << "@" << tl_held[i].instance;
  }
  os << "]";
  return os.str();
}

// Is `to` reachable from `from` over recorded edges? Iterative DFS; called
// under g_graph_m, before the new edge is inserted. If reachable, fills
// `path` with the class chain from `from` to `to`.
bool FindPath(ClassId from, ClassId to, std::vector<ClassId>* path) {
  const u32 n = g_nclasses_pub.load(std::memory_order_acquire);
  bool visited[kMaxClasses + 1] = {};
  // Parallel stacks: node to expand + the path that reached it. The graph
  // is tiny (<= kMaxClasses nodes), so recomputing paths is cheap.
  std::vector<std::pair<ClassId, std::vector<ClassId>>> stack;
  stack.push_back({from, {from}});
  while (!stack.empty()) {
    auto [node, p] = std::move(stack.back());
    stack.pop_back();
    if (node == to) {
      *path = std::move(p);
      return true;
    }
    if (visited[node]) {
      continue;
    }
    visited[node] = true;
    for (ClassId next = 1; next <= n; ++next) {
      if (!visited[next] && g_edge[node][next].load(std::memory_order_relaxed) != 0) {
        auto p2 = p;
        p2.push_back(next);
        stack.push_back({next, std::move(p2)});
      }
    }
  }
  return false;
}

void FileReport(std::string text, const char* counter) {
  obs::Stats::Global().counter(counter).Inc();
  obs::Stats::Global().counter("lockdep.reports").Inc();
  g_reports.fetch_add(1, std::memory_order_relaxed);
  std::fprintf(stderr, "lockdep: %s\n", text.c_str());
  std::fflush(stderr);
  ReportList().push_back(std::move(text));
}

// Records edge prev -> cls, reporting a cycle if cls already reaches prev.
// Called outside g_graph_m; takes it on the slow (first-sighting) path.
void RecordEdge(ClassId prev, ClassId cls) {
  if (g_edge[prev][cls].load(std::memory_order_relaxed) != 0) {
    return;  // seen before (checked or reported back then)
  }
  std::lock_guard<std::mutex> l(g_graph_m);
  if (g_edge[prev][cls].load(std::memory_order_relaxed) != 0) {
    return;
  }
  std::vector<ClassId> path;
  if (FindPath(cls, prev, &path)) {
    std::ostringstream os;
    os << "lock-order cycle: acquiring \"" << ClassName(cls) << "\" while holding \""
       << ClassName(prev) << "\", but the reverse order is already recorded:\n";
    os << "  new edge:      " << ClassName(prev) << " -> " << ClassName(cls) << "\n"
       << "  this thread:   " << DescribeHeldStack() << "\n";
    os << "  reverse chain: ";
    for (size_t i = 0; i < path.size(); ++i) {
      if (i != 0) {
        os << " -> ";
      }
      os << ClassName(path[i]);
    }
    os << "\n";
    for (size_t i = 0; i + 1 < path.size(); ++i) {
      os << "    edge " << ClassName(path[i]) << " -> " << ClassName(path[i + 1])
         << " first seen: " << g_edge_ctx[path[i]][path[i + 1]] << "\n";
    }
    FileReport(os.str(), "lockdep.cycles");
  }
  // Record the edge either way: a reported cycle must not re-report on
  // every later acquisition in the same (wrong) order.
  g_edge_ctx[prev][cls] = DescribeHeldStack();
  EdgeList().push_back(std::string(ClassName(prev)) + " -> " + ClassName(cls));
  g_edge[prev][cls].store(1, std::memory_order_relaxed);
}

}  // namespace

ClassId RegisterClass(const char* name, Kind kind) {
  std::lock_guard<std::mutex> l(g_reg_m);
  for (u32 i = 1; i <= g_nclasses; ++i) {
    if (std::string_view(g_classes[i].name) == name) {
      return static_cast<ClassId>(i);
    }
  }
  SG_CHECK(g_nclasses < kMaxClasses);
  ++g_nclasses;
  g_classes[g_nclasses] = {name, kind};
  g_nclasses_pub.store(g_nclasses, std::memory_order_release);
  return static_cast<ClassId>(g_nclasses);
}

void OnAcquire(ClassId cls, const void* instance) {
  if (cls == 0) {
    return;
  }
  for (u32 i = 0; i < tl_depth; ++i) {
    // Self-edges are skipped: instances sharing one class (e.g. every
    // ShaddrBlock's listlock_) carry no defined order between themselves,
    // and a same-class pair would otherwise report on the first nesting.
    if (tl_held[i].cls != cls) {
      RecordEdge(tl_held[i].cls, cls);
    }
  }
  SG_CHECK(tl_depth < kMaxHeld);
  tl_held[tl_depth++] = {cls, instance, g_classes[cls].kind};
}

void OnRelease(ClassId cls, const void* instance) {
  if (cls == 0) {
    return;
  }
  // Unwind the matching entry wherever it sits (out-of-order release of
  // e.g. hand-over-hand locking is legal).
  for (u32 i = tl_depth; i > 0; --i) {
    if (tl_held[i - 1].cls == cls && tl_held[i - 1].instance == instance) {
      for (u32 j = i; j < tl_depth; ++j) {
        tl_held[j - 1] = tl_held[j];
      }
      --tl_depth;
      return;
    }
  }
  SG_PANIC("lockdep: releasing a lock this thread does not hold");
}

void MaySleep(const char* what) {
  for (u32 i = 0; i < tl_depth; ++i) {
    if (tl_held[i].kind != Kind::kSpin) {
      continue;
    }
    const ClassId cls = tl_held[i].cls;
    std::lock_guard<std::mutex> l(g_graph_m);
    if (!SleepSites().insert({std::string(what), cls}).second) {
      continue;  // this (site, class) pair already reported
    }
    std::ostringstream os;
    os << "sleep under spinlock: \"" << what << "\" may release the simulated CPU while \""
       << ClassName(cls) << "\" is held\n"
       << "  this thread: " << DescribeHeldStack() << "\n";
    FileReport(os.str(), "lockdep.sleep_under_spin");
  }
}

u32 HeldCount() { return tl_depth; }

u64 Reports() { return g_reports.load(std::memory_order_relaxed); }

std::string RenderReport() {
  std::ostringstream os;
  os << "lockdep: on\n";
  const u32 n = g_nclasses_pub.load(std::memory_order_acquire);
  os << "classes: " << n << "\n";
  for (u32 i = 1; i <= n; ++i) {
    os << "  " << i << ": " << g_classes[i].name << " ("
       << (g_classes[i].kind == Kind::kSpin ? "spin" : "sleep") << ")\n";
  }
  std::lock_guard<std::mutex> l(g_graph_m);
  os << "edges: " << EdgeList().size() << "\n";
  for (const std::string& e : EdgeList()) {
    os << "  " << e << "\n";
  }
  os << "reports: " << ReportList().size() << "\n";
  for (const std::string& r : ReportList()) {
    os << "--\n" << r;
  }
  return os.str();
}

void ResetForTest() {
  std::lock_guard<std::mutex> l(g_graph_m);
  const u32 n = g_nclasses_pub.load(std::memory_order_acquire);
  for (u32 a = 0; a <= n; ++a) {
    for (u32 b = 0; b <= n; ++b) {
      g_edge[a][b].store(0, std::memory_order_relaxed);
      g_edge_ctx[a][b].clear();
    }
  }
  EdgeList().clear();
  ReportList().clear();
  SleepSites().clear();
  g_reports.store(0, std::memory_order_relaxed);
}

}  // namespace lockdep
}  // namespace sg

#endif  // SG_LOCKDEP_ENABLED
