// BlockOn — the shared sleep pattern for kernel objects that wait on a
// condition variable (pipes, wait(2), pause(2)): releases the simulated
// CPU, registers the wakeup channel so signal posters can kick the sleeper,
// honors SleepMode::kInterruptible, and avoids the lost-wakeup race by
// registering before the final pending-signal check.
//
// Usage:
//   bool slept = false;
//   Status st;
//   {
//     std::unique_lock<std::mutex> l(m_);
//     st = BlockOn(cv_, l, mode, &slept, [&] { return ready_; });
//     ... consume under l ...
//   }
//   FinishSleep(slept);   // AFTER the mutex is released (may block for a CPU)
#ifndef SRC_SYNC_WAIT_H_
#define SRC_SYNC_WAIT_H_

#include <condition_variable>
#include <mutex>

#include "base/result.h"
#include "sync/execution_context.h"
#include "sync/lockdep.h"
#include "sync/semaphore.h"  // SleepMode

namespace sg {

template <typename Pred>
Status BlockOn(std::condition_variable& cv, std::unique_lock<std::mutex>& l, SleepMode mode,
               bool* slept, Pred&& pred) {
  // Checked even when pred() is already true: whether a BlockOn call
  // actually sleeps is schedule-dependent, the no-spinlock rule is not.
  lockdep::MaySleep("wait.BlockOn");
  ExecutionContext* ctx = CurrentExecutionContext();
  for (;;) {
    if (pred()) {
      return Status::Ok();
    }
    if (ctx != nullptr) {
      ctx->WillBlock();
      ctx->SetWakeup(&cv, l.mutex());
    }
    if (mode == SleepMode::kInterruptible && ctx != nullptr && ctx->InterruptPending()) {
      if (ctx != nullptr) {
        ctx->ClearWakeup();
      }
      return Errno::kEINTR;
    }
    *slept = true;
    cv.wait(l);
    if (ctx != nullptr) {
      ctx->ClearWakeup();
    }
  }
}

// Completes a BlockOn sleep: reacquires the simulated CPU. Call with no
// primitive-internal mutex held.
inline void FinishSleep(bool slept) {
  ExecutionContext* ctx = CurrentExecutionContext();
  if (slept && ctx != nullptr) {
    ctx->DidWake();
  }
}

}  // namespace sg

#endif  // SRC_SYNC_WAIT_H_
