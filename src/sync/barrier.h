// Reusable sleeping barrier for kernel-side coordination in tests and the
// gang-scheduling extension. Releases the simulated CPU while waiting.
#ifndef SRC_SYNC_BARRIER_H_
#define SRC_SYNC_BARRIER_H_

#include <condition_variable>
#include <mutex>

#include "base/types.h"

namespace sg {

class Barrier {
 public:
  explicit Barrier(u32 parties) : parties_(parties) {}
  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  // Blocks until `parties` threads have arrived; then all are released and
  // the barrier resets for reuse.
  void Arrive();

 private:
  std::mutex m_;
  std::condition_variable cv_;
  u32 parties_;
  u32 arrived_ = 0;
  u64 generation_ = 0;
};

}  // namespace sg

#endif  // SRC_SYNC_BARRIER_H_
