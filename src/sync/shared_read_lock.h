// SharedReadLock — the multi-reader/single-updater lock the paper places
// around every scan of a share group's pregion list (§6.2).
//
// Structure follows the shaddr_t fields exactly:
//   * acclck_  (paper: s_acclck)  — spinlock guarding the counters;
//   * acccnt_  (paper: s_acccnt)  — number of readers scanning the list,
//                                   or -1 while an updater holds the lock;
//   * waitcnt_ (paper: s_waitcnt) — number of processes waiting;
//   * the wait channel (paper: s_updwait, a semaphore sleepers block on).
//
// Readers (page faults, the pager) proceed in parallel; updaters (fork,
// exec, mmap, sbrk, region shrink/detach) wait until all readers drain and
// then exclude everyone. "Since operations that require the update lock are
// relatively rare ... the shared lock is almost always available and
// multiple processes do not collide" — bench_shared_lock reproduces this.
#ifndef SRC_SYNC_SHARED_READ_LOCK_H_
#define SRC_SYNC_SHARED_READ_LOCK_H_

#include <condition_variable>
#include <mutex>

#include "base/types.h"
#include "sync/spinlock.h"

namespace sg {

class SharedReadLock {
 public:
  SharedReadLock() = default;
  SharedReadLock(const SharedReadLock&) = delete;
  SharedReadLock& operator=(const SharedReadLock&) = delete;

  // Reader side: any number of concurrent holders. Uninterruptible (a
  // faulting process must complete its scan once the updater finishes).
  void AcquireRead();
  void ReleaseRead();

  // Updater side: exclusive. Waits for all readers to drain.
  void AcquireUpdate();
  void ReleaseUpdate();

  // True if the calling relationship permits an update right now without
  // waiting (used only by tests; inherently racy otherwise).
  bool TryAcquireUpdate();

  // Stats for the E8 benchmark.
  u64 reads() const { return reads_.load(std::memory_order_relaxed); }
  u64 updates() const { return updates_.load(std::memory_order_relaxed); }
  u64 read_waits() const { return read_waits_.load(std::memory_order_relaxed); }
  u64 update_waits() const { return update_waits_.load(std::memory_order_relaxed); }

 private:
  // Sleeps until the wait-channel generation changes, releasing both the
  // spinlock (already held by the caller) and the simulated CPU. On return
  // the spinlock is re-held.
  void SleepOnChannel();
  // Wakes all channel sleepers. Caller holds acclck_.
  void WakeChannel();

  Spinlock acclck_;
  int acccnt_ = 0;        // readers, or -1 under update
  unsigned waitcnt_ = 0;  // sleepers waiting for the lock

  std::mutex chan_m_;
  std::condition_variable chan_cv_;
  u64 chan_gen_ = 0;

  std::atomic<u64> reads_{0};
  std::atomic<u64> updates_{0};
  std::atomic<u64> read_waits_{0};
  std::atomic<u64> update_waits_{0};
};

// RAII guards.
class ReadGuard {
 public:
  explicit ReadGuard(SharedReadLock& l) : l_(&l) { l_->AcquireRead(); }
  ~ReadGuard() { Release(); }
  void Release() {
    if (l_ != nullptr) {
      l_->ReleaseRead();
      l_ = nullptr;
    }
  }
  ReadGuard(const ReadGuard&) = delete;
  ReadGuard& operator=(const ReadGuard&) = delete;

 private:
  SharedReadLock* l_;
};

class UpdateGuard {
 public:
  explicit UpdateGuard(SharedReadLock& l) : l_(&l) { l_->AcquireUpdate(); }
  ~UpdateGuard() { Release(); }
  void Release() {
    if (l_ != nullptr) {
      l_->ReleaseUpdate();
      l_ = nullptr;
    }
  }
  UpdateGuard(const UpdateGuard&) = delete;
  UpdateGuard& operator=(const UpdateGuard&) = delete;

 private:
  SharedReadLock* l_;
};

}  // namespace sg

#endif  // SRC_SYNC_SHARED_READ_LOCK_H_
