// SharedReadLock — the multi-reader/single-updater lock the paper places
// around every scan of a share group's pregion list (§6.2).
//
// The paper's argument is asymmetric: "Since operations that require the
// update lock are relatively rare (fork, exec, mmap, sbrk, etc.) compared
// to the operations that scan (page fault, pager) the shared lock is
// almost always available and multiple processes do not collide." The
// original s_acclck/s_acccnt construction serialized every reader through
// one spinlock and one shared counter cache line anyway, so parallel
// faulting members collided on the lock *implementation* even when the
// lock itself was free. This version shards the reader count percpu-rwsem
// style so the read fast path touches no shared cache line:
//
//   * slots_[]   — cacheline-padded per-slot reader counts (active holders
//                  and the grant statistic packed into one word). A reader
//                  does one fetch_add on its (thread-hashed) slot, checks
//                  the writer-intent flag, and is in. Release is one
//                  fetch_sub. One atomic RMW per side, none of it shared.
//   * writer_intent_ — raised by AcquireUpdate before it sums the slots
//                  and waits for the active count to drain. A reader that
//                  observes the flag backs its increment out and queues on
//                  the channel behind the writer, so updaters never starve.
//   * acclck_ / waitcnt_ / the wait channel — the slow path keeps the
//                  paper's s_acclck/s_waitcnt/s_updwait sleep protocol
//                  (and ExecutionContext::WillBlock semantics), it is just
//                  no longer on the reader fast path.
//
// Memory-order argument (store-buffering between the two sides): a reader
// increments its slot then loads writer_intent_; an updater stores
// writer_intent_ then sums the slots. All four accesses are seq_cst, so in
// the single total order S either the reader's load precedes the store
// (reader in, and its increment — earlier in S — is seen by the updater's
// sum) or it follows (reader sees the flag and backs out). There is no
// interleaving in which a reader slips in unseen. Writer drain wakeups
// ride a drain-channel generation: the updater snapshots the generation
// *before* summing, so a release that decrements-to-zero and bumps the
// generation after the sum cannot be lost. Queued readers sleep on a
// separate release channel bumped only by ReleaseUpdate, so the back-out
// traffic of a drain never thunders the whole wait queue. See DESIGN.md
// §4c.
#ifndef SRC_SYNC_SHARED_READ_LOCK_H_
#define SRC_SYNC_SHARED_READ_LOCK_H_

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <string_view>

#include "base/thread_annotations.h"
#include "base/types.h"
#include "obs/stats.h"
#include "sync/spinlock.h"

namespace sg {

class SG_CAPABILITY("shared_read_lock") SharedReadLock {
 public:
  // Enough slots that a machine's worth of faulting members hash apart;
  // power of two so slot choice is a mask.
  static constexpr u32 kSlots = 16;

  SharedReadLock() = default;
  SharedReadLock(const SharedReadLock&) = delete;
  SharedReadLock& operator=(const SharedReadLock&) = delete;

  // Reader side: any number of concurrent holders. Uninterruptible (a
  // faulting process must complete its scan once the updater finishes).
  // Release must happen on the thread that acquired (slot-local count).
  void AcquireRead() SG_ACQUIRE_SHARED();
  void ReleaseRead() SG_RELEASE_SHARED();

  // Updater side: exclusive. Waits for all readers to drain.
  void AcquireUpdate() SG_ACQUIRE();
  void ReleaseUpdate() SG_RELEASE();

  // True if the calling relationship permits an update right now without
  // waiting (used only by tests; inherently racy otherwise).
  bool TryAcquireUpdate() SG_TRY_ACQUIRE(true);

  // Names the lock so its update-side counters additionally surface as
  // `sharedlock.<name>.*` in the global registry (and through that in
  // /proc/stat), giving per-group numbers instead of only the process-wide
  // sharedlock.* aggregate. Call before the lock is shared; not
  // thread-safe against concurrent acquisition.
  void SetName(std::string_view name);
  const std::string& name() const { return name_; }

  // Stats for the E8 benchmark and /proc/share/<gid>.
  u64 reads() const;  // successful read acquisitions (sums the slots)
  u64 updates() const { return updates_.load(std::memory_order_relaxed); }
  u64 read_waits() const { return read_waits_.load(std::memory_order_relaxed); }
  u64 update_waits() const { return update_waits_.load(std::memory_order_relaxed); }
  // Read acquisitions that fell off the fast path (writer present).
  u64 read_slow() const { return read_slow_.load(std::memory_order_relaxed); }
  // Per-lock writer entry-to-grant latency (the §7 shrink/detach cost).
  const obs::LatencyHisto& update_wait_histo() const { return wait_histo_; }

 private:
  // One padded shard of the reader count. Both per-slot counts live in one
  // word so the read fast path is a single atomic RMW (percpu-rwsem keeps
  // its fast path to one RMW for the same reason): the low kActiveBits are
  // the in-flight holder count via this slot, the high bits count granted
  // acquisitions (the reads() statistic). The active field cannot
  // underflow into the grant field because a reader releases on the slot
  // it acquired on (slot choice is per-thread, and guards do not migrate
  // threads), and it cannot overflow into the grant field short of 2^16
  // simultaneous holders on one slot.
  struct alignas(64) Slot {
    std::atomic<u64> state{0};
  };
  static constexpr u32 kActiveBits = 16;
  static constexpr u64 kActiveOne = 1;
  static constexpr u64 kActiveMask = (u64{1} << kActiveBits) - 1;
  static constexpr u64 kGrantOne = u64{1} << kActiveBits;

  static u32 SlotIndex();

  // Sum of in-flight readers across all slots (seq_cst loads; see header
  // comment for why this pairs with the readers' seq_cst fetch_adds).
  i64 SumActive() const;

  // Slow-path read acquisition: queue on the release channel until no
  // writer holds or awaits the lock, then enter under acclck_.
  void AcquireReadSlow(Slot& slot);

  // Two wait channels share chan_m_ but have separate generations and
  // condition variables, so wakeups stay targeted:
  //   * the DRAIN channel (drain_gen_/drain_cv_) — bumped by reader
  //     decrements and back-outs while writer_intent_ is up; only the one
  //     draining updater sleeps here.
  //   * the RELEASE channel (release_gen_/release_cv_) — bumped by
  //     ReleaseUpdate; queued readers and queued updaters sleep here. A
  //     reader stream backing out during a drain never wakes them.

  // Sleeps until the release generation changes, releasing both the
  // spinlock (already held by the caller) and the simulated CPU. On return
  // the spinlock is re-held.
  void SleepUntilReleased() SG_REQUIRES(acclck_);
  // Wakes the release channel (all queued readers/updaters). Any thread.
  void WakeReleased();
  // Wakes the drain channel (the draining updater, if any). Any thread.
  void WakeDrain();
  // Current drain generation (for the updater's pre-sum snapshot).
  u64 DrainGen();
  // Blocks until the drain generation differs from `gen` (no spinlock
  // held). Returns immediately if it already moved.
  void WaitDrainChangedFrom(u64 gen);

  Slot slots_[kSlots];

  // Raised for the whole time an updater holds *or is draining toward* the
  // lock; the only lock-wide line the read fast path touches, and only
  // with a load.
  std::atomic<bool> writer_intent_{false};

  Spinlock acclck_{"sharedlock.acclck"};
  // An updater holds or is draining toward the lock.
  bool writer_claimed_ SG_GUARDED_BY(acclck_) = false;
  // Sleepers waiting for the lock.
  unsigned waitcnt_ SG_GUARDED_BY(acclck_) = 0;

  std::mutex chan_m_;
  std::condition_variable drain_cv_;
  std::condition_variable release_cv_;
  // sgcheck:allow(guarded-fields): guarded by chan_m_ (std::mutex is not an
  // SG capability type, so SG_GUARDED_BY cannot name it)
  u64 drain_gen_ = 0;
  // sgcheck:allow(guarded-fields): guarded by chan_m_, see above
  u64 release_gen_ = 0;

  std::atomic<u64> updates_{0};
  std::atomic<u64> read_waits_{0};
  std::atomic<u64> update_waits_{0};
  std::atomic<u64> read_slow_{0};

  obs::LatencyHisto wait_histo_;  // per-lock update entry-to-grant

  // sgcheck:allow(guarded-fields): written by SetName before the lock is
  // shared (documented contract), read-only afterwards
  std::string name_;
  obs::Counter* named_updates_ = nullptr;
  obs::Counter* named_update_waits_ = nullptr;
  obs::LatencyHisto* named_wait_histo_ = nullptr;
};

// RAII guards. Scoped capabilities with an early-release escape: clang
// models Release() (annotated SG_RELEASE) on a scoped object, so the
// destructor's implicit release does not double-count.
class SG_SCOPED_CAPABILITY ReadGuard {
 public:
  explicit ReadGuard(SharedReadLock& l) SG_ACQUIRE_SHARED(l) : l_(&l) { l_->AcquireRead(); }
  ~ReadGuard() SG_RELEASE() { Unwind(); }
  void Release() SG_RELEASE() { Unwind(); }
  ReadGuard(const ReadGuard&) = delete;
  ReadGuard& operator=(const ReadGuard&) = delete;

 private:
  // Unannotated so both the destructor and Release() may call it.
  void Unwind() SG_NO_THREAD_SAFETY_ANALYSIS {
    if (l_ != nullptr) {
      l_->ReleaseRead();
      l_ = nullptr;
    }
  }

  SharedReadLock* l_;
};

class SG_SCOPED_CAPABILITY UpdateGuard {
 public:
  explicit UpdateGuard(SharedReadLock& l) SG_ACQUIRE(l) : l_(&l) { l_->AcquireUpdate(); }
  ~UpdateGuard() SG_RELEASE() { Unwind(); }
  void Release() SG_RELEASE() { Unwind(); }
  UpdateGuard(const UpdateGuard&) = delete;
  UpdateGuard& operator=(const UpdateGuard&) = delete;

 private:
  void Unwind() SG_NO_THREAD_SAFETY_ANALYSIS {
    if (l_ != nullptr) {
      l_->ReleaseUpdate();
      l_ = nullptr;
    }
  }

  SharedReadLock* l_;
};

}  // namespace sg

#endif  // SRC_SYNC_SHARED_READ_LOCK_H_
