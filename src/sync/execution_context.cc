#include "sync/execution_context.h"

namespace sg {

namespace {
thread_local ExecutionContext* tls_context = nullptr;
}  // namespace

ExecutionContext* CurrentExecutionContext() { return tls_context; }

void SetCurrentExecutionContext(ExecutionContext* ctx) { tls_context = ctx; }

}  // namespace sg
