#include "base/errno.h"

namespace sg {

const char* ErrnoName(Errno e) {
  switch (e) {
    case Errno::kOk: return "OK";
    case Errno::kEPERM: return "EPERM";
    case Errno::kENOENT: return "ENOENT";
    case Errno::kESRCH: return "ESRCH";
    case Errno::kEINTR: return "EINTR";
    case Errno::kEIO: return "EIO";
    case Errno::kE2BIG: return "E2BIG";
    case Errno::kEBADF: return "EBADF";
    case Errno::kECHILD: return "ECHILD";
    case Errno::kEAGAIN: return "EAGAIN";
    case Errno::kENOMEM: return "ENOMEM";
    case Errno::kEACCES: return "EACCES";
    case Errno::kEFAULT: return "EFAULT";
    case Errno::kEEXIST: return "EEXIST";
    case Errno::kENOTDIR: return "ENOTDIR";
    case Errno::kEISDIR: return "EISDIR";
    case Errno::kEINVAL: return "EINVAL";
    case Errno::kENFILE: return "ENFILE";
    case Errno::kEMFILE: return "EMFILE";
    case Errno::kEFBIG: return "EFBIG";
    case Errno::kENOSPC: return "ENOSPC";
    case Errno::kESPIPE: return "ESPIPE";
    case Errno::kEPIPE: return "EPIPE";
    case Errno::kENAMETOOLONG: return "ENAMETOOLONG";
    case Errno::kENOTEMPTY: return "ENOTEMPTY";
    case Errno::kEIDRM: return "EIDRM";
    case Errno::kENOSYS: return "ENOSYS";
  }
  return "E???";
}

const char* ErrnoMessage(Errno e) {
  switch (e) {
    case Errno::kOk: return "success";
    case Errno::kEPERM: return "operation not permitted";
    case Errno::kENOENT: return "no such file or directory";
    case Errno::kESRCH: return "no such process";
    case Errno::kEINTR: return "interrupted system call";
    case Errno::kEIO: return "I/O error";
    case Errno::kE2BIG: return "argument list too long";
    case Errno::kEBADF: return "bad file descriptor";
    case Errno::kECHILD: return "no child processes";
    case Errno::kEAGAIN: return "resource temporarily unavailable";
    case Errno::kENOMEM: return "out of memory";
    case Errno::kEACCES: return "permission denied";
    case Errno::kEFAULT: return "bad address";
    case Errno::kEEXIST: return "file exists";
    case Errno::kENOTDIR: return "not a directory";
    case Errno::kEISDIR: return "is a directory";
    case Errno::kEINVAL: return "invalid argument";
    case Errno::kENFILE: return "system file table overflow";
    case Errno::kEMFILE: return "too many open files";
    case Errno::kEFBIG: return "file too large";
    case Errno::kENOSPC: return "no space left on device";
    case Errno::kESPIPE: return "illegal seek";
    case Errno::kEPIPE: return "broken pipe";
    case Errno::kENAMETOOLONG: return "file name too long";
    case Errno::kENOTEMPTY: return "directory not empty";
    case Errno::kEIDRM: return "identifier removed";
    case Errno::kENOSYS: return "function not implemented";
  }
  return "unknown error";
}

}  // namespace sg
