// sg::Mutex — a thin wrapper over std::mutex that carries thread-safety
// capability annotations (base/thread_annotations.h).
//
// libstdc++'s std::mutex has no capability attributes, so state guarded by
// a raw std::mutex is invisible to clang's analysis. Kernel structures
// whose critical sections are plain lock/unlock (no condition-variable
// wait) use this wrapper instead, making their GUARDED_BY fields
// machine-checked: the system file table, the obs stats registry, procfs
// node maps, per-process signal actions. Structures that sleep on a
// condition variable (Semaphore, wait channels, Barrier) keep std::mutex —
// std::condition_variable demands it — and document their guards in
// comments instead.
//
// This is a HOST-level mutex: it never releases the simulated CPU and is
// deliberately not tracked by sync/lockdep.h (its critical sections are a
// few instructions, the moral equivalent of the paper's spl-protected
// regions). The simulated blocking primitives live in sync/.
#ifndef SRC_BASE_MUTEX_H_
#define SRC_BASE_MUTEX_H_

#include <mutex>

#include "base/thread_annotations.h"

namespace sg {

class SG_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SG_ACQUIRE() { m_.lock(); }
  void Unlock() SG_RELEASE() { m_.unlock(); }
  bool TryLock() SG_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  std::mutex m_;
};

// RAII guard (std::lock_guard equivalent the analysis can see).
class SG_SCOPED_CAPABILITY MutexGuard {
 public:
  explicit MutexGuard(Mutex& mu) SG_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexGuard() SG_RELEASE() { mu_.Unlock(); }
  MutexGuard(const MutexGuard&) = delete;
  MutexGuard& operator=(const MutexGuard&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace sg

#endif  // SRC_BASE_MUTEX_H_
