// UNIX-style error numbers returned by the simulated kernel.
//
// The subset mirrors the System V.3 errno values the paper's interfaces can
// produce. Values intentionally match historical UNIX so traces read
// naturally; nothing depends on the numeric values beyond stability.
#ifndef SRC_BASE_ERRNO_H_
#define SRC_BASE_ERRNO_H_

namespace sg {

enum class Errno : int {
  kOk = 0,
  kEPERM = 1,     // operation not permitted
  kENOENT = 2,    // no such file or directory
  kESRCH = 3,     // no such process
  kEINTR = 4,     // interrupted system call
  kEIO = 5,       // I/O error
  kE2BIG = 7,     // argument list too long
  kEBADF = 9,     // bad file descriptor
  kECHILD = 10,   // no child processes
  kEAGAIN = 11,   // resource temporarily unavailable
  kENOMEM = 12,   // out of memory / address space
  kEACCES = 13,   // permission denied
  kEFAULT = 14,   // bad address
  kEEXIST = 17,   // file exists
  kENOTDIR = 20,  // not a directory
  kEISDIR = 21,   // is a directory
  kEINVAL = 22,   // invalid argument
  kENFILE = 23,   // system file table overflow
  kEMFILE = 24,   // per-process descriptor table full
  kEFBIG = 27,    // file too large (ulimit exceeded)
  kENOSPC = 28,   // no space left on device
  kESPIPE = 29,   // illegal seek
  kEPIPE = 32,    // broken pipe
  kENAMETOOLONG = 36,
  kENOTEMPTY = 39,
  kEIDRM = 43,    // identifier removed (SysV IPC)
  kENOSYS = 89,   // function not implemented
};

// Human-readable name ("ENOENT") for diagnostics; never nullptr.
const char* ErrnoName(Errno e);
// Short description ("no such file or directory"); never nullptr.
const char* ErrnoMessage(Errno e);

}  // namespace sg

#endif  // SRC_BASE_ERRNO_H_
