// Intrusive doubly-linked list, used for kernel object chains where the
// original implementation threads pointers through the objects themselves
// (e.g. the share block's `s_plink` process chain, pregion lists, sleep
// queues). The list never owns its elements.
#ifndef SRC_BASE_INTRUSIVE_LIST_H_
#define SRC_BASE_INTRUSIVE_LIST_H_

#include <cstddef>
#include <iterator>

#include "base/check.h"

namespace sg {

// Embed one of these per list an object can be on.
struct ListNode {
  ListNode* prev = nullptr;
  ListNode* next = nullptr;

  bool linked() const { return next != nullptr; }
};

// IntrusiveList<T, &T::member> — a circular doubly-linked list anchored at a
// sentinel. O(1) push/erase, safe erase-while-iterating via the iterator
// returned from Erase().
template <typename T, ListNode T::* Member>
class IntrusiveList {
 public:
  IntrusiveList() { head_.prev = head_.next = &head_; }
  ~IntrusiveList() { SG_DCHECK(empty()); }

  IntrusiveList(const IntrusiveList&) = delete;
  IntrusiveList& operator=(const IntrusiveList&) = delete;

  bool empty() const { return head_.next == &head_; }

  std::size_t size() const {
    std::size_t n = 0;
    for (const ListNode* p = head_.next; p != &head_; p = p->next) {
      ++n;
    }
    return n;
  }

  void PushBack(T* obj) {
    ListNode* n = NodeOf(obj);
    SG_DCHECK(!n->linked());
    n->prev = head_.prev;
    n->next = &head_;
    head_.prev->next = n;
    head_.prev = n;
  }

  void PushFront(T* obj) {
    ListNode* n = NodeOf(obj);
    SG_DCHECK(!n->linked());
    n->next = head_.next;
    n->prev = &head_;
    head_.next->prev = n;
    head_.next = n;
  }

  // Unlinks `obj`; it must be on this list.
  void Erase(T* obj) {
    ListNode* n = NodeOf(obj);
    SG_DCHECK(n->linked());
    n->prev->next = n->next;
    n->next->prev = n->prev;
    n->prev = n->next = nullptr;
  }

  T* Front() { return empty() ? nullptr : ObjOf(head_.next); }

  // Pops and returns the front element, or nullptr if empty.
  T* PopFront() {
    T* obj = Front();
    if (obj != nullptr) {
      Erase(obj);
    }
    return obj;
  }

  bool Contains(const T* obj) const {
    const ListNode* target = NodeOf(const_cast<T*>(obj));
    for (const ListNode* p = head_.next; p != &head_; p = p->next) {
      if (p == target) {
        return true;
      }
    }
    return false;
  }

  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = T*;
    using difference_type = std::ptrdiff_t;

    explicit iterator(ListNode* at) : at_(at) {}
    T* operator*() const { return ObjOf(at_); }
    iterator& operator++() {
      at_ = at_->next;
      return *this;
    }
    bool operator==(const iterator& o) const { return at_ == o.at_; }
    bool operator!=(const iterator& o) const { return at_ != o.at_; }

   private:
    ListNode* at_;
  };

  iterator begin() { return iterator(head_.next); }
  iterator end() { return iterator(&head_); }

 private:
  static ListNode* NodeOf(T* obj) { return &(obj->*Member); }
  static T* ObjOf(ListNode* n) {
    // Recover the enclosing object from its embedded node.
    const auto offset = reinterpret_cast<std::size_t>(
        &(reinterpret_cast<T const volatile*>(0x1000)->*Member)) - 0x1000;
    return reinterpret_cast<T*>(reinterpret_cast<char*>(n) - offset);
  }

  ListNode head_;
};

}  // namespace sg

#endif  // SRC_BASE_INTRUSIVE_LIST_H_
