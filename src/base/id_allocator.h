// Small-integer id allocation (pids, inode numbers, IPC ids).
#ifndef SRC_BASE_ID_ALLOCATOR_H_
#define SRC_BASE_ID_ALLOCATOR_H_

#include <set>

#include "base/check.h"
#include "base/result.h"
#include "base/types.h"

namespace sg {

// Allocates ids in [first, first + capacity). Freed ids are reused
// lowest-first, matching classic UNIX pid/fd behaviour. Not thread-safe;
// callers hold the owning table's lock.
class IdAllocator {
 public:
  IdAllocator(i64 first, i64 capacity) : first_(first), capacity_(capacity) {
    SG_CHECK(capacity > 0);
    free_.clear();
    next_fresh_ = first;
  }

  // Returns the lowest available id, or kEAGAIN if the space is exhausted.
  Result<i64> Allocate() {
    if (!free_.empty()) {
      i64 id = *free_.begin();
      free_.erase(free_.begin());
      return id;
    }
    if (next_fresh_ >= first_ + capacity_) {
      return Errno::kEAGAIN;
    }
    return next_fresh_++;
  }

  // Returns `id` to the pool. `id` must be currently allocated.
  void Free(i64 id) {
    SG_CHECK(id >= first_ && id < next_fresh_);
    auto [it, inserted] = free_.insert(id);
    (void)it;
    SG_CHECK(inserted);
  }

  i64 InUse() const { return (next_fresh_ - first_) - static_cast<i64>(free_.size()); }
  i64 Capacity() const { return capacity_; }

 private:
  i64 first_;
  i64 capacity_;
  i64 next_fresh_;
  std::set<i64> free_;
};

}  // namespace sg

#endif  // SRC_BASE_ID_ALLOCATOR_H_
