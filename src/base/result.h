// Status / Result<T>: error propagation for the simulated kernel.
//
// The kernel API never throws across its public surface; every syscall-level
// operation returns either `Status` (Errno or OK) or `Result<T>` (Errno or a
// value), mirroring the errno/return-value convention of the original
// System V.3 interfaces the paper extends.
#ifndef SRC_BASE_RESULT_H_
#define SRC_BASE_RESULT_H_

#include <cstdlib>
#include <utility>
#include <variant>

#include "base/errno.h"

namespace sg {

// A success-or-errno status.
class [[nodiscard]] Status {
 public:
  constexpr Status() : err_(Errno::kOk) {}
  constexpr Status(Errno e) : err_(e) {}  // NOLINT: implicit by design

  static constexpr Status Ok() { return Status(); }

  constexpr bool ok() const { return err_ == Errno::kOk; }
  constexpr Errno error() const { return err_; }
  const char* name() const { return ErrnoName(err_); }
  const char* message() const { return ErrnoMessage(err_); }

  friend constexpr bool operator==(Status a, Status b) { return a.err_ == b.err_; }

 private:
  Errno err_;
};

// A value-or-errno result. `T` must be movable. Access to `value()` on an
// error result aborts: kernel code must check `ok()` (or use SG_TRY below).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Errno e) : v_(e) {}                 // NOLINT: implicit by design
  Result(Status s) : v_(s.error()) {}        // NOLINT: implicit by design

  bool ok() const { return std::holds_alternative<T>(v_); }
  Errno error() const { return ok() ? Errno::kOk : std::get<Errno>(v_); }
  Status status() const { return Status(error()); }

  T& value() & {
    if (!ok()) {
      std::abort();
    }
    return std::get<T>(v_);
  }
  const T& value() const& {
    if (!ok()) {
      std::abort();
    }
    return std::get<T>(v_);
  }
  T&& value() && {
    if (!ok()) {
      std::abort();
    }
    return std::get<T>(std::move(v_));
  }

  T value_or(T fallback) const { return ok() ? std::get<T>(v_) : std::move(fallback); }

 private:
  std::variant<T, Errno> v_;
};

}  // namespace sg

// Propagates an error Status/Result from the current function.
#define SG_RETURN_IF_ERROR(expr)          \
  do {                                    \
    auto _sg_status = (expr);             \
    if (!_sg_status.ok()) {               \
      return _sg_status.error();          \
    }                                     \
  } while (0)

// Evaluates a Result<T> expression, propagating errors; on success assigns
// the unwrapped value to `lhs` (which must be a declaration or lvalue).
#define SG_ASSIGN_OR_RETURN(lhs, expr)    \
  SG_ASSIGN_OR_RETURN_IMPL_(SG_CONCAT_(_sg_result_, __LINE__), lhs, expr)
#define SG_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) {                                \
    return tmp.error();                           \
  }                                               \
  lhs = std::move(tmp).value()
#define SG_CONCAT_(a, b) SG_CONCAT_IMPL_(a, b)
#define SG_CONCAT_IMPL_(a, b) a##b

#endif  // SRC_BASE_RESULT_H_
