// Fundamental scalar types used throughout the share-groups kernel.
#ifndef SRC_BASE_TYPES_H_
#define SRC_BASE_TYPES_H_

#include <cstddef>
#include <cstdint>

namespace sg {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

// A virtual address in a simulated user address space. We keep all user
// addresses below 2^32 (the target machine in the paper is a 32-bit MIPS
// R2000) but use a 64-bit carrier so arithmetic never wraps silently.
using vaddr_t = u64;

// A physical frame number in the simulated physical memory.
using pfn_t = u32;

// Process identifier. pid 0 is reserved; pid 1 is init.
using pid_t = i32;

// Inode number in the in-memory filesystem.
using ino_t = u32;

// User/group identifiers.
using uid_t = u16;
using gid_t = u16;

// File mode bits (permission subset; type bits live in InodeType).
using mode_t = u16;

inline constexpr u64 kPageShift = 12;
inline constexpr u64 kPageSize = u64{1} << kPageShift;  // 4 KiB, as on the R2000
inline constexpr u64 kPageMask = kPageSize - 1;

// Rounds `v` down/up to a page boundary.
constexpr u64 PageFloor(u64 v) { return v & ~kPageMask; }
constexpr u64 PageCeil(u64 v) { return (v + kPageMask) & ~kPageMask; }
constexpr u64 PageOf(u64 v) { return v >> kPageShift; }
constexpr u64 PagesFor(u64 bytes) { return PageCeil(bytes) >> kPageShift; }

}  // namespace sg

#endif  // SRC_BASE_TYPES_H_
