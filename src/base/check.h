// Invariant checking. SG_CHECK fires in all build types: the simulated kernel
// must never continue past a broken invariant (a real kernel would panic).
#ifndef SRC_BASE_CHECK_H_
#define SRC_BASE_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace sg {

[[noreturn]] inline void PanicAt(const char* file, int line, const char* what) {
  std::fprintf(stderr, "kernel panic: %s:%d: %s\n", file, line, what);
  std::fflush(stderr);
  std::abort();
}

}  // namespace sg

#define SG_CHECK(cond)                                \
  do {                                                \
    if (!(cond)) {                                    \
      ::sg::PanicAt(__FILE__, __LINE__, "CHECK failed: " #cond); \
    }                                                 \
  } while (0)

#define SG_PANIC(msg) ::sg::PanicAt(__FILE__, __LINE__, msg)

// Debug-only assertion for hot paths.
#ifdef NDEBUG
#define SG_DCHECK(cond) \
  do {                  \
  } while (0)
#else
#define SG_DCHECK(cond) SG_CHECK(cond)
#endif

#endif  // SRC_BASE_CHECK_H_
