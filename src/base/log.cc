#include "base/log.h"

#include <cstdio>

namespace sg {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kNone)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "E";
    case LogLevel::kWarn: return "W";
    case LogLevel::kInfo: return "I";
    case LogLevel::kDebug: return "D";
    case LogLevel::kNone: return "-";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void Logf(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) > g_level.load(std::memory_order_relaxed)) {
    return;
  }
  char buf[1024];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  std::fprintf(stderr, "[sg:%s] %s\n", LevelTag(level), buf);
}

}  // namespace sg
