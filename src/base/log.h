// Minimal leveled logging for kernel diagnostics.
//
// Logging is off by default (level kNone) so benchmarks measure the
// mechanisms, not stderr. Tests and examples can raise the level.
#ifndef SRC_BASE_LOG_H_
#define SRC_BASE_LOG_H_

#include <atomic>
#include <cstdarg>

namespace sg {

enum class LogLevel : int {
  kNone = 0,
  kError = 1,
  kWarn = 2,
  kInfo = 3,
  kDebug = 4,
};

// Sets / reads the global log level. Thread-safe.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// printf-style log statement; a newline is appended. Thread-safe (one write).
void Logf(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

}  // namespace sg

#define SG_LOG_ERROR(...) ::sg::Logf(::sg::LogLevel::kError, __VA_ARGS__)
#define SG_LOG_WARN(...) ::sg::Logf(::sg::LogLevel::kWarn, __VA_ARGS__)
#define SG_LOG_INFO(...) ::sg::Logf(::sg::LogLevel::kInfo, __VA_ARGS__)
#define SG_LOG_DEBUG(...) ::sg::Logf(::sg::LogLevel::kDebug, __VA_ARGS__)

#endif  // SRC_BASE_LOG_H_
