// Clang Thread Safety Analysis attribute macros (SG_-prefixed, following
// the abseil convention). The paper's §6 correctness story is a lock
// *protocol* — s_acclck above s_listlock, s_rupdlock/s_fupdsema
// single-threading resource updates, spinlock holders never sleeping —
// and these macros let the compiler check the static half of it: capability
// types on the sync/ primitives, GUARDED_BY on the protected state, and
// REQUIRES on the functions that assume a lock is held.
//
// On clang, `cmake --preset tsa` turns the annotations into hard errors
// (-Wthread-safety -Werror, applied to src/ — test code deliberately
// abuses the primitives and is exempt). On every other compiler the macros
// expand to nothing, so the default gcc build is byte-identical with or
// without them. The dynamic half of the protocol (actual acquisition
// order, sleep-under-spinlock at runtime) is checked by sync/lockdep.h.
#ifndef SRC_BASE_THREAD_ANNOTATIONS_H_
#define SRC_BASE_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define SG_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define SG_THREAD_ANNOTATION_(x)  // no-op outside clang
#endif

// ----- capability (lock) types -----

// Marks a class as a capability: something that can be held, and whose
// holding other annotations can reference. The string names the kind in
// diagnostics ("spinlock", "semaphore", "shared_read_lock", "mutex").
#define SG_CAPABILITY(x) SG_THREAD_ANNOTATION_(capability(x))

// Marks an RAII class whose constructor acquires and destructor releases.
#define SG_SCOPED_CAPABILITY SG_THREAD_ANNOTATION_(scoped_lockable)

// ----- data annotations -----

// The field may only be accessed while holding the given capability.
#define SG_GUARDED_BY(x) SG_THREAD_ANNOTATION_(guarded_by(x))

// The pointed-to data (not the pointer itself) is protected by `x`.
#define SG_PT_GUARDED_BY(x) SG_THREAD_ANNOTATION_(pt_guarded_by(x))

// ----- function annotations -----

// Caller must hold the capability (exclusively / at least shared).
#define SG_REQUIRES(...) \
  SG_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define SG_REQUIRES_SHARED(...) \
  SG_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

// The function acquires the capability (and holds it on return).
#define SG_ACQUIRE(...) \
  SG_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define SG_ACQUIRE_SHARED(...) \
  SG_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

// The function releases the capability (caller must hold it on entry).
#define SG_RELEASE(...) \
  SG_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define SG_RELEASE_SHARED(...) \
  SG_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

// The function tries to acquire and reports success via its return value.
#define SG_TRY_ACQUIRE(...) \
  SG_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define SG_TRY_ACQUIRE_SHARED(...) \
  SG_THREAD_ANNOTATION_(try_acquire_shared_capability(__VA_ARGS__))

// Caller must NOT hold the capability (anti-deadlock for self-locking APIs).
#define SG_EXCLUDES(...) SG_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

// The function returns a reference to the named capability (lets the
// analysis see through accessors like SharedSpace::lock()).
#define SG_RETURN_CAPABILITY(x) SG_THREAD_ANNOTATION_(lock_returned(x))

// Documented lock-ordering edges, checked statically by clang.
#define SG_ACQUIRED_BEFORE(...) \
  SG_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define SG_ACQUIRED_AFTER(...) \
  SG_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

// Escape hatch for functions whose locking the analysis cannot model
// (conditional guards over an optional shared space, lock handoff).
// Every use must carry a comment saying WHY the analysis is suppressed.
#define SG_NO_THREAD_SAFETY_ANALYSIS \
  SG_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // SRC_BASE_THREAD_ANNOTATIONS_H_
