// SharedSpace — the VM half of the paper's shared-address block: the common
// pregion list of a share group, the shared read lock protecting every scan
// of it, the registry of member translation contexts (for cross-processor
// TLB shootdowns), and the group's virtual-address allocator.
//
// It is owned by core::ShaddrBlock but lives in vm/ so the fault path does
// not depend on the share-group layer.
//
// Lockless fault-path surface (DESIGN.md §4h). Since PR 7 the fault hot
// path no longer takes the SharedReadLock at all:
//
//   * layout_seq() — a SeqCount bumped around every pregion-list,
//     region-shape, or member-TLB-registry mutation. A lockless reader
//     snapshots it, works, and revalidates; any intervening write section
//     forces a retry.
//   * layout() — an immutable LayoutSnapshot (pregion pointers + member
//     TLB pointers) republished by every mutation. Readers load it with
//     one atomic acquire; writers never mutate a published snapshot.
//   * EpochGuard — two-parity sharded reader registration. A mutation that
//     retires pregions or snapshots flips the parity and waits only for
//     readers of the OLD parity to drain (AwaitQuiescent), so erased
//     pregions are reclaimed without ever freeing memory a racing lockless
//     reader may still dereference, and without writer livelock under a
//     continuous fault stream.
//
// Every mutation goes through the methods below (AttachPregion,
// DetachPregion, ExtractStackOf, AddMemberTlb, ...); tools/lint.sh bans
// raw pregions() access outside src/vm/ so the snapshot can never go stale
// behind the seqcount's back.
#ifndef SRC_VM_SHARED_SPACE_H_
#define SRC_VM_SHARED_SPACE_H_

#include <atomic>
#include <memory>
#include <vector>

#include "base/thread_annotations.h"
#include "base/types.h"
#include "hw/cpu_set.h"
#include "hw/tlb.h"
#include "sync/seqcount.h"
#include "sync/shared_read_lock.h"
#include "vm/layout.h"
#include "vm/page_charge.h"
#include "vm/pregion.h"
#include "vm/va_allocator.h"

namespace sg {

// Immutable view of the group layout published to lockless readers. The
// pointed-to Pregions are kept alive by the graveyard protocol: a pregion
// leaving the list (and the snapshot that referenced it) is retired, not
// destroyed, until every epoch reader that could hold it has drained.
struct LayoutSnapshot {
  std::vector<Pregion*> pregions;
  std::vector<Tlb*> tlbs;  // member translation contexts (COW-break flush)

  Pregion* Find(vaddr_t va) const {
    for (Pregion* pr : pregions) {
      if (pr->Contains(va)) {
        return pr;
      }
    }
    return nullptr;
  }
};

class SharedSpace {
 public:
  explicit SharedSpace(CpuSet& cpus);
  // Owner-only teardown; no reader can exist (suppressed for clang's
  // analysis, which cannot see that).
  ~SharedSpace() SG_NO_THREAD_SAFETY_ANALYSIS;
  SharedSpace(const SharedSpace&) = delete;
  SharedSpace& operator=(const SharedSpace&) = delete;

  // The paper's shared read lock. Hold for read around any scan of
  // pregions(); hold for update around any modification of the list, a
  // region resize, or a member TLB registry change. SG_RETURN_CAPABILITY
  // lets clang see `ReadGuard g(space.lock())` as guarding the fields
  // below even through this accessor.
  SharedReadLock& lock() SG_RETURN_CAPABILITY(lock_) { return lock_; }

  // ----- lockless reader surface (no lock held) -----

  // The layout sequence counter. Even while stable; bumped (odd, then even
  // again) around every mutation that a lockless fault-path lookup must
  // not straddle.
  SeqCount& layout_seq() { return seq_; }

  // Layout generation: the seqcount value. Only mutations advance it, so a
  // Pregion* cached by a member (AddressSpace's lookup hint) is still live
  // iff the generation it was recorded under is unchanged. Stable while
  // the lock is held (read or update) — writers bump it only inside update
  // sections — and equal to the TryReadBegin snapshot in lockless sections.
  u64 generation() const { return seq_.value(); }

  // Current published layout. Readers must wrap the load AND every use of
  // the returned pointer in an EpochGuard (or hold the lock, which excludes
  // the writers that retire snapshots).
  const LayoutSnapshot* layout() const {
    return snap_.load(std::memory_order_acquire);
  }

  // Registers the calling thread as an epoch reader for its lifetime.
  // Writers retiring memory flip the parity and wait for the old side to
  // drain, so anything reachable from a snapshot loaded inside the guard
  // stays alive until the guard is destroyed.
  class EpochGuard {
   public:
    explicit EpochGuard(SharedSpace& ss) : ss_(ss), slot_(EpochSlotIndex()) {
      parity_ = ss_.epoch_parity_.load(std::memory_order_seq_cst) & 1;
      ss_.epoch_slots_[slot_].n[parity_].fetch_add(1, std::memory_order_seq_cst);
    }
    ~EpochGuard() {
      ss_.epoch_slots_[slot_].n[parity_].fetch_sub(1, std::memory_order_seq_cst);
    }
    EpochGuard(const EpochGuard&) = delete;
    EpochGuard& operator=(const EpochGuard&) = delete;

   private:
    SharedSpace& ss_;
    u32 slot_;
    u32 parity_;
  };

  // Page-granular invalidation against a snapshot's member set: used by the
  // lockless COW-break path, where the faulter holds no lock but does hold
  // an EpochGuard pinning `l`. The flush is published BEFORE the caller's
  // seqcount re-check, so a layout/membership change that could widen the
  // member set forces a retry rather than a missed invalidation.
  static void FlushPageAll(const LayoutSnapshot& l, u64 vpn) {
    for (Tlb* t : l.tlbs) {
      t->FlushPage(vpn);
    }
  }

  // ----- locked scans (read side suffices) -----

  // The shared pregion list (scan only — mutations go through the update
  // API below so the published snapshot can never go stale).
  const std::vector<std::unique_ptr<Pregion>>& pregions() const SG_REQUIRES_SHARED(lock_) {
    return pregions_;
  }

  // Finds the shared pregion containing `va`.
  Pregion* Find(vaddr_t va) SG_REQUIRES_SHARED(lock_) {
    for (auto& pr : pregions_) {
      if (pr->Contains(va)) {
        return pr.get();
      }
    }
    return nullptr;
  }

  // Finds the first shared pregion whose region has type `t`.
  Pregion* FindByType(RegionType t) SG_REQUIRES_SHARED(lock_) {
    for (auto& pr : pregions_) {
      if (pr->region->type() == t) {
        return pr.get();
      }
    }
    return nullptr;
  }

  template <typename Fn>
  void ForEachPregion(Fn&& fn) SG_REQUIRES_SHARED(lock_) {
    for (auto& pr : pregions_) {
      fn(*pr);
    }
  }

  // ----- mutations (update side) -----

  // Group VA allocator; callers hold the lock for update.
  VaAllocator& va() SG_REQUIRES(lock_) { return va_; }

  // Attaches `pr` to the shared image (the caller already claimed its VA
  // range): points its region at the group's page accountant, bumps the
  // layout seqcount around the insert, republishes the snapshot, and
  // opportunistically reclaims the graveyard. Returns the attached pregion.
  Pregion* AttachPregion(std::unique_ptr<Pregion> pr) SG_REQUIRES(lock_);

  // Detaches the pregion based at `base` (exact match): shoots down every
  // member TLB, erases it from the list and republishes — all inside one
  // seqcount write section — then cuts the region loose from the page
  // accountant. Returns the detached pregion (the caller frees its VA range
  // and usually retires it), or null if no pregion is based there.
  std::unique_ptr<Pregion> DetachPregion(vaddr_t base) SG_REQUIRES(lock_);

  // Extracts the stack pregion owned by `pid` from the shared image
  // (seqcount-bracketed erase + republish; NO shootdown or charge change —
  // the callers' policies differ). Null if `pid` has no stack here.
  std::unique_ptr<Pregion> ExtractStackOf(pid_t pid) SG_REQUIRES(lock_);

  // Hands an erased pregion to the graveyard: it is destroyed (frames
  // freed, page charge returned by ~Region) only once no epoch reader can
  // still hold a pointer to it — at the next AwaitQuiescent, or at an
  // opportunistic TryReclaim that finds both parities empty.
  void RetirePregion(std::unique_ptr<Pregion> pr) SG_REQUIRES(lock_);

  // Rebuilds and publishes the layout snapshot from the authoritative list
  // and member registry; the previous snapshot joins the graveyard. Called
  // by every mutation above; exposed for compound update paths in vm/.
  void Republish() SG_REQUIRES(lock_);

  // Flips the epoch parity and spins until every reader of the old parity
  // has drained, then frees the graveyard. Bounded: epoch sections span
  // one fault resolution. New readers enter the new parity and see the
  // current snapshot, so a continuous fault stream cannot livelock this.
  void AwaitQuiescent() SG_REQUIRES(lock_);

  // Frees the graveyard iff no epoch reader is registered on either parity
  // right now (no waiting). Cheap enough for every attach.
  void TryReclaim() SG_REQUIRES(lock_);

  // Member translation-context registry: update side to modify, at least
  // read side to iterate. Both mutators bump the layout seqcount around the
  // republish — so a lockless COW-break that flushed only the old member
  // set fails its revalidation and retries — and then wait for old-snapshot
  // readers to drain, so every in-flight flush either completed against the
  // old member set before the membership change returns, or runs against
  // the new one.
  void AddMemberTlb(Tlb* tlb) SG_REQUIRES(lock_);
  void RemoveMemberTlb(Tlb* tlb) SG_REQUIRES(lock_);
  const std::vector<Tlb*>& member_tlbs() const SG_REQUIRES_SHARED(lock_) {
    return member_tlbs_;
  }

  // §6.2 shootdown: synchronously flush every member's translations on all
  // processors. Caller holds the lock for update; any member that then
  // touches the space misses, enters the fault path, and (seeing the odd
  // seqcount or failing revalidation) lands on the lock.
  void ShootdownAll() SG_REQUIRES(lock_) { cpus_.SynchronousFlush(member_tlbs_); }

  // Page-granular invalidation used when a COW break in a shared region
  // replaces a frame: every member must drop its stale translation before
  // the new frame becomes visible. Read side suffices — the page table
  // entry itself is guarded by the region lock.
  void FlushPageAllMembers(u64 vpn) SG_REQUIRES_SHARED(lock_) {
    for (Tlb* t : member_tlbs_) {
      t->FlushPage(vpn);
    }
  }

  CpuSet& cpus() { return cpus_; }

  // Resident-page accountant for this group's image (the share group's rm
  // node; null when the group has no manager). Set once by the owning
  // ShaddrBlock before any member runs; every region that joins the shared
  // list is pointed at it (AttachPregion) and cut loose when it leaves
  // (DetachPregion, UnshareVm, block teardown).
  void set_page_charge(PageCharge* c) { page_charge_ = c; }
  PageCharge* page_charge() const { return page_charge_; }

  // Block teardown (no members remain, nobody can fault): cuts every
  // surviving image region loose from the page accountant and frees the
  // graveyard unconditionally, so retired regions return their charges
  // while the accountant is still alive.
  void TeardownRelease() SG_NO_THREAD_SAFETY_ANALYSIS;

 private:
  static constexpr u32 kEpochSlots = 16;  // power of two
  struct alignas(64) EpochSlot {
    std::atomic<u64> n[2] = {0, 0};
  };

  static u32 EpochSlotIndex();

  u64 EpochSum(u32 parity) const;
  void FreeGraveyard() SG_REQUIRES(lock_);

  CpuSet& cpus_;
  // sgcheck:allow(guarded-fields): wired once (SetCharge) while the space
  // is still private to its creator, then read-only
  PageCharge* page_charge_ = nullptr;
  SharedReadLock lock_;
  SeqCount seq_{"vm.layout_seq"};
  std::atomic<const LayoutSnapshot*> snap_;  // never null after construction

  // Reader registration: writers flip epoch_parity_ and drain the old side.
  EpochSlot epoch_slots_[kEpochSlots];
  std::atomic<u32> epoch_parity_{0};

  std::vector<std::unique_ptr<Pregion>> pregions_ SG_GUARDED_BY(lock_);
  std::vector<Tlb*> member_tlbs_ SG_GUARDED_BY(lock_);
  VaAllocator va_ SG_GUARDED_BY(lock_);

  // Deferred reclamation (erased pregions, superseded snapshots).
  std::vector<std::unique_ptr<Pregion>> retired_pregions_ SG_GUARDED_BY(lock_);
  std::vector<const LayoutSnapshot*> retired_snaps_ SG_GUARDED_BY(lock_);
};

}  // namespace sg

#endif  // SRC_VM_SHARED_SPACE_H_
