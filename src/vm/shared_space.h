// SharedSpace — the VM half of the paper's shared-address block: the common
// pregion list of a share group, the shared read lock protecting every scan
// of it, the registry of member translation contexts (for cross-processor
// TLB shootdowns), and the group's virtual-address allocator.
//
// It is owned by core::ShaddrBlock but lives in vm/ so the fault path does
// not depend on the share-group layer.
#ifndef SRC_VM_SHARED_SPACE_H_
#define SRC_VM_SHARED_SPACE_H_

#include <memory>
#include <vector>

#include "base/thread_annotations.h"
#include "base/types.h"
#include "hw/cpu_set.h"
#include "hw/tlb.h"
#include "sync/shared_read_lock.h"
#include "vm/layout.h"
#include "vm/page_charge.h"
#include "vm/pregion.h"
#include "vm/va_allocator.h"

namespace sg {

class SharedSpace {
 public:
  explicit SharedSpace(CpuSet& cpus)
      : cpus_(cpus), va_(kArenaBase, kArenaEnd, kStackTop) {}
  SharedSpace(const SharedSpace&) = delete;
  SharedSpace& operator=(const SharedSpace&) = delete;

  // The paper's shared read lock. Hold for read around any scan of
  // pregions(); hold for update around any modification of the list, a
  // region resize, or a member TLB registry change. SG_RETURN_CAPABILITY
  // lets clang see `ReadGuard g(space.lock())` as guarding the fields
  // below even through this accessor.
  SharedReadLock& lock() SG_RETURN_CAPABILITY(lock_) { return lock_; }

  // Update generation: advances on every update acquisition of the lock,
  // i.e. before any pregion-list/VA mutation can begin. A Pregion* cached
  // by a member (AddressSpace's lookup hint) while holding the read lock
  // is still live iff the generation it was recorded under is unchanged —
  // erasure requires the update side, which bumps this first.
  u64 generation() const { return lock_.updates(); }

  // The shared pregion list. Scans require the lock at least shared;
  // mutations of the returned vector additionally require the update side
  // (which clang cannot see through the reference — lockdep covers it).
  std::vector<std::unique_ptr<Pregion>>& pregions() SG_REQUIRES_SHARED(lock_) {
    return pregions_;
  }

  // Finds the shared pregion containing `va`.
  Pregion* Find(vaddr_t va) SG_REQUIRES_SHARED(lock_) {
    for (auto& pr : pregions_) {
      if (pr->Contains(va)) {
        return pr.get();
      }
    }
    return nullptr;
  }

  // Group VA allocator; callers hold the lock for update.
  VaAllocator& va() SG_REQUIRES(lock_) { return va_; }

  // Member translation-context registry: update side to modify, at least
  // read side to iterate.
  void AddMemberTlb(Tlb* tlb) SG_REQUIRES(lock_) { member_tlbs_.push_back(tlb); }
  void RemoveMemberTlb(Tlb* tlb) SG_REQUIRES(lock_) {
    std::erase(member_tlbs_, tlb);
  }
  const std::vector<Tlb*>& member_tlbs() const SG_REQUIRES_SHARED(lock_) {
    return member_tlbs_;
  }

  // §6.2 shootdown: synchronously flush every member's translations on all
  // processors. Caller holds the lock for update; any member that then
  // touches the space misses, enters the fault path, and blocks on the lock.
  void ShootdownAll() SG_REQUIRES(lock_) { cpus_.SynchronousFlush(member_tlbs_); }

  // Page-granular invalidation used when a COW break in a shared region
  // replaces a frame: every member must drop its stale translation before
  // the new frame becomes visible. Read side suffices — the page table
  // entry itself is guarded by the region lock.
  void FlushPageAllMembers(u64 vpn) SG_REQUIRES_SHARED(lock_) {
    for (Tlb* t : member_tlbs_) {
      t->FlushPage(vpn);
    }
  }

  CpuSet& cpus() { return cpus_; }

  // Resident-page accountant for this group's image (the share group's rm
  // node; null when the group has no manager). Set once by the owning
  // ShaddrBlock before any member runs; every region that joins the shared
  // list is pointed at it (AttachRegion, stack attach) and cut loose when
  // it leaves (Unmap, UnshareVm, block teardown).
  void set_page_charge(PageCharge* c) { page_charge_ = c; }
  PageCharge* page_charge() const { return page_charge_; }

 private:
  CpuSet& cpus_;
  PageCharge* page_charge_ = nullptr;
  SharedReadLock lock_;
  std::vector<std::unique_ptr<Pregion>> pregions_ SG_GUARDED_BY(lock_);
  std::vector<Tlb*> member_tlbs_ SG_GUARDED_BY(lock_);
  VaAllocator va_ SG_GUARDED_BY(lock_);
};

}  // namespace sg

#endif  // SRC_VM_SHARED_SPACE_H_
