// PageCharge — the vm layer's view of a resident-page accountant. A Region
// attached to a share group's image charges every invalid→valid page-table
// transition against one of these and uncharges every valid→invalid one, so
// the owner (the resource manager's group node, src/rm/) always knows the
// group's exact resident-page count without scanning page tables.
//
// The interface lives in vm/ so the vm layer never depends on rm/: rm's
// GroupNode implements it, and core/shaddr wires the pointer into each
// region of the group image (Region::SetCharge).
#ifndef SRC_VM_PAGE_CHARGE_H_
#define SRC_VM_PAGE_CHARGE_H_

#include "base/types.h"

namespace sg {

class PageCharge {
 public:
  virtual ~PageCharge() = default;

  // Tries to account `n` more resident pages; false means the cap is hit
  // and the caller must not allocate (the fault path surfaces kENOMEM and
  // lets the pager steal from this same image to make headroom).
  virtual bool TryChargePages(u64 n) = 0;

  // Accounts `n` pages unconditionally — for paths that cannot back out
  // (adopting an already-resident image, DupCow's swap-revival corner).
  virtual void ChargePagesForced(u64 n) = 0;

  // Returns `n` resident pages to the accountant.
  virtual void UnchargePages(u64 n) = 0;
};

}  // namespace sg

#endif  // SRC_VM_PAGE_CHARGE_H_
