// User-memory access layer: every simulated user load/store translates
// through the process's TLB and, on a miss, enters HandleFault — the page
// fault path of §6.2 (take the shared read lock, scan private pregions then
// shared, resolve the page, refill the TLB).
//
// Access atomicity: the byte transfer runs under Tlb::WithEntry, so a
// concurrent cross-processor shootdown orders strictly before or after any
// in-flight access — exactly the guarantee the hardware TLB gives a real
// kernel. After a shootdown, the next access misses, faults, and blocks on
// the shared read lock until the updater releases it.
#ifndef SRC_VM_ACCESS_H_
#define SRC_VM_ACCESS_H_

#include <atomic>
#include <cstring>
#include <span>

#include "base/result.h"
#include "base/types.h"
#include "vm/address_space.h"

namespace sg {

// The TLB-miss / protection-fault handler. Returns kOk once a translation
// for `va` with (at least) the requested permission is installed in the
// TLB; kEFAULT for an unmapped/forbidden address; kENOMEM when physical
// memory is exhausted.
Status HandleFault(AddressSpace& as, vaddr_t va, bool want_write);

// True when a T access is a single instruction on the simulated hardware:
// a naturally-aligned scalar no wider than a machine word. Such accesses go
// through std::atomic_ref (relaxed), giving the per-instruction atomicity
// real hardware provides — a guest word store never tears against a
// concurrent guest word load, even though neither used the Atomic* API.
template <typename T>
inline constexpr bool kSingleInstructionAccess =
    std::is_scalar_v<T> && sizeof(T) == alignof(T) && sizeof(T) <= sizeof(u64);

// Scalar load/store. T must be trivially copyable; the access must not
// cross a page boundary (naturally aligned accesses never do).
template <typename T>
Result<T> Load(AddressSpace& as, vaddr_t va) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (va % alignof(T) != 0) {
    return Errno::kEFAULT;
  }
  T out;
  for (;;) {
    const bool hit = as.tlb().WithEntry(PageOf(va), /*want_write=*/false, [&](pfn_t pfn) {
      std::byte* p = as.mem().FrameData(pfn) + (va & kPageMask);
      if constexpr (kSingleInstructionAccess<T>) {
        out = std::atomic_ref<T>(*reinterpret_cast<T*>(p)).load(std::memory_order_relaxed);
      } else {
        std::memcpy(&out, p, sizeof(T));
      }
    });
    if (hit) {
      return out;
    }
    SG_RETURN_IF_ERROR(HandleFault(as, va, /*want_write=*/false));
  }
}

template <typename T>
Status Store(AddressSpace& as, vaddr_t va, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (va % alignof(T) != 0) {
    return Errno::kEFAULT;
  }
  for (;;) {
    const bool hit = as.tlb().WithEntry(PageOf(va), /*want_write=*/true, [&](pfn_t pfn) {
      std::byte* p = as.mem().FrameData(pfn) + (va & kPageMask);
      if constexpr (kSingleInstructionAccess<T>) {
        std::atomic_ref<T>(*reinterpret_cast<T*>(p)).store(value, std::memory_order_relaxed);
      } else {
        std::memcpy(p, &value, sizeof(T));
      }
    });
    if (hit) {
      return Status::Ok();
    }
    SG_RETURN_IF_ERROR(HandleFault(as, va, /*want_write=*/true));
  }
}

// Bulk transfer between kernel buffers and user space (syscall copyin /
// copyout), page-at-a-time through the TLB.
Status CopyIn(AddressSpace& as, void* dst, vaddr_t src, u64 len);
Status CopyOut(AddressSpace& as, vaddr_t dst, const void* src, u64 len);

// Fills [dst, dst+len) with `byte`.
Status FillUser(AddressSpace& as, vaddr_t dst, u8 byte, u64 len);

// Word atomics on user memory — the substrate for user-level busy-wait
// locks (§3: "best performance is obtained using some form of busy-waiting
// ... with hardware support, synchronization speeds can approach memory
// access speeds"). `va` must be 4-byte aligned: a misaligned `va` is a
// contract violation and returns kEINVAL (kEFAULT is reserved for
// unmapped/forbidden addresses).
Result<u32> AtomicLoad32(AddressSpace& as, vaddr_t va);
Status AtomicStore32(AddressSpace& as, vaddr_t va, u32 value);
// Returns the previous value; the exchange happened iff previous==expected.
Result<u32> AtomicCas32(AddressSpace& as, vaddr_t va, u32 expected, u32 desired);
Result<u32> AtomicFetchAdd32(AddressSpace& as, vaddr_t va, u32 delta);

}  // namespace sg

#endif  // SRC_VM_ACCESS_H_
