// PageSource — the backing store of a file-backed region (mmap'd files).
//
// vm/ stays filesystem-agnostic: the api layer adapts an inode to this
// interface. A region with a source fills invalid pages from it instead of
// demand-zeroing, and WriteBack() pushes dirty pages of a shared mapping
// back out (msync / munmap of a MAP_SHARED-style mapping).
#ifndef SRC_VM_PAGE_SOURCE_H_
#define SRC_VM_PAGE_SOURCE_H_

#include <cstddef>

#include "base/types.h"

namespace sg {

class PageSource {
 public:
  virtual ~PageSource() = default;

  // Reads up to kPageSize bytes at byte offset `off` into `dst` (already
  // zero-filled); short reads past EOF leave the zero tail in place.
  virtual void ReadPage(u64 off, std::byte* dst) = 0;

  // Writes `len` bytes at byte offset `off` from `src`.
  virtual void WritePage(u64 off, const std::byte* src, u64 len) = 0;
};

}  // namespace sg

#endif  // SRC_VM_PAGE_SOURCE_H_
