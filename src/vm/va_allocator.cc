#include "vm/va_allocator.h"

#include "base/check.h"

namespace sg {

VaAllocator::VaAllocator(vaddr_t arena_base, vaddr_t arena_end, vaddr_t stack_top)
    : arena_base_(arena_base), arena_end_(arena_end), stack_top_(stack_top) {
  SG_CHECK(arena_base < arena_end && arena_end <= stack_top);
}

bool VaAllocator::Overlaps(vaddr_t base, u64 bytes) const {
  auto it = ranges_.upper_bound(base);
  if (it != ranges_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second > base) {
      return true;
    }
  }
  return it != ranges_.end() && it->first < base + bytes;
}

Result<vaddr_t> VaAllocator::AllocUp(u64 pages) {
  const u64 bytes = pages * kPageSize;
  vaddr_t candidate = arena_base_;
  for (const auto& [base, len] : ranges_) {
    if (base >= arena_end_) {
      break;  // stack ranges live above the arena
    }
    if (base >= candidate + bytes) {
      break;  // gap found
    }
    if (base + len > candidate) {
      candidate = base + len;
    }
  }
  if (candidate + bytes > arena_end_) {
    return Errno::kENOMEM;
  }
  ranges_.emplace(candidate, bytes);
  return candidate;
}

Result<vaddr_t> VaAllocator::AllocDown(u64 pages) {
  const u64 bytes = pages * kPageSize;
  // First fit from the top: walk ranges highest-first, tracking the lowest
  // usable ceiling; allocate in the first gap that fits. Stack ranges only
  // come from [arena_end_, stack_top_).
  vaddr_t ceiling = stack_top_;
  for (auto it = ranges_.rbegin(); it != ranges_.rend(); ++it) {
    const vaddr_t rbase = it->first;
    const vaddr_t rend = rbase + it->second;
    if (rend <= arena_end_) {
      break;  // remaining ranges are all in the low arena
    }
    if (ceiling >= rend && ceiling - rend >= bytes) {
      break;  // gap [rend, ceiling) fits
    }
    if (rbase < ceiling) {
      ceiling = rbase;
    }
  }
  if (ceiling < arena_end_ + bytes) {
    return Errno::kENOMEM;
  }
  const vaddr_t base = ceiling - bytes;
  SG_CHECK(!Overlaps(base, bytes));
  ranges_.emplace(base, bytes);
  return base;
}

Status VaAllocator::Reserve(vaddr_t base, u64 pages) {
  const u64 bytes = pages * kPageSize;
  if ((base & kPageMask) != 0 || Overlaps(base, bytes)) {
    return Errno::kEINVAL;
  }
  ranges_.emplace(base, bytes);
  return Status::Ok();
}

void VaAllocator::Free(vaddr_t base) {
  auto it = ranges_.find(base);
  SG_CHECK(it != ranges_.end());
  ranges_.erase(it);
}

}  // namespace sg
