// Region — the System V.3 virtual-memory object the paper builds on
// ([Bach 1986]): a contiguous stretch of virtual space described by a page
// table, shared between processes by attaching it at some virtual address
// via a Pregion. "This model is designed to allow for full orthogonality
// between regions that grow (up or down), and those that are shared."
//
// Frames are demand-allocated (zero fill). Copy-on-write duplication
// (`DupCow`) produces a twin region whose pages share frames with the
// source until either side writes.
//
// Locking: each region has its own lock covering its page table. Share-group
// callers additionally hold the group's SharedReadLock around any scan that
// reaches the region (see vm/fault.cc), which is the paper's fix for the
// "implicit pointers into the region" problem of stock V.3.
#ifndef SRC_VM_REGION_H_
#define SRC_VM_REGION_H_

#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "base/result.h"
#include "base/types.h"
#include "hw/phys_mem.h"
#include "hw/swap.h"
#include "vm/page_charge.h"

namespace sg {

enum class RegionType {
  kText,   // program code
  kData,   // initialized data + bss + heap (grows via sbrk)
  kStack,  // per-process stack (demand-zero up to its maximum)
  kAnon,   // anonymous mapping (mmap); copy-on-write across fork
  kShm,    // System V shared-memory segment; stays shared across fork
  kFile,   // file-backed mapping; pages fill from a PageSource
  kPrda,   // the always-private process data area page
};

const char* RegionTypeName(RegionType t);

// One page-table entry.
struct Pte {
  pfn_t pfn = 0;
  u32 swap_slot = 0;      // nonzero while paged out
  bool valid = false;     // frame present
  bool cow = false;       // frame shared copy-on-write; mapped read-only
  bool referenced = false;  // touched since the pager's last pass (clock bit)
  bool dirty = false;       // granted write access (file-mapping writeback)
};

// Outcome of resolving a page for an access.
struct PageResolution {
  pfn_t pfn = 0;
  bool writable = false;      // may the TLB entry allow writes?
  bool frame_changed = false;  // a COW break replaced the frame (shootdown!)
};

class PageSource;

class Region {
 public:
  // Creates a region of `pages` demand-zero pages.
  static std::shared_ptr<Region> Alloc(PhysMem& mem, RegionType type, u64 pages);

  // Creates a file-backed region (type kFile): invalid pages fill from
  // `source` starting at byte `source_off`; `source_len` bytes are mapped
  // (the zero tail of the last page never reaches the source). A SHARED
  // mapping writes dirty pages back (WriteBack) and stays shared across
  // fork; a private one is COW like anonymous memory and never writes back.
  static std::shared_ptr<Region> AllocBacked(PhysMem& mem, u64 pages,
                                             std::shared_ptr<PageSource> source, u64 source_off,
                                             u64 source_len, bool shared_mapping);

  ~Region();
  Region(const Region&) = delete;
  Region& operator=(const Region&) = delete;

  RegionType type() const { return type_; }

  u64 pages() const {
    std::lock_guard<std::mutex> l(lock_);
    return ptes_.size();
  }

  // Resolves page `idx` for an access, allocating a zero frame on first
  // touch and breaking copy-on-write when `want_write`. kEFAULT if the index
  // is out of range; kENOMEM if physical memory is exhausted.
  Result<PageResolution> Resolve(u64 idx, bool want_write);

  // Grows the region to `new_pages` (demand-zero). kEINVAL if shrinking.
  Status GrowTo(u64 new_pages);

  // Shrinks to `new_pages`, freeing the frames beyond. The caller must have
  // completed the TLB shootdown protocol FIRST (§6.2): no processor may
  // hold a stale translation when the frames are freed.
  Status ShrinkTo(u64 new_pages);

  // Copy-on-write duplicate: the twin shares every present frame; both
  // sides' pages become read-only-COW. The caller must flush TLBs that may
  // cache writable translations of this region afterwards.
  std::shared_ptr<Region> DupCow();

  // Kernel-side initialization write (program loading at exec): copies
  // `data` into the region starting at byte offset `off`, allocating frames
  // directly (no TLB involvement).
  Status FillFrom(u64 off, std::span<const std::byte> data);

  // Kernel-side read (core dumps, tests): copies region bytes out; holes
  // (never-touched pages) read as zeroes.
  Status ReadBack(u64 off, std::span<std::byte> out) const;

  // Number of frames currently resident (stats / tests).
  u64 ResidentPages() const;
  // Number of pages currently out on the swap device.
  u64 SwappedPages() const;

  // True if fork shares this region instead of COW-duplicating it
  // (immutable text, SysV segments, shared file mappings).
  bool SharedAcrossFork() const;

  // True for shared file mappings, whose dirty pages must be written back
  // before the mapping is torn down.
  bool NeedsWriteBack() const { return source_ != nullptr && shared_mapping_; }

  // Writes every dirty resident page of a shared file mapping back to the
  // source and clears the dirty bits (msync / munmap).
  Status WriteBack();

  // Points this region's resident pages at `charge` (null to detach): the
  // current resident count is unaccounted from the old charge and accounted
  // (forced — an adopted image never bounces) to the new one, and every
  // later validity transition is tracked. Called when the region joins or
  // leaves a share group's image. Invariant: charge_ is non-null only while
  // the region sits on some group's shared pregion list, so the accountant
  // always outlives the pointer.
  void SetCharge(PageCharge* charge);

  // Pager support (hw/swap.h must be attached to the PhysMem):
  // One clock-hand sweep over the page table, stealing up to `want`
  // resident, unreferenced, sole-owner pages to swap. The first encounter
  // of a referenced page clears its clock bit (second-chance). For every
  // stolen page, `flushed(idx)` runs BEFORE the frame contents are copied
  // out, so the caller can invalidate any TLB that might still write to it.
  // Returns the number of pages stolen.
  template <typename FlushFn>
  u64 StealPages(u64 want, FlushFn&& flushed);

 private:
  Region(PhysMem& mem, RegionType type, u64 pages);

  // Steals one page (caller holds lock_, preconditions checked). Returns
  // false if the swap device is full.
  template <typename FlushFn>
  bool StealOne(u64 idx, FlushFn&& flushed);

  PhysMem& mem_;
  RegionType type_;
  mutable std::mutex lock_;
  std::vector<Pte> ptes_;
  u64 clock_hand_ = 0;  // pager sweep position

  // Resident-page accountant (guarded by lock_); see SetCharge.
  PageCharge* charge_ = nullptr;

  // File backing (kFile regions only).
  std::shared_ptr<PageSource> source_;
  u64 source_off_ = 0;
  u64 source_len_ = 0;
  bool shared_mapping_ = false;
};

// ----- pager support (template bodies) -----

template <typename FlushFn>
bool Region::StealOne(u64 idx, FlushFn&& flushed) {
  Pte& pte = ptes_[idx];
  // The caller may still have writable translations of this page cached;
  // invalidate them BEFORE copying the frame out, so no store lands after
  // the copy. A racing accessor then misses, faults, and blocks on this
  // region's lock until we finish.
  flushed(idx);
  auto slot = mem_.swap_device()->WriteOut(mem_.FrameData(pte.pfn));
  if (!slot.ok()) {
    return false;  // swap device full
  }
  mem_.Unref(pte.pfn);
  pte.pfn = 0;
  pte.valid = false;
  pte.swap_slot = slot.value();
  if (charge_ != nullptr) {
    // The steal shrank the group's resident set — this is how the pager
    // makes headroom under a page cap.
    charge_->UnchargePages(1);
  }
  return true;
}

template <typename FlushFn>
u64 Region::StealPages(u64 want, FlushFn&& flushed) {
  std::lock_guard<std::mutex> l(lock_);
  if (mem_.swap_device() == nullptr || ptes_.empty()) {
    return 0;
  }
  u64 stolen = 0;
  // Two-handed clock: up to two full sweeps (the first clears reference
  // bits, the second harvests whatever stayed cold).
  const u64 limit = 2 * ptes_.size();
  for (u64 step = 0; step < limit && stolen < want; ++step) {
    Pte& pte = ptes_[clock_hand_];
    const u64 idx = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % ptes_.size();
    if (!pte.valid || pte.cow) {
      continue;  // absent, or the frame is COW-shared with another region
    }
    if (pte.referenced) {
      pte.referenced = false;  // second chance
      continue;
    }
    if (mem_.RefCount(pte.pfn) != 1) {
      continue;  // shared frame: no reverse map, so leave it alone
    }
    if (!StealOne(idx, flushed)) {
      break;  // swap full
    }
    ++stolen;
  }
  return stolen;
}

}  // namespace sg

#endif  // SRC_VM_REGION_H_
