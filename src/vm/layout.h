// Virtual address space layout of a simulated process (32-bit layout like
// the MIPS R2000 target).
//
//   0x0000'1000  text (program code), read/execute
//   0x1000'0000  data (initialized data + bss + brk heap, grows up)
//   0x2000'0000  PRDA — process data area, ONE page, always private (§5.1)
//   0x3000'0000  arena: mmap / SysV shared memory attach range (grows up)
//   0x7000'0000  stack top; stacks are carved downward from here. Each
//                sproc() child gets its own non-overlapping stack.
#ifndef SRC_VM_LAYOUT_H_
#define SRC_VM_LAYOUT_H_

#include "base/types.h"

namespace sg {

inline constexpr vaddr_t kTextBase = 0x0000'1000;
inline constexpr vaddr_t kDataBase = 0x1000'0000;
inline constexpr vaddr_t kPrdaBase = 0x2000'0000;
inline constexpr vaddr_t kArenaBase = 0x3000'0000;
inline constexpr vaddr_t kArenaEnd = 0x6000'0000;
inline constexpr vaddr_t kStackTop = 0x7000'0000;

// Default maximum stack size (pages); adjustable per process with
// prctl(PR_SETSTACKSIZE). 1 MiB default.
inline constexpr u64 kDefaultStackMaxPages = 256;

// Hard ceiling for PR_SETSTACKSIZE: 64 MiB.
inline constexpr u64 kMaxStackMaxPages = 16384;

}  // namespace sg

#endif  // SRC_VM_LAYOUT_H_
