// Virtual-address range allocator for one address space (or one share
// group's common space): hands out page-aligned ranges for mmap/shm
// attachments (growing up from the arena base) and for sproc stacks
// (growing down from the stack top).
#ifndef SRC_VM_VA_ALLOCATOR_H_
#define SRC_VM_VA_ALLOCATOR_H_

#include <map>

#include "base/result.h"
#include "base/types.h"

namespace sg {

// Not thread-safe: callers hold the owning space's lock.
class VaAllocator {
 public:
  VaAllocator(vaddr_t arena_base, vaddr_t arena_end, vaddr_t stack_top);

  // Allocates `pages` pages upward from the arena base (first fit).
  Result<vaddr_t> AllocUp(u64 pages);

  // Allocates `pages` pages downward from the stack top (first fit from the
  // top); returns the *base* (lowest address) of the range.
  Result<vaddr_t> AllocDown(u64 pages);

  // Reserves an explicit range; kEINVAL if it overlaps an existing one.
  Status Reserve(vaddr_t base, u64 pages);

  // Releases a previously allocated/reserved range starting at `base`.
  void Free(vaddr_t base);

  u64 RangesInUse() const { return ranges_.size(); }

 private:
  bool Overlaps(vaddr_t base, u64 bytes) const;

  vaddr_t arena_base_;
  vaddr_t arena_end_;
  vaddr_t stack_top_;
  std::map<vaddr_t, u64> ranges_;  // base -> bytes
};

}  // namespace sg

#endif  // SRC_VM_VA_ALLOCATOR_H_
