#include "vm/region.h"

#include <cstring>

#include "base/check.h"
#include "hw/swap.h"
#include "vm/page_source.h"

namespace sg {

const char* RegionTypeName(RegionType t) {
  switch (t) {
    case RegionType::kText: return "text";
    case RegionType::kData: return "data";
    case RegionType::kStack: return "stack";
    case RegionType::kAnon: return "anon";
    case RegionType::kShm: return "shm";
    case RegionType::kFile: return "file";
    case RegionType::kPrda: return "prda";
  }
  return "?";
}

Region::Region(PhysMem& mem, RegionType type, u64 pages) : mem_(mem), type_(type) {
  ptes_.resize(pages);
}

std::shared_ptr<Region> Region::Alloc(PhysMem& mem, RegionType type, u64 pages) {
  return std::shared_ptr<Region>(new Region(mem, type, pages));
}

std::shared_ptr<Region> Region::AllocBacked(PhysMem& mem, u64 pages,
                                            std::shared_ptr<PageSource> source, u64 source_off,
                                            u64 source_len, bool shared_mapping) {
  auto r = std::shared_ptr<Region>(new Region(mem, RegionType::kFile, pages));
  r->source_ = std::move(source);
  r->source_off_ = source_off;
  r->source_len_ = source_len;
  r->shared_mapping_ = shared_mapping;
  return r;
}

bool Region::SharedAcrossFork() const {
  switch (type_) {
    case RegionType::kText:
    case RegionType::kShm:
      return true;  // immutable / genuinely shared
    case RegionType::kFile:
      return shared_mapping_;  // MAP_SHARED-style mappings stay shared
    default:
      return false;  // copy-on-write
  }
}

Region::~Region() {
  u64 resident = 0;
  for (Pte& pte : ptes_) {
    if (pte.valid) {
      mem_.Unref(pte.pfn);
      ++resident;
    } else if (pte.swap_slot != 0) {
      mem_.swap_device()->Free(pte.swap_slot);
    }
  }
  // Normally the share-group teardown has already called SetCharge(nullptr);
  // this covers regions destroyed straight off a shared list (Unmap).
  if (charge_ != nullptr && resident != 0) {
    charge_->UnchargePages(resident);
  }
}

void Region::SetCharge(PageCharge* charge) {
  std::lock_guard<std::mutex> l(lock_);
  if (charge == charge_) {
    return;
  }
  u64 resident = 0;
  for (const Pte& pte : ptes_) {
    resident += pte.valid ? 1 : 0;
  }
  if (resident != 0) {
    if (charge_ != nullptr) {
      charge_->UnchargePages(resident);
    }
    if (charge != nullptr) {
      charge->ChargePagesForced(resident);
    }
  }
  charge_ = charge;
}

Result<PageResolution> Region::Resolve(u64 idx, bool want_write) {
  std::lock_guard<std::mutex> l(lock_);
  if (idx >= ptes_.size()) {
    return Errno::kEFAULT;
  }
  Pte& pte = ptes_[idx];
  pte.referenced = true;  // clock bit for the pager
  // Shared file mappings track dirtiness: writes must fault once so the
  // dirty bit is set before write access is granted.
  const bool track_dirty = NeedsWriteBack();
  if (want_write && track_dirty) {
    pte.dirty = true;
  }
  if (!pte.valid) {
    // Cap check before the allocation: a group at its resident-page cap is
    // refused even when free frames exist, and the kENOMEM sends the fault
    // path to the pager, which steals from this same image (uncharging as
    // it goes) until there is headroom — or the access faults for real.
    if (charge_ != nullptr && !charge_->TryChargePages(1)) {
      return Errno::kENOMEM;
    }
    auto frame = mem_.AllocFrame();
    if (!frame.ok()) {
      if (charge_ != nullptr) {
        charge_->UnchargePages(1);
      }
      return frame.error();
    }
    if (pte.swap_slot != 0) {
      // Major fault: the pager stole this page; bring it back in.
      mem_.swap_device()->ReadInAndFree(pte.swap_slot, mem_.FrameData(frame.value()));
      pte.swap_slot = 0;
    } else if (source_ != nullptr) {
      // File-backed: fill from the source (frame is pre-zeroed, so the
      // tail past EOF stays zero).
      source_->ReadPage(source_off_ + idx * kPageSize, mem_.FrameData(frame.value()));
    }
    // else: demand zero — first touch of the page.
    pte.pfn = frame.value();
    pte.valid = true;
    pte.cow = false;
    return PageResolution{pte.pfn, !track_dirty || pte.dirty, false};
  }
  if (pte.cow && want_write) {
    // Copy-on-write break.
    if (mem_.TakeExclusive(pte.pfn)) {
      // Sole owner already: just regain write permission.
      pte.cow = false;
      return PageResolution{pte.pfn, true, false};
    }
    auto frame = mem_.AllocFrame();
    if (!frame.ok()) {
      return frame.error();
    }
    std::memcpy(mem_.FrameData(frame.value()), mem_.FrameData(pte.pfn), kPageSize);
    mem_.Unref(pte.pfn);
    pte.pfn = frame.value();
    pte.cow = false;
    return PageResolution{pte.pfn, true, true};
  }
  // Present page: COW pages stay read-only so a later write traps, and
  // clean pages of a writeback mapping stay read-only so the first write
  // marks them dirty.
  return PageResolution{pte.pfn, !pte.cow && (!track_dirty || pte.dirty), false};
}

Status Region::WriteBack() {
  std::lock_guard<std::mutex> l(lock_);
  if (!NeedsWriteBack()) {
    return Errno::kEINVAL;
  }
  for (u64 idx = 0; idx < ptes_.size(); ++idx) {
    Pte& pte = ptes_[idx];
    if (!pte.dirty) {
      continue;
    }
    const u64 off = idx * kPageSize;
    if (off >= source_len_) {
      continue;  // the zero tail past the mapped length never writes back
    }
    const u64 len = std::min<u64>(kPageSize, source_len_ - off);
    if (pte.valid) {
      source_->WritePage(source_off_ + off, mem_.FrameData(pte.pfn), len);
    } else if (pte.swap_slot != 0) {
      // The pager stole a dirty page; push the swap copy out.
      std::byte page[kPageSize];
      mem_.swap_device()->Peek(pte.swap_slot, page);
      source_->WritePage(source_off_ + off, page, len);
    }
    pte.dirty = false;
  }
  return Status::Ok();
}

Status Region::GrowTo(u64 new_pages) {
  std::lock_guard<std::mutex> l(lock_);
  if (new_pages < ptes_.size()) {
    return Errno::kEINVAL;
  }
  ptes_.resize(new_pages);
  return Status::Ok();
}

Status Region::ShrinkTo(u64 new_pages) {
  std::lock_guard<std::mutex> l(lock_);
  if (new_pages > ptes_.size()) {
    return Errno::kEINVAL;
  }
  u64 freed = 0;
  for (u64 i = new_pages; i < ptes_.size(); ++i) {
    if (ptes_[i].valid) {
      mem_.Unref(ptes_[i].pfn);
      ++freed;
    } else if (ptes_[i].swap_slot != 0) {
      mem_.swap_device()->Free(ptes_[i].swap_slot);
    }
  }
  ptes_.resize(new_pages);
  if (charge_ != nullptr && freed != 0) {
    charge_->UnchargePages(freed);
  }
  return Status::Ok();
}

std::shared_ptr<Region> Region::DupCow() {
  std::lock_guard<std::mutex> l(lock_);
  auto twin = std::shared_ptr<Region>(new Region(mem_, type_, ptes_.size()));
  // A private file mapping's twin keeps the backing so untouched pages
  // still fill from the file; it never writes back.
  twin->source_ = source_;
  twin->source_off_ = source_off_;
  twin->source_len_ = source_len_;
  twin->shared_mapping_ = false;
  for (u64 i = 0; i < ptes_.size(); ++i) {
    Pte& src = ptes_[i];
    if (src.valid) {
      mem_.Ref(src.pfn);
      src.cow = true;  // source loses write permission until it re-faults
      twin->ptes_[i].pfn = src.pfn;
      twin->ptes_[i].valid = true;
      twin->ptes_[i].cow = true;
    } else if (src.swap_slot != 0) {
      // Paged-out page: the twin needs its own copy of the swap slot (two
      // PTEs must never own one slot). If the device is full, swap the
      // source back in and COW-share the frame instead; exhausting BOTH
      // memory and swap mid-duplication is a panic, like early UNIX.
      auto dup = mem_.swap_device()->Duplicate(src.swap_slot);
      if (dup.ok()) {
        twin->ptes_[i].swap_slot = dup.value();
      } else {
        auto frame = mem_.AllocFrame();
        SG_CHECK(frame.ok());  // out of memory AND swap: nothing left to do
        mem_.swap_device()->ReadInAndFree(src.swap_slot, mem_.FrameData(frame.value()));
        src.pfn = frame.value();
        src.swap_slot = 0;
        src.valid = true;
        if (charge_ != nullptr) {
          // The source page came back resident mid-duplication; there is no
          // way to back out here, so the charge is forced past any cap.
          charge_->ChargePagesForced(1);
        }
        mem_.Ref(src.pfn);
        src.cow = true;
        twin->ptes_[i].pfn = src.pfn;
        twin->ptes_[i].valid = true;
        twin->ptes_[i].cow = true;
      }
    }
  }
  return twin;
}

Status Region::FillFrom(u64 off, std::span<const std::byte> data) {
  std::lock_guard<std::mutex> l(lock_);
  if (off + data.size() > ptes_.size() * kPageSize) {
    return Errno::kEFAULT;
  }
  u64 done = 0;
  while (done < data.size()) {
    const u64 idx = (off + done) >> kPageShift;
    const u64 page_off = (off + done) & kPageMask;
    const u64 chunk = std::min<u64>(kPageSize - page_off, data.size() - done);
    Pte& pte = ptes_[idx];
    if (!pte.valid) {
      auto frame = mem_.AllocFrame();
      if (!frame.ok()) {
        return frame.error();
      }
      pte.pfn = frame.value();
      pte.valid = true;
      if (charge_ != nullptr) {
        // Kernel-side image initialization never bounces on a cap.
        charge_->ChargePagesForced(1);
      }
    }
    SG_CHECK(!pte.cow);  // initialization happens before any sharing
    std::memcpy(mem_.FrameData(pte.pfn) + page_off, data.data() + done, chunk);
    done += chunk;
  }
  return Status::Ok();
}

Status Region::ReadBack(u64 off, std::span<std::byte> out) const {
  std::lock_guard<std::mutex> l(lock_);
  if (off + out.size() > ptes_.size() * kPageSize) {
    return Errno::kEFAULT;
  }
  u64 done = 0;
  while (done < out.size()) {
    const u64 idx = (off + done) >> kPageShift;
    const u64 page_off = (off + done) & kPageMask;
    const u64 chunk = std::min<u64>(kPageSize - page_off, out.size() - done);
    const Pte& pte = ptes_[idx];
    if (pte.valid) {
      std::memcpy(out.data() + done, mem_.FrameData(pte.pfn) + page_off, chunk);
    } else if (pte.swap_slot != 0) {
      std::byte page[kPageSize];
      mem_.swap_device()->Peek(pte.swap_slot, page);
      std::memcpy(out.data() + done, page + page_off, chunk);
    } else {
      std::memset(out.data() + done, 0, chunk);
    }
    done += chunk;
  }
  return Status::Ok();
}

u64 Region::ResidentPages() const {
  std::lock_guard<std::mutex> l(lock_);
  u64 n = 0;
  for (const Pte& pte : ptes_) {
    n += pte.valid ? 1 : 0;
  }
  return n;
}

u64 Region::SwappedPages() const {
  std::lock_guard<std::mutex> l(lock_);
  u64 n = 0;
  for (const Pte& pte : ptes_) {
    n += (!pte.valid && pte.swap_slot != 0) ? 1 : 0;
  }
  return n;
}

}  // namespace sg
