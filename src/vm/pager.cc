#include "vm/pager.h"

#include "obs/stats.h"
#include "obs/trace.h"
#include "sync/shared_read_lock.h"

namespace sg {

u64 ReclaimPages(AddressSpace& as, u64 target) {
  if (as.mem().swap_device() == nullptr || target == 0) {
    return 0;
  }
  u64 stolen = 0;
  Tlb& tlb = as.tlb();
  for (auto& pr : as.private_pregions()) {
    if (stolen >= target) {
      break;
    }
    const u64 vpn0 = PageOf(pr->base);
    stolen += pr->region->StealPages(target - stolen,
                                     [&](u64 idx) { tlb.FlushPage(vpn0 + idx); });
  }
  SharedSpace* ss = as.shared();
  if (ss != nullptr && stolen < target) {
    ReadGuard g(ss->lock());
    for (auto& pr : ss->pregions()) {
      if (stolen >= target) {
        break;
      }
      // The pregion lock excludes concurrent faulters on this pregion
      // (lockless or read-side): without it, a faulter could resolve a
      // frame, lose the race to our flush-then-copy-out, and insert a
      // stale translation to a frame we just swapped out.
      MutexGuard pl(pr->lock);
      const u64 vpn0 = PageOf(pr->base);
      stolen += pr->region->StealPages(
          target - stolen, [&](u64 idx) { ss->FlushPageAllMembers(vpn0 + idx); });
    }
  }
  if (stolen > 0) {
    SG_OBS_ADD("vm.pager_steals", stolen);
    obs::Trace(obs::TraceKind::kPagerSteal, stolen);
  }
  return stolen;
}

}  // namespace sg
