// Pregion — the per-process attachment of a Region at a virtual address
// (System V.3 `preg`). A share group keeps one common list of pregions in
// its shared block; private pregions (the PRDA, debugger-private text)
// stay on the process's own list and are scanned FIRST on a fault, which is
// what lets a private page shadow the shared image (§6.2).
#ifndef SRC_VM_PREGION_H_
#define SRC_VM_PREGION_H_

#include <memory>

#include "base/mutex.h"
#include "base/types.h"
#include "vm/region.h"

namespace sg {

// Access protection bits.
inline constexpr u32 kProtRead = 1u << 0;
inline constexpr u32 kProtWrite = 1u << 1;
inline constexpr u32 kProtExec = 1u << 2;
inline constexpr u32 kProtRw = kProtRead | kProtWrite;
inline constexpr u32 kProtRx = kProtRead | kProtExec;

struct Pregion {
  std::shared_ptr<Region> region;
  vaddr_t base = 0;  // lowest virtual address of the attachment
  u32 prot = kProtRw;
  pid_t stack_owner = 0;  // for stack pregions: pid the stack was made for

  // Per-pregion lock (DESIGN.md §4h): a shared-list faulter holds it
  // across {Resolve, member flush, TLB insert} and the pager holds it
  // around StealPages, so a steal's flush-before-copy-out can never
  // interleave with a resolve's insert-after-release (the stale-TLB
  // read-side bug the group-wide read lock used to mask). Private-list
  // pregions never need it — only the owner thread touches them. Lock
  // order: [group read lock] -> pregion lock -> region lock -> TLB lock.
  // Host-level (sg::Mutex): critical sections are one page's resolution.
  mutable Mutex lock;

  Pregion(std::shared_ptr<Region> r, vaddr_t b, u32 p) : region(std::move(r)), base(b), prot(p) {}

  u64 bytes() const { return region->pages() * kPageSize; }

  bool Contains(vaddr_t va) const { return va >= base && va < base + bytes(); }

  // Page index within the region for `va` (caller checked Contains).
  u64 PageIndex(vaddr_t va) const { return (va - base) >> kPageShift; }
};

}  // namespace sg

#endif  // SRC_VM_PREGION_H_
