// The pager — the second reader of the §6.2 shared read lock ("operations
// that scan (page fault, pager)"). Under memory pressure it sweeps the
// image visible to a faulting process with a two-handed clock, stealing
// cold sole-owner pages to the swap device; the fault path retries after a
// successful reclaim.
#ifndef SRC_VM_PAGER_H_
#define SRC_VM_PAGER_H_

#include "base/types.h"
#include "vm/address_space.h"

namespace sg {

// Steals up to `target` resident pages from the image visible to `as`: its
// own private regions first (the calling thread owns that list), then the
// group's shared list under the shared read lock, invalidating every
// member's translation before a page leaves. Returns pages stolen. Safe to
// call while already holding the shared read lock for read (the lock
// admits recursive readers). No-op without an attached swap device.
u64 ReclaimPages(AddressSpace& as, u64 target);

}  // namespace sg

#endif  // SRC_VM_PAGER_H_
