#include "vm/vm_ops.h"

#include <optional>

#include "base/check.h"
#include "base/thread_annotations.h"
#include "sync/seqcount.h"
#include "sync/shared_read_lock.h"

namespace sg {

namespace {

// Finds the data pregion. Caller holds the shared lock when `ss` != null.
Pregion* FindData(AddressSpace& as) { return as.FindByType(RegionType::kData); }

}  // namespace

// Suppressed: the guard is conditional (std::optional, taken only when the
// process shares VM), a shape clang's analysis cannot model. The runtime
// lockdep validator covers these paths instead.
Result<vaddr_t> CurrentBrk(AddressSpace& as) SG_NO_THREAD_SAFETY_ANALYSIS {
  SharedSpace* ss = as.shared();
  std::optional<ReadGuard> guard;
  if (ss != nullptr) {
    guard.emplace(ss->lock());
  }
  Pregion* data = FindData(as);
  if (data == nullptr) {
    return Errno::kEINVAL;
  }
  return data->base + data->bytes();
}

// Suppressed: conditional std::optional guard (see CurrentBrk).
Result<vaddr_t> Sbrk(AddressSpace& as, i64 delta, u64 max_data_pages) SG_NO_THREAD_SAFETY_ANALYSIS {
  SharedSpace* ss = as.shared();
  // Any resize is a VM-image update: exclude all concurrent faulters so the
  // paper's rule holds — "by the time control is returned to the process
  // making the VM modification, all other processes in the share group will
  // also see that modification".
  std::optional<UpdateGuard> guard;
  if (ss != nullptr) {
    guard.emplace(ss->lock());
  }
  Pregion* data = FindData(as);
  if (data == nullptr) {
    return Errno::kEINVAL;
  }
  const u64 old_pages = data->region->pages();
  const vaddr_t old_brk = data->base + old_pages * kPageSize;
  if (delta == 0) {
    return old_brk;
  }
  if (delta > 0) {
    const u64 add = PagesFor(static_cast<u64>(delta));
    const u64 new_pages = old_pages + add;
    if (max_data_pages != 0 && new_pages > max_data_pages) {
      return Errno::kENOMEM;
    }
    if (data->base + new_pages * kPageSize > kPrdaBase) {
      return Errno::kENOMEM;  // data may not run into the PRDA
    }
    SG_RETURN_IF_ERROR(data->region->GrowTo(new_pages));
    return old_brk;
  }
  // Shrink: frames are about to be freed. §6.2 — synchronously flush every
  // processor's TLB first, while holding the update lock. The seqcount
  // bracket covers flush + free together: a lockless faulter that resolved
  // a doomed page re-checks the count after its TLB insert, fails, and
  // drops its own entry (DESIGN.md §4h).
  const u64 sub = PagesFor(static_cast<u64>(-delta));
  if (sub > old_pages) {
    return Errno::kEINVAL;
  }
  if (ss != nullptr) {
    SeqWriter w(ss->layout_seq());
    ss->ShootdownAll();
    SG_RETURN_IF_ERROR(data->region->ShrinkTo(old_pages - sub));
  } else {
    as.tlb().FlushAll();
    SG_RETURN_IF_ERROR(data->region->ShrinkTo(old_pages - sub));
  }
  return old_brk;
}

Result<vaddr_t> MapAnon(AddressSpace& as, u64 bytes, u32 prot) {
  if (bytes == 0) {
    return Errno::kEINVAL;
  }
  const u64 pages = PagesFor(bytes);
  auto region = Region::Alloc(as.mem(), RegionType::kAnon, pages);
  return AttachRegion(as, std::move(region), prot);
}

Result<vaddr_t> AttachRegion(AddressSpace& as, std::shared_ptr<Region> region, u32 prot) {
  const u64 pages = region->pages();
  SharedSpace* ss = as.shared();
  if (ss != nullptr) {
    UpdateGuard guard(ss->lock());
    auto base = ss->va().AllocUp(pages);
    if (!base.ok()) {
      return base.error();
    }
    // AttachPregion points the region at the group's page accountant,
    // publishes the new layout and bumps the seqcount around the insert.
    ss->AttachPregion(std::make_unique<Pregion>(std::move(region), base.value(), prot));
    return base.value();
  }
  auto base = as.va().AllocUp(pages);
  if (!base.ok()) {
    return base.error();
  }
  as.AttachPrivate(std::make_unique<Pregion>(std::move(region), base.value(), prot));
  return base.value();
}

Status Unmap(AddressSpace& as, vaddr_t base) {
  if (base < kArenaBase || base >= kArenaEnd) {
    return Errno::kEINVAL;  // only arena mappings may be detached
  }
  SharedSpace* ss = as.shared();
  if (ss != nullptr) {
    UpdateGuard guard(ss->lock());
    Pregion* found = nullptr;
    for (auto& pr : ss->pregions()) {
      if (pr->base == base) {
        found = pr.get();
        break;
      }
    }
    if (found == nullptr) {
      return Errno::kEINVAL;
    }
    if (found->region->NeedsWriteBack()) {
      SG_RETURN_IF_ERROR(found->region->WriteBack());
    }
    // DetachPregion shoots every member down, unpublishes the pregion and
    // cuts it loose from the page accountant — all seqcount-bracketed. The
    // pregion itself goes to the graveyard, and the quiescence wait below
    // both guarantees no lockless faulter still holds it and returns its
    // frames promptly (munmap's contract is that the memory is really gone).
    auto owned = ss->DetachPregion(base);
    SG_CHECK(owned != nullptr);
    ss->va().Free(base);
    ss->RetirePregion(std::move(owned));
    ss->AwaitQuiescent();
    return Status::Ok();
  }
  Pregion* pr = as.FindPrivate(base);
  if (pr == nullptr || pr->base != base) {
    return Errno::kEINVAL;
  }
  if (pr->region->NeedsWriteBack()) {
    SG_RETURN_IF_ERROR(pr->region->WriteBack());
  }
  SG_CHECK(as.DetachPrivate(base));
  as.va().Free(base);
  return Status::Ok();
}

// Suppressed: conditional std::optional guard (see CurrentBrk).
Status DuplicateForFork(AddressSpace& parent, AddressSpace& child) SG_NO_THREAD_SAFETY_ANALYSIS {
  SG_CHECK(child.shared() == nullptr);
  SharedSpace* ss = parent.shared();
  std::optional<UpdateGuard> guard;
  if (ss != nullptr) {
    guard.emplace(ss->lock());
  }

  auto dup_one = [&child](const Pregion& pr) {
    // Immutable text, SysV segments and shared file mappings stay genuinely
    // shared across fork; everything else is duplicated copy-on-write.
    std::shared_ptr<Region> r =
        pr.region->SharedAcrossFork() ? pr.region : pr.region->DupCow();
    auto copy = std::make_unique<Pregion>(std::move(r), pr.base, pr.prot);
    copy->stack_owner = pr.stack_owner;
    if (pr.base >= kArenaBase) {
      // Claim arena/stack ranges in the child's allocator so its own
      // mmaps/stacks cannot collide with inherited attachments.
      SG_CHECK(child.va().Reserve(pr.base, pr.region->pages()).ok());
    }
    child.AttachPrivate(std::move(copy));
  };

  for (auto& pr : parent.private_pregions()) {
    dup_one(*pr);
  }
  if (ss != nullptr) {
    // COW marking revokes write permission from pages other members may
    // still hold cached writable — or may be about to re-resolve through
    // the lockless fault path. The seqcount bracket spans marking + flush,
    // so a racing faulter that installed a writable entry off the
    // pre-marking page table fails its re-check and undoes it.
    SeqWriter w(ss->layout_seq());
    for (auto& pr : ss->pregions()) {
      dup_one(*pr);
    }
    ss->ShootdownAll();
  } else {
    parent.tlb().FlushAll();
  }
  return Status::Ok();
}

}  // namespace sg
