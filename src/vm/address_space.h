// AddressSpace — one process's view of virtual memory: its private pregion
// list (always containing at least the PRDA), an optional pointer to the
// share group's SharedSpace, and its translation context (TLB).
//
// Scan order on a fault is private first, then shared (§6.2): "This
// provides the copy-on-write abilities of a non-VM sharing share group
// member" and lets the always-private PRDA shadow the shared image.
//
// Concurrency: the private list and private VA allocator are touched only
// by the owning process's thread (plus fork/exec setup before the process
// runs); the shared list is protected by SharedSpace::lock().
#ifndef SRC_VM_ADDRESS_SPACE_H_
#define SRC_VM_ADDRESS_SPACE_H_

#include <atomic>
#include <memory>
#include <vector>

#include "base/thread_annotations.h"
#include "base/types.h"
#include "hw/phys_mem.h"
#include "hw/tlb.h"
#include "vm/layout.h"
#include "vm/pregion.h"
#include "vm/shared_space.h"
#include "vm/va_allocator.h"

namespace sg {

class AddressSpace {
 public:
  explicit AddressSpace(PhysMem& mem, u32 tlb_entries = 64)
      : mem_(mem), tlb_(tlb_entries), va_(kArenaBase, kArenaEnd, kStackTop) {}
  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  PhysMem& mem() { return mem_; }
  Tlb& tlb() { return tlb_; }

  SharedSpace* shared() { return shared_; }
  void set_shared(SharedSpace* s) {
    shared_ = s;
    // A hint recorded against a previous shared space could collide with
    // the new space's generation numbering; never carry it across.
    hint_shared_.store(0, std::memory_order_relaxed);
  }

  std::vector<std::unique_ptr<Pregion>>& private_pregions() { return private_; }

  // Private VA allocator, used while this space is not sharing VM.
  VaAllocator& va() { return va_; }

  // Finds the private pregion containing `va` (owner thread only).
  Pregion* FindPrivate(vaddr_t va) {
    for (auto& pr : private_) {
      if (pr->Contains(va)) {
        return pr.get();
      }
    }
    return nullptr;
  }

  // Fault-path lookup with a last-hit hint cache (the IRIX p_pregion /
  // Linux vmacache idiom): page faults cluster, so the pregion that
  // resolved the last fault almost always resolves the next one and the
  // list walks are skipped entirely. Private precedence is preserved — the
  // private hint and private list are always consulted before anything
  // shared, so a private page still shadows the shared image (§6.2).
  // `*out_shared` (may be null) is set when the result lives on the
  // shared list. The
  // caller holds the shared read lock if a shared space is attached; the
  // shared hint revalidates against SharedSpace::generation(), the private
  // hint against the owner-thread-only private list (see
  // InvalidatePrivateHint).
  Pregion* FindPregionFast(vaddr_t va, bool* out_shared);

  // Private half of FindPregionFast: hint, then walk. Owner thread only,
  // touches nothing shared — the lockless fault path calls this without
  // any lock or epoch registration.
  Pregion* FindPrivateFast(vaddr_t va);

  // Shared half for the LOCKLESS fault path: resolves `va` against the
  // published snapshot `snap`, which the caller loaded at layout
  // generation `gen` inside an epoch section (see shared_space.h). The
  // last-hit hint is trusted only when it was recorded under this same
  // generation — an erased pregion implies a generation bump, so a stale
  // pointer is rejected before it is dereferenced — and is re-primed at
  // `gen` on a walk hit. The caller revalidates the seqcount before acting
  // on a genuine miss.
  Pregion* FindSharedFast(const LayoutSnapshot& snap, vaddr_t va, u64 gen);

  // Drops the private-list hint. Must be called by every path that erases
  // a private pregion (detach, exec teardown, share-group formation moving
  // pregions onto the shared list).
  void InvalidatePrivateHint() { hint_private_.store(nullptr, std::memory_order_relaxed); }

  // Finds a pregion by region type, scanning private then shared. The
  // caller holds the shared lock if a shared space is attached — a
  // conditional precondition clang cannot express, hence the suppression
  // (the runtime lockdep validator covers these scans).
  Pregion* FindByType(RegionType type) SG_NO_THREAD_SAFETY_ANALYSIS {
    for (auto& pr : private_) {
      if (pr->region->type() == type) {
        return pr.get();
      }
    }
    if (shared_ != nullptr) {
      return shared_->FindByType(type);
    }
    return nullptr;
  }

  // Attaches a pregion to the private list. The caller has already claimed
  // the VA range from the relevant allocator.
  Pregion* AttachPrivate(std::unique_ptr<Pregion> pr) {
    private_.push_back(std::move(pr));
    return private_.back().get();
  }

  // Removes (and destroys) the private pregion at `base`; returns whether
  // one was found. Flushes the owner's TLB range.
  bool DetachPrivate(vaddr_t base);

  // Drops every private pregion (exit/exec teardown) and flushes the TLB.
  void DetachAllPrivate();

  // Resets the private VA allocator (exec builds a fresh image).
  void ResetVa() { va_ = VaAllocator(kArenaBase, kArenaEnd, kStackTop); }

  // Fault counters.
  std::atomic<u64> faults{0};
  std::atomic<u64> cow_breaks{0};

 private:
  PhysMem& mem_;
  Tlb tlb_;
  SharedSpace* shared_ = nullptr;
  std::vector<std::unique_ptr<Pregion>> private_;
  VaAllocator va_;

  // Last-hit lookup hints. Relaxed atomics, not plain pointers: Mach-style
  // task threads fault concurrently through one AddressSpace, so hints are
  // primed/read from several host threads at once.
  //
  // The private hint is a bare pointer revalidated with Contains(va); the
  // private list only mutates while no other thread of the process runs,
  // so a hint that passes Contains is alive.
  //
  // The shared hint deliberately does NOT store a pointer: two separate
  // atomics (pointer + generation) could be observed as a mixed pair under
  // concurrent primers, pairing a retired pregion with a current
  // generation. Instead one word packs (generation << 16 | index+1) into
  // the snapshot's pregion vector; the reader re-derives the pointer from
  // the immutable snapshot it already holds pinned, so only
  // self-consistent hints are ever followed and no cross-thread pointer is
  // dereferenced. Generation mismatch, an out-of-range index, or a
  // Contains failure all just fall back to the walk.
  std::atomic<Pregion*> hint_private_{nullptr};
  std::atomic<u64> hint_shared_{0};  // (gen << 16) | (pregion index + 1)
};

}  // namespace sg

#endif  // SRC_VM_ADDRESS_SPACE_H_
