// AddressSpace — one process's view of virtual memory: its private pregion
// list (always containing at least the PRDA), an optional pointer to the
// share group's SharedSpace, and its translation context (TLB).
//
// Scan order on a fault is private first, then shared (§6.2): "This
// provides the copy-on-write abilities of a non-VM sharing share group
// member" and lets the always-private PRDA shadow the shared image.
//
// Concurrency: the private list and private VA allocator are touched only
// by the owning process's thread (plus fork/exec setup before the process
// runs); the shared list is protected by SharedSpace::lock().
#ifndef SRC_VM_ADDRESS_SPACE_H_
#define SRC_VM_ADDRESS_SPACE_H_

#include <atomic>
#include <memory>
#include <vector>

#include "base/thread_annotations.h"
#include "base/types.h"
#include "hw/phys_mem.h"
#include "hw/tlb.h"
#include "vm/layout.h"
#include "vm/pregion.h"
#include "vm/shared_space.h"
#include "vm/va_allocator.h"

namespace sg {

class AddressSpace {
 public:
  explicit AddressSpace(PhysMem& mem, u32 tlb_entries = 64)
      : mem_(mem), tlb_(tlb_entries), va_(kArenaBase, kArenaEnd, kStackTop) {}
  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  PhysMem& mem() { return mem_; }
  Tlb& tlb() { return tlb_; }

  SharedSpace* shared() { return shared_; }
  void set_shared(SharedSpace* s) {
    shared_ = s;
    // A hint recorded against a previous shared space could collide with
    // the new space's generation numbering; never carry it across.
    hint_shared_ = nullptr;
    hint_shared_gen_ = 0;
  }

  std::vector<std::unique_ptr<Pregion>>& private_pregions() { return private_; }

  // Private VA allocator, used while this space is not sharing VM.
  VaAllocator& va() { return va_; }

  // Finds the private pregion containing `va` (owner thread only).
  Pregion* FindPrivate(vaddr_t va) {
    for (auto& pr : private_) {
      if (pr->Contains(va)) {
        return pr.get();
      }
    }
    return nullptr;
  }

  // Fault-path lookup with a last-hit hint cache (the IRIX p_pregion /
  // Linux vmacache idiom): page faults cluster, so the pregion that
  // resolved the last fault almost always resolves the next one and the
  // list walks are skipped entirely. Private precedence is preserved — the
  // private hint and private list are always consulted before anything
  // shared, so a private page still shadows the shared image (§6.2).
  // `*out_shared` (may be null) is set when the result lives on the
  // shared list. The
  // caller holds the shared read lock if a shared space is attached; the
  // shared hint revalidates against SharedSpace::generation(), the private
  // hint against the owner-thread-only private list (see
  // InvalidatePrivateHint).
  Pregion* FindPregionFast(vaddr_t va, bool* out_shared);

  // Drops the private-list hint. Must be called by every path that erases
  // a private pregion (detach, exec teardown, share-group formation moving
  // pregions onto the shared list).
  void InvalidatePrivateHint() { hint_private_ = nullptr; }

  // Finds a pregion by region type, scanning private then shared. The
  // caller holds the shared lock if a shared space is attached — a
  // conditional precondition clang cannot express, hence the suppression
  // (the runtime lockdep validator covers these scans).
  Pregion* FindByType(RegionType type) SG_NO_THREAD_SAFETY_ANALYSIS {
    for (auto& pr : private_) {
      if (pr->region->type() == type) {
        return pr.get();
      }
    }
    if (shared_ != nullptr) {
      for (auto& pr : shared_->pregions()) {
        if (pr->region->type() == type) {
          return pr.get();
        }
      }
    }
    return nullptr;
  }

  // Attaches a pregion to the private list. The caller has already claimed
  // the VA range from the relevant allocator.
  Pregion* AttachPrivate(std::unique_ptr<Pregion> pr) {
    private_.push_back(std::move(pr));
    return private_.back().get();
  }

  // Removes (and destroys) the private pregion at `base`; returns whether
  // one was found. Flushes the owner's TLB range.
  bool DetachPrivate(vaddr_t base);

  // Drops every private pregion (exit/exec teardown) and flushes the TLB.
  void DetachAllPrivate();

  // Resets the private VA allocator (exec builds a fresh image).
  void ResetVa() { va_ = VaAllocator(kArenaBase, kArenaEnd, kStackTop); }

  // Fault counters.
  std::atomic<u64> faults{0};
  std::atomic<u64> cow_breaks{0};

 private:
  PhysMem& mem_;
  Tlb tlb_;
  SharedSpace* shared_ = nullptr;
  std::vector<std::unique_ptr<Pregion>> private_;
  VaAllocator va_;

  // Last-hit lookup hints (owner thread only, like the private list).
  // hint_shared_ is trusted only while the shared space's generation still
  // equals hint_shared_gen_ — any update acquisition advances it, so a
  // pointer into an erased pregion is rejected before it is dereferenced.
  Pregion* hint_private_ = nullptr;
  Pregion* hint_shared_ = nullptr;
  u64 hint_shared_gen_ = 0;
};

}  // namespace sg

#endif  // SRC_VM_ADDRESS_SPACE_H_
