#include "vm/shared_space.h"

#include <thread>

#include "inject/inject.h"
#include "obs/stats.h"
#include "sync/spinlock.h"  // CpuRelax

namespace sg {

SharedSpace::SharedSpace(CpuSet& cpus)
    : cpus_(cpus), va_(kArenaBase, kArenaEnd, kStackTop) {
  snap_.store(new LayoutSnapshot{}, std::memory_order_release);
}

SharedSpace::~SharedSpace() {
  delete snap_.load(std::memory_order_acquire);
  for (const LayoutSnapshot* s : retired_snaps_) {
    delete s;
  }
  // retired_pregions_ (if TeardownRelease was skipped — plain vm tests)
  // free via their unique_ptrs.
}

u32 SharedSpace::EpochSlotIndex() {
  // Sticky per-thread slot, round-robin assigned, so concurrent faulters
  // land on different cachelines (same scheme as SharedReadLock's sharded
  // reader slots).
  static std::atomic<u32> next{0};
  thread_local u32 slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot & (kEpochSlots - 1);
}

u64 SharedSpace::EpochSum(u32 parity) const {
  u64 sum = 0;
  for (const EpochSlot& s : epoch_slots_) {
    sum += s.n[parity].load(std::memory_order_seq_cst);
  }
  return sum;
}

void SharedSpace::Republish() {
  auto* next = new LayoutSnapshot{};
  next->pregions.reserve(pregions_.size());
  for (auto& pr : pregions_) {
    next->pregions.push_back(pr.get());
  }
  next->tlbs = member_tlbs_;
  const LayoutSnapshot* old = snap_.exchange(next, std::memory_order_acq_rel);
  retired_snaps_.push_back(old);
}

void SharedSpace::AwaitQuiescent() {
  // Flip first, then drain only the OLD parity: readers arriving during
  // the drain register on the new side and — having incremented after the
  // flip in the seq_cst order — load the current snapshot, so they can
  // never hold anything the graveyard is about to free. Old-parity
  // sections span a single fault resolution, so the wait is bounded and a
  // continuous fault stream cannot starve the writer.
  const u32 old = epoch_parity_.fetch_xor(1, std::memory_order_seq_cst) & 1;
  SG_INJECT_POINT("vm.layout.await_drain");
  u64 spins = 0;
  u32 since_yield = 0;
  while (EpochSum(old) != 0) {
    CpuRelax();
    ++spins;
    // Epoch sections are normally one CPU-bound fault resolution, but a
    // resolve can hit the pager (swap-in) and hold its section for an I/O
    // latency — and we are spinning with the group update lock held, with
    // every other updater and fallback faulter queued behind us. Yield the
    // host thread past a threshold (same policy as Spinlock's contended
    // path) so a slow reader can actually run to its guard drop.
    if (++since_yield == 1024) {
      since_yield = 0;
      std::this_thread::yield();
    }
  }
  if (spins > 0) {
    SG_OBS_INC("vm.layout.drain_waits");
  }
  FreeGraveyard();
}

void SharedSpace::TryReclaim() {
  if (retired_pregions_.empty() && retired_snaps_.empty()) {
    return;
  }
  // Safe without a parity flip: a reader charged on either side entered
  // before these sums and may hold a retired pointer; a reader entering
  // after the sums loads the CURRENT snapshot (its increment precedes its
  // snapshot load in the seq_cst order), which references no retired
  // memory.
  if (EpochSum(0) != 0 || EpochSum(1) != 0) {
    return;
  }
  FreeGraveyard();
}

void SharedSpace::FreeGraveyard() {
  if (retired_pregions_.empty() && retired_snaps_.empty()) {
    return;
  }
  SG_OBS_ADD("vm.layout.reclaimed_pregions", retired_pregions_.size());
  retired_pregions_.clear();
  for (const LayoutSnapshot* s : retired_snaps_) {
    delete s;
  }
  retired_snaps_.clear();
}

Pregion* SharedSpace::AttachPregion(std::unique_ptr<Pregion> pr) {
  // The region joins the group image: its resident pages (usually zero for
  // fresh mappings, but a re-attached SysV segment may be populated) count
  // against the group's page cap from here on.
  pr->region->SetCharge(page_charge_);
  Pregion* raw = pr.get();
  {
    SeqWriter w(seq_);
    pregions_.push_back(std::move(pr));
    Republish();
  }
  TryReclaim();
  return raw;
}

std::unique_ptr<Pregion> SharedSpace::DetachPregion(vaddr_t base) {
  auto it = pregions_.begin();
  for (; it != pregions_.end(); ++it) {
    if ((*it)->base == base) {
      break;
    }
  }
  if (it == pregions_.end()) {
    return nullptr;
  }
  std::unique_ptr<Pregion> owned;
  {
    SeqWriter w(seq_);
    // Flush before free: no processor may retain a stale translation when
    // the region's frames return to the allocator. A lockless faulter that
    // re-inserts one concurrently fails the seqcount revalidation (the TLB
    // lock orders its insert after this flush, hence after WriteBegin) and
    // undoes its own entry.
    ShootdownAll();
    owned = std::move(*it);
    pregions_.erase(it);
    Republish();
  }
  // Leaving the group image: return the resident pages to the group before
  // the region (which may outlive the group via other owners — SysV
  // segments) loses its last tie to this accountant. A racing lockless
  // resolve serializes on the region lock: it either charges before this
  // (and the detach returns that page too) or sees no accountant.
  owned->region->SetCharge(nullptr);
  return owned;
}

std::unique_ptr<Pregion> SharedSpace::ExtractStackOf(pid_t pid) {
  for (auto it = pregions_.begin(); it != pregions_.end(); ++it) {
    if ((*it)->region->type() == RegionType::kStack && (*it)->stack_owner == pid) {
      std::unique_ptr<Pregion> owned;
      {
        SeqWriter w(seq_);
        owned = std::move(*it);
        pregions_.erase(it);
        Republish();
      }
      return owned;
    }
  }
  return nullptr;
}

void SharedSpace::RetirePregion(std::unique_ptr<Pregion> pr) {
  retired_pregions_.push_back(std::move(pr));
}

void SharedSpace::AddMemberTlb(Tlb* tlb) {
  {
    // Seqcount-bracketed like every other layout mutation: a lockless
    // COW-break that flushed only the old (narrower) member set fails its
    // revalidation and retries against the widened snapshot, so the "a
    // membership change forces a retry" invariant the fault path documents
    // is carried by the counter itself, not only by the drain below.
    SeqWriter w(seq_);
    member_tlbs_.push_back(tlb);
    Republish();
  }
  // Belt and braces on top of the retry: drain old-snapshot readers before
  // the new member can run, so any in-flight flush against the previous
  // member set completes before the member's first fault can cache a
  // translation.
  AwaitQuiescent();
}

void SharedSpace::RemoveMemberTlb(Tlb* tlb) {
  {
    // Same bracket as AddMemberTlb — see there.
    SeqWriter w(seq_);
    std::erase(member_tlbs_, tlb);
    Republish();
  }
  // The Tlb pointer is leaving the published member set; wait out every
  // reader that could still flush through the old snapshot before the
  // caller tears the context down.
  AwaitQuiescent();
}

void SharedSpace::TeardownRelease() {
  // Owner-only, past the last detach: no reader can race these scans, so
  // no lock or epoch discipline is needed (and the lock may already be
  // unheld forever).
  for (auto& pr : pregions_) {
    pr->region->SetCharge(nullptr);
  }
  retired_pregions_.clear();  // ~Region returns charges while the node lives
  for (const LayoutSnapshot* s : retired_snaps_) {
    delete s;
  }
  retired_snaps_.clear();
}

}  // namespace sg
