#include "vm/address_space.h"

#include "obs/stats.h"

namespace sg {

namespace {
void SetShared(bool* out_shared, bool v) {
  if (out_shared != nullptr) {
    *out_shared = v;
  }
}
}  // namespace

// Suppressed: holds the shared read lock only when a shared space is
// attached (see FindByType).
Pregion* AddressSpace::FindPregionFast(vaddr_t va, bool* out_shared) SG_NO_THREAD_SAFETY_ANALYSIS {
  // Private side first — hint, then walk — so a private page (PRDA,
  // privately shadowed data) always wins over the shared image. The
  // private list of a sharing member is tiny (PRDA + perhaps a shadowed
  // region), so the walk is cheap even on a hint miss.
  if (hint_private_ != nullptr && hint_private_->Contains(va)) {
    SG_OBS_INC("vm.lookup_hint_hits");
    SetShared(out_shared, false);
    return hint_private_;
  }
  if (Pregion* pr = FindPrivate(va); pr != nullptr) {
    SG_OBS_INC("vm.lookup_walks");
    hint_private_ = pr;
    SetShared(out_shared, false);
    return pr;
  }
  if (shared_ != nullptr) {
    // Shared hint: valid only while no update acquisition has happened
    // since it was recorded (we hold the read lock, so the generation
    // cannot move underneath this check).
    if (hint_shared_ != nullptr && hint_shared_gen_ == shared_->generation() &&
        hint_shared_->Contains(va)) {
      SG_OBS_INC("vm.lookup_hint_hits");
      SetShared(out_shared, true);
      return hint_shared_;
    }
    if (Pregion* pr = shared_->Find(va); pr != nullptr) {
      SG_OBS_INC("vm.lookup_walks");
      hint_shared_ = pr;
      hint_shared_gen_ = shared_->generation();
      SetShared(out_shared, true);
      return pr;
    }
  }
  SG_OBS_INC("vm.lookup_walks");
  SetShared(out_shared, false);
  return nullptr;
}

bool AddressSpace::DetachPrivate(vaddr_t base) {
  for (auto it = private_.begin(); it != private_.end(); ++it) {
    if ((*it)->base == base) {
      const u64 pages = (*it)->region->pages();
      tlb_.FlushRange(PageOf(base), PageOf(base) + pages);
      InvalidatePrivateHint();
      private_.erase(it);
      return true;
    }
  }
  return false;
}

void AddressSpace::DetachAllPrivate() {
  InvalidatePrivateHint();
  private_.clear();
  tlb_.FlushAll();
}

}  // namespace sg
