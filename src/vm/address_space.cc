#include "vm/address_space.h"

namespace sg {

bool AddressSpace::DetachPrivate(vaddr_t base) {
  for (auto it = private_.begin(); it != private_.end(); ++it) {
    if ((*it)->base == base) {
      const u64 pages = (*it)->region->pages();
      tlb_.FlushRange(PageOf(base), PageOf(base) + pages);
      private_.erase(it);
      return true;
    }
  }
  return false;
}

void AddressSpace::DetachAllPrivate() {
  private_.clear();
  tlb_.FlushAll();
}

}  // namespace sg
