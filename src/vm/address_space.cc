#include "vm/address_space.h"

#include "obs/stats.h"

namespace sg {

namespace {
void SetShared(bool* out_shared, bool v) {
  if (out_shared != nullptr) {
    *out_shared = v;
  }
}
}  // namespace

Pregion* AddressSpace::FindPrivateFast(vaddr_t va) {
  // Hint, then walk. The private list of a sharing member is tiny (PRDA +
  // perhaps a shadowed region), so the walk is cheap even on a hint miss.
  if (Pregion* hint = hint_private_.load(std::memory_order_relaxed);
      hint != nullptr && hint->Contains(va)) {
    SG_OBS_INC("vm.lookup_hint_hits");
    return hint;
  }
  if (Pregion* pr = FindPrivate(va); pr != nullptr) {
    SG_OBS_INC("vm.lookup_walks");
    hint_private_.store(pr, std::memory_order_relaxed);
    return pr;
  }
  return nullptr;
}

Pregion* AddressSpace::FindSharedFast(const LayoutSnapshot& snap, vaddr_t va, u64 gen) {
  // Shared hint: one packed word, (gen << 16) | (index + 1). Valid only
  // while the layout generation it was recorded under still matches the
  // generation of the snapshot in hand — erasure bumps the seqcount, so a
  // hint recorded against a retired layout is rejected here. The pointer
  // itself comes from `snap`, which the caller holds pinned, never from a
  // value another thread published (see the field comment in the header).
  const u64 packed = hint_shared_.load(std::memory_order_relaxed);
  if (packed != 0 && (packed >> 16) == gen) {
    const size_t idx = (packed & 0xffff) - 1;
    if (idx < snap.pregions.size() && snap.pregions[idx]->Contains(va)) {
      SG_OBS_INC("vm.lookup_hint_hits");
      return snap.pregions[idx];
    }
  }
  for (size_t i = 0; i < snap.pregions.size(); ++i) {
    if (snap.pregions[i]->Contains(va)) {
      SG_OBS_INC("vm.lookup_walks");
      if (i < 0xffff) {
        hint_shared_.store((gen << 16) | (i + 1), std::memory_order_relaxed);
      }
      return snap.pregions[i];
    }
  }
  SG_OBS_INC("vm.lookup_walks");
  return nullptr;
}

// Suppressed: holds the shared read lock only when a shared space is
// attached (see FindByType).
Pregion* AddressSpace::FindPregionFast(vaddr_t va, bool* out_shared) SG_NO_THREAD_SAFETY_ANALYSIS {
  // Private side first — so a private page (PRDA, privately shadowed data)
  // always wins over the shared image.
  if (Pregion* pr = FindPrivateFast(va); pr != nullptr) {
    SetShared(out_shared, false);
    return pr;
  }
  if (shared_ != nullptr) {
    // Caller holds the lock, so writers are excluded: the published
    // snapshot IS the authoritative list and the generation is frozen.
    if (Pregion* pr = FindSharedFast(*shared_->layout(), va, shared_->generation());
        pr != nullptr) {
      SetShared(out_shared, true);
      return pr;
    }
    SetShared(out_shared, false);
    return nullptr;
  }
  SG_OBS_INC("vm.lookup_walks");
  SetShared(out_shared, false);
  return nullptr;
}

bool AddressSpace::DetachPrivate(vaddr_t base) {
  for (auto it = private_.begin(); it != private_.end(); ++it) {
    if ((*it)->base == base) {
      const u64 pages = (*it)->region->pages();
      tlb_.FlushRange(PageOf(base), PageOf(base) + pages);
      InvalidatePrivateHint();
      private_.erase(it);
      return true;
    }
  }
  return false;
}

void AddressSpace::DetachAllPrivate() {
  InvalidatePrivateHint();
  private_.clear();
  tlb_.FlushAll();
}

}  // namespace sg
