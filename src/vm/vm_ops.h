// VM-image operations: the "relatively rare" pregion-list updaters of §6.2
// (sbrk, mmap/munmap-style attach/detach, fork duplication). Each follows
// the paper's protocol: take the shared read lock FOR UPDATE, perform the
// synchronous all-processor TLB flush before any page is freed or
// write-protected, then modify the list/region.
#ifndef SRC_VM_VM_OPS_H_
#define SRC_VM_VM_OPS_H_

#include <memory>

#include "base/result.h"
#include "base/types.h"
#include "vm/address_space.h"

namespace sg {

// Grows (delta>0) or shrinks (delta<0) the data region by |delta| bytes
// rounded to whole pages; returns the previous break address. Shrinking a
// group-shared data region performs the §6.2 shootdown. `max_data_pages`
// bounds growth (0 = unlimited).
Result<vaddr_t> Sbrk(AddressSpace& as, i64 delta, u64 max_data_pages = 0);

// Current break (end of the data region).
Result<vaddr_t> CurrentBrk(AddressSpace& as);

// Anonymous mapping (mmap-like): allocates a fresh demand-zero region of
// `bytes` (page-rounded) and attaches it — into the group-shared list when
// this space shares VM (all members see it immediately, §5.1), else
// privately. Returns the base address.
Result<vaddr_t> MapAnon(AddressSpace& as, u64 bytes, u32 prot = kProtRw);

// Attaches an existing region (SysV shared memory) at an allocator-chosen
// address. The region is genuinely shared — no COW.
Result<vaddr_t> AttachRegion(AddressSpace& as, std::shared_ptr<Region> region, u32 prot);

// Detaches the mapping based at `base` (full-mapping munmap/shmdt).
// Group-shared detach shoots down every member's TLB before the frames can
// be freed. kEINVAL if no mapping starts at `base`.
Status Unmap(AddressSpace& as, vaddr_t base);

// Duplicates `parent`'s entire visible image into `child` as private
// copy-on-write attachments — the fork(2) path, and the non-PR_SADDR
// sproc() path ("a fork() or non-VM sharing sproc() call leaves any
// visible stack or other regions from the share group as copy-on-write
// elements of the new process"). Read-only attachments (text) share the
// region instead of duplicating. Ends with the required shootdown: COW
// marking revokes write permission from every cached translation.
Status DuplicateForFork(AddressSpace& parent, AddressSpace& child);

}  // namespace sg

#endif  // SRC_VM_VM_OPS_H_
