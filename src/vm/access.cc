#include "vm/access.h"

#include "base/log.h"
#include "base/mutex.h"
#include "base/thread_annotations.h"
#include "inject/inject.h"
#include "obs/stats.h"
#include "obs/trace.h"
#include "sync/shared_read_lock.h"
#include "vm/pager.h"

namespace sg {

namespace {

// One fault-resolution attempt; HandleFault wraps it with the reclaim loop.
Status HandleFaultOnce(AddressSpace& as, vaddr_t va, bool want_write);

// Lockless lookup attempts before falling back to the ReadGuard path. Two
// retries absorb back-to-back layout bumps (e.g. an sbrk racing an mmap);
// past that the fault stream is contending with a writer burst and blocking
// on the lock is the honest thing to do.
constexpr int kLocklessAttempts = 3;

// ENOMEM reclaim attempts before the fault gives up. Each round steals up
// to 64 pages; if 16 rounds of successful stealing still cannot hold a
// frame long enough to finish one resolution, other faulting members are
// re-resolving frames as fast as we free them and looping further would
// livelock (the bug this cap fixes), so kENOMEM surfaces to the caller.
constexpr int kMaxReclaimRetries = 16;

}  // namespace

Status HandleFault(AddressSpace& as, vaddr_t va, bool want_write) {
  for (int attempt = 0;; ++attempt) {
    Status st = HandleFaultOnce(as, va, want_write);
    if (st.error() != Errno::kENOMEM) {
      return st;
    }
    if (attempt >= kMaxReclaimRetries) {
      return st;  // bounded: see kMaxReclaimRetries
    }
    // Out of frames: wake the pager against our own visible image and
    // retry; give up only when nothing could be stolen.
    SG_OBS_INC("vm.fault.reclaim_retries");
    if (ReclaimPages(as, 64) == 0) {
      return st;
    }
  }
}

namespace {

bool ProtAllows(const Pregion& pr, bool want_write) {
  return (pr.prot & (want_write ? kProtWrite : kProtRead)) != 0;
}

// Resolves one page of `pr` and installs the translation in the faulter's
// TLB. `flush_members(vpn)` runs when a COW break replaced the frame,
// BEFORE the insert — for a shared pregion it must drop every member's
// stale translation so their next access refaults onto the new frame.
template <typename FlushFn>
Status ResolveAndMap(AddressSpace& as, Pregion& pr, vaddr_t va, bool want_write,
                     FlushFn&& flush_members) {
  auto res = pr.region->Resolve(pr.PageIndex(va), want_write);
  if (!res.ok()) {
    return res.status();
  }
  if (res.value().frame_changed) {
    as.cow_breaks.fetch_add(1, std::memory_order_relaxed);
    SG_OBS_INC("vm.cow_breaks");
    obs::Trace(obs::TraceKind::kCowBreak, va);
    flush_members(PageOf(va));
  }
  const bool tlb_writable = res.value().writable && (pr.prot & kProtWrite) != 0;
  as.tlb().Insert(PageOf(va), res.value().pfn, tlb_writable);
  return Status::Ok();
}

// The §6.2 fault path, since PR 7 in the lockless form of DESIGN.md §4h.
//
// Private pregions are owner-thread state and resolve with no locking at
// all. For the shared image, the hot path snapshots the layout seqcount,
// looks `va` up in the published snapshot under an epoch guard, resolves
// the page under only that pregion's lock, and then REVALIDATES the
// seqcount: unchanged means no mutation straddled the resolution and the
// installed translation stands. A failed revalidation undoes our own TLB
// entry and retries; retry exhaustion or an in-progress writer falls back
// to the classic ReadGuard path — which blocks until the updater finishes,
// exactly how a member that trapped after a shootdown waits for the VM
// modification to complete.
//
// Suppressed: the guard appears only on the fallback path and the pregion
// lock is taken through a pointer — shapes clang's analysis cannot model.
// The runtime lockdep validator covers these paths instead.
Status HandleFaultOnce(AddressSpace& as, vaddr_t va, bool want_write) SG_NO_THREAD_SAFETY_ANALYSIS {
  as.faults.fetch_add(1, std::memory_order_relaxed);
  SG_OBS_INC("vm.faults");
  obs::Trace(obs::TraceKind::kPageFault, va, want_write ? 1 : 0);

  // Private pregions first (§6.2 scan order — a private page shadows the
  // shared image). No group lock: nothing here is visible to other members.
  if (Pregion* pr = as.FindPrivateFast(va); pr != nullptr) {
    if (!ProtAllows(*pr, want_write)) {
      return Errno::kEFAULT;
    }
    // A private COW break needs no cross-member flush; the insert below
    // replaces our own stale entry.
    return ResolveAndMap(as, *pr, va, want_write, [](u64) {});
  }

  SharedSpace* ss = as.shared();
  if (ss == nullptr) {
    SG_OBS_INC("vm.lookup_walks");
    return Errno::kEFAULT;
  }

  for (int attempt = 0; attempt < kLocklessAttempts; ++attempt) {
    u64 s0 = 0;
    if (!ss->layout_seq().TryReadBegin(&s0)) {
      break;  // a writer is mid-mutation right now: go block on the lock
    }
    SG_INJECT_POINT("vm.fault.lockless");
    Status st = Errno::kEFAULT;
    // The epoch guard pins the snapshot and everything it points to
    // (including a pregion a concurrent munmap is retiring) for the rest
    // of this iteration. It MUST outlive the revalidation and the undo
    // flush below: the instant we drop it, an updater's AwaitQuiescent may
    // complete and free retired frames, so we stay registered until either
    // the revalidation proves our TLB entry belongs to a stable layout or
    // the entry is gone again. A sibling thread of this task shares our
    // TLB — a stale entry outliving the quiescence point would let it
    // translate to a freed frame.
    SharedSpace::EpochGuard epoch(*ss);
    const LayoutSnapshot* snap = ss->layout();
    // sgcheck:allow(sleep-in-atomic): §4h — the lookup reads pregion bounds
    // via the region mutex, a leaf lock with O(1) holders; a bounded stall
    // under the epoch pin only delays reclaim, which AwaitQuiescent tolerates.
    if (Pregion* pr = as.FindSharedFast(*snap, va, s0); pr != nullptr) {
      if (!ProtAllows(*pr, want_write)) {
        st = Errno::kEFAULT;
      } else {
        // The pregion lock closes the resolve/insert vs pager-steal
        // window; writers never take it — the seqcount recheck below is
        // what protects against them.
        // sgcheck:allow(sleep-in-atomic): §4h lock order — the per-pregion
        // mutex is taken under the epoch pin by design; its holders (fault
        // path, pager steal) never sleep while resolving.
        MutexGuard pl(pr->lock);
        // sgcheck:allow(sleep-in-atomic): §4h — resolve takes the region
        // mutex (leaf) and may touch swap via the slot-ownership protocol;
        // the epoch pin is expected to span the whole resolve+flush+recheck.
        st = ResolveAndMap(as, *pr, va, want_write, [&](u64 vpn) {
          // Frame change published to every member BEFORE the seqcount
          // re-check: a membership/layout change that could widen the
          // member set forces a retry, never a missed invalidation.
          SharedSpace::FlushPageAll(*snap, vpn);
        });
      }
    }
    if (ss->layout_seq().ReadValidate(s0)) {
      // No mutation straddled us: the lookup (hit OR miss), the protection
      // check, and any installed translation all belong to a stable layout.
      if (st.ok()) {
        SG_OBS_INC("vm.fault.lockless_hits");
      }
      return st;
    }
    // The layout moved underneath the resolution. Whatever we concluded —
    // even a translation already visible in our TLB — may be stale (e.g. a
    // frame freed by a racing shrink): drop our own entry, still inside the
    // epoch so the updater cannot reach its free first, and retry. The
    // inject seam stretches exactly that stale-entry window — a schedule
    // parks us here while an updater spins in AwaitQuiescent against our
    // epoch registration.
    SG_INJECT_POINT("vm.fault.undo");
    as.tlb().FlushPage(PageOf(va));
    SG_OBS_INC("vm.fault.retries");
    SG_INJECT_POINT("vm.fault.retry");
  }

  // Fallback ladder, last rung: the classic path. Blocks while an updater
  // holds the lock; writers are excluded for the whole resolution, so no
  // revalidation is needed. The pregion lock is still taken — the pager
  // steals from shared pregions under the READ side, so the steal/insert
  // race exists here too.
  SG_OBS_INC("vm.fault.fallbacks");
  SG_INJECT_POINT("vm.fault.fallback");
  ReadGuard guard(ss->lock());
  bool shared_pr = false;
  Pregion* pr = as.FindPregionFast(va, &shared_pr);
  if (pr == nullptr) {
    return Errno::kEFAULT;
  }
  if (!ProtAllows(*pr, want_write)) {
    return Errno::kEFAULT;
  }
  if (!shared_pr) {
    return ResolveAndMap(as, *pr, va, want_write, [](u64) {});
  }
  MutexGuard pl(pr->lock);
  return ResolveAndMap(as, *pr, va, want_write,
                       [&](u64 vpn) { ss->FlushPageAllMembers(vpn); });
}

}  // namespace

namespace {

// Shared page-walking loop for the bulk transfer routines.
template <typename PageFn>
Status ForEachUserPage(AddressSpace& as, vaddr_t ua, u64 len, bool want_write, PageFn&& fn) {
  u64 done = 0;
  while (done < len) {
    const vaddr_t va = ua + done;
    const u64 page_off = va & kPageMask;
    const u64 chunk = std::min<u64>(kPageSize - page_off, len - done);
    for (;;) {
      const bool hit = as.tlb().WithEntry(PageOf(va), want_write, [&](pfn_t pfn) {
        fn(as.mem().FrameData(pfn) + page_off, done, chunk);
      });
      if (hit) {
        break;
      }
      SG_RETURN_IF_ERROR(HandleFault(as, va, want_write));
    }
    done += chunk;
  }
  return Status::Ok();
}

}  // namespace

Status CopyIn(AddressSpace& as, void* dst, vaddr_t src, u64 len) {
  return ForEachUserPage(as, src, len, /*want_write=*/false,
                         [dst](std::byte* page, u64 done, u64 chunk) {
                           std::memcpy(static_cast<std::byte*>(dst) + done, page, chunk);
                         });
}

Status CopyOut(AddressSpace& as, vaddr_t dst, const void* src, u64 len) {
  return ForEachUserPage(as, dst, len, /*want_write=*/true,
                         [src](std::byte* page, u64 done, u64 chunk) {
                           std::memcpy(page, static_cast<const std::byte*>(src) + done, chunk);
                         });
}

Status FillUser(AddressSpace& as, vaddr_t dst, u8 byte, u64 len) {
  return ForEachUserPage(as, dst, len, /*want_write=*/true,
                         [byte](std::byte* page, u64, u64 chunk) {
                           std::memset(page, byte, chunk);
                         });
}

namespace {

template <typename Fn>
Result<u32> AtomicOp32(AddressSpace& as, vaddr_t va, bool want_write, Fn&& fn) {
  if (va % 4 != 0) {
    return Errno::kEINVAL;  // contract violation, not a bad mapping
  }
  u32 out = 0;
  for (;;) {
    const bool hit = as.tlb().WithEntry(PageOf(va), want_write, [&](pfn_t pfn) {
      auto* word = reinterpret_cast<u32*>(as.mem().FrameData(pfn) + (va & kPageMask));
      out = fn(std::atomic_ref<u32>(*word));
    });
    if (hit) {
      return out;
    }
    SG_RETURN_IF_ERROR(HandleFault(as, va, want_write));
  }
}

}  // namespace

Result<u32> AtomicLoad32(AddressSpace& as, vaddr_t va) {
  return AtomicOp32(as, va, /*want_write=*/false,
                    [](std::atomic_ref<u32> w) { return w.load(std::memory_order_acquire); });
}

Status AtomicStore32(AddressSpace& as, vaddr_t va, u32 value) {
  auto r = AtomicOp32(as, va, /*want_write=*/true, [value](std::atomic_ref<u32> w) {
    w.store(value, std::memory_order_release);
    return value;
  });
  return r.status();
}

Result<u32> AtomicCas32(AddressSpace& as, vaddr_t va, u32 expected, u32 desired) {
  return AtomicOp32(as, va, /*want_write=*/true, [expected, desired](std::atomic_ref<u32> w) {
    u32 e = expected;
    w.compare_exchange_strong(e, desired, std::memory_order_acq_rel);
    return e;  // previous value
  });
}

Result<u32> AtomicFetchAdd32(AddressSpace& as, vaddr_t va, u32 delta) {
  return AtomicOp32(as, va, /*want_write=*/true, [delta](std::atomic_ref<u32> w) {
    return w.fetch_add(delta, std::memory_order_acq_rel);
  });
}

}  // namespace sg
