#include "vm/access.h"

#include <optional>

#include "base/log.h"
#include "base/thread_annotations.h"
#include "obs/stats.h"
#include "obs/trace.h"
#include "sync/shared_read_lock.h"
#include "vm/pager.h"

namespace sg {

namespace {
// One fault-resolution attempt; HandleFault wraps it with the reclaim loop.
Status HandleFaultOnce(AddressSpace& as, vaddr_t va, bool want_write);
}  // namespace

Status HandleFault(AddressSpace& as, vaddr_t va, bool want_write) {
  for (;;) {
    Status st = HandleFaultOnce(as, va, want_write);
    if (st.error() != Errno::kENOMEM) {
      return st;
    }
    // Out of frames: wake the pager against our own visible image and
    // retry; give up only when nothing could be stolen.
    if (ReclaimPages(as, 64) == 0) {
      return st;
    }
  }
}

namespace {

// Suppressed: the read guard is conditional (std::optional, only when the
// faulting process shares VM) — unanalyzable for clang; lockdep covers it.
Status HandleFaultOnce(AddressSpace& as, vaddr_t va, bool want_write) SG_NO_THREAD_SAFETY_ANALYSIS {
  as.faults.fetch_add(1, std::memory_order_relaxed);
  SG_OBS_INC("vm.faults");
  obs::Trace(obs::TraceKind::kPageFault, va, want_write ? 1 : 0);

  // §6.2: every scan of the pregion lists runs under the shared read lock;
  // if an updater (sbrk, mmap, shrink, fork, exec) holds it, we block here —
  // this is precisely how a member that trapped after a shootdown waits for
  // the VM modification to complete.
  SharedSpace* ss = as.shared();
  std::optional<ReadGuard> guard;
  if (ss != nullptr) {
    guard.emplace(ss->lock());
  }

  // Private pregions first, then the group's shared list — through the
  // last-hit hint cache, so the common fault-cluster case skips both walks.
  bool shared_pr = false;
  Pregion* pr = as.FindPregionFast(va, &shared_pr);
  if (pr == nullptr) {
    return Errno::kEFAULT;
  }
  if (want_write && (pr->prot & kProtWrite) == 0) {
    return Errno::kEFAULT;
  }
  if (!want_write && (pr->prot & kProtRead) == 0) {
    return Errno::kEFAULT;
  }

  auto res = pr->region->Resolve(pr->PageIndex(va), want_write);
  if (!res.ok()) {
    return res.status();
  }
  if (res.value().frame_changed) {
    as.cow_breaks.fetch_add(1, std::memory_order_relaxed);
    SG_OBS_INC("vm.cow_breaks");
    obs::Trace(obs::TraceKind::kCowBreak, va);
    if (shared_pr && ss != nullptr) {
      // A COW break replaced a frame in the group-visible page table: other
      // members' TLBs may cache the old frame. Drop those entries so their
      // next access refaults onto the new frame.
      ss->FlushPageAllMembers(PageOf(va));
    }
  }
  const bool tlb_writable = res.value().writable && (pr->prot & kProtWrite) != 0;
  as.tlb().Insert(PageOf(va), res.value().pfn, tlb_writable);
  return Status::Ok();
}

}  // namespace

namespace {

// Shared page-walking loop for the bulk transfer routines.
template <typename PageFn>
Status ForEachUserPage(AddressSpace& as, vaddr_t ua, u64 len, bool want_write, PageFn&& fn) {
  u64 done = 0;
  while (done < len) {
    const vaddr_t va = ua + done;
    const u64 page_off = va & kPageMask;
    const u64 chunk = std::min<u64>(kPageSize - page_off, len - done);
    for (;;) {
      const bool hit = as.tlb().WithEntry(PageOf(va), want_write, [&](pfn_t pfn) {
        fn(as.mem().FrameData(pfn) + page_off, done, chunk);
      });
      if (hit) {
        break;
      }
      SG_RETURN_IF_ERROR(HandleFault(as, va, want_write));
    }
    done += chunk;
  }
  return Status::Ok();
}

}  // namespace

Status CopyIn(AddressSpace& as, void* dst, vaddr_t src, u64 len) {
  return ForEachUserPage(as, src, len, /*want_write=*/false,
                         [dst](std::byte* page, u64 done, u64 chunk) {
                           std::memcpy(static_cast<std::byte*>(dst) + done, page, chunk);
                         });
}

Status CopyOut(AddressSpace& as, vaddr_t dst, const void* src, u64 len) {
  return ForEachUserPage(as, dst, len, /*want_write=*/true,
                         [src](std::byte* page, u64 done, u64 chunk) {
                           std::memcpy(page, static_cast<const std::byte*>(src) + done, chunk);
                         });
}

Status FillUser(AddressSpace& as, vaddr_t dst, u8 byte, u64 len) {
  return ForEachUserPage(as, dst, len, /*want_write=*/true,
                         [byte](std::byte* page, u64, u64 chunk) {
                           std::memset(page, byte, chunk);
                         });
}

namespace {

template <typename Fn>
Result<u32> AtomicOp32(AddressSpace& as, vaddr_t va, bool want_write, Fn&& fn) {
  if (va % 4 != 0) {
    return Errno::kEFAULT;
  }
  u32 out = 0;
  for (;;) {
    const bool hit = as.tlb().WithEntry(PageOf(va), want_write, [&](pfn_t pfn) {
      auto* word = reinterpret_cast<u32*>(as.mem().FrameData(pfn) + (va & kPageMask));
      out = fn(std::atomic_ref<u32>(*word));
    });
    if (hit) {
      return out;
    }
    SG_RETURN_IF_ERROR(HandleFault(as, va, want_write));
  }
}

}  // namespace

Result<u32> AtomicLoad32(AddressSpace& as, vaddr_t va) {
  return AtomicOp32(as, va, /*want_write=*/false,
                    [](std::atomic_ref<u32> w) { return w.load(std::memory_order_acquire); });
}

Status AtomicStore32(AddressSpace& as, vaddr_t va, u32 value) {
  auto r = AtomicOp32(as, va, /*want_write=*/true, [value](std::atomic_ref<u32> w) {
    w.store(value, std::memory_order_release);
    return value;
  });
  return r.status();
}

Result<u32> AtomicCas32(AddressSpace& as, vaddr_t va, u32 expected, u32 desired) {
  return AtomicOp32(as, va, /*want_write=*/true, [expected, desired](std::atomic_ref<u32> w) {
    u32 e = expected;
    w.compare_exchange_strong(e, desired, std::memory_order_acq_rel);
    return e;  // previous value
  });
}

Result<u32> AtomicFetchAdd32(AddressSpace& as, vaddr_t va, u32 delta) {
  return AtomicOp32(as, va, /*want_write=*/true, [delta](std::atomic_ref<u32> w) {
    return w.fetch_add(delta, std::memory_order_acq_rel);
  });
}

}  // namespace sg
