// Software-managed TLB in the style of the MIPS R2000 the paper targets.
//
// Every simulated user load/store translates through a Tlb; a miss raises a
// (software) TLB-miss exception handled by the VM fault path, which refills
// the TLB after walking the pregion lists. Because the TLB is software
// managed, the kernel can *synchronously* invalidate entries on every
// processor before shrinking or detaching a shared region (§6.2) — a
// running share-group member then immediately misses, enters the kernel,
// and blocks on the shared read lock until the update completes.
//
// Each simulated process owns one Tlb (its translation context on whichever
// processor runs it); a cross-processor shootdown is modelled by flushing
// the Tlbs of all affected processes (see CpuSet::SynchronousFlush).
//
// FlushAll is O(1): instead of scanning and clearing every entry under the
// TLB spinlock, it bumps a flush generation; Probe/WithEntry/Insert treat
// an entry stamped with an older generation as invalid (lazy
// invalidation). The flush still takes (and immediately releases) the
// spinlock so an in-flight WithEntry access strictly orders before the
// flush returns — the same translate-and-access atomicity as before, but a
// shootdown IPI now costs O(1) per member instead of O(entries).
#ifndef SRC_HW_TLB_H_
#define SRC_HW_TLB_H_

#include <atomic>
#include <vector>

#include "base/thread_annotations.h"
#include "base/types.h"
#include "obs/stats.h"
#include "sync/spinlock.h"

namespace sg {

// Result of a TLB probe.
struct TlbProbe {
  enum class Kind {
    kHit,        // translation present with sufficient permission
    kMiss,       // no translation: refill required (page fault path)
    kWriteProt,  // translation present but read-only and a write was asked
  };
  Kind kind = Kind::kMiss;
  pfn_t pfn = 0;
};

class Tlb {
 public:
  // The R2000 TLB holds 64 entries; the default follows it.
  explicit Tlb(u32 entries = 64);
  Tlb(const Tlb&) = delete;
  Tlb& operator=(const Tlb&) = delete;

  // Probes for virtual page `vpn`; `want_write` distinguishes a write access
  // (read-only entries then report kWriteProt, which the fault path treats
  // as a potential copy-on-write break).
  TlbProbe Probe(u64 vpn, bool want_write);

  // Atomic translate-and-access: if a matching entry with sufficient
  // permission exists, runs `fn(pfn)` while the entry is pinned (the TLB
  // lock is held, so a concurrent shootdown completes only after `fn`
  // returns — this models the per-instruction atomicity of translation and
  // access on real hardware) and returns true. Returns false on miss or
  // write-protection; the caller then takes the fault path and retries.
  // `fn` must be short and must not block.
  template <typename Fn>
  bool WithEntry(u64 vpn, bool want_write, Fn&& fn) {
    SpinGuard g(lock_);
    Entry& e = entries_[SlotFor(vpn)];
    if (!Live(e) || e.vpn != vpn || (want_write && !e.writable)) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      SG_OBS_INC("tlb.misses");
      return false;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    fn(e.pfn);
    return true;
  }

  // Installs (or replaces) the translation for `vpn`.
  void Insert(u64 vpn, pfn_t pfn, bool writable);

  // Invalidation. FlushAll is what a cross-processor shootdown delivers;
  // it is O(1) (generation bump, see file comment).
  void FlushAll();
  void FlushPage(u64 vpn);
  void FlushRange(u64 vpn_begin, u64 vpn_end);  // [begin, end)

  u64 hits() const { return hits_.load(std::memory_order_relaxed); }
  u64 misses() const { return misses_.load(std::memory_order_relaxed); }
  // Flush *operations* (every FlushAll/FlushPage/FlushRange call) vs
  // entries actually invalidated — a FlushPage of an absent translation
  // performs work-free, and the split keeps /proc/stat's view of shootdown
  // cost honest ("tlb.flushes" / "tlb.flushed_entries").
  u64 flushes() const { return flushes_.load(std::memory_order_relaxed); }
  u64 flushed_entries() const { return flushed_entries_.load(std::memory_order_relaxed); }

 private:
  struct Entry {
    u64 vpn = 0;
    pfn_t pfn = 0;
    u64 gen = 0;  // flush generation the entry was installed under
    bool valid = false;
    bool writable = false;
  };

  // An entry counts only if it was installed under the current flush
  // generation.
  bool Live(const Entry& e) const SG_REQUIRES(lock_) { return e.valid && e.gen == flush_gen_; }

  u32 SlotFor(u64 vpn) const { return static_cast<u32>(vpn) & (nentries_ - 1); }

  // Invalidates `e` (already checked Live).
  void Invalidate(Entry& e) SG_REQUIRES(lock_);

  // sgcheck:allow(guarded-fields): set in the constructor, immutable after
  u32 nentries_;  // power of two; direct-mapped by low vpn bits
  // Owner thread probes/inserts; shootdowns flush remotely.
  Spinlock lock_{"tlb"};
  std::vector<Entry> entries_ SG_GUARDED_BY(lock_);

  // flush_gen_ advances on every FlushAll; live_count_ tracks entries live
  // under the current generation so FlushAll can account flushed entries
  // without scanning.
  u64 flush_gen_ SG_GUARDED_BY(lock_) = 0;
  u32 live_count_ SG_GUARDED_BY(lock_) = 0;

  std::atomic<u64> hits_{0};
  std::atomic<u64> misses_{0};
  std::atomic<u64> flushes_{0};
  std::atomic<u64> flushed_entries_{0};
};

}  // namespace sg

#endif  // SRC_HW_TLB_H_
