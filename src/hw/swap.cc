#include "hw/swap.h"

#include <cstring>

#include "base/check.h"

namespace sg {

SwapSpace::SwapSpace(u32 slots) : nslots_(slots + 1) {
  SG_CHECK(slots >= 1);
  store_ = std::make_unique_for_overwrite<std::byte[]>(static_cast<u64>(nslots_) * kPageSize);
  free_list_.reserve(slots);
  for (u32 s = nslots_ - 1; s >= 1; --s) {
    free_list_.push_back(s);
  }
}

Result<u32> SwapSpace::WriteOut(const std::byte* page) {
  u32 slot;
  {
    SpinGuard g(lock_);
    if (free_list_.empty()) {
      return Errno::kENOSPC;
    }
    slot = free_list_.back();
    free_list_.pop_back();
  }
  std::memcpy(store_.get() + static_cast<u64>(slot) * kPageSize, page, kPageSize);
  outs_.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

void SwapSpace::ReadInAndFree(u32 slot, std::byte* page) {
  SG_CHECK(slot >= 1 && slot < nslots_);
  std::memcpy(page, store_.get() + static_cast<u64>(slot) * kPageSize, kPageSize);
  ins_.fetch_add(1, std::memory_order_relaxed);
  Free(slot);
}

void SwapSpace::Peek(u32 slot, std::byte* page) const {
  SG_CHECK(slot >= 1 && slot < nslots_);
  std::memcpy(page, store_.get() + static_cast<u64>(slot) * kPageSize, kPageSize);
}

void SwapSpace::Free(u32 slot) {
  SG_CHECK(slot >= 1 && slot < nslots_);
  SpinGuard g(lock_);
  free_list_.push_back(slot);
}

Result<u32> SwapSpace::Duplicate(u32 slot) {
  SG_CHECK(slot >= 1 && slot < nslots_);
  u32 fresh;
  {
    SpinGuard g(lock_);
    if (free_list_.empty()) {
      return Errno::kENOSPC;
    }
    fresh = free_list_.back();
    free_list_.pop_back();
  }
  std::memcpy(store_.get() + static_cast<u64>(fresh) * kPageSize,
              store_.get() + static_cast<u64>(slot) * kPageSize, kPageSize);
  return fresh;
}

u32 SwapSpace::SlotsFree() const {
  SpinGuard g(lock_);
  return static_cast<u32>(free_list_.size());
}

}  // namespace sg
