#include "hw/phys_mem.h"

#include <cstring>

#include "base/check.h"

namespace sg {

PhysMem::PhysMem(u64 bytes) : nframes_(PagesFor(bytes) + 1) {
  SG_CHECK(nframes_ >= 2);
  // No zero-init of the whole arena: AllocFrame zeroes each frame when it
  // is handed out (demand-zero semantics).
  arena_ = std::make_unique_for_overwrite<std::byte[]>(nframes_ * kPageSize);
  refcount_.assign(nframes_, 0);
  free_list_.reserve(nframes_ - 1);
  // Lowest-numbered frames allocated first: push in reverse.
  for (u64 pfn = nframes_ - 1; pfn >= 1; --pfn) {
    free_list_.push_back(static_cast<pfn_t>(pfn));
  }
}

Result<pfn_t> PhysMem::AllocFrame() {
  pfn_t pfn;
  {
    SpinGuard g(lock_);
    if (free_list_.empty()) {
      return Errno::kENOMEM;
    }
    pfn = free_list_.back();
    free_list_.pop_back();
    SG_DCHECK(refcount_[pfn] == 0);
    refcount_[pfn] = 1;
  }
  std::memset(FrameData(pfn), 0, kPageSize);
  return pfn;
}

void PhysMem::Ref(pfn_t pfn) {
  SG_DCHECK(ValidPfn(pfn));
  SpinGuard g(lock_);
  SG_CHECK(refcount_[pfn] > 0);
  ++refcount_[pfn];
}

void PhysMem::Unref(pfn_t pfn) {
  SG_DCHECK(ValidPfn(pfn));
  SpinGuard g(lock_);
  SG_CHECK(refcount_[pfn] > 0);
  if (--refcount_[pfn] == 0) {
    free_list_.push_back(pfn);
  }
}

u32 PhysMem::RefCount(pfn_t pfn) const {
  SG_DCHECK(ValidPfn(pfn));
  SpinGuard g(lock_);
  return refcount_[pfn];
}

bool PhysMem::TakeExclusive(pfn_t pfn) {
  SG_DCHECK(ValidPfn(pfn));
  SpinGuard g(lock_);
  SG_CHECK(refcount_[pfn] > 0);
  return refcount_[pfn] == 1;
}

std::byte* PhysMem::FrameData(pfn_t pfn) {
  SG_DCHECK(ValidPfn(pfn));
  return arena_.get() + static_cast<u64>(pfn) * kPageSize;
}

const std::byte* PhysMem::FrameData(pfn_t pfn) const {
  SG_DCHECK(ValidPfn(pfn));
  return arena_.get() + static_cast<u64>(pfn) * kPageSize;
}

u64 PhysMem::FreeFrames() const {
  SpinGuard g(lock_);
  return free_list_.size();
}

}  // namespace sg
