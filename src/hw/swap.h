// SwapSpace — the paging device backing stolen page frames.
//
// §6.2 names the pager as the second reader of the shared read lock
// ("operations that scan (page fault, pager)"); this module plus vm/pager.h
// make that reader real: under memory pressure, resident pages whose frame
// is not otherwise shared are written to a swap slot and their frame is
// freed; the next touch swaps them back in through the normal fault path.
#ifndef SRC_HW_SWAP_H_
#define SRC_HW_SWAP_H_

#include <atomic>
#include <memory>
#include <vector>

#include "base/result.h"
#include "base/thread_annotations.h"
#include "base/types.h"
#include "sync/spinlock.h"

namespace sg {

class SwapSpace {
 public:
  // A device of `slots` page-sized slots. Slot 0 is reserved (0 = "none").
  explicit SwapSpace(u32 slots);
  SwapSpace(const SwapSpace&) = delete;
  SwapSpace& operator=(const SwapSpace&) = delete;

  // Allocates a slot and writes one page into it; kENOSPC when full.
  Result<u32> WriteOut(const std::byte* page);

  // Reads slot contents into `page` and frees the slot.
  void ReadInAndFree(u32 slot, std::byte* page);

  // Reads slot contents without freeing (kernel-side inspection).
  void Peek(u32 slot, std::byte* page) const;

  // Frees a slot without reading (region destroyed while paged out).
  void Free(u32 slot);

  // Copies a slot into a fresh slot (COW duplication of a paged-out page);
  // kENOSPC when full.
  Result<u32> Duplicate(u32 slot);

  u32 SlotsFree() const;
  u64 outs() const { return outs_.load(std::memory_order_relaxed); }
  u64 ins() const { return ins_.load(std::memory_order_relaxed); }

 private:
  // sgcheck:allow(guarded-fields): sized in the constructor, immutable after
  u32 nslots_;
  // Slot contents are pinned by slot ownership (a slot is touched only by
  // whoever holds its number), so store_ itself needs no lock.
  // sgcheck:allow(guarded-fields): see above — slot-ownership protocol
  std::unique_ptr<std::byte[]> store_;
  mutable Spinlock lock_{"swap"};
  std::vector<u32> free_list_ SG_GUARDED_BY(lock_);
  std::atomic<u64> outs_{0};
  std::atomic<u64> ins_{0};
};

}  // namespace sg

#endif  // SRC_HW_SWAP_H_
