// Simulated physical memory: one contiguous arena divided into page frames,
// with a free list and per-frame reference counts (frames are shared by
// copy-on-write duplication and by shared regions).
#ifndef SRC_HW_PHYS_MEM_H_
#define SRC_HW_PHYS_MEM_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "base/result.h"
#include "base/thread_annotations.h"
#include "base/types.h"
#include "sync/spinlock.h"

namespace sg {

class SwapSpace;  // hw/swap.h

class PhysMem {
 public:
  // `bytes` is rounded up to whole pages. Frame 0 is reserved (never
  // allocated) so pfn 0 can mean "no frame" in page-table entries.
  explicit PhysMem(u64 bytes);
  PhysMem(const PhysMem&) = delete;
  PhysMem& operator=(const PhysMem&) = delete;

  // Allocates a zeroed frame with refcount 1; ENOMEM when exhausted.
  Result<pfn_t> AllocFrame();

  // Reference counting. Unref frees the frame when the count reaches zero.
  void Ref(pfn_t pfn);
  void Unref(pfn_t pfn);
  u32 RefCount(pfn_t pfn) const;

  // COW break support: atomically claims sole ownership if the refcount is
  // exactly 1 (returns true — caller may write in place); otherwise the
  // caller must copy to a fresh frame and Unref the old one.
  bool TakeExclusive(pfn_t pfn);

  // Direct pointer to the frame's bytes (kPageSize of them). Stable for the
  // lifetime of the arena; the caller must hold a reference on the frame.
  std::byte* FrameData(pfn_t pfn);
  const std::byte* FrameData(pfn_t pfn) const;

  u64 TotalFrames() const { return nframes_ - 1; }  // excludes reserved frame 0
  u64 FreeFrames() const;

  // Optional paging device (hw/swap.h); null when the machine has no swap.
  // Set once at boot, before any region exists.
  void AttachSwap(SwapSpace* swap) { swap_ = swap; }
  SwapSpace* swap_device() const { return swap_; }

 private:
  bool ValidPfn(pfn_t pfn) const { return pfn >= 1 && pfn < nframes_; }

  // sgcheck:allow(guarded-fields): sized in the constructor, immutable after
  u64 nframes_;
  // sgcheck:allow(guarded-fields): allocated once in the constructor; frame
  // ownership is what lock_ protects (free_list_/refcount_), not the arena
  std::unique_ptr<std::byte[]> arena_;

  mutable Spinlock lock_{"physmem"};
  std::vector<pfn_t> free_list_ SG_GUARDED_BY(lock_);
  std::vector<u32> refcount_ SG_GUARDED_BY(lock_);
  // sgcheck:allow(guarded-fields): set once at boot (AttachSwap) before any
  // region exists, then read-only
  SwapSpace* swap_ = nullptr;
};

}  // namespace sg

#endif  // SRC_HW_PHYS_MEM_H_
