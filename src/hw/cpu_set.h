// CpuSet models the machine's processors for accounting purposes and
// provides the synchronous cross-processor TLB flush of §6.2.
//
// Scheduling of host threads onto the simulated processors is handled by
// proc/scheduler.h; CpuSet is the hardware-facing view (how many CPUs exist,
// how many inter-processor TLB-flush interrupts were delivered).
#ifndef SRC_HW_CPU_SET_H_
#define SRC_HW_CPU_SET_H_

#include <atomic>
#include <span>

#include "base/types.h"
#include "hw/tlb.h"
#include "obs/stats.h"
#include "obs/trace.h"

namespace sg {

class CpuSet {
 public:
  explicit CpuSet(u32 ncpus) : ncpus_(ncpus) {}
  CpuSet(const CpuSet&) = delete;
  CpuSet& operator=(const CpuSet&) = delete;

  u32 ncpus() const { return ncpus_; }

  // "Synchronously flush the TLBs for ALL processors": invalidates every
  // supplied translation context before the caller frees pages. By the time
  // this returns, no processor holds a stale mapping; any running member
  // that touches the affected space misses and blocks on the shared read
  // lock (held for update by the caller).
  void SynchronousFlush(std::span<Tlb* const> tlbs) {
    for (Tlb* t : tlbs) {
      t->FlushAll();
    }
    shootdowns_.fetch_add(1, std::memory_order_relaxed);
    ipis_.fetch_add(ncpus_, std::memory_order_relaxed);
    SG_OBS_INC("tlb.shootdowns");
    SG_OBS_ADD("tlb.shootdown_ipis", ncpus_);
    obs::Trace(obs::TraceKind::kTlbShootdown, tlbs.size(), ncpus_);
  }

  u64 shootdowns() const { return shootdowns_.load(std::memory_order_relaxed); }
  u64 ipis() const { return ipis_.load(std::memory_order_relaxed); }

 private:
  u32 ncpus_;
  std::atomic<u64> shootdowns_{0};
  std::atomic<u64> ipis_{0};
};

}  // namespace sg

#endif  // SRC_HW_CPU_SET_H_
