#include "hw/tlb.h"

#include "base/check.h"
#include "obs/stats.h"

namespace sg {

namespace {
constexpr bool IsPowerOfTwo(u32 v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

Tlb::Tlb(u32 entries) : nentries_(entries) {
  SG_CHECK(IsPowerOfTwo(entries));
  entries_.resize(nentries_);
}

TlbProbe Tlb::Probe(u64 vpn, bool want_write) {
  SpinGuard g(lock_);
  Entry& e = entries_[SlotFor(vpn)];
  if (!e.valid || e.vpn != vpn) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    SG_OBS_INC("tlb.misses");
    return TlbProbe{TlbProbe::Kind::kMiss, 0};
  }
  if (want_write && !e.writable) {
    // Counted as a miss for stats purposes: it enters the fault path.
    misses_.fetch_add(1, std::memory_order_relaxed);
    SG_OBS_INC("tlb.misses");
    return TlbProbe{TlbProbe::Kind::kWriteProt, e.pfn};
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return TlbProbe{TlbProbe::Kind::kHit, e.pfn};
}

void Tlb::Insert(u64 vpn, pfn_t pfn, bool writable) {
  SpinGuard g(lock_);
  Entry& e = entries_[SlotFor(vpn)];
  e.vpn = vpn;
  e.pfn = pfn;
  e.valid = true;
  e.writable = writable;
}

void Tlb::FlushAll() {
  SpinGuard g(lock_);
  for (Entry& e : entries_) {
    e.valid = false;
  }
  flushes_.fetch_add(1, std::memory_order_relaxed);
  SG_OBS_INC("tlb.flushes");
}

void Tlb::FlushPage(u64 vpn) {
  SpinGuard g(lock_);
  Entry& e = entries_[SlotFor(vpn)];
  if (e.valid && e.vpn == vpn) {
    e.valid = false;
  }
  flushes_.fetch_add(1, std::memory_order_relaxed);
  SG_OBS_INC("tlb.flushes");
}

void Tlb::FlushRange(u64 vpn_begin, u64 vpn_end) {
  SpinGuard g(lock_);
  for (Entry& e : entries_) {
    if (e.valid && e.vpn >= vpn_begin && e.vpn < vpn_end) {
      e.valid = false;
    }
  }
  flushes_.fetch_add(1, std::memory_order_relaxed);
  SG_OBS_INC("tlb.flushes");
}

}  // namespace sg
