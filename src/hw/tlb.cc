#include "hw/tlb.h"

#include "base/check.h"
#include "obs/stats.h"

namespace sg {

namespace {
constexpr bool IsPowerOfTwo(u32 v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

Tlb::Tlb(u32 entries) : nentries_(entries) {
  SG_CHECK(IsPowerOfTwo(entries));
  entries_.resize(nentries_);
}

TlbProbe Tlb::Probe(u64 vpn, bool want_write) {
  SpinGuard g(lock_);
  Entry& e = entries_[SlotFor(vpn)];
  if (!Live(e) || e.vpn != vpn) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    SG_OBS_INC("tlb.misses");
    return TlbProbe{TlbProbe::Kind::kMiss, 0};
  }
  if (want_write && !e.writable) {
    // Counted as a miss for stats purposes: it enters the fault path.
    misses_.fetch_add(1, std::memory_order_relaxed);
    SG_OBS_INC("tlb.misses");
    return TlbProbe{TlbProbe::Kind::kWriteProt, e.pfn};
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return TlbProbe{TlbProbe::Kind::kHit, e.pfn};
}

void Tlb::Insert(u64 vpn, pfn_t pfn, bool writable) {
  SpinGuard g(lock_);
  Entry& e = entries_[SlotFor(vpn)];
  if (!Live(e)) {
    ++live_count_;  // replacing a stale/empty slot brings a new live entry
  }
  e.vpn = vpn;
  e.pfn = pfn;
  e.gen = flush_gen_;
  e.valid = true;
  e.writable = writable;
}

void Tlb::Invalidate(Entry& e) {
  e.valid = false;
  SG_DCHECK(live_count_ > 0);
  --live_count_;
  flushed_entries_.fetch_add(1, std::memory_order_relaxed);
  SG_OBS_INC("tlb.flushed_entries");
}

void Tlb::FlushAll() {
  // O(1): advance the generation; every entry stamped with the old one is
  // now dead. Taking the spinlock (even briefly) means any in-flight
  // WithEntry access completed before this flush returns — the synchronous
  // shootdown guarantee of §6.2 is preserved without the O(entries) scan.
  SpinGuard g(lock_);
  ++flush_gen_;
  flushed_entries_.fetch_add(live_count_, std::memory_order_relaxed);
  SG_OBS_ADD("tlb.flushed_entries", live_count_);
  live_count_ = 0;
  flushes_.fetch_add(1, std::memory_order_relaxed);
  SG_OBS_INC("tlb.flushes");
}

void Tlb::FlushPage(u64 vpn) {
  SpinGuard g(lock_);
  Entry& e = entries_[SlotFor(vpn)];
  if (Live(e) && e.vpn == vpn) {
    Invalidate(e);
  }
  flushes_.fetch_add(1, std::memory_order_relaxed);
  SG_OBS_INC("tlb.flushes");
}

void Tlb::FlushRange(u64 vpn_begin, u64 vpn_end) {
  SpinGuard g(lock_);
  for (Entry& e : entries_) {
    if (Live(e) && e.vpn >= vpn_begin && e.vpn < vpn_end) {
      Invalidate(e);
    }
  }
  flushes_.fetch_add(1, std::memory_order_relaxed);
  SG_OBS_INC("tlb.flushes");
}

}  // namespace sg
