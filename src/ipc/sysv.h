// System V IPC — the "turned inward" baseline of §2: shared-memory
// segments, kernel semaphores, and message queues. These are the mechanisms
// the paper contrasts with share groups: SysV shm gives the bandwidth but
// "suffers from synchronization mechanisms which require kernel
// interaction"; message queues are the copy-twice queueing path.
//
// E5 (bandwidth) and E6 (synchronization latency) run against these.
#ifndef SRC_IPC_SYSV_H_
#define SRC_IPC_SYSV_H_

#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "base/result.h"
#include "base/types.h"
#include "hw/phys_mem.h"
#include "sync/semaphore.h"  // SleepMode
#include "vm/region.h"

namespace sg {

// A kernel-mediated counting semaphore with semop(2)-style operations and
// IPC_RMID semantics (sleepers are woken with kEIDRM).
class SysvSem {
 public:
  explicit SysvSem(i64 initial) : value_(initial) {}

  // delta < 0: P-type — sleeps until value >= |delta| (kernel interaction,
  // the §2 cost). delta > 0: V-type — adds and wakes. delta == 0: waits for
  // zero (unsupported here: kEINVAL).
  Status Op(i64 delta, SleepMode mode = SleepMode::kInterruptible);

  void MarkRemoved();
  i64 value() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  i64 value_;
  bool removed_ = false;
};

// A message queue: bounded buffer of discrete messages, copied in and out.
class SysvMsgQueue {
 public:
  static constexpr u64 kMaxBytes = 16384;  // MSGMNB-style queue capacity

  Status Send(std::span<const std::byte> msg, SleepMode mode = SleepMode::kInterruptible);
  // Receives the oldest message into `out`; kE2BIG if it does not fit.
  Result<u64> Receive(std::span<std::byte> out, SleepMode mode = SleepMode::kInterruptible);

  void MarkRemoved();
  u64 QueuedBytes() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::vector<std::byte>> msgs_;
  u64 bytes_ = 0;
  bool removed_ = false;
};

// Id-keyed tables for the three IPC families. `key` selects an existing
// object (creating on first use); key 0 always creates a fresh private one.
class SysvIpc {
 public:
  explicit SysvIpc(PhysMem& mem) : mem_(mem) {}
  SysvIpc(const SysvIpc&) = delete;
  SysvIpc& operator=(const SysvIpc&) = delete;

  Result<int> ShmGet(i32 key, u64 bytes);
  Result<std::shared_ptr<Region>> ShmRegion(int shmid);
  Status ShmRemove(int shmid);

  Result<int> SemGet(i32 key, i64 initial);
  Result<std::shared_ptr<SysvSem>> Sem(int semid);
  Status SemRemove(int semid);

  Result<int> MsgGet(i32 key);
  Result<std::shared_ptr<SysvMsgQueue>> Msg(int msqid);
  Status MsgRemove(int msqid);

 private:
  PhysMem& mem_;
  std::mutex mu_;
  int next_id_ = 1;
  std::map<int, std::pair<i32, std::shared_ptr<Region>>> shm_;        // id -> (key, segment)
  std::map<int, std::pair<i32, std::shared_ptr<SysvSem>>> sems_;      // id -> (key, sem)
  std::map<int, std::pair<i32, std::shared_ptr<SysvMsgQueue>>> msgs_;  // id -> (key, queue)
};

}  // namespace sg

#endif  // SRC_IPC_SYSV_H_
