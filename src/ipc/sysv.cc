#include "ipc/sysv.h"

#include <cstring>

#include "sync/wait.h"

namespace sg {

Status SysvSem::Op(i64 delta, SleepMode mode) {
  if (delta == 0) {
    return Errno::kEINVAL;
  }
  if (delta > 0) {
    {
      std::lock_guard<std::mutex> l(mu_);
      if (removed_) {
        return Errno::kEIDRM;
      }
      value_ += delta;
    }
    cv_.notify_all();
    return Status::Ok();
  }
  const i64 need = -delta;
  bool slept = false;
  Status st = Status::Ok();
  {
    std::unique_lock<std::mutex> l(mu_);
    st = BlockOn(cv_, l, mode, &slept, [&] { return removed_ || value_ >= need; });
    if (st.ok()) {
      if (removed_) {
        st = Errno::kEIDRM;
      } else {
        value_ -= need;
      }
    }
  }
  FinishSleep(slept);
  return st;
}

void SysvSem::MarkRemoved() {
  {
    std::lock_guard<std::mutex> l(mu_);
    removed_ = true;
  }
  cv_.notify_all();
}

i64 SysvSem::value() const {
  std::lock_guard<std::mutex> l(mu_);
  return value_;
}

Status SysvMsgQueue::Send(std::span<const std::byte> msg, SleepMode mode) {
  if (msg.size() > kMaxBytes) {
    return Errno::kEINVAL;
  }
  bool slept = false;
  Status st = Status::Ok();
  {
    std::unique_lock<std::mutex> l(mu_);
    st = BlockOn(cv_, l, mode, &slept,
                 [&] { return removed_ || bytes_ + msg.size() <= kMaxBytes; });
    if (st.ok()) {
      if (removed_) {
        st = Errno::kEIDRM;
      } else {
        msgs_.emplace_back(msg.begin(), msg.end());
        bytes_ += msg.size();
        cv_.notify_all();
      }
    }
  }
  FinishSleep(slept);
  return st;
}

Result<u64> SysvMsgQueue::Receive(std::span<std::byte> out, SleepMode mode) {
  bool slept = false;
  Result<u64> result = u64{0};
  {
    std::unique_lock<std::mutex> l(mu_);
    const Status st = BlockOn(cv_, l, mode, &slept, [&] { return removed_ || !msgs_.empty(); });
    if (!st.ok()) {
      result = st.error();
    } else if (removed_) {
      result = Errno::kEIDRM;
    } else if (msgs_.front().size() > out.size()) {
      result = Errno::kE2BIG;
    } else {
      const std::vector<std::byte>& m = msgs_.front();
      std::memcpy(out.data(), m.data(), m.size());
      result = static_cast<u64>(m.size());
      bytes_ -= m.size();
      msgs_.pop_front();
      cv_.notify_all();
    }
  }
  FinishSleep(slept);
  return result;
}

void SysvMsgQueue::MarkRemoved() {
  {
    std::lock_guard<std::mutex> l(mu_);
    removed_ = true;
  }
  cv_.notify_all();
}

u64 SysvMsgQueue::QueuedBytes() const {
  std::lock_guard<std::mutex> l(mu_);
  return bytes_;
}

Result<int> SysvIpc::ShmGet(i32 key, u64 bytes) {
  if (bytes == 0) {
    return Errno::kEINVAL;
  }
  std::lock_guard<std::mutex> l(mu_);
  if (key != 0) {
    for (auto& [id, entry] : shm_) {
      if (entry.first == key) {
        if (entry.second->pages() < PagesFor(bytes)) {
          return Errno::kEINVAL;
        }
        return id;
      }
    }
  }
  auto region = Region::Alloc(mem_, RegionType::kShm, PagesFor(bytes));
  const int id = next_id_++;
  shm_.emplace(id, std::make_pair(key, std::move(region)));
  return id;
}

Result<std::shared_ptr<Region>> SysvIpc::ShmRegion(int shmid) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = shm_.find(shmid);
  if (it == shm_.end()) {
    return Errno::kEIDRM;
  }
  return it->second.second;
}

Status SysvIpc::ShmRemove(int shmid) {
  std::lock_guard<std::mutex> l(mu_);
  // Attached address spaces keep the region alive via shared_ptr; removal
  // only deletes the id (IPC_RMID semantics).
  return shm_.erase(shmid) != 0 ? Status::Ok() : Status(Errno::kEIDRM);
}

Result<int> SysvIpc::SemGet(i32 key, i64 initial) {
  std::lock_guard<std::mutex> l(mu_);
  if (key != 0) {
    for (auto& [id, entry] : sems_) {
      if (entry.first == key) {
        return id;
      }
    }
  }
  const int id = next_id_++;
  sems_.emplace(id, std::make_pair(key, std::make_shared<SysvSem>(initial)));
  return id;
}

Result<std::shared_ptr<SysvSem>> SysvIpc::Sem(int semid) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = sems_.find(semid);
  if (it == sems_.end()) {
    return Errno::kEIDRM;
  }
  return it->second.second;
}

Status SysvIpc::SemRemove(int semid) {
  std::shared_ptr<SysvSem> sem;
  {
    std::lock_guard<std::mutex> l(mu_);
    auto it = sems_.find(semid);
    if (it == sems_.end()) {
      return Errno::kEIDRM;
    }
    sem = it->second.second;
    sems_.erase(it);
  }
  sem->MarkRemoved();
  return Status::Ok();
}

Result<int> SysvIpc::MsgGet(i32 key) {
  std::lock_guard<std::mutex> l(mu_);
  if (key != 0) {
    for (auto& [id, entry] : msgs_) {
      if (entry.first == key) {
        return id;
      }
    }
  }
  const int id = next_id_++;
  msgs_.emplace(id, std::make_pair(key, std::make_shared<SysvMsgQueue>()));
  return id;
}

Result<std::shared_ptr<SysvMsgQueue>> SysvIpc::Msg(int msqid) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = msgs_.find(msqid);
  if (it == msgs_.end()) {
    return Errno::kEIDRM;
  }
  return it->second.second;
}

Status SysvIpc::MsgRemove(int msqid) {
  std::shared_ptr<SysvMsgQueue> q;
  {
    std::lock_guard<std::mutex> l(mu_);
    auto it = msgs_.find(msqid);
    if (it == msgs_.end()) {
      return Errno::kEIDRM;
    }
    q = it->second.second;
    msgs_.erase(it);
  }
  q->MarkRemoved();
  return Status::Ok();
}

}  // namespace sg
