#include "fs/inode.h"

#include <cstring>

#include "base/check.h"
#include "fs/pipe.h"
#include "sync/lockdep.h"

namespace sg {

Inode::Inode(ino_t ino, InodeType type, mode_t mode, uid_t uid, gid_t gid)
    : ino_(ino), type_(type), mode_(mode), uid_(uid), gid_(gid) {}

Inode::~Inode() = default;

mode_t Inode::mode() const {
  std::lock_guard<std::mutex> l(mu_);
  return mode_;
}

void Inode::set_mode(mode_t m) {
  std::lock_guard<std::mutex> l(mu_);
  mode_ = m & kModeAll;
}

uid_t Inode::uid() const {
  std::lock_guard<std::mutex> l(mu_);
  return uid_;
}

gid_t Inode::gid() const {
  std::lock_guard<std::mutex> l(mu_);
  return gid_;
}

void Inode::set_owner(uid_t u, gid_t g) {
  std::lock_guard<std::mutex> l(mu_);
  uid_ = u;
  gid_ = g;
}

u64 Inode::Size() const {
  if (gen_) {
    return gen_().size();
  }
  std::lock_guard<std::mutex> l(mu_);
  return data_.size();
}

u64 Inode::ReadAt(u64 off, std::byte* out, u64 len) const {
  if (gen_) {
    const std::string text = gen_();
    if (off >= text.size()) {
      return 0;
    }
    const u64 n = std::min<u64>(len, text.size() - off);
    std::memcpy(out, text.data() + off, n);
    return n;
  }
  std::lock_guard<std::mutex> l(mu_);
  if (off >= data_.size()) {
    return 0;
  }
  const u64 n = std::min<u64>(len, data_.size() - off);
  std::memcpy(out, data_.data() + off, n);
  return n;
}

u64 Inode::WriteAt(u64 off, const std::byte* src, u64 len, u64 limit) {
  std::lock_guard<std::mutex> l(mu_);
  if (off >= limit) {
    return 0;  // ulimit reached — caller reports EFBIG
  }
  const u64 n = std::min<u64>(len, limit - off);
  if (off + n > data_.size()) {
    data_.resize(off + n);
  }
  std::memcpy(data_.data() + off, src, n);
  return n;
}

void Inode::Truncate() {
  if (gen_) {
    return;  // synthetic files have no stored data to drop
  }
  std::lock_guard<std::mutex> l(mu_);
  data_.clear();
}

Result<Inode*> Inode::Lookup(const std::string& name) const {
  std::lock_guard<std::mutex> l(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Errno::kENOENT;
  }
  return it->second;
}

Status Inode::AddEntry(const std::string& name, Inode* child) {
  std::lock_guard<std::mutex> l(mu_);
  auto [it, inserted] = entries_.emplace(name, child);
  (void)it;
  return inserted ? Status::Ok() : Status(Errno::kEEXIST);
}

Status Inode::RemoveEntry(const std::string& name) {
  std::lock_guard<std::mutex> l(mu_);
  return entries_.erase(name) != 0 ? Status::Ok() : Status(Errno::kENOENT);
}

bool Inode::DirEmpty() const {
  std::lock_guard<std::mutex> l(mu_);
  return entries_.empty();
}

std::vector<std::string> Inode::ListEntries() const {
  std::lock_guard<std::mutex> l(mu_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, ino] : entries_) {
    out.push_back(name);
  }
  return out;
}

void Inode::AttachPipe(std::unique_ptr<Pipe> p) {
  std::lock_guard<std::mutex> l(mu_);
  SG_CHECK(type_ == InodeType::kPipe && pipe_ == nullptr);
  pipe_ = std::move(p);
}

bool Permits(const Inode& ip, uid_t uid, gid_t gid, Access want) {
  if (uid == 0) {
    return true;  // superuser
  }
  const mode_t m = ip.mode();
  mode_t bit;
  if (uid == ip.uid()) {
    bit = want == Access::kRead ? kModeUserR : want == Access::kWrite ? kModeUserW : kModeUserX;
  } else if (gid == ip.gid()) {
    bit = want == Access::kRead ? kModeGroupR : want == Access::kWrite ? kModeGroupW : kModeGroupX;
  } else {
    bit = want == Access::kRead ? kModeOtherR : want == Access::kWrite ? kModeOtherW : kModeOtherX;
  }
  return (m & bit) != 0;
}

InodeTable::InodeTable(u32 max_inodes) : max_inodes_(max_inodes) {}

InodeTable::~InodeTable() = default;

Result<Inode*> InodeTable::Alloc(InodeType type, mode_t mode, uid_t uid, gid_t gid) {
  std::lock_guard<std::mutex> l(mu_);
  if (table_.size() >= max_inodes_) {
    return Errno::kENOSPC;
  }
  auto ip = std::make_unique<Inode>(next_ino_++, type, static_cast<mode_t>(mode & kModeAll), uid,
                                    gid);
  Inode* raw = ip.get();
  table_.emplace(raw, std::make_pair(std::move(ip), 1u));
  return raw;
}

std::unique_lock<std::mutex> InodeTable::Acquire() const {
  lockdep::MaySleep("fs.itable.acquire");
  return std::unique_lock<std::mutex>(mu_);
}

Inode* InodeTable::Iget(Inode* ip) {
  auto l = Acquire();
  return IgetLocked(ip);
}

void InodeTable::Iput(Inode* ip) {
  auto l = Acquire();
  IputLocked(ip);
}

Inode* InodeTable::IgetLocked(Inode* ip) {
  auto it = table_.find(ip);
  SG_CHECK(it != table_.end());
  ++it->second.second;
  return ip;
}

void InodeTable::IputLocked(Inode* ip) {
  auto it = table_.find(ip);
  SG_CHECK(it != table_.end() && it->second.second > 0);
  --it->second.second;
  MaybeFree(ip);
}

void InodeTable::LinkInc(Inode* ip) {
  std::lock_guard<std::mutex> l(mu_);
  ++ip->nlink;
}

void InodeTable::LinkDec(Inode* ip) {
  std::lock_guard<std::mutex> l(mu_);
  SG_CHECK(ip->nlink > 0);
  --ip->nlink;
  MaybeFree(ip);
}

void InodeTable::MaybeFree(Inode* ip) {
  auto it = table_.find(ip);
  SG_CHECK(it != table_.end());
  if (it->second.second == 0 && ip->nlink == 0) {
    table_.erase(it);
  }
}

u32 InodeTable::RefCount(const Inode* ip) const {
  std::lock_guard<std::mutex> l(mu_);
  auto it = table_.find(ip);
  return it == table_.end() ? 0 : it->second.second;
}

u64 InodeTable::Count() const {
  std::lock_guard<std::mutex> l(mu_);
  return table_.size();
}

}  // namespace sg
