// Vfs — the filesystem facade the syscall layer drives: path resolution
// relative to a process's (current, root) directory pair, open/creat with
// umask application, link/unlink/mkdir, pipes, and file I/O with ulimit
// enforcement.
//
// The share-group resources PR_SDIR (cwd/root), PR_SUMASK and PR_SULIMIT
// all parameterize calls here: the proc layer passes its (possibly
// group-synchronized) copies in, so the VFS itself stays group-agnostic.
#ifndef SRC_FS_VFS_H_
#define SRC_FS_VFS_H_

#include <string>
#include <string_view>
#include <utility>

#include "base/result.h"
#include "base/types.h"
#include "fs/file.h"
#include "fs/inode.h"
#include "fs/pipe.h"

namespace sg {

// Identity used for permission checks (effective ids; PR_SID shares these).
struct Cred {
  uid_t uid = 0;
  gid_t gid = 0;
};

// lseek whence values.
enum class SeekWhence { kSet, kCur, kEnd };

class Vfs {
 public:
  Vfs(u32 max_inodes, u32 max_files);
  ~Vfs();
  Vfs(const Vfs&) = delete;
  Vfs& operator=(const Vfs&) = delete;

  InodeTable& inodes() { return inodes_; }
  FileTable& files() { return files_; }

  // The filesystem root ("/"). Callers Iget their own references.
  Inode* root() { return root_; }

  // Resolves `path` to an inode, returning a COUNTED reference (caller must
  // Iput). Absolute paths start at `rootdir`, relative ones at `cwd`; every
  // traversed directory requires search (execute) permission for `cred`.
  Result<Inode*> Namei(Inode* cwd, Inode* rootdir, const Cred& cred, std::string_view path);

  // Resolves to the parent directory of the path's final component,
  // returning a counted reference and the leaf name.
  Result<Inode*> NameiParent(Inode* cwd, Inode* rootdir, const Cred& cred, std::string_view path,
                             std::string* leaf);

  // open(2): returns a counted open-file entry. kOpenCreat creates with
  // `mode & ~umask` (the PR_SUMASK-shared value); kOpenExcl makes an
  // existing file an error; kOpenTrunc empties it.
  Result<OpenFile*> Open(Inode* cwd, Inode* rootdir, const Cred& cred, std::string_view path,
                         u32 flags, mode_t mode, mode_t umask);

  Status Mkdir(Inode* cwd, Inode* rootdir, const Cred& cred, std::string_view path, mode_t mode,
               mode_t umask);
  Status Link(Inode* cwd, Inode* rootdir, const Cred& cred, std::string_view existing,
              std::string_view newpath);
  Status Unlink(Inode* cwd, Inode* rootdir, const Cred& cred, std::string_view path);
  Status Rmdir(Inode* cwd, Inode* rootdir, const Cred& cred, std::string_view path);

  // pipe(2): returns {read end, write end}, both counted.
  Result<std::pair<OpenFile*, OpenFile*>> MakePipe();

  // I/O on open files. Write enforces `ulimit` (maximum file size in bytes,
  // the PR_SULIMIT-shared value) and returns kEFBIG when nothing fits.
  Result<u64> ReadFile(OpenFile& f, std::byte* out, u64 len);
  Result<u64> WriteFile(OpenFile& f, const std::byte* src, u64 len, u64 ulimit);
  Result<u64> Seek(OpenFile& f, i64 offset, SeekWhence whence);

 private:
  InodeTable inodes_;
  FileTable files_;
  Inode* root_ = nullptr;
};

}  // namespace sg

#endif  // SRC_FS_VFS_H_
