// The system open-file table and per-process descriptor tables.
//
// A descriptor number indexes the process's FdTable (the paper's footnote 1:
// "an index into the file table for a process, which holds pointers to open
// file table entries"). Share groups with PR_SFDS keep a master copy of the
// whole descriptor table in the shared-address block (s_ofile / s_pofile)
// and resynchronize members on kernel entry (§6.3).
#ifndef SRC_FS_FILE_H_
#define SRC_FS_FILE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "base/mutex.h"
#include "base/result.h"
#include "base/thread_annotations.h"
#include "base/types.h"
#include "fs/inode.h"

namespace sg {

// open(2) flag bits.
inline constexpr u32 kOpenRead = 1u << 0;
inline constexpr u32 kOpenWrite = 1u << 1;
inline constexpr u32 kOpenAppend = 1u << 2;
inline constexpr u32 kOpenCreat = 1u << 3;
inline constexpr u32 kOpenTrunc = 1u << 4;
inline constexpr u32 kOpenExcl = 1u << 5;
inline constexpr u32 kOpenRdwr = kOpenRead | kOpenWrite;

// One system file-table entry: an open instance of an inode with its own
// offset and mode. Reference-counted through the intrusive atomic count:
// descriptors (and the share block's master copy) hold counted references,
// so Dup/Release are one fetch_add/fetch_sub with no table lookup.
class OpenFile {
 public:
  OpenFile(Inode* ip, u32 flags) : inode_(ip), flags_(flags) {}
  OpenFile(const OpenFile&) = delete;
  OpenFile& operator=(const OpenFile&) = delete;

  Inode* inode() { return inode_; }
  u32 flags() const { return flags_; }
  bool readable() const { return (flags_ & kOpenRead) != 0; }
  bool writable() const { return (flags_ & kOpenWrite) != 0; }

  // Offset, shared by every descriptor referencing this entry (dup(2) and
  // fork(2) semantics — and share-group members sharing PR_SFDS). Plain
  // atomics: concurrent readers each advance by what they consumed, like
  // two processes sharing a file table entry on a real kernel — no mutex
  // on the per-byte I/O path.
  u64 offset() const { return offset_.load(std::memory_order_relaxed); }
  void set_offset(u64 off) { offset_.store(off, std::memory_order_relaxed); }
  // Atomically advances the offset by `n`, returning the pre-advance value.
  u64 AdvanceOffset(u64 n) { return offset_.fetch_add(n, std::memory_order_relaxed); }

 private:
  friend class FileTable;  // manages refs_ (Dup/Release/RefCount)

  Inode* inode_;
  u32 flags_;
  std::atomic<u64> offset_{0};
  std::atomic<u32> refs_{1};  // intrusive count; created referenced
};

// The system-wide open file table. Allocation bumps the inode reference;
// the final Release() drops it (and closes pipe endpoints).
//
// Dup/Release ride the intrusive refcount and touch no lock at all except
// at the zero crossing; entry OWNERSHIP (the unique_ptrs) lives in
// pointer-hashed shards so unrelated open/close streams do not serialize
// on one global mutex + std::map.
class FileTable {
 public:
  FileTable(InodeTable& inodes, u32 max_files) : inodes_(inodes), max_files_(max_files) {}
  FileTable(const FileTable&) = delete;
  FileTable& operator=(const FileTable&) = delete;

  // Creates an entry referencing `ip` (whose reference the caller transfers
  // in) with refcount 1; kENFILE when the table is full.
  Result<OpenFile*> Alloc(Inode* ip, u32 flags);

  // Takes an extra reference (dup/fork/share-block copy). Lock-free.
  OpenFile* Dup(OpenFile* f);

  // Drops a reference; the entry closes when it reaches zero (only the
  // zero crossing takes the owning shard's lock, to free the entry).
  void Release(OpenFile* f);

  u32 RefCount(const OpenFile* f) const;
  u64 Count() const { return count_.load(std::memory_order_acquire); }

 private:
  static constexpr u32 kShards = 16;

  struct alignas(64) Shard {
    mutable Mutex mu;
    std::map<const OpenFile*, std::unique_ptr<OpenFile>> owned SG_GUARDED_BY(mu);
  };

  Shard& ShardFor(const OpenFile* f) const {
    // Mix the pointer bits (fibonacci hashing) so allocator address
    // patterns don't pile onto one shard.
    const auto h = reinterpret_cast<std::uintptr_t>(f) * 0x9e3779b97f4a7c15ull;
    return shards_[(h >> 32) % kShards];
  }

  InodeTable& inodes_;
  u32 max_files_;
  std::atomic<u64> count_{0};  // live entries across all shards
  mutable std::array<Shard, kShards> shards_;
};

// One descriptor slot: the open-file pointer plus the per-descriptor flag
// byte (the paper's s_pofile keeps a copy of these flags).
struct FdEntry {
  OpenFile* file = nullptr;
  bool close_on_exec = false;

  bool used() const { return file != nullptr; }
};

// Per-process descriptor table. Plain data; the owning Proc (or the share
// block, for its master copy) coordinates access.
class FdTable {
 public:
  static constexpr int kMaxFds = 64;  // NOFILES in V.3 was 20; we allow more

  FdTable() : slots_(kMaxFds) {}

  // Lowest free descriptor, kEMFILE when full.
  Result<int> AllocSlot(OpenFile* f);
  Status SetSlot(int fd, OpenFile* f, bool close_on_exec);

  Result<OpenFile*> Get(int fd) const;
  FdEntry& Slot(int fd) { return slots_[static_cast<u32>(fd)]; }
  const FdEntry& Slot(int fd) const { return slots_[static_cast<u32>(fd)]; }

  // Clears slot `fd` and returns the file that was there (caller releases).
  Result<OpenFile*> ClearSlot(int fd);

  bool ValidFd(int fd) const { return fd >= 0 && fd < kMaxFds; }
  int OpenCount() const;

  std::vector<FdEntry>& slots() { return slots_; }
  const std::vector<FdEntry>& slots() const { return slots_; }

 private:
  std::vector<FdEntry> slots_;
};

}  // namespace sg

#endif  // SRC_FS_FILE_H_
