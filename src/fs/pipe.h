// Pipe — the classic UNIX queueing IPC path ("communication paths are
// restricted to low bandwidth queueing mechanisms, such as pipes" — §1).
// It is both a substrate (shells, servers) and the E5/E6 baseline whose
// copy-and-queue costs the paper contrasts with shared memory.
#ifndef SRC_FS_PIPE_H_
#define SRC_FS_PIPE_H_

#include <condition_variable>
#include <mutex>
#include <vector>

#include "base/result.h"
#include "base/types.h"
#include "sync/semaphore.h"  // SleepMode

namespace sg {

class Pipe {
 public:
  static constexpr u64 kCapacity = 4096;  // classic PIPE_BUF-sized buffer

  Pipe() : buf_(kCapacity) {}
  Pipe(const Pipe&) = delete;
  Pipe& operator=(const Pipe&) = delete;

  // Reads up to `len` bytes; blocks while the pipe is empty and writers
  // remain. Returns 0 at EOF (empty and no writers), kEINTR if interrupted.
  Result<u64> Read(std::byte* out, u64 len, SleepMode mode = SleepMode::kInterruptible);

  // Writes `len` bytes, blocking while full; kEPIPE once no readers remain
  // (the caller posts SIGPIPE). Partial writes happen only on interruption.
  Result<u64> Write(const std::byte* src, u64 len, SleepMode mode = SleepMode::kInterruptible);

  // Endpoint accounting, driven by open-file reference management.
  void AddReader();
  void AddWriter();
  void RemoveReader();
  void RemoveWriter();

  u64 BytesBuffered() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::byte> buf_;
  u64 head_ = 0;  // read position
  u64 size_ = 0;  // bytes buffered
  u32 readers_ = 0;
  u32 writers_ = 0;
};

}  // namespace sg

#endif  // SRC_FS_PIPE_H_
