// In-memory filesystem: inodes and the inode table.
//
// The paper's share groups propagate the current/root directory (PR_SDIR)
// and hold "+1" inode references from the shared-address block so a shared
// directory can never vanish while any member might still synchronize to it
// (§6.3). The inode table below provides exactly the iget/iput reference
// discipline that scheme relies on.
#ifndef SRC_FS_INODE_H_
#define SRC_FS_INODE_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "base/result.h"
#include "base/types.h"

namespace sg {

enum class InodeType { kRegular, kDirectory, kPipe };

// Permission bits (classic octal layout).
inline constexpr mode_t kModeUserR = 0400;
inline constexpr mode_t kModeUserW = 0200;
inline constexpr mode_t kModeUserX = 0100;
inline constexpr mode_t kModeGroupR = 0040;
inline constexpr mode_t kModeGroupW = 0020;
inline constexpr mode_t kModeGroupX = 0010;
inline constexpr mode_t kModeOtherR = 0004;
inline constexpr mode_t kModeOtherW = 0002;
inline constexpr mode_t kModeOtherX = 0001;
inline constexpr mode_t kModeAll = 0777;

class Pipe;

class Inode {
 public:
  Inode(ino_t ino, InodeType type, mode_t mode, uid_t uid, gid_t gid);
  Inode(const Inode&) = delete;
  Inode& operator=(const Inode&) = delete;
  ~Inode();

  ino_t ino() const { return ino_; }
  InodeType type() const { return type_; }

  // Metadata, guarded by meta lock.
  mode_t mode() const;
  void set_mode(mode_t m);
  uid_t uid() const;
  gid_t gid() const;
  void set_owner(uid_t u, gid_t g);

  // Link count (directory entries referencing this inode); guarded by the
  // owning InodeTable's lock.
  u32 nlink = 0;

  // --- Regular file data ---
  u64 Size() const;
  // Reads up to out.size() bytes at `off`; returns bytes read (0 at EOF).
  u64 ReadAt(u64 off, std::byte* out, u64 len) const;
  // Writes at `off`, growing the file, but never past `limit` bytes total
  // (the ulimit). Returns bytes written (0 means the limit was hit).
  u64 WriteAt(u64 off, const std::byte* src, u64 len, u64 limit);
  void Truncate();

  // --- Directory data ---
  // Entries hold plain pointers; the link count (nlink) managed by the
  // InodeTable keeps a referenced child alive.
  Result<Inode*> Lookup(const std::string& name) const;
  Status AddEntry(const std::string& name, Inode* child);
  Status RemoveEntry(const std::string& name);
  bool DirEmpty() const;
  std::vector<std::string> ListEntries() const;

  // Parent directory ("..") — the root points at itself.
  Inode* parent = nullptr;

  // --- Pipe ---
  void AttachPipe(std::unique_ptr<Pipe> p);
  Pipe* pipe() { return pipe_.get(); }

  // --- Synthetic (procfs-style) nodes ---
  // A generated regular file renders its contents on every ReadAt/Size; it
  // has no backing data_ and ignores writes/truncation. The callback must
  // be installed right after Alloc, before the inode is published in any
  // directory — it is immutable afterwards, so reads call it without mu_
  // (the generator may take arbitrary kernel locks of its own).
  void SetGenerator(std::function<std::string()> gen) { gen_ = std::move(gen); }
  bool generated() const { return static_cast<bool>(gen_); }

  // A refreshable directory re-populates its entries when path resolution
  // walks through it. Same publication discipline as SetGenerator; the
  // hook runs without mu_ held.
  void SetRefreshHook(std::function<void()> hook) { refresh_ = std::move(hook); }
  void InvokeRefresh() const {
    if (refresh_) {
      refresh_();
    }
  }
  // Synthetic directories own their namespace: user link/unlink/creat in
  // them is EPERM (even for root), like a real procfs.
  bool synthetic() const { return static_cast<bool>(refresh_); }

 private:
  const ino_t ino_;
  const InodeType type_;

  mutable std::mutex mu_;
  mode_t mode_;
  uid_t uid_;
  gid_t gid_;
  std::vector<std::byte> data_;              // kRegular
  std::map<std::string, Inode*> entries_;    // kDirectory
  std::unique_ptr<Pipe> pipe_;               // kPipe
  std::function<std::string()> gen_;         // synthetic kRegular (no mu_)
  std::function<void()> refresh_;            // synthetic kDirectory (no mu_)
};

// Wanted access for permission checks.
enum class Access { kRead, kWrite, kExec };

// Classic UNIX permission check: owner bits if uid matches, else group
// bits, else other bits; uid 0 passes everything.
bool Permits(const Inode& ip, uid_t uid, gid_t gid, Access want);

// The system inode table: allocation, lookup, and reference counting.
class InodeTable {
 public:
  explicit InodeTable(u32 max_inodes);
  InodeTable(const InodeTable&) = delete;
  InodeTable& operator=(const InodeTable&) = delete;
  ~InodeTable();

  // Allocates a new inode with reference count 1 and nlink 0.
  Result<Inode*> Alloc(InodeType type, mode_t mode, uid_t uid, gid_t gid);

  // Takes an additional reference (paper: the shared block "has the count
  // bumped one ... this avoids any races whereby the process that changed
  // the resource exits before all other group members have had a chance to
  // synchronize").
  Inode* Iget(Inode* ip);

  // Drops a reference; the inode is destroyed when both the reference count
  // and the link count reach zero.
  void Iput(Inode* ip);

  // Spin-safe refcounting. Iget/Iput take mu_, which may block, so a
  // spinlock holder must not call them (sgcheck: sleep-in-atomic; lockdep
  // reports the same at runtime). Callers that need to move inode
  // references from inside a spinlock section take the table lock FIRST —
  // mutex outside spinlock is the legal order — and use the *Locked forms
  // within:
  //
  //   auto tbl = inodes.Acquire();   // may block (no spinlock held yet)
  //   SpinGuard g(rupdlock_);
  //   inodes.IputLocked(old);        // pure table ops, never blocks
  std::unique_lock<std::mutex> Acquire() const;
  Inode* IgetLocked(Inode* ip);  // caller holds the Acquire() lock
  void IputLocked(Inode* ip);    // caller holds the Acquire() lock

  u32 RefCount(const Inode* ip) const;
  u64 Count() const;

  // Adjusts nlink under the table lock (entries changed by the VFS layer).
  void LinkInc(Inode* ip);
  // Decrements nlink, destroying the inode if it becomes unreferenced.
  void LinkDec(Inode* ip);

 private:
  void MaybeFree(Inode* ip);  // caller holds mu_

  mutable std::mutex mu_;
  u32 max_inodes_;
  ino_t next_ino_ = 1;  // the root directory is allocated first and gets 1
  std::map<const Inode*, std::pair<std::unique_ptr<Inode>, u32>> table_;  // inode -> (owner, refs)
};

}  // namespace sg

#endif  // SRC_FS_INODE_H_
