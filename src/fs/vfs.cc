#include "fs/vfs.h"

#include "base/check.h"

namespace sg {

namespace {

constexpr u64 kMaxNameLen = 255;

// Splits off the next path component from `rest`.
std::string_view NextComponent(std::string_view& rest) {
  while (!rest.empty() && rest.front() == '/') {
    rest.remove_prefix(1);
  }
  const auto slash = rest.find('/');
  std::string_view comp = rest.substr(0, slash);
  rest.remove_prefix(slash == std::string_view::npos ? rest.size() : slash);
  return comp;
}

}  // namespace

Vfs::Vfs(u32 max_inodes, u32 max_files) : inodes_(max_inodes), files_(inodes_, max_files) {
  auto r = inodes_.Alloc(InodeType::kDirectory, 0755, 0, 0);
  SG_CHECK(r.ok());
  root_ = r.value();
  root_->parent = root_;       // ".." at the root stays at the root
  inodes_.LinkInc(root_);      // the root is always linked
}

Vfs::~Vfs() {
  inodes_.LinkDec(root_);
  inodes_.Iput(root_);
}

Result<Inode*> Vfs::Namei(Inode* cwd, Inode* rootdir, const Cred& cred, std::string_view path) {
  if (path.empty()) {
    return Errno::kENOENT;
  }
  Inode* at = (path.front() == '/') ? rootdir : cwd;
  at = inodes_.Iget(at);
  std::string_view rest = path;
  while (true) {
    std::string_view comp = NextComponent(rest);
    if (comp.empty()) {
      break;  // trailing slash or end
    }
    if (comp.size() > kMaxNameLen) {
      inodes_.Iput(at);
      return Errno::kENAMETOOLONG;
    }
    if (at->type() != InodeType::kDirectory) {
      inodes_.Iput(at);
      return Errno::kENOTDIR;
    }
    if (!Permits(*at, cred.uid, cred.gid, Access::kExec)) {
      inodes_.Iput(at);
      return Errno::kEACCES;
    }
    at->InvokeRefresh();  // synthetic dirs (procfs) re-populate before lookup
    Inode* next;
    if (comp == ".") {
      next = at;
    } else if (comp == "..") {
      // Never climb above the process's root directory (chroot jail).
      next = (at == rootdir) ? at : at->parent;
    } else {
      auto found = at->Lookup(std::string(comp));
      if (!found.ok()) {
        inodes_.Iput(at);
        return found.error();
      }
      next = found.value();
    }
    next = inodes_.Iget(next);
    inodes_.Iput(at);
    at = next;
  }
  if (at->type() == InodeType::kDirectory) {
    at->InvokeRefresh();  // resolving the dir itself (e.g. for ListDir)
  }
  return at;
}

Result<Inode*> Vfs::NameiParent(Inode* cwd, Inode* rootdir, const Cred& cred,
                                std::string_view path, std::string* leaf) {
  if (path.empty()) {
    return Errno::kENOENT;
  }
  // Strip trailing slashes, then split at the last one.
  while (path.size() > 1 && path.back() == '/') {
    path.remove_suffix(1);
  }
  const auto slash = path.rfind('/');
  std::string_view dir_part;
  std::string_view leaf_part;
  if (slash == std::string_view::npos) {
    dir_part = ".";
    leaf_part = path;
  } else {
    dir_part = slash == 0 ? "/" : path.substr(0, slash);
    leaf_part = path.substr(slash + 1);
  }
  if (leaf_part.empty() || leaf_part == "." || leaf_part == "..") {
    return Errno::kEINVAL;
  }
  if (leaf_part.size() > kMaxNameLen) {
    return Errno::kENAMETOOLONG;
  }
  auto dir = Namei(cwd, rootdir, cred, dir_part);
  if (!dir.ok()) {
    return dir.error();
  }
  if (dir.value()->type() != InodeType::kDirectory) {
    inodes_.Iput(dir.value());
    return Errno::kENOTDIR;
  }
  *leaf = std::string(leaf_part);
  return dir.value();
}

Result<OpenFile*> Vfs::Open(Inode* cwd, Inode* rootdir, const Cred& cred, std::string_view path,
                            u32 flags, mode_t mode, mode_t umask) {
  if ((flags & (kOpenRead | kOpenWrite)) == 0) {
    return Errno::kEINVAL;
  }
  Inode* ip = nullptr;
  auto found = Namei(cwd, rootdir, cred, path);
  if (found.ok()) {
    if ((flags & kOpenCreat) != 0 && (flags & kOpenExcl) != 0) {
      inodes_.Iput(found.value());
      return Errno::kEEXIST;
    }
    ip = found.value();
  } else if (found.error() == Errno::kENOENT && (flags & kOpenCreat) != 0) {
    // creat path: make the file in its parent, applying the umask (§4:
    // umask is one of the shared resources — all members see a change).
    std::string leaf;
    auto dir = NameiParent(cwd, rootdir, cred, path, &leaf);
    if (!dir.ok()) {
      return dir.error();
    }
    Inode* dp = dir.value();
    if (dp->synthetic()) {
      inodes_.Iput(dp);
      return Errno::kEPERM;
    }
    if (!Permits(*dp, cred.uid, cred.gid, Access::kWrite)) {
      inodes_.Iput(dp);
      return Errno::kEACCES;
    }
    auto made = inodes_.Alloc(InodeType::kRegular, static_cast<mode_t>(mode & ~umask & kModeAll),
                              cred.uid, cred.gid);
    if (!made.ok()) {
      inodes_.Iput(dp);
      return made.error();
    }
    ip = made.value();
    // A racing creator can beat us to the entry; retry as plain open.
    Status added = dp->AddEntry(leaf, ip);
    if (!added.ok()) {
      inodes_.Iput(ip);
      inodes_.Iput(dp);
      return Open(cwd, rootdir, cred, path, flags & ~kOpenCreat, mode, umask);
    }
    inodes_.LinkInc(ip);
    inodes_.Iput(dp);
  } else {
    return found.error();
  }

  if (ip->type() == InodeType::kDirectory && (flags & kOpenWrite) != 0) {
    inodes_.Iput(ip);
    return Errno::kEISDIR;
  }
  if ((flags & kOpenRead) != 0 && !Permits(*ip, cred.uid, cred.gid, Access::kRead)) {
    inodes_.Iput(ip);
    return Errno::kEACCES;
  }
  if ((flags & kOpenWrite) != 0 && !Permits(*ip, cred.uid, cred.gid, Access::kWrite)) {
    inodes_.Iput(ip);
    return Errno::kEACCES;
  }
  if ((flags & kOpenWrite) != 0 && ip->generated()) {
    inodes_.Iput(ip);
    return Errno::kEPERM;  // synthetic files render on read; writes are meaningless
  }
  if ((flags & kOpenTrunc) != 0 && ip->type() == InodeType::kRegular) {
    ip->Truncate();
  }
  auto f = files_.Alloc(ip, flags);
  if (!f.ok()) {
    inodes_.Iput(ip);
    return f.error();
  }
  return f.value();  // the inode reference moved into the file entry
}

Status Vfs::Mkdir(Inode* cwd, Inode* rootdir, const Cred& cred, std::string_view path,
                  mode_t mode, mode_t umask) {
  std::string leaf;
  auto dir = NameiParent(cwd, rootdir, cred, path, &leaf);
  if (!dir.ok()) {
    return dir.error();
  }
  Inode* dp = dir.value();
  if (dp->synthetic()) {
    inodes_.Iput(dp);
    return Errno::kEPERM;
  }
  if (!Permits(*dp, cred.uid, cred.gid, Access::kWrite)) {
    inodes_.Iput(dp);
    return Errno::kEACCES;
  }
  if (dp->Lookup(leaf).ok()) {
    inodes_.Iput(dp);
    return Errno::kEEXIST;
  }
  auto made = inodes_.Alloc(InodeType::kDirectory,
                            static_cast<mode_t>(mode & ~umask & kModeAll), cred.uid, cred.gid);
  if (!made.ok()) {
    inodes_.Iput(dp);
    return made.error();
  }
  Inode* child = made.value();
  child->parent = dp;
  Status added = dp->AddEntry(leaf, child);
  if (!added.ok()) {
    inodes_.Iput(child);
    inodes_.Iput(dp);
    return added;
  }
  inodes_.LinkInc(child);
  inodes_.Iput(child);  // the directory entry (nlink) keeps it alive
  inodes_.Iput(dp);
  return Status::Ok();
}

Status Vfs::Link(Inode* cwd, Inode* rootdir, const Cred& cred, std::string_view existing,
                 std::string_view newpath) {
  auto target = Namei(cwd, rootdir, cred, existing);
  if (!target.ok()) {
    return target.error();
  }
  Inode* ip = target.value();
  if (ip->type() == InodeType::kDirectory) {
    inodes_.Iput(ip);
    return Errno::kEISDIR;  // no hard links to directories
  }
  std::string leaf;
  auto dir = NameiParent(cwd, rootdir, cred, newpath, &leaf);
  if (!dir.ok()) {
    inodes_.Iput(ip);
    return dir.error();
  }
  Inode* dp = dir.value();
  if (dp->synthetic() || ip->generated()) {
    inodes_.Iput(dp);
    inodes_.Iput(ip);
    return Errno::kEPERM;
  }
  if (!Permits(*dp, cred.uid, cred.gid, Access::kWrite)) {
    inodes_.Iput(dp);
    inodes_.Iput(ip);
    return Errno::kEACCES;
  }
  Status added = dp->AddEntry(leaf, ip);
  if (added.ok()) {
    inodes_.LinkInc(ip);
  }
  inodes_.Iput(dp);
  inodes_.Iput(ip);
  return added;
}

Status Vfs::Unlink(Inode* cwd, Inode* rootdir, const Cred& cred, std::string_view path) {
  std::string leaf;
  auto dir = NameiParent(cwd, rootdir, cred, path, &leaf);
  if (!dir.ok()) {
    return dir.error();
  }
  Inode* dp = dir.value();
  if (dp->synthetic()) {
    inodes_.Iput(dp);
    return Errno::kEPERM;
  }
  if (!Permits(*dp, cred.uid, cred.gid, Access::kWrite)) {
    inodes_.Iput(dp);
    return Errno::kEACCES;
  }
  auto found = dp->Lookup(leaf);
  if (!found.ok()) {
    inodes_.Iput(dp);
    return found.error();
  }
  Inode* ip = found.value();
  if (ip->type() == InodeType::kDirectory) {
    inodes_.Iput(dp);
    return Errno::kEISDIR;  // use Rmdir
  }
  SG_CHECK(dp->RemoveEntry(leaf).ok());
  inodes_.LinkDec(ip);  // open references keep the data alive until closed
  inodes_.Iput(dp);
  return Status::Ok();
}

Status Vfs::Rmdir(Inode* cwd, Inode* rootdir, const Cred& cred, std::string_view path) {
  std::string leaf;
  auto dir = NameiParent(cwd, rootdir, cred, path, &leaf);
  if (!dir.ok()) {
    return dir.error();
  }
  Inode* dp = dir.value();
  if (!Permits(*dp, cred.uid, cred.gid, Access::kWrite)) {
    inodes_.Iput(dp);
    return Errno::kEACCES;
  }
  auto found = dp->Lookup(leaf);
  if (!found.ok()) {
    inodes_.Iput(dp);
    return found.error();
  }
  Inode* ip = found.value();
  if (ip->type() != InodeType::kDirectory) {
    inodes_.Iput(dp);
    return Errno::kENOTDIR;
  }
  if (!ip->DirEmpty()) {
    inodes_.Iput(dp);
    return Errno::kENOTEMPTY;
  }
  SG_CHECK(dp->RemoveEntry(leaf).ok());
  inodes_.LinkDec(ip);
  inodes_.Iput(dp);
  return Status::Ok();
}

Result<std::pair<OpenFile*, OpenFile*>> Vfs::MakePipe() {
  auto made = inodes_.Alloc(InodeType::kPipe, 0600, 0, 0);
  if (!made.ok()) {
    return made.error();
  }
  Inode* ip = made.value();
  ip->AttachPipe(std::make_unique<Pipe>());
  auto rd = files_.Alloc(ip, kOpenRead);
  if (!rd.ok()) {
    inodes_.Iput(ip);
    return rd.error();
  }
  auto wr = files_.Alloc(inodes_.Iget(ip), kOpenWrite);
  if (!wr.ok()) {
    files_.Release(rd.value());
    return wr.error();
  }
  return std::make_pair(rd.value(), wr.value());
}

Result<u64> Vfs::ReadFile(OpenFile& f, std::byte* out, u64 len) {
  if (!f.readable()) {
    return Errno::kEBADF;
  }
  Inode* ip = f.inode();
  if (ip->type() == InodeType::kPipe) {
    return ip->pipe()->Read(out, len);
  }
  if (ip->type() == InodeType::kDirectory) {
    return Errno::kEISDIR;
  }
  const u64 at = f.offset();
  const u64 n = ip->ReadAt(at, out, len);
  f.AdvanceOffset(n);
  return n;
}

Result<u64> Vfs::WriteFile(OpenFile& f, const std::byte* src, u64 len, u64 ulimit) {
  if (!f.writable()) {
    return Errno::kEBADF;
  }
  Inode* ip = f.inode();
  if (ip->type() == InodeType::kPipe) {
    return ip->pipe()->Write(src, len);
  }
  if ((f.flags() & kOpenAppend) != 0) {
    f.set_offset(ip->Size());
  }
  const u64 at = f.offset();
  const u64 n = ip->WriteAt(at, src, len, ulimit);
  if (n == 0 && len > 0) {
    return Errno::kEFBIG;  // ulimit exceeded before anything was written
  }
  f.AdvanceOffset(n);
  return n;
}

Result<u64> Vfs::Seek(OpenFile& f, i64 offset, SeekWhence whence) {
  Inode* ip = f.inode();
  if (ip->type() == InodeType::kPipe) {
    return Errno::kESPIPE;
  }
  i64 base = 0;
  switch (whence) {
    case SeekWhence::kSet: base = 0; break;
    case SeekWhence::kCur: base = static_cast<i64>(f.offset()); break;
    case SeekWhence::kEnd: base = static_cast<i64>(ip->Size()); break;
  }
  const i64 target = base + offset;
  if (target < 0) {
    return Errno::kEINVAL;
  }
  f.set_offset(static_cast<u64>(target));
  return static_cast<u64>(target);
}

}  // namespace sg
