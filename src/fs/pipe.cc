#include "fs/pipe.h"

#include <cstring>

#include "base/check.h"
#include "sync/wait.h"

namespace sg {

Result<u64> Pipe::Read(std::byte* out, u64 len, SleepMode mode) {
  if (len == 0) {
    return u64{0};
  }
  bool slept = false;
  Result<u64> result = u64{0};
  {
    std::unique_lock<std::mutex> l(mu_);
    const Status st =
        BlockOn(cv_, l, mode, &slept, [&] { return size_ > 0 || writers_ == 0; });
    if (!st.ok()) {
      result = st.error();
    } else if (size_ == 0) {
      result = u64{0};  // EOF: drained and no writers left
    } else {
      const u64 n = std::min(len, size_);
      for (u64 i = 0; i < n; ++i) {
        out[i] = buf_[(head_ + i) % kCapacity];
      }
      head_ = (head_ + n) % kCapacity;
      size_ -= n;
      result = n;
      cv_.notify_all();  // room for blocked writers
    }
  }
  FinishSleep(slept);
  return result;
}

Result<u64> Pipe::Write(const std::byte* src, u64 len, SleepMode mode) {
  u64 written = 0;
  bool slept_any = false;
  Status st = Status::Ok();
  {
    std::unique_lock<std::mutex> l(mu_);
    while (written < len) {
      bool slept = false;
      st = BlockOn(cv_, l, mode, &slept, [&] { return size_ < kCapacity || readers_ == 0; });
      slept_any = slept_any || slept;
      if (!st.ok()) {
        break;
      }
      if (readers_ == 0) {
        st = Errno::kEPIPE;
        break;
      }
      const u64 n = std::min(len - written, kCapacity - size_);
      const u64 tail = (head_ + size_) % kCapacity;
      for (u64 i = 0; i < n; ++i) {
        buf_[(tail + i) % kCapacity] = src[written + i];
      }
      size_ += n;
      written += n;
      cv_.notify_all();  // data for blocked readers
    }
  }
  FinishSleep(slept_any);
  if (written > 0) {
    return written;  // partial write beats the error, like the real kernel
  }
  if (!st.ok()) {
    return st.error();
  }
  return written;
}

void Pipe::AddReader() {
  std::lock_guard<std::mutex> l(mu_);
  ++readers_;
}

void Pipe::AddWriter() {
  std::lock_guard<std::mutex> l(mu_);
  ++writers_;
}

void Pipe::RemoveReader() {
  {
    std::lock_guard<std::mutex> l(mu_);
    SG_CHECK(readers_ > 0);
    --readers_;
  }
  cv_.notify_all();  // writers must learn about EPIPE
}

void Pipe::RemoveWriter() {
  {
    std::lock_guard<std::mutex> l(mu_);
    SG_CHECK(writers_ > 0);
    --writers_;
  }
  cv_.notify_all();  // readers must learn about EOF
}

u64 Pipe::BytesBuffered() const {
  std::lock_guard<std::mutex> l(mu_);
  return size_;
}

}  // namespace sg
