#include "fs/file.h"

#include "base/check.h"
#include "fs/pipe.h"
#include "inject/inject.h"

namespace sg {

Result<OpenFile*> FileTable::Alloc(Inode* ip, u32 flags) {
  MutexGuard l(mu_);
  if (table_.size() >= max_files_) {
    return Errno::kENFILE;
  }
  auto f = std::make_unique<OpenFile>(ip, flags);
  OpenFile* raw = f.get();
  table_.emplace(raw, std::make_pair(std::move(f), 1u));
  if (ip->type() == InodeType::kPipe) {
    if ((flags & kOpenRead) != 0) {
      ip->pipe()->AddReader();
    }
    if ((flags & kOpenWrite) != 0) {
      ip->pipe()->AddWriter();
    }
  }
  return raw;
}

OpenFile* FileTable::Dup(OpenFile* f) {
  SG_INJECT_POINT("file.dup");
  MutexGuard l(mu_);
  auto it = table_.find(f);
  SG_CHECK(it != table_.end());
  ++it->second.second;
  return f;
}

void FileTable::Release(OpenFile* f) {
  SG_INJECT_POINT("file.release");
  std::unique_ptr<OpenFile> dying;
  {
    MutexGuard l(mu_);
    auto it = table_.find(f);
    SG_CHECK(it != table_.end() && it->second.second > 0);
    if (--it->second.second > 0) {
      return;
    }
    dying = std::move(it->second.first);
    table_.erase(it);
  }
  Inode* ip = dying->inode();
  if (ip->type() == InodeType::kPipe) {
    if (dying->readable()) {
      ip->pipe()->RemoveReader();
    }
    if (dying->writable()) {
      ip->pipe()->RemoveWriter();
    }
  }
  inodes_.Iput(ip);
}

u32 FileTable::RefCount(const OpenFile* f) const {
  MutexGuard l(mu_);
  auto it = table_.find(f);
  return it == table_.end() ? 0 : it->second.second;
}

u64 FileTable::Count() const {
  MutexGuard l(mu_);
  return table_.size();
}

Result<int> FdTable::AllocSlot(OpenFile* f) {
  for (int fd = 0; fd < kMaxFds; ++fd) {
    if (!slots_[static_cast<u32>(fd)].used()) {
      slots_[static_cast<u32>(fd)] = FdEntry{f, false};
      return fd;
    }
  }
  return Errno::kEMFILE;
}

Status FdTable::SetSlot(int fd, OpenFile* f, bool close_on_exec) {
  if (!ValidFd(fd)) {
    return Errno::kEBADF;
  }
  slots_[static_cast<u32>(fd)] = FdEntry{f, close_on_exec};
  return Status::Ok();
}

Result<OpenFile*> FdTable::Get(int fd) const {
  if (!ValidFd(fd) || !slots_[static_cast<u32>(fd)].used()) {
    return Errno::kEBADF;
  }
  return slots_[static_cast<u32>(fd)].file;
}

Result<OpenFile*> FdTable::ClearSlot(int fd) {
  if (!ValidFd(fd) || !slots_[static_cast<u32>(fd)].used()) {
    return Errno::kEBADF;
  }
  OpenFile* f = slots_[static_cast<u32>(fd)].file;
  slots_[static_cast<u32>(fd)] = FdEntry{};
  return f;
}

int FdTable::OpenCount() const {
  int n = 0;
  for (const FdEntry& e : slots_) {
    n += e.used() ? 1 : 0;
  }
  return n;
}

}  // namespace sg
