#include "fs/file.h"

#include "base/check.h"
#include "fs/pipe.h"
#include "inject/inject.h"

namespace sg {

Result<OpenFile*> FileTable::Alloc(Inode* ip, u32 flags) {
  // Claim a slot in the global budget first; roll back on ENFILE. This is
  // the only table-wide serialization point and it is one fetch_add.
  if (count_.fetch_add(1, std::memory_order_acq_rel) >= max_files_) {
    count_.fetch_sub(1, std::memory_order_acq_rel);
    return Errno::kENFILE;
  }
  auto f = std::make_unique<OpenFile>(ip, flags);
  OpenFile* raw = f.get();
  {
    Shard& s = ShardFor(raw);
    MutexGuard l(s.mu);
    s.owned.emplace(raw, std::move(f));
  }
  if (ip->type() == InodeType::kPipe) {
    if ((flags & kOpenRead) != 0) {
      ip->pipe()->AddReader();
    }
    if ((flags & kOpenWrite) != 0) {
      ip->pipe()->AddWriter();
    }
  }
  return raw;
}

OpenFile* FileTable::Dup(OpenFile* f) {
  SG_INJECT_POINT("file.dup");
  const u32 prev = f->refs_.fetch_add(1, std::memory_order_relaxed);
  SG_CHECK(prev > 0);  // duping a dead entry would resurrect freed state
  return f;
}

void FileTable::Release(OpenFile* f) {
  SG_INJECT_POINT("file.release");
  // acq_rel: the release half publishes this holder's writes (offset etc.)
  // to whoever frees; the acquire half makes the freeing thread see them.
  const u32 prev = f->refs_.fetch_sub(1, std::memory_order_acq_rel);
  SG_CHECK(prev > 0);
  if (prev > 1) {
    return;
  }
  // Zero crossing: nobody else holds a reference (every Dup starts from a
  // live reference), so `f` is exclusively ours — take the shard lock only
  // to unhook the entry from the ownership map.
  SG_INJECT_POINT("file.release.last");
  std::unique_ptr<OpenFile> dying;
  {
    Shard& s = ShardFor(f);
    MutexGuard l(s.mu);
    auto it = s.owned.find(f);
    SG_CHECK(it != s.owned.end());
    dying = std::move(it->second);
    s.owned.erase(it);
  }
  count_.fetch_sub(1, std::memory_order_acq_rel);
  Inode* ip = dying->inode();
  if (ip->type() == InodeType::kPipe) {
    if (dying->readable()) {
      ip->pipe()->RemoveReader();
    }
    if (dying->writable()) {
      ip->pipe()->RemoveWriter();
    }
  }
  inodes_.Iput(ip);
}

u32 FileTable::RefCount(const OpenFile* f) const {
  // Diagnostic/test path: look the entry up so a freed pointer reads 0
  // instead of touching dead memory.
  const Shard& s = ShardFor(f);
  MutexGuard l(s.mu);
  auto it = s.owned.find(f);
  return it == s.owned.end() ? 0 : it->second->refs_.load(std::memory_order_acquire);
}

Result<int> FdTable::AllocSlot(OpenFile* f) {
  for (int fd = 0; fd < kMaxFds; ++fd) {
    if (!slots_[static_cast<u32>(fd)].used()) {
      slots_[static_cast<u32>(fd)] = FdEntry{f, false};
      return fd;
    }
  }
  return Errno::kEMFILE;
}

Status FdTable::SetSlot(int fd, OpenFile* f, bool close_on_exec) {
  if (!ValidFd(fd)) {
    return Errno::kEBADF;
  }
  slots_[static_cast<u32>(fd)] = FdEntry{f, close_on_exec};
  return Status::Ok();
}

Result<OpenFile*> FdTable::Get(int fd) const {
  if (!ValidFd(fd) || !slots_[static_cast<u32>(fd)].used()) {
    return Errno::kEBADF;
  }
  return slots_[static_cast<u32>(fd)].file;
}

Result<OpenFile*> FdTable::ClearSlot(int fd) {
  if (!ValidFd(fd) || !slots_[static_cast<u32>(fd)].used()) {
    return Errno::kEBADF;
  }
  OpenFile* f = slots_[static_cast<u32>(fd)].file;
  slots_[static_cast<u32>(fd)] = FdEntry{};
  return f;
}

int FdTable::OpenCount() const {
  int n = 0;
  for (const FdEntry& e : slots_) {
    n += e.used() ? 1 : 0;
  }
  return n;
}

}  // namespace sg
