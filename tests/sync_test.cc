// Unit tests for sync/: spinlock, semaphore, barrier, and — most
// importantly — the paper's shared read lock (s_acclck/s_acccnt/s_waitcnt/
// s_updwait construction, §6.2).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "obs/stats.h"
#include "sync/barrier.h"
#include "sync/execution_context.h"
#include "sync/semaphore.h"
#include "sync/shared_read_lock.h"
#include "sync/spinlock.h"

namespace sg {
namespace {

TEST(Spinlock, MutualExclusion) {
  Spinlock lock;
  u64 counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> ts;
  for (int i = 0; i < kThreads; ++i) {
    ts.emplace_back([&] {
      for (int n = 0; n < kIters; ++n) {
        SpinGuard g(lock);
        ++counter;
      }
    });
  }
  for (auto& t : ts) {
    t.join();
  }
  EXPECT_EQ(counter, static_cast<u64>(kThreads) * kIters);
}

TEST(Spinlock, TryLock) {
  Spinlock lock;
  EXPECT_TRUE(lock.TryLock());
  EXPECT_FALSE(lock.TryLock());
  lock.Unlock();
  EXPECT_TRUE(lock.TryLock());
  lock.Unlock();
}

TEST(Semaphore, CountingSemantics) {
  Semaphore sem(2);
  EXPECT_TRUE(sem.TryP());
  EXPECT_TRUE(sem.TryP());
  EXPECT_FALSE(sem.TryP());
  sem.V();
  EXPECT_EQ(sem.count(), 1);
  EXPECT_TRUE(sem.TryP());
}

TEST(Semaphore, PBlocksUntilV) {
  Semaphore sem(0);
  std::atomic<bool> got{false};
  std::thread t([&] {
    EXPECT_TRUE(sem.P().ok());
    got = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(got.load());
  sem.V();
  t.join();
  EXPECT_TRUE(got.load());
  EXPECT_GE(sem.sleeps(), 1u);
}

TEST(Semaphore, ProducerConsumer) {
  Semaphore items(0);
  Semaphore slots(4);
  std::atomic<int> consumed{0};
  constexpr int kN = 5000;
  std::thread producer([&] {
    for (int i = 0; i < kN; ++i) {
      ASSERT_TRUE(slots.P().ok());
      items.V();
    }
  });
  std::thread consumer([&] {
    for (int i = 0; i < kN; ++i) {
      ASSERT_TRUE(items.P().ok());
      slots.V();
      ++consumed;
    }
  });
  producer.join();
  consumer.join();
  EXPECT_EQ(consumed.load(), kN);
}

TEST(SharedReadLock, ManyConcurrentReaders) {
  // Deterministic overlap: hold a read lock here and prove another reader
  // still enters ("any number of processes can scan the list").
  SharedReadLock lock;
  lock.AcquireRead();
  std::atomic<bool> second_entered{false};
  std::thread other([&] {
    ReadGuard g(lock);
    second_entered = true;
  });
  other.join();  // completes while WE still hold the read side
  EXPECT_TRUE(second_entered.load());
  lock.ReleaseRead();
  EXPECT_EQ(lock.reads(), 2u);

  // And a throughput burst for the counters.
  constexpr int kReaders = 8;
  std::vector<std::thread> ts;
  for (int i = 0; i < kReaders; ++i) {
    ts.emplace_back([&] {
      for (int n = 0; n < 500; ++n) {
        ReadGuard g(lock);
      }
    });
  }
  for (auto& t : ts) {
    t.join();
  }
  EXPECT_EQ(lock.reads(), 2u + static_cast<u64>(kReaders) * 500);
}

TEST(SharedReadLock, UpdaterExcludesReadersAndUpdaters) {
  SharedReadLock lock;
  std::atomic<int> readers_inside{0};
  std::atomic<int> updaters_inside{0};
  std::atomic<bool> violation{false};
  std::vector<std::thread> ts;
  for (int i = 0; i < 6; ++i) {
    ts.emplace_back([&] {
      for (int n = 0; n < 2000; ++n) {
        ReadGuard g(lock);
        readers_inside.fetch_add(1);
        if (updaters_inside.load() != 0) {
          violation = true;
        }
        readers_inside.fetch_sub(1);
      }
    });
  }
  for (int i = 0; i < 2; ++i) {
    ts.emplace_back([&] {
      for (int n = 0; n < 500; ++n) {
        UpdateGuard g(lock);
        if (updaters_inside.fetch_add(1) != 0 || readers_inside.load() != 0) {
          violation = true;
        }
        updaters_inside.fetch_sub(1);
      }
    });
  }
  for (auto& t : ts) {
    t.join();
  }
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(lock.updates(), 1000u);
}

TEST(SharedReadLock, TryAcquireUpdate) {
  SharedReadLock lock;
  lock.AcquireRead();
  EXPECT_FALSE(lock.TryAcquireUpdate());
  lock.ReleaseRead();
  EXPECT_TRUE(lock.TryAcquireUpdate());
  lock.ReleaseUpdate();
}

TEST(SharedReadLock, ReadersDrainBeforeUpdate) {
  SharedReadLock lock;
  lock.AcquireRead();
  std::atomic<bool> updated{false};
  std::thread up([&] {
    lock.AcquireUpdate();
    updated = true;
    lock.ReleaseUpdate();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(updated.load());  // updater waits for the reader
  lock.ReleaseRead();
  up.join();
  EXPECT_TRUE(updated.load());
  EXPECT_GE(lock.update_waits(), 1u);
}

TEST(SharedReadLock, ReaderBlockedDuringUpdateTakesSlowPath) {
  SharedReadLock lock;
  lock.AcquireUpdate();
  std::atomic<bool> entered{false};
  std::thread reader([&] {
    ReadGuard g(lock);
    entered = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(entered.load());  // the writer holds: reader queued
  lock.ReleaseUpdate();
  reader.join();
  EXPECT_TRUE(entered.load());
  EXPECT_EQ(lock.reads(), 1u);
  EXPECT_GE(lock.read_slow(), 1u);   // it entered through the slow path
  EXPECT_GE(lock.read_waits(), 1u);  // after at least one sleep
}

// The §6.2 contention shape under stress: a continuous stream of "faulting"
// readers (they re-acquire as fast as they can, like members refaulting
// after shootdowns) races a fixed number of updaters. Writer preference
// must let every updater finish WHILE the reader stream keeps running —
// if the stream could starve updaters this test never terminates — and
// the sharded grant/update counters must come out exact.
TEST(SharedReadLock, UpdatersFinishAgainstContinuousReaderStream) {
  SharedReadLock lock;
  std::atomic<bool> stop{false};
  std::atomic<u64> reader_grants{0};
  constexpr int kReaders = 6;
  constexpr int kUpdaters = 2;
  constexpr int kUpdatesEach = 300;

  std::vector<std::thread> readers;
  for (int i = 0; i < kReaders; ++i) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        ReadGuard g(lock);
        reader_grants.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::vector<std::thread> updaters;
  for (int i = 0; i < kUpdaters; ++i) {
    updaters.emplace_back([&] {
      for (int n = 0; n < kUpdatesEach; ++n) {
        UpdateGuard g(lock);
      }
    });
  }
  // All updates complete while the readers are still streaming.
  for (auto& t : updaters) {
    t.join();
  }
  EXPECT_FALSE(stop.load());
  stop = true;
  for (auto& t : readers) {
    t.join();
  }
  EXPECT_EQ(lock.updates(), static_cast<u64>(kUpdaters) * kUpdatesEach);
  // Every grant the readers counted is visible in the sharded slot sums —
  // no acquisition was lost or double-counted across slots.
  EXPECT_EQ(lock.reads(), reader_grants.load());
}

TEST(SharedReadLock, SetNameSurfacesPerLockCounters) {
  SharedReadLock lock;
  lock.SetName("synctest0");
  EXPECT_EQ(lock.name(), "synctest0");
  const u64 updates0 = obs::Stats::Global().CounterValue("sharedlock.synctest0.updates");
  {
    UpdateGuard g(lock);
  }
  {
    UpdateGuard g(lock);
  }
  EXPECT_EQ(obs::Stats::Global().CounterValue("sharedlock.synctest0.updates"), updates0 + 2);
  EXPECT_GE(obs::Stats::Global().HistoCount("sharedlock.synctest0.update_wait_ns"), 2u);
  // The per-lock histogram recorded both grants too.
  EXPECT_EQ(lock.update_wait_histo().count(), 2u);
}

TEST(Barrier, RendezvousAndReuse) {
  Barrier barrier(4);
  std::atomic<int> phase_sum{0};
  std::vector<std::thread> ts;
  for (int i = 0; i < 4; ++i) {
    ts.emplace_back([&] {
      phase_sum.fetch_add(1);
      barrier.Arrive();
      EXPECT_EQ(phase_sum.load(), 4);  // all arrived before any proceeds
      barrier.Arrive();                // reusable
    });
  }
  for (auto& t : ts) {
    t.join();
  }
}

// Context integration: a context-bearing thread releases its simulated CPU
// while blocked in P().
class RecordingCtx final : public ExecutionContext {
 public:
  void WillBlock() override { ++blocks; }
  void DidWake() override { ++wakes; }
  int blocks = 0;
  int wakes = 0;
};

TEST(ExecutionContext, SemaphoreReleasesCpuWhileBlocked) {
  Semaphore sem(0);
  RecordingCtx ctx;
  std::thread t([&] {
    ScopedExecutionContext scope(&ctx);
    ASSERT_TRUE(sem.P().ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  sem.V();
  t.join();
  EXPECT_GE(ctx.blocks, 1);
  EXPECT_EQ(ctx.wakes, 1);
}

TEST(ExecutionContext, CurrentIsThreadLocal) {
  RecordingCtx a;
  SetCurrentExecutionContext(&a);
  EXPECT_EQ(CurrentExecutionContext(), &a);
  std::thread t([] { EXPECT_EQ(CurrentExecutionContext(), nullptr); });
  t.join();
  SetCurrentExecutionContext(nullptr);
}

}  // namespace
}  // namespace sg
