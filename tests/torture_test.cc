// Torture: randomized mixes of every major syscall family running
// concurrently in and around a share group, ending with global invariant
// checks — no leaked frames, no leaked open files, no live share blocks,
// empty process table. The goal is crossing the paths that directed tests
// keep apart (exits racing opens, shootdowns racing faults, signals racing
// group updates).
#include <gtest/gtest.h>

#include <atomic>
#include <random>

#include "api/kernel.h"
#include "api/user_env.h"
#include "sync/lockdep.h"

namespace sg {
namespace {

// One chaotic worker: a random walk over the syscall surface.
void ChaosWorker(Env& env, u32 seed, const vaddr_t arena) {
  std::mt19937 rng(seed);
  std::vector<int> fds;
  std::vector<vaddr_t> maps;
  for (int step = 0; step < 120; ++step) {
    switch (rng() % 12) {
      case 0: {  // open
        char path[32];
        std::snprintf(path, sizeof(path), "/t%u", rng() % 24);
        const int fd = env.Open(path, kOpenRdwr | kOpenCreat);
        if (fd >= 0) {
          fds.push_back(fd);
        }
        break;
      }
      case 1:  // close something of ours
        if (!fds.empty()) {
          env.Close(fds.back());
          fds.pop_back();
        }
        break;
      case 2:  // write/read through a descriptor
        if (!fds.empty()) {
          const int fd = fds[rng() % fds.size()];
          env.WriteStr(fd, "abcdefgh");
          char b[8];
          env.Lseek(fd, 0);
          env.ReadBuf(fd, std::as_writable_bytes(std::span<char>(b, 8)));
        }
        break;
      case 3: {  // map + touch
        if (maps.size() < 4) {
          const vaddr_t a = env.Mmap((1 + rng() % 4) * kPageSize);
          if (a != 0) {
            env.Store32(a, rng());
            maps.push_back(a);
          }
        }
        break;
      }
      case 4:  // unmap
        if (!maps.empty()) {
          env.Munmap(maps.back());
          maps.pop_back();
        }
        break;
      case 5:  // sbrk dance
        if (env.Sbrk(static_cast<i64>(kPageSize)) != 0) {
          env.Store32(env.Sbrk(0) - 8, 1);
          env.Sbrk(-static_cast<i64>(kPageSize));
        }
        break;
      case 6:  // shared-arena traffic
        env.FetchAdd32(arena + 4 * (rng() % 64), 1);
        break;
      case 7:  // attribute churn
        env.Umask(static_cast<mode_t>(rng() & 0777));
        break;
      case 8: {  // short-lived grandchild
        if (rng() % 4 == 0) {
          const pid_t pid = env.Sproc([](Env& c, long) { c.Yield(); }, PR_SADDR);
          if (pid > 0) {
            env.WaitChild();
          }
        }
        break;
      }
      case 9:  // directories
        env.Mkdir("/dir-a");
        env.Chdir(rng() % 2 == 0 ? "/dir-a" : "/");
        break;
      case 10:  // self-signal through a handler
        env.Signal(kSigUsr1, [](int) {});
        env.Kill(env.Pid(), kSigUsr1);
        env.Yield();
        break;
      default:
        env.Yield();
        break;
    }
  }
  for (int fd : fds) {
    env.Close(fd);
  }
  for (vaddr_t a : maps) {
    env.Munmap(a);
  }
}

class Torture : public ::testing::TestWithParam<u32> {};

TEST_P(Torture, ChaoticGroupLeavesNoResidue) {
  const u32 seed = GetParam();
  BootParams bp;
  bp.ncpus = 2 + seed % 3;
  Kernel k(bp);
  const u64 frames0 = k.mem().FreeFrames();
  auto pid = k.Launch([&](Env& env, long) {
    const vaddr_t arena = env.Mmap(kPageSize);
    constexpr int kWorkers = 5;
    std::vector<pid_t> kids;
    for (int w = 0; w < kWorkers; ++w) {
      // Mixed membership: some share everything, some only parts, one is a
      // plain fork child hammering the same files.
      pid_t child;
      if (w % 3 == 0) {
        child = env.Fork(
            [seed, arena](Env& c, long idx) {
              ChaosWorker(c, seed * 100 + static_cast<u32>(idx), arena);
            },
            w);
      } else {
        child = env.Sproc(
            [seed, arena](Env& c, long idx) {
              ChaosWorker(c, seed * 100 + static_cast<u32>(idx), arena);
            },
            w % 2 == 0 ? PR_SALL : (PR_SFDS | PR_SUMASK), w);
      }
      ASSERT_GT(child, 0);
      kids.push_back(child);
    }
    // Kill one mid-flight for extra chaos.
    env.Kill(kids[seed % kids.size()], kSigKill);
    for (int w = 0; w < kWorkers; ++w) {
      ASSERT_GT(env.WaitChild(), 0);
    }
  });
  ASSERT_TRUE(pid.ok());
  k.WaitAll();

  // Invariants: nothing lingers.
  EXPECT_EQ(k.procs().Count(), 0u);
  EXPECT_EQ(k.LiveBlocks(), 0u);
  EXPECT_EQ(k.vfs().files().Count(), 0u);
  EXPECT_EQ(k.mem().FreeFrames(), frames0);
  // Under the lockdep preset the whole chaotic run must also be free of
  // lock-order inversions and sleep-under-spinlock reports.
  EXPECT_EQ(lockdep::Reports(), 0u) << lockdep::RenderReport();
}

INSTANTIATE_TEST_SUITE_P(Seeds, Torture, ::testing::Range(1u, 9u));

TEST(Torture, RepeatedGroupLifecycles) {
  // Build and tear down many groups in sequence; ids, frames and blocks
  // must recycle perfectly.
  Kernel k;
  const u64 frames0 = k.mem().FreeFrames();
  for (int round = 0; round < 20; ++round) {
    auto pid = k.Launch([&](Env& env, long) {
      const vaddr_t a = env.Mmap(kPageSize);
      for (int m = 0; m < 3; ++m) {
        env.Sproc([a](Env& c, long) { c.FetchAdd32(a, 1); }, PR_SALL);
      }
      for (int m = 0; m < 3; ++m) {
        env.WaitChild();
      }
      ASSERT_EQ(env.Load32(a), 3u);
    });
    ASSERT_TRUE(pid.ok());
    k.WaitAll();
    ASSERT_EQ(k.LiveBlocks(), 0u) << "round " << round;
  }
  EXPECT_EQ(k.mem().FreeFrames(), frames0);
  EXPECT_EQ(k.vfs().files().Count(), 0u);
  EXPECT_EQ(lockdep::Reports(), 0u) << lockdep::RenderReport();
}

}  // namespace
}  // namespace sg
