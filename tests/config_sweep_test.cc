// Machine-configuration sweeps (TEST_P): the same canonical workloads must
// produce identical results on every processor count, TLB geometry, group
// size and memory/swap configuration — goal 1 of §6: "the implementation
// must work correctly in both multiprocessor and uniprocessor
// environments."
#include <gtest/gtest.h>

#include <atomic>

#include "api/kernel.h"
#include "api/user_env.h"

namespace sg {
namespace {

void RunAsProcess(Kernel& k, std::function<void(Env&)> body) {
  auto pid = k.Launch([body = std::move(body)](Env& env, long) { body(env); });
  ASSERT_TRUE(pid.ok());
  k.WaitAll();
}

// ---- canonical workload 1: spinlock counter across ncpus × members ----

class CpuByMembers : public ::testing::TestWithParam<std::tuple<u32, int>> {};

TEST_P(CpuByMembers, SpinlockCounterExactOnEveryMachine) {
  const u32 ncpus = std::get<0>(GetParam());
  const int members = std::get<1>(GetParam());
  BootParams bp;
  bp.ncpus = ncpus;
  Kernel k(bp);
  RunAsProcess(k, [&](Env& env) {
    const vaddr_t lock = env.Mmap(kPageSize);
    const vaddr_t ctr = lock + 64;
    constexpr int kRounds = 200;
    for (int m = 0; m < members; ++m) {
      ASSERT_GT(env.Sproc(
                    [lock, ctr](Env& c, long) {
                      for (int n = 0; n < kRounds; ++n) {
                        c.SpinLock(lock);
                        c.Store32(ctr, c.Load32(ctr) + 1);
                        c.SpinUnlock(lock);
                      }
                    },
                    PR_SADDR),
                0);
    }
    for (int m = 0; m < members; ++m) {
      ASSERT_GT(env.WaitChild(), 0);
    }
    EXPECT_EQ(env.Load32(ctr), static_cast<u32>(members) * kRounds);
  });
  EXPECT_EQ(k.mem().FreeFrames(), k.mem().TotalFrames());
}

INSTANTIATE_TEST_SUITE_P(Machines, CpuByMembers,
                         ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u),
                                            ::testing::Values(1, 3, 6)));

// ---- canonical workload 2: pipes + fork fan-in across ncpus ----

class CpuSweep : public ::testing::TestWithParam<u32> {};

TEST_P(CpuSweep, PipeFanInDrainsCompletely) {
  BootParams bp;
  bp.ncpus = GetParam();
  Kernel k(bp);
  std::atomic<int> got{0};
  RunAsProcess(k, [&](Env& env) {
    int rd = -1, wr = -1;
    ASSERT_EQ(env.Pipe(&rd, &wr), 0);
    constexpr int kProducers = 4;
    constexpr int kEach = 50;
    for (int i = 0; i < kProducers; ++i) {
      env.Fork([rd, wr](Env& c, long) {
        c.Close(rd);
        for (int n = 0; n < kEach; ++n) {
          ASSERT_EQ(c.WriteStr(wr, "pkt!"), 4);
        }
      });
    }
    env.Close(wr);
    char b[4];
    while (env.ReadBuf(rd, std::as_writable_bytes(std::span<char>(b, 4))) > 0) {
      got.fetch_add(1);
    }
    for (int i = 0; i < kProducers; ++i) {
      env.WaitChild();
    }
  });
  EXPECT_EQ(got.load(), 200);
}

TEST_P(CpuSweep, AttributePropagationUnderLoad) {
  BootParams bp;
  bp.ncpus = GetParam();
  Kernel k(bp);
  RunAsProcess(k, [&](Env& env) {
    // Members hammer umask while the founder verifies master convergence.
    constexpr int kMembers = 3;
    for (int m = 0; m < kMembers; ++m) {
      env.Sproc(
          [](Env& c, long idx) {
            for (int n = 0; n < 40; ++n) {
              c.Umask(static_cast<mode_t>((idx * 40 + n) & 0777));
              c.UlimitSet(static_cast<u64>(1000 + idx * 40 + n));
            }
          },
          PR_SUMASK | PR_SULIMIT, m);
    }
    for (int m = 0; m < kMembers; ++m) {
      env.WaitChild();
    }
    env.Yield();
    EXPECT_EQ(env.proc().umask, env.proc().shaddr->cmask());
    EXPECT_EQ(env.proc().ulimit, env.proc().shaddr->limit());
  });
}

INSTANTIATE_TEST_SUITE_P(Cpus, CpuSweep, ::testing::Values(1u, 2u, 4u, 8u));

// ---- TLB geometry sweep: tiny TLBs only change speed, never results ----

class TlbSweep : public ::testing::TestWithParam<u32> {};

TEST_P(TlbSweep, WorkloadCorrectAtAnyTlbSize) {
  BootParams bp;
  bp.tlb_entries = GetParam();
  Kernel k(bp);
  RunAsProcess(k, [&](Env& env) {
    // Touch far more pages than TLB entries, with a member doing the same.
    constexpr u64 kPages = 64;
    const vaddr_t a = env.Mmap(kPages * kPageSize);
    env.Sproc(
        [a](Env& c, long) {
          for (u64 i = 0; i < kPages; i += 2) {
            c.Store32(a + i * kPageSize, static_cast<u32>(2000 + i));
          }
        },
        PR_SADDR);
    for (u64 i = 1; i < kPages; i += 2) {
      env.Store32(a + i * kPageSize, static_cast<u32>(2000 + i));
    }
    env.WaitChild();
    for (u64 i = 0; i < kPages; ++i) {
      ASSERT_EQ(env.Load32(a + i * kPageSize), static_cast<u32>(2000 + i)) << i;
    }
    // A tiny TLB must observably miss more than a huge one would.
    if (GetParam() <= 8) {
      EXPECT_GT(env.proc().as.tlb().misses(), kPages);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Geometries, TlbSweep, ::testing::Values(2u, 8u, 64u, 512u));

// ---- memory/swap sweep: the same job under increasing pressure ----

class PressureSweep : public ::testing::TestWithParam<u64> {};

TEST_P(PressureSweep, GroupJobSurvivesAnyMemorySize) {
  BootParams bp;
  bp.phys_mem_bytes = GetParam() * kPageSize;
  bp.swap_pages = 2048;
  Kernel k(bp);
  RunAsProcess(k, [&](Env& env) {
    constexpr u64 kPages = 96;
    const vaddr_t a = env.Mmap(kPages * kPageSize);
    for (int m = 0; m < 2; ++m) {
      env.Sproc(
          [a](Env& c, long idx) {
            for (u64 p = static_cast<u64>(idx); p < kPages; p += 2) {
              c.Store32(a + p * kPageSize, static_cast<u32>(p * 7));
            }
          },
          PR_SADDR, m);
    }
    for (int m = 0; m < 2; ++m) {
      env.WaitChild();
    }
    for (u64 p = 0; p < kPages; ++p) {
      ASSERT_EQ(env.Load32(a + p * kPageSize), static_cast<u32>(p * 7)) << p;
    }
  });
  EXPECT_EQ(k.mem().FreeFrames(), k.mem().TotalFrames());
  EXPECT_EQ(k.swap()->SlotsFree(), 2048u);
}

INSTANTIATE_TEST_SUITE_P(MemorySizes, PressureSweep,
                         ::testing::Values(u64{64}, u64{128}, u64{512}, u64{16384}));

}  // namespace
}  // namespace sg
