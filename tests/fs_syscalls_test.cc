// Kernel-level filesystem syscalls beyond the basics: dup2, close-on-exec
// via fcntl-style flags (with share-group propagation through s_pofile),
// getcwd (plain, group-shared cwd, and inside a chroot jail), stat/chmod
// and hard links through the syscall surface.
#include <gtest/gtest.h>

#include <atomic>

#include "api/kernel.h"
#include "api/user_env.h"

namespace sg {
namespace {

void RunAsProcess(Kernel& k, std::function<void(Env&)> body) {
  auto pid = k.Launch([body = std::move(body)](Env& env, long) { body(env); });
  ASSERT_TRUE(pid.ok());
  k.WaitAll();
}

TEST(FsCalls, Dup2ReplacesAndSharesEntry) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    int a = env.Open("/a", kOpenRdwr | kOpenCreat);
    int b = env.Open("/b", kOpenRdwr | kOpenCreat);
    ASSERT_GE(a, 0);
    ASSERT_GE(b, 0);
    // b's slot now aliases a's open-file entry (shared offset).
    EXPECT_EQ(env.Dup2(a, b), b);
    env.WriteStr(a, "xy");
    EXPECT_EQ(env.WriteStr(b, "z"), 1);  // continues at offset 2
    auto st = env.kernel().Stat(env.proc(), "/a");
    EXPECT_EQ(st.value().size, 3u);
    EXPECT_EQ(env.kernel().Stat(env.proc(), "/b").value().size, 0u);
    // dup2 onto itself is a no-op.
    EXPECT_EQ(env.Dup2(a, a), a);
    // Bad targets rejected.
    EXPECT_LT(env.Dup2(a, FdTable::kMaxFds + 5), 0);
    EXPECT_LT(env.Dup2(99, 5), 0);
  });
}

TEST(FsCalls, Dup2PropagatesAcrossGroup) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    int a = env.Open("/src", kOpenRdwr | kOpenCreat);
    env.WriteStr(a, "payload");
    std::atomic<int> alias{-1};
    env.Sproc(
        [&, a](Env& c, long) {
          int spare = c.Open("/spare", kOpenRead | kOpenCreat);
          ASSERT_GE(spare, 0);
          ASSERT_EQ(c.Dup2(a, spare), spare);  // publishes the new table
          alias = spare;
        },
        PR_SFDS);
    env.WaitChild();
    ASSERT_GE(alias.load(), 0);
    // Our table resynced: the alias works here and shares the offset.
    EXPECT_EQ(env.Lseek(alias.load(), 0), 0);
    char buf[8] = {};
    EXPECT_EQ(env.ReadBuf(alias.load(), std::as_writable_bytes(std::span<char>(buf, 7))), 7);
    EXPECT_EQ(std::string_view(buf, 7), "payload");
  });
}

TEST(FsCalls, CloexecFlagSurvivesGroupSyncAndExec) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    int keep = env.Open("/keep", kOpenWrite | kOpenCreat);
    int drop = env.Open("/drop", kOpenWrite | kOpenCreat);
    // A member sets the flag; it propagates through s_pofile.
    env.Sproc([drop](Env& c, long) { ASSERT_EQ(c.SetCloexec(drop, true), 0); }, PR_SFDS);
    env.WaitChild();
    env.Yield();  // resync
    EXPECT_TRUE(env.kernel().GetCloexec(env.proc(), drop).value());
    EXPECT_FALSE(env.kernel().GetCloexec(env.proc(), keep).value());
    // Exec in a fork child honors the propagated flag.
    env.Fork([keep, drop](Env& c, long) {
      Image img;
      img.main = [keep, drop](Env& e2, long) {
        EXPECT_EQ(e2.WriteStr(keep, "k"), 1);
        EXPECT_LT(e2.WriteStr(drop, "d"), 0);
        EXPECT_EQ(e2.LastError(), Errno::kEBADF);
      };
      c.Exec(img);
    });
    env.WaitChild();
    EXPECT_LT(env.SetCloexec(42, true), 0);
    EXPECT_EQ(env.LastError(), Errno::kEBADF);
  });
}

TEST(FsCalls, GetcwdWalksToRoot) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    EXPECT_EQ(env.Getcwd(), "/");
    env.Mkdir("/x");
    env.Mkdir("/x/y");
    env.Mkdir("/x/y/z");
    ASSERT_EQ(env.Chdir("/x/y/z"), 0);
    EXPECT_EQ(env.Getcwd(), "/x/y/z");
    ASSERT_EQ(env.Chdir(".."), 0);
    EXPECT_EQ(env.Getcwd(), "/x/y");
  });
}

TEST(FsCalls, GetcwdInsideChrootJail) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    env.Mkdir("/jail");
    env.Mkdir("/jail/home");
    ASSERT_EQ(env.Chroot("/jail"), 0);
    ASSERT_EQ(env.Chdir("/"), 0);
    EXPECT_EQ(env.Getcwd(), "/");  // the jail's root, not the real one
    ASSERT_EQ(env.Chdir("/home"), 0);
    EXPECT_EQ(env.Getcwd(), "/home");
  });
}

TEST(FsCalls, GetcwdReflectsGroupChdir) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    env.Mkdir("/team");
    env.Sproc([](Env& c, long) { ASSERT_EQ(c.Chdir("/team"), 0); }, PR_SDIR);
    env.WaitChild();
    EXPECT_EQ(env.Getcwd(), "/team");  // the member moved all of us
  });
}

TEST(FsCalls, StatChmodLinkRoundTrip) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    int fd = env.Open("/f", kOpenWrite | kOpenCreat, 0644);
    env.WriteStr(fd, "12345");
    auto st = env.kernel().Stat(env.proc(), "/f");
    ASSERT_TRUE(st.ok());
    EXPECT_EQ(st.value().size, 5u);
    EXPECT_EQ(st.value().mode, 0644);
    EXPECT_EQ(st.value().nlink, 1u);
    EXPECT_EQ(st.value().type, InodeType::kRegular);

    ASSERT_TRUE(env.kernel().Chmod(env.proc(), "/f", 0600).ok());
    EXPECT_EQ(env.kernel().Stat(env.proc(), "/f").value().mode, 0600);

    ASSERT_TRUE(env.kernel().Link(env.proc(), "/f", "/f2").ok());
    auto st2 = env.kernel().Stat(env.proc(), "/f2");
    EXPECT_EQ(st2.value().ino, st.value().ino);  // same inode
    EXPECT_EQ(st2.value().nlink, 2u);

    auto fst = env.kernel().Fstat(env.proc(), fd);
    EXPECT_EQ(fst.value().ino, st.value().ino);

    // Only the owner (or root) may chmod: drop privileges and retry.
    ASSERT_EQ(env.Setuid(9), 0);
    EXPECT_EQ(env.kernel().Chmod(env.proc(), "/f", 0777).error(), Errno::kEPERM);
  });
}

TEST(FsCalls, ListDirEnumeratesSorted) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    env.Mkdir("/d");
    env.Open("/d/charlie", kOpenWrite | kOpenCreat);
    env.Open("/d/alpha", kOpenWrite | kOpenCreat);
    env.Mkdir("/d/bravo");
    auto names = env.ListDir("/d");
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "alpha");
    EXPECT_EQ(names[1], "bravo");
    EXPECT_EQ(names[2], "charlie");
    EXPECT_TRUE(env.ListDir("/d/alpha").empty());
    EXPECT_EQ(env.LastError(), Errno::kENOTDIR);
    // Read permission enforced.
    ASSERT_TRUE(env.kernel().Chmod(env.proc(), "/d", 0111).ok());
    ASSERT_EQ(env.Setuid(5), 0);
    EXPECT_TRUE(env.ListDir("/d").empty());
    EXPECT_EQ(env.LastError(), Errno::kEACCES);
  });
}

TEST(FsCalls, UnlinkedCwdReportsDisconnected) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    env.Mkdir("/tmpdir");
    ASSERT_EQ(env.Chdir("/tmpdir"), 0);
    // Remove the directory out from under ourselves (allowed: the cwd ref
    // keeps the inode alive, the name is gone).
    ASSERT_EQ(env.kernel().Rmdir(env.proc(), "/tmpdir").ok(), true);
    EXPECT_EQ(env.Getcwd(), "");
    EXPECT_EQ(env.LastError(), Errno::kENOENT);
    // We can still escape upward.
    ASSERT_EQ(env.Chdir("/"), 0);
    EXPECT_EQ(env.Getcwd(), "/");
  });
}

// Regression: a sibling snapshotting the shared master table (the
// /proc/share/<gid> path goes through ShaddrBlock::OfileCount) while a
// PR_SFDS member grows it under s_fupdsema. PublishFds used to rebuild
// the master vector in place — a concurrent reader could observe the
// vector mid-realloc (use-after-free of the old backing store). Today the
// snapshot reads the incrementally maintained atomic count and never walks
// the vector at all; the race this pins down is the counter staying
// coherent (and the process not crashing) under concurrent publishes.
TEST(FsCalls, OfileSnapshotRacesGrowingMasterTable) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    std::atomic<bool> done{false};
    env.Sproc(
        [&](Env& c, long) {
          // Grow and shrink the master table hard enough to force the
          // backing vector through several reallocations.
          for (int round = 0; round < 40; ++round) {
            int fds[8];
            for (int i = 0; i < 8; ++i) {
              fds[i] = c.Open("/grow" + std::to_string(i), kOpenRdwr | kOpenCreat);
            }
            for (int i = 0; i < 8; ++i) {
              if (fds[i] >= 0) {
                c.Close(fds[i]);
              }
            }
          }
          done = true;
        },
        PR_SFDS);
    ShaddrBlock* b = env.kernel().BlockOf(env.proc());
    ASSERT_NE(b, nullptr);
    while (!done.load()) {
      // The old code read the master vector unsynchronized here.
      (void)b->OfileCount();
      env.Yield();
    }
    env.WaitChild();
  });
  EXPECT_EQ(k.LiveBlocks(), 0u);
  EXPECT_EQ(k.vfs().files().Count(), 0u);
}

}  // namespace
}  // namespace sg
