// Process model: fork semantics, wait/exit/reparenting, exec overlay, and
// the u-area inheritance rules.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>

#include "api/kernel.h"
#include "api/user_env.h"
#include "vm/access.h"

namespace sg {
namespace {

void RunAsProcess(Kernel& k, std::function<void(Env&)> body) {
  auto pid = k.Launch([body = std::move(body)](Env& env, long) { body(env); });
  ASSERT_TRUE(pid.ok());
  k.WaitAll();
}

TEST(Proc, ForkInheritsFdsAndSharesOffset) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    int fd = env.Open("/f", kOpenRdwr | kOpenCreat);
    ASSERT_GE(fd, 0);
    env.WriteStr(fd, "abcdef");
    env.Lseek(fd, 0);
    env.Fork([fd](Env& c, long) {
      char b[3] = {};
      c.ReadBuf(fd, std::as_writable_bytes(std::span<char>(b, 3)));
      EXPECT_EQ(std::string_view(b, 3), "abc");
    });
    env.WaitChild();
    char b[3] = {};
    env.ReadBuf(fd, std::as_writable_bytes(std::span<char>(b, 3)));
    EXPECT_EQ(std::string_view(b, 3), "def");  // dup'd entry: shared offset
  });
}

TEST(Proc, ForkChildFdChangesAreLocal) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    int fd = env.Open("/g", kOpenWrite | kOpenCreat);
    env.Fork([fd](Env& c, long) {
      EXPECT_EQ(c.Close(fd), 0);
      EXPECT_GE(c.Open("/h", kOpenWrite | kOpenCreat), 0);  // reuses the slot
    });
    env.WaitChild();
    // No propagation outside a share group: the fd still works here.
    EXPECT_EQ(env.WriteStr(fd, "x"), 1);
  });
}

TEST(Proc, WaitReturnsStatusAndReapsZombie) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    pid_t pid = env.Fork([](Env& c, long) { c.Exit(7); });
    ASSERT_GT(pid, 0);
    int status = -1;
    EXPECT_EQ(env.WaitChild(&status), pid);
    EXPECT_EQ(status, 7);
    EXPECT_EQ(env.WaitChild(), -1);  // no more children
    EXPECT_EQ(env.LastError(), Errno::kECHILD);
  });
  EXPECT_EQ(k.procs().Count(), 0u);
}

TEST(Proc, WaitBlocksUntilChildExits) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    std::atomic<bool> release{false};
    pid_t pid = env.Fork([&](Env& c, long) {
      while (!release.load()) {
        c.Yield();
      }
      c.Exit(3);
    });
    std::atomic<bool>* r = &release;
    // Flip the gate from a second child so the parent can block in wait.
    env.Fork([r](Env& c, long) {
      c.Yield();
      r->store(true);
    });
    int status = 0;
    pid_t got = env.WaitChild(&status);
    pid_t got2 = env.WaitChild(&status);
    EXPECT_TRUE(got == pid || got2 == pid);
  });
}

TEST(Proc, OrphansReparentToKernelAndGetReaped) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    env.Fork([](Env& c, long) {
      // Grandchild outlives its parent.
      c.Fork([](Env& g, long) {
        for (int i = 0; i < 50; ++i) {
          g.Yield();
        }
      });
      c.Exit(0);  // orphans the grandchild
    });
    env.WaitChild();
  });
  // WaitAll (inside RunAsProcess) must have reaped the orphan too.
  EXPECT_EQ(k.procs().Count(), 0u);
}

TEST(Proc, GetpidGetppid) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    const pid_t me = env.Pid();
    std::atomic<pid_t> childs_ppid{0};
    std::atomic<pid_t> child_pid{0};
    pid_t pid = env.Fork([&](Env& c, long) {
      childs_ppid = c.Ppid();
      child_pid = c.Pid();
    });
    env.WaitChild();
    EXPECT_EQ(childs_ppid.load(), me);
    EXPECT_EQ(child_pid.load(), pid);
    EXPECT_NE(child_pid.load(), me);
  });
}

TEST(Proc, ExecReplacesImageAndKeepsFds) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    int keep = env.Open("/keep", kOpenWrite | kOpenCreat);
    ASSERT_GE(keep, 0);
    vaddr_t old_map = env.Mmap(kPageSize);
    env.Store32(old_map, 77);
    std::atomic<bool> checked{false};
    pid_t pid = env.Fork([&](Env& c, long) {
      Image img;
      img.main = [&](Env& e2, long arg) {
        EXPECT_EQ(arg, 55);
        // Descriptors survive exec (no close-on-exec here).
        EXPECT_EQ(e2.WriteStr(keep, "alive"), 5);
        // The old image is gone: the mapping no longer exists.
        EXPECT_EQ(sg::Load<u32>(e2.proc().as, old_map).error(), Errno::kEFAULT);
        checked = true;
      };
      c.Exec(img, 55);
      ADD_FAILURE() << "exec returned";
    });
    ASSERT_GT(pid, 0);
    env.WaitChild();
    EXPECT_TRUE(checked.load());
  });
}

TEST(Proc, ExecLoadsTextAndDataContents) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    Image img;
    img.name = "payload";
    const char code[] = "\x90\x90\xc3";  // "machine code"
    img.text.assign(reinterpret_cast<const std::byte*>(code),
                    reinterpret_cast<const std::byte*>(code) + 3);
    std::vector<u32> init = {11, 22, 33};
    img.data.resize(init.size() * 4);
    std::memcpy(img.data.data(), init.data(), img.data.size());
    std::atomic<bool> verified{false};
    img.main = [&](Env& e2, long) {
      // Initialized data is loaded at the data base...
      EXPECT_EQ(e2.Load32(kDataBase), 11u);
      EXPECT_EQ(e2.Load32(kDataBase + 4), 22u);
      EXPECT_EQ(e2.Load32(kDataBase + 8), 33u);
      // ...bss beyond it reads zero...
      EXPECT_EQ(e2.Load32(kDataBase + 12), 0u);
      // ...text is loaded read/execute: readable, not writable.
      EXPECT_EQ(e2.Load<u8>(kTextBase), 0x90);
      EXPECT_EQ(e2.Load<u8>(kTextBase + 2), 0xc3);
      EXPECT_EQ(sg::Store<u8>(e2.proc().as, kTextBase, 0).error(), Errno::kEFAULT);
      verified = true;
    };
    pid_t pid = env.Fork([&img](Env& c, long) { c.Exec(img); });
    ASSERT_GT(pid, 0);
    env.WaitChild();
    EXPECT_TRUE(verified.load());
  });
}

TEST(Proc, ExecClosesCloseOnExecFds) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    pid_t pid = env.Fork([](Env& c, long) {
      int fd1 = c.Open("/coe", kOpenWrite | kOpenCreat);
      int fd2 = c.Open("/plain", kOpenWrite | kOpenCreat);
      ASSERT_GE(fd1, 0);
      ASSERT_GE(fd2, 0);
      c.proc().fds.Slot(fd1).close_on_exec = true;
      Image img;
      img.main = [fd1, fd2](Env& e2, long) {
        EXPECT_LT(e2.WriteStr(fd1, "x"), 0);  // closed by exec
        EXPECT_EQ(e2.LastError(), Errno::kEBADF);
        EXPECT_EQ(e2.WriteStr(fd2, "y"), 1);  // survived
      };
      c.Exec(img);
    });
    ASSERT_GT(pid, 0);
    env.WaitChild();
  });
}

TEST(Proc, ProcTableExhaustion) {
  BootParams bp;
  bp.max_procs = 4;
  Kernel k(bp);
  RunAsProcess(k, [&](Env& env) {
    std::atomic<int> spawned{0};
    std::atomic<bool> hold{true};
    for (int i = 0; i < 8; ++i) {
      pid_t pid = env.Fork([&](Env& c, long) {
        while (hold.load()) {
          c.Yield();
        }
      });
      if (pid > 0) {
        ++spawned;
      } else {
        EXPECT_EQ(env.LastError(), Errno::kEAGAIN);
      }
    }
    EXPECT_EQ(spawned.load(), 3);  // 4 slots minus ourselves
    hold = false;
    while (env.WaitChild() > 0) {
    }
  });
}

TEST(Proc, UlimitAndUmaskInheritedByFork) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    env.Umask(031);
    env.UlimitSet(12345);
    std::atomic<u64> child_limit{0};
    std::atomic<mode_t> child_umask{0};
    env.Fork([&](Env& c, long) {
      child_limit = static_cast<u64>(c.UlimitGet());
      child_umask = c.Umask(0);
    });
    env.WaitChild();
    EXPECT_EQ(child_limit.load(), 12345u);
    EXPECT_EQ(child_umask.load(), 031);
    // The child's umask(0) did NOT propagate back (no share group).
    EXPECT_EQ(env.Umask(022), 031);
  });
}

TEST(Proc, SetuidPermissionModel) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    EXPECT_EQ(env.Setuid(42), 0);   // root may switch
    EXPECT_EQ(env.Getuid(), 42);
    EXPECT_EQ(env.Setuid(42), 0);   // no-op allowed
    EXPECT_LT(env.Setuid(43), 0);   // non-root cannot change
    EXPECT_EQ(env.LastError(), Errno::kEPERM);
  });
}

}  // namespace
}  // namespace sg
