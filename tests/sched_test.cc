// Scheduler: the simulated-CPU gate really bounds parallelism, priorities
// order slot grants, blocking releases slots, and PR_MAXPPROCS reports the
// machine width.
#include <gtest/gtest.h>

#include <atomic>

#include "api/kernel.h"
#include "api/user_env.h"
#include "proc/scheduler.h"

namespace sg {
namespace {

TEST(Scheduler, BoundsConcurrency) {
  Scheduler sched(2);
  std::atomic<int> inside{0};
  std::atomic<int> max_inside{0};
  std::atomic<bool> violated{false};
  std::vector<std::thread> ts;
  for (int i = 0; i < 6; ++i) {
    ts.emplace_back([&] {
      for (int n = 0; n < 500; ++n) {
        const u32 cpu = sched.AcquireCpu(0);
        const int now = inside.fetch_add(1) + 1;
        if (now > 2) {
          violated = true;
        }
        int prev = max_inside.load();
        while (now > prev && !max_inside.compare_exchange_weak(prev, now)) {
        }
        // Dwell so holders overlap; the bound (never >2) is the real check.
        for (int d = 0; d < 500; ++d) {
          CpuRelax();
        }
        inside.fetch_sub(1);
        sched.ReleaseCpu(cpu);
      }
    });
  }
  for (auto& t : ts) {
    t.join();
  }
  EXPECT_FALSE(violated.load());
  EXPECT_GE(max_inside.load(), 1);
  EXPECT_LE(max_inside.load(), 2);
}

TEST(Scheduler, HigherPriorityWinsTheSlot) {
  Scheduler sched(1);
  const u32 held = sched.AcquireCpu(0);  // hold the only CPU
  std::atomic<int> order{0};
  std::atomic<int> low_rank{0};
  std::atomic<int> high_rank{0};
  std::thread low([&] {
    const u32 c = sched.AcquireCpu(1);
    low_rank = order.fetch_add(1) + 1;
    sched.ReleaseCpu(c);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));  // low queues first
  std::thread high([&] {
    const u32 c = sched.AcquireCpu(10);
    high_rank = order.fetch_add(1) + 1;
    sched.ReleaseCpu(c);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  sched.ReleaseCpu(held);
  low.join();
  high.join();
  EXPECT_LT(high_rank.load(), low_rank.load());  // high went first despite queuing later
}

TEST(Scheduler, YieldIsNoopWithoutWaiters) {
  Scheduler sched(2);
  u32 cpu = sched.AcquireCpu(0);
  const u64 switches = sched.ContextSwitches();
  cpu = sched.Yield(0, cpu);
  EXPECT_EQ(sched.ContextSwitches(), switches);
  sched.ReleaseCpu(cpu);
}

TEST(Scheduler, SingleCpuKernelMakesProgress) {
  // The acid test of the WillBlock/DidWake contract: on ONE simulated CPU,
  // sleeping syscalls must release the slot or everything deadlocks.
  BootParams bp;
  bp.ncpus = 1;
  Kernel k(bp);
  std::atomic<int> sum{0};
  auto pid = k.Launch([&](Env& env, long) {
    int rd = -1, wr = -1;
    ASSERT_EQ(env.Pipe(&rd, &wr), 0);
    for (int i = 0; i < 3; ++i) {
      env.Fork(
          [&, rd, wr](Env& c, long) {
            c.Close(wr);  // or EOF never arrives: we would hold a write end
            char b[4];
            while (c.ReadBuf(rd, std::as_writable_bytes(std::span<char>(b, 4))) > 0) {
              sum.fetch_add(1);
            }
          });
    }
    for (int i = 0; i < 12; ++i) {
      ASSERT_EQ(env.WriteStr(wr, "mesg"), 4);
    }
    env.Close(wr);
    for (int i = 0; i < 3; ++i) {
      env.WaitChild();
    }
  });
  ASSERT_TRUE(pid.ok());
  k.WaitAll();
  EXPECT_EQ(sum.load(), 12);
}

TEST(Scheduler, PrctlReportsParallelism) {
  BootParams bp;
  bp.ncpus = 3;
  Kernel k(bp);
  std::atomic<i64> reported{0};
  (void)k.Launch([&](Env& env, long) { reported = env.Prctl(PR_MAXPPROCS); });
  k.WaitAll();
  EXPECT_EQ(reported.load(), 3);
}

TEST(Scheduler, ShareGroupSpinsOnFewerCpusStillFinish) {
  // Busy-wait sync with more members than CPUs: the yield fallback in the
  // user spinlock must let holders run.
  BootParams bp;
  bp.ncpus = 2;
  Kernel k(bp);
  std::atomic<u32> final_val{0};
  (void)k.Launch([&](Env& env, long) {
    vaddr_t lock = env.Mmap(kPageSize);
    vaddr_t ctr = lock + 64;
    constexpr int kMembers = 6;
    for (int i = 0; i < kMembers; ++i) {
      env.Sproc(
          [lock, ctr](Env& c, long) {
            for (int n = 0; n < 100; ++n) {
              c.SpinLock(lock);
              c.Store32(ctr, c.Load32(ctr) + 1);
              c.SpinUnlock(lock);
            }
          },
          PR_SADDR);
    }
    for (int i = 0; i < kMembers; ++i) {
      env.WaitChild();
    }
    final_val = env.Load32(ctr);
  });
  k.WaitAll();
  EXPECT_EQ(final_val.load(), 600u);
}

}  // namespace
}  // namespace sg
