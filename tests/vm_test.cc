// Unit tests for vm/: regions (demand zero, COW, grow/shrink), the VA
// allocator, address-space scan order, the fault path, and accesses.
#include <gtest/gtest.h>

#include <cstring>

#include "obs/stats.h"
#include "vm/access.h"
#include "vm/address_space.h"
#include "vm/layout.h"
#include "vm/region.h"
#include "vm/shared_space.h"
#include "vm/va_allocator.h"
#include "vm/vm_ops.h"

namespace sg {
namespace {

TEST(Region, DemandZeroResolve) {
  PhysMem mem(8 * kPageSize);
  auto r = Region::Alloc(mem, RegionType::kData, 4);
  EXPECT_EQ(r->pages(), 4u);
  EXPECT_EQ(r->ResidentPages(), 0u);
  auto res = r->Resolve(2, /*want_write=*/false);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res.value().writable);  // plain page: full access
  EXPECT_EQ(r->ResidentPages(), 1u);
  EXPECT_EQ(r->Resolve(9, false).error(), Errno::kEFAULT);
}

TEST(Region, CowDupSharesThenSplits) {
  PhysMem mem(8 * kPageSize);
  auto a = Region::Alloc(mem, RegionType::kData, 2);
  const std::byte payload[] = {std::byte{1}, std::byte{2}, std::byte{3}};
  ASSERT_TRUE(a->FillFrom(0, payload).ok());
  auto b = a->DupCow();
  // Shared frame: one resident frame serves both; reads agree.
  std::byte out[3];
  ASSERT_TRUE(b->ReadBack(0, out).ok());
  EXPECT_EQ(0, std::memcmp(out, payload, 3));
  const u64 free_before = mem.FreeFrames();
  // Read resolve keeps sharing (maps read-only).
  auto read_res = b->Resolve(0, false);
  ASSERT_TRUE(read_res.ok());
  EXPECT_FALSE(read_res.value().writable);
  EXPECT_EQ(mem.FreeFrames(), free_before);
  // Write resolve breaks COW: new frame, contents preserved.
  auto write_res = b->Resolve(0, true);
  ASSERT_TRUE(write_res.ok());
  EXPECT_TRUE(write_res.value().writable);
  EXPECT_TRUE(write_res.value().frame_changed);
  EXPECT_EQ(mem.FreeFrames(), free_before - 1);
  ASSERT_TRUE(b->ReadBack(0, out).ok());
  EXPECT_EQ(0, std::memcmp(out, payload, 3));
  // The source side regains write access without copying (sole owner now).
  auto src_res = a->Resolve(0, true);
  ASSERT_TRUE(src_res.ok());
  EXPECT_FALSE(src_res.value().frame_changed);
}

TEST(Region, GrowAndShrinkFreeFrames) {
  PhysMem mem(8 * kPageSize);
  auto r = Region::Alloc(mem, RegionType::kData, 1);
  ASSERT_TRUE(r->GrowTo(4).ok());
  EXPECT_EQ(r->pages(), 4u);
  for (u64 i = 0; i < 4; ++i) {
    ASSERT_TRUE(r->Resolve(i, true).ok());
  }
  const u64 free_before = mem.FreeFrames();
  ASSERT_TRUE(r->ShrinkTo(1).ok());
  EXPECT_EQ(mem.FreeFrames(), free_before + 3);
  EXPECT_EQ(r->GrowTo(0).error(), Errno::kEINVAL);
  EXPECT_EQ(r->ShrinkTo(5).error(), Errno::kEINVAL);
}

TEST(Region, FillAndReadBackAcrossPages) {
  PhysMem mem(8 * kPageSize);
  auto r = Region::Alloc(mem, RegionType::kData, 3);
  std::vector<std::byte> data(2 * kPageSize + 100);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i * 31);
  }
  ASSERT_TRUE(r->FillFrom(kPageSize / 2, data).ok());
  std::vector<std::byte> out(data.size());
  ASSERT_TRUE(r->ReadBack(kPageSize / 2, out).ok());
  EXPECT_EQ(data, out);
  EXPECT_FALSE(r->FillFrom(2 * kPageSize, data).ok());  // overruns the region
}

TEST(VaAllocator, UpDownAndReserve) {
  VaAllocator va(kArenaBase, kArenaEnd, kStackTop);
  auto a = va.AllocUp(2);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.value(), kArenaBase);
  auto b = va.AllocUp(1);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b.value(), kArenaBase + 2 * kPageSize);
  va.Free(a.value());
  auto c = va.AllocUp(1);  // first fit reuses the hole
  EXPECT_EQ(c.value(), kArenaBase);
  auto d = va.AllocUp(2);  // does not fit in the 1-page remainder of the hole
  EXPECT_EQ(d.value(), kArenaBase + 3 * kPageSize);

  auto s1 = va.AllocDown(4);
  ASSERT_TRUE(s1.ok());
  EXPECT_EQ(s1.value(), kStackTop - 4 * kPageSize);
  auto s2 = va.AllocDown(4);
  EXPECT_EQ(s2.value(), kStackTop - 8 * kPageSize);
  va.Free(s1.value());
  auto s3 = va.AllocDown(2);  // reuses the top gap
  EXPECT_EQ(s3.value(), kStackTop - 2 * kPageSize);

  EXPECT_TRUE(va.Reserve(kArenaBase + 16 * kPageSize, 4).ok());
  EXPECT_FALSE(va.Reserve(kArenaBase + 17 * kPageSize, 1).ok());  // overlap
  EXPECT_FALSE(va.Reserve(kArenaBase + 1, 1).ok());               // unaligned
}

TEST(VaAllocator, ExhaustionReturnsEnomem) {
  VaAllocator va(kArenaBase, kArenaBase + 4 * kPageSize, kArenaBase + 8 * kPageSize);
  EXPECT_TRUE(va.AllocUp(4).ok());
  EXPECT_EQ(va.AllocUp(1).error(), Errno::kENOMEM);
  EXPECT_TRUE(va.AllocDown(4).ok());
  EXPECT_EQ(va.AllocDown(1).error(), Errno::kENOMEM);
}

// Builds a bare AddressSpace with a data pregion for fault-path tests.
struct Fixture {
  PhysMem mem{64 * kPageSize};
  CpuSet cpus{2};
  AddressSpace as{mem};

  Fixture() {
    auto data = Region::Alloc(mem, RegionType::kData, 4);
    as.AttachPrivate(std::make_unique<Pregion>(std::move(data), kDataBase, kProtRw));
  }
};

TEST(Fault, LoadStoreRoundTrip) {
  Fixture f;
  ASSERT_TRUE(Store<u32>(f.as, kDataBase + 8, 0xdeadbeef).ok());
  auto v = Load<u32>(f.as, kDataBase + 8);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 0xdeadbeefu);
  EXPECT_GE(f.as.faults.load(), 1u);
}

TEST(Fault, UnmappedAddressFaults) {
  Fixture f;
  EXPECT_EQ(Load<u32>(f.as, 0x50).error(), Errno::kEFAULT);
  EXPECT_EQ(Store<u32>(f.as, kDataBase + 4 * kPageSize, 1).error(), Errno::kEFAULT);
}

TEST(Fault, ProtectionEnforced) {
  Fixture f;
  auto ro = Region::Alloc(f.mem, RegionType::kText, 1);
  f.as.AttachPrivate(std::make_unique<Pregion>(std::move(ro), kTextBase, kProtRx));
  EXPECT_TRUE(Load<u32>(f.as, kTextBase).ok());
  EXPECT_EQ(Store<u32>(f.as, kTextBase, 1).error(), Errno::kEFAULT);
}

TEST(Fault, MisalignedScalarRejected) {
  Fixture f;
  EXPECT_EQ(Load<u32>(f.as, kDataBase + 2).error(), Errno::kEFAULT);
}

TEST(Fault, AtomicErrorPathsDistinguished) {
  // The word atomics separate the two failure modes: a misaligned va is a
  // contract violation (kEINVAL), while kEFAULT is reserved for addresses
  // that are unmapped or forbidden — same split on the write-side ops.
  Fixture f;
  EXPECT_EQ(AtomicLoad32(f.as, kDataBase + 2).error(), Errno::kEINVAL);
  EXPECT_EQ(AtomicStore32(f.as, kDataBase + 2, 1).error(), Errno::kEINVAL);
  EXPECT_EQ(AtomicFetchAdd32(f.as, kDataBase + 6, 1).error(), Errno::kEINVAL);
  const vaddr_t unmapped = kDataBase + 64 * kPageSize;
  EXPECT_EQ(AtomicLoad32(f.as, unmapped).error(), Errno::kEFAULT);
  EXPECT_EQ(AtomicStore32(f.as, unmapped, 1).error(), Errno::kEFAULT);
  EXPECT_EQ(AtomicCas32(f.as, unmapped, 0, 1).error(), Errno::kEFAULT);
}

TEST(Fault, CopyInOutAcrossPages) {
  Fixture f;
  std::vector<std::byte> in(3 * kPageSize / 2);
  for (size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<std::byte>(i);
  }
  ASSERT_TRUE(CopyOut(f.as, kDataBase + 100, in.data(), in.size()).ok());
  std::vector<std::byte> out(in.size());
  ASSERT_TRUE(CopyIn(f.as, out.data(), kDataBase + 100, out.size()).ok());
  EXPECT_EQ(in, out);
  EXPECT_TRUE(FillUser(f.as, kDataBase, 0x5a, 64).ok());
  auto b = Load<u8>(f.as, kDataBase + 63);
  EXPECT_EQ(b.value(), 0x5au);
}

TEST(Fault, PrivateShadowsShared) {
  // Private pregions are scanned FIRST (§6.2) — a private page at the same
  // address wins over the shared list's mapping.
  PhysMem mem(16 * kPageSize);
  CpuSet cpus(1);
  SharedSpace ss(cpus);
  AddressSpace as(mem);
  as.set_shared(&ss);
  {
    UpdateGuard g(ss.lock());
    ss.AddMemberTlb(&as.tlb());
    auto shared = Region::Alloc(mem, RegionType::kData, 1);
    const std::byte v[] = {std::byte{0xaa}};
    ASSERT_TRUE(shared->FillFrom(0, v).ok());
    ss.AttachPregion(std::make_unique<Pregion>(std::move(shared), kDataBase, kProtRw));
  }
  EXPECT_EQ(Load<u8>(as, kDataBase).value(), 0xaau);
  // Attach a private region shadowing the same address.
  as.tlb().FlushAll();
  auto priv = Region::Alloc(mem, RegionType::kPrda, 1);
  const std::byte v2[] = {std::byte{0xbb}};
  ASSERT_TRUE(priv->FillFrom(0, v2).ok());
  as.AttachPrivate(std::make_unique<Pregion>(std::move(priv), kDataBase, kProtRw));
  EXPECT_EQ(Load<u8>(as, kDataBase).value(), 0xbbu);
}

TEST(Lookup, HintCacheShortCircuitsRepeatLookups) {
  // Fault clustering: after one list walk, repeat lookups in the same
  // pregion are answered by the last-hit hint (vm.lookup_hint_hits moves,
  // vm.lookup_walks does not).
  Fixture f;
  obs::Stats& stats = obs::Stats::Global();
  ASSERT_NE(f.as.FindPregionFast(kDataBase, nullptr), nullptr);  // primes the hint
  const u64 hits0 = stats.CounterValue("vm.lookup_hint_hits");
  const u64 walks0 = stats.CounterValue("vm.lookup_walks");
  bool shared = true;
  Pregion* pr = f.as.FindPregionFast(kDataBase + 8, &shared);
  ASSERT_NE(pr, nullptr);
  EXPECT_FALSE(shared);
  EXPECT_EQ(f.as.FindPregionFast(kDataBase + kPageSize, nullptr), pr);
  EXPECT_EQ(stats.CounterValue("vm.lookup_hint_hits"), hits0 + 2);
  EXPECT_EQ(stats.CounterValue("vm.lookup_walks"), walks0);
}

TEST(Lookup, SharedHintInvalidatedByImageUpdate) {
  // The shared-side hint is a raw pointer into the group's pregion list; a
  // VM-image update may erase (destroy) the pregion it points to. The
  // SharedSpace generation — bumped by every update acquisition — must
  // reject the stale hint before it is dereferenced.
  PhysMem mem(16 * kPageSize);
  CpuSet cpus(1);
  SharedSpace ss(cpus);
  AddressSpace as(mem);
  as.set_shared(&ss);
  {
    UpdateGuard g(ss.lock());
    ss.AddMemberTlb(&as.tlb());
    ss.AttachPregion(std::make_unique<Pregion>(
        Region::Alloc(mem, RegionType::kAnon, 1), kArenaBase, kProtRw));
  }
  Pregion* first;
  {
    ReadGuard g(ss.lock());
    bool shared = false;
    first = as.FindPregionFast(kArenaBase, &shared);
    ASSERT_NE(first, nullptr);
    EXPECT_TRUE(shared);
    // Hint primed: the repeat lookup returns the same pregion.
    EXPECT_EQ(as.FindPregionFast(kArenaBase, nullptr), first);
  }
  // Update: destroy that pregion and attach a different one at the same
  // address. The generation moved, so the stale hint must not be returned.
  {
    UpdateGuard g(ss.lock());
    auto old_pr = ss.DetachPregion(kArenaBase);
    ASSERT_NE(old_pr, nullptr);
    old_pr.reset();  // destroy it: a stale hint would now dangle
    ss.AttachPregion(std::make_unique<Pregion>(
        Region::Alloc(mem, RegionType::kAnon, 2), kArenaBase, kProtRw));
  }
  {
    ReadGuard g(ss.lock());
    Pregion* second = as.FindPregionFast(kArenaBase, nullptr);
    ASSERT_NE(second, nullptr);
    EXPECT_EQ(second->region->pages(), 2u);  // the NEW pregion, re-walked
  }
}

TEST(Lookup, PrivateHintDroppedOnDetach) {
  Fixture f;
  auto a = MapAnon(f.as, kPageSize);
  ASSERT_TRUE(a.ok());
  Pregion* pr = f.as.FindPregionFast(a.value(), nullptr);
  ASSERT_NE(pr, nullptr);
  EXPECT_EQ(f.as.FindPregionFast(a.value(), nullptr), pr);  // hint primed
  ASSERT_TRUE(Unmap(f.as, a.value()).ok());                 // erases the pregion
  EXPECT_EQ(f.as.FindPregionFast(a.value(), nullptr), nullptr);
}

TEST(VmOps, SbrkGrowShrinkRoundTrip) {
  Fixture f;
  auto brk0 = CurrentBrk(f.as);
  ASSERT_TRUE(brk0.ok());
  auto old = Sbrk(f.as, static_cast<i64>(2 * kPageSize));
  ASSERT_TRUE(old.ok());
  EXPECT_EQ(old.value(), brk0.value());
  EXPECT_EQ(CurrentBrk(f.as).value(), brk0.value() + 2 * kPageSize);
  ASSERT_TRUE(Store<u32>(f.as, brk0.value(), 7).ok());
  auto back = Sbrk(f.as, -static_cast<i64>(2 * kPageSize));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(CurrentBrk(f.as).value(), brk0.value());
  // The shrunk range faults again.
  EXPECT_EQ(Load<u32>(f.as, brk0.value()).error(), Errno::kEFAULT);
}

TEST(VmOps, SbrkRespectsMaxDataPages) {
  Fixture f;
  EXPECT_EQ(Sbrk(f.as, static_cast<i64>(kPageSize), /*max_data_pages=*/4).error(),
            Errno::kENOMEM);
  EXPECT_TRUE(Sbrk(f.as, static_cast<i64>(kPageSize), 5).ok());
}

TEST(VmOps, MapUnmapPrivate) {
  Fixture f;
  auto a = MapAnon(f.as, 3 * kPageSize);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(Store<u32>(f.as, a.value() + kPageSize, 9).ok());
  ASSERT_TRUE(Unmap(f.as, a.value()).ok());
  EXPECT_EQ(Load<u32>(f.as, a.value()).error(), Errno::kEFAULT);
  EXPECT_EQ(Unmap(f.as, a.value()).error(), Errno::kEINVAL);
  EXPECT_EQ(Unmap(f.as, kDataBase).error(), Errno::kEINVAL);  // not an arena mapping
}

TEST(VmOps, ForkDuplicationSharesTextCowsData) {
  Fixture f;
  auto text = Region::Alloc(f.mem, RegionType::kText, 1);
  f.as.AttachPrivate(std::make_unique<Pregion>(text, kTextBase, kProtRx));
  ASSERT_TRUE(Store<u32>(f.as, kDataBase, 41).ok());

  AddressSpace child(f.mem);
  ASSERT_TRUE(DuplicateForFork(f.as, child).ok());
  // Text: same region object (shared, it is immutable).
  EXPECT_EQ(child.FindPrivate(kTextBase)->region.get(), text.get());
  // Data: different region object (COW twin).
  EXPECT_NE(child.FindPrivate(kDataBase)->region.get(),
            f.as.FindPrivate(kDataBase)->region.get());
  EXPECT_EQ(Load<u32>(child, kDataBase).value(), 41u);
  ASSERT_TRUE(Store<u32>(child, kDataBase, 42).ok());
  EXPECT_EQ(Load<u32>(f.as, kDataBase).value(), 41u);
}

TEST(VmOps, OutOfFramesSurfacesEnomem) {
  PhysMem tiny(2 * kPageSize);
  AddressSpace as(tiny);
  auto data = Region::Alloc(tiny, RegionType::kData, 8);
  as.AttachPrivate(std::make_unique<Pregion>(std::move(data), kDataBase, kProtRw));
  ASSERT_TRUE(Store<u32>(as, kDataBase, 1).ok());
  ASSERT_TRUE(Store<u32>(as, kDataBase + kPageSize, 2).ok());
  EXPECT_EQ(Store<u32>(as, kDataBase + 2 * kPageSize, 3).error(), Errno::kENOMEM);
}

}  // namespace
}  // namespace sg
