// Fair-share resource manager (src/rm/): hierarchy weights and decayed
// usage at the node level, then the kernel-visible contract — PR_SETSHARES /
// PR_SETRCAP, cap breaches surfacing as EAGAIN/ENOMEM at the existing
// admission chokepoints, capacity returning when members/fds/pages go away,
// and the /proc/share/<gid> rm.* lines.
#include <gtest/gtest.h>

#include <atomic>
#include <string>

#include "api/kernel.h"
#include "api/user_env.h"
#include "core/share_mask.h"
#include "proc/signal.h"
#include "rm/rm.h"

namespace sg {
namespace {

// ----- node-level unit tests (no kernel) -----

TEST(RmUnit, HierarchyWeightsBiasPriority) {
  rm::ResourceManager m;
  rm::GroupNode* heavy = m.CreateNode(nullptr, 300);
  rm::GroupNode* light = m.CreateNode(nullptr, 100);
  // Equal consumption, unequal entitlement: the heavy-shares tenant has
  // consumed less than its entitlement and must come out ahead.
  const u64 t0 = 1'000'000;
  heavy->ChargeCpuAt(10'000'000, t0);
  light->ChargeCpuAt(10'000'000, t0);
  const int ph = heavy->EffectivePriorityAt(0, t0);
  const int pl = light->EffectivePriorityAt(0, t0);
  EXPECT_GT(ph, pl);
  // heavy entitled 3/4 consumed 1/2 -> positive; light entitled 1/4
  // consumed 1/2 -> negative.
  EXPECT_GT(ph, 0);
  EXPECT_LT(pl, 0);
  m.ReleaseNode(heavy);
  m.ReleaseNode(light);
}

TEST(RmUnit, LoneGroupGetsZeroAdjustment) {
  rm::ResourceManager m;
  rm::GroupNode* only = m.CreateNode(nullptr, 7);  // any weight
  const u64 t0 = 1'000'000;
  only->ChargeCpuAt(50'000'000, t0);
  // Sole tenant: consumed == total, entitlement ratio 1 — no adjustment,
  // whatever the shares value. Single-tenant workloads are unaffected.
  EXPECT_EQ(only->EffectivePriorityAt(5, t0), 5);
  m.ReleaseNode(only);
}

TEST(RmUnit, UsageDecaysAndPrioritiesReconverge) {
  rm::ResourceManager m;
  rm::GroupNode* a = m.CreateNode();
  rm::GroupNode* b = m.CreateNode();
  const u64 t0 = 1'000'000;
  a->ChargeCpuAt(100'000'000, t0);  // a burned 100ms, b idle
  EXPECT_LT(a->EffectivePriorityAt(0, t0), b->EffectivePriorityAt(0, t0));
  // One half-life halves the account.
  const double u0 = a->DecayedUsageAt(t0);
  const double u1 = a->DecayedUsageAt(t0 + rm::kDecayHalfLifeNs);
  EXPECT_NEAR(u1, u0 / 2.0, u0 * 0.01);
  // Many half-lives later the account is dust (< 1ns): nothing left to
  // arbitrate, both tenants are back at base priority.
  const u64 later = t0 + 60 * rm::kDecayHalfLifeNs;
  EXPECT_EQ(a->EffectivePriorityAt(0, later), 0);
  EXPECT_EQ(b->EffectivePriorityAt(0, later), 0);
  m.ReleaseNode(a);
  m.ReleaseNode(b);
}

TEST(RmUnit, CapChargeUnchargeExact) {
  rm::ResourceManager m;
  rm::GroupNode* n = m.CreateNode();
  // Cap 0 = unlimited.
  EXPECT_TRUE(n->TryCharge(rm::Resource::kFiles, 1000));
  n->Uncharge(rm::Resource::kFiles, 1000);
  n->SetCap(rm::Resource::kFiles, 3);
  EXPECT_TRUE(n->TryCharge(rm::Resource::kFiles, 2));
  EXPECT_FALSE(n->TryCharge(rm::Resource::kFiles, 2));  // 2+2 > 3
  EXPECT_TRUE(n->TryCharge(rm::Resource::kFiles, 1));   // exactly at cap
  EXPECT_FALSE(n->TryCharge(rm::Resource::kFiles, 1));
  n->Uncharge(rm::Resource::kFiles, 1);  // released capacity is reusable
  EXPECT_TRUE(n->TryCharge(rm::Resource::kFiles, 1));
  EXPECT_EQ(n->used(rm::Resource::kFiles), 3u);
  n->Uncharge(rm::Resource::kFiles, 3);
  m.ReleaseNode(n);
}

// ----- kernel-level integration -----

void RunAsProcess(Kernel& k, std::function<void(Env&)> body) {
  auto pid = k.Launch([body = std::move(body)](Env& env, long) { body(env); });
  ASSERT_TRUE(pid.ok());
  k.WaitAll();
}

TEST(RmApi, MemberCapBreachAndRecovery) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    std::atomic<bool> release{false};
    env.Sproc(
        [&](Env& c, long) {
          while (!release.load()) {
            c.Yield();
          }
        },
        PR_SALL);
    // Two members; cap the group at exactly that.
    ASSERT_EQ(env.Prctl(PR_SETRCAP, PrRcapArg(PR_RCAP_MEMBERS, 2)), 2);
    // A third admission must bounce with EAGAIN, not crash or over-admit.
    EXPECT_LT(env.Sproc([](Env&, long) {}, PR_SALL), 0);
    EXPECT_EQ(env.LastError(), Errno::kEAGAIN);
    EXPECT_EQ(env.proc().shaddr->refcnt(), 2u);
    // A member's exit returns its slot; admission works again.
    release = true;
    env.WaitChild();
    EXPECT_GT(env.Sproc([](Env&, long) {}, PR_SALL), 0);
    env.WaitChild();
  });
  EXPECT_EQ(k.LiveBlocks(), 0u);
}

TEST(RmApi, JoinGroupRespectsMemberCap) {
  Kernel k;
  std::atomic<pid_t> founder_pid{0};
  std::atomic<bool> done{false};
  auto founder = k.Launch([&](Env& env, long) {
    env.Sproc([](Env&, long) {}, PR_SALL);
    env.WaitChild();
    ASSERT_EQ(env.Prctl(PR_SETRCAP, PrRcapArg(PR_RCAP_MEMBERS, 1)), 1);
    founder_pid = env.Pid();
    while (!done.load()) {
      env.Yield();
    }
  });
  auto joiner = k.Launch([&](Env& env, long) {
    while (founder_pid.load() == 0) {
      env.Yield();
    }
    // The group is full (cap 1, the founder): the dynamic join bounces.
    EXPECT_LT(env.Prctl(PR_JOINGROUP, founder_pid.load()), 0);
    EXPECT_EQ(env.LastError(), Errno::kEAGAIN);
    EXPECT_EQ(env.proc().shaddr, nullptr);
    done = true;
  });
  ASSERT_TRUE(founder.ok() && joiner.ok());
  k.WaitAll();
  EXPECT_EQ(k.LiveBlocks(), 0u);
}

TEST(RmApi, FileCapBreachAndRelease) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    env.Sproc([](Env&, long) {}, PR_SALL);  // form a PR_SFDS group
    env.WaitChild();
    const u64 used = env.proc().shaddr->rm_node()->used(rm::Resource::kFiles);
    ASSERT_EQ(env.Prctl(PR_SETRCAP, PrRcapArg(PR_RCAP_FILES, used + 1)),
              static_cast<i64>(used + 1));
    const int fd = env.Open("/rm-one", kOpenWrite | kOpenCreat);
    ASSERT_GE(fd, 0);
    // At the cap now: open and dup both bounce; pipes (needing 2) too.
    EXPECT_LT(env.Open("/rm-two", kOpenWrite | kOpenCreat), 0);
    EXPECT_EQ(env.LastError(), Errno::kEAGAIN);
    EXPECT_LT(env.Dup(fd), 0);
    EXPECT_EQ(env.LastError(), Errno::kEAGAIN);
    int rd = -1, wr = -1;
    EXPECT_LT(env.Pipe(&rd, &wr), 0);
    EXPECT_EQ(env.LastError(), Errno::kEAGAIN);
    // dup2 onto an OCCUPIED slot replaces (no growth) and must pass.
    const int fd2 = env.Dup2(fd, fd);
    EXPECT_EQ(fd2, fd);
    // Close returns the slot; admission works again.
    EXPECT_EQ(env.Close(fd), 0);
    const int again = env.Open("/rm-three", kOpenWrite | kOpenCreat);
    EXPECT_GE(again, 0);
    env.Close(again);
  });
  EXPECT_EQ(k.LiveBlocks(), 0u);
}

TEST(RmApi, PageCapStealsUnderPressureWithSwap) {
  BootParams bp;
  bp.swap_pages = 256;
  Kernel k(bp);
  RunAsProcess(k, [&](Env& env) {
    env.Sproc([](Env&, long) {}, PR_SALL);  // shared VM image group
    env.WaitChild();
    rm::GroupNode* node = env.proc().shaddr->rm_node();
    const u64 resident = node->used(rm::Resource::kPages);
    const u64 cap = resident + 8;
    ASSERT_EQ(env.Prctl(PR_SETRCAP, PrRcapArg(PR_RCAP_PAGES, cap)),
              static_cast<i64>(cap));
    // Touch 32 fresh pages — four times the headroom. With swap behind the
    // pager, faults beyond the cap steal from this same image instead of
    // failing, so every store lands and residency never exceeds the cap.
    const vaddr_t arena = env.Mmap(32 * kPageSize);
    ASSERT_NE(arena, 0u);
    for (u64 i = 0; i < 32; ++i) {
      env.Store32(arena + i * kPageSize, static_cast<u32>(i + 1));
      EXPECT_LE(node->used(rm::Resource::kPages), cap);
    }
    // Stolen pages come back from swap intact.
    for (u64 i = 0; i < 32; ++i) {
      EXPECT_EQ(env.Load32(arena + i * kPageSize), static_cast<u32>(i + 1));
      EXPECT_LE(node->used(rm::Resource::kPages), cap);
    }
  });
  EXPECT_EQ(k.LiveBlocks(), 0u);
}

TEST(RmApi, PageCapWithoutSwapKillsTheToucher) {
  Kernel k;  // swap_pages = 0: nothing to steal into, breach is fatal
  RunAsProcess(k, [&](Env& env) {
    std::atomic<bool> capped{false};
    env.Sproc(
        [&](Env& c, long) {
          while (!capped.load()) {
            c.Yield();
          }
          // Beyond the cap with no swap the fault path has no way out:
          // the store faults like a wild pointer would.
          const vaddr_t arena = c.Mmap(16 * kPageSize);
          for (u64 i = 0; i < 16; ++i) {
            c.Store32(arena + i * kPageSize, 1u);
          }
          ADD_FAILURE() << "stores beyond the page cap should have faulted";
        },
        PR_SALL);
    rm::GroupNode* node = env.proc().shaddr->rm_node();
    ASSERT_EQ(env.Prctl(PR_SETRCAP,
                        PrRcapArg(PR_RCAP_PAGES, node->used(rm::Resource::kPages) + 4)),
              static_cast<i64>(node->used(rm::Resource::kPages) + 4));
    capped = true;
    int sig = 0;
    env.WaitChild(nullptr, &sig);
    EXPECT_EQ(sig, kSigSegv);
  });
  EXPECT_EQ(k.LiveBlocks(), 0u);
}

TEST(RmApi, UnshareVmReturnsPageCapacity) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    std::atomic<int> phase{0};
    env.Sproc(
        [&](Env& c, long) {
          // Touch our shared stack so it holds resident pages, then pull
          // the whole VM image private: those pages leave the group's
          // account.
          c.Store32(c.proc().stack_base, 42);
          phase = 1;
          while (phase.load() != 2) {
            c.Yield();
          }
          ASSERT_GE(c.Prctl(PR_UNSHARE, PR_SADDR), 0);
          phase = 3;
          while (phase.load() != 4) {
            c.Yield();
          }
        },
        PR_SADDR);
    while (phase.load() != 1) {
      env.Yield();
    }
    rm::GroupNode* node = env.proc().shaddr->rm_node();
    const u64 before = node->used(rm::Resource::kPages);
    EXPECT_GT(before, 0u);
    phase = 2;
    while (phase.load() != 3) {
      env.Yield();
    }
    // The member's COW snapshot took the image private; the group account
    // shrank (at minimum the member's stack left).
    EXPECT_LT(node->used(rm::Resource::kPages), before);
    phase = 4;
    env.WaitChild();
  });
  EXPECT_EQ(k.LiveBlocks(), 0u);
}

TEST(RmApi, PrctlReturnConvention) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    // Outside a group every rm prctl is EINVAL.
    EXPECT_LT(env.Prctl(PR_SETSHARES, 200), 0);
    EXPECT_EQ(env.LastError(), Errno::kEINVAL);
    EXPECT_LT(env.Prctl(PR_SETRCAP, PrRcapArg(PR_RCAP_FILES, 4)), 0);
    EXPECT_EQ(env.LastError(), Errno::kEINVAL);

    env.Sproc([](Env&, long) {}, PR_SALL);
    env.WaitChild();
    // Success returns the effect now in force (see share_mask.h).
    EXPECT_EQ(env.Prctl(PR_SETSHARES, 250), 250);
    EXPECT_EQ(env.proc().shaddr->rm_node()->shares(), 250u);
    EXPECT_EQ(env.Prctl(PR_SETSHARES, 0), 1);  // clamped, and says so
    EXPECT_EQ(env.Prctl(PR_SETRCAP, PrRcapArg(PR_RCAP_PAGES, 99)), 99);
    EXPECT_EQ(env.proc().shaddr->rm_node()->cap(rm::Resource::kPages), 99u);
    EXPECT_EQ(env.Prctl(PR_SETRCAP, PrRcapArg(PR_RCAP_PAGES, 0)), 0);  // unlimited
    // Unknown resource selector and negative packings are EINVAL.
    EXPECT_LT(env.Prctl(PR_SETRCAP, PrRcapArg(9, 4)), 0);
    EXPECT_EQ(env.LastError(), Errno::kEINVAL);
    EXPECT_LT(env.Prctl(PR_SETRCAP, -1), 0);
    EXPECT_EQ(env.LastError(), Errno::kEINVAL);
    EXPECT_LT(env.Prctl(PR_SETSHARES, -5), 0);
    EXPECT_EQ(env.LastError(), Errno::kEINVAL);
  });
}

TEST(RmApi, ProcShareShowsRmLines) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    std::atomic<bool> release{false};
    env.Sproc(
        [&](Env& c, long) {
          while (!release.load()) {
            c.Yield();
          }
        },
        PR_SALL);
    ASSERT_EQ(env.Prctl(PR_SETSHARES, 300), 300);
    ASSERT_EQ(env.Prctl(PR_SETRCAP, PrRcapArg(PR_RCAP_MEMBERS, 5)), 5);
    const std::string path = "/proc/share/" + std::to_string(env.proc().shaddr->id());
    const int fd = env.Open(path, kOpenRead);
    ASSERT_GE(fd, 0);
    std::string text;
    std::byte buf[512];
    for (;;) {
      const i64 n = env.ReadBuf(fd, buf);
      if (n <= 0) {
        break;
      }
      text.append(reinterpret_cast<const char*>(buf), static_cast<size_t>(n));
    }
    env.Close(fd);
    EXPECT_NE(text.find("rm.shares 300\n"), std::string::npos) << text;
    EXPECT_NE(text.find("rm.usage_ns "), std::string::npos);
    EXPECT_NE(text.find("rm.cap.members 5\n"), std::string::npos);
    EXPECT_NE(text.find("rm.used.members 2\n"), std::string::npos);
    EXPECT_NE(text.find("rm.headroom.members 3\n"), std::string::npos);
    EXPECT_NE(text.find("rm.cap.files 0\n"), std::string::npos);
    EXPECT_NE(text.find("rm.headroom.files -\n"), std::string::npos);  // unlimited
    EXPECT_NE(text.find("rm.used.pages "), std::string::npos);
    release = true;
    env.WaitChild();
  });
}

}  // namespace
}  // namespace sg
