// Unit tests for base/: Status/Result, errno names, intrusive list, ids.
#include <gtest/gtest.h>

#include "base/errno.h"
#include "base/id_allocator.h"
#include "base/intrusive_list.h"
#include "base/result.h"

namespace sg {
namespace {

TEST(Status, OkAndError) {
  Status ok = Status::Ok();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.error(), Errno::kOk);
  Status bad = Errno::kENOENT;
  EXPECT_FALSE(bad.ok());
  EXPECT_STREQ(bad.name(), "ENOENT");
  EXPECT_STREQ(bad.message(), "no such file or directory");
  EXPECT_EQ(bad, Status(Errno::kENOENT));
}

TEST(Result, ValueAndError) {
  Result<int> v = 7;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 7);
  EXPECT_EQ(v.error(), Errno::kOk);
  Result<int> e = Errno::kEAGAIN;
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.error(), Errno::kEAGAIN);
  EXPECT_EQ(e.value_or(-1), -1);
}

TEST(Result, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).value();
  EXPECT_EQ(*p, 5);
}

TEST(ErrnoNames, AllNamed) {
  for (Errno e : {Errno::kEPERM, Errno::kENOENT, Errno::kEINTR, Errno::kEBADF, Errno::kEAGAIN,
                  Errno::kENOMEM, Errno::kEACCES, Errno::kEFAULT, Errno::kEEXIST, Errno::kEINVAL,
                  Errno::kENFILE, Errno::kEMFILE, Errno::kEFBIG, Errno::kESPIPE, Errno::kEPIPE,
                  Errno::kEIDRM, Errno::kENOSYS}) {
    EXPECT_NE(std::string_view(ErrnoName(e)), "E???");
    EXPECT_NE(std::string_view(ErrnoMessage(e)), "unknown error");
  }
}

struct Node {
  int v;
  ListNode link;
};

TEST(IntrusiveList, PushEraseIterate) {
  IntrusiveList<Node, &Node::link> list;
  EXPECT_TRUE(list.empty());
  Node a{1, {}}, b{2, {}}, c{3, {}};
  list.PushBack(&a);
  list.PushBack(&b);
  list.PushFront(&c);
  EXPECT_EQ(list.size(), 3u);
  EXPECT_TRUE(list.Contains(&b));
  int sum = 0;
  for (Node* n : list) {
    sum = sum * 10 + n->v;
  }
  EXPECT_EQ(sum, 312);  // c, a, b
  list.Erase(&a);
  EXPECT_FALSE(list.Contains(&a));
  EXPECT_EQ(list.size(), 2u);
  EXPECT_EQ(list.PopFront(), &c);
  EXPECT_EQ(list.PopFront(), &b);
  EXPECT_EQ(list.PopFront(), nullptr);
  EXPECT_TRUE(list.empty());
}

TEST(IdAllocator, LowestFirstAndReuse) {
  IdAllocator ids(1, 4);
  EXPECT_EQ(ids.Allocate().value(), 1);
  EXPECT_EQ(ids.Allocate().value(), 2);
  EXPECT_EQ(ids.Allocate().value(), 3);
  ids.Free(2);
  EXPECT_EQ(ids.Allocate().value(), 2);  // freed ids reused lowest-first
  EXPECT_EQ(ids.Allocate().value(), 4);
  EXPECT_EQ(ids.Allocate().error(), Errno::kEAGAIN);  // exhausted
  EXPECT_EQ(ids.InUse(), 4);
  ids.Free(1);
  EXPECT_EQ(ids.Allocate().value(), 1);
}

TEST(PageMath, FloorCeilPages) {
  EXPECT_EQ(PageFloor(kPageSize + 1), kPageSize);
  EXPECT_EQ(PageCeil(kPageSize + 1), 2 * kPageSize);
  EXPECT_EQ(PageCeil(kPageSize), kPageSize);
  EXPECT_EQ(PagesFor(1), 1u);
  EXPECT_EQ(PagesFor(0), 0u);
  EXPECT_EQ(PagesFor(kPageSize * 3), 3u);
  EXPECT_EQ(PageOf(kPageSize * 5 + 17), 5u);
}

}  // namespace
}  // namespace sg
