// The paging subsystem: swap-device mechanics, clock stealing, transparent
// fault-path reclaim, and data integrity under thrash — including a share
// group where the pager and faulting members contend for the §6.2 shared
// read lock ("operations that scan (page fault, pager)").
#include <gtest/gtest.h>

#include <atomic>

#include "api/kernel.h"
#include "api/user_env.h"
#include "hw/swap.h"
#include "vm/pager.h"

namespace sg {
namespace {

void RunAsProcess(Kernel& k, std::function<void(Env&)> body) {
  auto pid = k.Launch([body = std::move(body)](Env& env, long) { body(env); });
  ASSERT_TRUE(pid.ok());
  k.WaitAll();
}

TEST(SwapDevice, SlotLifecycle) {
  SwapSpace swap(4);
  EXPECT_EQ(swap.SlotsFree(), 4u);
  std::byte page[kPageSize];
  std::memset(page, 0x5a, sizeof(page));
  auto slot = swap.WriteOut(page);
  ASSERT_TRUE(slot.ok());
  EXPECT_EQ(swap.SlotsFree(), 3u);
  std::byte back[kPageSize] = {};
  swap.ReadInAndFree(slot.value(), back);
  EXPECT_EQ(back[0], std::byte{0x5a});
  EXPECT_EQ(back[kPageSize - 1], std::byte{0x5a});
  EXPECT_EQ(swap.SlotsFree(), 4u);
  EXPECT_EQ(swap.outs(), 1u);
  EXPECT_EQ(swap.ins(), 1u);
}

TEST(SwapDevice, ExhaustionAndDuplicate) {
  SwapSpace swap(2);
  std::byte page[kPageSize];
  std::memset(page, 1, sizeof(page));
  auto a = swap.WriteOut(page);
  auto dup = swap.Duplicate(a.value());
  ASSERT_TRUE(dup.ok());
  EXPECT_NE(dup.value(), a.value());
  EXPECT_EQ(swap.WriteOut(page).error(), Errno::kENOSPC);  // full
  std::byte back[kPageSize] = {};
  swap.Peek(dup.value(), back);
  EXPECT_EQ(back[17], std::byte{1});
}

TEST(Pager, StealAndFaultBackPreservesData) {
  PhysMem mem(32 * kPageSize);
  SwapSpace swap(64);
  mem.AttachSwap(&swap);
  AddressSpace as(mem);
  auto data = Region::Alloc(mem, RegionType::kData, 8);
  Region* region = data.get();
  as.AttachPrivate(std::make_unique<Pregion>(std::move(data), kDataBase, kProtRw));
  for (u64 i = 0; i < 8; ++i) {
    ASSERT_TRUE(Store<u32>(as, kDataBase + i * kPageSize, static_cast<u32>(1000 + i)).ok());
  }
  EXPECT_EQ(region->ResidentPages(), 8u);
  // First sweep clears reference bits; second harvests.
  const u64 stolen = ReclaimPages(as, 8);
  EXPECT_EQ(stolen, 8u);
  EXPECT_EQ(region->ResidentPages(), 0u);
  EXPECT_EQ(region->SwappedPages(), 8u);
  EXPECT_EQ(swap.outs(), 8u);
  // Touch them back in: major faults restore the exact contents.
  for (u64 i = 0; i < 8; ++i) {
    auto v = Load<u32>(as, kDataBase + i * kPageSize);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v.value(), 1000 + i);
  }
  EXPECT_EQ(swap.ins(), 8u);
  EXPECT_EQ(region->SwappedPages(), 0u);
}

TEST(Pager, ReferencedPagesGetASecondChance) {
  PhysMem mem(32 * kPageSize);
  SwapSpace swap(64);
  mem.AttachSwap(&swap);
  AddressSpace as(mem);
  auto data = Region::Alloc(mem, RegionType::kData, 4);
  Region* region = data.get();
  as.AttachPrivate(std::make_unique<Pregion>(std::move(data), kDataBase, kProtRw));
  for (u64 i = 0; i < 4; ++i) {
    ASSERT_TRUE(Store<u32>(as, kDataBase + i * kPageSize, 1).ok());
  }
  // Ask for ONE page: the first sweep clears all four clock bits; the
  // second sweep steals the first cold page it meets.
  EXPECT_EQ(ReclaimPages(as, 1), 1u);
  EXPECT_EQ(region->ResidentPages(), 3u);
}

TEST(Pager, SharedFramesAreNeverStolen) {
  PhysMem mem(32 * kPageSize);
  SwapSpace swap(64);
  mem.AttachSwap(&swap);
  AddressSpace as(mem);
  auto data = Region::Alloc(mem, RegionType::kData, 2);
  as.AttachPrivate(std::make_unique<Pregion>(data, kDataBase, kProtRw));
  ASSERT_TRUE(Store<u32>(as, kDataBase, 7).ok());
  auto twin = data->DupCow();  // the frame is now COW-shared
  EXPECT_EQ(ReclaimPages(as, 4), 0u);  // nothing eligible
  (void)twin;
}

TEST(Pager, FaultPathReclaimsTransparently) {
  // 48 frames of memory, a working set of ~80 pages, plenty of swap: every
  // touch must succeed, with the pager running inside the fault path.
  BootParams bp;
  bp.phys_mem_bytes = 48 * kPageSize;
  bp.swap_pages = 512;
  Kernel k(bp);
  RunAsProcess(k, [&](Env& env) {
    constexpr u64 kPages = 80;
    const vaddr_t a = env.Mmap(kPages * kPageSize);
    ASSERT_NE(a, 0u);
    for (u64 i = 0; i < kPages; ++i) {
      env.Store32(a + i * kPageSize, static_cast<u32>(i * 31));
    }
    // Re-read everything: swapped-out pages fault back in (and push others
    // out); all data survives.
    for (u64 i = 0; i < kPages; ++i) {
      ASSERT_EQ(env.Load32(a + i * kPageSize), static_cast<u32>(i * 31)) << i;
    }
  });
  ASSERT_NE(k.swap(), nullptr);
  EXPECT_GT(k.swap()->outs(), 0u);
  EXPECT_GT(k.swap()->ins(), 0u);
  EXPECT_EQ(k.mem().FreeFrames(), k.mem().TotalFrames());  // no frame leaks
}

TEST(Pager, ShareGroupThrashKeepsDataCoherent) {
  BootParams bp;
  bp.phys_mem_bytes = 64 * kPageSize;
  bp.swap_pages = 1024;
  Kernel k(bp);
  RunAsProcess(k, [&](Env& env) {
    constexpr u64 kPages = 48;
    const vaddr_t a = env.Mmap(kPages * kPageSize);
    constexpr int kMembers = 3;
    for (int m = 0; m < kMembers; ++m) {
      env.Sproc(
          [a](Env& c, long idx) {
            // Each member owns a page-stride; rounds of write-then-verify
            // while the pager steals around us.
            for (int round = 0; round < 4; ++round) {
              for (u64 p = static_cast<u64>(idx); p < kPages; p += kMembers) {
                c.Store32(a + p * kPageSize, static_cast<u32>(round * 1000 + p));
              }
              for (u64 p = static_cast<u64>(idx); p < kPages; p += kMembers) {
                ASSERT_EQ(c.Load32(a + p * kPageSize), static_cast<u32>(round * 1000 + p));
              }
            }
          },
          PR_SADDR, m);
    }
    for (int m = 0; m < kMembers; ++m) {
      env.WaitChild();
    }
    // Final cross-check from the parent through its own translations.
    for (u64 p = 0; p < kPages; ++p) {
      ASSERT_EQ(env.Load32(a + p * kPageSize), static_cast<u32>(3000 + p));
    }
  });
  EXPECT_EQ(k.mem().FreeFrames(), k.mem().TotalFrames());
  EXPECT_EQ(k.swap()->SlotsFree(), 1024u);  // every slot returned
}

TEST(Pager, SwapAndMemoryBothExhaustedStillErrorsCleanly) {
  BootParams bp;
  bp.phys_mem_bytes = 40 * kPageSize;
  bp.swap_pages = 8;
  Kernel k(bp);
  RunAsProcess(k, [&](Env& env) {
    const vaddr_t a = env.Mmap(256 * kPageSize);
    pid_t pid = env.Sproc(
        [a](Env& c, long) {
          for (u64 i = 0; i < 256; ++i) {
            c.Store32(a + i * kPageSize, 1);
          }
          ADD_FAILURE() << "exceeded memory + swap yet survived";
        },
        PR_SADDR);
    int sig = 0;
    EXPECT_EQ(env.WaitChild(nullptr, &sig), pid);
    EXPECT_EQ(sig, kSigSegv);
  });
  EXPECT_EQ(k.mem().FreeFrames(), k.mem().TotalFrames());
}

TEST(Pager, ForkDuplicatesSwappedPages) {
  BootParams bp;
  bp.phys_mem_bytes = 64 * kPageSize;
  bp.swap_pages = 256;
  Kernel k(bp);
  RunAsProcess(k, [&](Env& env) {
    const vaddr_t a = env.Mmap(4 * kPageSize);
    for (u64 i = 0; i < 4; ++i) {
      env.Store32(a + i * kPageSize, static_cast<u32>(50 + i));
    }
    // Push our pages out by hand, then fork: the child must inherit copies
    // of the SWAPPED pages too.
    ASSERT_EQ(sg::ReclaimPages(env.proc().as, 4), 4u);
    std::atomic<bool> child_ok{true};
    env.Fork([&, a](Env& c, long) {
      for (u64 i = 0; i < 4; ++i) {
        if (c.Load32(a + i * kPageSize) != 50 + i) {
          child_ok = false;
        }
      }
      c.Store32(a, 9999);
    });
    env.WaitChild();
    EXPECT_TRUE(child_ok.load());
    EXPECT_EQ(env.Load32(a), 50u);  // the child's write stayed in its copy
  });
  EXPECT_EQ(k.swap()->SlotsFree(), 256u);
}

}  // namespace
}  // namespace sg
