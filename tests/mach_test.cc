// The Mach-style threads baseline: whole-context sharing, per-thread
// kernel-resource overhead, and join semantics.
#include <gtest/gtest.h>

#include <atomic>

#include "api/kernel.h"
#include "api/user_env.h"
#include "mach/task.h"

namespace sg {
namespace {

TEST(Mach, ThreadsShareTheTaskAddressSpace) {
  Kernel k;
  std::atomic<u32> sum{0};
  (void)k.Launch([&](Env& env, long) {
    MachTask task(env.proc(), k.mem(), k.sched());
    vaddr_t ctr = env.Mmap(kPageSize);
    for (int i = 0; i < 4; ++i) {
      auto tid = task.ThreadCreate([&, ctr](int) {
        Env tenv(k, task.proc());
        for (int n = 0; n < 1000; ++n) {
          tenv.FetchAdd32(ctr, 1);
        }
      });
      ASSERT_TRUE(tid.ok());
    }
    task.JoinAll();
    sum = env.Load32(ctr);
  });
  k.WaitAll();
  EXPECT_EQ(sum.load(), 4000u);
}

TEST(Mach, PerThreadKernelPagesChargedAndReleased) {
  Kernel k;
  (void)k.Launch([&](Env& env, long) {
    const u64 free_before = k.mem().FreeFrames();
    MachTask task(env.proc(), k.mem(), k.sched());
    std::atomic<bool> hold{true};
    auto tid = task.ThreadCreate([&](int) {
      while (hold.load()) {
        std::this_thread::yield();
      }
    });
    ASSERT_TRUE(tid.ok());
    // "the resource overhead of extra stack and user area pages" (§2).
    EXPECT_EQ(k.mem().FreeFrames(), free_before - kThreadKernelPages);
    hold = false;
    EXPECT_TRUE(task.ThreadJoin(tid.value()).ok());
    EXPECT_EQ(k.mem().FreeFrames(), free_before);
  });
  k.WaitAll();
}

TEST(Mach, JoinUnknownTidFails) {
  Kernel k;
  (void)k.Launch([&](Env& env, long) {
    MachTask task(env.proc(), k.mem(), k.sched());
    EXPECT_EQ(task.ThreadJoin(99).error(), Errno::kESRCH);
    EXPECT_EQ(task.LiveThreads(), 0u);
  });
  k.WaitAll();
}

TEST(Mach, ThreadsSeeTaskDescriptors) {
  Kernel k;
  std::atomic<i64> wrote{0};
  (void)k.Launch([&](Env& env, long) {
    int fd = env.Open("/shared-by-threads", kOpenWrite | kOpenCreat);
    ASSERT_GE(fd, 0);
    MachTask task(env.proc(), k.mem(), k.sched());
    auto tid = task.ThreadCreate([&, fd](int) {
      Env tenv(k, task.proc());
      wrote = tenv.WriteStr(fd, "thread");  // the whole fd table is shared
    });
    ASSERT_TRUE(tid.ok());
    task.JoinAll();
  });
  k.WaitAll();
  EXPECT_EQ(wrote.load(), 6);
}

TEST(Mach, CreationExhaustionOnTinyMemory) {
  BootParams bp;
  bp.phys_mem_bytes = 64 * kPageSize;
  Kernel k(bp);
  (void)k.Launch([&](Env& env, long) {
    MachTask task(env.proc(), k.mem(), k.sched());
    std::atomic<bool> hold{true};
    int created = 0;
    for (int i = 0; i < 64; ++i) {
      auto tid = task.ThreadCreate([&](int) {
        while (hold.load()) {
          std::this_thread::yield();
        }
      });
      if (!tid.ok()) {
        EXPECT_EQ(tid.error(), Errno::kENOMEM);
        break;
      }
      ++created;
    }
    EXPECT_GT(created, 0);
    EXPECT_LT(created, 64);  // ran out of kernel pages before 64 threads
    hold = false;
    task.JoinAll();
  });
  k.WaitAll();
}

}  // namespace
}  // namespace sg
