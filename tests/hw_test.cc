// Unit tests for hw/: physical frame allocation/refcounts, the software-
// managed TLB, and the cross-processor flush accounting.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "hw/cpu_set.h"
#include "hw/phys_mem.h"
#include "hw/tlb.h"

namespace sg {
namespace {

TEST(PhysMem, AllocZeroedAndExhaustion) {
  PhysMem mem(4 * kPageSize);
  EXPECT_EQ(mem.TotalFrames(), 4u);
  std::vector<pfn_t> frames;
  for (int i = 0; i < 4; ++i) {
    auto f = mem.AllocFrame();
    ASSERT_TRUE(f.ok());
    // Demand-zero: a fresh frame reads as zeroes.
    const std::byte* d = mem.FrameData(f.value());
    for (u64 b = 0; b < kPageSize; b += 512) {
      EXPECT_EQ(d[b], std::byte{0});
    }
    frames.push_back(f.value());
  }
  EXPECT_EQ(mem.FreeFrames(), 0u);
  EXPECT_EQ(mem.AllocFrame().error(), Errno::kENOMEM);
  mem.Unref(frames[0]);
  EXPECT_EQ(mem.FreeFrames(), 1u);
  EXPECT_TRUE(mem.AllocFrame().ok());
  for (size_t i = 1; i < frames.size(); ++i) {
    mem.Unref(frames[i]);
  }
}

TEST(PhysMem, RefcountSharing) {
  PhysMem mem(4 * kPageSize);
  pfn_t f = mem.AllocFrame().value();
  EXPECT_EQ(mem.RefCount(f), 1u);
  EXPECT_TRUE(mem.TakeExclusive(f));  // sole owner
  mem.Ref(f);
  EXPECT_EQ(mem.RefCount(f), 2u);
  EXPECT_FALSE(mem.TakeExclusive(f));  // shared: caller must copy
  mem.Unref(f);
  mem.Unref(f);
  EXPECT_EQ(mem.FreeFrames(), 4u);
}

TEST(PhysMem, DirtyFrameIsRezeroedOnReuse) {
  PhysMem mem(2 * kPageSize);
  pfn_t f = mem.AllocFrame().value();
  std::memset(mem.FrameData(f), 0xab, kPageSize);
  mem.Unref(f);
  pfn_t g = mem.AllocFrame().value();
  EXPECT_EQ(mem.FrameData(g)[0], std::byte{0});
  EXPECT_EQ(mem.FrameData(g)[kPageSize - 1], std::byte{0});
  mem.Unref(g);
}

TEST(PhysMem, ConcurrentAllocFree) {
  PhysMem mem(256 * kPageSize);
  std::vector<std::thread> ts;
  for (int i = 0; i < 8; ++i) {
    ts.emplace_back([&] {
      for (int n = 0; n < 500; ++n) {
        auto f = mem.AllocFrame();
        if (f.ok()) {
          mem.Unref(f.value());
        }
      }
    });
  }
  for (auto& t : ts) {
    t.join();
  }
  EXPECT_EQ(mem.FreeFrames(), 256u);
}

TEST(Tlb, ProbeInsertFlush) {
  Tlb tlb(64);
  EXPECT_EQ(tlb.Probe(5, false).kind, TlbProbe::Kind::kMiss);
  tlb.Insert(5, 42, /*writable=*/false);
  auto p = tlb.Probe(5, false);
  EXPECT_EQ(p.kind, TlbProbe::Kind::kHit);
  EXPECT_EQ(p.pfn, 42u);
  // Write access to a read-only entry: protection fault (COW trap path).
  EXPECT_EQ(tlb.Probe(5, true).kind, TlbProbe::Kind::kWriteProt);
  tlb.Insert(5, 42, /*writable=*/true);
  EXPECT_EQ(tlb.Probe(5, true).kind, TlbProbe::Kind::kHit);
  tlb.FlushPage(5);
  EXPECT_EQ(tlb.Probe(5, false).kind, TlbProbe::Kind::kMiss);
}

TEST(Tlb, DirectMappedConflict) {
  Tlb tlb(64);
  tlb.Insert(3, 10, true);
  tlb.Insert(3 + 64, 11, true);  // same slot: evicts vpn 3
  EXPECT_EQ(tlb.Probe(3, false).kind, TlbProbe::Kind::kMiss);
  EXPECT_EQ(tlb.Probe(3 + 64, false).pfn, 11u);
}

TEST(Tlb, FlushRangeAndAll) {
  Tlb tlb(64);
  for (u64 v = 0; v < 32; ++v) {
    tlb.Insert(v, static_cast<pfn_t>(v + 100), true);
  }
  tlb.FlushRange(8, 16);
  for (u64 v = 0; v < 32; ++v) {
    const bool expect_hit = v < 8 || v >= 16;
    EXPECT_EQ(tlb.Probe(v, false).kind == TlbProbe::Kind::kHit, expect_hit) << v;
  }
  tlb.FlushAll();
  EXPECT_EQ(tlb.Probe(0, false).kind, TlbProbe::Kind::kMiss);
  EXPECT_GE(tlb.flushes(), 2u);
}

TEST(Tlb, WithEntryPinsTranslation) {
  Tlb tlb(64);
  tlb.Insert(7, 70, true);
  bool ran = false;
  EXPECT_TRUE(tlb.WithEntry(7, true, [&](pfn_t pfn) {
    EXPECT_EQ(pfn, 70u);
    ran = true;
  }));
  EXPECT_TRUE(ran);
  EXPECT_FALSE(tlb.WithEntry(8, false, [](pfn_t) { FAIL(); }));
  // Write permission enforced.
  tlb.Insert(9, 90, false);
  EXPECT_FALSE(tlb.WithEntry(9, true, [](pfn_t) { FAIL(); }));
  EXPECT_TRUE(tlb.WithEntry(9, false, [](pfn_t) {}));
}

TEST(Tlb, GenerationFlushInvalidatesLazily) {
  // FlushAll is a generation bump, not a scan: entries installed before the
  // flush must read as dead, entries installed after must be live, and a
  // pre-flush entry must not resurrect a post-flush probe of the same slot.
  Tlb tlb(64);
  tlb.Insert(4, 40, true);
  tlb.Insert(5, 50, true);
  tlb.FlushAll();
  EXPECT_EQ(tlb.Probe(4, false).kind, TlbProbe::Kind::kMiss);
  EXPECT_EQ(tlb.Probe(5, false).kind, TlbProbe::Kind::kMiss);
  EXPECT_FALSE(tlb.WithEntry(4, false, [](pfn_t) { FAIL(); }));
  // Reinstall after the flush: stamped with the new generation, so it hits.
  tlb.Insert(4, 41, true);
  EXPECT_EQ(tlb.Probe(4, false).pfn, 41u);
  // A second flush kills the reinstalled entry too.
  tlb.FlushAll();
  EXPECT_EQ(tlb.Probe(4, false).kind, TlbProbe::Kind::kMiss);
}

TEST(Tlb, FlushOpsVsFlushedEntriesSplit) {
  Tlb tlb(64);
  const u64 ops0 = tlb.flushes();
  const u64 ent0 = tlb.flushed_entries();

  // A flush of an absent translation is one operation, zero entries.
  tlb.FlushPage(9);
  EXPECT_EQ(tlb.flushes(), ops0 + 1);
  EXPECT_EQ(tlb.flushed_entries(), ent0);

  // A flush of a present translation is one operation, one entry.
  tlb.Insert(9, 90, true);
  tlb.FlushPage(9);
  EXPECT_EQ(tlb.flushes(), ops0 + 2);
  EXPECT_EQ(tlb.flushed_entries(), ent0 + 1);

  // FlushAll counts every live entry exactly once, even though it scans
  // nothing — and re-inserting into a dead slot keeps the count honest.
  tlb.Insert(1, 10, true);
  tlb.Insert(2, 20, true);
  tlb.Insert(2, 21, true);  // replaces a LIVE entry: no new live count
  tlb.FlushAll();
  EXPECT_EQ(tlb.flushes(), ops0 + 3);
  EXPECT_EQ(tlb.flushed_entries(), ent0 + 3);

  // An empty FlushAll (everything already dead) invalidates nothing.
  tlb.FlushAll();
  EXPECT_EQ(tlb.flushes(), ops0 + 4);
  EXPECT_EQ(tlb.flushed_entries(), ent0 + 3);

  // FlushRange only counts entries it actually killed.
  tlb.Insert(3, 30, true);
  tlb.Insert(40, 44, true);
  tlb.FlushRange(0, 8);  // kills vpn 3, not vpn 40
  EXPECT_EQ(tlb.flushes(), ops0 + 5);
  EXPECT_EQ(tlb.flushed_entries(), ent0 + 4);
  EXPECT_EQ(tlb.Probe(40, false).pfn, 44u);
}

TEST(Tlb, StatsCount) {
  Tlb tlb(64);
  tlb.Insert(1, 11, true);
  (void)tlb.Probe(1, false);
  (void)tlb.Probe(2, false);
  EXPECT_EQ(tlb.hits(), 1u);
  EXPECT_EQ(tlb.misses(), 1u);
}

TEST(CpuSet, SynchronousFlushHitsAllTargets) {
  CpuSet cpus(4);
  EXPECT_EQ(cpus.ncpus(), 4u);
  Tlb a(64), b(64);
  a.Insert(1, 10, true);
  b.Insert(2, 20, true);
  Tlb* targets[] = {&a, &b};
  cpus.SynchronousFlush(targets);
  EXPECT_EQ(a.Probe(1, false).kind, TlbProbe::Kind::kMiss);
  EXPECT_EQ(b.Probe(2, false).kind, TlbProbe::Kind::kMiss);
  EXPECT_EQ(cpus.shootdowns(), 1u);
  EXPECT_EQ(cpus.ipis(), 4u);  // one interrupt per processor
}

}  // namespace
}  // namespace sg
