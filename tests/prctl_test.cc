// prctl(2) options (§5.2) and their interaction with sproc stack layout.
#include <gtest/gtest.h>

#include <atomic>

#include "api/kernel.h"
#include "api/user_env.h"

namespace sg {
namespace {

void RunAsProcess(Kernel& k, std::function<void(Env&)> body) {
  auto pid = k.Launch([body = std::move(body)](Env& env, long) { body(env); });
  ASSERT_TRUE(pid.ok());
  k.WaitAll();
}

TEST(Prctl, MaxProcsReportsTableLimit) {
  BootParams bp;
  bp.max_procs = 99;
  Kernel k(bp);
  std::atomic<i64> v{0};
  (void)k.Launch([&](Env& env, long) { v = env.Prctl(PR_MAXPROCS); });
  k.WaitAll();
  EXPECT_EQ(v.load(), 99);
}

TEST(Prctl, GetStackSizeDefault) {
  Kernel k;
  std::atomic<i64> v{0};
  (void)k.Launch([&](Env& env, long) { v = env.Prctl(PR_GETSTACKSIZE); });
  k.WaitAll();
  EXPECT_EQ(v.load(), static_cast<i64>(kDefaultStackMaxPages * kPageSize));
}

TEST(Prctl, SetStackSizeRoundsToPagesAndClamps) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    EXPECT_EQ(env.Prctl(PR_SETSTACKSIZE, 10000), static_cast<i64>(3 * kPageSize));
    EXPECT_EQ(env.Prctl(PR_GETSTACKSIZE), static_cast<i64>(3 * kPageSize));
    // Clamped to the hard ceiling.
    EXPECT_EQ(env.Prctl(PR_SETSTACKSIZE, i64{1} << 40),
              static_cast<i64>(kMaxStackMaxPages * kPageSize));
    // Invalid values rejected.
    EXPECT_LT(env.Prctl(PR_SETSTACKSIZE, 0), 0);
    EXPECT_LT(env.Prctl(PR_SETSTACKSIZE, -5), 0);
  });
}

TEST(Prctl, StackSizeInheritedAcrossForkAndSproc) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    ASSERT_GT(env.Prctl(PR_SETSTACKSIZE, 16 * kPageSize), 0);
    std::atomic<i64> via_fork{0};
    std::atomic<i64> via_sproc{0};
    env.Fork([&](Env& c, long) { via_fork = c.Prctl(PR_GETSTACKSIZE); });
    env.WaitChild();
    env.Sproc([&](Env& c, long) { via_sproc = c.Prctl(PR_GETSTACKSIZE); }, PR_SALL);
    env.WaitChild();
    EXPECT_EQ(via_fork.load(), static_cast<i64>(16 * kPageSize));
    EXPECT_EQ(via_sproc.load(), static_cast<i64>(16 * kPageSize));
  });
}

TEST(Prctl, SmallStackChildGetsExactlyConfiguredStack) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    ASSERT_GT(env.Prctl(PR_SETSTACKSIZE, 2 * kPageSize), 0);
    pid_t pid = env.Sproc(
        [](Env& c, long) {
          const vaddr_t base = c.proc().stack_base;
          c.Store32(base, 1);              // inside: ok
          c.Store32(base + kPageSize, 2);  // inside: ok
          // The region is exactly 2 pages (note: one past the top may land
          // in a NEIGHBOR's group-visible stack, so probe the size, and
          // fault below the base where nothing is mapped).
          SharedSpace& ss = c.proc().shaddr->space();
          ReadGuard g(ss.lock());
          Pregion* pr = ss.Find(base);
          ASSERT_NE(pr, nullptr);
          EXPECT_EQ(pr->region->pages(), 2u);
          g.Release();
          c.Store32(base - kPageSize, 3);  // below the stack: unmapped
          ADD_FAILURE() << "survived stack underflow";
        },
        PR_SADDR);
    int sig = 0;
    EXPECT_EQ(env.WaitChild(nullptr, &sig), pid);
    EXPECT_EQ(sig, kSigSegv);
  });
}

TEST(Prctl, UnknownOptionRejected) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    EXPECT_LT(env.Prctl(12345), 0);
    EXPECT_EQ(env.LastError(), Errno::kEINVAL);
  });
}

}  // namespace
}  // namespace sg
