// §6.2 virtual-space sharing: immediate visibility of VM-image updates,
// the shared read lock around scans, the synchronous TLB shootdown on
// shrink/detach, and copy-on-write interactions between a group and its
// fork children.
#include <gtest/gtest.h>

#include <atomic>

#include "api/kernel.h"
#include "api/user_env.h"
#include "obs/stats.h"

namespace sg {
namespace {

void RunAsProcess(Kernel& k, std::function<void(Env&)> body) {
  auto pid = k.Launch([body = std::move(body)](Env& env, long) { body(env); });
  ASSERT_TRUE(pid.ok());
  k.WaitAll();
}

TEST(VmShare, MmapInOneMemberImmediatelyVisible) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    std::atomic<vaddr_t> addr{0};
    std::atomic<bool> done{false};
    env.Sproc(
        [&](Env& c, long) {
          vaddr_t a = c.Mmap(kPageSize);
          ASSERT_NE(a, 0u);
          c.Store32(a, 31337);
          addr = a;
          while (!done.load()) {
            c.Yield();
          }
        },
        PR_SADDR);
    while (addr.load() == 0) {
      env.Yield();
    }
    // "if one process adds a pregion (say through a mmap(2) call) all other
    // share group members will immediately see that new virtual region."
    EXPECT_EQ(env.Load32(addr.load()), 31337u);
    done = true;
    env.WaitChild();
  });
}

TEST(VmShare, SbrkGrowVisibleToAllMembers) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    const vaddr_t old_brk = env.Sbrk(0);
    ASSERT_NE(old_brk, 0u);
    std::atomic<bool> grown{false};
    std::atomic<u32> child_val{0};
    env.Sproc(
        [&](Env& c, long) {
          while (!grown.load()) {
            c.Yield();
          }
          // The parent grew the shared data region; by the time it returned
          // from sbrk every member sees the new pages.
          child_val = c.Load32(old_brk + 128);
        },
        PR_SADDR);
    ASSERT_EQ(env.Sbrk(static_cast<i64>(kPageSize)), old_brk);
    env.Store32(old_brk + 128, 777);
    grown = true;
    env.WaitChild();
    EXPECT_EQ(child_val.load(), 777u);
  });
}

TEST(VmShare, ShrinkPerformsSynchronousShootdown) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    env.Sproc([](Env& c, long) { (void)c; }, PR_SADDR);
    env.WaitChild();  // group existed; we are still the remaining member
    const u64 shoot_before = k.cpus().shootdowns();
    const vaddr_t brk = env.Sbrk(static_cast<i64>(4 * kPageSize));
    env.Store32(brk, 1);  // touch so frames exist
    ASSERT_NE(env.Sbrk(-static_cast<i64>(4 * kPageSize)), 0u);
    // "before shrinking or detaching a region, we synchronously flush the
    // TLBs for ALL processors."
    EXPECT_GT(k.cpus().shootdowns(), shoot_before);
    // The address is gone: a touch now raises SIGSEGV, which default-kills;
    // verify via a child so this process can observe it.
    pid_t pid = env.Sproc([brk](Env& c, long) { c.Store32(brk, 2); }, PR_SADDR);
    ASSERT_GT(pid, 0);
    int sig = 0;
    EXPECT_EQ(env.WaitChild(nullptr, &sig), pid);
    EXPECT_EQ(sig, kSigSegv);
  });
}

TEST(VmShare, MunmapShootsDownAndUnmaps) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    std::atomic<bool> hold{true};
    env.Sproc(
        [&](Env& c, long) {
          while (hold.load()) {
            c.Yield();
          }
        },
        PR_SADDR);
    vaddr_t a = env.Mmap(2 * kPageSize);
    ASSERT_NE(a, 0u);
    env.Store32(a, 5);
    const u64 shoot_before = k.cpus().shootdowns();
    EXPECT_EQ(env.Munmap(a), 0);
    EXPECT_GT(k.cpus().shootdowns(), shoot_before);
    hold = false;
    env.WaitChild();
  });
}

TEST(VmShare, ForkChildCowDoesNotLeakIntoGroup) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    vaddr_t a = env.Mmap(kPageSize);
    env.Store32(a, 100);
    env.Sproc([](Env&, long) {}, PR_SADDR);  // make it a real group
    env.WaitChild();
    pid_t pid = env.Fork([a](Env& c, long) {
      EXPECT_EQ(c.Load32(a), 100u);  // snapshot at fork
      c.Store32(a, 200);             // private COW copy
      EXPECT_EQ(c.Load32(a), 200u);
    });
    ASSERT_GT(pid, 0);
    env.WaitChild();
    EXPECT_EQ(env.Load32(a), 100u);  // group image untouched
  });
}

TEST(VmShare, GroupWriteAfterForkDoesNotLeakIntoChild) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    vaddr_t a = env.Mmap(kPageSize);
    env.Store32(a, 1);
    std::atomic<bool> parent_wrote{false};
    std::atomic<u32> child_saw{0};
    pid_t pid = env.Fork([&, a](Env& c, long) {
      while (!parent_wrote.load()) {
        c.Yield();
      }
      child_saw = c.Load32(a);  // must still be the snapshot value
    });
    ASSERT_GT(pid, 0);
    env.Store32(a, 2);  // breaks COW on the parent side
    parent_wrote = true;
    env.WaitChild();
    EXPECT_EQ(child_saw.load(), 1u);
    EXPECT_EQ(env.Load32(a), 2u);
  });
}

TEST(VmShare, SharedRegionCowBreakFlushesOtherMembers) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    vaddr_t a = env.Mmap(kPageSize);
    env.Store32(a, 10);
    env.Sproc([](Env&, long) {}, PR_SADDR);
    env.WaitChild();
    // Fork marks the group's pages COW. A member's write then replaces the
    // frame IN the shared page table; every member must see the new frame.
    std::atomic<bool> wrote{false};
    std::atomic<u32> other_saw{0};
    pid_t reader = env.Sproc(
        [&, a](Env& c, long) {
          (void)c.Load32(a);  // warm the TLB with the old frame
          while (!wrote.load()) {
            c.Yield();
          }
          other_saw = c.Load32(a);
        },
        PR_SADDR);
    ASSERT_GT(reader, 0);
    pid_t frozen = env.Fork([](Env& c, long) {
      while (true) {
        c.Yield();  // keep the COW twin alive; killed below
      }
    });
    ASSERT_GT(frozen, 0);
    env.Store32(a, 20);  // COW break inside the shared region
    wrote = true;
    env.WaitChild();  // reader
    EXPECT_EQ(other_saw.load(), 20u);
    env.Kill(frozen, kSigKill);
    env.WaitChild();
  });
}

TEST(VmShare, TlbMissesRefillThroughSharedList) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    env.Sproc([](Env&, long) {}, PR_SADDR);
    env.WaitChild();
    obs::Stats& stats = obs::Stats::Global();
    const u64 lockless_before = stats.CounterValue("vm.fault.lockless_hits");
    vaddr_t a = env.Mmap(8 * kPageSize);
    for (u64 i = 0; i < 8; ++i) {
      env.Store32(a + i * kPageSize, static_cast<u32>(i));
    }
    // Each first touch is a miss -> fault -> shared-image resolution. Since
    // PR 7 (DESIGN.md §4h) the resolution validates against the layout
    // seqcount instead of taking the group lock's read side; with no writer
    // racing, every one of these resolves on the lockless path.
    EXPECT_GE(stats.CounterValue("vm.fault.lockless_hits") - lockless_before, 8u);
    const u64 hits_before = env.proc().as.tlb().hits();
    for (u64 i = 0; i < 8; ++i) {
      EXPECT_EQ(env.Load32(a + i * kPageSize), static_cast<u32>(i));
    }
    // Refilled translations now hit.
    EXPECT_GE(env.proc().as.tlb().hits() - hits_before, 8u);
  });
}

TEST(VmShare, StackGrowsOnDemandUpToLimit) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    // Touch far below the current stack use but inside the max: demand zero.
    const vaddr_t deep = env.proc().stack_base + 8;
    env.Store32(deep, 9);
    EXPECT_EQ(env.Load32(deep), 9u);
    // Below the stack's floor: fault (verified via a child's death).
    pid_t pid = env.Sproc(
        [](Env& c, long) {
          const vaddr_t below = c.proc().stack_base - kPageSize;
          c.Store32(below, 1);
        },
        PR_SADDR);
    int sig = 0;
    EXPECT_EQ(env.WaitChild(nullptr, &sig), pid);
    EXPECT_EQ(sig, kSigSegv);
  });
}

TEST(VmShare, PrctlStackSizeControlsNewStacks) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    ASSERT_GT(env.Prctl(PR_SETSTACKSIZE, 8 * kPageSize), 0);
    std::atomic<u64> child_stack_pages{0};
    env.Sproc(
        [&](Env& c, long) {
          // PR_SETSTACKSIZE is inherited across sproc (§5.2).
          child_stack_pages = static_cast<u64>(c.Prctl(PR_GETSTACKSIZE)) / kPageSize;
          // The child's stack region is exactly the configured size: one
          // page above the top must fault... but we just check the size.
        },
        PR_SADDR);
    env.WaitChild();
    EXPECT_EQ(child_stack_pages.load(), 8u);
  });
}

TEST(VmShare, ManyMembersHammerSharedCounter) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    vaddr_t ctr = env.Mmap(kPageSize);
    constexpr int kMembers = 8;
    constexpr u32 kIncrements = 2000;
    for (int i = 0; i < kMembers; ++i) {
      ASSERT_GT(env.Sproc(
                    [ctr](Env& c, long) {
                      for (u32 n = 0; n < kIncrements; ++n) {
                        c.FetchAdd32(ctr, 1);
                      }
                    },
                    PR_SADDR),
                0);
    }
    for (int i = 0; i < kMembers; ++i) {
      ASSERT_GT(env.WaitChild(), 0);
    }
    EXPECT_EQ(env.Load32(ctr), kMembers * kIncrements);
  });
}

}  // namespace
}  // namespace sg
