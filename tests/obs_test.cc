// Observability subsystem (obs/): counter registry, per-CPU trace rings,
// and the synthetic /proc filesystem read through the ordinary fd path.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <string>
#include <vector>

#include "api/kernel.h"
#include "api/user_env.h"
#include "obs/stats.h"
#include "obs/trace.h"
#include "sync/lockdep.h"

namespace sg {
namespace {

// Reads the whole of `path` through open/read like any user program would.
std::string CatFile(Env& env, const std::string& path) {
  const int fd = env.Open(path, kOpenRead);
  if (fd < 0) {
    return {};
  }
  std::string out;
  std::byte buf[512];
  for (;;) {
    const i64 n = env.ReadBuf(fd, buf);
    if (n <= 0) {
      break;
    }
    out.append(reinterpret_cast<const char*>(buf), static_cast<size_t>(n));
  }
  env.Close(fd);
  return out;
}

// The value printed on the "name value" line of /proc/stat, or -1.
i64 StatLine(const std::string& text, const std::string& name) {
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t eol = text.find('\n', pos);
    const std::string line = text.substr(pos, eol - pos);
    if (line.size() > name.size() + 1 && line.compare(0, name.size(), name) == 0 &&
        line[name.size()] == ' ') {
      return std::stoll(line.substr(name.size() + 1));
    }
    if (eol == std::string::npos) {
      break;
    }
    pos = eol + 1;
  }
  return -1;
}

TEST(Stats, CountersMonotoneAcrossSprocRun) {
  // The registry is process-global, so sample before/after and require
  // growth — not absolute values (other tests in this binary also count).
  obs::Stats& s = obs::Stats::Global();
  const u64 sys0 = s.CounterValue("sys.entries");
  const u64 sproc0 = s.CounterValue("sys.sproc");
  const u64 faults0 = s.CounterValue("vm.faults");

  Kernel k;
  (void)k.Launch([&](Env& env, long) {
    vaddr_t buf = env.Mmap(kPageSize);
    ASSERT_NE(buf, 0u);
    env.Store32(buf, 7);  // at least one fault
    pid_t pid = env.Sproc([buf](Env& c, long) { c.Store32(buf + 4, 9); }, PR_SALL);
    ASSERT_GT(pid, 0);
    EXPECT_EQ(env.WaitChild(), pid);
  });
  k.WaitAll();

  EXPECT_GT(s.CounterValue("sys.entries"), sys0);
  EXPECT_GT(s.CounterValue("sys.sproc"), sproc0);
  EXPECT_GT(s.CounterValue("vm.faults"), faults0);
}

TEST(Stats, RenderTextListsRegisteredNames) {
  obs::Stats& s = obs::Stats::Global();
  s.counter("test.render_me").Inc(3);
  const std::string text = s.RenderText();
  EXPECT_GE(StatLine(text, "test.render_me"), 3);
}

TEST(TraceRing, OverflowKeepsNewestOldestFirst) {
  obs::TraceRing ring(8);
  for (u64 i = 0; i < 20; ++i) {
    obs::TraceEvent e;
    e.tick = i + 1;
    e.kind = static_cast<u16>(obs::TraceKind::kPageFault);
    ring.Emit(e);
  }
  EXPECT_EQ(ring.written(), 20u);
  EXPECT_EQ(ring.dropped(), 12u);
  const std::vector<obs::TraceEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 8u);
  // The 8 survivors are the newest (ticks 13..20), oldest first.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].tick, 13 + i) << "slot " << i;
  }
}

TEST(TraceBuffer, WorkloadEmitsKernelEvents) {
  obs::TraceBuffer& b = obs::TraceBuffer::Global();
  const u64 before = b.TotalWritten();
  Kernel k;
  (void)k.Launch([&](Env& env, long) {
    vaddr_t buf = env.Mmap(kPageSize);
    env.Store32(buf, 1);  // page fault → trace event
  });
  k.WaitAll();
  EXPECT_GT(b.TotalWritten(), before);
}

TEST(Procfs, StatusDistinguishesMemberFromNonMember) {
  Kernel k;
  std::atomic<bool> ok{true};
  (void)k.Launch([&](Env& env, long) {
    std::atomic<bool> gate{false};
    // A share-group member: its status must name the group id.
    pid_t member = env.Sproc(
        [&gate](Env& c, long) {
          while (!gate.load()) {
            c.Yield();
          }
        },
        PR_SALL);
    ASSERT_GT(member, 0);
    ShaddrBlock* blk = env.proc().shaddr;
    ASSERT_NE(blk, nullptr);
    const std::string gid = std::to_string(blk->id());

    // A plain fork child: no group.
    pid_t loner = env.Fork([&gate](Env& c, long) {
      while (!gate.load()) {
        c.Yield();
      }
    });
    ASSERT_GT(loner, 0);

    const std::string member_status =
        CatFile(env, "/proc/" + std::to_string(member) + "/status");
    const std::string loner_status =
        CatFile(env, "/proc/" + std::to_string(loner) + "/status");
    EXPECT_NE(member_status.find("group " + gid + "\n"), std::string::npos)
        << member_status;
    EXPECT_NE(loner_status.find("group -\n"), std::string::npos) << loner_status;

    // The group file lists both members of the share group.
    const std::string group_text = CatFile(env, "/proc/share/" + gid);
    EXPECT_NE(group_text.find("refcnt 2"), std::string::npos) << group_text;
    EXPECT_NE(group_text.find(std::to_string(member)), std::string::npos) << group_text;
    // The group's lock is named at creation, so its per-group counters show
    // both here and (as sharedlock.group<id>.*) in the global registry.
    EXPECT_NE(group_text.find("lock.name group" + gid + "\n"), std::string::npos) << group_text;
    EXPECT_NE(group_text.find("lock.read_slow "), std::string::npos) << group_text;
    EXPECT_NE(group_text.find("lock.update_wait.count "), std::string::npos) << group_text;
    EXPECT_NE(group_text.find("lock.update_wait.avg_ns "), std::string::npos) << group_text;
    EXPECT_GE(obs::Stats::Global().CounterValue("sharedlock.group" + gid + ".updates"), 1u);

    gate = true;
    env.WaitChild();
    env.WaitChild();
    if (::testing::Test::HasFailure()) {
      ok = false;
    }
  });
  k.WaitAll();
  EXPECT_TRUE(ok.load());
}

TEST(Procfs, DeadPidDirectoryDisappears) {
  Kernel k;
  (void)k.Launch([&](Env& env, long) {
    pid_t child = env.Fork([](Env&, long) {});
    ASSERT_GT(child, 0);
    ASSERT_EQ(env.WaitChild(), child);
    // After the reap, path resolution re-populates /proc and the dir is gone.
    const int fd = env.Open("/proc/" + std::to_string(child) + "/status", kOpenRead);
    EXPECT_LT(fd, 0);
    // But our own is present.
    const std::string self = CatFile(env, "/proc/" + std::to_string(env.Pid()) + "/status");
    EXPECT_NE(self.find("pid " + std::to_string(env.Pid())), std::string::npos) << self;
  });
  k.WaitAll();
}

TEST(Procfs, ListDirShowsStatAndShare) {
  Kernel k;
  (void)k.Launch([&](Env& env, long) {
    const std::vector<std::string> names = env.ListDir("/proc");
    EXPECT_NE(std::find(names.begin(), names.end(), "stat"), names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "share"), names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "lockdep"), names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), std::to_string(env.Pid())), names.end());
  });
  k.WaitAll();
}

// /proc/lockdep serves the validator's state dump: "lockdep: on" plus the
// class list in a lockdep build, an explanatory one-liner otherwise.
TEST(Procfs, LockdepNodeRendersValidatorState) {
  Kernel k;
  std::string text;
  (void)k.Launch([&](Env& env, long) { text = CatFile(env, "/proc/lockdep"); });
  k.WaitAll();
  if (lockdep::kEnabled) {
    EXPECT_NE(text.find("lockdep: on"), std::string::npos);
    // A named class registered by a lock the boot itself constructs.
    EXPECT_NE(text.find("physmem"), std::string::npos);
  } else {
    EXPECT_NE(text.find("lockdep: off"), std::string::npos);
  }
}

// The acceptance workload: a vm_sync-style run (share group + region
// shrink) must leave nonzero TLB-shootdown IPI and writer-wait-histogram
// entries visible in /proc/stat.
TEST(Procfs, VmSyncWorkloadShowsShootdownsInStat) {
  Kernel k;
  std::string stat_text;
  (void)k.Launch([&](Env& env, long) {
    constexpr int kSiblings = 3;
    std::atomic<int> running{0};
    std::atomic<bool> gate{false};
    for (int i = 0; i < kSiblings; ++i) {
      pid_t pid = env.Sproc(
          [&](Env& c, long) {
            running.fetch_add(1);
            vaddr_t r = c.Mmap(4 * kPageSize);
            ASSERT_NE(r, 0u);
            c.Store32(r, 1);
            c.Munmap(r);  // shrink of the shared space → shootdown (§6.2)
            while (!gate.load()) {
              c.Yield();
            }
          },
          PR_SALL);
      ASSERT_GT(pid, 0);
    }
    while (running.load() < kSiblings) {
      env.Yield();
    }
    gate = true;
    for (int i = 0; i < kSiblings; ++i) {
      env.WaitChild();
    }
    stat_text = CatFile(env, "/proc/stat");
  });
  k.WaitAll();

  EXPECT_GT(StatLine(stat_text, "tlb.shootdown_ipis"), 0) << stat_text;
  EXPECT_GT(StatLine(stat_text, "sharedlock.update_wait_ns.count"), 0) << stat_text;
  EXPECT_GT(StatLine(stat_text, "sys.entries"), 0);
}

}  // namespace
}  // namespace sg
