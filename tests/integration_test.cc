// Integration tests: end-to-end scenarios mirroring the example programs
// and the process-environment models of Figures 1-4.
#include <gtest/gtest.h>

#include <atomic>

#include "api/kernel.h"
#include "api/user_env.h"
#include "mach/task.h"

namespace sg {
namespace {

void RunAsProcess(Kernel& k, std::function<void(Env&)> body) {
  auto pid = k.Launch([body = std::move(body)](Env& env, long) { body(env); });
  ASSERT_TRUE(pid.ok());
  k.WaitAll();
}

// Figure 1 — the Version 7 model: fully independent processes, a shared
// filesystem, pipes as the only data path.
TEST(Figures, V7PipelineShellStyle) {
  Kernel k;
  std::atomic<int> total{0};
  RunAsProcess(k, [&](Env& env) {
    int p1r = -1, p1w = -1, p2r = -1, p2w = -1;
    ASSERT_EQ(env.Pipe(&p1r, &p1w), 0);
    ASSERT_EQ(env.Pipe(&p2r, &p2w), 0);
    // stage 1: produce numbers
    env.Fork([p1w, p1r, p2r, p2w](Env& c, long) {
      c.Close(p1r);
      c.Close(p2r);
      c.Close(p2w);
      for (u32 i = 1; i <= 10; ++i) {
        c.WriteBuf(p1w, std::as_bytes(std::span<const u32>(&i, 1)));
      }
      c.Close(p1w);
    });
    // stage 2: double them
    env.Fork([p1r, p1w, p2w, p2r](Env& c, long) {
      c.Close(p1w);
      c.Close(p2r);
      u32 v;
      while (c.ReadBuf(p1r, std::as_writable_bytes(std::span<u32>(&v, 1))) > 0) {
        v *= 2;
        c.WriteBuf(p2w, std::as_bytes(std::span<const u32>(&v, 1)));
      }
      c.Close(p2w);
      c.Close(p1r);
    });
    env.Close(p1r);
    env.Close(p1w);
    env.Close(p2w);
    // stage 3 (here): sum
    u32 v;
    while (env.ReadBuf(p2r, std::as_writable_bytes(std::span<u32>(&v, 1))) > 0) {
      total += static_cast<int>(v);
    }
    env.WaitChild();
    env.WaitChild();
  });
  EXPECT_EQ(total.load(), 110);  // 2 * (1 + ... + 10)
}

// Figure 2 — the System V model: unrelated processes rendezvous on SysV
// shared memory + semaphores.
TEST(Figures, SysVProducersConsumers) {
  Kernel k;
  std::atomic<u32> consumed_sum{0};
  auto producer = k.Launch([&](Env& env, long) {
    const int shm = env.Shmget(100, kPageSize);
    const int full = env.Semget(101, 0);
    const int empty = env.Semget(102, 1);
    const vaddr_t a = env.Shmat(shm);
    for (u32 i = 1; i <= 20; ++i) {
      ASSERT_EQ(env.SemOp(empty, -1), 0);
      env.Store32(a, i);
      ASSERT_EQ(env.SemOp(full, 1), 0);
    }
  });
  auto consumer = k.Launch([&](Env& env, long) {
    const int shm = env.Shmget(100, kPageSize);
    const int full = env.Semget(101, 0);
    const int empty = env.Semget(102, 1);
    const vaddr_t a = env.Shmat(shm);
    for (u32 i = 0; i < 20; ++i) {
      ASSERT_EQ(env.SemOp(full, -1), 0);
      consumed_sum += env.Load32(a);
      ASSERT_EQ(env.SemOp(empty, 1), 0);
    }
  });
  ASSERT_TRUE(producer.ok() && consumer.ok());
  k.WaitAll();
  EXPECT_EQ(consumed_sum.load(), 210u);
}

// Figure 3 — the Mach model: threads of control inside ONE task, sharing
// the whole context with no selectivity.
TEST(Figures, MachThreadsModel) {
  Kernel k;
  std::atomic<u32> result{0};
  RunAsProcess(k, [&](Env& env) {
    const vaddr_t a = env.Mmap(kPageSize);
    MachTask task(env.proc(), k.mem(), k.sched());
    for (int t = 0; t < 3; ++t) {
      auto tid = task.ThreadCreate([&, a](int me) {
        Env tenv(k, task.proc());
        tenv.FetchAdd32(a, static_cast<u32>(me));
      });
      ASSERT_TRUE(tid.ok());
    }
    task.JoinAll();
    result = env.Load32(a);
  });
  EXPECT_EQ(result.load(), 6u);  // tids 1+2+3
}

// Figure 4 — the IRIX model: one group, selective sharing per member.
TEST(Figures, IrixSelectiveSharing) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    const vaddr_t a = env.Mmap(kPageSize);
    env.Store32(a, 1);
    // Member A: shares VM only. Its descriptor table is a snapshot taken
    // at sproc (like fork); an fd the PARENT opens afterwards must not
    // appear in it.
    std::atomic<bool> a_saw_vm{false};
    std::atomic<bool> a_saw_late_fd{true};
    std::atomic<int> late_fd{-1};
    int fd = env.Open("/shared-file", kOpenRdwr | kOpenCreat);
    ASSERT_GE(fd, 0);
    env.Sproc(
        [&, a](Env& c, long) {
          a_saw_vm = (c.Load32(a) == 1);
          while (late_fd.load() < 0) {
            c.Yield();
          }
          char b[1];
          const i64 n =
              c.ReadBuf(late_fd.load(), std::as_writable_bytes(std::span<char>(b, 1)));
          a_saw_late_fd = !(n < 0 && c.LastError() == Errno::kEBADF);
        },
        PR_SADDR);
    late_fd = env.Open("/late-file", kOpenRdwr | kOpenCreat);
    ASSERT_GE(late_fd.load(), 0);
    env.WaitChild();
    env.Close(late_fd.load());
    EXPECT_TRUE(a_saw_vm.load());
    EXPECT_FALSE(a_saw_late_fd.load());  // fd table NOT shared for this member

    // Member B: shares descriptors only.
    std::atomic<bool> b_saw_fd{false};
    std::atomic<bool> b_saw_vm{true};
    env.Sproc(
        [&, a, fd](Env& c, long) {
          c.Store32(a, 99);  // writes its COW copy
          b_saw_vm = false;  // if the parent sees 99, VM leaked (checked below)
          char b[1];
          c.Lseek(fd, 0);
          b_saw_fd = (c.ReadBuf(fd, std::as_writable_bytes(std::span<char>(b, 1))) >= 0);
        },
        PR_SFDS);
    env.WaitChild();
    EXPECT_TRUE(b_saw_fd.load());
    EXPECT_EQ(env.Load32(a), 1u);  // B's VM writes stayed private
  });
}

// The async-I/O scheme of §4 in miniature (the full one is examples/async_io).
TEST(Scenarios, SharedFdOffsetCoordination) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    int fd = env.Open("/log", kOpenWrite | kOpenCreat);
    ASSERT_GE(fd, 0);
    constexpr int kWriters = 4;
    for (int w = 0; w < kWriters; ++w) {
      env.Sproc(
          [fd](Env& c, long idx) {
            char line[8];
            std::snprintf(line, sizeof(line), "w%ld\n", idx);
            for (int n = 0; n < 8; ++n) {
              // Shared open-file entry: the offset coordinates the writers.
              c.WriteBuf(fd, std::as_bytes(std::span<const char>(line, 3)));
            }
          },
          PR_SFDS | PR_SADDR, w);
    }
    for (int w = 0; w < kWriters; ++w) {
      env.WaitChild();
    }
    auto st = env.kernel().Stat(env.proc(), "/log");
    ASSERT_TRUE(st.ok());
    // No write tore or overwrote another: exact total length.
    EXPECT_EQ(st.value().size, static_cast<u64>(kWriters) * 8 * 3);
  });
}

// Self-scheduling worker pool (§3) at integration scale.
TEST(Scenarios, SelfSchedulingPoolComputesCorrectly) {
  Kernel k;
  std::atomic<u64> result{0};
  RunAsProcess(k, [&](Env& env) {
    constexpr u32 kN = 10000;
    const vaddr_t base = env.Mmap(8 * kPageSize);
    const vaddr_t cursor = base;
    const vaddr_t lock = base + 64;
    const vaddr_t sum = base + 128;
    for (int w = 0; w < 4; ++w) {
      env.Sproc(
          [base, cursor, lock, sum](Env& c, long) {
            u64 local = 0;
            for (;;) {
              const u32 i = c.FetchAdd32(cursor, 1);
              if (i >= kN) {
                break;
              }
              local += i;
            }
            c.SpinLock(lock);
            c.Store<u64>(sum, c.Load<u64>(sum) + local);
            c.SpinUnlock(lock);
          },
          PR_SADDR);
    }
    for (int w = 0; w < 4; ++w) {
      env.WaitChild();
    }
    result = env.Load<u64>(sum);
  });
  EXPECT_EQ(result.load(), u64{10000} * 9999 / 2);
}

// Group-wide chroot: a "service jail" for every member at once.
TEST(Scenarios, GroupChrootJail) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    env.Mkdir("/jail");
    ASSERT_GE(env.Open("/jail/inside", kOpenWrite | kOpenCreat), 0);
    ASSERT_GE(env.Open("/outside", kOpenWrite | kOpenCreat), 0);
    env.Sproc(
        [](Env& c, long) {
          ASSERT_EQ(c.Chroot("/jail"), 0);
          ASSERT_EQ(c.Chdir("/"), 0);
        },
        PR_SDIR | PR_SADDR);
    env.WaitChild();
    // We were re-rooted too.
    EXPECT_GE(env.Open("/inside", kOpenRead), 0);
    EXPECT_LT(env.Open("/outside", kOpenRead), 0);
    EXPECT_EQ(env.LastError(), Errno::kENOENT);
  });
}

// §8 extension: group priority actually reorders scheduling.
TEST(Scenarios, GroupPriorityPrctl) {
  BootParams bp;
  bp.ncpus = 1;
  Kernel k(bp);
  RunAsProcess(k, [&](Env& env) {
    std::atomic<bool> hold{true};
    env.Sproc(
        [&](Env& c, long) {
          while (hold.load()) {
            c.Yield();
          }
        },
        PR_SALL);
    const i64 members = env.Prctl(PR_SETGROUPPRI, 7);
    EXPECT_EQ(members, 2);
    EXPECT_EQ(env.proc().priority.load(), 7);
    hold = false;
    env.WaitChild();
    // Not in a group after everyone leaves? We still are (refcnt 1).
    EXPECT_EQ(env.Prctl(PR_SETGROUPPRI, 0), 1);
  });
  // Outside any group it is invalid.
  RunAsProcess(k, [&](Env& env) {
    EXPECT_LT(env.Prctl(PR_SETGROUPPRI, 3), 0);
    EXPECT_EQ(env.LastError(), Errno::kEINVAL);
  });
}

// Race-free sigpause (the syscall added for E6).
TEST(Scenarios, SigpauseDoesNotLoseWakeups) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    std::atomic<int> hits{0};
    std::atomic<bool> armed{false};
    pid_t pid = env.Fork([&](Env& c, long) {
      c.Signal(kSigUsr1, [&](int) { hits.fetch_add(1); });
      armed = true;
      for (int i = 0; i < 20; ++i) {
        while (hits.load() <= i) {
          c.Sigpause();
        }
      }
    });
    while (!armed.load()) {
      env.Yield();
    }
    for (int i = 0; i < 20; ++i) {
      env.Kill(pid, kSigUsr1);
      while (hits.load() <= i) {
        env.Yield();
      }
    }
    env.WaitChild();
    EXPECT_EQ(hits.load(), 20);
  });
}

}  // namespace
}  // namespace sg
