// Share-group lifecycle edges: member chains (Figure 5), teardown order,
// exits racing group operations, and resource accounting at the end.
#include <gtest/gtest.h>

#include <atomic>

#include "api/kernel.h"
#include "api/user_env.h"

namespace sg {
namespace {

void RunAsProcess(Kernel& k, std::function<void(Env&)> body) {
  auto pid = k.Launch([body = std::move(body)](Env& env, long) { body(env); });
  ASSERT_TRUE(pid.ok());
  k.WaitAll();
}

TEST(Teardown, MemberChainLinksAllMembers) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    std::atomic<int> hold{3};
    for (int i = 0; i < 3; ++i) {
      env.Sproc(
          [&](Env& c, long) {
            hold.fetch_sub(1);
            while (hold.load() > -1) {
              c.Yield();
            }
          },
          PR_SALL);
    }
    while (hold.load() != 0) {
      env.Yield();
    }
    // Figure 5: all members reachable through s_plink.
    int members = 0;
    env.proc().shaddr->ForEachMember([&](Proc&) { ++members; });
    EXPECT_EQ(members, 4);
    EXPECT_EQ(env.proc().shaddr->refcnt(), 4u);
    hold = -1;
    for (int i = 0; i < 3; ++i) {
      env.WaitChild();
    }
    EXPECT_EQ(env.proc().shaddr->refcnt(), 1u);
  });
  EXPECT_EQ(k.LiveBlocks(), 0u);
}

TEST(Teardown, CreatorExitsFirstGroupSurvives) {
  Kernel k;
  std::atomic<bool> child_ok{false};
  RunAsProcess(k, [&](Env& env) {
    vaddr_t buf = env.Mmap(kPageSize);
    env.Store32(buf, 10);
    env.Sproc(
        [&, buf](Env& c, long) {
          // Outlive the creator; the shared image must remain intact
          // because the block (not the creator) owns it.
          while (c.Ppid() != 0) {
            c.Yield();  // reparented to the kernel when the parent dies
          }
          child_ok = (c.Load32(buf) == 10);
        },
        PR_SADDR);
    env.Exit(0);  // leave before the child
  });
  EXPECT_TRUE(child_ok.load());
  EXPECT_EQ(k.LiveBlocks(), 0u);
}

TEST(Teardown, ExitedMemberStackIsReclaimed) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    std::atomic<vaddr_t> child_stack{0};
    env.Sproc(
        [&](Env& c, long) {
          c.Store32(c.proc().stack_base, 1);
          child_stack = c.proc().stack_base;
        },
        PR_SADDR);
    env.WaitChild();
    // The dead member's stack was detached (with a shootdown); the range is
    // unmapped now — probe through the VM directly (a new sproc would get
    // the same VA range back and mask the check).
    EXPECT_EQ(sg::Store<u32>(env.proc().as, child_stack.load(), 2).error(), Errno::kEFAULT);
  });
}

TEST(Teardown, StackVaReusedAfterMemberExit) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    std::atomic<vaddr_t> first_stack{0};
    env.Sproc([&](Env& c, long) { first_stack = c.proc().stack_base; }, PR_SADDR);
    env.WaitChild();
    std::atomic<vaddr_t> second_stack{0};
    env.Sproc([&](Env& c, long) { second_stack = c.proc().stack_base; }, PR_SADDR);
    env.WaitChild();
    // The VA range freed by the dead member is available again.
    EXPECT_EQ(first_stack.load(), second_stack.load());
  });
}

TEST(Teardown, ManyGroupsIndependent) {
  Kernel k;
  constexpr int kGroups = 5;
  std::atomic<int> done{0};
  for (int g = 0; g < kGroups; ++g) {
    auto pid = k.Launch([&, g](Env& env, long) {
      vaddr_t buf = env.Mmap(kPageSize);
      env.Store32(buf, static_cast<u32>(g));
      env.Sproc(
          [&, buf, g](Env& c, long) { EXPECT_EQ(c.Load32(buf), static_cast<u32>(g)); },
          PR_SADDR);
      env.WaitChild();
      done.fetch_add(1);
    });
    ASSERT_TRUE(pid.ok());
  }
  k.WaitAll();
  EXPECT_EQ(done.load(), kGroups);
  EXPECT_EQ(k.LiveBlocks(), 0u);
}

TEST(Teardown, KilledMemberCleansUp) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    std::atomic<pid_t> member{0};
    env.Sproc(
        [&](Env& c, long) {
          member = c.Pid();
          while (true) {
            c.Yield();
          }
        },
        PR_SALL);
    while (member.load() == 0) {
      env.Yield();
    }
    EXPECT_EQ(env.proc().shaddr->refcnt(), 2u);
    env.Kill(member.load(), kSigKill);
    int sig = 0;
    EXPECT_EQ(env.WaitChild(nullptr, &sig), member.load());
    EXPECT_EQ(sig, kSigKill);
    EXPECT_EQ(env.proc().shaddr->refcnt(), 1u);
  });
  EXPECT_EQ(k.LiveBlocks(), 0u);
  EXPECT_EQ(k.vfs().files().Count(), 0u);
}

TEST(Teardown, NoFrameLeaksAfterGroupLife) {
  Kernel k;
  const u64 free_at_boot = k.mem().FreeFrames();
  RunAsProcess(k, [&](Env& env) {
    vaddr_t buf = env.Mmap(16 * kPageSize);
    for (int i = 0; i < 16; ++i) {
      env.Store32(buf + static_cast<u64>(i) * kPageSize, 1);
    }
    for (int i = 0; i < 4; ++i) {
      env.Sproc(
          [buf](Env& c, long) {
            for (int j = 0; j < 16; ++j) {
              c.FetchAdd32(buf + static_cast<u64>(j) * kPageSize, 1);
            }
          },
          PR_SALL);
    }
    for (int i = 0; i < 4; ++i) {
      env.WaitChild();
    }
  });
  // Every frame — stacks, PRDAs, data, arena — returned to the allocator.
  EXPECT_EQ(k.mem().FreeFrames(), free_at_boot);
}

TEST(Teardown, GroupOfTwoGenerations) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    vaddr_t buf = env.Mmap(kPageSize);
    env.Sproc(
        [buf](Env& c, long) {
          // A member sprocs its own child into the SAME group.
          c.Sproc([buf](Env& g, long) { g.Store32(buf, 99); }, PR_SADDR);
          c.WaitChild();
        },
        PR_SADDR);
    env.WaitChild();
    EXPECT_EQ(env.Load32(buf), 99u);
  });
  EXPECT_EQ(k.LiveBlocks(), 0u);
}

}  // namespace
}  // namespace sg
