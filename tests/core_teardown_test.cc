// Share-group lifecycle edges: member chains (Figure 5), teardown order,
// exits racing group operations, and resource accounting at the end.
#include <gtest/gtest.h>

#include <atomic>
#include <string>

#include "api/kernel.h"
#include "api/user_env.h"
#include "inject/inject.h"

namespace sg {
namespace {

void RunAsProcess(Kernel& k, std::function<void(Env&)> body) {
  auto pid = k.Launch([body = std::move(body)](Env& env, long) { body(env); });
  ASSERT_TRUE(pid.ok());
  k.WaitAll();
}

TEST(Teardown, MemberChainLinksAllMembers) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    std::atomic<int> hold{3};
    for (int i = 0; i < 3; ++i) {
      env.Sproc(
          [&](Env& c, long) {
            hold.fetch_sub(1);
            while (hold.load() > -1) {
              c.Yield();
            }
          },
          PR_SALL);
    }
    while (hold.load() != 0) {
      env.Yield();
    }
    // Figure 5: all members reachable through s_plink.
    int members = 0;
    env.proc().shaddr->ForEachMember([&](Proc&) { ++members; });
    EXPECT_EQ(members, 4);
    EXPECT_EQ(env.proc().shaddr->refcnt(), 4u);
    hold = -1;
    for (int i = 0; i < 3; ++i) {
      env.WaitChild();
    }
    EXPECT_EQ(env.proc().shaddr->refcnt(), 1u);
  });
  EXPECT_EQ(k.LiveBlocks(), 0u);
}

TEST(Teardown, CreatorExitsFirstGroupSurvives) {
  Kernel k;
  std::atomic<bool> child_ok{false};
  RunAsProcess(k, [&](Env& env) {
    vaddr_t buf = env.Mmap(kPageSize);
    env.Store32(buf, 10);
    env.Sproc(
        [&, buf](Env& c, long) {
          // Outlive the creator; the shared image must remain intact
          // because the block (not the creator) owns it.
          while (c.Ppid() != 0) {
            c.Yield();  // reparented to the kernel when the parent dies
          }
          child_ok = (c.Load32(buf) == 10);
        },
        PR_SADDR);
    env.Exit(0);  // leave before the child
  });
  EXPECT_TRUE(child_ok.load());
  EXPECT_EQ(k.LiveBlocks(), 0u);
}

TEST(Teardown, ExitedMemberStackIsReclaimed) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    std::atomic<vaddr_t> child_stack{0};
    env.Sproc(
        [&](Env& c, long) {
          c.Store32(c.proc().stack_base, 1);
          child_stack = c.proc().stack_base;
        },
        PR_SADDR);
    env.WaitChild();
    // The dead member's stack was detached (with a shootdown); the range is
    // unmapped now — probe through the VM directly (a new sproc would get
    // the same VA range back and mask the check).
    EXPECT_EQ(sg::Store<u32>(env.proc().as, child_stack.load(), 2).error(), Errno::kEFAULT);
  });
}

TEST(Teardown, StackVaReusedAfterMemberExit) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    std::atomic<vaddr_t> first_stack{0};
    env.Sproc([&](Env& c, long) { first_stack = c.proc().stack_base; }, PR_SADDR);
    env.WaitChild();
    std::atomic<vaddr_t> second_stack{0};
    env.Sproc([&](Env& c, long) { second_stack = c.proc().stack_base; }, PR_SADDR);
    env.WaitChild();
    // The VA range freed by the dead member is available again.
    EXPECT_EQ(first_stack.load(), second_stack.load());
  });
}

TEST(Teardown, ManyGroupsIndependent) {
  Kernel k;
  constexpr int kGroups = 5;
  std::atomic<int> done{0};
  for (int g = 0; g < kGroups; ++g) {
    auto pid = k.Launch([&, g](Env& env, long) {
      vaddr_t buf = env.Mmap(kPageSize);
      env.Store32(buf, static_cast<u32>(g));
      env.Sproc(
          [&, buf, g](Env& c, long) { EXPECT_EQ(c.Load32(buf), static_cast<u32>(g)); },
          PR_SADDR);
      env.WaitChild();
      done.fetch_add(1);
    });
    ASSERT_TRUE(pid.ok());
  }
  k.WaitAll();
  EXPECT_EQ(done.load(), kGroups);
  EXPECT_EQ(k.LiveBlocks(), 0u);
}

TEST(Teardown, KilledMemberCleansUp) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    std::atomic<pid_t> member{0};
    env.Sproc(
        [&](Env& c, long) {
          member = c.Pid();
          while (true) {
            c.Yield();
          }
        },
        PR_SALL);
    while (member.load() == 0) {
      env.Yield();
    }
    EXPECT_EQ(env.proc().shaddr->refcnt(), 2u);
    env.Kill(member.load(), kSigKill);
    int sig = 0;
    EXPECT_EQ(env.WaitChild(nullptr, &sig), member.load());
    EXPECT_EQ(sig, kSigKill);
    EXPECT_EQ(env.proc().shaddr->refcnt(), 1u);
  });
  EXPECT_EQ(k.LiveBlocks(), 0u);
  EXPECT_EQ(k.vfs().files().Count(), 0u);
}

TEST(Teardown, NoFrameLeaksAfterGroupLife) {
  Kernel k;
  const u64 free_at_boot = k.mem().FreeFrames();
  RunAsProcess(k, [&](Env& env) {
    vaddr_t buf = env.Mmap(16 * kPageSize);
    for (int i = 0; i < 16; ++i) {
      env.Store32(buf + static_cast<u64>(i) * kPageSize, 1);
    }
    for (int i = 0; i < 4; ++i) {
      env.Sproc(
          [buf](Env& c, long) {
            for (int j = 0; j < 16; ++j) {
              c.FetchAdd32(buf + static_cast<u64>(j) * kPageSize, 1);
            }
          },
          PR_SALL);
    }
    for (int i = 0; i < 4; ++i) {
      env.WaitChild();
    }
  });
  // Every frame — stacks, PRDAs, data, arena — returned to the allocator.
  EXPECT_EQ(k.mem().FreeFrames(), free_at_boot);
}

#if defined(SG_INJECT_ENABLED)

// Seeded replays of schedules (lifecycle_storm_test harness) that crossed
// the §6 teardown windows. The seed is part of the test name so a future
// regression points straight at the schedule that found it.

// Seed 0x5EED0001: PR_JOINGROUP racing the last member's exit. Before the
// attach-vs-last-detach fix, TryAddMember could observe the draining
// block between its refcnt_ drop-to-zero and the unlink, resurrect it,
// and leave the joiner attached to a freed block. The fixed protocol
// publishes identity before linking, refuses a block whose refcount
// already hit zero (drop-to-zero and unlink are atomic under s_listlock),
// and undoes the identity publish when it backs out.
TEST(TeardownReplay, JoinRacesLastExit_Seed0x5EED0001) {
  inject::PlanConfig cfg;
  cfg.yield_ppm = 400000;
  cfg.delay_ppm = 300000;
  inject::InjectionPlan plan(0x5EED0001ull, cfg);
  Kernel k;
  {
    inject::ScopedInjection active(plan);
    for (int round = 0; round < 24; ++round) {
      // A short-lived group: the member exits immediately, then the
      // creator — teardown begins at once.
      auto root = k.Launch([](Env& env, long) {
        if (env.Sproc([](Env&, long) {}, PR_SALL) >= 0) {
          env.WaitChild();
        }
      });
      ASSERT_TRUE(root.ok());
      // An unrelated process hammers PR_JOINGROUP at the dying group.
      auto joiner = k.Launch([target = root.value()](Env& env, long) {
        for (int i = 0; i < 6; ++i) {
          (void)env.Prctl(PR_JOINGROUP, target);
          env.Yield();
        }
      });
      ASSERT_TRUE(joiner.ok());
      k.WaitAll();
      ASSERT_EQ(k.LiveBlocks(), 0u);
    }
  }
  EXPECT_GT(plan.decisions(), 0u);
}

// Seed 0x5EED0002: exec(2) of a PR_SALL member while its siblings churn
// the shared fd table. Exec must fully detach (member unlink, shared
// pregion hint invalidation, TLB generation bump) BEFORE overlaying the
// private image; the injection points kernel.exec.pre/post_detach widen
// exactly that window.
TEST(TeardownReplay, ExecDetachRacesFdChurn_Seed0x5EED0002) {
  inject::PlanConfig cfg;
  cfg.yield_ppm = 400000;
  cfg.delay_ppm = 300000;
  inject::InjectionPlan plan(0x5EED0002ull, cfg);
  Kernel k;
  const u64 free_at_boot = k.mem().FreeFrames();
  {
    inject::ScopedInjection active(plan);
    for (int round = 0; round < 16; ++round) {
      auto root = k.Launch([](Env& env, long) {
        std::atomic<bool> execed{false};
        pid_t m = env.Sproc(
            [&](Env& c, long) {
              Image img;
              img.main = [&execed](Env&, long) { execed = true; };
              c.Exec(img);
            },
            PR_SALL);
        // Churn the shared table while the member detaches.
        for (int i = 0; i < 8; ++i) {
          int fd = env.Open("/churn", kOpenRdwr | kOpenCreat);
          if (fd >= 0) {
            env.Close(fd);
          }
        }
        if (m >= 0) {
          env.WaitChild();
          EXPECT_TRUE(execed.load());
          // The exec'd process left the group before the overlay.
          EXPECT_EQ(env.proc().shaddr->refcnt(), 1u);
        }
      });
      ASSERT_TRUE(root.ok());
      k.WaitAll();
      ASSERT_EQ(k.LiveBlocks(), 0u);
    }
  }
  EXPECT_EQ(k.mem().FreeFrames(), free_at_boot);
}

// Seed 0x5EED0003: /proc/share/<gid> reads racing group teardown. The
// reader snapshots member and fd-table state through the same paths
// (refcnt, OfileCount) the dying group is tearing down; before the fd
// swap went under s_rupdlock this was a use-after-free of the master
// table's backing store.
TEST(TeardownReplay, ProcShareReadRacesTeardown_Seed0x5EED0003) {
  inject::PlanConfig cfg;
  cfg.yield_ppm = 400000;
  cfg.delay_ppm = 300000;
  inject::InjectionPlan plan(0x5EED0003ull, cfg);
  Kernel k;
  {
    inject::ScopedInjection active(plan);
    for (int round = 0; round < 12; ++round) {
      auto group = k.Launch([](Env& env, long) {
        if (env.Sproc(
                [](Env& c, long) {
                  for (int i = 0; i < 6; ++i) {
                    int fd = c.Open("/g", kOpenRdwr | kOpenCreat);
                    if (fd >= 0) {
                      c.Close(fd);
                    }
                  }
                },
                PR_SALL) >= 0) {
          env.WaitChild();
        }
      });
      ASSERT_TRUE(group.ok());
      auto reader = k.Launch([](Env& env, long) {
        for (int i = 0; i < 6; ++i) {
          for (const std::string& name : env.ListDir("/proc/share")) {
            int fd = env.Open("/proc/share/" + name, kOpenRead);
            if (fd >= 0) {
              std::byte buf[512];
              (void)env.ReadBuf(fd, buf);
              env.Close(fd);
            }
          }
        }
      });
      ASSERT_TRUE(reader.ok());
      k.WaitAll();
      ASSERT_EQ(k.LiveBlocks(), 0u);
    }
  }
  EXPECT_GT(plan.decisions(), 0u);
}

#endif  // SG_INJECT_ENABLED

TEST(Teardown, GroupOfTwoGenerations) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    vaddr_t buf = env.Mmap(kPageSize);
    env.Sproc(
        [buf](Env& c, long) {
          // A member sprocs its own child into the SAME group.
          c.Sproc([buf](Env& g, long) { g.Store32(buf, 99); }, PR_SADDR);
          c.WaitChild();
        },
        PR_SADDR);
    env.WaitChild();
    EXPECT_EQ(env.Load32(buf), 99u);
  });
  EXPECT_EQ(k.LiveBlocks(), 0u);
}

}  // namespace
}  // namespace sg
