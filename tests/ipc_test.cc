// System V IPC baselines: shared-memory segments across unrelated
// processes, kernel semaphores (semop semantics, EIDRM), message queues,
// and the user-level busy-wait locks built on shared memory.
#include <gtest/gtest.h>

#include <atomic>

#include "api/kernel.h"
#include "api/user_env.h"

namespace sg {
namespace {

void RunAsProcess(Kernel& k, std::function<void(Env&)> body) {
  auto pid = k.Launch([body = std::move(body)](Env& env, long) { body(env); });
  ASSERT_TRUE(pid.ok());
  k.WaitAll();
}

TEST(SysvShm, SharedAcrossFork) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    int id = env.Shmget(7, 2 * kPageSize);
    ASSERT_GE(id, 0);
    vaddr_t a = env.Shmat(id);
    ASSERT_NE(a, 0u);
    env.Store32(a, 5);
    // Unlike anonymous memory, a SysV segment stays genuinely shared
    // across fork — the Beck & Olien process-pool pattern depends on it.
    env.Fork([a](Env& c, long) {
      EXPECT_EQ(c.Load32(a), 5u);
      c.Store32(a, 6);
    });
    env.WaitChild();
    EXPECT_EQ(env.Load32(a), 6u);
  });
}

TEST(SysvShm, KeyLookupFindsSameSegment) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    int id1 = env.Shmget(42, kPageSize);
    int id2 = env.Shmget(42, kPageSize);
    EXPECT_EQ(id1, id2);
    int id3 = env.Shmget(0, kPageSize);  // key 0: always fresh
    EXPECT_NE(id1, id3);
    // Asking for more than the existing segment is an error.
    EXPECT_LT(env.Shmget(42, 10 * kPageSize), 0);
    EXPECT_EQ(env.LastError(), Errno::kEINVAL);
  });
}

TEST(SysvShm, TwoUnrelatedProcessesShare) {
  Kernel k;
  std::atomic<u32> got{0};
  auto p1 = k.Launch([&](Env& env, long) {
    int id = env.Shmget(9, kPageSize);
    vaddr_t a = env.Shmat(id);
    // Shm pages are demand-zero; writing an explicit 0 here would race
    // p2's flag store (p2 can finish before we attach) and wipe it.
    while (env.AtomicRead32(a) != 77) {
      env.Yield();
    }
    got = env.Load32(a + 4);
  });
  auto p2 = k.Launch([&](Env& env, long) {
    int id = env.Shmget(9, kPageSize);
    vaddr_t a = env.Shmat(id);
    env.Store32(a + 4, 88);
    env.AtomicWrite32(a, 77);
  });
  ASSERT_TRUE(p1.ok() && p2.ok());
  k.WaitAll();
  EXPECT_EQ(got.load(), 88u);
}

TEST(SysvShm, DetachAndRemove) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    int id = env.Shmget(0, kPageSize);
    vaddr_t a = env.Shmat(id);
    env.Store32(a, 1);
    EXPECT_EQ(env.Shmdt(a), 0);
    // Address gone; remove the id too.
    EXPECT_EQ(env.kernel().ShmRemove(env.proc(), id).ok(), true);
    EXPECT_EQ(env.Shmat(id), 0u);
    EXPECT_EQ(env.LastError(), Errno::kEIDRM);
  });
}

TEST(SysvSemaphore, PingPong) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    int ping = env.Semget(0, 0);
    int pong = env.Semget(0, 0);
    std::atomic<int> rounds{0};
    env.Fork([&, ping, pong](Env& c, long) {
      for (int i = 0; i < 50; ++i) {
        ASSERT_EQ(c.SemOp(ping, -1), 0);
        rounds.fetch_add(1);
        ASSERT_EQ(c.SemOp(pong, 1), 0);
      }
    });
    for (int i = 0; i < 50; ++i) {
      ASSERT_EQ(env.SemOp(ping, 1), 0);
      ASSERT_EQ(env.SemOp(pong, -1), 0);
    }
    env.WaitChild();
    EXPECT_EQ(rounds.load(), 50);
  });
}

TEST(SysvSemaphore, RemoveWakesSleepersWithEidrm) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    int sem = env.Semget(0, 0);
    std::atomic<int> err{0};
    env.Fork([&, sem](Env& c, long) {
      int r = c.SemOp(sem, -1);
      EXPECT_LT(r, 0);
      err = static_cast<int>(c.LastError());
    });
    for (int i = 0; i < 10; ++i) {
      env.Yield();
    }
    EXPECT_EQ(env.kernel().SemRemove(env.proc(), sem).ok(), true);
    env.WaitChild();
    EXPECT_EQ(err.load(), static_cast<int>(Errno::kEIDRM));
  });
}

TEST(SysvSemaphore, MultiUnitOps) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    int sem = env.Semget(0, 5);
    EXPECT_EQ(env.SemOp(sem, -3), 0);  // 5 -> 2
    std::atomic<bool> acquired{false};
    env.Fork([&, sem](Env& c, long) {
      ASSERT_EQ(c.SemOp(sem, -4), 0);  // needs 4: blocks until V(2)
      acquired = true;
    });
    for (int i = 0; i < 10; ++i) {
      env.Yield();
    }
    EXPECT_FALSE(acquired.load());
    EXPECT_EQ(env.SemOp(sem, 2), 0);  // 2 -> 4: releases the sleeper
    env.WaitChild();
    EXPECT_TRUE(acquired.load());
    EXPECT_LT(env.SemOp(sem, 0), 0);  // wait-for-zero unsupported
  });
}

TEST(SysvMsg, QueueRoundTripAndFifoOrder) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    int q = env.Msgget(0);
    const char m1[] = "first";
    const char m2[] = "second";
    ASSERT_EQ(env.Msgsnd(q, std::as_bytes(std::span<const char>(m1, 5))), 0);
    ASSERT_EQ(env.Msgsnd(q, std::as_bytes(std::span<const char>(m2, 6))), 0);
    char buf[16];
    auto out = std::as_writable_bytes(std::span<char>(buf, sizeof(buf)));
    EXPECT_EQ(env.Msgrcv(q, out), 5);
    EXPECT_EQ(std::string_view(buf, 5), "first");
    EXPECT_EQ(env.Msgrcv(q, out), 6);
    EXPECT_EQ(std::string_view(buf, 6), "second");
  });
}

TEST(SysvMsg, ReceiverBlocksUntilSend) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    int q = env.Msgget(0);
    std::atomic<i64> got{-2};
    env.Fork([&, q](Env& c, long) {
      char buf[8];
      got = c.Msgrcv(q, std::as_writable_bytes(std::span<char>(buf, sizeof(buf))));
    });
    for (int i = 0; i < 10; ++i) {
      env.Yield();
    }
    EXPECT_EQ(got.load(), -2);  // still blocked
    const char m[] = "x";
    ASSERT_EQ(env.Msgsnd(q, std::as_bytes(std::span<const char>(m, 1))), 0);
    env.WaitChild();
    EXPECT_EQ(got.load(), 1);
  });
}

TEST(SysvMsg, TooSmallBufferReportsE2Big) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    int q = env.Msgget(0);
    const char m[] = "longish";
    ASSERT_EQ(env.Msgsnd(q, std::as_bytes(std::span<const char>(m, 7))), 0);
    char tiny[2];
    EXPECT_LT(env.Msgrcv(q, std::as_writable_bytes(std::span<char>(tiny, 2))), 0);
    EXPECT_EQ(env.LastError(), Errno::kE2BIG);
  });
}

TEST(UserLock, SpinLockExcludesAcrossGroup) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    vaddr_t lock = env.Mmap(kPageSize);
    vaddr_t data = lock + 64;
    constexpr int kMembers = 4;
    constexpr int kRounds = 500;
    for (int i = 0; i < kMembers; ++i) {
      env.Sproc(
          [lock, data](Env& c, long) {
            for (int n = 0; n < kRounds; ++n) {
              c.SpinLock(lock);
              // Non-atomic read-modify-write protected by the lock.
              c.Store32(data, c.Load32(data) + 1);
              c.SpinUnlock(lock);
            }
          },
          PR_SADDR);
    }
    for (int i = 0; i < kMembers; ++i) {
      env.WaitChild();
    }
    EXPECT_EQ(env.Load32(data), kMembers * kRounds);
  });
}

TEST(UserLock, BarrierSynchronizesPhases) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    vaddr_t bar = env.Mmap(kPageSize);
    vaddr_t flags = bar + 64;
    constexpr u32 kParties = 4;  // 3 children + parent
    std::atomic<bool> phase_error{false};
    for (u32 i = 0; i < kParties - 1; ++i) {
      env.Sproc(
          [&, bar, flags](Env& c, long idx) {
            c.Store32(flags + 4 * static_cast<vaddr_t>(idx), 1);
            c.SpinBarrier(bar, kParties);
            // After the barrier every flag must be visible.
            for (u32 j = 0; j < kParties - 1; ++j) {
              if (c.Load32(flags + 4 * j) != 1) {
                phase_error = true;
              }
            }
          },
          PR_SADDR, static_cast<long>(i));
    }
    env.SpinBarrier(bar, kParties);
    for (u32 j = 0; j < kParties - 1; ++j) {
      EXPECT_EQ(env.Load32(flags + 4 * j), 1u);
    }
    for (u32 i = 0; i < kParties - 1; ++i) {
      env.WaitChild();
    }
    EXPECT_FALSE(phase_error.load());
  });
}

}  // namespace
}  // namespace sg
