// Tests for the runtime lock-discipline validator (sync/lockdep.*).
//
// Every test here is a positive/negative proof of the two checks the
// validator implements:
//   1. acquisition-order cycles (AB/BA inversion across threads or within
//      one thread) are reported the moment the closing edge appears;
//   2. declaring sleep intent (Semaphore::P and friends) while holding a
//      spinlock is reported.
// Plus the "clean protocol" case: the kernel's real lock nesting produces
// zero reports.
//
// Compiled into every build; each case skips when the validator is off
// (the hooks compile to nothing), so the default-ctest run stays green
// while the lockdep preset proves the machinery.
#include "sync/lockdep.h"

#include <gtest/gtest.h>

#include <thread>

#include "sync/semaphore.h"
#include "sync/spinlock.h"

namespace sg {
namespace {

class LockdepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!lockdep::kEnabled) {
      GTEST_SKIP() << "lockdep off (build with -DSG_LOCKDEP=ON)";
    }
    lockdep::ResetForTest();
  }
  void TearDown() override {
    if (lockdep::kEnabled) {
      lockdep::ResetForTest();
    }
  }
};

TEST_F(LockdepTest, NestedSameOrderIsClean) {
  Spinlock a("test.order_a");
  Spinlock b("test.order_b");
  for (int i = 0; i < 3; ++i) {
    a.Lock();
    b.Lock();
    b.Unlock();
    a.Unlock();
  }
  EXPECT_EQ(lockdep::Reports(), 0u);
}

TEST_F(LockdepTest, BothOrdersReportCycle) {
  Spinlock a("test.cycle_a");
  Spinlock b("test.cycle_b");
  // a -> b recorded...
  a.Lock();
  b.Lock();
  b.Unlock();
  a.Unlock();
  EXPECT_EQ(lockdep::Reports(), 0u);
  // ...then b -> a closes the cycle. Single-threaded on purpose: the graph
  // is over lock *classes*, so the inversion is visible without ever
  // constructing the deadlock itself.
  b.Lock();
  a.Lock();
  a.Unlock();
  b.Unlock();
  EXPECT_EQ(lockdep::Reports(), 1u);
  const std::string report = lockdep::RenderReport();
  EXPECT_NE(report.find("test.cycle_a"), std::string::npos);
  EXPECT_NE(report.find("test.cycle_b"), std::string::npos);
}

TEST_F(LockdepTest, CycleReportedOncePerEdge) {
  Spinlock a("test.once_a");
  Spinlock b("test.once_b");
  a.Lock();
  b.Lock();
  b.Unlock();
  a.Unlock();
  for (int i = 0; i < 5; ++i) {
    b.Lock();
    a.Lock();
    a.Unlock();
    b.Unlock();
  }
  EXPECT_EQ(lockdep::Reports(), 1u);
}

TEST_F(LockdepTest, CrossThreadInversionReports) {
  Spinlock a("test.xthread_a");
  Spinlock b("test.xthread_b");
  {
    // Thread 1 records a -> b; thread 2 (joined, so no actual deadlock
    // risk) records b -> a.
    std::thread t1([&] {
      a.Lock();
      b.Lock();
      b.Unlock();
      a.Unlock();
    });
    t1.join();
    std::thread t2([&] {
      b.Lock();
      a.Lock();
      a.Unlock();
      b.Unlock();
    });
    t2.join();
  }
  EXPECT_EQ(lockdep::Reports(), 1u);
}

TEST_F(LockdepTest, ThreeLockCycleReports) {
  Spinlock a("test.tri_a");
  Spinlock b("test.tri_b");
  Spinlock c("test.tri_c");
  auto pair = [](Spinlock& first, Spinlock& second) {
    first.Lock();
    second.Lock();
    second.Unlock();
    first.Unlock();
  };
  pair(a, b);
  pair(b, c);
  EXPECT_EQ(lockdep::Reports(), 0u);
  pair(c, a);  // closes a -> b -> c -> a
  EXPECT_EQ(lockdep::Reports(), 1u);
}

TEST_F(LockdepTest, SleepUnderSpinlockReports) {
  Spinlock spin("test.sleep_spin");
  Semaphore sema{1};
  {
    SpinGuard g(spin);
    (void)sema.TryP();  // TryP never sleeps: must NOT report
  }
  sema.V();
  EXPECT_EQ(lockdep::Reports(), 0u);
  {
    SpinGuard g(spin);
    (void)sema.P();  // declares sleep intent while test.sleep_spin is held
  }
  sema.V();
  EXPECT_EQ(lockdep::Reports(), 1u);
  EXPECT_NE(lockdep::RenderReport().find("test.sleep_spin"), std::string::npos);
}

TEST_F(LockdepTest, SleepSiteReportedOnce) {
  Spinlock spin("test.sleep_once");
  Semaphore sema{3};
  for (int i = 0; i < 3; ++i) {
    SpinGuard g(spin);
    (void)sema.P();
  }
  EXPECT_EQ(lockdep::Reports(), 1u);
}

TEST_F(LockdepTest, SleepWithNoSpinlockHeldIsClean) {
  Semaphore sema{1};
  (void)sema.P();
  sema.V();
  EXPECT_EQ(lockdep::Reports(), 0u);
}

TEST_F(LockdepTest, HeldCountTracksStack) {
  Spinlock a("test.held_a");
  Spinlock b("test.held_b");
  EXPECT_EQ(lockdep::HeldCount(), 0u);
  a.Lock();
  EXPECT_EQ(lockdep::HeldCount(), 1u);
  b.Lock();
  EXPECT_EQ(lockdep::HeldCount(), 2u);
  // Out-of-stack-order release is legal (the validator unwinds the entry
  // wherever it sits).
  a.Unlock();
  EXPECT_EQ(lockdep::HeldCount(), 1u);
  b.Unlock();
  EXPECT_EQ(lockdep::HeldCount(), 0u);
}

TEST_F(LockdepTest, RenderReportListsClasses) {
  Spinlock a("test.render_a");
  a.Lock();
  a.Unlock();
  const std::string report = lockdep::RenderReport();
  EXPECT_NE(report.find("test.render_a"), std::string::npos);
  EXPECT_NE(report.find("reports: 0"), std::string::npos);
}

}  // namespace
}  // namespace sg
