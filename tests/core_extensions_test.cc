// §8 "Future Directions" extensions: PR_UNSHARE (stop sharing, including
// the address space), PR_PRIVDATA (selective region sharing at sproc),
// PR_BLOCKGROUP / PR_UNBLKGROUP (suspend the whole group), PR_JOINGROUP
// (dynamic membership for non-VM resources), PR_SETGROUPPRI.
#include <gtest/gtest.h>

#include <atomic>

#include "api/kernel.h"
#include "api/user_env.h"
#include "vm/access.h"

namespace sg {
namespace {

void RunAsProcess(Kernel& k, std::function<void(Env&)> body) {
  auto pid = k.Launch([body = std::move(body)](Env& env, long) { body(env); });
  ASSERT_TRUE(pid.ok());
  k.WaitAll();
}

TEST(Unshare, NonVmResourceStopsPropagating) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    env.Umask(0);
    std::atomic<bool> unshared{false};
    std::atomic<bool> done{false};
    env.Sproc(
        [&](Env& c, long) {
          const i64 left = c.Prctl(PR_UNSHARE, PR_SUMASK);
          ASSERT_GE(left, 0);
          EXPECT_EQ(static_cast<u32>(left) & PR_SUMASK, 0u);
          unshared = true;
          while (!done.load()) {
            c.Yield();
          }
          // Our umask is now private: the parent's later change must not
          // have reached us.
          EXPECT_EQ(c.Umask(0), 0);
        },
        PR_SUMASK | PR_SADDR);
    while (!unshared.load()) {
      env.Yield();
    }
    env.Umask(077);  // would previously have propagated
    done = true;
    env.WaitChild();
  });
}

TEST(Unshare, VmSnapshotBehavesLikeFork) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    vaddr_t a = env.Mmap(kPageSize);
    env.Store32(a, 5);
    std::atomic<int> phase{0};
    std::atomic<u32> member_saw{0};
    env.Sproc(
        [&, a](Env& c, long) {
          ASSERT_GE(c.Prctl(PR_UNSHARE, PR_SADDR), 0);
          EXPECT_EQ(c.proc().as.shared(), nullptr);
          phase = 1;
          while (phase.load() != 2) {
            c.Yield();
          }
          member_saw = c.Load32(a);  // our COW snapshot: still 5
          c.Store32(a, 7);           // private now
          phase = 3;
        },
        PR_SADDR);
    while (phase.load() != 1) {
      env.Yield();
    }
    env.Store32(a, 6);  // group side changes after the snapshot
    phase = 2;
    while (phase.load() != 3) {
      env.Yield();
    }
    env.WaitChild();
    EXPECT_EQ(member_saw.load(), 5u);
    EXPECT_EQ(env.Load32(a), 6u);  // member's 7 stayed private
  });
}

TEST(Unshare, OwnStackKeepsWorkingAndLeavesGroupImage) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    std::atomic<vaddr_t> member_stack{0};
    std::atomic<bool> release{false};
    env.Sproc(
        [&](Env& c, long) {
          c.Store32(c.proc().stack_base, 11);
          ASSERT_GE(c.Prctl(PR_UNSHARE, PR_SADDR), 0);
          EXPECT_EQ(c.Load32(c.proc().stack_base), 11u);  // moved, not lost
          c.Store32(c.proc().stack_base, 12);
          member_stack = c.proc().stack_base;
          while (!release.load()) {
            c.Yield();
          }
        },
        PR_SADDR);
    while (member_stack.load() == 0) {
      env.Yield();
    }
    // The stack left the shared image: the parent cannot reach it.
    EXPECT_EQ(sg::Load<u32>(env.proc().as, member_stack.load()).error(), Errno::kEFAULT);
    release = true;
    env.WaitChild();
  });
  EXPECT_EQ(k.LiveBlocks(), 0u);
  EXPECT_EQ(k.mem().FreeFrames(), k.mem().TotalFrames());
}

TEST(Unshare, StillAMemberForOtherResources) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    std::atomic<bool> unshared{false};
    std::atomic<bool> fd_ok{false};
    std::atomic<int> late_fd{-1};
    env.Sproc(
        [&](Env& c, long) {
          ASSERT_GE(c.Prctl(PR_UNSHARE, PR_SADDR), 0);
          unshared = true;
          while (late_fd.load() < 0) {
            c.Yield();
          }
          // fds still shared: the parent's later open reaches us.
          fd_ok = (c.WriteStr(late_fd.load(), "x") == 1);
        },
        PR_SADDR | PR_SFDS);
    while (!unshared.load()) {
      env.Yield();
    }
    EXPECT_EQ(env.proc().shaddr->refcnt(), 2u);  // still two members
    late_fd = env.Open("/after-unshare", kOpenWrite | kOpenCreat);
    ASSERT_GE(late_fd.load(), 0);
    env.WaitChild();
    EXPECT_TRUE(fd_ok.load());
  });
}

TEST(Unshare, OutsideGroupIsInvalid) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    EXPECT_LT(env.Prctl(PR_UNSHARE, PR_SALL), 0);
    EXPECT_EQ(env.LastError(), Errno::kEINVAL);
  });
}

TEST(PrivData, DataShadowIsPrivateWhileArenaStaysShared) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    // The DATA region (sbrk heap) gets the private shadow; the mmap arena
    // stays fully shared.
    const vaddr_t heap = env.Sbrk(0) - kPageSize;  // inside the data region
    env.Store32(heap, 100);
    const vaddr_t arena = env.Mmap(kPageSize);
    env.Store32(arena, 200);
    std::atomic<u32> child_heap{0};
    std::atomic<bool> gate{false};
    env.Sproc(
        [&, heap, arena](Env& c, long) {
          child_heap = c.Load32(heap);  // COW shadow: sees 100
          c.Store32(heap, 111);         // private to the child
          c.Store32(arena, 222);        // shared with everyone
          gate = true;
          while (gate.load()) {
            c.Yield();
          }
        },
        PR_SADDR | PR_PRIVDATA);
    while (!gate.load()) {
      env.Yield();
    }
    EXPECT_EQ(child_heap.load(), 100u);
    EXPECT_EQ(env.Load32(heap), 100u);   // child's heap write stayed private
    EXPECT_EQ(env.Load32(arena), 222u);  // arena write came through
    gate = false;
    env.WaitChild();
  });
}

TEST(BlockGroup, MembersParkAtKernelEntryUntilUnblocked) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    std::atomic<u64> progress{0};
    constexpr int kMembers = 2;
    for (int m = 0; m < kMembers; ++m) {
      env.Sproc(
          [&](Env& c, long) {
            for (;;) {
              progress.fetch_add(1);
              c.Yield();  // kernel entry: the suspension point
              if (progress.load() > 1'000'000) {
                return;  // safety valve
              }
            }
          },
          PR_SALL);
    }
    // Let them run, then freeze the group.
    while (progress.load() < 100) {
      env.Yield();
    }
    EXPECT_EQ(env.Prctl(PR_BLOCKGROUP, 0), kMembers);
    // Wait for them to actually park, then verify no progress.
    u64 snap = progress.load();
    u64 settled = snap;
    for (int i = 0; i < 200; ++i) {
      env.Yield();
      settled = progress.load();
    }
    const u64 frozen = progress.load();
    for (int i = 0; i < 200; ++i) {
      env.Yield();
    }
    EXPECT_EQ(progress.load(), frozen);
    (void)snap;
    (void)settled;
    // Thaw; they must move again, then kill them off.
    EXPECT_EQ(env.Prctl(PR_UNBLKGROUP, 0), kMembers);
    const u64 resumed_from = progress.load();
    while (progress.load() == resumed_from) {
      env.Yield();
    }
    env.proc().shaddr->ForEachMember([&](Proc& m) {
      if (&m != &env.proc()) {
        m.PostSignal(kSigKill);
      }
    });
    for (int m = 0; m < kMembers; ++m) {
      env.WaitChild();
    }
  });
}

TEST(BlockGroup, KillStillWorksWhileBlocked) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    std::atomic<pid_t> member{0};
    env.Sproc(
        [&](Env& c, long) {
          member = c.Pid();
          while (true) {
            c.Yield();
          }
        },
        PR_SALL);
    while (member.load() == 0) {
      env.Yield();
    }
    EXPECT_EQ(env.Prctl(PR_BLOCKGROUP, 0), 1);
    env.Kill(member.load(), kSigKill);
    int sig = 0;
    EXPECT_EQ(env.WaitChild(nullptr, &sig), member.load());
    EXPECT_EQ(sig, kSigKill);
  });
}

TEST(JoinGroup, UnrelatedProcessJoinsForNonVmResources) {
  Kernel k;
  std::atomic<pid_t> founder_pid{0};
  std::atomic<bool> joined{false};
  std::atomic<bool> founder_sees_fd{false};
  std::atomic<int> joiner_fd{-1};
  auto founder = k.Launch([&](Env& env, long) {
    env.Sproc([](Env&, long) {}, PR_SALL);  // create the group
    env.WaitChild();
    founder_pid = env.Pid();
    while (!joined.load()) {
      env.Yield();
    }
    while (joiner_fd.load() < 0) {
      env.Yield();
    }
    env.Yield();  // sync entry
    founder_sees_fd = (env.WriteStr(joiner_fd.load(), "y") == 1);
  });
  auto joiner = k.Launch([&](Env& env, long) {
    while (founder_pid.load() == 0) {
      env.Yield();
    }
    const i64 mask = env.Prctl(PR_JOINGROUP, founder_pid.load());
    ASSERT_GT(mask, 0);
    EXPECT_EQ(static_cast<u32>(mask), PR_SALL & ~PR_SADDR);
    EXPECT_NE(env.proc().shaddr, nullptr);
    EXPECT_EQ(env.proc().as.shared(), nullptr);  // VM stays ours
    joined = true;
    joiner_fd = env.Open("/joined-file", kOpenWrite | kOpenCreat);
    ASSERT_GE(joiner_fd.load(), 0);
    while (!founder_sees_fd.load()) {
      env.Yield();
    }
  });
  ASSERT_TRUE(founder.ok() && joiner.ok());
  k.WaitAll();
  EXPECT_TRUE(founder_sees_fd.load());
  EXPECT_EQ(k.LiveBlocks(), 0u);
}

TEST(JoinGroup, RulesEnforced) {
  Kernel k;
  std::atomic<pid_t> loner{0};
  std::atomic<bool> done{false};
  auto a = k.Launch([&](Env& env, long) {
    loner = env.Pid();
    while (!done.load()) {
      env.Yield();
    }
  });
  auto b = k.Launch([&](Env& env, long) {
    while (loner.load() == 0) {
      env.Yield();
    }
    // Target not in a group.
    EXPECT_LT(env.Prctl(PR_JOINGROUP, loner.load()), 0);
    EXPECT_EQ(env.LastError(), Errno::kESRCH);
    // No such process.
    EXPECT_LT(env.Prctl(PR_JOINGROUP, 99999), 0);
    // Already in a group: cannot join another.
    env.Sproc([](Env&, long) {}, PR_SALL);
    env.WaitChild();
    EXPECT_LT(env.Prctl(PR_JOINGROUP, loner.load()), 0);
    EXPECT_EQ(env.LastError(), Errno::kEINVAL);
    done = true;
  });
  ASSERT_TRUE(a.ok() && b.ok());
  k.WaitAll();
}

TEST(GroupPri, AppliesToEveryMember) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    std::atomic<int> observed{-1};
    std::atomic<bool> set{false};
    env.Sproc(
        [&](Env& c, long) {
          while (!set.load()) {
            c.Yield();
          }
          observed = c.proc().priority.load();
        },
        PR_SALL);
    EXPECT_EQ(env.Prctl(PR_SETGROUPPRI, 5), 2);
    set = true;
    env.WaitChild();
    EXPECT_EQ(observed.load(), 5);
    EXPECT_EQ(env.proc().priority.load(), 5);
  });
}

}  // namespace
}  // namespace sg
