// Failure injection: exhausted physical memory, full tables, bad
// descriptors/addresses, and limit violations — every error path must
// report cleanly and leak nothing.
#include <gtest/gtest.h>

#include <atomic>

#include "api/kernel.h"
#include "api/user_env.h"
#include "vm/access.h"

namespace sg {
namespace {

void RunAsProcess(Kernel& k, std::function<void(Env&)> body) {
  auto pid = k.Launch([body = std::move(body)](Env& env, long) { body(env); });
  ASSERT_TRUE(pid.ok());
  k.WaitAll();
}

TEST(Failure, MmapBeyondPhysicalMemory) {
  BootParams bp;
  bp.phys_mem_bytes = 128 * kPageSize;
  Kernel k(bp);
  RunAsProcess(k, [&](Env& env) {
    // The mapping itself succeeds (demand paging!); touching more pages
    // than exist must fail with ENOMEM -> SIGSEGV on the toucher.
    const vaddr_t a = env.Mmap(256 * kPageSize);
    ASSERT_NE(a, 0u);
    pid_t pid = env.Sproc(
        [a](Env& c, long) {
          for (u64 i = 0; i < 256; ++i) {
            c.Store32(a + i * kPageSize, 1);
          }
          ADD_FAILURE() << "touched more frames than physically exist";
        },
        PR_SADDR);
    int sig = 0;
    EXPECT_EQ(env.WaitChild(nullptr, &sig), pid);
    EXPECT_EQ(sig, kSigSegv);
  });
  EXPECT_EQ(k.mem().FreeFrames(), k.mem().TotalFrames());  // all recovered
}

TEST(Failure, SprocFailsCleanlyWhenStackVaExhausted) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    // Stacks come from [kArenaEnd, kStackTop) = 256 MiB. Demand ~1 GiB max
    // stacks: the fifth member cannot fit and must fail without corrupting
    // the group.
    ASSERT_GT(env.Prctl(PR_SETSTACKSIZE, i64{60} << 20), 0);
    std::atomic<int> created{0};
    std::atomic<bool> hold{true};
    std::vector<pid_t> pids;
    for (int i = 0; i < 8; ++i) {
      const pid_t pid = env.Sproc(
          [&](Env& c, long) {
            while (hold.load()) {
              c.Yield();
            }
          },
          PR_SADDR);
      if (pid > 0) {
        ++created;
        pids.push_back(pid);
      } else {
        EXPECT_EQ(env.LastError(), Errno::kENOMEM);
      }
    }
    EXPECT_GT(created.load(), 0);
    EXPECT_LT(created.load(), 8);
    // The group still works.
    const vaddr_t a = env.Mmap(kPageSize);
    env.Store32(a, 42);
    EXPECT_EQ(env.Load32(a), 42u);
    hold = false;
    for (int i = 0; i < created.load(); ++i) {
      env.WaitChild();
    }
  });
  EXPECT_EQ(k.LiveBlocks(), 0u);
}

TEST(Failure, FdTableExhaustion) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    int opened = 0;
    for (int i = 0; i < FdTable::kMaxFds + 4; ++i) {
      char path[32];
      std::snprintf(path, sizeof(path), "/f%d", i);
      const int fd = env.Open(path, kOpenWrite | kOpenCreat);
      if (fd < 0) {
        EXPECT_EQ(env.LastError(), Errno::kEMFILE);
        break;
      }
      ++opened;
    }
    EXPECT_EQ(opened, FdTable::kMaxFds);
    // Closing one frees a slot again.
    EXPECT_EQ(env.Close(3), 0);
    EXPECT_GE(env.Open("/one-more", kOpenWrite | kOpenCreat), 0);
  });
}

TEST(Failure, SystemFileTableExhaustion) {
  BootParams bp;
  bp.max_files = 8;
  Kernel k(bp);
  RunAsProcess(k, [&](Env& env) {
    int opened = 0;
    for (int i = 0; i < 12; ++i) {
      char path[32];
      std::snprintf(path, sizeof(path), "/g%d", i);
      const int fd = env.Open(path, kOpenWrite | kOpenCreat);
      if (fd < 0) {
        EXPECT_EQ(env.LastError(), Errno::kENFILE);
        break;
      }
      ++opened;
    }
    EXPECT_EQ(opened, 8);
  });
  EXPECT_EQ(k.vfs().files().Count(), 0u);
}

TEST(Failure, InodeTableExhaustion) {
  BootParams bp;
  bp.max_inodes = 6;           // root + 5
  bp.mount_procfs = false;     // /proc would eat into the tiny budget
  Kernel k(bp);
  RunAsProcess(k, [&](Env& env) {
    int created = 0;
    for (int i = 0; i < 10; ++i) {
      char path[32];
      std::snprintf(path, sizeof(path), "/i%d", i);
      const int fd = env.Open(path, kOpenWrite | kOpenCreat);
      if (fd < 0) {
        EXPECT_EQ(env.LastError(), Errno::kENOSPC);
        break;
      }
      env.Close(fd);
      ++created;
    }
    EXPECT_EQ(created, 5);
    // Unlinking frees an inode for reuse.
    ASSERT_EQ(env.Unlink("/i0"), 0);
    EXPECT_GE(env.Open("/again", kOpenWrite | kOpenCreat), 0);
  });
}

TEST(Failure, BadDescriptorsEverywhere) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    char b[4];
    EXPECT_LT(env.ReadBuf(-1, std::as_writable_bytes(std::span<char>(b, 4))), 0);
    EXPECT_EQ(env.LastError(), Errno::kEBADF);
    EXPECT_LT(env.WriteStr(42, "x"), 0);
    EXPECT_EQ(env.LastError(), Errno::kEBADF);
    EXPECT_LT(env.Close(42), 0);
    EXPECT_LT(env.Dup(42), 0);
    EXPECT_LT(env.Lseek(42, 0), 0);
    EXPECT_LT(env.Dup2(0, 9999), 0);
  });
}

TEST(Failure, BadUserAddressesInSyscalls) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    const int fd = env.Open("/data", kOpenRdwr | kOpenCreat);
    ASSERT_GE(fd, 0);
    env.WriteStr(fd, "payload");
    env.Lseek(fd, 0);
    // Reading into an unmapped buffer: EFAULT, not a crash.
    EXPECT_LT(env.Read(fd, 0x40, 7), 0);
    EXPECT_EQ(env.LastError(), Errno::kEFAULT);
    EXPECT_LT(env.Write(fd, 0x40, 7), 0);
    EXPECT_EQ(env.LastError(), Errno::kEFAULT);
  });
}

TEST(Failure, WriteToReadOnlyFdAndViceVersa) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    const int w = env.Open("/rw", kOpenWrite | kOpenCreat);
    char b[4];
    EXPECT_LT(env.ReadBuf(w, std::as_writable_bytes(std::span<char>(b, 4))), 0);
    EXPECT_EQ(env.LastError(), Errno::kEBADF);
    const int r = env.Open("/rw", kOpenRead);
    EXPECT_LT(env.WriteStr(r, "no"), 0);
    EXPECT_EQ(env.LastError(), Errno::kEBADF);
  });
}

TEST(Failure, ProcessTableExhaustionInsideGroup) {
  BootParams bp;
  bp.max_procs = 3;
  Kernel k(bp);
  RunAsProcess(k, [&](Env& env) {
    std::atomic<bool> hold{true};
    pid_t a = env.Sproc(
        [&](Env& c, long) {
          while (hold.load()) {
            c.Yield();
          }
        },
        PR_SALL);
    ASSERT_GT(a, 0);
    pid_t b = env.Sproc(
        [&](Env& c, long) {
          while (hold.load()) {
            c.Yield();
          }
        },
        PR_SALL);
    ASSERT_GT(b, 0);
    EXPECT_LT(env.Sproc([](Env&, long) {}, PR_SALL), 0);
    EXPECT_EQ(env.LastError(), Errno::kEAGAIN);
    EXPECT_EQ(env.proc().shaddr->refcnt(), 3u);  // the failure joined nothing
    hold = false;
    env.WaitChild();
    env.WaitChild();
  });
  EXPECT_EQ(k.LiveBlocks(), 0u);
}

TEST(Failure, UlimitZeroBlocksAllWrites) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    const int fd = env.Open("/z", kOpenWrite | kOpenCreat);
    ASSERT_EQ(env.UlimitSet(0), 0);
    EXPECT_LT(env.WriteStr(fd, "x"), 0);
    EXPECT_EQ(env.LastError(), Errno::kEFBIG);
    // Only root may raise it back — we are root, so this works:
    ASSERT_EQ(env.UlimitSet(100), 0);
    EXPECT_EQ(env.WriteStr(fd, "x"), 1);
  });
}

TEST(Failure, DeepPathAndLongNames) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    std::string deep;
    for (int i = 0; i < 32; ++i) {
      deep += "/d";
      ASSERT_EQ(env.Mkdir(deep), 0) << deep;
    }
    EXPECT_GE(env.Open(deep + "/leaf", kOpenWrite | kOpenCreat), 0);
    const std::string too_long(300, 'x');
    EXPECT_LT(env.Open("/" + too_long, kOpenWrite | kOpenCreat), 0);
    EXPECT_EQ(env.LastError(), Errno::kENAMETOOLONG);
  });
}

TEST(Failure, GroupSurvivesMemberSegv) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    const vaddr_t a = env.Mmap(kPageSize);
    env.Store32(a, 7);
    pid_t pid = env.Sproc([](Env& c, long) { c.Load32(0x10); }, PR_SALL);
    int sig = 0;
    EXPECT_EQ(env.WaitChild(nullptr, &sig), pid);
    EXPECT_EQ(sig, kSigSegv);
    // The shared image and the group are intact.
    EXPECT_EQ(env.Load32(a), 7u);
    EXPECT_EQ(env.proc().shaddr->refcnt(), 1u);
    pid = env.Sproc([a](Env& c, long) { EXPECT_EQ(c.Load32(a), 7u); }, PR_SADDR);
    ASSERT_GT(pid, 0);
    env.WaitChild();
  });
}

}  // namespace
}  // namespace sg
