// §6.3 resource synchronization: descriptor propagation through s_ofile,
// directory/umask/ulimit/id propagation through the shared block, the
// p_flag sync bits, and the block's own reference counts.
#include <gtest/gtest.h>

#include <atomic>
#include <string>

#include "api/kernel.h"
#include "api/user_env.h"
#include "obs/stats.h"

namespace sg {
namespace {

// Runs `body` inside a launched process and waits for completion.
void RunAsProcess(Kernel& k, std::function<void(Env&)> body) {
  auto pid = k.Launch([body = std::move(body)](Env& env, long) { body(env); });
  ASSERT_TRUE(pid.ok());
  k.WaitAll();
}

TEST(FdSharing, OpenInChildVisibleInParent) {
  Kernel k;
  std::atomic<int> parent_read{-1};
  RunAsProcess(k, [&](Env& env) {
    ASSERT_GE(env.Open("/data", kOpenWrite | kOpenCreat), 0);
    env.WriteStr(0, "hello");
    env.Close(0);

    std::atomic<int> child_fd{-1};
    env.Sproc(
        [&](Env& c, long) {
          // "When one of the processes in a group opens a file, the others
          // will see the file as immediately available to them."
          child_fd = c.Open("/data", kOpenRead);
        },
        PR_SFDS | PR_SADDR);
    env.WaitChild();
    ASSERT_GE(child_fd.load(), 0);

    // The parent's next kernel entry synchronizes its table; the
    // descriptor NUMBER from the child works directly (footnote 1).
    char buf[8] = {};
    i64 n = env.ReadBuf(child_fd.load(),
                        std::as_writable_bytes(std::span<char>(buf, sizeof(buf))));
    parent_read = static_cast<int>(n);
    EXPECT_EQ(std::string_view(buf, 5), "hello");
  });
  EXPECT_EQ(parent_read.load(), 5);
}

TEST(FdSharing, SharedOffsetThroughSharedDescriptor) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    int fd = env.Open("/f", kOpenRdwr | kOpenCreat);
    ASSERT_GE(fd, 0);
    env.WriteStr(fd, "abcdef");
    env.Lseek(fd, 0);
    std::atomic<bool> child_done{false};
    env.Sproc(
        [&, fd](Env& c, long) {
          char b[3] = {};
          c.ReadBuf(fd, std::as_writable_bytes(std::span<char>(b, 3)));
          EXPECT_EQ(std::string_view(b, 3), "abc");
          child_done = true;
        },
        PR_SFDS);
    env.WaitChild();
    ASSERT_TRUE(child_done.load());
    // The open-file entry (and its offset) is shared: we continue where
    // the child stopped.
    char b[3] = {};
    env.ReadBuf(fd, std::as_writable_bytes(std::span<char>(b, 3)));
    EXPECT_EQ(std::string_view(b, 3), "def");
  });
}

TEST(FdSharing, CloseInOneMemberPropagates) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    int fd = env.Open("/g", kOpenWrite | kOpenCreat);
    ASSERT_GE(fd, 0);
    env.Sproc([fd](Env& c, long) { EXPECT_EQ(c.Close(fd), 0); }, PR_SFDS);
    env.WaitChild();
    // Our table resynchronizes on entry: the descriptor is gone.
    EXPECT_LT(env.WriteStr(fd, "x"), 0);
    EXPECT_EQ(env.LastError(), Errno::kEBADF);
  });
}

TEST(FdSharing, NonSharingMemberUnaffected) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    std::atomic<int> child_result{0};
    env.Sproc(
        [&](Env& c, long) {
          int fd = c.Open("/private-child", kOpenWrite | kOpenCreat);
          child_result = fd;
        },
        PR_SADDR /* no PR_SFDS */);
    env.WaitChild();
    ASSERT_GE(child_result.load(), 0);
    // The child's open never propagated: the same slot is free here, and
    // using it reports EBADF.
    char b[1];
    EXPECT_LT(env.ReadBuf(child_result.load(), std::as_writable_bytes(std::span<char>(b, 1))),
              0);
    EXPECT_EQ(env.LastError(), Errno::kEBADF);
  });
}

TEST(FdSharing, Dup2AndCloexecPropagate) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    int fd = env.Open("/d2", kOpenWrite | kOpenCreat);
    ASSERT_GE(fd, 0);
    env.Sproc(
        [fd](Env& c, long) {
          EXPECT_EQ(c.Dup2(fd, 17), 17);
          EXPECT_EQ(c.SetCloexec(fd, true), 0);
        },
        PR_SFDS);
    env.WaitChild();
    // Our next entry delta-pulls exactly the two touched slots: the dup'd
    // descriptor works here, and the flag byte arrived with the original.
    EXPECT_GE(env.WriteStr(17, "x"), 0);
    EXPECT_TRUE(env.proc().fds.Slot(fd).close_on_exec);
    // Both numbers refer to the same open-file entry (shared offset).
    EXPECT_EQ(env.proc().fds.Get(fd).value(), env.proc().fds.Get(17).value());
  });
}

TEST(FdSharing, SingleChangePullsSingleSlot) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    // Fill 48 descriptors BEFORE the group forms; the child inherits a
    // fully synchronized view of all of them.
    for (int i = 0; i < 48; ++i) {
      ASSERT_GE(env.Open("/bulk" + std::to_string(i), kOpenWrite | kOpenCreat), 0);
    }
    std::atomic<bool> go{false};
    std::atomic<bool> pulled{false};
    env.Sproc(
        [&](Env& c, long) {
          while (!go.load()) {
          }
          (void)c.UlimitGet();  // kernel entry: the measured delta pull
          pulled = true;
        },
        PR_SFDS);
    // One new descriptor: the publish stamps exactly one slot.
    ASSERT_GE(env.Open("/one-more", kOpenWrite | kOpenCreat), 0);
    const u64 before = obs::Stats::Global().CounterValue("core.fds.delta_pulled_slots");
    go = true;
    while (!pulled.load()) {
    }
    const u64 after = obs::Stats::Global().CounterValue("core.fds.delta_pulled_slots");
    // O(changed), not O(table): 48 synced descriptors cost nothing, the one
    // change costs one slot.
    EXPECT_EQ(after - before, 1u);
    env.WaitChild();
  });
}

TEST(DirSharing, ChdirPropagatesToGroup) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    ASSERT_EQ(env.Mkdir("/sub"), 0);
    ASSERT_GE(env.Open("/sub/marker", kOpenWrite | kOpenCreat), 0);
    env.Sproc([](Env& c, long) { EXPECT_EQ(c.Chdir("/sub"), 0); }, PR_SDIR | PR_SADDR);
    env.WaitChild();
    // "the ability to change the working directory ... of an entire set of
    // processes at once": a relative open now resolves inside /sub.
    EXPECT_GE(env.Open("marker", kOpenRead), 0);
  });
}

TEST(DirSharing, NonSharingChdirStaysLocal) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    ASSERT_EQ(env.Mkdir("/sub2"), 0);
    env.Sproc([](Env& c, long) { EXPECT_EQ(c.Chdir("/sub2"), 0); }, PR_SADDR);
    env.WaitChild();
    ASSERT_GE(env.Open("still-at-root", kOpenWrite | kOpenCreat), 0);
    EXPECT_GE(env.Open("/still-at-root", kOpenRead), 0);
  });
}

TEST(UmaskSharing, UmaskPropagates) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    env.Umask(0);
    env.Sproc([](Env& c, long) { c.Umask(077); }, PR_SUMASK);
    env.WaitChild();
    int fd = env.Open("/masked", kOpenWrite | kOpenCreat, 0666);
    ASSERT_GE(fd, 0);
    auto st = env.kernel().Stat(env.proc(), "/masked");
    ASSERT_TRUE(st.ok());
    EXPECT_EQ(st.value().mode, 0600);  // 0666 & ~077
  });
}

TEST(UlimitSharing, UlimitPropagatesAndIsEnforced) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    env.Sproc([](Env& c, long) { EXPECT_EQ(c.UlimitSet(kPageSize), 0); }, PR_SULIMIT);
    env.WaitChild();
    EXPECT_EQ(static_cast<u64>(env.UlimitGet()), kPageSize);
    int fd = env.Open("/limited", kOpenWrite | kOpenCreat);
    ASSERT_GE(fd, 0);
    std::vector<std::byte> big(2 * kPageSize, std::byte{7});
    const i64 n = env.WriteBuf(fd, big);
    EXPECT_EQ(n, static_cast<i64>(kPageSize));  // truncated at the limit
    EXPECT_LT(env.WriteBuf(fd, big), 0);        // nothing more fits
    EXPECT_EQ(env.LastError(), Errno::kEFBIG);
  });
}

TEST(IdSharing, SetuidPropagatesAndChangesAccess) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    // Root creates a file only uid 42 can read, then drops privileges in a
    // CHILD; PR_SID propagates the uid to the parent.
    int fd = env.Open("/secret", kOpenWrite | kOpenCreat, 0400);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(env.kernel().Chmod(env.proc(), "/secret", 0400).ok(), true);
    env.Sproc([](Env& c, long) { EXPECT_EQ(c.Setuid(42), 0); }, PR_SID);
    env.WaitChild();
    EXPECT_EQ(env.Getuid(), 42);
    // uid 42 is not the owner (root is): read must now fail.
    EXPECT_LT(env.Open("/secret", kOpenRead), 0);
    EXPECT_EQ(env.LastError(), Errno::kEACCES);
  });
}

TEST(SyncBits, GenerationLagsOnOthersAndCatchesUpOnEntry) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    std::atomic<bool> gate{false};
    env.Sproc(
        [&](Env& c, long) {
          c.Umask(011);
          gate = true;
        },
        PR_SUMASK);
    // Wait in USER mode (no syscalls) so our stale window stays observable.
    while (!gate.load()) {
    }
    // The child's update was O(1): it bumped the umask generation lane
    // instead of walking the chain to set our p_flag bit...
    EXPECT_EQ(env.proc().p_flag.load() & kPfSyncUmask, 0u);
    // ...so our cached word now lags the block's.
    EXPECT_NE(env.proc().p_resgen, env.proc().shaddr->resgen());
    // Any syscall is a kernel entry; the single packed-word compare catches
    // the lag, pulls the umask lane, and the cache catches up.
    (void)env.UlimitGet();
    EXPECT_EQ(env.proc().p_resgen, env.proc().shaddr->resgen());
    EXPECT_EQ(env.Umask(011), 011);  // previous mask = the child's value
    env.WaitChild();
  });
}

TEST(SyncBits, BlockHoldsItsOwnReferences) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    int fd = env.Open("/held", kOpenWrite | kOpenCreat);
    ASSERT_GE(fd, 0);
    // Create the group: the block copies the fd table, bumping refs.
    std::atomic<bool> gate{false};
    env.Sproc(
        [&](Env& c, long) {
          while (!gate.load()) {
            c.Yield();
          }
        },
        PR_SFDS);
    OpenFile* f = env.proc().fds.Get(fd).value();
    // Our slot + the block's master copy + the live child's inherited slot.
    EXPECT_EQ(env.kernel().vfs().files().RefCount(f), 3u);
    gate = true;
    env.WaitChild();
    // The child's reference died with it; the block still holds its own, so
    // the entry survives any member's exit (§6.3 race avoidance).
    EXPECT_EQ(env.kernel().vfs().files().RefCount(f), 2u);
  });
}

TEST(Teardown, LastExitReleasesBlockResources) {
  Kernel k;
  std::atomic<u64> files_live{99};
  RunAsProcess(k, [&](Env& env) {
    ASSERT_GE(env.Open("/t", kOpenWrite | kOpenCreat), 0);
    env.Sproc([](Env&, long) {}, PR_SALL);
    env.WaitChild();
  });
  // Everything exited: block destroyed, its file refs released. Only no
  // files should remain open system-wide.
  files_live = k.vfs().files().Count();
  EXPECT_EQ(files_live.load(), 0u);
  EXPECT_EQ(k.LiveBlocks(), 0u);
}

}  // namespace
}  // namespace sg
