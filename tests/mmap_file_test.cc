// File-backed mappings: demand fill from the file, dirty tracking and
// writeback for shared mappings, COW privacy for private mappings, fork
// semantics, group-wide visibility, and interaction with the pager.
#include <gtest/gtest.h>

#include <atomic>

#include "api/kernel.h"
#include "api/user_env.h"

namespace sg {
namespace {

void RunAsProcess(Kernel& k, std::function<void(Env&)> body) {
  auto pid = k.Launch([body = std::move(body)](Env& env, long) { body(env); });
  ASSERT_TRUE(pid.ok());
  k.WaitAll();
}

// Creates /blob with `words` little-endian u32 values i*3 and returns a
// read-write fd.
int MakeBlob(Env& env, u32 words) {
  const int fd = env.Open("/blob", kOpenRdwr | kOpenCreat | kOpenTrunc);
  EXPECT_GE(fd, 0);
  std::vector<u32> data(words);
  for (u32 i = 0; i < words; ++i) {
    data[i] = i * 3;
  }
  EXPECT_EQ(env.WriteBuf(fd, std::as_bytes(std::span<const u32>(data))),
            static_cast<i64>(words * 4));
  return fd;
}

TEST(MmapFile, DemandFillsFromFile) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    const int fd = MakeBlob(env, 3000);  // ~3 pages
    const vaddr_t a = env.MmapFile(fd, 0, 3000 * 4, /*shared=*/false);
    ASSERT_NE(a, 0u);
    EXPECT_EQ(env.Load32(a), 0u);
    EXPECT_EQ(env.Load32(a + 4 * 1024), 1024u * 3);
    EXPECT_EQ(env.Load32(a + 4 * 2999), 2999u * 3);
    // The zero tail past EOF within the last page reads as zero.
    EXPECT_EQ(env.Load32(a + 4 * 3000), 0u);
  });
}

TEST(MmapFile, OffsetMapping) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    const int fd = MakeBlob(env, 4096);  // 4 pages of data
    const vaddr_t a = env.MmapFile(fd, kPageSize, 2 * kPageSize, false);
    ASSERT_NE(a, 0u);
    // First mapped word is file word 1024.
    EXPECT_EQ(env.Load32(a), 1024u * 3);
    // Unaligned offsets rejected.
    EXPECT_EQ(env.MmapFile(fd, 100, kPageSize, false), 0u);
    EXPECT_EQ(env.LastError(), Errno::kEINVAL);
  });
}

TEST(MmapFile, PrivateMappingWritesNeverReachTheFile) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    const int fd = MakeBlob(env, 1024);
    const vaddr_t a = env.MmapFile(fd, 0, kPageSize, /*shared=*/false);
    env.Store32(a, 999);
    EXPECT_EQ(env.Load32(a), 999u);
    EXPECT_EQ(env.Munmap(a), 0);
    u32 first = 1;
    env.Lseek(fd, 0);
    env.ReadBuf(fd, std::as_writable_bytes(std::span<u32>(&first, 1)));
    EXPECT_EQ(first, 0u);  // untouched
  });
}

TEST(MmapFile, SharedMappingWritesBackOnMsyncAndMunmap) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    const int fd = MakeBlob(env, 2048);
    const vaddr_t a = env.MmapFile(fd, 0, 2048 * 4, /*shared=*/true);
    ASSERT_NE(a, 0u);
    env.Store32(a + 4, 777);  // dirty page 0
    // Not yet in the file...
    u32 w[2];
    env.Lseek(fd, 0);
    env.ReadBuf(fd, std::as_writable_bytes(std::span<u32>(w, 2)));
    EXPECT_EQ(w[1], 3u);
    // ...until msync.
    ASSERT_EQ(env.Msync(a), 0);
    env.Lseek(fd, 0);
    env.ReadBuf(fd, std::as_writable_bytes(std::span<u32>(w, 2)));
    EXPECT_EQ(w[1], 777u);
    // A second dirtying + munmap also writes back.
    env.Store32(a + 4 * 1500, 888);
    ASSERT_EQ(env.Munmap(a), 0);
    env.Lseek(fd, 4 * 1500);
    env.ReadBuf(fd, std::as_writable_bytes(std::span<u32>(w, 1)));
    EXPECT_EQ(w[0], 888u);
  });
}

TEST(MmapFile, SharedMappingRequiresWritableFd) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    MakeBlob(env, 64);
    const int ro = env.Open("/blob", kOpenRead);
    ASSERT_GE(ro, 0);
    EXPECT_EQ(env.MmapFile(ro, 0, kPageSize, /*shared=*/true), 0u);
    EXPECT_EQ(env.LastError(), Errno::kEACCES);
    EXPECT_NE(env.MmapFile(ro, 0, kPageSize, /*shared=*/false), 0u);  // private ok
  });
}

TEST(MmapFile, SharedMappingSharedAcrossFork) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    const int fd = MakeBlob(env, 1024);
    const vaddr_t a = env.MmapFile(fd, 0, kPageSize, /*shared=*/true);
    std::atomic<bool> wrote{false};
    env.Fork([&, a](Env& c, long) {
      c.Store32(a, 4242);  // MAP_SHARED: visible to the parent
      wrote = true;
    });
    env.WaitChild();
    ASSERT_TRUE(wrote.load());
    EXPECT_EQ(env.Load32(a), 4242u);
  });
}

TEST(MmapFile, PrivateMappingCowAcrossFork) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    const int fd = MakeBlob(env, 1024);
    const vaddr_t a = env.MmapFile(fd, 0, kPageSize, /*shared=*/false);
    env.Store32(a, 1);  // fault in + privatize before fork
    std::atomic<u32> child_saw{0};
    env.Fork([&, a](Env& c, long) {
      child_saw = c.Load32(a);
      c.Store32(a, 2);
      // Untouched pages of the twin still fill from the FILE.
      EXPECT_EQ(c.Load32(a + 4 * 512), 512u * 3);
    });
    env.WaitChild();
    EXPECT_EQ(child_saw.load(), 1u);
    EXPECT_EQ(env.Load32(a), 1u);
  });
}

TEST(MmapFile, GroupSharedMappingVisibleToMembers) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    const int fd = MakeBlob(env, 1024);
    const vaddr_t a = env.MmapFile(fd, 0, kPageSize, /*shared=*/true);
    env.Sproc(
        [a](Env& c, long) {
          EXPECT_EQ(c.Load32(a + 4), 3u);  // file content through the group image
          c.Store32(a + 4, 55);
        },
        PR_SADDR);
    env.WaitChild();
    EXPECT_EQ(env.Load32(a + 4), 55u);
    ASSERT_EQ(env.Msync(a), 0);
    u32 w[2];
    env.Lseek(fd, 0);
    env.ReadBuf(fd, std::as_writable_bytes(std::span<u32>(w, 2)));
    EXPECT_EQ(w[1], 55u);  // the member's write reached the file
  });
}

TEST(MmapFile, PagerStealsAndWritebackStillCorrect) {
  BootParams bp;
  bp.phys_mem_bytes = 48 * kPageSize;
  bp.swap_pages = 256;
  Kernel k(bp);
  RunAsProcess(k, [&](Env& env) {
    const int fd = MakeBlob(env, 16 * 1024);  // 16 pages of file data
    const vaddr_t a = env.MmapFile(fd, 0, 16 * kPageSize, /*shared=*/true);
    // Dirty every page, then blow the page cache with anonymous pressure.
    for (u64 i = 0; i < 16; ++i) {
      env.Store32(a + i * kPageSize, static_cast<u32>(9000 + i));
    }
    const vaddr_t pressure = env.Mmap(64 * kPageSize);
    for (u64 i = 0; i < 64; ++i) {
      env.Store32(pressure + i * kPageSize, 1);
    }
    // Writeback must recover dirty pages even from swap.
    ASSERT_EQ(env.Munmap(a), 0);
    for (u64 i = 0; i < 16; ++i) {
      u32 w = 0;
      env.Lseek(fd, static_cast<i64>(i * kPageSize));
      env.ReadBuf(fd, std::as_writable_bytes(std::span<u32>(&w, 1)));
      EXPECT_EQ(w, 9000 + i) << "page " << i;
    }
  });
}

TEST(MmapFile, RejectsNonRegularFiles) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    int rd = -1, wr = -1;
    ASSERT_EQ(env.Pipe(&rd, &wr), 0);
    EXPECT_EQ(env.MmapFile(rd, 0, kPageSize, false), 0u);
    EXPECT_EQ(env.LastError(), Errno::kEINVAL);
    EXPECT_EQ(env.MmapFile(77, 0, kPageSize, false), 0u);
    EXPECT_EQ(env.LastError(), Errno::kEBADF);
  });
}

}  // namespace
}  // namespace sg
