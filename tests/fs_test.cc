// Unit tests for fs/: path resolution, open/creat with umask, permissions,
// link/unlink/mkdir/rmdir, file I/O with ulimit, seek, pipes, and the
// reference-counting discipline the share block depends on.
#include <gtest/gtest.h>

#include <cstring>
#include <span>
#include <thread>

#include "fs/vfs.h"

namespace sg {
namespace {

std::span<const std::byte> Bytes(std::string_view s) {
  return std::as_bytes(std::span<const char>(s.data(), s.size()));
}

struct VfsFixture : ::testing::Test {
  Vfs vfs{256, 256};
  Cred root_cred{0, 0};
  Inode* root() { return vfs.root(); }

  Result<OpenFile*> Open(std::string_view path, u32 flags, mode_t mode = 0644,
                         mode_t umask = 0, Cred cred = {0, 0}) {
    return vfs.Open(root(), root(), cred, path, flags, mode, umask);
  }
};

TEST_F(VfsFixture, CreateWriteReadRoundTrip) {
  auto f = Open("/a", kOpenWrite | kOpenCreat);
  ASSERT_TRUE(f.ok());
  auto s = Bytes("hello world");
  EXPECT_EQ(vfs.WriteFile(*f.value(), s.data(), s.size(), 1 << 20).value(), s.size());
  vfs.files().Release(f.value());

  auto g = Open("/a", kOpenRead);
  ASSERT_TRUE(g.ok());
  std::byte buf[32];
  EXPECT_EQ(vfs.ReadFile(*g.value(), buf, sizeof(buf)).value(), s.size());
  EXPECT_EQ(0, std::memcmp(buf, s.data(), s.size()));
  EXPECT_EQ(vfs.ReadFile(*g.value(), buf, sizeof(buf)).value(), 0u);  // EOF
  vfs.files().Release(g.value());
}

TEST_F(VfsFixture, NameiWalksDirectoriesAndDotDot) {
  ASSERT_TRUE(vfs.Mkdir(root(), root(), root_cred, "/d1", 0755, 0).ok());
  ASSERT_TRUE(vfs.Mkdir(root(), root(), root_cred, "/d1/d2", 0755, 0).ok());
  ASSERT_TRUE(Open("/d1/d2/f", kOpenWrite | kOpenCreat).ok());
  auto ip = vfs.Namei(root(), root(), root_cred, "/d1/d2/../d2/./f");
  ASSERT_TRUE(ip.ok());
  vfs.inodes().Iput(ip.value());
  // ".." above the root stays at the root (chroot jail behaviour).
  auto top = vfs.Namei(root(), root(), root_cred, "/../../d1");
  ASSERT_TRUE(top.ok());
  vfs.inodes().Iput(top.value());
  EXPECT_EQ(vfs.Namei(root(), root(), root_cred, "/nope/f").error(), Errno::kENOENT);
  EXPECT_EQ(vfs.Namei(root(), root(), root_cred, "/d1/d2/f/deeper").error(), Errno::kENOTDIR);
  EXPECT_EQ(vfs.Namei(root(), root(), root_cred, "").error(), Errno::kENOENT);
}

TEST_F(VfsFixture, UmaskAppliesOnCreate) {
  auto f = Open("/masked", kOpenWrite | kOpenCreat, 0777, /*umask=*/027);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f.value()->inode()->mode(), 0750);
  vfs.files().Release(f.value());
}

TEST_F(VfsFixture, ExclFailsOnExisting) {
  ASSERT_TRUE(Open("/x", kOpenWrite | kOpenCreat).ok());
  EXPECT_EQ(Open("/x", kOpenWrite | kOpenCreat | kOpenExcl).error(), Errno::kEEXIST);
}

TEST_F(VfsFixture, TruncEmptiesFile) {
  auto f = Open("/t", kOpenWrite | kOpenCreat);
  auto s = Bytes("data");
  vfs.WriteFile(*f.value(), s.data(), s.size(), 1 << 20).value();
  auto g = Open("/t", kOpenWrite | kOpenTrunc);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value()->inode()->Size(), 0u);
}

TEST_F(VfsFixture, PermissionChecks) {
  auto f = Open("/guarded", kOpenWrite | kOpenCreat, 0640);
  ASSERT_TRUE(f.ok());
  f.value()->inode()->set_owner(10, 20);
  // Owner (uid 10): read ok, write ok.
  EXPECT_TRUE(Open("/guarded", kOpenRead, 0, 0, Cred{10, 99}).ok());
  EXPECT_TRUE(Open("/guarded", kOpenWrite, 0, 0, Cred{10, 99}).ok());
  // Group (gid 20): read only.
  EXPECT_TRUE(Open("/guarded", kOpenRead, 0, 0, Cred{11, 20}).ok());
  EXPECT_EQ(Open("/guarded", kOpenWrite, 0, 0, Cred{11, 20}).error(), Errno::kEACCES);
  // Other: nothing.
  EXPECT_EQ(Open("/guarded", kOpenRead, 0, 0, Cred{11, 21}).error(), Errno::kEACCES);
  // Root: everything.
  EXPECT_TRUE(Open("/guarded", kOpenRdwr, 0, 0, Cred{0, 0}).ok());
}

TEST_F(VfsFixture, DirectorySearchPermission) {
  ASSERT_TRUE(vfs.Mkdir(root(), root(), root_cred, "/locked", 0700, 0).ok());
  auto dir = vfs.Namei(root(), root(), root_cred, "/locked");
  dir.value()->set_owner(10, 10);
  vfs.inodes().Iput(dir.value());
  ASSERT_TRUE(Open("/locked/f", kOpenWrite | kOpenCreat, 0644, 0, Cred{10, 10}).ok());
  EXPECT_EQ(vfs.Namei(root(), root(), Cred{11, 11}, "/locked/f").error(), Errno::kEACCES);
}

TEST_F(VfsFixture, LinkUnlinkAndNlink) {
  auto f = Open("/orig", kOpenWrite | kOpenCreat);
  ASSERT_TRUE(f.ok());
  Inode* ip = f.value()->inode();
  EXPECT_EQ(ip->nlink, 1u);
  ASSERT_TRUE(vfs.Link(root(), root(), root_cred, "/orig", "/alias").ok());
  EXPECT_EQ(ip->nlink, 2u);
  ASSERT_TRUE(vfs.Unlink(root(), root(), root_cred, "/orig").ok());
  EXPECT_EQ(ip->nlink, 1u);
  // Still reachable through the alias.
  auto alias = vfs.Namei(root(), root(), root_cred, "/alias");
  ASSERT_TRUE(alias.ok());
  EXPECT_EQ(alias.value(), ip);
  vfs.inodes().Iput(alias.value());
  ASSERT_TRUE(vfs.Unlink(root(), root(), root_cred, "/alias").ok());
  EXPECT_EQ(vfs.Namei(root(), root(), root_cred, "/alias").error(), Errno::kENOENT);
  // The open reference keeps the data alive until released.
  auto s = Bytes("still-writable");
  EXPECT_EQ(vfs.WriteFile(*f.value(), s.data(), s.size(), 1 << 20).value(), s.size());
  const u64 inodes_before = vfs.inodes().Count();
  vfs.files().Release(f.value());
  EXPECT_EQ(vfs.inodes().Count(), inodes_before - 1);  // now truly gone
}

TEST_F(VfsFixture, RmdirSemantics) {
  ASSERT_TRUE(vfs.Mkdir(root(), root(), root_cred, "/dd", 0755, 0).ok());
  ASSERT_TRUE(Open("/dd/f", kOpenWrite | kOpenCreat).ok());
  EXPECT_EQ(vfs.Rmdir(root(), root(), root_cred, "/dd").error(), Errno::kENOTEMPTY);
  ASSERT_TRUE(vfs.Unlink(root(), root(), root_cred, "/dd/f").ok());
  EXPECT_TRUE(vfs.Rmdir(root(), root(), root_cred, "/dd").ok());
  EXPECT_EQ(vfs.Rmdir(root(), root(), root_cred, "/dd").error(), Errno::kENOENT);
  EXPECT_EQ(vfs.Unlink(root(), root(), root_cred, "/").error(), Errno::kEINVAL);
}

TEST_F(VfsFixture, SeekSemantics) {
  auto f = Open("/s", kOpenRdwr | kOpenCreat);
  auto s = Bytes("0123456789");
  vfs.WriteFile(*f.value(), s.data(), s.size(), 1 << 20).value();
  EXPECT_EQ(vfs.Seek(*f.value(), 2, SeekWhence::kSet).value(), 2u);
  std::byte b[1];
  vfs.ReadFile(*f.value(), b, 1).value();
  EXPECT_EQ(static_cast<char>(b[0]), '2');
  EXPECT_EQ(vfs.Seek(*f.value(), -1, SeekWhence::kEnd).value(), 9u);
  EXPECT_EQ(vfs.Seek(*f.value(), 5, SeekWhence::kCur).value(), 14u);  // past EOF ok
  EXPECT_EQ(vfs.Seek(*f.value(), -100, SeekWhence::kCur).error(), Errno::kEINVAL);
  // Writing past EOF zero-fills the hole.
  vfs.Seek(*f.value(), 14, SeekWhence::kSet).value();
  vfs.WriteFile(*f.value(), s.data(), 1, 1 << 20).value();
  EXPECT_EQ(f.value()->inode()->Size(), 15u);
}

TEST_F(VfsFixture, AppendAlwaysWritesAtEnd) {
  auto f = Open("/log", kOpenWrite | kOpenCreat | kOpenAppend);
  auto a = Bytes("aa");
  auto b = Bytes("bb");
  vfs.WriteFile(*f.value(), a.data(), a.size(), 1 << 20).value();
  vfs.Seek(*f.value(), 0, SeekWhence::kSet).value();
  vfs.WriteFile(*f.value(), b.data(), b.size(), 1 << 20).value();
  EXPECT_EQ(f.value()->inode()->Size(), 4u);
}

TEST_F(VfsFixture, UlimitTruncatesWrites) {
  auto f = Open("/lim", kOpenWrite | kOpenCreat);
  std::vector<std::byte> big(100, std::byte{1});
  EXPECT_EQ(vfs.WriteFile(*f.value(), big.data(), big.size(), 60).value(), 60u);
  EXPECT_EQ(vfs.WriteFile(*f.value(), big.data(), big.size(), 60).error(), Errno::kEFBIG);
}

TEST_F(VfsFixture, PipeBlockingAndEof) {
  auto made = vfs.MakePipe();
  ASSERT_TRUE(made.ok());
  auto [rd, wr] = made.value();
  auto s = Bytes("ping");
  EXPECT_EQ(vfs.WriteFile(*wr, s.data(), s.size(), 1 << 20).value(), 4u);
  std::byte buf[8];
  EXPECT_EQ(vfs.ReadFile(*rd, buf, sizeof(buf)).value(), 4u);

  // Blocking read wakes when data arrives.
  std::thread writer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    vfs.WriteFile(*wr, s.data(), 2, 1 << 20).value();
  });
  EXPECT_EQ(vfs.ReadFile(*rd, buf, sizeof(buf)).value(), 2u);
  writer.join();

  // EOF after the writer closes.
  vfs.files().Release(wr);
  EXPECT_EQ(vfs.ReadFile(*rd, buf, sizeof(buf)).value(), 0u);
  vfs.files().Release(rd);
}

TEST_F(VfsFixture, PipeWriteWithoutReadersFails) {
  auto made = vfs.MakePipe();
  auto [rd, wr] = made.value();
  vfs.files().Release(rd);
  auto s = Bytes("x");
  EXPECT_EQ(vfs.WriteFile(*wr, s.data(), 1, 1 << 20).error(), Errno::kEPIPE);
  vfs.files().Release(wr);
}

TEST_F(VfsFixture, PipeFullBlocksWriter) {
  auto made = vfs.MakePipe();
  auto [rd, wr] = made.value();
  std::vector<std::byte> fill(Pipe::kCapacity, std::byte{9});
  EXPECT_EQ(vfs.WriteFile(*wr, fill.data(), fill.size(), 1 << 20).value(), Pipe::kCapacity);
  std::atomic<bool> wrote{false};
  std::thread writer([&] {
    std::byte one{1};
    vfs.WriteFile(*wr, &one, 1, 1 << 20).value();
    wrote = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(wrote.load());
  std::byte buf[16];
  vfs.ReadFile(*rd, buf, sizeof(buf)).value();
  writer.join();
  EXPECT_TRUE(wrote.load());
  vfs.files().Release(rd);
  vfs.files().Release(wr);
}

TEST_F(VfsFixture, FdTableAllocLowestFirst) {
  FdTable fds;
  auto f = Open("/fd", kOpenWrite | kOpenCreat);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(fds.AllocSlot(f.value()).value(), 0);
  EXPECT_EQ(fds.AllocSlot(f.value()).value(), 1);
  fds.ClearSlot(0).value();
  EXPECT_EQ(fds.AllocSlot(f.value()).value(), 0);
  EXPECT_EQ(fds.OpenCount(), 2);
  EXPECT_EQ(fds.Get(5).error(), Errno::kEBADF);
  EXPECT_EQ(fds.Get(-1).error(), Errno::kEBADF);
}

TEST_F(VfsFixture, FileTableRefCounting) {
  auto f = Open("/rc", kOpenWrite | kOpenCreat);
  ASSERT_TRUE(f.ok());
  OpenFile* file = f.value();
  EXPECT_EQ(vfs.files().RefCount(file), 1u);
  vfs.files().Dup(file);
  EXPECT_EQ(vfs.files().RefCount(file), 2u);
  vfs.files().Release(file);
  EXPECT_EQ(vfs.files().RefCount(file), 1u);
  vfs.files().Release(file);
  EXPECT_EQ(vfs.files().RefCount(file), 0u);
  EXPECT_EQ(vfs.files().Count(), 0u);
}

}  // namespace
}  // namespace sg
