// Signals for share-group members and normal processes: handlers, kill,
// default termination, EINTR from interruptible sleeps, SIGKILL, SIGPIPE,
// SIGSEGV from the VM, and blocking masks.
#include <gtest/gtest.h>

#include <atomic>

#include "api/kernel.h"
#include "api/user_env.h"

namespace sg {
namespace {

void RunAsProcess(Kernel& k, std::function<void(Env&)> body) {
  auto pid = k.Launch([body = std::move(body)](Env& env, long) { body(env); });
  ASSERT_TRUE(pid.ok());
  k.WaitAll();
}

TEST(Signal, HandlerRunsOnKernelEntry) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    std::atomic<int> handled{0};
    env.Signal(kSigUsr1, [&](int sig) { handled = sig; });
    env.Kill(env.Pid(), kSigUsr1);
    // Delivery happens at a kernel entry; make one.
    env.Yield();
    EXPECT_EQ(handled.load(), kSigUsr1);
  });
}

TEST(Signal, DefaultTerminatesChild) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    pid_t pid = env.Fork([](Env& c, long) {
      while (true) {
        c.Yield();
      }
    });
    ASSERT_GT(pid, 0);
    EXPECT_EQ(env.Kill(pid, kSigTerm), 0);
    int sig = 0;
    EXPECT_EQ(env.WaitChild(nullptr, &sig), pid);
    EXPECT_EQ(sig, kSigTerm);
  });
}

TEST(Signal, IgnoredSignalDoesNothing) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    std::atomic<bool> armed{false};
    std::atomic<bool> shot{false};
    pid_t pid = env.Fork([&](Env& c, long) {
      c.SignalIgnore(kSigTerm);
      armed = true;
      while (!shot.load()) {
        c.Yield();
      }
      c.Yield();  // a kernel entry after the signal landed
      c.Exit(5);
    });
    while (!armed.load()) {
      env.Yield();
    }
    env.Kill(pid, kSigTerm);
    shot = true;
    int status = 0;
    int sig = 0;
    EXPECT_EQ(env.WaitChild(&status, &sig), pid);
    EXPECT_EQ(sig, 0);
    EXPECT_EQ(status, 5);  // ran to completion
  });
}

TEST(Signal, SigkillCannotBeCaughtOrIgnored) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    EXPECT_LT(env.SignalIgnore(kSigKill), 0);
    EXPECT_EQ(env.LastError(), Errno::kEINVAL);
    pid_t pid = env.Fork([](Env& c, long) {
      while (true) {
        c.Yield();
      }
    });
    env.Kill(pid, kSigKill);
    int sig = 0;
    EXPECT_EQ(env.WaitChild(nullptr, &sig), pid);
    EXPECT_EQ(sig, kSigKill);
  });
}

TEST(Signal, PauseWakesOnSignal) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    std::atomic<bool> woke{false};
    std::atomic<bool> armed{false};
    pid_t pid = env.Fork([&](Env& c, long) {
      c.Signal(kSigUsr2, [](int) {});
      armed = true;  // handler installed: a poke no longer kills us
      c.Pause();
      woke = true;
    });
    while (!armed.load()) {
      env.Yield();
    }
    // pause(2) is inherently racy against the poster (that is why
    // sigsuspend exists); keep poking until the child reports waking.
    while (!woke.load()) {
      env.Kill(pid, kSigUsr2);
      env.Yield();
    }
    env.WaitChild();
    EXPECT_TRUE(woke.load());
  });
}

TEST(Signal, InterruptsBlockedPipeRead) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    int rd = -1, wr = -1;
    ASSERT_EQ(env.Pipe(&rd, &wr), 0);
    std::atomic<int> read_errno{-1};
    std::atomic<bool> armed{false};
    pid_t pid = env.Fork([&, rd](Env& c, long) {
      c.Signal(kSigUsr1, [](int) {});
      armed = true;
      char b[4];
      i64 n = c.ReadBuf(rd, std::as_writable_bytes(std::span<char>(b, 4)));
      EXPECT_LT(n, 0);
      read_errno = static_cast<int>(c.LastError());
    });
    while (!armed.load()) {
      env.Yield();
    }
    // Poke until the interrupted read reports in (the first signals may
    // land before the child actually blocks).
    while (read_errno.load() == -1) {
      env.Kill(pid, kSigUsr1);
      env.Yield();
    }
    env.WaitChild();
    EXPECT_EQ(read_errno.load(), static_cast<int>(Errno::kEINTR));
  });
}

TEST(Signal, SigpipeOnWriteWithoutReaders) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    pid_t pid = env.Fork([](Env& c, long) {
      int rd = -1, wr = -1;
      ASSERT_EQ(c.Pipe(&rd, &wr), 0);
      c.Close(rd);
      c.WriteStr(wr, "x");  // EPIPE + SIGPIPE: default kills us
      ADD_FAILURE() << "survived SIGPIPE";
    });
    int sig = 0;
    EXPECT_EQ(env.WaitChild(nullptr, &sig), pid);
    EXPECT_EQ(sig, kSigPipe);
  });
}

TEST(Signal, SegvOnWildAccess) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    pid_t pid = env.Fork([](Env& c, long) {
      c.Load32(0x10);  // unmapped
      ADD_FAILURE() << "survived SIGSEGV";
    });
    int sig = 0;
    EXPECT_EQ(env.WaitChild(nullptr, &sig), pid);
    EXPECT_EQ(sig, kSigSegv);
  });
}

TEST(Signal, BlockedSignalDeliveredAfterUnmask) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    std::atomic<int> handled{0};
    env.Signal(kSigUsr1, [&](int) { handled.fetch_add(1); });
    auto old = env.kernel().Sigsetmask(env.proc(), SigBit(kSigUsr1));
    ASSERT_TRUE(old.ok());
    env.Kill(env.Pid(), kSigUsr1);
    env.Yield();
    EXPECT_EQ(handled.load(), 0);  // held pending while blocked
    env.kernel().Sigsetmask(env.proc(), 0).value();
    env.Yield();
    EXPECT_EQ(handled.load(), 1);
  });
}

TEST(Signal, KillPermissionDenied) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    std::atomic<bool> hold{true};
    pid_t victim = env.Fork([&](Env& c, long) {
      while (hold.load()) {
        c.Yield();
      }
    });
    pid_t attacker = env.Fork(
        [&, victim](Env& c, long) {
          ASSERT_EQ(c.Setuid(50), 0);  // we are root; drop to uid 50
          EXPECT_LT(c.Kill(victim, kSigTerm), 0);
          EXPECT_EQ(c.LastError(), Errno::kEPERM);
          EXPECT_LT(c.Kill(99999, kSigTerm), 0);
          EXPECT_EQ(c.LastError(), Errno::kESRCH);
        });
    ASSERT_GT(attacker, 0);
    // Reap the attacker first, then release the victim.
    int n = 0;
    while (n < 1) {
      if (env.WaitChild() == attacker) {
        break;
      }
      ++n;
    }
    hold = false;
    env.WaitChild();
  });
}

TEST(Signal, SignalWorksInsideShareGroup) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    // "Signals, system calls, traps and other process events should happen
    // in an expected way" for group members too.
    std::atomic<int> handled{0};
    std::atomic<pid_t> member{0};
    pid_t pid = env.Sproc(
        [&](Env& c, long) {
          c.Signal(kSigUsr2, [&](int) { handled.fetch_add(1); });
          member = c.Pid();
          while (handled.load() == 0) {
            c.Yield();
          }
        },
        PR_SALL);
    ASSERT_GT(pid, 0);
    while (member.load() == 0) {
      env.Yield();
    }
    env.Kill(member.load(), kSigUsr2);
    env.WaitChild();
    EXPECT_EQ(handled.load(), 1);
  });
}

}  // namespace
}  // namespace sg
