// Direct ShaddrBlock unit tests (no kernel): the member chain at the
// structure level, master-copy seeding, and the TryAddMember drain guard
// that PR_JOINGROUP relies on.
#include <gtest/gtest.h>

#include "core/shaddr.h"
#include "core/share_mask.h"
#include "fs/vfs.h"
#include "hw/cpu_set.h"
#include "proc/proc.h"
#include "proc/scheduler.h"

namespace sg {
namespace {

struct Rig {
  PhysMem mem{64 * kPageSize};
  CpuSet cpus{2};
  Scheduler sched{2};
  Vfs vfs{64, 64};

  std::unique_ptr<Proc> MakeProc(pid_t pid) {
    auto p = std::make_unique<Proc>(pid, mem, sched, 64);
    p->cwd = vfs.inodes().Iget(vfs.root());
    p->rootdir = vfs.inodes().Iget(vfs.root());
    return p;
  }
  void DestroyProc(Proc& p) {
    vfs.inodes().Iput(p.cwd);
    vfs.inodes().Iput(p.rootdir);
    p.as.DetachAllPrivate();
  }
};

TEST(ShaddrUnit, CreatorSeedsMasterCopies) {
  Rig rig;
  auto a = rig.MakeProc(1);
  a->umask = 031;
  a->ulimit = 4242;
  a->uid = 7;
  a->gid = 8;
  ShaddrBlock block(*a, rig.cpus, rig.vfs);
  EXPECT_EQ(block.refcnt(), 1u);
  EXPECT_EQ(a->p_shmask, PR_SALL);  // "a mask indicating that all resources are shared"
  EXPECT_EQ(block.cmask(), 031);
  EXPECT_EQ(block.limit(), 4242u);
  EXPECT_EQ(block.uid(), 7);
  EXPECT_EQ(block.gid(), 8);
  EXPECT_EQ(block.cdir(), a->cwd);
  // The block holds its own inode references (+2 on the root: cdir+rdir).
  EXPECT_GE(rig.vfs.inodes().RefCount(rig.vfs.root()), 4u);
  EXPECT_TRUE(block.RemoveMember(*a));
  rig.DestroyProc(*a);
}

TEST(ShaddrUnit, MemberChainLinksAndUnlinksInAnyOrder) {
  Rig rig;
  auto a = rig.MakeProc(1);
  auto b = rig.MakeProc(2);
  auto c = rig.MakeProc(3);
  ShaddrBlock block(*a, rig.cpus, rig.vfs);
  block.AddMember(*b, PR_SFDS);
  block.AddMember(*c, PR_SUMASK);
  EXPECT_EQ(block.refcnt(), 3u);
  int seen = 0;
  block.ForEachMember([&](Proc&) { ++seen; });
  EXPECT_EQ(seen, 3);
  // Remove the MIDDLE of the chain first, then the rest.
  EXPECT_FALSE(block.RemoveMember(*b));
  EXPECT_EQ(block.refcnt(), 2u);
  EXPECT_FALSE(block.RemoveMember(*a));
  EXPECT_TRUE(block.RemoveMember(*c));
  rig.DestroyProc(*a);
  rig.DestroyProc(*b);
  rig.DestroyProc(*c);
}

TEST(ShaddrUnit, TryAddMemberRefusesDrainedBlock) {
  Rig rig;
  auto a = rig.MakeProc(1);
  auto b = rig.MakeProc(2);
  ShaddrBlock block(*a, rig.cpus, rig.vfs);
  EXPECT_TRUE(block.RemoveMember(*a));  // refcnt 0: the block is draining
  // A dynamic joiner racing the last exit must be turned away.
  EXPECT_FALSE(block.TryAddMember(*b, PR_SALL & ~PR_SADDR));
  EXPECT_EQ(b->shaddr, nullptr);
  rig.DestroyProc(*a);
  rig.DestroyProc(*b);
}

TEST(ShaddrUnit, FlagOthersRespectsPerResourceMasks) {
  Rig rig;
  auto a = rig.MakeProc(1);
  auto b = rig.MakeProc(2);  // shares umask only
  auto c = rig.MakeProc(3);  // shares ulimit only
  ShaddrBlock block(*a, rig.cpus, rig.vfs);
  block.AddMember(*b, PR_SUMASK);
  block.AddMember(*c, PR_SULIMIT);
  a->umask = 011;
  block.UpdateUmask(*a, 011);
  EXPECT_EQ(b->p_flag.load() & kPfSyncUmask, kPfSyncUmask);  // flagged
  EXPECT_EQ(c->p_flag.load() & kPfSyncUmask, 0u);            // not sharing it
  block.UpdateUlimit(*a, 999);
  EXPECT_EQ(c->p_flag.load() & kPfSyncUlimit, kPfSyncUlimit);
  EXPECT_EQ(b->p_flag.load() & kPfSyncUlimit, 0u);
  // Each member's entry-sync pulls only its own resource.
  block.SyncOnKernelEntry(*b);
  EXPECT_EQ(b->umask, 011);
  EXPECT_NE(b->ulimit, 999u);
  block.SyncOnKernelEntry(*c);
  EXPECT_EQ(c->ulimit, 999u);
  EXPECT_NE(c->umask, 011);
  EXPECT_FALSE(block.RemoveMember(*b));
  EXPECT_FALSE(block.RemoveMember(*c));
  EXPECT_TRUE(block.RemoveMember(*a));
  rig.DestroyProc(*a);
  rig.DestroyProc(*b);
  rig.DestroyProc(*c);
}

}  // namespace
}  // namespace sg
