// Direct ShaddrBlock unit tests (no kernel): the member chain at the
// structure level, master-copy seeding, and the TryAddMember drain guard
// that PR_JOINGROUP relies on.
#include <gtest/gtest.h>

#include <thread>

#include "core/shaddr.h"
#include "core/share_mask.h"
#include "fs/vfs.h"
#include "hw/cpu_set.h"
#include "proc/proc.h"
#include "proc/scheduler.h"
#include "rm/rm.h"

namespace sg {
namespace {

struct Rig {
  PhysMem mem{64 * kPageSize};
  CpuSet cpus{2};
  Scheduler sched{2};
  Vfs vfs{64, 64};
  rm::ResourceManager rm;

  std::unique_ptr<Proc> MakeProc(pid_t pid) {
    auto p = std::make_unique<Proc>(pid, mem, sched, 64);
    p->cwd = vfs.inodes().Iget(vfs.root());
    p->rootdir = vfs.inodes().Iget(vfs.root());
    return p;
  }
  void DestroyProc(Proc& p) {
    vfs.inodes().Iput(p.cwd);
    vfs.inodes().Iput(p.rootdir);
    p.as.DetachAllPrivate();
  }
  // Raw attach mirroring the kernel's admission contract: the caller charges
  // the member cap before AddMember (RemoveMember owns the uncharge).
  void Attach(ShaddrBlock& blk, Proc& p, u32 mask) {
    blk.rm_node()->ChargeForced(rm::Resource::kMembers, 1);
    blk.AddMember(p, mask);
  }
  void ReleaseFds(Proc& p) {
    for (FdEntry& e : p.fds.slots()) {
      if (e.used()) {
        vfs.files().Release(e.file);
        e = FdEntry{};
      }
    }
  }
};

TEST(ShaddrUnit, CreatorSeedsMasterCopies) {
  Rig rig;
  auto a = rig.MakeProc(1);
  a->umask = 031;
  a->ulimit = 4242;
  a->uid = 7;
  a->gid = 8;
  ShaddrBlock block(*a, rig.cpus, rig.vfs, rig.rm);
  EXPECT_EQ(block.refcnt(), 1u);
  EXPECT_EQ(a->p_shmask, PR_SALL);  // "a mask indicating that all resources are shared"
  EXPECT_EQ(block.cmask(), 031);
  EXPECT_EQ(block.limit(), 4242u);
  EXPECT_EQ(block.uid(), 7);
  EXPECT_EQ(block.gid(), 8);
  EXPECT_EQ(block.cdir(), a->cwd);
  // The block holds its own inode references (+2 on the root: cdir+rdir).
  EXPECT_GE(rig.vfs.inodes().RefCount(rig.vfs.root()), 4u);
  EXPECT_TRUE(block.RemoveMember(*a));
  rig.DestroyProc(*a);
}

TEST(ShaddrUnit, MemberChainLinksAndUnlinksInAnyOrder) {
  Rig rig;
  auto a = rig.MakeProc(1);
  auto b = rig.MakeProc(2);
  auto c = rig.MakeProc(3);
  ShaddrBlock block(*a, rig.cpus, rig.vfs, rig.rm);
  rig.Attach(block, *b, PR_SFDS);
  rig.Attach(block, *c, PR_SUMASK);
  EXPECT_EQ(block.refcnt(), 3u);
  int seen = 0;
  block.ForEachMember([&](Proc&) { ++seen; });
  EXPECT_EQ(seen, 3);
  // Remove the MIDDLE of the chain first, then the rest.
  EXPECT_FALSE(block.RemoveMember(*b));
  EXPECT_EQ(block.refcnt(), 2u);
  EXPECT_FALSE(block.RemoveMember(*a));
  EXPECT_TRUE(block.RemoveMember(*c));
  rig.DestroyProc(*a);
  rig.DestroyProc(*b);
  rig.DestroyProc(*c);
}

TEST(ShaddrUnit, TryAddMemberRefusesDrainedBlock) {
  Rig rig;
  auto a = rig.MakeProc(1);
  auto b = rig.MakeProc(2);
  ShaddrBlock block(*a, rig.cpus, rig.vfs, rig.rm);
  EXPECT_TRUE(block.RemoveMember(*a));  // refcnt 0: the block is draining
  // A dynamic joiner racing the last exit must be turned away.
  EXPECT_FALSE(block.TryAddMember(*b, PR_SALL & ~PR_SADDR));
  EXPECT_EQ(b->shaddr, nullptr);
  rig.DestroyProc(*a);
  rig.DestroyProc(*b);
}

TEST(ShaddrUnit, EntrySyncRespectsPerResourceMasks) {
  Rig rig;
  auto a = rig.MakeProc(1);
  auto b = rig.MakeProc(2);  // shares umask only
  auto c = rig.MakeProc(3);  // shares ulimit only
  ShaddrBlock block(*a, rig.cpus, rig.vfs, rig.rm);
  rig.Attach(block, *b, PR_SUMASK);
  rig.Attach(block, *c, PR_SULIMIT);
  a->umask = 011;
  block.UpdateUmask(*a, 011);
  // O(1) updates: nobody's p_flag is touched; staleness is carried by the
  // generation lanes alone.
  EXPECT_EQ(b->p_flag.load() & kPfSyncAny, 0u);
  EXPECT_EQ(c->p_flag.load() & kPfSyncAny, 0u);
  block.UpdateUlimit(*a, 999);
  // Each member's entry-sync pulls only the resources it shares; the other
  // lanes are adopted without touching the member's private copies.
  block.SyncOnKernelEntry(*b);
  EXPECT_EQ(b->umask, 011);
  EXPECT_NE(b->ulimit, 999u);
  EXPECT_EQ(b->p_resgen, block.resgen());  // fully caught up either way
  block.SyncOnKernelEntry(*c);
  EXPECT_EQ(c->ulimit, 999u);
  EXPECT_NE(c->umask, 011);
  EXPECT_EQ(c->p_resgen, block.resgen());
  EXPECT_FALSE(block.RemoveMember(*b));
  EXPECT_FALSE(block.RemoveMember(*c));
  EXPECT_TRUE(block.RemoveMember(*a));
  rig.DestroyProc(*a);
  rig.DestroyProc(*b);
  rig.DestroyProc(*c);
}

TEST(ShaddrUnit, ScalarLaneWrapFallsBackToFlagging) {
  Rig rig;
  auto a = rig.MakeProc(1);
  auto b = rig.MakeProc(2);
  ShaddrBlock block(*a, rig.cpus, rig.vfs, rig.rm);
  rig.Attach(block, *b, PR_SUMASK);
  block.SyncOnKernelEntry(*b);  // start b fully caught up
  // Drive the 12-bit umask lane all the way around. A member whose cached
  // lane would alias (exactly 2^bits updates behind) must still be caught:
  // the wrap falls back to the paper's p_flag walk, which forces the pull
  // independently of the word compare.
  bool flagged_at_wrap = false;
  for (u64 i = 0; i < LaneLimit(kLaneUmask); ++i) {
    block.UpdateUmask(*a, static_cast<mode_t>(i & 0777));
    if ((b->p_flag.load() & kPfSyncUmask) != 0) {
      flagged_at_wrap = true;
    }
  }
  EXPECT_TRUE(flagged_at_wrap);
  // After the full cycle b's cached lane EQUALS the block's lane again —
  // only the forced bit makes the entry-sync pull the fresh value.
  EXPECT_EQ(LaneGet(b->p_resgen, kLaneUmask), LaneGet(block.resgen(), kLaneUmask));
  block.SyncOnKernelEntry(*b);
  EXPECT_EQ(b->umask, a->umask);
  EXPECT_EQ(b->p_flag.load() & kPfSyncUmask, 0u);
  EXPECT_FALSE(block.RemoveMember(*b));
  EXPECT_TRUE(block.RemoveMember(*a));
  rig.DestroyProc(*a);
  rig.DestroyProc(*b);
}

TEST(ShaddrUnit, FdLaneWrapFallsBackToFlagging) {
  Rig rig;
  auto a = rig.MakeProc(1);
  auto b = rig.MakeProc(2);
  // a holds one open file in slot 0 before the group forms, so the block's
  // master copy seeds with it.
  OpenFile* f = rig.vfs.files().Alloc(rig.vfs.inodes().Iget(rig.vfs.root()), kOpenRead).value();
  ASSERT_TRUE(a->fds.SetSlot(0, f, false).ok());
  {
    ShaddrBlock block(*a, rig.cpus, rig.vfs, rig.rm);
    rig.Attach(block, *b, PR_SFDS);
    // Raw attach (no sproc seeding): force a full reconcile, the same way
    // PR_JOINGROUP initializes a dynamic joiner.
    b->p_flag.fetch_or(kPfSyncFds, std::memory_order_acq_rel);
    block.LockFileUpdate();
    block.PullFdsIfFlagged(*b);  // b catches up (and dups slot 0)
    block.UnlockFileUpdate();
    EXPECT_EQ(rig.vfs.files().RefCount(f), 3u);  // a + master + b

    // Drive the full-width table generation around the 16-bit lane mirror
    // by toggling slot 0's flag byte (one changed slot per publish, no
    // refcount traffic). After 2^16 publishes b's cached lane ALIASES the
    // block's again; only the wrap's FlagOthers fallback can catch it.
    bool flagged_at_wrap = false;
    for (u64 i = 0; i < LaneLimit(kLaneFds); ++i) {
      a->fds.Slot(0).close_on_exec = !a->fds.Slot(0).close_on_exec;
      block.LockFileUpdate();
      block.PullFdsIfFlagged(*a);
      block.PublishFds(*a);
      block.UnlockFileUpdate();
      if ((b->p_flag.load() & kPfSyncFds) != 0) {
        flagged_at_wrap = true;
      }
    }
    EXPECT_TRUE(flagged_at_wrap);
    EXPECT_EQ(LaneGet(b->p_resgen, kLaneFds), LaneGet(block.resgen(), kLaneFds));
    // The forced (flag-driven) pull reconciles despite the lane alias.
    block.SyncOnKernelEntry(*b);
    EXPECT_EQ(b->fds.Slot(0).close_on_exec, a->fds.Slot(0).close_on_exec);
    EXPECT_EQ(b->p_flag.load() & kPfSyncFds, 0u);

    rig.ReleaseFds(*a);
    rig.ReleaseFds(*b);
    EXPECT_FALSE(block.RemoveMember(*b));
    EXPECT_TRUE(block.RemoveMember(*a));
  }
  // Refcount balance: member slots and the block's master copy all dropped.
  EXPECT_EQ(rig.vfs.files().Count(), 0u);
  rig.DestroyProc(*a);
  rig.DestroyProc(*b);
}

// Regression (the sgcheck find): UpdateDir/PullDir used to call Iget/Iput —
// which take the inode-table mutex and may block — while holding rupdlock_,
// a spinlock. The fix takes the table mutex FIRST (InodeTable::Acquire,
// which reports itself to lockdep as a sleep site) and runs the *Locked
// forms inside the spinlock, so the old order now fails three ways: sgcheck
// sleep-in-atomic statically, lockdep's sleep-under-spin check dynamically
// in this very test, and tsan on the concurrent section below.
TEST(ShaddrUnit, DirUpdateTakesInodeTableMutexBeforeRupdlock) {
  Rig rig;
  auto a = rig.MakeProc(1);
  auto b = rig.MakeProc(2);

  const Cred cred;
  ASSERT_TRUE(rig.vfs.Mkdir(a->cwd, a->rootdir, cred, "/sub", 0755, 0).ok());
  Inode* sub = rig.vfs.Namei(a->cwd, a->rootdir, cred, "/sub").value();  // counted

  {
    ShaddrBlock block(*a, rig.cpus, rig.vfs, rig.rm);
    rig.Attach(block, *b, PR_SDIR);

    // a chdirs: the counted /sub ref transfers to UpdateDir, which installs
    // it as a's cwd and reseats the block's master copy (its own ref).
    block.UpdateDir(*a, sub, nullptr);
    EXPECT_EQ(a->cwd, sub);
    EXPECT_EQ(block.cdir(), sub);
    EXPECT_EQ(rig.vfs.inodes().RefCount(sub), 2u);  // a->cwd + master copy

    // b syncs on its next kernel entry: same directory, its own counted
    // ref; the root stays its root.
    block.SyncOnKernelEntry(*b);
    EXPECT_EQ(b->cwd, sub);
    EXPECT_EQ(b->rootdir, rig.vfs.root());
    EXPECT_EQ(rig.vfs.inodes().RefCount(sub), 3u);

    // Concurrent updater/puller: every iteration crosses the inode-table
    // mutex + rupdlock_ pair, so a lock-order regression trips lockdep (and
    // tsan sees any unlocked refcount traffic).
    std::thread updater([&] {
      for (int i = 0; i < 100; ++i) {
        Inode* next = rig.vfs.inodes().Iget(i % 2 == 0 ? rig.vfs.root() : sub);
        block.UpdateDir(*a, next, nullptr);
      }
    });
    std::thread puller([&] {
      for (int i = 0; i < 100; ++i) {
        block.SyncOnKernelEntry(*b);
      }
    });
    updater.join();
    puller.join();
    block.SyncOnKernelEntry(*b);
    EXPECT_EQ(b->cwd, a->cwd);
    EXPECT_EQ(b->rootdir, a->rootdir);

    EXPECT_FALSE(block.RemoveMember(*b));
    EXPECT_TRUE(block.RemoveMember(*a));
  }
  rig.DestroyProc(*a);
  rig.DestroyProc(*b);
  // Everything released: only the namespace (nlink) keeps /sub alive.
  EXPECT_EQ(rig.vfs.inodes().RefCount(sub), 0u);
}

}  // namespace
}  // namespace sg
