// sproc(2) semantics (§5.1): group creation, share-mask selection, strict
// inheritance, stacks, PRDA privacy, and the shared-VM fundamentals.
#include <gtest/gtest.h>

#include <atomic>

#include "api/kernel.h"
#include "api/user_env.h"

namespace sg {
namespace {

TEST(Sproc, LaunchAndExit) {
  Kernel k;
  std::atomic<int> ran{0};
  auto pid = k.Launch([&](Env&, long arg) { ran = static_cast<int>(arg); }, 42);
  ASSERT_TRUE(pid.ok());
  k.WaitAll();
  EXPECT_EQ(ran.load(), 42);
}

TEST(Sproc, FirstSprocCreatesGroupAndChildJoins) {
  Kernel k;
  std::atomic<u32> observed_refcnt{0};
  std::atomic<pid_t> child_pid{0};
  std::atomic<bool> gate{false};
  (void)k.Launch([&](Env& env, long) {
    pid_t pid = env.Sproc(
        [&](Env& child_env, long) {
          child_pid = child_env.Pid();
          while (!gate.load()) {
            child_env.Yield();  // hold membership until the parent looks
          }
        },
        PR_SALL);
    ASSERT_GT(pid, 0);
    ShaddrBlock* b = env.proc().shaddr;
    ASSERT_NE(b, nullptr);
    observed_refcnt = b->refcnt();
    gate = true;
    EXPECT_EQ(env.WaitChild(), pid);
  });
  k.WaitAll();
  EXPECT_EQ(observed_refcnt.load(), 2u);
  EXPECT_GT(child_pid.load(), 0);
  EXPECT_EQ(k.LiveBlocks(), 0u);  // thrown away once the last member exits
}

TEST(Sproc, SharedAddressSpaceSeesStores) {
  Kernel k;
  std::atomic<u32> seen{0};
  (void)k.Launch([&](Env& env, long) {
    vaddr_t buf = env.Mmap(kPageSize);
    ASSERT_NE(buf, 0u);
    env.Store32(buf, 0);
    pid_t pid = env.Sproc(
        [buf](Env& c, long) {
          // Spin until the parent's store is visible through the shared image.
          while (c.AtomicRead32(buf) != 1234) {
            c.Yield();
          }
          c.Store32(buf + 4, 5678);
        },
        PR_SADDR);
    ASSERT_GT(pid, 0);
    env.Store32(buf, 1234);
    while (env.AtomicRead32(buf + 4) != 5678) {
      env.Yield();
    }
    seen = env.Load32(buf + 4);
    env.WaitChild();
  });
  k.WaitAll();
  EXPECT_EQ(seen.load(), 5678u);
}

TEST(Sproc, NonSharedVmChildGetsCowImage) {
  Kernel k;
  std::atomic<u32> parent_after{0};
  std::atomic<u32> child_saw{0};
  (void)k.Launch([&](Env& env, long) {
    vaddr_t buf = env.Mmap(kPageSize);
    env.Store32(buf, 111);
    pid_t pid = env.Sproc(
        [&, buf](Env& c, long) {
          child_saw = c.Load32(buf);  // COW copy: parent's value at sproc time
          c.Store32(buf, 999);        // must NOT leak into the parent
        },
        PR_SFDS /* group member, but no PR_SADDR */);
    ASSERT_GT(pid, 0);
    env.WaitChild();
    parent_after = env.Load32(buf);
  });
  k.WaitAll();
  EXPECT_EQ(child_saw.load(), 111u);
  EXPECT_EQ(parent_after.load(), 111u);
}

TEST(Sproc, StrictInheritanceMasksChildShmask) {
  Kernel k;
  std::atomic<u32> grandchild_mask{0xffffffff};
  (void)k.Launch([&](Env& env, long) {
    // Child shares only FDS+DIR; its own sproc asking for ALL must be
    // masked down to FDS|DIR ("a process can only cause a child to share
    // those resources that the parent can share as well").
    pid_t pid = env.Sproc(
        [&](Env& c, long) {
          pid_t gpid = c.Sproc([&](Env& g, long) { grandchild_mask = g.proc().p_shmask.load(); },
                               PR_SALL);
          ASSERT_GT(gpid, 0);
          c.WaitChild();
        },
        PR_SFDS | PR_SDIR);
    ASSERT_GT(pid, 0);
    env.WaitChild();
  });
  k.WaitAll();
  EXPECT_EQ(grandchild_mask.load(), PR_SFDS | PR_SDIR);
}

TEST(Sproc, ChildStackIsVisibleToOtherMembers) {
  Kernel k;
  std::atomic<u32> read_from_childs_stack{0};
  (void)k.Launch([&](Env& env, long) {
    std::atomic<vaddr_t> child_stack{0};
    pid_t pid = env.Sproc(
        [&](Env& c, long) {
          // Write into our own stack region (group-visible, §5.1: "This new
          // stack is visible to all other processes in the share group").
          const vaddr_t slot = c.proc().stack_base + 64;
          c.Store32(slot, 4242);
          child_stack = slot;
          while (read_from_childs_stack.load() == 0) {
            c.Yield();
          }
        },
        PR_SADDR);
    ASSERT_GT(pid, 0);
    while (child_stack.load() == 0) {
      env.Yield();
    }
    read_from_childs_stack = env.Load32(child_stack.load());
    env.WaitChild();
  });
  k.WaitAll();
  EXPECT_EQ(read_from_childs_stack.load(), 4242u);
}

TEST(Sproc, PrdaStaysPrivatePerMember) {
  Kernel k;
  std::atomic<u32> parent_prda{0};
  std::atomic<u32> child_prda{0};
  (void)k.Launch([&](Env& env, long) {
    const vaddr_t slot = Env::PrdaUserBase();
    env.Store32(slot, 1);
    pid_t pid = env.Sproc(
        [&, slot](Env& c, long) {
          // Fully shared VM, yet the PRDA page is per-process: the parent's
          // value must NOT be visible here.
          child_prda = c.Load32(slot);
          c.Store32(slot, 2);
        },
        PR_SADDR);
    ASSERT_GT(pid, 0);
    env.WaitChild();
    parent_prda = env.Load32(slot);
  });
  k.WaitAll();
  EXPECT_EQ(child_prda.load(), 0u);   // fresh, zero-filled PRDA
  EXPECT_EQ(parent_prda.load(), 1u);  // untouched by the child's store
}

TEST(Sproc, ErrnoInPrdaIsPerProcess) {
  Kernel k;
  std::atomic<int> parent_errno{0};
  std::atomic<int> child_errno{0};
  (void)k.Launch([&](Env& env, long) {
    EXPECT_LT(env.Open("/does-not-exist", kOpenRead), 0);
    pid_t pid = env.Sproc(
        [&](Env& c, long) {
          child_errno = static_cast<int>(c.LastError());  // must be clean
        },
        PR_SADDR);
    env.WaitChild();
    parent_errno = static_cast<int>(env.LastError());
    (void)pid;
  });
  k.WaitAll();
  EXPECT_EQ(parent_errno.load(), static_cast<int>(Errno::kENOENT));
  EXPECT_EQ(child_errno.load(), 0);
}

TEST(Sproc, SprocPassesArgument) {
  Kernel k;
  std::atomic<long> got{0};
  (void)k.Launch([&](Env& env, long) {
    env.Sproc([&](Env&, long arg) { got = arg; }, PR_SALL, 777);
    env.WaitChild();
  });
  k.WaitAll();
  EXPECT_EQ(got.load(), 777);
}

TEST(Sproc, ForkLeavesShareGroup) {
  Kernel k;
  std::atomic<bool> fork_child_in_group{true};
  std::atomic<u32> refcnt_after_fork{0};
  (void)k.Launch([&](Env& env, long) {
    env.Sproc([](Env& c, long) { (void)c; }, PR_SALL);
    env.WaitChild();
    pid_t pid = env.Fork([&](Env& c, long) {
      fork_child_in_group = (c.proc().shaddr != nullptr);
    });
    ASSERT_GT(pid, 0);
    env.WaitChild();
    refcnt_after_fork = env.proc().shaddr->refcnt();
  });
  k.WaitAll();
  EXPECT_FALSE(fork_child_in_group.load());
  EXPECT_EQ(refcnt_after_fork.load(), 1u);
}

TEST(Sproc, ExecRemovesFromShareGroup) {
  Kernel k;
  std::atomic<bool> exec_in_group{true};
  std::atomic<u32> mask_after_exec{123};
  (void)k.Launch([&](Env& env, long) {
    pid_t pid = env.Sproc(
        [&](Env& c, long) {
          Image img;
          img.main = [&](Env& e2, long) {
            exec_in_group = (e2.proc().shaddr != nullptr);
            mask_after_exec = e2.proc().p_shmask.load();
          };
          c.Exec(img);
          ADD_FAILURE() << "exec returned";
        },
        PR_SALL);
    ASSERT_GT(pid, 0);
    env.WaitChild();
  });
  k.WaitAll();
  EXPECT_FALSE(exec_in_group.load());
  EXPECT_EQ(mask_after_exec.load(), 0u);
}

}  // namespace
}  // namespace sg
