// Lifecycle storm: sproc/exec/exit/close churn across share groups under
// thousands of seeded injection schedules (src/inject/). Every run boots a
// fresh kernel, installs an InjectionPlan, drives a fixed cast of workers
// whose op mixes are derived from (seed, worker index) — NOT from pids,
// which are interleaving-dependent — and then checks the global teardown
// invariants: no live share blocks, no leaked open files, every physical
// frame back in the allocator.
//
// Reproducing a failure: every assertion inside a storm run is annotated
// with the seed. Re-run just that schedule with
//
//   SG_STORM_SEED=<seed> ctest -R LifecycleStorm.ReplayEnvSeed
//
// (see the Replay test below and README.md).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>

#include "api/kernel.h"
#include "api/user_env.h"
#include "core/share_mask.h"
#include "inject/inject.h"
#include "obs/stats.h"
#include "rm/rm.h"
#include "sync/lockdep.h"

#if defined(__SANITIZE_THREAD__)
#define SG_STORM_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SG_STORM_TSAN 1
#endif
#endif

namespace sg {
namespace {

#if defined(SG_INJECT_ENABLED)

// Deterministic per-worker op stream (splitmix64). Seeded from the plan
// seed and the worker's index so the stream does not depend on pid
// assignment order.
struct Rng {
  u64 s;
  u64 Next() {
    s += 0x9e3779b97f4a7c15ull;
    u64 z = s;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  u32 Pick(u32 n) { return static_cast<u32>(Next() % n); }
};

u64 WorkerSeed(u64 seed, u32 worker) { return seed * 0x100000001b3ull + worker; }

// A few rounds of fd-table churn: open/dup/close against the shared master
// table plus the occasional shared-scalar update. Every op tolerates the
// plan's injected resource failures (ENFILE/ENOMEM-class).
void FdChurn(Env& e, u64 rng_seed, int rounds) {
  Rng rng{rng_seed};
  for (int i = 0; i < rounds; ++i) {
    switch (rng.Pick(6)) {
      case 0:
      case 1: {
        const std::string path = "/s" + std::to_string(rng.Pick(8));
        int fd = e.Open(path, kOpenRdwr | kOpenCreat);
        if (fd >= 0) {
          switch (rng.Pick(4)) {
            case 0: {
              int d = e.Dup(fd);
              if (d >= 0) {
                e.Close(d);
              }
              break;
            }
            case 1: {
              // Fixed-target dup2: members race to repoint the same slot,
              // exercising delta publishes that REPLACE a live master slot.
              int d = e.Dup2(fd, 40 + static_cast<int>(rng.Pick(4)));
              if (d >= 0) {
                e.Close(d);
              }
              break;
            }
            case 2:
              // Flag-byte-only publish (slot gen bumps, no refcount move).
              (void)e.SetCloexec(fd, rng.Pick(2) == 0);
              break;
            default:
              break;
          }
          e.Close(fd);
        }
        break;
      }
      case 2:
        e.Umask(static_cast<mode_t>(rng.Pick(0777)));
        break;
      case 3:
        e.Setuid(0);  // no-op identity write through the PR_SID path
        break;
      case 4:
        e.Chdir("/");
        break;
      case 5:
        e.Yield();
        break;
    }
  }
}

// Reads /proc/share and every group file under it — racing group teardown
// on other threads. Content is unchecked (groups come and go); the point
// is that the read itself is safe.
void PokeProcShare(Env& e) {
  for (const std::string& name : e.ListDir("/proc/share")) {
    int fd = e.Open("/proc/share/" + name, kOpenRead);
    if (fd >= 0) {
      std::byte buf[512];
      (void)e.ReadBuf(fd, buf);
      e.Close(fd);
    }
  }
}

// One seeded schedule: boot, storm, teardown, check invariants.
void RunStorm(u64 seed, const inject::PlanConfig& cfg) {
  SCOPED_TRACE("replay with SG_STORM_SEED=" + std::to_string(seed));

  BootParams bp;
  bp.ncpus = 4;
  bp.phys_mem_bytes = u64{16} << 20;
  bp.max_procs = 32;
  bp.mount_procfs = true;
  Kernel k(bp);
  const u64 free_at_boot = k.mem().FreeFrames();
  const u64 files_at_boot = k.vfs().files().Count();
  const i64 rm_live_at_boot = obs::Stats::Global().gauge("rm.groups.live").value();

  inject::InjectionPlan plan(seed, cfg);
  {
    inject::ScopedInjection active(plan);
    auto root = k.Launch([seed](Env& env, long) {
      const pid_t root_pid = env.Pid();
      vaddr_t buf = env.Mmap(kPageSize);
      int members = 0;

      // Worker 1 — PR_SALL member: pure fd/scalar churn on the shared
      // u-area resources.
      if (env.Sproc([seed](Env& c, long) { FdChurn(c, WorkerSeed(seed, 1), 12); },
                    PR_SALL) >= 0) {
        ++members;
      }

      // Randomized rm caps over the freshly formed group (tight enough that
      // some schedules breach them): admissions beyond a cap bounce with
      // EAGAIN mid-storm and every worker path tolerates the denial. Page
      // caps stay off — this storm has no swap to steal into.
      if (env.proc().shaddr != nullptr) {
        Rng crng{WorkerSeed(seed, 9)};
        (void)env.Prctl(PR_SETRCAP, PrRcapArg(PR_RCAP_MEMBERS, 2 + crng.Pick(4)));
        const u64 fd_used = env.proc().shaddr->rm_node()->used(rm::Resource::kFiles);
        (void)env.Prctl(PR_SETRCAP, PrRcapArg(PR_RCAP_FILES, fd_used + 2 + crng.Pick(8)));
        (void)env.Prctl(PR_SETSHARES, 1 + crng.Pick(400));
      }

      // Worker 2 — PR_SALL member that detaches via exec(2) mid-churn.
      // The injected alloc.stack fault can kill it during the overlay
      // (ProcTerminated with kSigKill) — the storm tolerates that.
      if (env.Sproc(
              [seed](Env& c, long) {
                FdChurn(c, WorkerSeed(seed, 2), 4);
                Image img;
                img.main = [](Env& n, long) {
                  int fd = n.Open("/execed", kOpenWrite | kOpenCreat);
                  if (fd >= 0) {
                    n.Close(fd);
                  }
                };
                c.Exec(img);  // only returns on an injected failure
              },
              PR_SALL) >= 0) {
        ++members;
      }

      // Worker 3 — PR_SADDR member that sprocs a grandchild into the same
      // group (two generations racing the creator's exit).
      if (env.Sproc(
              [seed, buf](Env& c, long) {
                if (c.Sproc(
                        [buf](Env& g, long) {
                          if (buf != 0) {
                            g.Store32(buf, 7);
                          }
                        },
                        PR_SADDR) >= 0) {
                  c.WaitChild();
                }
              },
              PR_SADDR) >= 0) {
        ++members;
      }

      // Worker 4 — a fork(2) child OUTSIDE the group that races
      // PR_JOINGROUP against the members' exits and reads /proc/share
      // while groups tear down. Root does not wait for it specifically;
      // it may outlive the whole group.
      if (env.Fork([seed, root_pid](Env& f, long) {
            Rng rng{WorkerSeed(seed, 4)};
            for (int i = 0; i < 8; ++i) {
              PokeProcShare(f);
              i64 mask = f.Prctl(PR_JOINGROUP, root_pid);
              if (mask >= 0) {
                FdChurn(f, rng.Next(), 3);
                break;
              }
              f.Yield();
            }
          }) >= 0) {
        ++members;
      }

      FdChurn(env, WorkerSeed(seed, 0), 8);
      // Reap as many children as were created (any order); a straggler is
      // reparented to the kernel when we exit and reaped by WaitAll.
      for (int i = 0; i < members; ++i) {
        env.WaitChild();
      }
    });
    // An injected alloc.stack fault can fail the root launch itself; the
    // invariants below must hold regardless.
    (void)root;
    k.WaitAll();
  }  // plan uninstalled only after every host thread has quiesced

  EXPECT_GT(plan.decisions(), 0u);
  EXPECT_EQ(k.LiveBlocks(), 0u);
  EXPECT_EQ(k.vfs().files().Count(), files_at_boot);
  EXPECT_EQ(k.mem().FreeFrames(), free_at_boot);
  // Every rm node created during the storm was released with its block
  // (usage underflow would already have panicked inside the run).
  EXPECT_EQ(obs::Stats::Global().gauge("rm.groups.live").value(), rm_live_at_boot);
  // Under the lockdep preset, every schedule the storm forces through the
  // lifecycle windows must keep the lock-order graph acyclic and never
  // declare sleep intent under a spinlock.
  EXPECT_EQ(lockdep::Reports(), 0u) << lockdep::RenderReport();
}

inject::PlanConfig StormConfig() {
  inject::PlanConfig cfg;
  cfg.yield_ppm = 300000;
  cfg.delay_ppm = 200000;
  cfg.fault_ppm = 20000;
  return cfg;
}

// 8 shards x kSeedsPerShard schedules. Sharded so ctest -j overlaps them;
// the full default-build sweep is 1280 seeds (>= the 1000 the roadmap
// asks for). Under tsan each schedule costs ~10x, so the sweep shrinks —
// the tsan preset's job is race detection, not seed coverage.
#if defined(SG_STORM_TSAN)
constexpr int kSeedsPerShard = 12;
#else
constexpr int kSeedsPerShard = 160;
#endif
constexpr u64 kSeedBase = 0xBEEF0000;

void RunShard(int shard) {
  const inject::PlanConfig cfg = StormConfig();
  for (int i = 0; i < kSeedsPerShard; ++i) {
    const u64 seed = kSeedBase + static_cast<u64>(shard) * kSeedsPerShard + i;
    RunStorm(seed, cfg);
    if (testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

TEST(LifecycleStorm, Shard0) { RunShard(0); }
TEST(LifecycleStorm, Shard1) { RunShard(1); }
TEST(LifecycleStorm, Shard2) { RunShard(2); }
TEST(LifecycleStorm, Shard3) { RunShard(3); }
TEST(LifecycleStorm, Shard4) { RunShard(4); }
TEST(LifecycleStorm, Shard5) { RunShard(5); }
TEST(LifecycleStorm, Shard6) { RunShard(6); }
TEST(LifecycleStorm, Shard7) { RunShard(7); }

// Replays one schedule named in the environment — the repro path printed
// by a failing storm assertion.
TEST(LifecycleStorm, ReplayEnvSeed) {
  const char* s = std::getenv("SG_STORM_SEED");
  if (s == nullptr || *s == '\0') {
    GTEST_SKIP() << "set SG_STORM_SEED=<seed> to replay a failing schedule";
  }
  RunStorm(std::strtoull(s, nullptr, 0), StormConfig());
}

// The determinism contract, verified where it is verifiable: a scenario
// with ONE simulated process hits points in a fixed per-thread order, so
// two runs under the same seed must draw bit-identical decision streams
// (equal XOR digest and draw count).
TEST(LifecycleStorm, DigestDeterministicSingleProc) {
  auto run = [](u64 seed) {
    BootParams bp;
    bp.ncpus = 2;
    bp.phys_mem_bytes = u64{16} << 20;
    bp.max_procs = 8;
    Kernel k(bp);
    inject::InjectionPlan plan(seed, StormConfig());
    {
      inject::ScopedInjection active(plan);
      auto pid = k.Launch([](Env& env, long) { FdChurn(env, 42, 16); });
      EXPECT_TRUE(pid.ok() || pid.error() == Errno::kENOMEM);
      k.WaitAll();
    }
    return std::pair<u64, u64>(plan.digest(), plan.decisions());
  };
  const auto a = run(0xD1CE5EEDull);
  const auto b = run(0xD1CE5EEDull);
  EXPECT_GT(a.second, 0u);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  // A different seed must perturb differently (overwhelmingly likely).
  const auto c = run(0x0DDBA11ull);
  EXPECT_NE(a.first, c.first);
}

// Cranked fault rate: every SG_INJECT_FAULT site fires constantly and the
// kernel must unwind each one without leaking a frame, a file or a block.
TEST(LifecycleStorm, FaultsUnwindCleanly) {
  inject::PlanConfig cfg;
  cfg.yield_ppm = 100000;
  cfg.fault_ppm = 400000;
  for (u64 seed = 1; seed <= 8; ++seed) {
    RunStorm(seed, cfg);
    if (HasFatalFailure()) {
      return;
    }
  }
}

// Injection-point hit counts surface through the obs stats registry (and
// thus /proc/stat, which renders the same registry).
TEST(LifecycleStorm, HitCountsVisibleInStats) {
  RunStorm(0xC0FFEEull, StormConfig());
  EXPECT_GT(obs::Stats::Global().counter("inject.point.sema.tryp").value(), 0u);
  const std::string text = obs::Stats::Global().RenderText();
  EXPECT_NE(text.find("inject.point."), std::string::npos);
}

#else  // !SG_INJECT_ENABLED

TEST(LifecycleStorm, SkippedWithoutInjection) {
  GTEST_SKIP() << "configure with -DSG_INJECT=ON to run the storm";
}

#endif

}  // namespace
}  // namespace sg
