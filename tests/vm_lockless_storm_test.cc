// VM lockless-fault storm: fault workers sweeping the shared image race
// mmap/munmap, sbrk grow/shrink, unshare and member-exit churn under
// thousands of seeded injection schedules (src/inject/). The lockless
// fault path (DESIGN.md §4h) has four seams a schedule can stretch —
// vm.fault.lockless (between the seqcount snapshot and the resolution),
// vm.fault.undo (revalidation failed, the possibly-stale TLB entry still
// installed, the epoch guard still pinning the updater's quiescence wait),
// vm.fault.retry (after the undo flush) and vm.fault.fallback (entering
// the classic ReadGuard path) — plus vm.layout.await_drain in the
// writer's quiescence wait. A stale-pregion dereference, a stale TLB
// entry surviving a shootdown, or a leaked frame shows up as a crash,
// tsan report, lockdep report or failed teardown invariant.
//
// Reproducing a failure: rerun the printed schedule with
//
//   SG_STORM_SEED=<seed> ctest -R VmLocklessStorm.ReplayEnvSeed
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "api/kernel.h"
#include "api/user_env.h"
#include "core/share_mask.h"
#include "inject/inject.h"
#include "obs/stats.h"
#include "sync/lockdep.h"

#if defined(__SANITIZE_THREAD__)
#define SG_STORM_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SG_STORM_TSAN 1
#endif
#endif

namespace sg {
namespace {

#if defined(SG_INJECT_ENABLED)

// Deterministic per-worker op stream (splitmix64), seeded from the plan
// seed and the worker's index — not from pids, which are
// interleaving-dependent (same scheme as lifecycle_storm_test.cc).
struct Rng {
  u64 s;
  u64 Next() {
    s += 0x9e3779b97f4a7c15ull;
    u64 z = s;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  u32 Pick(u32 n) { return static_cast<u32>(Next() % n); }
};

u64 WorkerSeed(u64 seed, u32 worker) { return seed * 0x100000001b3ull + worker; }

// The shared fault window is wider than the 64-entry direct-mapped TLB, so
// random touches keep missing and re-entering HandleFault for the lifetime
// of the storm — lockless lookups under continuous layout churn.
constexpr u64 kWindowPages = 96;

// One seeded schedule: boot, storm, teardown, check invariants.
void RunVmStorm(u64 seed, const inject::PlanConfig& cfg) {
  SCOPED_TRACE("replay with SG_STORM_SEED=" + std::to_string(seed));

  BootParams bp;
  bp.ncpus = 4;
  bp.phys_mem_bytes = u64{32} << 20;
  bp.max_procs = 16;
  Kernel k(bp);
  const u64 free_at_boot = k.mem().FreeFrames();

  inject::InjectionPlan plan(seed, cfg);
  {
    inject::ScopedInjection active(plan);
    auto root = k.Launch([seed](Env& env, long) {
      const vaddr_t win = env.Mmap(kWindowPages * kPageSize);
      int members = 0;

      // Workers 1-3 — fault workers: random read/write sweeps over the
      // window, re-faulting on nearly every touch. Stores force COW-free
      // demand-zero resolutions AND shared-image writes whose translations
      // a racing shrink/unmap must revoke. The occasional atomic exercises
      // the kEINVAL/kEFAULT split's fast path too.
      for (u32 w = 1; w <= 3 && win != 0; ++w) {
        if (env.Sproc(
                [seed, w, win](Env& c, long) {
                  Rng rng{WorkerSeed(seed, w)};
                  for (int round = 0; round < 48; ++round) {
                    const vaddr_t va = win + rng.Pick(kWindowPages) * kPageSize;
                    switch (rng.Pick(4)) {
                      case 0:
                        c.Store32(va, static_cast<u32>(round));
                        break;
                      case 1:
                        (void)c.FetchAdd32(va + 4 * rng.Pick(16), 1);
                        break;
                      default:
                        (void)c.Load32(va);
                        break;
                    }
                  }
                },
                PR_SADDR) >= 0) {
          ++members;
        }
      }

      // Worker 4 — layout churn: attach/detach and grow/shrink the shared
      // image as fast as the schedule allows. Every op is a seqcount bump
      // plus a shootdown (detach/shrink also retire frames), forcing the
      // fault workers through the retry and fallback seams.
      if (env.Sproc(
              [seed](Env& c, long) {
                Rng rng{WorkerSeed(seed, 4)};
                for (int i = 0; i < 24; ++i) {
                  switch (rng.Pick(4)) {
                    case 0: {
                      const vaddr_t a = c.Mmap((1 + rng.Pick(4)) * kPageSize);
                      if (a != 0) {
                        c.Store32(a, 1);
                        c.Munmap(a);
                      }
                      break;
                    }
                    case 1: {
                      const i64 pages = 1 + rng.Pick(3);
                      if (c.Sbrk(pages * static_cast<i64>(kPageSize)) != 0) {
                        c.Store32(c.Sbrk(0) - kPageSize, 2);  // make a frame real
                        c.Sbrk(-pages * static_cast<i64>(kPageSize));
                      }
                      break;
                    }
                    default:
                      c.Yield();
                      break;
                  }
                }
              },
              PR_SADDR) >= 0) {
        ++members;
      }

      // Worker 5 — membership churn: faults on the shared window, then
      // leaves the group via PR_UNSHARE mid-storm (the UnshareVm COW seam:
      // its stack extraction and group-wide COW marking race every other
      // worker), and keeps faulting on its now-private image.
      if (win != 0 &&
          env.Sproc(
              [seed, win](Env& c, long) {
                Rng rng{WorkerSeed(seed, 5)};
                for (int i = 0; i < 8; ++i) {
                  (void)c.Load32(win + rng.Pick(kWindowPages) * kPageSize);
                }
                (void)c.Prctl(PR_UNSHARE, PR_SADDR);
                for (int i = 0; i < 8; ++i) {
                  c.Store32(win + rng.Pick(kWindowPages) * kPageSize, 5);
                }
              },
              PR_SADDR) >= 0) {
        ++members;
      }

      // Root joins the fault storm too, then reaps. Each member exit is a
      // RemoveMember: stack retirement + member-TLB unpublish racing the
      // remaining faulters.
      if (win != 0) {
        Rng rng{WorkerSeed(seed, 0)};
        for (int round = 0; round < 24; ++round) {
          (void)env.Load32(win + rng.Pick(kWindowPages) * kPageSize);
        }
      }
      for (int i = 0; i < members; ++i) {
        env.WaitChild();
      }
    });
    (void)root;
    k.WaitAll();
  }  // plan uninstalled only after every host thread has quiesced

  EXPECT_GT(plan.decisions(), 0u);
  EXPECT_EQ(k.LiveBlocks(), 0u);
  // Every frame back in the allocator: no translation outlived its frame,
  // no graveyard pregion leaked its region's pages or their group charge.
  EXPECT_EQ(k.mem().FreeFrames(), free_at_boot);
  // Under the lockdep preset every schedule must keep the lock-order graph
  // acyclic — the pregion lock nests inside the group lock's read side on
  // the fallback path and stands alone on the lockless path.
  EXPECT_EQ(lockdep::Reports(), 0u) << lockdep::RenderReport();
}

inject::PlanConfig StormConfig() {
  inject::PlanConfig cfg;
  cfg.yield_ppm = 300000;
  cfg.delay_ppm = 200000;
  // No resource-fault injection here: this storm is about interleavings
  // through the lockless seams, and the window mmap failing at boot would
  // no-op most workers. FaultsUnwindCleanly in the lifecycle storm covers
  // allocation-failure unwinding.
  cfg.fault_ppm = 0;
  return cfg;
}

// 4 shards so ctest -j overlaps them; the default-build sweep is 4 x 24 =
// 96 schedules with 6 racing workers each. Under tsan every schedule costs
// ~10x, so the sweep shrinks — the tsan preset's job is race detection.
#if defined(SG_STORM_TSAN)
constexpr int kSeedsPerShard = 4;
#else
constexpr int kSeedsPerShard = 24;
#endif
constexpr u64 kSeedBase = 0xFA170000;

void RunShard(int shard) {
  const inject::PlanConfig cfg = StormConfig();
  for (int i = 0; i < kSeedsPerShard; ++i) {
    const u64 seed = kSeedBase + static_cast<u64>(shard) * kSeedsPerShard + i;
    RunVmStorm(seed, cfg);
    if (testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

TEST(VmLocklessStorm, Shard0) { RunShard(0); }
TEST(VmLocklessStorm, Shard1) { RunShard(1); }
TEST(VmLocklessStorm, Shard2) { RunShard(2); }
TEST(VmLocklessStorm, Shard3) { RunShard(3); }

// Replays one schedule named in the environment — the repro path printed
// by a failing storm assertion.
TEST(VmLocklessStorm, ReplayEnvSeed) {
  const char* s = std::getenv("SG_STORM_SEED");
  if (s == nullptr || *s == '\0') {
    GTEST_SKIP() << "set SG_STORM_SEED=<seed> to replay a failing schedule";
  }
  RunVmStorm(std::strtoull(s, nullptr, 0), StormConfig());
}

// The storm actually drives the seams it claims to: across a few
// schedules the lockless path must both hit and (thanks to the injected
// delays between snapshot and revalidation) retry or fall back.
TEST(VmLocklessStorm, SeamsExercised) {
  obs::Stats& stats = obs::Stats::Global();
  const u64 hits0 = stats.CounterValue("vm.fault.lockless_hits");
  const u64 slow0 = stats.CounterValue("vm.fault.retries") +
                    stats.CounterValue("vm.fault.fallbacks");
  const inject::PlanConfig cfg = StormConfig();
  for (u64 seed = 1; seed <= 8; ++seed) {
    RunVmStorm(0xF00D0000 + seed, cfg);
    if (HasFatalFailure()) {
      return;
    }
  }
  EXPECT_GT(stats.CounterValue("vm.fault.lockless_hits"), hits0);
  EXPECT_GT(stats.CounterValue("vm.fault.retries") +
                stats.CounterValue("vm.fault.fallbacks"),
            slow0);
}

#else  // !SG_INJECT_ENABLED

TEST(VmLocklessStorm, SkippedWithoutInjection) {
  GTEST_SKIP() << "configure with -DSG_INJECT=ON to run the storm";
}

#endif

}  // namespace
}  // namespace sg
