// Model-based fuzzing of two self-contained substrates:
//   * VaAllocator against a reference interval model (no overlaps, frees
//     reusable, bounds respected);
//   * Pipe byte-stream integrity under randomized chunk sizes (every byte
//     arrives exactly once, in order, across blocking boundaries).
#include <gtest/gtest.h>

#include <random>
#include <thread>

#include "fs/pipe.h"
#include "vm/layout.h"
#include "vm/va_allocator.h"

namespace sg {
namespace {

class VaFuzz : public ::testing::TestWithParam<u32> {};

TEST_P(VaFuzz, NeverOverlapsAndReusesFreedRanges) {
  std::mt19937 rng(GetParam());
  VaAllocator va(kArenaBase, kArenaEnd, kStackTop);
  struct Range {
    vaddr_t base;
    u64 pages;
  };
  std::vector<Range> live;
  auto overlaps_model = [&](vaddr_t base, u64 pages) {
    for (const Range& r : live) {
      if (base < r.base + r.pages * kPageSize && r.base < base + pages * kPageSize) {
        return true;
      }
    }
    return false;
  };
  for (int step = 0; step < 2000; ++step) {
    const u32 op = rng() % 100;
    if (op < 40) {
      const u64 pages = 1 + rng() % 64;
      auto got = va.AllocUp(pages);
      if (got.ok()) {
        ASSERT_FALSE(overlaps_model(got.value(), pages)) << "AllocUp overlap";
        ASSERT_GE(got.value(), kArenaBase);
        ASSERT_LE(got.value() + pages * kPageSize, kArenaEnd);
        live.push_back({got.value(), pages});
      }
    } else if (op < 70) {
      const u64 pages = 1 + rng() % 512;
      auto got = va.AllocDown(pages);
      if (got.ok()) {
        ASSERT_FALSE(overlaps_model(got.value(), pages)) << "AllocDown overlap";
        ASSERT_GE(got.value(), kArenaEnd);
        ASSERT_LE(got.value() + pages * kPageSize, kStackTop);
        live.push_back({got.value(), pages});
      }
    } else if (op < 90 && !live.empty()) {
      const size_t i = rng() % live.size();
      va.Free(live[i].base);
      live.erase(live.begin() + static_cast<long>(i));
    } else {
      // Explicit reserve of a random (possibly colliding) range.
      const u64 pages = 1 + rng() % 16;
      const vaddr_t base = kArenaBase + (rng() % 10000) * kPageSize;
      const bool collide = overlaps_model(base, pages);
      Status st = va.Reserve(base, pages);
      ASSERT_EQ(st.ok(), !collide) << "Reserve disagreed with the model";
      if (st.ok()) {
        live.push_back({base, pages});
      }
    }
    ASSERT_EQ(va.RangesInUse(), live.size());
  }
  // Drain and confirm full reuse.
  for (const Range& r : live) {
    va.Free(r.base);
  }
  EXPECT_EQ(va.RangesInUse(), 0u);
  EXPECT_TRUE(va.AllocUp(1024).ok());
  EXPECT_TRUE(va.AllocDown(4096).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, VaFuzz, ::testing::Range(1u, 7u));

class PipeFuzz : public ::testing::TestWithParam<u32> {};

TEST_P(PipeFuzz, ByteStreamIntactUnderRandomChunking) {
  std::mt19937 wrng(GetParam());
  std::mt19937 rrng(GetParam() * 31 + 7);
  Pipe pipe;
  pipe.AddReader();
  pipe.AddWriter();
  constexpr u64 kTotal = 256 * 1024;

  std::thread writer([&] {
    std::vector<std::byte> buf(Pipe::kCapacity * 2);
    u64 sent = 0;
    while (sent < kTotal) {
      const u64 n = std::min<u64>(1 + wrng() % buf.size(), kTotal - sent);
      for (u64 i = 0; i < n; ++i) {
        buf[i] = static_cast<std::byte>((sent + i) * 131 % 251);
      }
      auto w = pipe.Write(buf.data(), n, SleepMode::kUninterruptible);
      ASSERT_TRUE(w.ok());
      sent += w.value();
    }
    pipe.RemoveWriter();
  });

  std::vector<std::byte> buf(Pipe::kCapacity * 2);
  u64 got = 0;
  for (;;) {
    const u64 want = 1 + rrng() % buf.size();
    auto r = pipe.Read(buf.data(), want, SleepMode::kUninterruptible);
    ASSERT_TRUE(r.ok());
    if (r.value() == 0) {
      break;  // EOF
    }
    for (u64 i = 0; i < r.value(); ++i) {
      ASSERT_EQ(buf[i], static_cast<std::byte>((got + i) * 131 % 251)) << "at byte " << got + i;
    }
    got += r.value();
  }
  writer.join();
  EXPECT_EQ(got, kTotal);
  EXPECT_EQ(pipe.BytesBuffered(), 0u);
  pipe.RemoveReader();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipeFuzz, ::testing::Range(1u, 6u));

}  // namespace
}  // namespace sg
