// Property-based / parameterized tests: the share-mask inheritance lattice
// over every mask combination, VM invariants under randomized operation
// sequences, shared-read-lock invariants under stress, and fd-propagation
// under concurrent opens.
#include <gtest/gtest.h>

#include <atomic>
#include <random>

#include "api/kernel.h"
#include "api/user_env.h"
#include "vm/access.h"

namespace sg {
namespace {

void RunAsProcess(Kernel& k, std::function<void(Env&)> body) {
  auto pid = k.Launch([body = std::move(body)](Env& env, long) { body(env); });
  ASSERT_TRUE(pid.ok());
  k.WaitAll();
}

// ---- strict inheritance is mask intersection, for EVERY mask pair ----

class MaskLattice : public ::testing::TestWithParam<std::tuple<u32, u32>> {};

TEST_P(MaskLattice, ChildMaskIsIntersection) {
  const u32 parent_mask = std::get<0>(GetParam());
  const u32 child_request = std::get<1>(GetParam());
  Kernel k;
  std::atomic<u32> child_effective{0xffffffff};
  RunAsProcess(k, [&](Env& env) {
    env.Sproc(
        [&, child_request](Env& member, long) {
          member.Sproc(
              [&](Env& grandchild, long) { child_effective = grandchild.proc().p_shmask.load(); },
              child_request);
          member.WaitChild();
        },
        parent_mask);
    env.WaitChild();
  });
  EXPECT_EQ(child_effective.load(), parent_mask & child_request & PR_SALL);
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, MaskLattice,
    ::testing::Combine(::testing::Values(0u, PR_SADDR, PR_SFDS, PR_SDIR | PR_SUMASK,
                                         PR_SADDR | PR_SFDS | PR_SID, PR_SALL),
                       ::testing::Values(0u, PR_SADDR, PR_SFDS | PR_SULIMIT,
                                         PR_SDIR | PR_SID, PR_SALL, 0xffffffffu)));

// ---- per-bit sharing: exactly the selected resource propagates ----

class PerBitSharing : public ::testing::TestWithParam<u32> {};

TEST_P(PerBitSharing, OnlySelectedResourcePropagates) {
  const u32 mask = GetParam();
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    env.Umask(0);
    env.UlimitSet(1 << 20);
    env.Mkdir("/elsewhere");
    // A shared PR_SID setuid(33) reaches us; keep directories writable for
    // the unprivileged identity.
    ASSERT_TRUE(env.kernel().Chmod(env.proc(), "/", 0777).ok());
    ASSERT_TRUE(env.kernel().Chmod(env.proc(), "/elsewhere", 0777).ok());
    env.Sproc(
        [](Env& c, long) {
          c.Umask(011);
          c.UlimitSet(4096);
          c.Chdir("/elsewhere");
          c.Setuid(33);
        },
        mask);
    env.WaitChild();
    env.Yield();  // a kernel entry to resynchronize
    EXPECT_EQ(env.Umask(0), (mask & PR_SUMASK) != 0 ? 011 : 0);
    env.Umask(0);
    EXPECT_EQ(static_cast<u64>(env.UlimitGet()),
              (mask & PR_SULIMIT) != 0 ? 4096u : u64{1} << 20);
    // cwd: a relative create lands where the cwd is.
    const int fd = env.Open("where-am-i", kOpenWrite | kOpenCreat);
    ASSERT_GE(fd, 0);
    const bool in_elsewhere = env.kernel().Stat(env.proc(), "/elsewhere/where-am-i").ok();
    EXPECT_EQ(in_elsewhere, (mask & PR_SDIR) != 0);
    EXPECT_EQ(env.Getuid(), (mask & PR_SID) != 0 ? 33 : 0);
  });
}

INSTANTIATE_TEST_SUITE_P(EachBit, PerBitSharing,
                         ::testing::Values(0u, PR_SUMASK, PR_SULIMIT, PR_SDIR, PR_SID,
                                           PR_SUMASK | PR_SID, PR_SALL));

// ---- VM invariants under random operation sequences ----
//
// Invariant 1: every byte ever stored reads back the same value until the
//              mapping it lives in is unmapped.
// Invariant 2: after unmap, access faults.
// Invariant 3: COW never aliases — a fork child's writes are invisible to
//              the group and vice versa.
class VmOpsFuzz : public ::testing::TestWithParam<u32> {};

TEST_P(VmOpsFuzz, RandomOpSequencePreservesInvariants) {
  const u32 seed = GetParam();
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    std::mt19937 rng(seed);
    struct Mapping {
      vaddr_t base;
      u64 pages;
      std::map<u64, u32> shadow;  // offset -> expected value
    };
    std::vector<Mapping> live;
    for (int step = 0; step < 300; ++step) {
      const u32 op = rng() % 100;
      if (op < 25 || live.empty()) {
        if (live.size() < 8) {
          const u64 pages = 1 + rng() % 4;
          const vaddr_t base = env.Mmap(pages * kPageSize);
          ASSERT_NE(base, 0u);
          live.push_back({base, pages, {}});
        }
      } else if (op < 40) {
        const size_t i = rng() % live.size();
        // Invariant 2 is checked through the raw VM (no SIGSEGV suicide).
        ASSERT_EQ(env.Munmap(live[i].base), 0);
        EXPECT_EQ(sg::Load<u32>(env.proc().as, live[i].base).error(), Errno::kEFAULT);
        live.erase(live.begin() + static_cast<long>(i));
      } else if (op < 75) {
        Mapping& m = live[rng() % live.size()];
        const u64 off = (rng() % (m.pages * kPageSize / 4)) * 4;
        const u32 val = rng();
        env.Store32(m.base + off, val);
        m.shadow[off] = val;
      } else {
        Mapping& m = live[rng() % live.size()];
        if (!m.shadow.empty()) {
          auto it = m.shadow.begin();
          std::advance(it, static_cast<long>(rng() % m.shadow.size()));
          EXPECT_EQ(env.Load32(m.base + it->first), it->second);  // Invariant 1
        }
      }
    }
    // Invariant 3: a fork child sees the snapshot, not later group writes.
    if (!live.empty()) {
      Mapping& m = live.front();
      env.Store32(m.base, 0xaaaa);
      std::atomic<bool> child_ok{false};
      std::atomic<bool> parent_wrote{false};
      env.Fork([&](Env& c, long) {
        while (!parent_wrote.load()) {
          c.Yield();
        }
        child_ok = (c.Load32(m.base) == 0xaaaa);
        c.Store32(m.base, 0xbbbb);
      });
      env.Store32(m.base, 0xcccc);
      parent_wrote = true;
      env.WaitChild();
      EXPECT_TRUE(child_ok.load());
      EXPECT_EQ(env.Load32(m.base), 0xccccu);
    }
  });
  // Nothing leaked: every frame returned once every process exited.
  EXPECT_EQ(k.mem().FreeFrames(), k.mem().TotalFrames());
}

INSTANTIATE_TEST_SUITE_P(Seeds, VmOpsFuzz, ::testing::Range(1u, 9u));

// ---- shared image: randomized member stores always visible to the parent ----

class SharedStoresFuzz : public ::testing::TestWithParam<u32> {};

TEST_P(SharedStoresFuzz, MemberStoresVisibleEverywhere) {
  const u32 seed = GetParam();
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    constexpr u64 kWords = 1024;
    const vaddr_t base = env.Mmap(kWords * 4);
    constexpr int kMembers = 3;
    for (int m = 0; m < kMembers; ++m) {
      env.Sproc(
          [base, seed](Env& c, long idx) {
            std::mt19937 rng(seed * 97 + static_cast<u32>(idx));
            // Each member owns a word-stride; no write races.
            for (u64 w = static_cast<u64>(idx); w < kWords; w += kMembers) {
              c.Store32(base + w * 4, static_cast<u32>(rng()));
            }
          },
          PR_SADDR, m);
    }
    for (int m = 0; m < kMembers; ++m) {
      env.WaitChild();
    }
    // Recompute each member's stream and verify through OUR translation.
    for (int m = 0; m < kMembers; ++m) {
      std::mt19937 rng(seed * 97 + static_cast<u32>(m));
      for (u64 w = static_cast<u64>(m); w < kWords; w += kMembers) {
        ASSERT_EQ(env.Load32(base + w * 4), static_cast<u32>(rng())) << "word " << w;
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, SharedStoresFuzz, ::testing::Range(1u, 6u));

// ---- fd table under concurrent opens from many members ----

TEST(FdPropagationStress, ConcurrentOpensAllVisibleAndDistinct) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    constexpr int kMembers = 4;
    constexpr int kEach = 8;
    std::atomic<int> fds[kMembers * kEach];
    for (auto& f : fds) {
      f = -1;
    }
    for (int m = 0; m < kMembers; ++m) {
      env.Sproc(
          [&fds](Env& c, long idx) {
            for (int i = 0; i < kEach; ++i) {
              char path[32];
              std::snprintf(path, sizeof(path), "/m%ld-%d", idx, i);
              const int fd = c.Open(path, kOpenWrite | kOpenCreat);
              ASSERT_GE(fd, 0);
              fds[idx * kEach + i] = fd;
            }
          },
          PR_SFDS | PR_SADDR, m);
    }
    for (int m = 0; m < kMembers; ++m) {
      env.WaitChild();
    }
    // Every descriptor number is distinct (the s_fupdsema single-threading
    // prevented slot collisions) and usable from the parent.
    std::set<int> seen;
    for (auto& f : fds) {
      ASSERT_GE(f.load(), 0);
      EXPECT_TRUE(seen.insert(f.load()).second) << "fd " << f.load() << " duplicated";
      EXPECT_EQ(env.WriteStr(f.load(), "x"), 1);
    }
  });
}

// ---- umask storms from many members converge to one master value ----

TEST(UmaskStress, ConcurrentUpdatesConverge) {
  Kernel k;
  RunAsProcess(k, [&](Env& env) {
    constexpr int kMembers = 4;
    for (int m = 0; m < kMembers; ++m) {
      env.Sproc(
          [](Env& c, long idx) {
            for (int i = 0; i < 50; ++i) {
              c.Umask(static_cast<mode_t>((idx * 50 + i) & 0777));
            }
          },
          PR_SUMASK, m);
    }
    for (int m = 0; m < kMembers; ++m) {
      env.WaitChild();
    }
    env.Yield();  // sync
    // Our value equals the block's master value (single source of truth).
    EXPECT_EQ(env.proc().umask, env.proc().shaddr->cmask());
  });
}

}  // namespace
}  // namespace sg
