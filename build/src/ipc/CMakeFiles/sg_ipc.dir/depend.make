# Empty dependencies file for sg_ipc.
# This may be replaced when dependencies are built.
