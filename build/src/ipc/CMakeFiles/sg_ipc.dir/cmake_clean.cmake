file(REMOVE_RECURSE
  "CMakeFiles/sg_ipc.dir/sysv.cc.o"
  "CMakeFiles/sg_ipc.dir/sysv.cc.o.d"
  "libsg_ipc.a"
  "libsg_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sg_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
