file(REMOVE_RECURSE
  "libsg_ipc.a"
)
