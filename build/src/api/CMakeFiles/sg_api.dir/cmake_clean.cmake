file(REMOVE_RECURSE
  "CMakeFiles/sg_api.dir/kernel.cc.o"
  "CMakeFiles/sg_api.dir/kernel.cc.o.d"
  "CMakeFiles/sg_api.dir/kernel_fs.cc.o"
  "CMakeFiles/sg_api.dir/kernel_fs.cc.o.d"
  "CMakeFiles/sg_api.dir/kernel_proc.cc.o"
  "CMakeFiles/sg_api.dir/kernel_proc.cc.o.d"
  "CMakeFiles/sg_api.dir/kernel_vm.cc.o"
  "CMakeFiles/sg_api.dir/kernel_vm.cc.o.d"
  "CMakeFiles/sg_api.dir/user_env.cc.o"
  "CMakeFiles/sg_api.dir/user_env.cc.o.d"
  "libsg_api.a"
  "libsg_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sg_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
