# Empty compiler generated dependencies file for sg_api.
# This may be replaced when dependencies are built.
