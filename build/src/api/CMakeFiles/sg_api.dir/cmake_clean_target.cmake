file(REMOVE_RECURSE
  "libsg_api.a"
)
