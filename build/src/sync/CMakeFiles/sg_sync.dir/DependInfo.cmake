
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sync/barrier.cc" "src/sync/CMakeFiles/sg_sync.dir/barrier.cc.o" "gcc" "src/sync/CMakeFiles/sg_sync.dir/barrier.cc.o.d"
  "/root/repo/src/sync/execution_context.cc" "src/sync/CMakeFiles/sg_sync.dir/execution_context.cc.o" "gcc" "src/sync/CMakeFiles/sg_sync.dir/execution_context.cc.o.d"
  "/root/repo/src/sync/semaphore.cc" "src/sync/CMakeFiles/sg_sync.dir/semaphore.cc.o" "gcc" "src/sync/CMakeFiles/sg_sync.dir/semaphore.cc.o.d"
  "/root/repo/src/sync/shared_read_lock.cc" "src/sync/CMakeFiles/sg_sync.dir/shared_read_lock.cc.o" "gcc" "src/sync/CMakeFiles/sg_sync.dir/shared_read_lock.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/sg_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
