file(REMOVE_RECURSE
  "libsg_sync.a"
)
