# Empty dependencies file for sg_sync.
# This may be replaced when dependencies are built.
