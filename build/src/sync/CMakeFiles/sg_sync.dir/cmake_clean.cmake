file(REMOVE_RECURSE
  "CMakeFiles/sg_sync.dir/barrier.cc.o"
  "CMakeFiles/sg_sync.dir/barrier.cc.o.d"
  "CMakeFiles/sg_sync.dir/execution_context.cc.o"
  "CMakeFiles/sg_sync.dir/execution_context.cc.o.d"
  "CMakeFiles/sg_sync.dir/semaphore.cc.o"
  "CMakeFiles/sg_sync.dir/semaphore.cc.o.d"
  "CMakeFiles/sg_sync.dir/shared_read_lock.cc.o"
  "CMakeFiles/sg_sync.dir/shared_read_lock.cc.o.d"
  "libsg_sync.a"
  "libsg_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sg_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
