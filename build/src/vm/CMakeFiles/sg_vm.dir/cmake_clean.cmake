file(REMOVE_RECURSE
  "CMakeFiles/sg_vm.dir/access.cc.o"
  "CMakeFiles/sg_vm.dir/access.cc.o.d"
  "CMakeFiles/sg_vm.dir/address_space.cc.o"
  "CMakeFiles/sg_vm.dir/address_space.cc.o.d"
  "CMakeFiles/sg_vm.dir/pager.cc.o"
  "CMakeFiles/sg_vm.dir/pager.cc.o.d"
  "CMakeFiles/sg_vm.dir/region.cc.o"
  "CMakeFiles/sg_vm.dir/region.cc.o.d"
  "CMakeFiles/sg_vm.dir/va_allocator.cc.o"
  "CMakeFiles/sg_vm.dir/va_allocator.cc.o.d"
  "CMakeFiles/sg_vm.dir/vm_ops.cc.o"
  "CMakeFiles/sg_vm.dir/vm_ops.cc.o.d"
  "libsg_vm.a"
  "libsg_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sg_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
