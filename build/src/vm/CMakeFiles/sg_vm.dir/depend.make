# Empty dependencies file for sg_vm.
# This may be replaced when dependencies are built.
