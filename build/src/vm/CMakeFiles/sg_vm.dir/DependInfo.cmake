
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/access.cc" "src/vm/CMakeFiles/sg_vm.dir/access.cc.o" "gcc" "src/vm/CMakeFiles/sg_vm.dir/access.cc.o.d"
  "/root/repo/src/vm/address_space.cc" "src/vm/CMakeFiles/sg_vm.dir/address_space.cc.o" "gcc" "src/vm/CMakeFiles/sg_vm.dir/address_space.cc.o.d"
  "/root/repo/src/vm/pager.cc" "src/vm/CMakeFiles/sg_vm.dir/pager.cc.o" "gcc" "src/vm/CMakeFiles/sg_vm.dir/pager.cc.o.d"
  "/root/repo/src/vm/region.cc" "src/vm/CMakeFiles/sg_vm.dir/region.cc.o" "gcc" "src/vm/CMakeFiles/sg_vm.dir/region.cc.o.d"
  "/root/repo/src/vm/va_allocator.cc" "src/vm/CMakeFiles/sg_vm.dir/va_allocator.cc.o" "gcc" "src/vm/CMakeFiles/sg_vm.dir/va_allocator.cc.o.d"
  "/root/repo/src/vm/vm_ops.cc" "src/vm/CMakeFiles/sg_vm.dir/vm_ops.cc.o" "gcc" "src/vm/CMakeFiles/sg_vm.dir/vm_ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/sg_base.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/sg_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/sg_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
