file(REMOVE_RECURSE
  "libsg_vm.a"
)
