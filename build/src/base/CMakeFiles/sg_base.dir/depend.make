# Empty dependencies file for sg_base.
# This may be replaced when dependencies are built.
