src/base/CMakeFiles/sg_base.dir/errno.cc.o: /root/repo/src/base/errno.cc \
 /usr/include/stdc-predef.h /root/repo/src/base/errno.h
