file(REMOVE_RECURSE
  "CMakeFiles/sg_base.dir/errno.cc.o"
  "CMakeFiles/sg_base.dir/errno.cc.o.d"
  "CMakeFiles/sg_base.dir/log.cc.o"
  "CMakeFiles/sg_base.dir/log.cc.o.d"
  "libsg_base.a"
  "libsg_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sg_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
