file(REMOVE_RECURSE
  "libsg_base.a"
)
