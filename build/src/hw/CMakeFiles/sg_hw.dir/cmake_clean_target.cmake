file(REMOVE_RECURSE
  "libsg_hw.a"
)
