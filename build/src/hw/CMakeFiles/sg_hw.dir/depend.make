# Empty dependencies file for sg_hw.
# This may be replaced when dependencies are built.
