file(REMOVE_RECURSE
  "CMakeFiles/sg_hw.dir/phys_mem.cc.o"
  "CMakeFiles/sg_hw.dir/phys_mem.cc.o.d"
  "CMakeFiles/sg_hw.dir/swap.cc.o"
  "CMakeFiles/sg_hw.dir/swap.cc.o.d"
  "CMakeFiles/sg_hw.dir/tlb.cc.o"
  "CMakeFiles/sg_hw.dir/tlb.cc.o.d"
  "libsg_hw.a"
  "libsg_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sg_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
