
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/phys_mem.cc" "src/hw/CMakeFiles/sg_hw.dir/phys_mem.cc.o" "gcc" "src/hw/CMakeFiles/sg_hw.dir/phys_mem.cc.o.d"
  "/root/repo/src/hw/swap.cc" "src/hw/CMakeFiles/sg_hw.dir/swap.cc.o" "gcc" "src/hw/CMakeFiles/sg_hw.dir/swap.cc.o.d"
  "/root/repo/src/hw/tlb.cc" "src/hw/CMakeFiles/sg_hw.dir/tlb.cc.o" "gcc" "src/hw/CMakeFiles/sg_hw.dir/tlb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/sg_base.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/sg_sync.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
