# Empty dependencies file for sg_core.
# This may be replaced when dependencies are built.
