file(REMOVE_RECURSE
  "CMakeFiles/sg_core.dir/shaddr.cc.o"
  "CMakeFiles/sg_core.dir/shaddr.cc.o.d"
  "libsg_core.a"
  "libsg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
