file(REMOVE_RECURSE
  "libsg_proc.a"
)
