file(REMOVE_RECURSE
  "CMakeFiles/sg_proc.dir/deliver.cc.o"
  "CMakeFiles/sg_proc.dir/deliver.cc.o.d"
  "CMakeFiles/sg_proc.dir/scheduler.cc.o"
  "CMakeFiles/sg_proc.dir/scheduler.cc.o.d"
  "libsg_proc.a"
  "libsg_proc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sg_proc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
