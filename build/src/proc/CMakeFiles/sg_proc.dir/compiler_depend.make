# Empty compiler generated dependencies file for sg_proc.
# This may be replaced when dependencies are built.
