file(REMOVE_RECURSE
  "CMakeFiles/sg_fs.dir/file.cc.o"
  "CMakeFiles/sg_fs.dir/file.cc.o.d"
  "CMakeFiles/sg_fs.dir/inode.cc.o"
  "CMakeFiles/sg_fs.dir/inode.cc.o.d"
  "CMakeFiles/sg_fs.dir/pipe.cc.o"
  "CMakeFiles/sg_fs.dir/pipe.cc.o.d"
  "CMakeFiles/sg_fs.dir/vfs.cc.o"
  "CMakeFiles/sg_fs.dir/vfs.cc.o.d"
  "libsg_fs.a"
  "libsg_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sg_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
