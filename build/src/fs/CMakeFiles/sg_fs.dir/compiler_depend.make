# Empty compiler generated dependencies file for sg_fs.
# This may be replaced when dependencies are built.
