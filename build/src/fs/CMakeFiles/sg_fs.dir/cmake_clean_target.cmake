file(REMOVE_RECURSE
  "libsg_fs.a"
)
