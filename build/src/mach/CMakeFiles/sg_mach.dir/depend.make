# Empty dependencies file for sg_mach.
# This may be replaced when dependencies are built.
