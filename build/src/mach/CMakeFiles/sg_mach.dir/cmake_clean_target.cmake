file(REMOVE_RECURSE
  "libsg_mach.a"
)
