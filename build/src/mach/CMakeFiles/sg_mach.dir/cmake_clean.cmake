file(REMOVE_RECURSE
  "CMakeFiles/sg_mach.dir/task.cc.o"
  "CMakeFiles/sg_mach.dir/task.cc.o.d"
  "libsg_mach.a"
  "libsg_mach.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sg_mach.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
