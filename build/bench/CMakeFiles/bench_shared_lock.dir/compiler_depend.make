# Empty compiler generated dependencies file for bench_shared_lock.
# This may be replaced when dependencies are built.
