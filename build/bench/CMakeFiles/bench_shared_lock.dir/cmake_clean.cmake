file(REMOVE_RECURSE
  "CMakeFiles/bench_shared_lock.dir/bench_shared_lock.cc.o"
  "CMakeFiles/bench_shared_lock.dir/bench_shared_lock.cc.o.d"
  "bench_shared_lock"
  "bench_shared_lock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_shared_lock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
