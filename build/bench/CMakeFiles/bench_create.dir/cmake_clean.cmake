file(REMOVE_RECURSE
  "CMakeFiles/bench_create.dir/bench_create.cc.o"
  "CMakeFiles/bench_create.dir/bench_create.cc.o.d"
  "bench_create"
  "bench_create.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_create.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
