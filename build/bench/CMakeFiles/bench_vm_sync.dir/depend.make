# Empty dependencies file for bench_vm_sync.
# This may be replaced when dependencies are built.
