file(REMOVE_RECURSE
  "CMakeFiles/bench_vm_sync.dir/bench_vm_sync.cc.o"
  "CMakeFiles/bench_vm_sync.dir/bench_vm_sync.cc.o.d"
  "bench_vm_sync"
  "bench_vm_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vm_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
