file(REMOVE_RECURSE
  "CMakeFiles/bench_self_sched.dir/bench_self_sched.cc.o"
  "CMakeFiles/bench_self_sched.dir/bench_self_sched.cc.o.d"
  "bench_self_sched"
  "bench_self_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_self_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
