# Empty compiler generated dependencies file for bench_self_sched.
# This may be replaced when dependencies are built.
