# Empty dependencies file for bench_gang.
# This may be replaced when dependencies are built.
