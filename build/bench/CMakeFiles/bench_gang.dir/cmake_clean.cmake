file(REMOVE_RECURSE
  "CMakeFiles/bench_gang.dir/bench_gang.cc.o"
  "CMakeFiles/bench_gang.dir/bench_gang.cc.o.d"
  "bench_gang"
  "bench_gang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
