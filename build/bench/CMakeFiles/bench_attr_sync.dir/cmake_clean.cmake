file(REMOVE_RECURSE
  "CMakeFiles/bench_attr_sync.dir/bench_attr_sync.cc.o"
  "CMakeFiles/bench_attr_sync.dir/bench_attr_sync.cc.o.d"
  "bench_attr_sync"
  "bench_attr_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_attr_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
