# Empty dependencies file for bench_attr_sync.
# This may be replaced when dependencies are built.
