file(REMOVE_RECURSE
  "CMakeFiles/bench_no_penalty.dir/bench_no_penalty.cc.o"
  "CMakeFiles/bench_no_penalty.dir/bench_no_penalty.cc.o.d"
  "bench_no_penalty"
  "bench_no_penalty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_no_penalty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
