# Empty dependencies file for async_io.
# This may be replaced when dependencies are built.
