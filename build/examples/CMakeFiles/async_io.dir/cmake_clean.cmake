file(REMOVE_RECURSE
  "CMakeFiles/async_io.dir/async_io.cpp.o"
  "CMakeFiles/async_io.dir/async_io.cpp.o.d"
  "async_io"
  "async_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
