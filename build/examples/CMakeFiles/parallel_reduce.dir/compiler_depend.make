# Empty compiler generated dependencies file for parallel_reduce.
# This may be replaced when dependencies are built.
