file(REMOVE_RECURSE
  "CMakeFiles/parallel_reduce.dir/parallel_reduce.cpp.o"
  "CMakeFiles/parallel_reduce.dir/parallel_reduce.cpp.o.d"
  "parallel_reduce"
  "parallel_reduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_reduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
