# Empty compiler generated dependencies file for share_everything.
# This may be replaced when dependencies are built.
