file(REMOVE_RECURSE
  "CMakeFiles/share_everything.dir/share_everything.cpp.o"
  "CMakeFiles/share_everything.dir/share_everything.cpp.o.d"
  "share_everything"
  "share_everything.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/share_everything.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
