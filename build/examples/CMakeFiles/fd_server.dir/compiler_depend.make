# Empty compiler generated dependencies file for fd_server.
# This may be replaced when dependencies are built.
