file(REMOVE_RECURSE
  "CMakeFiles/fd_server.dir/fd_server.cpp.o"
  "CMakeFiles/fd_server.dir/fd_server.cpp.o.d"
  "fd_server"
  "fd_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fd_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
