# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/base_test[1]_include.cmake")
include("/root/repo/build/tests/sync_test[1]_include.cmake")
include("/root/repo/build/tests/hw_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/swap_test[1]_include.cmake")
include("/root/repo/build/tests/mmap_file_test[1]_include.cmake")
include("/root/repo/build/tests/fs_test[1]_include.cmake")
include("/root/repo/build/tests/fs_syscalls_test[1]_include.cmake")
include("/root/repo/build/tests/proc_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/signal_test[1]_include.cmake")
include("/root/repo/build/tests/core_sproc_test[1]_include.cmake")
include("/root/repo/build/tests/core_resource_sync_test[1]_include.cmake")
include("/root/repo/build/tests/core_vm_share_test[1]_include.cmake")
include("/root/repo/build/tests/core_teardown_test[1]_include.cmake")
include("/root/repo/build/tests/core_extensions_test[1]_include.cmake")
include("/root/repo/build/tests/shaddr_unit_test[1]_include.cmake")
include("/root/repo/build/tests/prctl_test[1]_include.cmake")
include("/root/repo/build/tests/ipc_test[1]_include.cmake")
include("/root/repo/build/tests/mach_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/config_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/model_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/torture_test[1]_include.cmake")
include("/root/repo/build/tests/failure_injection_test[1]_include.cmake")
