# Empty compiler generated dependencies file for core_sproc_test.
# This may be replaced when dependencies are built.
