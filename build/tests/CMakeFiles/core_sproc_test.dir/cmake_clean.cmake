file(REMOVE_RECURSE
  "CMakeFiles/core_sproc_test.dir/core_sproc_test.cc.o"
  "CMakeFiles/core_sproc_test.dir/core_sproc_test.cc.o.d"
  "core_sproc_test"
  "core_sproc_test.pdb"
  "core_sproc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_sproc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
