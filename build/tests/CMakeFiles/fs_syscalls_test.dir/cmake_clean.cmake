file(REMOVE_RECURSE
  "CMakeFiles/fs_syscalls_test.dir/fs_syscalls_test.cc.o"
  "CMakeFiles/fs_syscalls_test.dir/fs_syscalls_test.cc.o.d"
  "fs_syscalls_test"
  "fs_syscalls_test.pdb"
  "fs_syscalls_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_syscalls_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
