# Empty dependencies file for fs_syscalls_test.
# This may be replaced when dependencies are built.
