file(REMOVE_RECURSE
  "CMakeFiles/shaddr_unit_test.dir/shaddr_unit_test.cc.o"
  "CMakeFiles/shaddr_unit_test.dir/shaddr_unit_test.cc.o.d"
  "shaddr_unit_test"
  "shaddr_unit_test.pdb"
  "shaddr_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shaddr_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
