# Empty compiler generated dependencies file for shaddr_unit_test.
# This may be replaced when dependencies are built.
