file(REMOVE_RECURSE
  "CMakeFiles/core_resource_sync_test.dir/core_resource_sync_test.cc.o"
  "CMakeFiles/core_resource_sync_test.dir/core_resource_sync_test.cc.o.d"
  "core_resource_sync_test"
  "core_resource_sync_test.pdb"
  "core_resource_sync_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_resource_sync_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
