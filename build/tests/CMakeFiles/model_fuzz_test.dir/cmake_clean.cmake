file(REMOVE_RECURSE
  "CMakeFiles/model_fuzz_test.dir/model_fuzz_test.cc.o"
  "CMakeFiles/model_fuzz_test.dir/model_fuzz_test.cc.o.d"
  "model_fuzz_test"
  "model_fuzz_test.pdb"
  "model_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
