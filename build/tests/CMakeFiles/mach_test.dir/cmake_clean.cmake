file(REMOVE_RECURSE
  "CMakeFiles/mach_test.dir/mach_test.cc.o"
  "CMakeFiles/mach_test.dir/mach_test.cc.o.d"
  "mach_test"
  "mach_test.pdb"
  "mach_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mach_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
