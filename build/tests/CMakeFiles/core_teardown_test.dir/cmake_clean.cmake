file(REMOVE_RECURSE
  "CMakeFiles/core_teardown_test.dir/core_teardown_test.cc.o"
  "CMakeFiles/core_teardown_test.dir/core_teardown_test.cc.o.d"
  "core_teardown_test"
  "core_teardown_test.pdb"
  "core_teardown_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_teardown_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
