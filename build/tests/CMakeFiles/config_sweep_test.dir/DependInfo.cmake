
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/config_sweep_test.cc" "tests/CMakeFiles/config_sweep_test.dir/config_sweep_test.cc.o" "gcc" "tests/CMakeFiles/config_sweep_test.dir/config_sweep_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/api/CMakeFiles/sg_api.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ipc/CMakeFiles/sg_ipc.dir/DependInfo.cmake"
  "/root/repo/build/src/mach/CMakeFiles/sg_mach.dir/DependInfo.cmake"
  "/root/repo/build/src/proc/CMakeFiles/sg_proc.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/sg_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/sg_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/sg_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/sg_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/sg_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
