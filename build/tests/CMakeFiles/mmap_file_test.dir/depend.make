# Empty dependencies file for mmap_file_test.
# This may be replaced when dependencies are built.
