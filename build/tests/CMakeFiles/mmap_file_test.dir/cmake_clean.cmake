file(REMOVE_RECURSE
  "CMakeFiles/mmap_file_test.dir/mmap_file_test.cc.o"
  "CMakeFiles/mmap_file_test.dir/mmap_file_test.cc.o.d"
  "mmap_file_test"
  "mmap_file_test.pdb"
  "mmap_file_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmap_file_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
