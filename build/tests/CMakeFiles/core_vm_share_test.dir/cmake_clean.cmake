file(REMOVE_RECURSE
  "CMakeFiles/core_vm_share_test.dir/core_vm_share_test.cc.o"
  "CMakeFiles/core_vm_share_test.dir/core_vm_share_test.cc.o.d"
  "core_vm_share_test"
  "core_vm_share_test.pdb"
  "core_vm_share_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_vm_share_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
