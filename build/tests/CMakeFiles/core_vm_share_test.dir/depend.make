# Empty dependencies file for core_vm_share_test.
# This may be replaced when dependencies are built.
