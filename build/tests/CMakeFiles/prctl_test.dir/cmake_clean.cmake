file(REMOVE_RECURSE
  "CMakeFiles/prctl_test.dir/prctl_test.cc.o"
  "CMakeFiles/prctl_test.dir/prctl_test.cc.o.d"
  "prctl_test"
  "prctl_test.pdb"
  "prctl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prctl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
