# Empty dependencies file for prctl_test.
# This may be replaced when dependencies are built.
