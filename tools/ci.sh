#!/usr/bin/env bash
# One-command CI: every checked configuration, in dependency order.
#
#   tools/ci.sh [preset...]
#
# With no arguments runs the full ladder:
#
#   default  — RelWithDebInfo, full test suite (includes the sgcheck
#              self-test and the sgcheck run over the repo itself)
#   tsan     — ThreadSanitizer, sync/core-focused suite (preset filter)
#   lockdep  — runtime lock-order + sleep-under-spin validator, full suite
#   asan     — AddressSanitizer, full suite
#   ubsan    — UndefinedBehaviorSanitizer (hard errors), full suite
#
# Pass preset names to run a subset: `tools/ci.sh default asan`. The tsa
# preset (clang -Wthread-safety) is not in the default ladder because the
# container ships gcc only; add it explicitly where clang exists.
#
# Each preset is configure + build + ctest; the script stops at the first
# failure so the log ends at the culprit.
set -euo pipefail

repo=$(cd "$(dirname "$0")/.." && pwd)
cd "${repo}"

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(default tsan lockdep asan ubsan)
fi

jobs=$(nproc 2>/dev/null || echo 2)

for p in "${presets[@]}"; do
  echo "===================================================================="
  echo "== ci: preset ${p}"
  echo "===================================================================="
  cmake --preset "${p}"
  cmake --build --preset "${p}" -j "${jobs}"
  ctest --preset "${p}" -j "${jobs}"
done

# Lint rides the default build's sgcheck binary (and clang-tidy if present).
if [[ " ${presets[*]} " == *" default "* ]]; then
  echo "===================================================================="
  echo "== ci: lint"
  echo "===================================================================="
  "${repo}/tools/lint.sh" "${repo}/build"
fi

echo "ci: all green (${presets[*]})"
