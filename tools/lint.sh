#!/usr/bin/env bash
# Repository lint: clang-tidy (when available) plus banned-pattern checks
# that encode the locking conventions clang-tidy cannot see.
#
#   tools/lint.sh [build-dir]
#
# The build dir only matters for clang-tidy (it needs compile_commands.json;
# configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON). The pattern checks
# always run and need nothing but grep. Exit nonzero on any violation.
set -uo pipefail

repo=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-${repo}/build}
fail=0

# ---------------------------------------------------------------------------
# 1. clang-tidy over src/ (skipped with a notice when clang-tidy or the
#    compile database is missing — the container image ships gcc only).
# ---------------------------------------------------------------------------
if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "lint: clang-tidy not found; skipping static checks (pattern checks still run)" >&2
elif [ ! -f "${build_dir}/compile_commands.json" ]; then
  echo "lint: ${build_dir}/compile_commands.json missing; skipping clang-tidy" >&2
  echo "      configure with: cmake -B ${build_dir} -S ${repo} -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
else
  echo "== clang-tidy" >&2
  # shellcheck disable=SC2046
  if ! clang-tidy -p "${build_dir}" --quiet $(find "${repo}/src" -name '*.cc' | sort); then
    fail=1
  fi
fi

# ---------------------------------------------------------------------------
# 2. Banned patterns.
# ---------------------------------------------------------------------------
echo "== banned patterns" >&2

# 2a. Spinlock internals stay inside sync/: nothing outside src/sync may
#     poke a lock's flag word directly (that bypasses the lockdep hooks and
#     the Unlock holder check).
hits=$(grep -rn 'flag_\.store\|flag_\.exchange' "${repo}/src" \
         --include='*.h' --include='*.cc' | grep -v '^[^:]*src/sync/' || true)
if [ -n "${hits}" ]; then
  echo "lint: raw spinlock flag manipulation outside src/sync/:" >&2
  echo "${hits}" >&2
  fail=1
fi

# 2b. Injection points must be registered: every SG_INJECT_POINT /
#     SG_INJECT_FAULT name in src/ must appear in tools/inject_points.txt,
#     so storm plans and the lint registry can't silently drift apart.
registry="${repo}/tools/inject_points.txt"
planted=$(grep -rhoE 'SG_INJECT_(POINT|FAULT)\("[^"]+"\)' "${repo}/src" \
            --include='*.cc' --include='*.h' \
          | grep -v 'src/inject/' \
          | sed -E 's/SG_INJECT_(POINT|FAULT)\("([^"]+)"\)/\2/' | sort -u)
unregistered=""
for name in ${planted}; do
  if ! grep -qx "${name}" <(grep -v '^#' "${registry}" | grep -v '^$'); then
    unregistered="${unregistered} ${name}"
  fi
done
if [ -n "${unregistered}" ]; then
  echo "lint: injection points planted but not registered in tools/inject_points.txt:" >&2
  for name in ${unregistered}; do echo "  ${name}" >&2; done
  fail=1
fi

# 2c. The master descriptor table is private to the fupdsema_ bracket:
#     nothing outside core/shaddr.{h,cc} may touch ofile_ slots directly.
#     Syscall code goes through LockFileUpdate / PullFdsIfFlagged /
#     PublishFds / UnlockFileUpdate so every write is generation-stamped.
hits=$(grep -rn 'ofile_' "${repo}/src" --include='*.h' --include='*.cc' \
         | grep -v '^[^:]*src/core/shaddr\.\(h\|cc\):' || true)
if [ -n "${hits}" ]; then
  echo "lint: direct ofile_ access outside src/core/shaddr.{h,cc} (use the" >&2
  echo "      fupdsema update bracket: PullFdsIfFlagged/PublishFds):" >&2
  echo "${hits}" >&2
  fail=1
fi

# 2d. The shared pregion list is private to the VM layer: outside src/vm/,
#     SharedSpace::pregions() must not be called at all — not even under
#     the group lock. Readers go through Find/FindByType/ForEachPregion or
#     the published snapshot; updaters go through AttachPregion /
#     DetachPregion / ExtractStackOf, which keep the layout seqcount and
#     the RCU snapshot in step with the list. (private_pregions() is a
#     different, per-process accessor and stays allowed.)
hits=$(grep -rnE '(\.|->)pregions\(\)' "${repo}/src" "${repo}/tests" "${repo}/bench" \
         --include='*.h' --include='*.cc' | grep -v '^[^:]*src/vm/' || true)
if [ -n "${hits}" ]; then
  echo "lint: SharedSpace::pregions() used outside src/vm/ (use Find*/" >&2
  echo "      ForEachPregion or Attach/Detach/ExtractStackOf instead):" >&2
  echo "${hits}" >&2
  fail=1
fi

if [ "${fail}" -ne 0 ]; then
  echo "lint: FAIL" >&2
  exit 1
fi
echo "lint: OK" >&2
