#!/usr/bin/env bash
# Repository lint — a thin wrapper:
#
#   1. sgcheck (tools/sgcheck/): the dependency-free protocol checker. It
#      owns every rule this script used to grep for (spinlock internals,
#      ofile_/pregions() privacy, inject-point registry) plus the deep ones
#      (sleep-in-atomic, guard-escape, seqcount-bracket, guarded-fields).
#      Always runs; builds itself with the system C++ compiler if the build
#      tree hasn't produced a binary yet.
#   2. clang-tidy, only when installed AND the build dir has a compile
#      database (the container image ships gcc only, so usually skipped).
#
#   tools/lint.sh [build-dir]
#
# Exit nonzero on any violation.
set -uo pipefail

repo=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-${repo}/build}
fail=0

# ---------------------------------------------------------------------------
# 1. sgcheck.
# ---------------------------------------------------------------------------
sgcheck="${build_dir}/tools/sgcheck/sgcheck"
if [ ! -x "${sgcheck}" ]; then
  # No built binary: compile one into a scratch dir (four files, seconds).
  scratch=$(mktemp -d)
  trap 'rm -rf "${scratch}"' EXIT
  cxx=${CXX:-c++}
  echo "lint: building sgcheck with ${cxx} (no binary at ${sgcheck})" >&2
  if ! "${cxx}" -std=c++20 -O1 -o "${scratch}/sgcheck" \
       "${repo}"/tools/sgcheck/lexer.cc "${repo}"/tools/sgcheck/parser.cc \
       "${repo}"/tools/sgcheck/rules.cc "${repo}"/tools/sgcheck/main.cc; then
    echo "lint: sgcheck failed to build" >&2
    exit 1
  fi
  sgcheck="${scratch}/sgcheck"
fi

echo "== sgcheck" >&2
if ! "${sgcheck}" --repo "${repo}" \
       --inject-registry "${repo}/tools/inject_points.txt"; then
  fail=1
fi

# ---------------------------------------------------------------------------
# 2. clang-tidy (optional).
# ---------------------------------------------------------------------------
if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "lint: clang-tidy not found; skipping (sgcheck already ran)" >&2
elif [ ! -f "${build_dir}/compile_commands.json" ]; then
  echo "lint: ${build_dir}/compile_commands.json missing; skipping clang-tidy" >&2
  echo "      configure with: cmake -B ${build_dir} -S ${repo} -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
else
  echo "== clang-tidy" >&2
  # shellcheck disable=SC2046
  if ! clang-tidy -p "${build_dir}" --quiet $(find "${repo}/src" -name '*.cc' | sort); then
    fail=1
  fi
fi

if [ "${fail}" -ne 0 ]; then
  echo "lint: FAIL" >&2
  exit 1
fi
echo "lint: OK" >&2
