#include "parser.h"

#include <algorithm>
#include <cctype>

namespace sgcheck {

namespace {

const std::set<std::string> kStmtKeywords = {
    "return",   "delete", "new",   "throw",  "if",     "else",    "do",
    "while",    "for",    "switch", "case",  "break",  "continue", "goto",
    "sizeof",   "alignof", "using", "namespace", "public", "private",
    "protected", "template", "typename", "operator", "this", "co_return",
    "co_await", "static_assert", "default", "try", "catch", "void",
};

const std::set<std::string> kCvStorage = {
    "const", "constexpr", "consteval", "constinit", "static", "thread_local",
    "mutable", "volatile", "register", "inline", "extern", "explicit",
    "virtual", "typename", "unsigned", "signed",
};

// RAII guard types that open a no-sleep context for their scope.
unsigned GuardCtxKind(const std::string& type_last) {
  if (type_last == "SpinGuard") return kCtxSpin;
  if (type_last == "SeqWriter") return kCtxSeqWrite;
  if (type_last == "EpochGuard") return kCtxEpoch;
  return 0;
}

bool IsMacroName(const std::string& s) {
  if (s.size() < 2) return false;
  bool upper = false;
  for (char c : s) {
    if (std::islower(static_cast<unsigned char>(c))) return false;
    if (std::isupper(static_cast<unsigned char>(c))) upper = true;
  }
  return upper;
}

const char* CtxName(unsigned kind) {
  switch (kind) {
    case kCtxSpin: return "spinlock-held section";
    case kCtxSeqWrite: return "seqcount write section";
    case kCtxSeqRead: return "seqcount read window";
    case kCtxEpoch: return "epoch-pinned section";
  }
  return "no-sleep section";
}

// ---------------------------------------------------------------------------
// Sig-token accessors.
// ---------------------------------------------------------------------------

const Token& T(const SourceFile& f, size_t si) { return f.toks[f.sig[si]]; }

bool IsP(const SourceFile& f, size_t si, const char* p) {
  return si < f.sig.size() && T(f, si).kind == Tok::kPunct && T(f, si).text == p;
}

bool IsIdent(const SourceFile& f, size_t si) {
  return si < f.sig.size() && T(f, si).kind == Tok::kIdent;
}

bool IsIdent(const SourceFile& f, size_t si, const char* name) {
  return IsIdent(f, si) && T(f, si).text == name;
}

// Matching close brace for the open brace at `si` (sig index). Returns
// f.sig.size() if unbalanced (parser survives; rules see a truncated body).
size_t MatchBrace(const SourceFile& f, size_t si) {
  int depth = 0;
  for (size_t j = si; j < f.sig.size(); ++j) {
    if (IsP(f, j, "{")) ++depth;
    if (IsP(f, j, "}")) {
      --depth;
      if (depth == 0) return j;
    }
  }
  return f.sig.size();
}

// Skips a template argument list starting at the '<' at `si`; returns the
// index just past the matching '>'. ">>" counts as two closes. Bails (returns
// start) if it runs into ';' or '{' — then it was a comparison, not a list.
size_t SkipAngles(const SourceFile& f, size_t si) {
  int depth = 0;
  for (size_t j = si; j < f.sig.size(); ++j) {
    const Token& t = T(f, j);
    if (t.kind != Tok::kPunct) continue;
    if (t.text == "<") ++depth;
    else if (t.text == ">") {
      if (--depth == 0) return j + 1;
    } else if (t.text == ">>") {
      depth -= 2;
      if (depth <= 0) return j + 1;
    } else if (t.text == ";" || t.text == "{" || t.text == "}") {
      return si;
    }
  }
  return si;
}

// ---------------------------------------------------------------------------
// Pass 1: structure.
// ---------------------------------------------------------------------------

struct StructureScanner {
  Program& prog;
  int file_idx;
  SourceFile& f;

  // Scans statements until the matching '}' of the scope the caller just
  // entered (or EOF). `cls` is the enclosing class-name stack.
  void ScanScope(size_t& i, std::vector<std::string>& cls, bool in_class) {
    const size_t n = f.sig.size();
    while (i < n) {
      if (IsP(f, i, "}")) {
        ++i;
        return;
      }
      if (IsP(f, i, ";")) {
        ++i;
        continue;
      }
      if (in_class && IsIdent(f, i) && IsP(f, i + 1, ":") &&
          (T(f, i).text == "public" || T(f, i).text == "private" ||
           T(f, i).text == "protected")) {
        i += 2;
        continue;
      }
      if (IsIdent(f, i, "template") && IsP(f, i + 1, "<")) {
        i = SkipAngles(f, i + 1);  // the declaration itself follows
        if (IsP(f, i, "<")) ++i;   // bail-out safety
        continue;
      }
      ScanStatement(i, cls, in_class);
    }
  }

  // One statement head ending in ';' (declaration) or '{' (block opener).
  void ScanStatement(size_t& i, std::vector<std::string>& cls, bool in_class) {
    const size_t n = f.sig.size();
    std::vector<size_t> head;  // sig indices
    int pdepth = 0;
    while (i < n) {
      const Token& t = T(f, i);
      if (t.kind == Tok::kPunct) {
        if (t.text == "(" || t.text == "[") {
          ++pdepth;
        } else if (t.text == ")" || t.text == "]") {
          --pdepth;
        } else if (t.text == ";" && pdepth <= 0) {
          FinishDecl(head, cls, in_class);
          ++i;  // consume ';'
          return;
        } else if (t.text == "}" && pdepth <= 0) {
          return;  // let ScanScope see it ("}" inside parens is brace-init)
        } else if (t.text == "{" && pdepth <= 0) {
          if (BraceIsInitializer(head)) {
            i = MatchBrace(f, i);
            if (i < n) ++i;  // past '}'
            continue;        // keep reading the head (e.g. " = {0} ;")
          }
          FinishBlock(head, i, cls, in_class);
          return;
        }
      }
      head.push_back(i);
      ++i;
    }
    FinishDecl(head, cls, in_class);
  }

  bool HeadHas(const std::vector<size_t>& head, const char* kw) const {
    for (size_t h : head) {
      if (T(f, h).kind == Tok::kIdent && T(f, h).text == kw) return true;
    }
    return false;
  }

  bool BraceIsInitializer(const std::vector<size_t>& head) const {
    if (head.empty()) return false;
    if (HeadHas(head, "class") || HeadHas(head, "struct") || HeadHas(head, "union") ||
        HeadHas(head, "namespace") || HeadHas(head, "enum")) {
      return false;
    }
    const Token& p = T(f, head.back());
    if (p.kind == Tok::kPunct &&
        (p.text == "=" || p.text == "," || p.text == "(")) {
      return true;
    }
    if (p.kind == Tok::kIdent && p.text == "return") return true;
    // "Type name{init}" / "arr[N]{...}": an identifier/'>'/']' right before
    // '{' with no parameter list anywhere in the head.
    bool top_paren = false;
    int pd = 0;
    for (size_t h : head) {
      const Token& t = T(f, h);
      if (t.kind != Tok::kPunct) continue;
      if (t.text == "(") {
        if (pd == 0) top_paren = true;
        ++pd;
      } else if (t.text == ")") {
        --pd;
      }
    }
    if (top_paren) return false;
    return p.kind == Tok::kIdent ||
           (p.kind == Tok::kPunct && (p.text == ">" || p.text == "]"));
  }

  // Head ended at an opening '{' (sig index `i` points at it).
  void FinishBlock(const std::vector<size_t>& head, size_t& i,
                   std::vector<std::string>& cls, bool in_class) {
    const size_t n = f.sig.size();
    if (HeadHas(head, "namespace")) {
      ++i;
      ScanScope(i, cls, /*in_class=*/false);
      return;
    }
    if (HeadHas(head, "enum")) {
      i = MatchBrace(f, i);
      if (i < n) ++i;
      return;
    }
    if (HeadHas(head, "class") || HeadHas(head, "struct") || HeadHas(head, "union")) {
      const std::string name = ClassNameFromHead(head);
      prog.classes.push_back(ClassInfo{name, f.path, head.empty() ? 0 : T(f, head[0]).line, {}, false});
      const size_t class_idx = prog.classes.size() - 1;
      cls.push_back(name);
      ++i;
      ScanScopeForClass(i, cls, class_idx);
      cls.pop_back();
      // Trailing declarator: "struct X { ... } x_;"
      std::vector<size_t> trail;
      while (i < n && !IsP(f, i, ";") && !IsP(f, i, "}")) {
        trail.push_back(i);
        ++i;
      }
      if (in_class && !trail.empty() && IsIdent(f, trail.back())) {
        ClassInfo& owner = CurrentClass(cls);
        FieldInfo fi;
        fi.name = T(f, trail.back()).text;
        fi.type_last = name;
        fi.line = T(f, trail.back()).line;
        fi.decl = name + " " + fi.name;
        owner.fields.push_back(fi);
        prog.field_types.emplace(fi.name, fi.type_last);
      }
      if (i < n && IsP(f, i, ";")) ++i;
      return;
    }
    if (HasTopParen(head)) {
      RecordFunction(head, i, cls);
      return;
    }
    // Unrecognized block: skip it.
    i = MatchBrace(f, i);
    if (i < n) ++i;
  }

  // Class bodies need their ClassInfo on hand for field recording; the
  // generic ScanScope recursion re-enters through ScanStatement, which finds
  // the class via prog.classes — keep a stack of open class indices.
  std::vector<size_t> open_classes_;

  void ScanScopeForClass(size_t& i, std::vector<std::string>& cls, size_t class_idx) {
    open_classes_.push_back(class_idx);
    ScanScope(i, cls, /*in_class=*/true);
    open_classes_.pop_back();
  }

  ClassInfo& CurrentClass(const std::vector<std::string>&) {
    return prog.classes[open_classes_.back()];
  }

  bool HasTopParen(const std::vector<size_t>& head) const {
    int pd = 0;
    for (size_t h : head) {
      const Token& t = T(f, h);
      if (t.kind != Tok::kPunct) continue;
      if (t.text == "(") {
        if (pd == 0) return true;
        ++pd;
      } else if (t.text == ")") {
        --pd;
      } else if (t.text == "[") {
        ++pd;  // don't treat parens inside [[attr]] or arrays as top level
      } else if (t.text == "]") {
        --pd;
      }
    }
    return false;
  }

  std::string ClassNameFromHead(const std::vector<size_t>& head) const {
    size_t kw = head.size();
    for (size_t k = 0; k < head.size(); ++k) {
      const Token& t = T(f, head[k]);
      if (t.kind == Tok::kIdent &&
          (t.text == "class" || t.text == "struct" || t.text == "union")) {
        kw = k;
      }
    }
    std::string name;
    int pd = 0;
    for (size_t k = kw + 1; k < head.size(); ++k) {
      const Token& t = T(f, head[k]);
      if (t.kind == Tok::kPunct) {
        if (t.text == "(" || t.text == "[") ++pd;
        else if (t.text == ")" || t.text == "]") --pd;
        else if (t.text == ":" && pd == 0) break;  // base clause
      }
      if (pd == 0 && t.kind == Tok::kIdent && t.text != "final" &&
          t.text != "alignas" && !IsMacroName(t.text)) {
        // skip macro-argument idents inside parens via pd check above
        name = t.text;
      }
    }
    return name;
  }

  // First top-level '(' that can open a parameter list: not a macro
  // invocation's paren (SG_GUARDED_BY(...), SG_CHECK(...)) and not part of
  // an initializer (anything after a top-level '='). Returns head.size().
  size_t TopParenPos(const std::vector<size_t>& head) const {
    int pd = 0;
    for (size_t k = 0; k < head.size(); ++k) {
      const Token& t = T(f, head[k]);
      if (t.kind != Tok::kPunct) continue;
      if (t.text == "=" && pd == 0) return head.size();
      if (t.text == "(" || t.text == "[") {
        if (pd == 0 && t.text == "(") {
          const bool macro = k > 0 && IsIdent(f, head[k - 1]) &&
                             IsMacroName(T(f, head[k - 1]).text);
          if (!macro) return k;
        }
        ++pd;
      } else if (t.text == ")" || t.text == "]") {
        --pd;
      }
    }
    return head.size();
  }

  void CollectRequires(const std::vector<size_t>& head, std::vector<std::string>* out) const {
    for (size_t k = 0; k + 1 < head.size(); ++k) {
      if (IsIdent(f, head[k]) && T(f, head[k]).text == "SG_REQUIRES" &&
          IsP(f, head[k + 1], "(")) {
        for (size_t m = k + 2; m < head.size(); ++m) {
          const Token& t = T(f, head[m]);
          if (t.kind == Tok::kPunct && t.text == ")") break;
          if (t.kind == Tok::kIdent) out->push_back(t.text);
        }
      }
    }
  }

  // Detects zero-arg accessors returning a capability reference
  // ("SeqCount& layout_seq()"), so call-chain receivers can be typed.
  void MaybeRecordAccessor(const std::vector<size_t>& head, size_t paren,
                           const std::string& name) {
    static const std::set<std::string> kCapTypes = {
        "Spinlock", "SeqCount", "SharedReadLock", "Semaphore", "Mutex"};
    if (paren + 1 < head.size() && !IsP(f, head[paren + 1], ")")) return;
    std::string ret;
    for (size_t k = 0; k + 1 < paren && k < head.size(); ++k) {
      if (IsIdent(f, head[k]) && kCapTypes.count(T(f, head[k]).text)) {
        ret = T(f, head[k]).text;
      }
    }
    if (!ret.empty() && !name.empty()) prog.accessor_types[name] = ret;
  }

  void RecordFunction(const std::vector<size_t>& head, size_t& i,
                      const std::vector<std::string>& cls) {
    const size_t n = f.sig.size();
    const size_t paren = TopParenPos(head);
    std::string name, qual;
    if (paren > 0 && paren < head.size()) {
      size_t p = paren - 1;
      if (IsIdent(f, head[p])) {
        name = T(f, head[p]).text;
        if (p > 0 && IsP(f, head[p - 1], "~")) name = "~" + name;
        // Walk back "A::B::" qualifiers.
        std::vector<std::string> quals;
        size_t q = p;
        while (q >= 2 && IsP(f, head[q - 1], "::") && IsIdent(f, head[q - 2])) {
          quals.insert(quals.begin(), T(f, head[q - 2]).text);
          q -= 2;
        }
        if (!quals.empty()) {
          qual = quals.front();
          for (size_t k = 1; k < quals.size(); ++k) qual += "::" + quals[k];
          qual += "::" + name;
        } else if (!cls.empty()) {
          qual = cls.back() + "::" + name;
        } else {
          qual = name;
        }
      }
    }
    const size_t body_open = i;
    const size_t body_close = MatchBrace(f, body_open);
    if (!name.empty()) {
      FunctionInfo fn;
      fn.name = name;
      fn.qual = qual;
      fn.file = f.path;
      fn.line = head.empty() ? T(f, body_open).line : T(f, head[0]).line;
      fn.file_idx = file_idx;
      fn.body_begin = body_open + 1;
      fn.body_end = body_close;
      CollectRequires(head, &fn.requires_args);
      if (!fn.requires_args.empty()) prog.method_requires[qual] = fn.requires_args;
      MaybeRecordAccessor(head, paren, name);
      prog.funcs.push_back(std::move(fn));
    }
    i = body_close;
    if (i < n) ++i;
  }

  // Head ended in ';'. Only class members matter: fields and method decls.
  void FinishDecl(const std::vector<size_t>& head, const std::vector<std::string>& cls,
                  bool in_class) {
    if (!in_class || head.empty() || open_classes_.empty()) return;
    const Token& first = T(f, head[0]);
    if (first.kind == Tok::kIdent &&
        (first.text == "static" || first.text == "using" || first.text == "typedef" ||
         first.text == "friend" || first.text == "template")) {
      return;
    }
    if (HeadHas(head, "operator")) return;
    const size_t paren = TopParenPos(head);
    if (paren < head.size()) {
      // Method declaration: record SG_REQUIRES and accessor typing.
      if (paren > 0 && IsIdent(f, head[paren - 1])) {
        const std::string mname = T(f, head[paren - 1]).text;
        std::vector<std::string> req;
        CollectRequires(head, &req);
        const std::string key = (cls.empty() ? mname : cls.back() + "::" + mname);
        if (!req.empty()) prog.method_requires[key] = req;
        MaybeRecordAccessor(head, paren, mname);
      }
      return;
    }
    RecordField(head, cls);
  }

  void RecordField(const std::vector<size_t>& head, const std::vector<std::string>&) {
    // Name: ident before the annotation if present, else before a top-level
    // '=', else the last ident (skipping a trailing array extent).
    size_t name_pos = head.size();
    for (size_t k = 0; k < head.size(); ++k) {
      if (IsIdent(f, head[k]) && (T(f, head[k]).text == "SG_GUARDED_BY" ||
                                  T(f, head[k]).text == "SG_PT_GUARDED_BY")) {
        if (k > 0 && IsIdent(f, head[k - 1])) name_pos = k - 1;
        break;
      }
    }
    if (name_pos == head.size()) {
      size_t end = head.size();
      for (size_t k = 0; k < head.size(); ++k) {
        if (IsP(f, head[k], "=")) {
          end = k;
          break;
        }
      }
      // Skip back over "[ extent ]".
      while (end > 0 && IsP(f, head[end - 1], "]")) {
        int bd = 0;
        size_t k = end;
        while (k > 0) {
          --k;
          if (IsP(f, head[k], "]")) ++bd;
          if (IsP(f, head[k], "[")) {
            if (--bd == 0) break;
          }
        }
        end = k;
      }
      if (end == 0) return;
      if (!IsIdent(f, head[end - 1])) return;
      name_pos = end - 1;
    }
    if (name_pos == 0 || name_pos >= head.size()) return;  // no type tokens
    const std::string name = T(f, head[name_pos]).text;
    if (kStmtKeywords.count(name) || IsMacroName(name)) return;

    FieldInfo fi;
    fi.name = name;
    fi.line = T(f, head[name_pos]).line;
    int angle = 0;
    for (size_t k = 0; k < name_pos; ++k) {
      const Token& t = T(f, head[k]);
      fi.decl += (fi.decl.empty() ? "" : " ") + t.text;
      if (t.kind == Tok::kPunct) {
        if (t.text == "<") ++angle;
        else if (t.text == ">") --angle;
        else if (t.text == ">>") angle -= 2;
        else if (t.text == "&" && angle <= 0) fi.ref = true;
      }
      if (t.kind == Tok::kIdent) {
        if (t.text == "atomic" || t.text == "atomic_flag") fi.atomic_ = true;
        if (angle <= 0 && !kCvStorage.count(t.text) && t.text != "std" &&
            !IsMacroName(t.text) && t.text != "struct" && t.text != "class") {
          fi.type_last = t.text;
        }
      }
    }
    // const object: a top-level const with no top-level pointer declarator.
    // `T* const p` (const pointer) also counts — the binding is fixed at
    // construction, same as a reference.
    bool has_const = false, has_ptr = false, ptr_const = false;
    angle = 0;
    for (size_t k = 0; k < name_pos; ++k) {
      const Token& t = T(f, head[k]);
      if (t.kind == Tok::kPunct) {
        if (t.text == "<") ++angle;
        else if (t.text == ">") --angle;
        else if (t.text == ">>") angle -= 2;
        else if (t.text == "*" && angle <= 0) has_ptr = true;
      }
      if (t.kind == Tok::kIdent && t.text == "const" && angle <= 0) {
        has_const = true;
        if (has_ptr) ptr_const = true;  // const after the star binds the pointer
      }
    }
    fi.konst = (has_const && !has_ptr) || ptr_const;
    for (size_t k = name_pos; k < head.size(); ++k) {
      if (IsIdent(f, head[k]) && (T(f, head[k]).text == "SG_GUARDED_BY" ||
                                  T(f, head[k]).text == "SG_PT_GUARDED_BY")) {
        fi.annotated = true;
      }
    }
    ClassInfo& c = prog.classes[open_classes_.back()];
    if (fi.annotated) c.has_guarded = true;
    prog.field_types.emplace(fi.name, fi.type_last);
    c.fields.push_back(std::move(fi));
  }
};

}  // namespace

void ParseStructure(Program& prog, int file_idx) {
  SourceFile& f = prog.files[file_idx];
  StructureScanner s{prog, file_idx, f, {}};
  size_t i = 0;
  std::vector<std::string> cls;
  s.ScanScope(i, cls, /*in_class=*/false);
}

// ---------------------------------------------------------------------------
// Pass 2: body walking.
// ---------------------------------------------------------------------------

namespace {

struct ActiveCtx {
  unsigned kind;
  std::string key;  // receiver name for explicit pairs; "" for RAII guards
  int line;
  std::string desc;
  bool open = true;
};

struct ScopeFrame {
  std::vector<ActiveCtx> ctxs;
  std::map<std::string, std::string> locals;   // name -> type_last
  std::set<std::string> tracked;               // epoch-derived pointers (R2)
};

struct BodyWalker {
  Program& prog;
  SourceFile& f;
  FunctionInfo& fn;
  std::vector<ScopeFrame> sc;

  unsigned CurMask() const {
    unsigned m = 0;
    for (const ScopeFrame& s : sc) {
      for (const ActiveCtx& c : s.ctxs) {
        if (c.open) m |= c.kind;
      }
    }
    return m;
  }

  const ActiveCtx* InnermostOpen() const {
    for (auto s = sc.rbegin(); s != sc.rend(); ++s) {
      for (auto c = s->ctxs.rbegin(); c != s->ctxs.rend(); ++c) {
        if (c->open) return &*c;
      }
    }
    return nullptr;
  }

  std::string CtxDesc() const {
    const ActiveCtx* c = InnermostOpen();
    return c == nullptr ? "no-sleep section" : c->desc;
  }

  int EpochScope() const {
    for (size_t s = 0; s < sc.size(); ++s) {
      for (const ActiveCtx& c : sc[s].ctxs) {
        if (c.open && c.kind == kCtxEpoch) return static_cast<int>(s);
      }
    }
    return -1;
  }

  bool IsTracked(const std::string& name) const {
    for (const ScopeFrame& s : sc) {
      if (s.tracked.count(name)) return true;
    }
    return false;
  }

  bool DeclaredUnderEpoch(const std::string& name) const {
    const int es = EpochScope();
    if (es < 0) return false;
    for (size_t s = static_cast<size_t>(es); s < sc.size(); ++s) {
      if (sc[s].locals.count(name)) return true;
    }
    return false;
  }

  std::string TypeOf(const std::string& name) const {
    for (auto s = sc.rbegin(); s != sc.rend(); ++s) {
      auto it = s->locals.find(name);
      if (it != s->locals.end()) return it->second;
    }
    return "";
  }

  bool NameHasType(const std::string& name, const char* type) const {
    const std::string local = TypeOf(name);
    if (!local.empty()) return local == type;
    auto [lo, hi] = prog.field_types.equal_range(name);
    for (auto it = lo; it != hi; ++it) {
      if (it->second == type) return true;
    }
    return false;
  }

  void OpenCtx(unsigned kind, const std::string& key, int line, std::string desc) {
    sc.back().ctxs.push_back(ActiveCtx{kind, key, line, std::move(desc), true});
  }

  void CloseCtx(unsigned kind, const std::string& key) {
    for (auto s = sc.rbegin(); s != sc.rend(); ++s) {
      for (auto c = s->ctxs.rbegin(); c != s->ctxs.rend(); ++c) {
        if (c->open && c->kind == kind && c->key == key) {
          c->open = false;
          return;
        }
      }
    }
  }

  void Lexical(const char* rule, int line, std::string msg) {
    prog.lexical.push_back(Diag{f.path, line, rule, std::move(msg)});
  }

  // Receiver name/type for a ".method(" / "->method(" call at sig index `j`
  // (j points at the method ident, j-1 at the access punct).
  void Receiver(size_t j, std::string* name, std::string* type) {
    name->clear();
    type->clear();
    if (j < 2) return;
    if (IsIdent(f, j - 2)) {
      *name = T(f, j - 2).text;
      *type = TypeOf(*name);
      if (type->empty()) {
        auto [lo, hi] = prog.field_types.equal_range(*name);
        std::set<std::string> types;
        for (auto it = lo; it != hi; ++it) types.insert(it->second);
        if (types.size() == 1) *type = *types.begin();
        // ambiguous field names: resolve lazily via NameHasType at use site
      }
      return;
    }
    if (IsP(f, j - 2, ")")) {
      // Accessor chain: "...->lock().Method(": find the accessor name.
      int pd = 0;
      size_t k = j - 2;
      while (k > 0) {
        if (IsP(f, k, ")")) ++pd;
        if (IsP(f, k, "(")) {
          if (--pd == 0) break;
        }
        --k;
      }
      if (k > 0 && IsIdent(f, k - 1)) {
        *name = T(f, k - 1).text + "()";
        auto it = prog.accessor_types.find(T(f, k - 1).text);
        if (it != prog.accessor_types.end()) *type = it->second;
      }
    }
  }

  bool RecvIs(const std::string& rname, const std::string& rtype, const char* want) {
    if (rtype == want) return true;
    if (!rtype.empty()) return false;
    return !rname.empty() && rname.back() != ')' && NameHasType(rname, want);
  }

  // Attempts a declaration at sig index j. On success registers the local,
  // applies guard/tracking side effects, sets *next to the token after the
  // declarator name, and returns true.
  bool TryDecl(size_t j, size_t end, size_t* next) {
    size_t k = j;
    while (k < end && IsIdent(f, k) && kCvStorage.count(T(f, k).text)) ++k;
    if (k >= end || !IsIdent(f, k)) return false;
    std::string type_last;
    if (T(f, k).text == "auto") {
      type_last = "auto";
      ++k;
    } else {
      for (;;) {
        if (k >= end || !IsIdent(f, k)) return false;
        const std::string& id = T(f, k).text;
        if (kStmtKeywords.count(id)) return false;
        if (id != "std" && !kCvStorage.count(id)) type_last = id;
        ++k;
        if (k < end && IsP(f, k, "<")) {
          const size_t after = SkipAngles(f, k);
          if (after == k) return false;  // comparison, not template args
          k = after;
        }
        if (k < end && IsP(f, k, "::")) {
          ++k;
          continue;
        }
        break;
      }
    }
    bool saw_ptr = false;
    while (k < end && (IsP(f, k, "*") || IsP(f, k, "&") || IsP(f, k, "&&") ||
                       (IsIdent(f, k) && kCvStorage.count(T(f, k).text)))) {
      if (IsP(f, k, "*")) saw_ptr = true;
      ++k;
    }
    if (k >= end || !IsIdent(f, k)) return false;
    const std::string name = T(f, k).text;
    if (kStmtKeywords.count(name) || IsMacroName(name)) return false;
    const size_t after = k + 1;
    if (after < end) {
      const Token& t = T(f, after);
      if (!(t.kind == Tok::kPunct &&
            (t.text == "=" || t.text == "(" || t.text == "{" || t.text == ";" ||
             t.text == "," || t.text == ":" || t.text == ")" || t.text == "["))) {
        return false;
      }
    }
    sc.back().locals[name] = type_last;
    const int line = T(f, k).line;
    if (unsigned kind = GuardCtxKind(type_last); kind != 0) {
      OpenCtx(kind, "", line,
              std::string(CtxName(kind)) + " (" + type_last + " '" + name +
                  "' at line " + std::to_string(line) + ")");
    }
    // Sleeping RAII guards: their constructors block, which a call-site scan
    // would miss. Record a synthetic call so R1 sees the acquisition.
    if (type_last == "ReadGuard" || type_last == "UpdateGuard" ||
        type_last == "MutexGuard" || type_last == "lock_guard" ||
        type_last == "unique_lock" || type_last == "scoped_lock") {
      const char* via = type_last == "ReadGuard"     ? "AcquireRead"
                        : type_last == "UpdateGuard" ? "AcquireUpdate"
                                                     : "MutexLock";
      fn.calls.push_back(CallSite{via, line, CurMask(), CtxDesc()});
    }
    if (EpochScope() >= 0 && saw_ptr &&
        (type_last == "LayoutSnapshot" || type_last == "Pregion")) {
      sc.back().tracked.insert(name);
    }
    *next = after;
    return true;
  }

  // Statement-level escape peeks (R2): return-of-tracked and
  // assignment-of-tracked-to-non-local. Pure lookahead; consumes nothing.
  void PeekEscapes(size_t j, size_t end) {
    if (EpochScope() < 0) return;
    // Collect the statement's tokens up to ';' / '{' / '}' at depth 0.
    int pd = 0;
    size_t stop = j;
    size_t eq = 0;
    bool has_eq = false;
    for (size_t k = j; k < end; ++k) {
      const Token& t = T(f, k);
      if (t.kind == Tok::kPunct) {
        if (t.text == "(" || t.text == "[") ++pd;
        else if (t.text == ")" || t.text == "]") --pd;
        else if (pd <= 0 && (t.text == ";" || t.text == "{" || t.text == "}")) {
          stop = k;
          break;
        } else if (pd <= 0 && t.text == "=" && !has_eq) {
          has_eq = true;
          eq = k;
        }
      }
      stop = k + 1;
    }
    const bool is_return = IsIdent(f, j, "return");
    if (is_return) {
      for (size_t k = j + 1; k < stop; ++k) {
        // A mention that is immediately dereferenced (pr->va), compared
        // (pr != nullptr), or tested (pr ? ... : ...) passes a VALUE out,
        // not the pointer; only a bare mention can escape.
        if (k + 1 < stop && (IsP(f, k + 1, "->") || IsP(f, k + 1, ".") ||
                             IsP(f, k + 1, "==") || IsP(f, k + 1, "!=") ||
                             IsP(f, k + 1, "?"))) {
          continue;
        }
        if (IsIdent(f, k) && IsTracked(T(f, k).text)) {
          Lexical("guard-escape", T(f, j).line,
                  "returning '" + T(f, k).text +
                      "', a snapshot-derived pointer, past the end of its "
                      "epoch-pinned section — the graveyard may free it as soon "
                      "as the guard drops");
          return;
        }
      }
      return;
    }
    if (!has_eq) return;
    // RHS mentions a tracked pointer?
    std::string rhs_tracked;
    for (size_t k = eq + 1; k < stop; ++k) {
      if (IsIdent(f, k) && IsTracked(T(f, k).text)) {
        rhs_tracked = T(f, k).text;
        break;
      }
    }
    if (rhs_tracked.empty()) return;
    // A declaration statement ("Pregion* pr = snap->Find(va);") registers a
    // new local that lives inside the pin — TryDecl tracks it — so it is not
    // an escape. Distinguish it from a member store ("obj->field = pr;") by
    // the absence of access punctuation: two-plus bare identifiers before the
    // '=' with no './->' is a decl. A `static` local, though, outlives every
    // pin and IS an escape.
    bool is_static = false;
    bool has_access = false;
    size_t nident = 0;
    std::string last_ident;
    {
      int dpd = 0;
      for (size_t k = j; k < eq; ++k) {
        if (IsP(f, k, "(") || IsP(f, k, "[")) ++dpd;
        else if (IsP(f, k, ")") || IsP(f, k, "]")) --dpd;
        else if (dpd <= 0 && (IsP(f, k, ".") || IsP(f, k, "->"))) has_access = true;
        else if (dpd <= 0 && IsIdent(f, k)) {
          const std::string& id = T(f, k).text;
          if (id == "static") is_static = true;
          else if (id != "std" && !kCvStorage.count(id)) {
            ++nident;
            last_ident = id;
          }
        }
      }
    }
    std::string base;
    if (!has_access && nident >= 2) {
      if (!is_static) return;  // scope-local declaration, dies with the pin
      base = last_ident;       // static local: outlives the section
    } else {
      // LHS base identifier: skip leading '*' / '(' noise.
      size_t k = j;
      while (k < eq && (IsP(f, k, "*") || IsP(f, k, "("))) ++k;
      if (k >= eq || !IsIdent(f, k)) return;
      base = T(f, k).text;
    }
    if (IsTracked(base) || DeclaredUnderEpoch(base)) return;  // local shuffle
    Lexical("guard-escape", T(f, j).line,
            "storing '" + rhs_tracked +
                "', a snapshot-derived pointer, into '" + base +
                "' which outlives the epoch-pinned section");
  }

  void Walk() {
    const size_t end = fn.body_end;
    // SG_REQUIRES(spinlock) on the declaration or definition: the whole
    // body runs with the caller's spinlock held.
    std::vector<std::string> req = fn.requires_args;
    if (req.empty()) {
      auto it = prog.method_requires.find(fn.qual);
      if (it != prog.method_requires.end()) req = it->second;
    }
    // Resolve each required capability against the enclosing class's own
    // fields first — `lock_` names a Spinlock in one class and a
    // SharedReadLock in another, and only the former is a no-sleep context.
    std::string cls_name = fn.qual;
    const size_t cut = cls_name.rfind("::");
    cls_name = cut == std::string::npos ? "" : cls_name.substr(0, cut);
    const size_t cut2 = cls_name.rfind("::");
    if (cut2 != std::string::npos) cls_name = cls_name.substr(cut2 + 2);
    for (const std::string& a : req) {
      std::string ty;
      bool in_class = false;
      for (const ClassInfo& c : prog.classes) {
        if (c.name != cls_name) continue;
        for (const FieldInfo& fi2 : c.fields) {
          if (fi2.name == a) {
            ty = fi2.type_last;
            in_class = true;
            break;
          }
        }
        if (in_class) break;
      }
      const bool spin = in_class ? ty == "Spinlock" : NameHasType(a, "Spinlock");
      if (spin) {
        OpenCtx(kCtxSpin, a, fn.line,
                "spinlock-held section (SG_REQUIRES(" + a + ") on " + fn.name + ")");
      }
    }

    bool stmt_start = true;
    for (size_t j = fn.body_begin; j < end;) {
      const Token& t = T(f, j);
      if (t.kind == Tok::kPunct) {
        if (t.text == "{") {
          sc.push_back(ScopeFrame{});
          stmt_start = true;
          ++j;
          continue;
        }
        if (t.text == "}") {
          if (sc.size() > 1) sc.pop_back();
          stmt_start = true;
          ++j;
          continue;
        }
        if (t.text == ";") {
          stmt_start = true;
          ++j;
          continue;
        }
      }
      const bool decl_pos = stmt_start || (j > fn.body_begin && IsP(f, j - 1, "("));
      if (stmt_start) PeekEscapes(j, end);
      if (decl_pos && IsIdent(f, j) && !kStmtKeywords.count(T(f, j).text)) {
        size_t next = 0;
        if (TryDecl(j, end, &next)) {
          stmt_start = false;
          j = next;
          continue;
        }
      }
      if (IsIdent(f, j) && j + 1 < end && IsP(f, j + 1, "(")) {
        HandleCall(j);
      }
      stmt_start = false;
      ++j;
    }
  }

  void HandleCall(size_t j) {
    const std::string& callee = T(f, j).text;
    if (kStmtKeywords.count(callee) || IsMacroName(callee)) return;
    const int line = T(f, j).line;
    const bool member = j > 0 && (IsP(f, j - 1, ".") || IsP(f, j - 1, "->"));
    std::string rname, rtype;
    if (member) Receiver(j, &rname, &rtype);

    // R3: unbracketed mutation of the published-layout backing lists.
    static const std::set<std::string> kMutators = {
        "push_back", "emplace_back", "erase",  "clear",
        "insert",    "pop_back",     "resize", "assign", "swap"};
    auto bracket_check = [&](const std::string& what) {
      if ((CurMask() & kCtxSeqWrite) == 0) {
        Lexical("seqcount-bracket", line,
                "mutation of '" + what +
                    "' outside a layout seqcount write section — lockless "
                    "readers cannot detect it (open a SeqWriter around the "
                    "mutation + republish)");
      }
    };
    if (member && kMutators.count(callee) && j >= 2 && IsIdent(f, j - 2) &&
        (T(f, j - 2).text == "pregions_" || T(f, j - 2).text == "member_tlbs_")) {
      // Exact receiver: the token before it must not extend the chain.
      const bool chained = j >= 3 && (IsP(f, j - 3, ".") || IsP(f, j - 3, "->") ||
                                      IsIdent(f, j - 3));
      if (!chained) bracket_check(T(f, j - 2).text);
    }
    if (callee == "erase" && !member && j >= 2 && IsP(f, j - 1, "::") &&
        IsIdent(f, j - 2, "std")) {
      if (j + 2 < fn.body_end && IsIdent(f, j + 2) &&
          (T(f, j + 2).text == "pregions_" || T(f, j + 2).text == "member_tlbs_")) {
        bracket_check(T(f, j + 2).text);
      }
    }
    if (callee == "Republish") bracket_check("the published layout (Republish)");

    // R2: storing a tracked pointer through a member/container call.
    static const std::set<std::string> kStores = {"push_back", "emplace_back",
                                                  "insert", "assign", "store"};
    if (member && EpochScope() >= 0 && kStores.count(callee) && !rname.empty() &&
        !DeclaredUnderEpoch(rname)) {
      int pd = 0;
      for (size_t k = j + 1; k < fn.body_end; ++k) {
        if (IsP(f, k, "(")) ++pd;
        if (IsP(f, k, ")")) {
          if (--pd == 0) break;
        }
        if (IsIdent(f, k) && IsTracked(T(f, k).text)) {
          Lexical("guard-escape", line,
                  "storing '" + T(f, k).text +
                      "', a snapshot-derived pointer, into '" + rname +
                      "' which outlives the epoch-pinned section");
          break;
        }
      }
    }

    // Context transitions on explicit acquire/release pairs.
    if (member) {
      if (callee == "Lock" && RecvIs(rname, rtype, "Spinlock")) {
        fn.calls.push_back(CallSite{callee, line, CurMask(), CtxDesc()});
        OpenCtx(kCtxSpin, rname, line,
                "spinlock-held section ('" + rname + "'.Lock() at line " +
                    std::to_string(line) + ")");
        return;
      }
      if (callee == "Unlock" && RecvIs(rname, rtype, "Spinlock")) {
        CloseCtx(kCtxSpin, rname);
        fn.calls.push_back(CallSite{callee, line, CurMask(), CtxDesc()});
        return;
      }
      if (callee == "WriteBegin" && RecvIs(rname, rtype, "SeqCount")) {
        fn.calls.push_back(CallSite{callee, line, CurMask(), CtxDesc()});
        OpenCtx(kCtxSeqWrite, rname, line,
                "seqcount write section ('" + rname + "'.WriteBegin() at line " +
                    std::to_string(line) + ")");
        return;
      }
      if (callee == "WriteEnd" && RecvIs(rname, rtype, "SeqCount")) {
        CloseCtx(kCtxSeqWrite, rname);
        fn.calls.push_back(CallSite{callee, line, CurMask(), CtxDesc()});
        return;
      }
      if (callee == "TryReadBegin" && RecvIs(rname, rtype, "SeqCount")) {
        fn.calls.push_back(CallSite{callee, line, CurMask(), CtxDesc()});
        OpenCtx(kCtxSeqRead, rname, line,
                "seqcount read window ('" + rname + "'.TryReadBegin() at line " +
                    std::to_string(line) + ")");
        return;
      }
      if (callee == "ReadValidate" && RecvIs(rname, rtype, "SeqCount")) {
        CloseCtx(kCtxSeqRead, rname);
        fn.calls.push_back(CallSite{callee, line, CurMask(), CtxDesc()});
        return;
      }
    }
    fn.calls.push_back(CallSite{callee, line, CurMask(), CtxDesc()});
  }
};

}  // namespace

void WalkBodies(Program& prog, int file_idx) {
  for (FunctionInfo& fn : prog.funcs) {
    if (fn.file_idx != file_idx || fn.body_begin >= fn.body_end) continue;
    BodyWalker w{prog, prog.files[file_idx], fn, {}};
    w.sc.push_back(ScopeFrame{});
    w.Walk();
  }
}

// ---------------------------------------------------------------------------
// Suppressions.
// ---------------------------------------------------------------------------

void CollectAllows(SourceFile& f, const std::set<std::string>& known_rules,
                   std::vector<Diag>& out) {
  for (size_t ti = 0; ti < f.toks.size(); ++ti) {
    const Token& t = f.toks[ti];
    if (t.kind != Tok::kComment) continue;
    const size_t at = t.text.find("sgcheck:allow(");
    if (at == std::string::npos) continue;
    const size_t open = at + std::string("sgcheck:allow").size();
    const size_t close = t.text.find(')', open);
    if (close == std::string::npos) {
      out.push_back(Diag{f.path, t.line, "suppression",
                         "malformed sgcheck:allow — missing ')'"});
      continue;
    }
    // Parse the rule list.
    std::vector<std::string> rules;
    std::string cur;
    for (size_t k = open + 1; k < close; ++k) {
      const char c = t.text[k];
      if (c == ',' || std::isspace(static_cast<unsigned char>(c))) {
        if (!cur.empty()) rules.push_back(cur);
        cur.clear();
      } else {
        cur += c;
      }
    }
    if (!cur.empty()) rules.push_back(cur);
    if (rules.empty()) {
      out.push_back(Diag{f.path, t.line, "suppression",
                         "sgcheck:allow() names no rule"});
      continue;
    }
    bool ok = true;
    for (const std::string& r : rules) {
      if (!known_rules.count(r)) {
        out.push_back(Diag{f.path, t.line, "suppression",
                           "sgcheck:allow names unknown rule '" + r + "'"});
        ok = false;
      }
    }
    // Mandatory reason: "): <why>".
    size_t p = close + 1;
    while (p < t.text.size() && std::isspace(static_cast<unsigned char>(t.text[p]))) ++p;
    std::string reason;
    if (p < t.text.size() && t.text[p] == ':') {
      reason = t.text.substr(p + 1);
      // Trim and drop block-comment terminators.
      const size_t endc = reason.find("*/");
      if (endc != std::string::npos) reason = reason.substr(0, endc);
      while (!reason.empty() && std::isspace(static_cast<unsigned char>(reason.front())))
        reason.erase(reason.begin());
      while (!reason.empty() && std::isspace(static_cast<unsigned char>(reason.back())))
        reason.pop_back();
    }
    if (reason.size() < 3) {
      out.push_back(Diag{f.path, t.line, "suppression",
                         "sgcheck:allow(" + rules[0] +
                             ") has no reason — write "
                             "'// sgcheck:allow(<rule>): <why this is safe>'"});
      ok = false;
    }
    if (!ok) continue;
    // Trailing comment suppresses its own line; a standalone comment
    // suppresses the next code line.
    int target = t.line;
    bool standalone = true;
    if (ti > 0 && f.toks[ti - 1].kind != Tok::kComment && f.toks[ti - 1].line == t.line) {
      standalone = false;
    }
    if (standalone) {
      for (size_t k = ti + 1; k < f.toks.size(); ++k) {
        if (f.toks[k].kind == Tok::kComment) continue;
        target = f.toks[k].line;
        break;
      }
    }
    for (const std::string& r : rules) {
      f.allows[target].insert(r);
      f.allows[t.line].insert(r);  // the comment's own line too
    }
  }
}

}  // namespace sgcheck
