// sgcheck rules — the protocol checks, run over the parsed Program.
//
// Rule IDs (stable; these are what sgcheck:allow() names):
//   sleep-in-atomic   R1: call-graph reachability from a no-sleep context
//                     (spinlock held, seqcount write/read section, epoch
//                     pin) to a blocking primitive.
//   guard-escape      R2: a LayoutSnapshot*/Pregion* obtained under an
//                     EpochGuard stored or returned past the guard scope.
//   seqcount-bracket  R3: pregion-list / member-TLB mutations outside a
//                     layout-seqcount write section.
//   guarded-fields    R4: fields of protocol structs (>= 1 SG_GUARDED_BY
//                     member) that are neither annotated, atomic, const,
//                     a reference, a capability, nor internally synchronized.
//   spin-internals    Spinlock implementation pokes (flag_.store/exchange)
//                     outside src/sync/.
//   ofile-private     SharedAddressSpace's ofile_ touched outside shaddr.
//   pregions-private  .pregions() accessor used outside src/vm/.
//   inject-registry   SG_INJECT_POINT/FAULT name missing from the registry.
//   suppression       malformed sgcheck:allow (no reason / unknown rule).
#ifndef TOOLS_SGCHECK_RULES_H_
#define TOOLS_SGCHECK_RULES_H_

#include "parser.h"

namespace sgcheck {

extern const std::set<std::string> kKnownRules;

struct Options {
  std::string repo;             // repo root; empty => explicit-file mode
  std::string inject_registry;  // registry path; empty disables the rule
};

// Runs every rule, applies sgcheck:allow suppressions, and appends the
// surviving diagnostics (plus any suppression-syntax diagnostics already in
// `out`) sorted by (file, line, rule).
void RunRules(Program& prog, const Options& opt, std::vector<Diag>& out);

}  // namespace sgcheck

#endif  // TOOLS_SGCHECK_RULES_H_
