// sgcheck parser — a function-scope C++ parser over the lexer's tokens.
//
// This is NOT a C++ front end. It recovers exactly the structure the
// protocol rules need and nothing more:
//
//   * classes and their data members (for the annotation-coverage audit and
//     for typing lock receivers like `acclck_.Lock()`),
//   * method declarations carrying SG_REQUIRES(<spinlock>) (so a definition
//     in a .cc inherits the "caller holds the spinlock" context),
//   * function definitions with their body token ranges,
//   * per-body: every call site, tagged with the no-sleep contexts open at
//     that point (spinlock held, seqcount write section, seqcount read
//     window, epoch-pinned section),
//   * lexical findings for the guard-escape and seqcount-bracket rules,
//     which need scope-accurate bookkeeping only the walker has.
//
// Known conservatisms (see DESIGN.md §4i): contexts are lexical, so an
// explicit `x.Unlock()` anywhere closes the section — early-release
// branches leave the remainder of the function unchecked (prefer RAII
// guards, which track scope exactly); calls through function pointers,
// templates instantiated with callable parameters, and virtual dispatch
// resolve by name only.
#ifndef TOOLS_SGCHECK_PARSER_H_
#define TOOLS_SGCHECK_PARSER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.h"

namespace sgcheck {

// No-sleep context kinds (bitmask).
enum Ctx : unsigned {
  kCtxSpin = 1u << 0,      // spinlock held (SpinGuard or explicit Lock())
  kCtxSeqWrite = 1u << 1,  // SeqCount write section (SeqWriter / WriteBegin)
  kCtxSeqRead = 1u << 2,   // seqcount read window (TryReadBegin..ReadValidate)
  kCtxEpoch = 1u << 3,     // EpochGuard-pinned section
};

struct Diag {
  std::string file;
  int line = 0;
  std::string rule;
  std::string msg;
};

struct CallSite {
  std::string callee;    // unqualified name
  int line = 0;
  unsigned ctx = 0;      // contexts open at the call
  std::string ctx_desc;  // e.g. "spinlock 'acclck_' held since line 12"
};

struct FieldInfo {
  std::string name;
  std::string type_last;  // last identifier of the type ("Spinlock", "vector")
  std::string decl;       // joined declaration text (diagnostic aid)
  int line = 0;
  bool annotated = false;  // SG_GUARDED_BY / SG_PT_GUARDED_BY present
  bool atomic_ = false;    // std::atomic<...> (or contains `atomic`)
  bool konst = false;      // const object (not a pointer-to-const)
  bool ref = false;        // reference member (binding fixed at construction)
};

struct ClassInfo {
  std::string name;
  std::string file;
  int line = 0;
  std::vector<FieldInfo> fields;
  bool has_guarded = false;  // declares >= 1 GUARDED_BY field => protocol struct
};

struct FunctionInfo {
  std::string name;  // unqualified
  std::string qual;  // Class::name when known
  std::string file;
  int line = 0;
  int file_idx = -1;
  size_t body_begin = 0, body_end = 0;  // sig-token index range of the body
  std::vector<std::string> requires_args;  // SG_REQUIRES(...) idents from the head
  std::vector<CallSite> calls;

  // Filled by the sleep-in-atomic fixpoint in rules.cc.
  bool may_block = false;
  std::string block_via;  // callee name that makes this function blocking
  int block_line = 0;
};

struct SourceFile {
  std::string path;  // as given on the command line / discovered
  std::string rel;   // repo-relative path (directory scoping)
  bool full = false; // full analysis (src/) vs token rules only (tests/bench)
  std::vector<Token> toks;
  std::vector<size_t> sig;  // indices of non-comment, non-preprocessor tokens
  // line -> rules allowed there (from sgcheck:allow comments)
  std::map<int, std::set<std::string>> allows;
};

struct Program {
  std::vector<SourceFile> files;
  std::vector<ClassInfo> classes;
  std::vector<FunctionInfo> funcs;
  std::vector<Diag> lexical;  // guard-escape + seqcount-bracket raw findings
  // field name -> possible type_last idents, across every parsed class
  std::multimap<std::string, std::string> field_types;
  // "Class::method" -> SG_REQUIRES args from the in-class declaration
  std::map<std::string, std::vector<std::string>> method_requires;
  // accessor method name -> capability type it returns (lock(), layout_seq())
  std::map<std::string, std::string> accessor_types;
};

// Pass 1: classes, fields, method annotations, function body ranges.
void ParseStructure(Program& prog, int file_idx);

// Pass 2: walk every function body recorded for `file_idx` (needs the
// complete field/accessor maps, so run after ParseStructure on all files).
void WalkBodies(Program& prog, int file_idx);

// Scans comments: builds SourceFile::allows and appends malformed-suppression
// diagnostics ([suppression]) to `out`. `known_rules` validates rule names.
void CollectAllows(SourceFile& f, const std::set<std::string>& known_rules,
                   std::vector<Diag>& out);

}  // namespace sgcheck

#endif  // TOOLS_SGCHECK_PARSER_H_
