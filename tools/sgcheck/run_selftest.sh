#!/bin/sh
# sgcheck self-test: run every testdata fixture through the checker and
# golden-diff the diagnostics.
#
#   run_selftest.sh <sgcheck-binary> <testdata-dir>
#
# For each <name>.cc there is a <name>.expected with the exact diagnostics
# (empty for a clean fixture) and optionally a <name>.registry passed as
# --inject-registry. The checker must exit 1 when it reports findings and 0
# when it reports none; anything else (including a crash) fails the test.
set -u

if [ $# -ne 2 ]; then
  echo "usage: $0 <sgcheck-binary> <testdata-dir>" >&2
  exit 2
fi
BIN=$(cd "$(dirname "$1")" && pwd)/$(basename "$1")
DIR=$2

fail=0
for src in "$DIR"/*.cc; do
  name=$(basename "$src" .cc)
  exp="$DIR/$name.expected"
  if [ ! -f "$exp" ]; then
    echo "FAIL $name: missing golden file $exp" >&2
    fail=1
    continue
  fi

  set --
  if [ -f "$DIR/$name.registry" ]; then
    set -- --inject-registry "$name.registry"
  fi

  # cd so diagnostics print bare fixture names (stable goldens).
  out=$(cd "$DIR" && "$BIN" "$@" "$name.cc" 2>&1)
  status=$?

  want_status=0
  [ -s "$exp" ] && want_status=1
  if [ "$status" -ne "$want_status" ]; then
    echo "FAIL $name: exit $status, want $want_status" >&2
    fail=1
  fi

  if [ -n "$out" ]; then
    printf '%s\n' "$out" > "/tmp/sgcheck_selftest_$name.out"
  else
    : > "/tmp/sgcheck_selftest_$name.out"
  fi
  if ! diff -u "$exp" "/tmp/sgcheck_selftest_$name.out"; then
    echo "FAIL $name: diagnostics differ from golden (see diff above)" >&2
    fail=1
  else
    echo "ok   $name"
  fi
  rm -f "/tmp/sgcheck_selftest_$name.out"
done

# Usage errors must exit 2, not 0/1.
"$BIN" --bogus-flag >/dev/null 2>&1
if [ $? -ne 2 ]; then
  echo "FAIL usage: unknown flag did not exit 2" >&2
  fail=1
else
  echo "ok   usage-error exit code"
fi
"$BIN" >/dev/null 2>&1
if [ $? -ne 2 ]; then
  echo "FAIL usage: empty invocation did not exit 2" >&2
  fail=1
else
  echo "ok   empty-invocation exit code"
fi

exit $fail
