// sgcheck — static checker for the sharing/locking protocol (DESIGN.md §4i).
//
// Usage:
//   sgcheck --repo <dir> [--inject-registry <file>]
//       Full analysis of <dir>/src/**/*.{h,cc}; token rules additionally run
//       over <dir>/tests and <dir>/bench (matching the old lint.sh scope).
//   sgcheck [--inject-registry <file>] <file>...
//       Full analysis of the listed files (fixture/self-test mode; directory
//       scoping is off, so every rule is live).
//
// Output: "<file>:<line>: error: [<rule>] <message>", one line per finding,
// sorted; exit status 1 if anything (including a malformed suppression)
// was reported, 0 on a clean tree.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "lexer.h"
#include "parser.h"
#include "rules.h"

namespace fs = std::filesystem;

namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool IsSourceName(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".hpp" || ext == ".cpp";
}

// Collects .h/.cc files under root/sub (sorted for deterministic output).
void Discover(const fs::path& root, const std::string& sub, bool full,
              std::vector<std::pair<std::string, bool>>* out) {
  const fs::path dir = root / sub;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return;
  std::vector<std::string> paths;
  for (auto it = fs::recursive_directory_iterator(dir, ec);
       !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (it->is_regular_file(ec) && IsSourceName(it->path())) {
      paths.push_back(it->path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  for (std::string& p : paths) out->emplace_back(std::move(p), full);
}

}  // namespace

int main(int argc, char** argv) {
  sgcheck::Options opt;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--repo" && i + 1 < argc) {
      opt.repo = argv[++i];
    } else if (a == "--inject-registry" && i + 1 < argc) {
      opt.inject_registry = argv[++i];
    } else if (a == "--help" || a == "-h") {
      std::cout << "usage: sgcheck --repo DIR [--inject-registry FILE]\n"
                   "       sgcheck [--inject-registry FILE] FILE...\n";
      return 0;
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "sgcheck: unknown flag '" << a << "'\n";
      return 2;
    } else {
      files.push_back(a);
    }
  }
  if (opt.repo.empty() && files.empty()) {
    std::cerr << "sgcheck: nothing to check (pass --repo DIR or files)\n";
    return 2;
  }

  // (path, full-analysis?) work list.
  std::vector<std::pair<std::string, bool>> work;
  if (!opt.repo.empty()) {
    Discover(opt.repo, "src", /*full=*/true, &work);
    Discover(opt.repo, "tests", /*full=*/false, &work);
    Discover(opt.repo, "bench", /*full=*/false, &work);
    if (opt.inject_registry.empty()) {
      const fs::path def = fs::path(opt.repo) / "tools" / "inject_points.txt";
      std::error_code ec;
      if (fs::exists(def, ec)) opt.inject_registry = def.string();
    }
  }
  for (const std::string& f : files) work.emplace_back(f, /*full=*/true);

  sgcheck::Program prog;
  std::vector<sgcheck::Diag> diags;
  for (const auto& [path, full] : work) {
    std::string text;
    if (!ReadFile(path, &text)) {
      std::cerr << "sgcheck: cannot read " << path << "\n";
      return 2;
    }
    sgcheck::SourceFile sf;
    sf.full = full;
    sf.toks = sgcheck::Lex(text);
    for (size_t t = 0; t < sf.toks.size(); ++t) {
      if (sf.toks[t].kind != sgcheck::Tok::kComment &&
          sf.toks[t].kind != sgcheck::Tok::kPp) {
        sf.sig.push_back(t);
      }
    }
    if (!opt.repo.empty()) {
      std::error_code ec;
      const fs::path rel = fs::relative(path, opt.repo, ec);
      sf.rel = ec ? path : rel.generic_string();
      sf.path = sf.rel;  // print repo-relative paths
    } else {
      sf.rel = path;
      sf.path = path;
    }
    sgcheck::CollectAllows(sf, sgcheck::kKnownRules, diags);
    prog.files.push_back(std::move(sf));
  }

  // Structure first (across every full file, so field/accessor maps are
  // complete), then the body walk.
  for (int i = 0; i < static_cast<int>(prog.files.size()); ++i) {
    if (prog.files[i].full) sgcheck::ParseStructure(prog, i);
  }
  for (int i = 0; i < static_cast<int>(prog.files.size()); ++i) {
    if (prog.files[i].full) sgcheck::WalkBodies(prog, i);
  }

  sgcheck::RunRules(prog, opt, diags);
  for (const sgcheck::Diag& d : diags) {
    std::cout << d.file << ":" << d.line << ": error: [" << d.rule << "] "
              << d.msg << "\n";
  }
  if (!diags.empty()) {
    std::cout << "sgcheck: " << diags.size() << " finding(s)\n";
    return 1;
  }
  return 0;
}
