#include "lexer.h"

#include <cctype>

namespace sgcheck {

namespace {

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

// Multi-character punctuators, longest first within each head character.
// Enough for call/scope detection; anything unlisted lexes one char at a
// time, which no rule cares about.
const char* kPuncts[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "<<", ">>", "<=", ">=", "==", "!=",
    "&&", "||", "++", "--", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", ".*",
};

}  // namespace

std::vector<Token> Lex(const std::string& src) {
  std::vector<Token> out;
  const size_t n = src.size();
  size_t i = 0;
  int line = 1;

  auto push = [&](Tok k, size_t begin, size_t end, int l) {
    out.push_back(Token{k, src.substr(begin, end - begin), l});
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }

    // Preprocessor directive: only when '#' is the first non-blank on the
    // line. Consume through backslash continuations.
    if (c == '#') {
      size_t bol = src.rfind('\n', i == 0 ? 0 : i - 1);
      bol = (bol == std::string::npos) ? 0 : bol + 1;
      bool first = true;
      for (size_t j = bol; j < i; ++j) {
        if (!std::isspace(static_cast<unsigned char>(src[j]))) {
          first = false;
          break;
        }
      }
      if (first) {
        const size_t begin = i;
        const int l0 = line;
        while (i < n) {
          if (src[i] == '\n') {
            if (i > 0 && src[i - 1] == '\\') {
              ++line;
              ++i;
              continue;
            }
            break;
          }
          // A // comment inside a directive runs to the same EOL; a /*
          // block may span lines — skip it so its newlines don't end the
          // directive prematurely.
          if (src[i] == '/' && i + 1 < n && src[i + 1] == '*') {
            i += 2;
            while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
              if (src[i] == '\n') ++line;
              ++i;
            }
            i = (i + 1 < n) ? i + 2 : n;
            continue;
          }
          ++i;
        }
        push(Tok::kPp, begin, i, l0);
        continue;
      }
    }

    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const size_t begin = i;
      while (i < n && src[i] != '\n') ++i;
      push(Tok::kComment, begin, i, line);
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const size_t begin = i;
      const int l0 = line;
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      i = (i + 1 < n) ? i + 2 : n;
      push(Tok::kComment, begin, i, l0);
      continue;
    }

    // Raw string literal R"delim(...)delim".
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      size_t d = i + 2;
      while (d < n && src[d] != '(' && src[d] != '"' && src[d] != '\n') ++d;
      if (d < n && src[d] == '(') {
        const std::string closer = ")" + src.substr(i + 2, d - (i + 2)) + "\"";
        const size_t end = src.find(closer, d + 1);
        const size_t stop = (end == std::string::npos) ? n : end + closer.size();
        const int l0 = line;
        for (size_t j = i; j < stop; ++j) {
          if (src[j] == '\n') ++line;
        }
        push(Tok::kString, i, stop, l0);
        i = stop;
        continue;
      }
    }

    if (c == '"' || c == '\'') {
      const size_t begin = i;
      const int l0 = line;
      const char q = c;
      ++i;
      while (i < n && src[i] != q) {
        if (src[i] == '\\' && i + 1 < n) {
          ++i;
        } else if (src[i] == '\n') {
          ++line;  // unterminated; keep line numbers honest
        }
        ++i;
      }
      if (i < n) ++i;
      push(q == '"' ? Tok::kString : Tok::kChar, begin, i, l0);
      continue;
    }

    if (IsIdentStart(c)) {
      const size_t begin = i;
      while (i < n && IsIdentChar(src[i])) ++i;
      push(Tok::kIdent, begin, i, line);
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      const size_t begin = i;
      while (i < n && (IsIdentChar(src[i]) || src[i] == '.' || src[i] == '\'' ||
                       ((src[i] == '+' || src[i] == '-') && i > begin &&
                        (src[i - 1] == 'e' || src[i - 1] == 'E' || src[i - 1] == 'p' ||
                         src[i - 1] == 'P')))) {
        ++i;
      }
      push(Tok::kNumber, begin, i, line);
      continue;
    }

    bool matched = false;
    for (const char* p : kPuncts) {
      const size_t len = std::char_traits<char>::length(p);
      if (src.compare(i, len, p) == 0) {
        push(Tok::kPunct, i, i + len, line);
        i += len;
        matched = true;
        break;
      }
    }
    if (!matched) {
      push(Tok::kPunct, i, i + 1, line);
      ++i;
    }
  }
  return out;
}

}  // namespace sgcheck
