#include "rules.h"

#include <algorithm>
#include <fstream>
#include <functional>
#include <sstream>

namespace sgcheck {

const std::set<std::string> kKnownRules = {
    "sleep-in-atomic", "guard-escape",     "seqcount-bracket",
    "guarded-fields",  "spin-internals",   "ofile-private",
    "pregions-private", "inject-registry", "suppression",
};

namespace {

// Names that block (or may block) the calling thread. This is the transitive
// root set for R1; anything that reaches one of these by name may sleep.
// lockdep::MaySleep is the repo's own dynamic marker, so honoring it keeps
// the static and dynamic tools in agreement.
const std::set<std::string> kBlockingRoots = {
    "MaySleep",        "BlockOn",       "FinishSleep",   "DidWake",
    "wait",            "wait_for",      "wait_until",    "sleep_for",
    "sleep_until",     "P",             "Arrive",        "AcquireRead",
    "AcquireUpdate",   "AwaitQuiescent", "WriteBack",
    "SleepUntilReleased", "WaitDrainChangedFrom", "MutexLock",
};

bool StartsWith(const std::string& s, const char* pre) {
  return s.rfind(pre, 0) == 0;
}

bool Allowed(const Program& prog, const Diag& d) {
  for (const SourceFile& f : prog.files) {
    if (f.path != d.file) continue;
    auto it = f.allows.find(d.line);
    return it != f.allows.end() && it->second.count(d.rule) > 0;
  }
  return false;
}

const Token& T(const SourceFile& f, size_t si) { return f.toks[f.sig[si]]; }

bool SigIs(const SourceFile& f, size_t si, Tok k, const char* text) {
  return si < f.sig.size() && T(f, si).kind == k && T(f, si).text == text;
}

// ---------------------------------------------------------------------------
// Token rules (the absorbed lint.sh greps, now over real tokens — so they
// don't fire inside comments or string literals the way grep did not care
// about).
// ---------------------------------------------------------------------------

void TokenRules(const Program& prog, const Options& opt,
                const std::set<std::string>& registry, bool have_registry,
                std::vector<Diag>& out) {
  const bool fixture = opt.repo.empty();
  for (const SourceFile& f : prog.files) {
    const std::string& rel = f.rel;
    const bool in_src = StartsWith(rel, "src/");
    const bool spin_scope = fixture || (in_src && !StartsWith(rel, "src/sync/"));
    const bool ofile_scope =
        fixture || (in_src && rel != "src/core/shaddr.h" && rel != "src/core/shaddr.cc");
    const bool pregions_scope = fixture || !StartsWith(rel, "src/vm/");
    const bool inject_scope =
        have_registry && (fixture || (in_src && !StartsWith(rel, "src/inject/")));

    for (size_t i = 0; i < f.sig.size(); ++i) {
      const Token& t = T(f, i);
      if (t.kind != Tok::kIdent) continue;

      if (spin_scope && t.text == "flag_" &&
          (SigIs(f, i + 1, Tok::kPunct, ".") || SigIs(f, i + 1, Tok::kPunct, "->")) &&
          i + 2 < f.sig.size() && T(f, i + 2).kind == Tok::kIdent &&
          (T(f, i + 2).text == "store" || T(f, i + 2).text == "exchange")) {
        out.push_back(Diag{f.path, t.line, "spin-internals",
                           "direct poke at Spinlock internals (flag_." +
                               T(f, i + 2).text +
                               ") — only src/sync/ may touch the lock word"});
      }

      if (ofile_scope && t.text == "ofile_") {
        out.push_back(Diag{f.path, t.line, "ofile-private",
                           "'ofile_' is private to src/core/shaddr.{h,cc} — go "
                           "through the SharedAddressSpace API"});
      }

      if (pregions_scope && t.text == "pregions" && i > 0 &&
          (SigIs(f, i - 1, Tok::kPunct, ".") || SigIs(f, i - 1, Tok::kPunct, "->")) &&
          SigIs(f, i + 1, Tok::kPunct, "(") && SigIs(f, i + 2, Tok::kPunct, ")")) {
        out.push_back(Diag{f.path, t.line, "pregions-private",
                           "raw pregions() access outside src/vm/ — use the "
                           "snapshot/lookup API so the seqcount protocol holds"});
      }

      if (inject_scope &&
          (t.text == "SG_INJECT_POINT" || t.text == "SG_INJECT_FAULT") &&
          SigIs(f, i + 1, Tok::kPunct, "(") && i + 2 < f.sig.size() &&
          T(f, i + 2).kind == Tok::kString) {
        const std::string& lit = T(f, i + 2).text;
        std::string name = lit.size() >= 2 ? lit.substr(1, lit.size() - 2) : lit;
        if (!registry.count(name)) {
          out.push_back(Diag{f.path, t.line, "inject-registry",
                             t.text + "(\"" + name +
                                 "\") is not listed in tools/inject_points.txt — "
                                 "register it so storm replays stay exhaustive"});
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// R1: sleep-in-atomic.
// ---------------------------------------------------------------------------

void SleepInAtomic(Program& prog, std::vector<Diag>& out) {
  std::multimap<std::string, size_t> by_name;
  for (size_t i = 0; i < prog.funcs.size(); ++i) {
    by_name.emplace(prog.funcs[i].name, i);
  }

  // Fixpoint: a function may block if any call in its body is a blocking
  // root or resolves (by name) to a function already known to block.
  bool changed = true;
  while (changed) {
    changed = false;
    for (FunctionInfo& fn : prog.funcs) {
      if (fn.may_block) continue;
      for (const CallSite& c : fn.calls) {
        bool blocks = kBlockingRoots.count(c.callee) > 0;
        if (!blocks) {
          auto [lo, hi] = by_name.equal_range(c.callee);
          for (auto it = lo; it != hi; ++it) {
            if (prog.funcs[it->second].may_block) {
              blocks = true;
              break;
            }
          }
        }
        if (blocks) {
          fn.may_block = true;
          fn.block_via = c.callee;
          fn.block_line = c.line;
          changed = true;
          break;
        }
      }
    }
  }

  auto chain_for = [&](const std::string& callee) {
    std::string chain = callee;
    std::string cur = callee;
    for (int depth = 0; depth < 8; ++depth) {
      if (kBlockingRoots.count(cur)) break;
      const FunctionInfo* next = nullptr;
      auto [lo, hi] = by_name.equal_range(cur);
      for (auto it = lo; it != hi; ++it) {
        if (prog.funcs[it->second].may_block) {
          next = &prog.funcs[it->second];
          break;
        }
      }
      if (next == nullptr || next->block_via.empty() || next->block_via == cur) break;
      cur = next->block_via;
      chain += " -> " + cur;
    }
    return chain;
  };

  // R1 regions per the protocol: spinlock held, seqcount read window,
  // epoch pin. A seqcount WRITE section may sleep (readers fail validation
  // and take the lock path — a latency cost, not a correctness one), so it
  // is bracket-checked by R3 but not sleep-checked here.
  constexpr unsigned kR1Mask = kCtxSpin | kCtxSeqRead | kCtxEpoch;
  for (const FunctionInfo& fn : prog.funcs) {
    if (!prog.files[fn.file_idx].full) continue;
    for (const CallSite& c : fn.calls) {
      if ((c.ctx & kR1Mask) == 0) continue;
      bool blocks = kBlockingRoots.count(c.callee) > 0;
      if (!blocks) {
        auto [lo, hi] = by_name.equal_range(c.callee);
        for (auto it = lo; it != hi; ++it) {
          if (prog.funcs[it->second].may_block) {
            blocks = true;
            break;
          }
        }
      }
      if (!blocks) continue;
      const std::string chain = chain_for(c.callee);
      std::string msg = "'" + c.callee + "' may block inside " + c.ctx_desc;
      if (chain != c.callee) msg += " (chain: " + chain + ")";
      out.push_back(Diag{fn.file, c.line, "sleep-in-atomic", std::move(msg)});
    }
  }
}

// ---------------------------------------------------------------------------
// R4: guarded-fields.
// ---------------------------------------------------------------------------

// Capability types: lock words themselves, never data they protect.
const std::set<std::string> kCapabilityTypes = {
    "Spinlock", "Mutex",  "SharedReadLock", "Semaphore", "SeqCount",
    "Barrier",  "mutex",  "condition_variable", "condition_variable_any",
    "shared_mutex", "once_flag",
};

// Internally-synchronized observability types (their own atomics inside).
const std::set<std::string> kSelfSyncTypes = {
    "Counter", "Gauge", "LatencyHisto", "TraceRing", "Stats", "StatRegistry",
};

void GuardedFields(const Program& prog, std::vector<Diag>& out) {
  std::multimap<std::string, const ClassInfo*> by_name;
  for (const ClassInfo& c : prog.classes) by_name.emplace(c.name, &c);

  // FieldOk with depth-limited composition: a field of an unannotated
  // aggregate type is fine when every field of that aggregate is fine
  // (covers EpochSlot-style structs-of-atomics).
  std::function<bool(const FieldInfo&, int)> field_ok =
      [&](const FieldInfo& fi, int depth) -> bool {
    if (fi.annotated || fi.atomic_ || fi.konst || fi.ref) return true;
    if (kCapabilityTypes.count(fi.type_last)) return true;
    if (kSelfSyncTypes.count(fi.type_last)) return true;
    // By-value composition of another protocol struct: it carries its own
    // capabilities, so the outer class has nothing to annotate.
    {
      auto [lo, hi] = by_name.equal_range(fi.type_last);
      for (auto it = lo; it != hi; ++it) {
        if (it->second->has_guarded) return true;
      }
    }
    if (depth < 2) {
      auto [lo, hi] = by_name.equal_range(fi.type_last);
      for (auto it = lo; it != hi; ++it) {
        const ClassInfo* inner = it->second;
        if (inner->fields.empty()) continue;
        bool all = true;
        for (const FieldInfo& f2 : inner->fields) {
          if (!field_ok(f2, depth + 1)) {
            all = false;
            break;
          }
        }
        if (all) return true;
      }
    }
    return false;
  };

  for (const ClassInfo& c : prog.classes) {
    if (!c.has_guarded) continue;
    for (const FieldInfo& fi : c.fields) {
      if (field_ok(fi, 0)) continue;
      out.push_back(Diag{
          c.file, fi.line, "guarded-fields",
          "field '" + fi.name + "' of protocol struct '" + c.name +
              "' has no SG_GUARDED_BY and is not atomic/const/a capability — "
              "annotate it or suppress with a reason"});
    }
  }
}

}  // namespace

void RunRules(Program& prog, const Options& opt, std::vector<Diag>& out) {
  // Inject-point registry.
  std::set<std::string> registry;
  bool have_registry = false;
  if (!opt.inject_registry.empty()) {
    std::ifstream in(opt.inject_registry);
    if (in) {
      have_registry = true;
      std::string line;
      while (std::getline(in, line)) {
        const size_t hash = line.find('#');
        if (hash != std::string::npos) line = line.substr(0, hash);
        size_t b = line.find_first_not_of(" \t\r");
        if (b == std::string::npos) continue;
        size_t e = line.find_last_not_of(" \t\r");
        registry.insert(line.substr(b, e - b + 1));
      }
    } else {
      out.push_back(Diag{opt.inject_registry, 0, "inject-registry",
                         "cannot read inject-point registry"});
    }
  }

  std::vector<Diag> raw;
  TokenRules(prog, opt, registry, have_registry, raw);
  SleepInAtomic(prog, raw);
  GuardedFields(prog, raw);
  for (const Diag& d : prog.lexical) raw.push_back(d);

  for (Diag& d : raw) {
    if (!Allowed(prog, d)) out.push_back(std::move(d));
  }
  std::sort(out.begin(), out.end(), [](const Diag& a, const Diag& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.msg < b.msg;
  });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const Diag& a, const Diag& b) {
                          return a.file == b.file && a.line == b.line &&
                                 a.rule == b.rule && a.msg == b.msg;
                        }),
            out.end());
}

}  // namespace sgcheck
