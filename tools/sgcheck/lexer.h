// sgcheck lexer — a minimal C++ tokenizer, just enough structure for the
// protocol rules in rules.cc: identifiers, literals, punctuation, comments
// (kept, so suppressions and doc text can be inspected), and preprocessor
// directives (kept as single tokens so the parser can skip them without
// losing line accounting). No keyword table beyond what the parser needs;
// no macro expansion — sgcheck reads the source the way a reviewer does.
#ifndef TOOLS_SGCHECK_LEXER_H_
#define TOOLS_SGCHECK_LEXER_H_

#include <string>
#include <vector>

namespace sgcheck {

enum class Tok {
  kIdent,    // identifiers and keywords
  kNumber,   // numeric literal (incl. suffixes)
  kString,   // "..." (escapes handled; raw strings handled)
  kChar,     // '...'
  kPunct,    // one operator/punctuator, longest-match ("->", "::", "<<=", ...)
  kComment,  // // line or /* block */ (text includes the delimiters)
  kPp,       // one whole preprocessor directive (continuations joined)
};

struct Token {
  Tok kind;
  std::string text;
  int line;  // 1-based line of the token's first character
};

// Tokenizes `src`. Never fails: malformed input degenerates into punct/ident
// soup, and the parser is written to survive that (sgcheck must not crash on
// any tree it is pointed at).
std::vector<Token> Lex(const std::string& src);

}  // namespace sgcheck

#endif  // TOOLS_SGCHECK_LEXER_H_
