// sgcheck fixture: R4 guarded-fields — once a class carries one
// SG_GUARDED_BY field, every other field must declare its discipline.

namespace fix {

// A protocol struct: entries_ puts the whole class under audit.
class Table {
 public:
  int Lookup(int k) const;

 private:
  Spinlock lock_;                         // capability: ok
  int entries_ SG_GUARDED_BY(lock_) = 0;  // annotated: ok
  std::atomic<int> hits_{0};              // atomic: ok
  const int capacity_ = 16;               // const: ok
  Stats& stats_;                          // reference: ok
  obs::Counter misses_;                   // self-synchronized: ok
  int dirty_;                             // VIOLATION: nothing declared
  char* scratch_;                         // VIOLATION: mutable pointer
};

// Composition: a struct whose fields are all atomics is fine by value.
struct Shard {
  std::atomic<int> a{0};
  std::atomic<int> b{0};
};

class Sharded {
 private:
  Mutex mu_;
  int len_ SG_GUARDED_BY(mu_) = 0;
  Shard shard_;   // composed-all-ok: ok
  Table table_;   // protocol struct by value (has its own capabilities): ok
  void* cookie_;  // VIOLATION: nothing declared
};

// No SG_GUARDED_BY anywhere: not a protocol struct, nothing audited.
class Plain {
 private:
  int anything_;
  char* whatever_;
};

}  // namespace fix
