// sgcheck fixture: R3 seqcount-bracket — mutations of the published-layout
// backing lists (pregions_/member_tlbs_) and Republish() must sit inside a
// SeqWriter section so lockless readers can detect them.

namespace fix {

struct Pregion;
class Tlb;

class Layout {
 public:
  // VIOLATION: unbracketed pregion-list mutation.
  void AttachUnbracketed(Pregion* p) { pregions_.push_back(p); }

  // VIOLATION: unbracketed member-TLB-list mutation via std::erase.
  void DropTlbUnbracketed(Tlb* t) { std::erase(member_tlbs_, t); }

  // VIOLATION: republishing outside the write section.
  void RepublishUnbracketed() { Republish(); }

  // NEGATIVE: the same mutations inside a SeqWriter section are the
  // protocol working as intended.
  void AttachBracketed(Pregion* p) {
    SeqWriter w(seq_);
    pregions_.push_back(p);
    Republish();
  }
  void DropTlbBracketed(Tlb* t) {
    SeqWriter w(seq_);
    member_tlbs_.pop_back();
    std::erase(member_tlbs_, t);
    Republish();
  }

  // NEGATIVE: unrelated containers mutate freely.
  void Scratch(int x) { scratch_.push_back(x); }

 private:
  void Republish();

  SeqCount seq_;
  std::vector<Pregion*> pregions_;
  std::vector<Tlb*> member_tlbs_;
  std::vector<int> scratch_;
};

}  // namespace fix
