// sgcheck fixture: R2 guard-escape — snapshot-derived pointers must not
// outlive the epoch pin that keeps the graveyard from freeing them.

namespace fix {

struct Pregion {
  int va;
};

struct LayoutSnapshot {
  Pregion* Find(int va);
};

class Space {
 public:
  LayoutSnapshot* snapshot();

  // VIOLATION: returning a snapshot-derived pointer out of the pinned scope.
  Pregion* LeakByReturn(int va) {
    EpochGuard eg;
    LayoutSnapshot* snap = snapshot();
    Pregion* pr = snap->Find(va);
    return pr;
  }

  // VIOLATION: storing a snapshot-derived pointer into a member.
  void LeakByStore(int va) {
    EpochGuard eg;
    LayoutSnapshot* snap = snapshot();
    Pregion* pr = snap->Find(va);
    cached_ = pr;
  }

  // VIOLATION: pushing a snapshot-derived pointer into an out-param that
  // outlives the pin.
  void LeakByContainer(std::vector<Pregion*>* out, int va) {
    EpochGuard eg;
    LayoutSnapshot* snap = snapshot();
    Pregion* pr = snap->Find(va);
    out->push_back(pr);
  }

  // VIOLATION: a static local outlives every pin.
  void LeakByStatic(int va) {
    EpochGuard eg;
    LayoutSnapshot* snap = snapshot();
    static Pregion* last = snap->Find(va);
    last->va = va;
  }

  // NEGATIVE: declaring locals from the snapshot, aliasing them, and copying
  // plain values out are all fine — only the pointers are pinned.
  int UseInside(int va) {
    EpochGuard eg;
    LayoutSnapshot* snap = snapshot();
    Pregion* pr = snap->Find(va);
    Pregion* alias = pr;
    int v = alias->va;
    return v;
  }

  // NEGATIVE: a container declared under the pin may hold the pointers.
  int CollectInside(int va) {
    EpochGuard eg;
    std::vector<Pregion*> tmp;
    LayoutSnapshot* snap = snapshot();
    tmp.push_back(snap->Find(va));
    return static_cast<int>(tmp.size());
  }

  // NEGATIVE: no pin, no tracking — ordinary pointer plumbing elsewhere is
  // out of scope for this rule.
  void NoPin(Pregion* pr) { cached_ = pr; }

 private:
  Pregion* cached_ = nullptr;
};

}  // namespace fix
