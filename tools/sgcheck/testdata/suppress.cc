// sgcheck fixture: suppression syntax and semantics. An allow must name a
// known rule and carry a reason; it covers its own line (trailing form) or
// the next code line (standalone form) — nothing else.

namespace fix {

class Sup {
 public:
  void TrailingForm() {
    SpinGuard g(lock_);
    sem_.P();  // sgcheck:allow(sleep-in-atomic): fixture — trailing comment form
  }

  void StandaloneForm() {
    SpinGuard g(lock_);
    // sgcheck:allow(sleep-in-atomic): fixture — standalone comment form
    sem_.P();
  }

  void NotSuppressed() {
    SpinGuard g(lock_);
    sem_.P();  // VIOLATION: no allow on this line
  }

  void WrongRule() {
    SpinGuard g(lock_);
    // sgcheck:allow(guard-escape): suppressing a different rule does not help
    sem_.P();  // VIOLATION: still reported
  }

  void MissingReason() {
    SpinGuard g(lock_);
    // sgcheck:allow(sleep-in-atomic)
    sem_.P();  // VIOLATION: reasonless allow is itself an error and not applied
  }

  void UnknownRule() {
    SpinGuard g(lock_);
    // sgcheck:allow(sleep-in-atomics): typo'd rule names are an error
    sem_.P();  // VIOLATION: still reported
  }

 private:
  Spinlock lock_;
  Semaphore sem_;
};

}  // namespace fix
