// sgcheck fixture: R1 sleep-in-atomic — positives and near-miss negatives.
// Not compiled; parsed only by sgcheck (types are stand-ins for the repo's).

namespace fix {

class Semaphore {
 public:
  void P();
  void V();
};

class Sleeper {
 public:
  // Transitively blocking helpers: DoSleep -> NestedSleep -> sem_.P().
  void NestedSleep() { sem_.P(); }
  void DoSleep() { NestedSleep(); }

  // VIOLATION: blocking root directly under a SpinGuard.
  void DirectUnderSpin() {
    SpinGuard g(lock_);
    sem_.P();
  }

  // VIOLATION: transitive sleep under a SpinGuard (diagnosed with a chain).
  void TransitiveUnderSpin() {
    SpinGuard g(lock_);
    DoSleep();
  }

  // NEGATIVE: the sleep happens after the guard's scope closes.
  void SleepAfterGuard() {
    {
      SpinGuard g(lock_);
      counter_ = counter_ + 1;
    }
    DoSleep();
  }

  // VIOLATION: explicit Lock()/Unlock() pair with a sleep inside.
  void ExplicitPair() {
    lock_.Lock();
    sem_.P();
    lock_.Unlock();
  }

  // NEGATIVE: sleep after the explicit Unlock().
  void SleepAfterUnlock() {
    lock_.Lock();
    counter_ = 2;
    lock_.Unlock();
    sem_.P();
  }

  // VIOLATION: SG_REQUIRES(lock_) runs the whole body spinlock-held.
  void RequiresSpin() SG_REQUIRES(lock_) { sem_.P(); }

  // NEGATIVE: rlock_ is a SharedReadLock, not a spinlock — holders may sleep.
  void RequiresShared() SG_REQUIRES(rlock_) { sem_.P(); }

 private:
  Spinlock lock_;
  SharedReadLock rlock_;
  Semaphore sem_;
  int counter_ SG_GUARDED_BY(lock_) = 0;
};

class SeqUser {
 public:
  // VIOLATION: blocking inside a seqcount read window.
  int ReadPath() {
    for (;;) {
      u32 s = 0;
      if (!seq_.TryReadBegin(&s)) continue;
      sem_.P();
      if (seq_.ReadValidate(s)) return 1;
    }
  }

  // NEGATIVE: a seqcount WRITE section may sleep — readers fail validation
  // and take the lock path (a latency cost, not a correctness one).
  void WritePath() {
    SeqWriter w(seq_);
    sem_.P();
  }

 private:
  SeqCount seq_;
  Semaphore sem_;
};

class EpochUser {
 public:
  // VIOLATION: blocking while epoch-pinned (the graveyard cannot advance).
  void Pinned() {
    EpochGuard eg;
    sem_.P();
  }

  // NEGATIVE: blocking after the pin's scope ends.
  void PinnedThenSleep() {
    {
      EpochGuard eg;
      touched_ = 1;
    }
    sem_.P();
  }

 private:
  Semaphore sem_;
  int touched_ = 0;
};

}  // namespace fix
