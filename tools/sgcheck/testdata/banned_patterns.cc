// sgcheck fixture: absorbed lint.sh token rules — spinlock internals,
// shaddr privates, raw pregions() access, unregistered inject points.
// Run with --inject-registry banned_patterns.registry.

namespace fix {

class BadCitizen {
 public:
  void PokeLockWord() {
    flag_.store(1);     // VIOLATION: spin-internals
    flag_.exchange(1);  // VIOLATION: spin-internals
    flag_.load();       // NEGATIVE: reading the word is not a poke
  }

  void TouchShaddr(ShaddrBlock* sh) {
    sh->ofile_[0] = nullptr;  // VIOLATION: ofile-private
  }

  int CountRegions(AddressSpace& as) {
    return static_cast<int>(as.pregions().size());  // VIOLATION: pregions-private
  }

  int CountOther(AddressSpace& as) {
    return as.pregion_count();  // NEGATIVE: different accessor
  }

  void Fire() {
    SG_INJECT_POINT("fixture.registered");            // NEGATIVE: in registry
    SG_INJECT_POINT("fixture.unregistered");          // VIOLATION
    SG_INJECT_FAULT("fixture.also_missing", return);  // VIOLATION
  }

 private:
  std::atomic<int> flag_;
};

}  // namespace fix
