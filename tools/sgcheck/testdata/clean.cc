// sgcheck fixture: a fully protocol-conformant file — zero findings, exit 0.

namespace fix {

struct Pregion {
  int va;
};

struct LayoutSnapshot {
  Pregion* Find(int va);
};

class Space {
 public:
  // Snapshot pointers live and die inside the pin.
  int Probe(int va) {
    EpochGuard eg;
    LayoutSnapshot* snap = snapshot();
    Pregion* pr = snap->Find(va);
    return pr != nullptr ? pr->va : -1;
  }

  // Mutations sit inside the SeqWriter bracket.
  void Attach(Pregion* p) {
    SeqWriter w(seq_);
    pregions_.push_back(p);
    Republish();
  }

  // The sleep happens before the spinlock section, not inside it.
  void Update(int va) {
    sem_.P();
    {
      SpinGuard g(lock_);
      hint_ = va;
    }
    sem_.V();
  }

 private:
  LayoutSnapshot* snapshot();
  void Republish();

  Spinlock lock_;
  SeqCount seq_;
  Semaphore sem_;
  int hint_ SG_GUARDED_BY(lock_) = 0;
  std::atomic<int> faults_{0};
  std::vector<Pregion*> pregions_;  // sgcheck:allow(guarded-fields): fixture — written only under seq_'s write section
};

}  // namespace fix
